// SymbolTable: id stability, snapshot semantics of the lock-free readers,
// and concurrent intern/read (the case TSan is pointed at — CI runs the
// `concurrency` label under -fsanitize=thread).

#include "ins/name/symbol_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace ins {
namespace {

std::string Sym(size_t i) { return "sym-" + std::to_string(i); }

TEST(SymbolTableTest, InternAssignsDenseStableIds) {
  SymbolTable table;
  const SymbolId a = table.Intern("camera");
  const SymbolId b = table.Intern("resolution");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  // Re-interning returns the original id, forever.
  EXPECT_EQ(table.Intern("camera"), a);
  EXPECT_EQ(table.Intern("resolution"), b);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.NameOf(a), "camera");
  EXPECT_EQ(table.NameOf(b), "resolution");
}

TEST(SymbolTableTest, FindMissesUnknownWithoutInterning) {
  SymbolTable table;
  table.Intern("building");
  EXPECT_EQ(table.Find("wing"), kInvalidSymbol);
  EXPECT_EQ(table.size(), 1u);  // Find is read-only
  EXPECT_EQ(table.Find("building"), 0u);
}

TEST(SymbolTableTest, EmptyStringIsAnOrdinarySymbol) {
  SymbolTable table;
  const SymbolId e = table.Intern("");
  EXPECT_EQ(table.Find(""), e);
  EXPECT_EQ(table.NameOf(e), "");
}

TEST(SymbolTableTest, SurvivesIndexGrowthAcrossManySymbols) {
  // Far beyond any initial table capacity: forces several Grow() cycles and
  // multiple string chunks (1024 strings each).
  SymbolTable table;
  constexpr size_t kCount = 5000;
  std::vector<SymbolId> ids(kCount);
  for (size_t i = 0; i < kCount; ++i) {
    ids[i] = table.Intern(Sym(i));
    EXPECT_EQ(ids[i], static_cast<SymbolId>(i));
  }
  // Every id and string survives the retirements.
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(table.Find(Sym(i)), ids[i]);
    EXPECT_EQ(table.NameOf(ids[i]), Sym(i));
    EXPECT_EQ(table.Intern(Sym(i)), ids[i]);
  }
  EXPECT_EQ(table.size(), kCount);
  EXPECT_GT(table.MemoryBytes(), kCount * 4);  // strings + index are counted
}

TEST(SymbolTableTest, ConcurrentInternSameStringsAgreeOnIds) {
  // Writers racing to intern an overlapping vocabulary must converge on one
  // id per string.
  SymbolTable table;
  constexpr int kThreads = 8;
  constexpr size_t kVocab = 512;
  std::vector<std::vector<SymbolId>> seen(kThreads,
                                          std::vector<SymbolId>(kVocab));
  {
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (size_t i = 0; i < kVocab; ++i) {
          // Different walk order per thread to maximize collisions.
          const size_t j = (i * 17 + static_cast<size_t>(t) * 31) % kVocab;
          seen[t][j] = table.Intern(Sym(j));
        }
      });
    }
    for (auto& w : writers) w.join();
  }
  EXPECT_EQ(table.size(), kVocab);
  for (size_t j = 0; j < kVocab; ++j) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][j], seen[0][j]) << "divergent id for " << Sym(j);
    }
    EXPECT_EQ(table.NameOf(seen[0][j]), Sym(j));
  }
}

TEST(SymbolTableTest, LockFreeReadersRaceWritersSafely) {
  // The left-right composition: readers probe Find()/NameOf() continuously
  // while writers intern fresh symbols, crossing chunk and index-growth
  // boundaries. Snapshot contract: a Find() may miss an in-flight intern,
  // but any published id must reverse-map to exactly the interned bytes.
  SymbolTable table;
  constexpr size_t kTotal = 4096;
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const size_t published = table.size();
        for (size_t i = 0; i < published; ++i) {
          const SymbolId id = static_cast<SymbolId>(i);
          EXPECT_EQ(table.NameOf(id), Sym(i));
        }
        // Probing a string either misses or returns its one true id.
        const SymbolId found = table.Find(Sym(kTotal / 2));
        if (found != kInvalidSymbol) {
          EXPECT_EQ(found, static_cast<SymbolId>(kTotal / 2));
        }
      }
    });
  }

  std::thread writer([&] {
    for (size_t i = 0; i < kTotal; ++i) {
      ASSERT_EQ(table.Intern(Sym(i)), static_cast<SymbolId>(i));
    }
    done.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(table.size(), kTotal);
}

TEST(SymbolTableTest, SnapshotIsolationNeverShowsUnpublishedIds) {
  // A reader that captures size() sees a fully usable prefix: every id below
  // the captured count resolves, and Find() of those strings returns ids
  // inside the prefix it captured or later (monotone growth), never garbage.
  SymbolTable table;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (size_t i = 0; i < 2048; ++i) table.Intern(Sym(i));
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    const size_t snapshot = table.size();
    for (size_t i = 0; i < snapshot; ++i) {
      const SymbolId id = table.Find(Sym(i));
      ASSERT_NE(id, kInvalidSymbol) << "published symbol vanished";
      ASSERT_LT(id, table.size());
    }
  }
  writer.join();
}

}  // namespace
}  // namespace ins
