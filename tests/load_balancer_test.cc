// Tests for load balancing: spawning a helper resolver under lookup load,
// delegating a virtual space under update load, and idle termination.

#include <gtest/gtest.h>

#include <optional>

#include "ins/harness/cluster.h"

namespace ins {
namespace {

Advertisement MakeAd(const std::string& name_text, const NodeAddress& endpoint,
                     uint32_t discriminator = 0) {
  Advertisement ad;
  ad.name_text = name_text;
  ad.announcer = AnnouncerId{endpoint.ip, 1000, discriminator};
  ad.endpoint.address = endpoint;
  ad.lifetime_s = 45;
  ad.version = 1;
  return ad;
}

Packet MakeData(const std::string& dst) {
  Packet p;
  p.destination_name = dst;
  p.payload = {1};
  return p;
}

// A candidate node that materializes a real Inr when asked to spawn.
struct CandidateNode {
  CandidateNode(SimCluster* cluster, uint32_t host_index) : cluster_(cluster) {
    socket = cluster->net().Bind(MakeAddress(host_index));
    listener = std::make_unique<SpawnListener>(
        &cluster->loop(), socket.get(), cluster->dsr_address(),
        [this](const SpawnRequest& req) {
          InrConfig config;
          config.dsr = cluster_->dsr_address();
          config.vspaces = req.vspaces;
          spawned = std::make_unique<Inr>(&cluster_->loop(), socket.get(), config);
          spawned->Start();
        });
  }

  SimCluster* cluster_;
  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<SpawnListener> listener;
  std::unique_ptr<Inr> spawned;
};

TEST(LoadBalancerTest, LookupOverloadSpawnsHelper) {
  ClusterOptions options;
  options.inr_template.load_balancer.enabled = true;
  options.inr_template.load_balancer.eval_interval = Seconds(5);
  options.inr_template.load_balancer.spawn_lookups_per_sec = 10.0;
  SimCluster cluster(options);
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  CandidateNode candidate(&cluster, 40);
  cluster.loop().RunFor(Seconds(1));  // candidate registers with the DSR

  auto svc = cluster.AddEndpoint(10);
  auto client = cluster.AddEndpoint(20);
  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=printer]", svc->address()))});
  cluster.Settle();

  // Hammer lookups: 100 per ~1 s >> threshold of 10/s.
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 100; ++i) {
      client->Send(a->address(), Envelope{MessageBody(MakeData("[service=printer]"))});
    }
    cluster.loop().RunFor(Seconds(1));
  }
  cluster.loop().RunFor(Seconds(10));

  EXPECT_GE(a->load_balancer().spawns_requested(), 1u);
  ASSERT_NE(candidate.spawned, nullptr);
  EXPECT_TRUE(candidate.listener->consumed());
  // The spawned resolver joined the overlay and routes the same spaces.
  cluster.loop().RunFor(Seconds(5));
  EXPECT_TRUE(candidate.spawned->topology().joined());
  EXPECT_TRUE(candidate.spawned->vspaces().Routes(""));
}

TEST(LoadBalancerTest, UpdateOverloadDelegatesHeaviestSpace) {
  ClusterOptions options;
  options.inr_template.load_balancer.enabled = true;
  options.inr_template.load_balancer.eval_interval = Seconds(5);
  options.inr_template.load_balancer.delegate_update_entries_per_sec = 5.0;
  SimCluster cluster(options);
  Inr* a = cluster.AddInr(1, {"alpha", "beta"});
  cluster.StabilizeTopology();
  CandidateNode candidate(&cluster, 40);
  cluster.loop().RunFor(Seconds(1));

  auto peer = cluster.AddEndpoint(30);
  // Flood name updates into beta (as if a busy neighbor kept pushing).
  for (int round = 0; round < 8; ++round) {
    NameUpdate u;
    u.vspace = "beta";
    for (int i = 0; i < 40; ++i) {
      NameUpdateEntry e;
      e.name_text = "[vspace=beta][s=n" + std::to_string(round * 40 + i) + "]";
      e.announcer = AnnouncerId{0x0b000000u + static_cast<uint32_t>(round * 40 + i), 1, 0};
      e.endpoint.address = MakeAddress(30);
      e.lifetime_s = 45;
      e.version = 1;
      u.entries.push_back(std::move(e));
    }
    peer->Send(a->address(), Envelope{MessageBody(std::move(u))});
    cluster.loop().RunFor(Seconds(1));
  }
  cluster.loop().RunFor(Seconds(10));

  EXPECT_GE(a->load_balancer().delegations(), 1u);
  EXPECT_FALSE(a->vspaces().Routes("beta"));  // shed
  EXPECT_TRUE(a->vspaces().Routes("alpha"));  // kept
  ASSERT_NE(candidate.spawned, nullptr);
  EXPECT_TRUE(candidate.spawned->vspaces().Routes("beta"));
  // The delegated space's names moved over.
  cluster.loop().RunFor(Seconds(2));
  EXPECT_GT(candidate.spawned->vspaces().Tree("beta")->record_count(), 0u);
}

TEST(LoadBalancerTest, NoCandidatesMeansNoSpawn) {
  ClusterOptions options;
  options.inr_template.load_balancer.enabled = true;
  options.inr_template.load_balancer.eval_interval = Seconds(5);
  options.inr_template.load_balancer.spawn_lookups_per_sec = 1.0;
  SimCluster cluster(options);
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  auto client = cluster.AddEndpoint(20);
  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[s=1]", svc->address()))});
  cluster.Settle();
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 50; ++i) {
      client->Send(a->address(), Envelope{MessageBody(MakeData("[s=1]"))});
    }
    cluster.loop().RunFor(Seconds(2));
  }
  EXPECT_EQ(a->load_balancer().spawns_requested(), 0u);
  EXPECT_GT(a->metrics().Counter("lb.no_candidates"), 0u);
}

TEST(LoadBalancerTest, IdleResolverTerminatesGracefully) {
  ClusterOptions options;
  options.inr_template.load_balancer.enabled = true;
  options.inr_template.load_balancer.eval_interval = Seconds(5);
  options.inr_template.load_balancer.terminate_below_lookups_per_sec = 1.0;
  options.inr_template.load_balancer.idle_intervals_before_terminate = 2;
  SimCluster cluster(options);
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  EXPECT_TRUE(a->running());
  cluster.loop().RunFor(Seconds(30));
  EXPECT_FALSE(a->running());
  cluster.loop().RunFor(Seconds(1));
  EXPECT_TRUE(cluster.dsr().ActiveInrs().empty());
}

TEST(LoadBalancerTest, DisabledDoesNothing) {
  SimCluster cluster;  // load balancer disabled by default
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(60));
  EXPECT_TRUE(a->running());
  EXPECT_EQ(a->load_balancer().spawns_requested(), 0u);
}

}  // namespace
}  // namespace ins
