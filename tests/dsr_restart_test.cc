// DSR crash/restart recovery: the DSR's state is pure soft state, so a
// restarted, empty DSR must relearn the world from resolver re-registrations
// within one dsr_refresh_interval (+ join backoff cap for overlay repair),
// and the overlay must keep functioning throughout.

#include <gtest/gtest.h>

#include "ins/harness/cluster.h"

namespace ins {
namespace {

TEST(DsrRestartTest, ResolversReRegisterWithinOneRefreshInterval) {
  SimCluster cluster;
  for (uint32_t i = 1; i <= 4; ++i) {
    cluster.AddInr(i);
    cluster.loop().RunFor(Seconds(1));
  }
  cluster.StabilizeTopology();
  ASSERT_EQ(cluster.CheckTreeInvariant(), "");

  cluster.CrashDsr();
  cluster.loop().RunFor(Seconds(5));
  cluster.RestartDsr();
  ASSERT_EQ(cluster.dsr().ActiveInrs().size(), 0u);  // restarted empty

  // Soft-state refresh: every resolver re-registers within one (jittered,
  // hence <=) dsr_refresh_interval of the restart.
  const Duration refresh = cluster.options().inr_template.topology.dsr_refresh_interval;
  cluster.loop().RunFor(refresh);
  EXPECT_EQ(cluster.dsr().ActiveInrs().size(), 4u);

  // Overlay repair (the old root may demote itself under whichever resolver
  // re-registered first, with lapse-dissolve churn) completes within the
  // join-backoff cap: total recovery <= refresh interval + backoff cap.
  auto took = cluster.MeasureReconvergence(
      cluster.options().inr_template.topology.join_backoff.max);
  ASSERT_TRUE(took.has_value()) << cluster.CheckTreeInvariant();
}

TEST(DsrRestartTest, NewResolverCanJoinAfterRestart) {
  SimCluster cluster;
  for (uint32_t i = 1; i <= 3; ++i) {
    cluster.AddInr(i);
    cluster.loop().RunFor(Seconds(1));
  }
  cluster.StabilizeTopology();

  cluster.CrashDsr();
  cluster.loop().RunFor(Seconds(3));
  cluster.RestartDsr();

  // A resolver arriving right after the restart joins the existing tree once
  // the incumbents have re-registered (it must not conclude it is the root
  // just because the DSR list was momentarily empty... it backs off and
  // retries until the list stabilizes, then peers with an earlier joiner).
  Inr* late = cluster.AddInr(7);
  const Duration refresh = cluster.options().inr_template.topology.dsr_refresh_interval;
  const Duration cap = cluster.options().inr_template.topology.join_backoff.max;
  auto took = cluster.MeasureReconvergence(refresh + cap);
  ASSERT_TRUE(took.has_value()) << cluster.CheckTreeInvariant();
  EXPECT_TRUE(late->topology().joined());
  // The overlay can finish healing before every incumbent's (jittered)
  // refresh timer has fired; one more interval registers all of them.
  cluster.loop().RunFor(refresh);
  EXPECT_EQ(cluster.dsr().ActiveInrs().size(), 4u);
}

TEST(DsrRestartTest, CrashedDsrStallsJoinsUntilRestart) {
  SimCluster cluster;
  cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  cluster.StabilizeTopology();

  cluster.CrashDsr();
  cluster.Settle();
  Inr* orphan = cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(20));
  EXPECT_FALSE(orphan->topology().joined());  // no DSR, no list, no join

  cluster.RestartDsr();
  auto took = cluster.MeasureReconvergence(
      cluster.options().inr_template.topology.dsr_refresh_interval +
      cluster.options().inr_template.topology.join_backoff.max);
  ASSERT_TRUE(took.has_value()) << cluster.CheckTreeInvariant();
  EXPECT_TRUE(orphan->topology().joined());
}

}  // namespace
}  // namespace ins
