// Replicated vspaces (inr/replication.h replica mode): DSR-assigned replica
// sets, primary-driven recruitment, cross-journaled client announcements,
// and k-replica lookup availability — a dead replica is detected by digest
// silence, reported to the DSR, and routed around within one keepalive
// interval with zero names lost. Flag-off stays the seed's one-owner model.

#include <gtest/gtest.h>

#include <string>

#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

Advertisement MakeAd(const std::string& name_text, const NodeAddress& endpoint,
                     const std::string& vspace, uint32_t discriminator = 0) {
  Advertisement ad;
  ad.vspace = vspace;
  ad.name_text = name_text;
  ad.announcer = AnnouncerId{endpoint.ip, 1000, discriminator};
  ad.endpoint.address = endpoint;
  ad.lifetime_s = 45;
  ad.version = 1;
  return ad;
}

Packet MakeData(const std::string& dst, Bytes payload) {
  Packet p;
  p.destination_name = dst;
  p.payload = std::move(payload);
  return p;
}

// Replica mode with test-speed timers: 1 s digests and a 1 s owner-cache
// TTL put detection (2 missed digests) plus forwarder re-resolution well
// inside one 5 s keepalive interval.
ClusterOptions ReplicaOptions(int k = 2) {
  ClusterOptions options;
  auto& repl = options.inr_template.replication;
  repl.enabled = true;
  repl.replica_k = k;
  repl.digest_interval = Seconds(1);
  repl.replica_missed_digests = 2;
  repl.owner_cache_ttl = Seconds(1);
  options.inr_template.load_balancer.replica_interval = Seconds(2);
  return options;
}

TEST(ReplicaFailoverTest, PrimaryRecruitsUpToKViaDsrCandidates) {
  SimCluster cluster(ReplicaOptions(2));
  Inr* a = cluster.AddInr(1, {"ha"});
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(2, {""});
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(3, {""});
  cluster.StabilizeTopology();

  // The maintenance tick asks the DSR for "ha"'s set, sees itself alone as
  // primary, and invites one candidate; the recruit adopts the space and
  // its next registration makes the membership visible DSR-wide.
  cluster.loop().RunFor(Seconds(6));
  std::vector<Inr*> replicas = cluster.ReplicasOf("ha");
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_EQ(replicas.front(), a);  // ReplicasOf returns handle order: a first
  EXPECT_GE(a->metrics().Counter("replica.invites_sent"), 1u);
  Inr* recruit = replicas.back();
  EXPECT_EQ(recruit->metrics().Counter("replica.joined"), 1u);
  EXPECT_EQ(cluster.dsr().ReplicaSetForVspace("ha").size(), 2u);
  // The set is stable: no invite churn once k is met.
  const uint64_t invites = a->metrics().Counter("replica.invites_sent");
  cluster.loop().RunFor(Seconds(6));
  EXPECT_EQ(a->metrics().Counter("replica.invites_sent"), invites);
  EXPECT_EQ(cluster.ReplicasOf("ha").size(), 2u);
}

TEST(ReplicaFailoverTest, AnyReplicaAcceptsAnnouncementsAndCrossJournals) {
  SimCluster cluster(ReplicaOptions(2));
  Inr* a = cluster.AddInr(1, {"ha"});
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(2, {""});
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(6));
  std::vector<Inr*> replicas = cluster.ReplicasOf("ha");
  ASSERT_EQ(replicas.size(), 2u);
  Inr* secondary = replicas.back();
  ASSERT_NE(secondary, a);

  // One announcement to each member; the journals cross-replicate both ways.
  auto svc = cluster.AddEndpoint(10);
  svc->Send(a->address(),
            Envelope{MessageBody(MakeAd("[vspace=ha][service=camera]", svc->address(), "ha", 0))});
  svc->Send(secondary->address(),
            Envelope{MessageBody(MakeAd("[vspace=ha][service=printer]", svc->address(), "ha", 1))});
  cluster.loop().RunFor(Seconds(4));

  const auto camera = *ParseNameSpecifier("[vspace=ha][service=camera]");
  const auto printer = *ParseNameSpecifier("[vspace=ha][service=printer]");
  for (Inr* replica : replicas) {
    EXPECT_EQ(replica->vspaces().Tree("ha")->Lookup(camera).size(), 1u);
    EXPECT_EQ(replica->vspaces().Tree("ha")->Lookup(printer).size(), 1u);
  }
  EXPECT_TRUE(cluster.CheckReplicationConvergence().empty())
      << cluster.CheckReplicationConvergence();
}

TEST(ReplicaFailoverTest, SurvivorServesEveryNameWithinOneKeepaliveOfPrimaryDeath) {
  SimCluster cluster(ReplicaOptions(2));
  Inr* a = cluster.AddInr(1, {"ha"});
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(2, {""});
  cluster.loop().RunFor(Seconds(1));
  Inr* c = cluster.AddInr(3, {""});
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(6));
  std::vector<Inr*> replicas = cluster.ReplicasOf("ha");
  ASSERT_EQ(replicas.size(), 2u);
  Inr* secondary = replicas.back();
  ASSERT_NE(secondary, a);
  Inr* outsider = (secondary == c) ? cluster.ReplicasOf("").front() : c;
  ASSERT_FALSE(outsider->vspaces().Routes("ha"));

  // Five names, all announced through the primary.
  auto svc = cluster.AddEndpoint(10);
  for (uint32_t i = 0; i < 5; ++i) {
    svc->Send(a->address(),
              Envelope{MessageBody(MakeAd("[vspace=ha][service=cam][id=c" + std::to_string(i) + "]",
                                          svc->address(), "ha", i))});
  }
  cluster.loop().RunFor(Seconds(4));
  ASSERT_EQ(secondary->vspaces().Tree("ha")->record_count(), 5u);

  // A lookup routed through the outsider works pre-kill.
  auto user = cluster.AddEndpoint(20);
  user->Send(outsider->address(),
             Envelope{MessageBody(MakeData("[vspace=ha][service=cam][id=c0]", {1}))});
  cluster.Settle(Seconds(1));
  ASSERT_EQ(svc->ReceivedOf<Packet>().size(), 1u);

  // Kill the primary silently. Within ONE keepalive interval (5 s): the
  // survivor's digest detector fires (2 x 1 s), the DSR learns via the dead
  // report, and the outsider's 1 s owner cache re-resolves to the survivor.
  cluster.CrashInr(a);
  cluster.loop().RunFor(Seconds(5));

  // Zero names lost: the survivor still holds all five, including the ones
  // it only knew via the dead primary (retention, not purge).
  EXPECT_EQ(secondary->vspaces().Tree("ha")->record_count(), 5u);
  EXPECT_GE(secondary->metrics().Counter("replica.peer_deaths"), 1u);
  EXPECT_GE(cluster.dsr().metrics().Counter("dsr.dead_reports"), 1u);

  // Goodput: every name keeps resolving through the outsider. Records on
  // the survivor still carry route-via-primary; the forwarder serves them
  // directly off the record's endpoint instead of tunneling into the dead
  // node.
  svc->ClearReceived();
  for (uint32_t i = 0; i < 5; ++i) {
    user->Send(outsider->address(),
               Envelope{MessageBody(
                   MakeData("[vspace=ha][service=cam][id=c" + std::to_string(i) + "]",
                            {static_cast<uint8_t>(i)}))});
    cluster.Settle(Seconds(1));
  }
  EXPECT_EQ(svc->ReceivedOf<Packet>().size(), 5u);
  EXPECT_GE(secondary->metrics().Counter("availability.dead_replica_reroutes"), 1u);

  // The set heals: the maintenance tick (now running on the promoted
  // survivor, the set's new primary) recruits a replacement back to k=2.
  cluster.loop().RunFor(Seconds(10));
  EXPECT_EQ(cluster.ReplicasOf("ha").size(), 2u);
  EXPECT_TRUE(cluster.CheckReplicationConvergence().empty())
      << cluster.CheckReplicationConvergence();
}

TEST(ReplicaFailoverTest, NeighborDeathRetainsReplicatedRoutes) {
  SimCluster cluster(ReplicaOptions(2));
  Inr* a = cluster.AddInr(1, {"ha"});
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(2, {""});
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(6));
  std::vector<Inr*> replicas = cluster.ReplicasOf("ha");
  ASSERT_EQ(replicas.size(), 2u);
  Inr* secondary = replicas.back();

  // With two resolvers at k=2 EVERY routed space is co-replicated ("" too:
  // its primary recruited a symmetrically), so both names below ride the
  // journal stream to the secondary.
  auto svc = cluster.AddEndpoint(10);
  svc->Send(a->address(),
            Envelope{MessageBody(MakeAd("[vspace=ha][service=cam]", svc->address(), "ha", 0))});
  svc->Send(a->address(),
            Envelope{MessageBody(MakeAd("[service=other]", svc->address(), "", 1))});
  cluster.loop().RunFor(Seconds(4));
  const auto cam = *ParseNameSpecifier("[vspace=ha][service=cam]");
  const auto other = *ParseNameSpecifier("[service=other]");
  ASSERT_EQ(secondary->vspaces().Tree("ha")->Lookup(cam).size(), 1u);
  ASSERT_EQ(secondary->vspaces().Tree("")->Lookup(other).size(), 1u);

  // The overlay keepalive detector declares a dead (3 x 5 s) long after the
  // digest detector did: the keep-set spares co-replicated routes from the
  // dead-neighbor purge, so the survivor loses nothing.
  cluster.CrashInr(a);
  cluster.loop().RunFor(Seconds(20));
  EXPECT_EQ(secondary->vspaces().Tree("ha")->Lookup(cam).size(), 1u);
  EXPECT_EQ(secondary->vspaces().Tree("")->Lookup(other).size(), 1u);
  EXPECT_GE(secondary->metrics().Counter("replica.routes_retained"), 1u);
}

TEST(ReplicaFailoverTest, NeighborDeathStillPurgesWithoutReplicaMode) {
  // Journaled replication on but k=1: no replica sets form, and the seed's
  // purge of routes via a dead neighbor is unchanged.
  ClusterOptions options;
  options.inr_template.replication.enabled = true;  // replica_k stays 1
  SimCluster cluster(options);
  Inr* a = cluster.AddInr(1, {""});
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2, {""});
  cluster.StabilizeTopology();

  auto svc = cluster.AddEndpoint(10);
  svc->Send(a->address(),
            Envelope{MessageBody(MakeAd("[service=other]", svc->address(), "", 0))});
  cluster.loop().RunFor(Seconds(4));
  const auto other = *ParseNameSpecifier("[service=other]");
  ASSERT_EQ(b->vspaces().Tree("")->Lookup(other).size(), 1u);

  cluster.CrashInr(a);
  cluster.loop().RunFor(Seconds(20));
  EXPECT_EQ(b->vspaces().Tree("")->Lookup(other).size(), 0u);
  EXPECT_EQ(b->metrics().Counter("replica.routes_retained"), 0u);
}

TEST(ReplicaFailoverTest, FlagOffKeepsSeedSingleOwnerBehavior) {
  // replication.enabled=false (the default template): no maintenance ticks,
  // no replica-set queries, no invites — the DSR answers the seed's
  // single-owner DsrVspaceRequest path only.
  SimCluster cluster;
  Inr* a = cluster.AddInr(1, {"ha"});
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2, {""});
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(15));

  EXPECT_EQ(cluster.ReplicasOf("ha").size(), 1u);
  EXPECT_EQ(a->metrics().Counter("replica.maintenance_ticks"), 0u);
  EXPECT_EQ(a->metrics().Counter("replica.invites_sent"), 0u);
  EXPECT_EQ(b->metrics().Counter("replica.joined"), 0u);
  EXPECT_EQ(cluster.dsr().metrics().Counter("dsr.replica_set_requests"), 0u);

  // replica_k is ignored without the master switch: byte-identical wiring.
  ClusterOptions half;
  half.inr_template.replication.replica_k = 3;  // enabled stays false
  SimCluster cluster2(half);
  Inr* c = cluster2.AddInr(1, {"ha"});
  cluster2.StabilizeTopology();
  cluster2.loop().RunFor(Seconds(15));
  EXPECT_EQ(c->metrics().Counter("replica.maintenance_ticks"), 0u);
  EXPECT_EQ(cluster2.dsr().metrics().Counter("dsr.replica_set_requests"), 0u);
}

}  // namespace
}  // namespace ins
