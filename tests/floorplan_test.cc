// Tests for the Floorplan discovery tool and the Locator map service.

#include <gtest/gtest.h>

#include "ins/apps/camera.h"
#include "ins/apps/floorplan.h"
#include "ins/apps/printer.h"
#include "ins/harness/cluster.h"

namespace ins {
namespace {

struct AppHost {
  AppHost(SimCluster* cluster, uint32_t host, NodeAddress inr)
      : socket(cluster->net().Bind(MakeAddress(host))) {
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster->dsr_address();
    client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
    client->Start();
  }
  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<InsClient> client;
};

struct FloorplanFixture {
  FloorplanFixture() {
    inr = cluster.AddInr(1);
    cluster.StabilizeTopology();
  }
  SimCluster cluster;
  Inr* inr;
};

TEST(FloorplanTest, DiscoversServicesAsIcons) {
  FloorplanFixture f;
  AppHost cam_host(&f.cluster, 10, f.inr->address());
  AppHost prn_host(&f.cluster, 11, f.inr->address());
  AppHost ui_host(&f.cluster, 20, f.inr->address());

  CameraTransmitter cam(cam_host.client.get(), "a", "510");
  PrinterSpooler printer(prn_host.client.get(), "lw1", "517");
  FloorplanApp ui(ui_host.client.get(), "disp1");
  f.cluster.Settle();

  Status status = InternalError("not called");
  ui.Refresh([&](Status s) { status = s; });
  f.cluster.Settle();
  ASSERT_TRUE(status.ok()) << status;

  ASSERT_EQ(ui.icons().size(), 2u);
  int cameras = 0;
  int printers = 0;
  for (const auto& [key, icon] : ui.icons()) {
    if (icon.service == "camera") {
      ++cameras;
      EXPECT_EQ(icon.room, "510");
    }
    if (icon.service == "printer") {
      ++printers;
      EXPECT_EQ(icon.room, "517");
    }
  }
  EXPECT_EQ(cameras, 1);
  EXPECT_EQ(printers, 1);
}

TEST(FloorplanTest, FilterRestrictsIcons) {
  FloorplanFixture f;
  AppHost cams(&f.cluster, 10, f.inr->address());
  AppHost ui_host(&f.cluster, 20, f.inr->address());
  CameraTransmitter c1(cams.client.get(), "a", "510");
  // A second client host for the second camera (one OnData handler each).
  AppHost cams2(&f.cluster, 11, f.inr->address());
  CameraTransmitter c2(cams2.client.get(), "b", "520");
  FloorplanApp ui(ui_host.client.get(), "disp1");
  f.cluster.Settle();

  NameSpecifier filter;
  filter.AddPath({{"room", "510"}});
  ui.SetFilter(filter);
  ui.Refresh([](Status) {});
  f.cluster.Settle();
  ASSERT_EQ(ui.icons().size(), 1u);
  EXPECT_EQ(ui.icons().begin()->second.room, "510");
}

TEST(FloorplanTest, IconsFollowSoftState) {
  FloorplanFixture f;
  AppHost ui_host(&f.cluster, 20, f.inr->address());
  FloorplanApp ui(ui_host.client.get(), "disp1");
  {
    AppHost cam_host(&f.cluster, 10, f.inr->address());
    CameraTransmitter cam(cam_host.client.get(), "a", "510");
    f.cluster.Settle();
    ui.Refresh([](Status) {});
    f.cluster.Settle();
    EXPECT_EQ(ui.icons().size(), 1u);
  }
  // The camera's host is gone; after the soft-state lifetime its icon
  // disappears from the next refresh.
  f.cluster.loop().RunFor(Seconds(60));
  ui.Refresh([](Status) {});
  f.cluster.Settle();
  EXPECT_TRUE(ui.icons().empty());
}

TEST(FloorplanTest, LocatorServesMaps) {
  FloorplanFixture f;
  AppHost loc_host(&f.cluster, 10, f.inr->address());
  AppHost ui_host(&f.cluster, 20, f.inr->address());
  LocatorService locator(loc_host.client.get());
  locator.AddMap("ne43-5", {0x4d, 0x41, 0x50});
  FloorplanApp ui(ui_host.client.get(), "disp1");
  f.cluster.Settle();

  Status status = InternalError("not called");
  Bytes map;
  ui.RequestMap("ne43-5", [&](Status s, Bytes m) {
    status = s;
    map = std::move(m);
  });
  f.cluster.Settle();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(map, (Bytes{0x4d, 0x41, 0x50}));
  EXPECT_EQ(locator.requests_served(), 1u);
}

TEST(FloorplanTest, UnknownRegionReportsNotFound) {
  FloorplanFixture f;
  AppHost loc_host(&f.cluster, 10, f.inr->address());
  AppHost ui_host(&f.cluster, 20, f.inr->address());
  LocatorService locator(loc_host.client.get());
  FloorplanApp ui(ui_host.client.get(), "disp1");
  f.cluster.Settle();

  Status status;
  ui.RequestMap("atlantis", [&](Status s, Bytes) { status = s; });
  f.cluster.Settle();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ins
