// Overload control: prioritized bounded ingress + graceful degradation.
//
// Pins the PR's headline invariant: at 4x offered load the resolver keeps
// >= 99% of class-0 control traffic (soft-state refreshes, overlay/DSR
// messages) admitted AND processed, sheds exclusively class-2 data before any
// class-1 discovery traffic, and no name expires because its refresh was
// shed. Also pins the classifier, strict-priority drain order, shed order,
// and the deadline-budget charge for time spent queued.

#include <gtest/gtest.h>

#include <vector>

#include "ins/harness/cluster.h"
#include "ins/inr/admission.h"
#include "ins/inr/forwarding.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

Advertisement MakeAd(const std::string& name_text, const NodeAddress& endpoint,
                     uint64_t version = 1) {
  Advertisement ad;
  ad.name_text = name_text;
  ad.announcer = AnnouncerId{endpoint.ip, 1000, 0};
  ad.endpoint.address = endpoint;
  ad.lifetime_s = 45;
  ad.version = version;
  return ad;
}

Packet MakeData(const std::string& dst, Bytes payload = {0}) {
  Packet p;
  p.destination_name = dst;
  p.payload = std::move(payload);
  return p;
}

TEST(OverloadTest, ClassifierMapsProtocolOntoPriorityClasses) {
  Packet late = MakeData("[service=x]");
  EXPECT_EQ(ClassifyMessage(Envelope{MessageBody(late)}), 2);
  Packet early = late;
  early.early_binding = true;
  EXPECT_EQ(ClassifyMessage(Envelope{MessageBody(early)}), 1);
  EXPECT_EQ(ClassifyMessage(Envelope{MessageBody(DiscoveryRequest{})}), 1);
  // Everything that keeps soft state and the overlay alive is class 0.
  EXPECT_EQ(ClassifyMessage(Envelope{MessageBody(MakeAd("[a=b]", MakeAddress(9)))}), 0);
  EXPECT_EQ(ClassifyMessage(Envelope{MessageBody(NameUpdate{})}), 0);
  EXPECT_EQ(ClassifyMessage(Envelope{MessageBody(Ping{})}), 0);
  EXPECT_EQ(ClassifyMessage(Envelope{MessageBody(PeerKeepalive{MakeAddress(9)})}), 0);
  EXPECT_EQ(ClassifyMessage(Envelope{MessageBody(DsrRegister{})}), 0);
}

struct ControllerHarness {
  explicit ControllerHarness(AdmissionConfig config)
      : controller(&loop, &metrics, config,
                   [this](const NodeAddress&, const Envelope& env, Duration) {
                     dispatched.push_back(ClassifyMessage(env));
                   }) {}

  sim::EventLoop loop;
  MetricsRegistry metrics;
  std::vector<int> dispatched;  // classes, in dispatch order
  AdmissionController controller;
};

TEST(OverloadTest, StrictPriorityDrainsControlBeforeQueriesBeforeData) {
  AdmissionConfig config;
  config.enabled = true;
  config.processing_cost = Milliseconds(10);
  ControllerHarness h(config);

  // Admitted in worst-case order within one tick; drain must re-order.
  h.controller.Admit(MakeAddress(1), Envelope{MessageBody(MakeData("[a=1]"))});
  h.controller.Admit(MakeAddress(1), Envelope{MessageBody(DiscoveryRequest{})});
  h.controller.Admit(MakeAddress(1), Envelope{MessageBody(Ping{})});
  h.controller.Admit(MakeAddress(1), Envelope{MessageBody(MakeData("[a=2]"))});
  h.controller.Admit(MakeAddress(1), Envelope{MessageBody(NameUpdate{})});
  h.loop.RunFor(Seconds(1));
  EXPECT_EQ(h.dispatched, (std::vector<int>{0, 0, 1, 2, 2}));
}

TEST(OverloadTest, ShedsClass2StrictlyBeforeClass1AndNeverClass0) {
  AdmissionConfig config;
  config.enabled = true;
  config.processing_cost = Milliseconds(10);  // class 2 sheds past 5 queued,
  ControllerHarness h(config);                // class 1 past 25 (50/250 ms lag)

  // Moderate overload: a burst twice the class-2 threshold. The overflow is
  // shed at admission; nothing class 1 or class 0 is touched.
  for (int i = 0; i < 10; ++i) {
    h.controller.Admit(MakeAddress(1), Envelope{MessageBody(MakeData("[a=1]"))});
  }
  h.controller.Admit(MakeAddress(1), Envelope{MessageBody(DiscoveryRequest{})});
  h.controller.Admit(MakeAddress(1), Envelope{MessageBody(Ping{})});
  EXPECT_GT(h.metrics.Counter("forwarding.drop.shed_class2"), 0u);
  EXPECT_EQ(h.metrics.Counter("forwarding.drop.shed_class1"), 0u);
  EXPECT_EQ(h.metrics.Counter("forwarding.drop.shed_class0"), 0u);

  // Severe overload: push the backlog past the class-1 threshold too.
  for (int i = 0; i < 30; ++i) {
    h.controller.Admit(MakeAddress(1), Envelope{MessageBody(DiscoveryRequest{})});
  }
  for (int i = 0; i < 50; ++i) {
    h.controller.Admit(MakeAddress(1), Envelope{MessageBody(Ping{})});
  }
  EXPECT_GT(h.metrics.Counter("forwarding.drop.shed_class1"), 0u);
  EXPECT_EQ(h.metrics.Counter("forwarding.drop.shed_class0"), 0u);

  h.loop.RunFor(Seconds(5));
  // Everything admitted was eventually processed, in class order.
  EXPECT_EQ(h.metrics.Counter("admission.processed.class0"),
            h.metrics.Counter("admission.admitted.class0"));
  EXPECT_EQ(h.metrics.Counter("admission.processed.class1"),
            h.metrics.Counter("admission.admitted.class1"));
}

TEST(OverloadTest, DisabledControllerDispatchesInline) {
  AdmissionConfig config;  // enabled = false: the seed behaviour
  ControllerHarness h(config);
  for (int i = 0; i < 100; ++i) {
    h.controller.Admit(MakeAddress(1), Envelope{MessageBody(MakeData("[a=1]"))});
  }
  // No event loop turn needed; nothing queued, nothing shed, nothing counted.
  EXPECT_EQ(h.dispatched.size(), 100u);
  EXPECT_EQ(h.metrics.Counter("forwarding.drop.shed_class2"), 0u);
  EXPECT_EQ(h.metrics.Counter("admission.admitted.class2"), 0u);
  EXPECT_EQ(h.controller.QueueDepth(2), 0u);
}

// The headline acceptance invariant, end to end through a live resolver.
TEST(OverloadTest, FourTimesOverloadDegradesDataOnlyAndControlSurvives) {
  SimCluster cluster;
  InrConfig config = cluster.options().inr_template;
  config.admission.enabled = true;
  // 10 ms per message => the resolver serves 100 msg/s.
  config.admission.processing_cost = Milliseconds(10);
  Inr* inr = cluster.AddInrWithConfig(1, std::move(config));
  cluster.StabilizeTopology();

  auto svc = cluster.AddEndpoint(10);
  auto flood = cluster.AddEndpoint(20);
  svc->Send(inr->address(), Envelope{MessageBody(MakeAd("[service=sink]", svc->address()))});
  cluster.Settle();
  ASSERT_EQ(inr->vspaces().Tree("")->record_count(), 1u);

  // Class-0 stream: the service refreshes its 45 s-lifetime advertisement
  // every 5 s, like a real client would under `refresh_interval`.
  uint64_t version = 1;
  const TimePoint flood_end = cluster.loop().Now() + Seconds(50);
  std::function<void()> refresh = [&] {
    svc->Send(inr->address(),
              Envelope{MessageBody(MakeAd("[service=sink]", svc->address(), ++version))});
    if (cluster.loop().Now() < flood_end + Seconds(5)) {
      cluster.loop().ScheduleAfter(Seconds(5), refresh);
    }
  };
  cluster.loop().ScheduleAfter(Seconds(5), refresh);

  // Class-2 flood at 4x capacity: 400 data packets/s for 50 s.
  std::function<void()> burst = [&] {
    for (int i = 0; i < 4; ++i) {
      flood->Send(inr->address(), Envelope{MessageBody(MakeData("[service=sink]"))});
    }
    if (cluster.loop().Now() < flood_end) {
      cluster.loop().ScheduleAfter(Milliseconds(10), burst);
    }
  };
  burst();
  cluster.loop().RunFor(Seconds(58));  // flood + drain-out

  const MetricsRegistry& m = inr->metrics();
  // Control plane: every class-0 message admitted (100%, so >= the 99% bar)
  // and processed, modulo at most one message in flight at the cutoff.
  const uint64_t c0_admitted = m.Counter("admission.admitted.class0");
  ASSERT_GT(c0_admitted, 0u);
  EXPECT_EQ(m.Counter("forwarding.drop.shed_class0"), 0u);
  EXPECT_GE(m.Counter("admission.processed.class0") + 1, c0_admitted);

  // Data plane: degraded heavily (roughly 3/4 of the flood shed) and
  // strictly before any discovery traffic.
  EXPECT_GT(m.Counter("forwarding.drop.shed_class2"), 0u);
  EXPECT_EQ(m.Counter("forwarding.drop.shed_class1"), 0u);
  const uint64_t c2_admitted = m.Counter("admission.admitted.class2");
  const uint64_t c2_shed = m.Counter("forwarding.drop.shed_class2");
  EXPECT_LT(c2_admitted, c2_shed);  // under 4x load, most data is shed

  // Zero soft-state casualties: the shed storm never touched a refresh.
  EXPECT_EQ(m.Counter("discovery.names_expired"), 0u);
  EXPECT_EQ(inr->vspaces().Tree("")->record_count(), 1u);
  // Goodput continued throughout: admitted data was actually delivered.
  EXPECT_EQ(svc->ReceivedOf<Packet>().size(), c2_admitted);
}

TEST(OverloadTest, QueueingDelayIsChargedAgainstTheDeadlineBudget) {
  SimCluster cluster;
  InrConfig config = cluster.options().inr_template;
  config.admission.enabled = true;
  config.admission.processing_cost = Milliseconds(10);
  Inr* inr = cluster.AddInrWithConfig(1, std::move(config));
  cluster.StabilizeTopology();

  auto svc = cluster.AddEndpoint(10);
  auto client = cluster.AddEndpoint(20);
  svc->Send(inr->address(), Envelope{MessageBody(MakeAd("[service=sink]", svc->address()))});
  cluster.Settle();

  // Build ~200 ms of class-1 backlog, then append one early-binding request
  // with a 50 ms budget. It is admitted (the class-1 shed threshold is
  // 250 ms) but by dispatch its budget is long gone.
  for (int i = 0; i < 20; ++i) {
    DiscoveryRequest req;
    req.request_id = 100 + static_cast<uint64_t>(i);
    req.reply_to = client->address();
    client->Send(inr->address(), Envelope{MessageBody(req)});
  }
  Packet doomed = MakeData("[service=sink]");
  doomed.early_binding = true;
  doomed.deadline_budget_ms = 50;
  doomed.payload = EncodeEarlyBindingPayload(999, client->address());
  client->Send(inr->address(), Envelope{MessageBody(doomed)});

  const uint64_t deadline_drops_before = inr->metrics().Counter("forwarding.drop.deadline");
  cluster.loop().RunFor(Seconds(2));
  EXPECT_EQ(inr->metrics().Counter("forwarding.drop.deadline"), deadline_drops_before + 1);
  // The doomed request produced no response; the backlog itself all did.
  EXPECT_EQ(client->ReceivedOf<EarlyBindingResponse>().size(), 0u);
  EXPECT_EQ(client->ReceivedOf<DiscoveryResponse>().size(), 20u);
}

}  // namespace
}  // namespace ins
