// Property tests for the name layer (satellite of the concurrent-core PR):
//
//   1. parse -> serialize -> parse is idempotent for every name the workload
//      generators can produce, including wildcard-bearing queries;
//   2. the matcher is monotone: adding an av-pair to a query never GROWS the
//      match set (per-advertisement and at the Lookup level);
//   3. on sparse (not schema-complete) workloads the Figure-5 tree lookup is
//      a SUBSET of the prose Matches() semantics — the direction the
//      name_tree.h semantics note promises.

#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ins/baseline/linear_name_table.h"
#include "ins/common/clock.h"
#include "ins/common/rng.h"
#include "ins/name/compiled_name.h"
#include "ins/name/matcher.h"
#include "ins/name/name_specifier.h"
#include "ins/name/parser.h"
#include "ins/name/symbol_table.h"
#include "ins/nametree/name_tree.h"
#include "ins/workload/namegen.h"

namespace ins {
namespace {

void ExpectRoundTripIdempotent(const NameSpecifier& name) {
  const std::string s1 = name.ToString();
  auto p1 = ParseNameSpecifier(s1);
  ASSERT_TRUE(p1.ok()) << "unparseable: " << s1 << " — " << p1.status();
  // The generators build canonical (attribute-sorted) specifiers, so one
  // round trip must reproduce the original exactly...
  EXPECT_TRUE(*p1 == name) << s1;
  // ...and a second round trip must be a fixed point.
  const std::string s2 = p1->ToString();
  EXPECT_EQ(s2, s1);
  auto p2 = ParseNameSpecifier(s2);
  ASSERT_TRUE(p2.ok()) << s2;
  EXPECT_TRUE(*p2 == *p1) << s2;
}

TEST(NamePropertyTest, ParseSerializeParseIsIdempotent) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    for (int i = 0; i < 25; ++i) {
      NameSpecifier complete = GenerateUniformName(rng, UniformNameParams{3, 3, 3, 2});
      NameSpecifier sparse = GenerateUniformName(rng, kPaperLookupParams);
      NameSpecifier chain = GenerateChainName(rng, 4, 4, 3);
      NameSpecifier sized = GenerateSizedName(rng, 82, "camera");
      ExpectRoundTripIdempotent(complete);
      ExpectRoundTripIdempotent(sparse);
      ExpectRoundTripIdempotent(chain);
      ExpectRoundTripIdempotent(sized);
      // Queries with omitted pairs and wildcard leaves round-trip too.
      ExpectRoundTripIdempotent(DeriveQuery(rng, complete, 0.7, 0.5));
      ExpectRoundTripIdempotent(DeriveQuery(rng, sized, 0.5, 0.3));
    }
  }
}

// Compile -> decompile is the identity for every generated shape (the
// interned hot path loses no information), and ForQuery compiles against a
// table that has seen the name's vocabulary exactly like ForUpdate — while
// against an EMPTY table its unknown symbols make tree lookups miss, which
// is the "advertised nowhere" semantics the decoder relies on.
TEST(NamePropertyTest, CompileDecompileIsIdentity) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 31);
    SymbolTable table;
    for (int i = 0; i < 25; ++i) {
      for (const NameSpecifier& name :
           {GenerateUniformName(rng, UniformNameParams{3, 3, 3, 2}),
            GenerateUniformName(rng, kPaperLookupParams), GenerateChainName(rng, 4, 4, 3),
            DeriveQuery(rng, GenerateSizedName(rng, 82, "camera"), 0.6, 0.4)}) {
        const CompiledName up = CompiledName::ForUpdate(name, &table);
        EXPECT_TRUE(up.Decompile(table) == name) << name.ToString();
        // After ForUpdate interned the vocabulary, a read-only compile of the
        // same name resolves every symbol and decompiles identically.
        const CompiledName q = CompiledName::ForQuery(name, table);
        EXPECT_TRUE(q.Decompile(table) == name) << name.ToString();
      }
    }
  }
}

TEST(NamePropertyTest, UnknownSymbolsPreserveFigure5Semantics) {
  Rng rng(7);
  NameTree tree;
  NameSpecifier first_ad;
  for (uint32_t i = 0; i < 100; ++i) {
    NameSpecifier ad = GenerateUniformName(rng, kPaperLookupParams);
    if (i == 0) {
      first_ad = ad;
    }
    NameRecord rec;
    rec.announcer = AnnouncerId{0x1a000000u + i, 1, i};
    rec.expires = Seconds(3600);
    rec.version = 1;
    tree.Upsert(ad, rec);
  }
  const size_t interned = tree.symbols().size();

  // An attribute the resolver has never seen compiles to kInvalidSymbol and
  // probes absent at every node — Figure 5's `if Ta = null then continue`,
  // so the pair does not constrain. Must agree with the string path, and
  // ForQuery must not grow the table.
  NameSpecifier alien_attr;
  alien_attr.AddPath({{"never-seen-attr", "on"}});
  EXPECT_EQ(tree.Lookup(CompiledName::ForQuery(alien_attr, tree.symbols())).size(),
            tree.Lookup(alien_attr).size());
  EXPECT_EQ(tree.symbols().size(), interned);

  // An unknown VALUE under a known attribute is "advertised nowhere": the
  // flat-map probe misses and the candidate set empties.
  ASSERT_FALSE(first_ad.roots().empty());
  NameSpecifier alien_value;
  alien_value.AddPath({{first_ad.roots()[0].attribute, "never-seen-value"}});
  EXPECT_TRUE(tree.Lookup(CompiledName::ForQuery(alien_value, tree.symbols())).empty());
  EXPECT_TRUE(tree.Lookup(alien_value).empty());
  EXPECT_EQ(tree.symbols().size(), interned);
}

// Appends one av-pair at a random node of `query`, using attributes from a
// pool disjoint from the generators' so no node ever carries a duplicate
// attribute. Returns the strengthened copy.
NameSpecifier AddRandomPair(Rng& rng, const NameSpecifier& query) {
  NameSpecifier out = query;
  std::vector<std::pair<std::string, std::string>> prefix;
  const std::vector<AvPair>* level = &out.roots();
  // Random walk: descend with probability 1/2 while children exist.
  while (!level->empty() && rng.NextBool(0.5)) {
    const AvPair& pick = (*level)[rng.NextBelow(level->size())];
    if (pick.attribute.rfind("extra", 0) == 0 || !pick.value.is_literal()) {
      break;  // never descend below the injected pool or a wildcard leaf
    }
    prefix.emplace_back(pick.attribute, pick.value.literal());
    level = &pick.children;
  }
  // Levels hold unique attributes: pick an "extra" attribute absent here
  // (start at a random candidate, probe in order — 6 candidates always beat
  // the <= 4 pairs a generated level can hold).
  std::string attr;
  const uint64_t start = rng.NextBelow(6);
  for (uint64_t k = 0; k < 6 && attr.empty(); ++k) {
    std::string candidate = "extra" + std::to_string((start + k) % 6);
    bool present = false;
    for (const AvPair& p : *level) {
      present = present || p.attribute == candidate;
    }
    if (!present) {
      attr = candidate;
    }
  }
  std::vector<std::pair<std::string, std::string>> path = prefix;
  path.emplace_back(attr, "w" + std::to_string(rng.NextBelow(3)));
  out.AddPath(path);
  return out;
}

TEST(NamePropertyTest, MatcherIsMonotoneUnderQueryStrengthening) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 17);
    // A population where the "extra*" attributes genuinely discriminate:
    // half the advertisements carry a random extra root pair.
    std::vector<NameSpecifier> ads;
    LinearNameTable table;
    for (uint32_t i = 0; i < 150; ++i) {
      NameSpecifier ad = GenerateUniformName(rng, kPaperLookupParams);
      if (rng.NextBool(0.5)) {
        ad.AddPath({{"extra" + std::to_string(rng.NextBelow(3)),
                     "w" + std::to_string(rng.NextBelow(3))}});
      }
      NameRecord rec;
      rec.announcer = AnnouncerId{0x0b000000u + i, seed, i};
      rec.expires = Seconds(3600);
      rec.version = 1;
      table.Upsert(ad, rec);
      ads.push_back(std::move(ad));
    }

    for (int q = 0; q < 300; ++q) {
      const NameSpecifier& ad = ads[rng.NextBelow(ads.size())];
      NameSpecifier query = DeriveQuery(rng, ad, 0.6, 0.3);
      NameSpecifier stronger = AddRandomPair(rng, query);

      // Per-advertisement monotonicity: a stronger query matches a subset.
      for (const NameSpecifier& other : ads) {
        if (Matches(other, stronger)) {
          EXPECT_TRUE(Matches(other, query))
              << "ad " << other.ToString() << "\nmatched " << stronger.ToString()
              << "\nbut not the weaker " << query.ToString();
        }
      }

      // Lookup-level: the stronger query's match set is contained in the
      // weaker's (and DeriveQuery guarantees the weak set is non-empty).
      std::set<AnnouncerId> weak;
      for (const NameRecord* r : table.Lookup(query)) {
        weak.insert(r->announcer);
      }
      EXPECT_FALSE(weak.empty());
      for (const NameRecord* r : table.Lookup(stronger)) {
        EXPECT_TRUE(weak.count(r->announcer))
            << stronger.ToString() << " grew the match set vs " << query.ToString();
      }
    }
  }
}

TEST(NamePropertyTest, TreeLookupIsSubsetOfMatchesOnSparseWorkloads) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 101);
    NameTree tree;
    LinearNameTable oracle;
    std::vector<NameSpecifier> ads;
    for (uint32_t i = 0; i < 200; ++i) {
      // Sparse shapes: na < ra plus chain names — ads omit attributes their
      // siblings carry, the regime where tree and prose semantics diverge.
      NameSpecifier ad = rng.NextBool(0.5)
                             ? GenerateUniformName(rng, kPaperLookupParams)
                             : GenerateChainName(rng, 3, 4, 3);
      NameRecord rec;
      rec.announcer = AnnouncerId{0x0e000000u + i, seed, i};
      rec.expires = Seconds(3600);
      rec.version = 1;
      ASSERT_EQ(tree.Upsert(ad, rec).kind, NameTree::UpsertOutcome::kNew);
      oracle.Upsert(ad, rec);
      ads.push_back(std::move(ad));
    }

    size_t nonempty = 0;
    for (int q = 0; q < 400; ++q) {
      const NameSpecifier& ad = ads[rng.NextBelow(ads.size())];
      NameSpecifier query = DeriveQuery(rng, ad, 0.6, 0.4);
      std::set<AnnouncerId> allowed;
      for (const NameRecord* r : oracle.Lookup(query)) {
        allowed.insert(r->announcer);
      }
      std::vector<const NameRecord*> got = tree.Lookup(query);
      nonempty += got.empty() ? 0 : 1;
      for (const NameRecord* r : got) {
        EXPECT_TRUE(allowed.count(r->announcer))
            << "tree returned a record Matches() rejects for " << query.ToString();
      }
    }
    // The property must not hold vacuously.
    EXPECT_GT(nonempty, 100u);
    EXPECT_TRUE(tree.CheckInvariants().ok());
  }
}

}  // namespace
}  // namespace ins
