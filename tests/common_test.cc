// Unit tests for ins/common: Status/Result, byte codecs, RNG, strings,
// clocks, metrics.

#include <gtest/gtest.h>

#include <set>

#include "ins/common/bytes.h"
#include "ins/common/clock.h"
#include "ins/common/metrics.h"
#include "ins/common/node_address.h"
#include "ins/common/rng.h"
#include "ins/common/status.h"
#include "ins/common/string_util.h"

namespace ins {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such name");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such name");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such name");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgumentError("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(BytesTest, RoundTripsScalars) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefull);
  w.WriteString("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadU8(), 0xab);
  EXPECT_EQ(*r.ReadU16(), 0x1234);
  EXPECT_EQ(*r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789abcdefull);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, BigEndianLayout) {
  ByteWriter w;
  w.WriteU16(0x0102);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0x02);
}

TEST(BytesTest, UnderrunIsError) {
  ByteWriter w;
  w.WriteU8(1);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.ReadU8().ok());
  auto bad = r.ReadU32();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(BytesTest, TruncatedStringIsError) {
  ByteWriter w;
  w.WriteU16(100);  // claims 100 bytes follow
  w.WriteU8('x');
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(BytesTest, PatchBackfillsHeaderFields) {
  ByteWriter w;
  w.WriteU16(0);  // placeholder
  w.WriteString("payload");
  w.PatchU16(0, static_cast<uint16_t>(w.size()));
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadU16(), w.size());
}

TEST(BytesTest, SeekSupportsPointerFields) {
  ByteWriter w;
  w.WriteU32(8);  // offset of the interesting field
  w.WriteU32(0);  // padding
  w.WriteU16(77);
  ByteReader r(w.bytes());
  uint32_t off = *r.ReadU32();
  ASSERT_TRUE(r.SeekTo(off).ok());
  EXPECT_EQ(*r.ReadU16(), 77);
  EXPECT_FALSE(r.SeekTo(1000).ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.NextU64() == b.NextU64()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBelow(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(StringUtilTest, Split) {
  auto v = SplitString("a,b,,c", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[2], "");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, Affixes) {
  EXPECT_TRUE(StartsWith("service=camera", "service"));
  EXPECT_FALSE(StartsWith("svc", "service"));
  EXPECT_TRUE(EndsWith("room=510", "510"));
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(StripWhitespace("  x y \n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, Ipv4Rendering) {
  EXPECT_EQ(Ipv4ToString(0x0a000001), "10.0.0.1");
  EXPECT_EQ(Ipv4ToString(0xffffffff), "255.255.255.255");
}

TEST(NodeAddressTest, OrderingAndValidity) {
  NodeAddress a = MakeAddress(1);
  NodeAddress b = MakeAddress(2);
  EXPECT_TRUE(a.IsValid());
  EXPECT_FALSE(kInvalidAddress.IsValid());
  EXPECT_LT(a, b);
  EXPECT_EQ(a, MakeAddress(1));
  EXPECT_NE(a, b);
  EXPECT_EQ(a.ToString(), "10.0.0.1:5678");
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock c;
  EXPECT_EQ(c.Now().count(), 0);
  c.Advance(Milliseconds(15));
  EXPECT_EQ(c.Now(), Milliseconds(15));
  c.Set(Seconds(2));
  EXPECT_EQ(c.Now(), Seconds(2));
}

TEST(ClockTest, ConversionHelpers) {
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMillis(Milliseconds(250)), 250.0);
  EXPECT_EQ(Milliseconds(1), Microseconds(1000));
}

TEST(MetricsTest, CountersAndGauges) {
  MetricsRegistry m;
  m.Increment("updates");
  m.Increment("updates", 4);
  EXPECT_EQ(m.Counter("updates"), 5u);
  EXPECT_EQ(m.Counter("missing"), 0u);
  m.SetGauge("names", 17);
  EXPECT_EQ(m.Gauge("names"), 17);
  m.Reset();
  EXPECT_EQ(m.Counter("updates"), 0u);
}

}  // namespace
}  // namespace ins
