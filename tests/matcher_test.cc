// Unit tests for specifier-vs-specifier matching semantics (paper §2.3.2).

#include <gtest/gtest.h>

#include "ins/name/matcher.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

NameSpecifier P(const char* text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

TEST(MatcherTest, ExactMatch) {
  EXPECT_TRUE(Matches(P("[service=camera]"), P("[service=camera]")));
  EXPECT_FALSE(Matches(P("[service=camera]"), P("[service=printer]")));
}

TEST(MatcherTest, EmptyQueryMatchesEverything) {
  EXPECT_TRUE(Matches(P("[service=camera[id=a]]"), P("")));
}

TEST(MatcherTest, OmittedQueryAttributesAreWildcards) {
  // Advertisement is more specific than the query.
  EXPECT_TRUE(Matches(P("[service=camera[id=a]][room=510]"), P("[service=camera]")));
  EXPECT_TRUE(Matches(P("[service=camera[id=a]][room=510]"), P("[room=510]")));
}

TEST(MatcherTest, OmittedAdvertisementAttributesAreWildcards) {
  // Advertisement chain is a prefix of the query chain: matches, because
  // LOOKUP-NAME unions records attached at interior value-nodes.
  EXPECT_TRUE(Matches(P("[service=camera]"), P("[service=camera[id=a]]")));
  // Query attribute entirely absent from the advertisement: no constraint.
  EXPECT_TRUE(Matches(P("[service=camera]"), P("[service=camera][room=510]")));
}

TEST(MatcherTest, ValueMismatchAtAnyLevelFails) {
  EXPECT_FALSE(Matches(P("[service=camera[id=a]]"), P("[service=camera[id=b]]")));
  EXPECT_FALSE(Matches(P("[a=1[b=2[c=3]]]"), P("[a=1[b=2[c=4]]]")));
}

TEST(MatcherTest, WildcardQueryValue) {
  EXPECT_TRUE(Matches(P("[service=camera[id=a]]"), P("[service=camera[id=*]]")));
  EXPECT_TRUE(Matches(P("[service=printer]"), P("[service=*]")));
}

TEST(MatcherTest, PairsBelowWildcardAreIgnored) {
  // Per the paper, av-pairs after a wildcard are ignored (single pass).
  EXPECT_TRUE(Matches(P("[room=510]"), P("[room=*[floor=9]]")));
}

TEST(MatcherTest, RangeQueryValues) {
  EXPECT_TRUE(Matches(P("[service=printer[load=3]]"), P("[service=printer[load<5]]")));
  EXPECT_FALSE(Matches(P("[service=printer[load=7]]"), P("[service=printer[load<5]]")));
  EXPECT_TRUE(Matches(P("[load=5]"), P("[load<=5]")));
  EXPECT_FALSE(Matches(P("[load=5]"), P("[load<5]")));
  EXPECT_TRUE(Matches(P("[load=10]"), P("[load>=10]")));
  // Non-numeric advertised value never satisfies a range.
  EXPECT_FALSE(Matches(P("[load=idle]"), P("[load<5]")));
}

TEST(MatcherTest, PaperFigure2Example) {
  const char* kAd =
      "[city=washington[building=whitehouse[wing=west[room=oval-office]]]]"
      "[service=camera[data-type=picture[format=jpg]][resolution=640x480]]"
      "[accessibility=public]";
  // All public 640x480 cameras in the West Wing (room wildcarded).
  const char* kQuery =
      "[city=washington[building=whitehouse[wing=west[room=*]]]]"
      "[service=camera[resolution=640x480]][accessibility=public]";
  EXPECT_TRUE(Matches(P(kAd), P(kQuery)));

  // Different wing does not match.
  const char* kEastQuery =
      "[city=washington[building=whitehouse[wing=east[room=*]]]]";
  EXPECT_FALSE(Matches(P(kAd), P(kEastQuery)));
}

TEST(MatcherTest, OrthogonalBranchesCheckedIndependently) {
  NameSpecifier ad = P("[service=camera[data-type=picture][resolution=640x480]]");
  EXPECT_TRUE(Matches(ad, P("[service=camera[resolution=640x480]]")));
  EXPECT_TRUE(Matches(ad, P("[service=camera[data-type=picture]]")));
  EXPECT_FALSE(Matches(ad, P("[service=camera[resolution=800x600]]")));
}

TEST(MatcherTest, AdvertisedWildcardMatchesAnyQueryValue) {
  // An advertisement may declare "any value" for an attribute.
  EXPECT_TRUE(Matches(P("[service=camera[id=*]]"), P("[service=camera[id=xyz]]")));
}

TEST(MatcherTest, MatchIsNotSymmetric) {
  NameSpecifier general = P("[service=camera]");
  NameSpecifier specific = P("[service=camera[id=a]]");
  EXPECT_TRUE(Matches(general, specific));   // ad prefix of query: match
  EXPECT_TRUE(Matches(specific, general));   // query prefix of ad: match
  NameSpecifier wild = P("[service=*]");
  EXPECT_TRUE(Matches(specific, wild));
  // But a literal query does not accept a differing literal ad.
  EXPECT_FALSE(Matches(P("[service=printer]"), P("[service=camera]")));
}

}  // namespace
}  // namespace ins
