// Unit and property tests for the per-vspace change journal (nametree layer):
// serial arithmetic, ring eviction forcing the snapshot fallback, and exactly
// which store writes append entries — refreshes must NOT (liveness travels as
// digests, not journal entries), and the left-right concurrent mode must not
// double-record its double-applied write lambdas.

#include <gtest/gtest.h>

#include "ins/common/rng.h"
#include "ins/name/parser.h"
#include "ins/nametree/journal.h"
#include "ins/nametree/sharded_name_tree.h"

namespace ins {
namespace {

JournalEntry Entry(uint32_t discriminator) {
  JournalEntry e;
  e.op = JournalOp::kUpsert;
  e.announcer = AnnouncerId{0x0a000001, 1000, discriminator};
  e.name_text = "[unit=" + std::to_string(discriminator) + "]";
  return e;
}

TEST(NameJournalTest, SerialsAreStrictlyIncreasingFromOne) {
  NameJournal j(8);
  EXPECT_EQ(j.head_serial(), 0u);
  EXPECT_EQ(j.tail_serial(), 0u);
  for (uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(j.Append(Entry(static_cast<uint32_t>(i))), i);
  }
  EXPECT_EQ(j.head_serial(), 5u);
  EXPECT_EQ(j.tail_serial(), 1u);
  EXPECT_EQ(j.size(), 5u);
}

TEST(NameJournalTest, ReadSinceReturnsContiguousRangeOldestFirst) {
  NameJournal j(16);
  for (uint32_t i = 1; i <= 10; ++i) {
    j.Append(Entry(i));
  }
  std::vector<JournalEntry> out;
  bool more = false;
  ASSERT_TRUE(j.ReadSince(3, 4, &out, &more));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front().serial, 4u);
  EXPECT_EQ(out.back().serial, 7u);
  EXPECT_TRUE(more);

  out.clear();
  ASSERT_TRUE(j.ReadSince(7, 100, &out, &more));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.back().serial, 10u);
  EXPECT_FALSE(more);
}

TEST(NameJournalTest, CaughtUpReaderGetsEmptySuccess) {
  NameJournal j(4);
  j.Append(Entry(1));
  std::vector<JournalEntry> out;
  EXPECT_TRUE(j.ReadSince(1, 10, &out));
  EXPECT_TRUE(out.empty());
  // A reader claiming a FUTURE serial is also "caught up": the server's
  // journal restarted is handled by the digest regression path, not here.
  EXPECT_TRUE(j.ReadSince(99, 10, &out));
  EXPECT_TRUE(out.empty());
}

TEST(NameJournalTest, RingEvictionForcesSnapshotFallback) {
  NameJournal j(4);
  for (uint32_t i = 1; i <= 10; ++i) {
    j.Append(Entry(i));
  }
  EXPECT_EQ(j.size(), 4u);
  EXPECT_EQ(j.tail_serial(), 7u);

  std::vector<JournalEntry> out;
  // Serial 6 is the newest cursor that can still be served (entries 7..10).
  ASSERT_TRUE(j.ReadSince(6, 10, &out));
  EXPECT_EQ(out.size(), 4u);
  // Serial 5 fell off the ring: entry 6 is gone, no contiguous delta exists.
  out.clear();
  EXPECT_FALSE(j.ReadSince(5, 10, &out));
  EXPECT_FALSE(j.ReadSince(0, 10, &out));
}

TEST(NameJournalTest, EmptyJournalServesOnlySerialZero) {
  NameJournal j(4);
  std::vector<JournalEntry> out;
  EXPECT_TRUE(j.ReadSince(0, 10, &out));  // nothing ever written: caught up
  EXPECT_TRUE(out.empty());
}

// --- Store capture -----------------------------------------------------------

NameRecord Rec(uint32_t discriminator, uint64_t version) {
  NameRecord rec;
  rec.announcer = AnnouncerId{0x0a000002, 2000, discriminator};
  rec.version = version;
  rec.expires = Seconds(1000 + version);
  rec.app_metric = static_cast<double>(version);
  rec.endpoint.address = NodeAddress{rec.announcer.ip, 7000};
  return rec;
}

ShardedNameTree::Options StoreOptions(size_t journal_capacity, bool concurrent = false,
                                      size_t fallback_shards = 1) {
  ShardedNameTree::Options opts;
  opts.journal_capacity = journal_capacity;
  opts.concurrent = concurrent;
  opts.fallback_shards = fallback_shards;
  return opts;
}

TEST(StoreJournalTest, DisabledByDefault) {
  ShardedNameTree store;
  store.AddSpace("");
  store.Upsert("", *ParseNameSpecifier("[a=1]"), Rec(1, 1));
  EXPECT_EQ(store.journal(""), nullptr);
  EXPECT_EQ(store.JournalHead(""), 0u);
}

TEST(StoreJournalTest, ChangesJournalRefreshesDoNot) {
  ShardedNameTree store(StoreOptions(64));
  store.AddSpace("");
  const NameSpecifier name = *ParseNameSpecifier("[a=1]");

  store.Upsert("", name, Rec(1, 1));  // kNew
  EXPECT_EQ(store.JournalHead(""), 1u);

  store.Upsert("", name, Rec(1, 1));  // identical: kRefreshed
  EXPECT_EQ(store.JournalHead(""), 1u);

  NameRecord changed = Rec(1, 2);
  changed.app_metric = 99.0;
  store.Upsert("", name, changed);  // kChanged
  EXPECT_EQ(store.JournalHead(""), 2u);

  store.Upsert("", name, Rec(1, 1));  // stale version: kIgnored
  EXPECT_EQ(store.JournalHead(""), 2u);

  store.Upsert("", *ParseNameSpecifier("[a=2]"), Rec(1, 3));  // kRenamed
  EXPECT_EQ(store.JournalHead(""), 3u);

  store.RefreshExpiry("", Rec(1, 3).announcer, Seconds(5000));  // lease only
  EXPECT_EQ(store.JournalHead(""), 3u);

  std::vector<JournalEntry> entries;
  ASSERT_TRUE(store.journal("")->ReadSince(0, 100, &entries));
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].op, JournalOp::kUpsert);
  EXPECT_EQ(entries[0].name_text, "[a=1]");
  EXPECT_EQ(entries[0].version, 1u);
  EXPECT_EQ(entries[1].version, 2u);
  EXPECT_DOUBLE_EQ(entries[1].app_metric, 99.0);
  EXPECT_EQ(entries[2].name_text, "[a=2]");
}

TEST(StoreJournalTest, RemovesAndExpiriesAppendTombstones) {
  ShardedNameTree store(StoreOptions(64));
  store.AddSpace("");
  store.Upsert("", *ParseNameSpecifier("[a=1]"), Rec(1, 1));
  store.Upsert("", *ParseNameSpecifier("[a=2]"), Rec(2, 1));
  ASSERT_EQ(store.JournalHead(""), 2u);

  ASSERT_TRUE(store.Remove("", Rec(1, 1).announcer));
  EXPECT_EQ(store.JournalHead(""), 3u);
  EXPECT_FALSE(store.Remove("", Rec(1, 1).announcer));  // absent: no entry
  EXPECT_EQ(store.JournalHead(""), 3u);

  EXPECT_EQ(store.ExpireBefore(Seconds(100000)), 1u);
  EXPECT_EQ(store.JournalHead(""), 4u);
  EXPECT_EQ(store.ExpireBefore(Seconds(100000)), 0u);  // nothing left
  EXPECT_EQ(store.JournalHead(""), 4u);

  std::vector<JournalEntry> entries;
  ASSERT_TRUE(store.journal("")->ReadSince(2, 100, &entries));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].op, JournalOp::kDelete);
  EXPECT_EQ(entries[0].announcer, Rec(1, 1).announcer);
  EXPECT_EQ(entries[0].name_text, "");
  EXPECT_EQ(entries[1].op, JournalOp::kExpire);
  EXPECT_EQ(entries[1].announcer, Rec(2, 1).announcer);
}

TEST(StoreJournalTest, BatchJournalsAppliedEntriesOnly) {
  ShardedNameTree store(StoreOptions(64));
  store.AddSpace("");
  store.Upsert("", *ParseNameSpecifier("[a=1]"), Rec(1, 5));
  ASSERT_EQ(store.JournalHead(""), 1u);

  std::vector<std::pair<NameSpecifier, NameRecord>> batch;
  batch.emplace_back(*ParseNameSpecifier("[a=1]"), Rec(1, 5));  // refresh
  batch.emplace_back(*ParseNameSpecifier("[a=1]"), Rec(1, 2));  // stale
  batch.emplace_back(*ParseNameSpecifier("[a=2]"), Rec(2, 1));  // new
  batch.emplace_back(*ParseNameSpecifier("[a=3]"), Rec(3, 1));  // new
  // Applied counts the refresh; the journal records only real changes.
  EXPECT_EQ(store.UpsertBatch("", batch), 3u);
  EXPECT_EQ(store.JournalHead(""), 3u);

  std::vector<JournalEntry> entries;
  ASSERT_TRUE(store.journal("")->ReadSince(1, 100, &entries));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].announcer, Rec(2, 1).announcer);
  EXPECT_EQ(entries[1].announcer, Rec(3, 1).announcer);
}

TEST(StoreJournalTest, PerSpaceSerialsAreIndependent) {
  ShardedNameTree::Options opts;
  opts.journal_capacity = 16;
  ShardedNameTree store(opts);
  store.AddSpace("alpha");
  store.AddSpace("beta");
  store.Upsert("alpha", *ParseNameSpecifier("[a=1]"), Rec(1, 1));
  store.Upsert("alpha", *ParseNameSpecifier("[a=2]"), Rec(2, 1));
  store.Upsert("beta", *ParseNameSpecifier("[b=1]"), Rec(3, 1));
  EXPECT_EQ(store.JournalHead("alpha"), 2u);
  EXPECT_EQ(store.JournalHead("beta"), 1u);
  EXPECT_EQ(store.journal("gamma"), nullptr);  // unrouted space

  // Dropping a space drops its journal; re-adding starts a fresh serial
  // sequence (peers detect this as a serial regression and take a snapshot).
  ASSERT_TRUE(store.RemoveSpace("beta"));
  EXPECT_EQ(store.JournalHead("beta"), 0u);
  store.AddSpace("beta");
  store.Upsert("beta", *ParseNameSpecifier("[b=2]"), Rec(4, 1));
  EXPECT_EQ(store.JournalHead("beta"), 1u);
}

// The left-right concurrent store applies every write lambda TWICE (once per
// side). Journal capture sits outside the lambda, so each logical write must
// record exactly one entry — across singles, batches, removes, and sweeps,
// and across all fallback shards of the space.
TEST(StoreJournalTest, ConcurrentModeDoesNotDoubleRecord) {
  ShardedNameTree store(StoreOptions(1024, /*concurrent=*/true, /*fallback_shards=*/4));
  store.AddSpace("");
  Rng rng(7);
  uint64_t expected = 0;
  for (uint32_t i = 0; i < 200; ++i) {
    const uint32_t d = 1 + static_cast<uint32_t>(rng.NextBelow(40));
    const std::string attr = "svc_" + std::to_string(rng.NextBelow(6));
    const NameSpecifier name = *ParseNameSpecifier("[" + attr + "=" + std::to_string(d) + "]");
    switch (rng.NextBelow(4)) {
      case 0:
      case 1: {
        auto r = store.Upsert("", name, Rec(d, i));
        if (r.kind != NameTree::UpsertOutcome::kIgnored &&
            r.kind != NameTree::UpsertOutcome::kRefreshed) {
          ++expected;
        }
        break;
      }
      case 2:
        if (store.Remove("", Rec(d, 0).announcer)) {
          ++expected;
        }
        break;
      default: {
        std::vector<std::pair<NameSpecifier, NameRecord>> batch;
        batch.emplace_back(name, Rec(d, i));
        const uint32_t d2 = 1 + static_cast<uint32_t>(rng.NextBelow(40));
        batch.emplace_back(*ParseNameSpecifier("[other=" + std::to_string(d2) + "]"),
                           Rec(d2 + 100, i));
        const uint64_t before = store.JournalHead("");
        store.UpsertBatch("", batch);
        expected += store.JournalHead("") - before;  // batch entries verified below
        break;
      }
    }
    ASSERT_EQ(store.JournalHead(""), expected) << "op " << i;
  }
  // Every serial must be present exactly once and contiguous.
  std::vector<JournalEntry> entries;
  ASSERT_TRUE(store.journal("")->ReadSince(0, 1 << 20, &entries));
  ASSERT_EQ(entries.size(), expected);
  for (size_t k = 0; k < entries.size(); ++k) {
    EXPECT_EQ(entries[k].serial, k + 1);
  }
  EXPECT_TRUE(store.CheckInvariants().ok());
}

}  // namespace
}  // namespace ins
