// Tests for the synthetic workload generator used by benches and sweeps.

#include <gtest/gtest.h>

#include "ins/name/matcher.h"
#include "ins/name/parser.h"
#include "ins/workload/namegen.h"

namespace ins {
namespace {

TEST(NamegenTest, UniformNameHasRequestedShape) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    NameSpecifier n = GenerateUniformName(rng, kPaperLookupParams);
    EXPECT_EQ(n.Depth(), 3u);
    EXPECT_EQ(n.roots().size(), 2u);  // na = 2
    // na attributes per level, d levels: 2 + 4 + 8 pairs.
    EXPECT_EQ(n.PairCount(), 14u);
  }
}

TEST(NamegenTest, UniformNamesAreDeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(GenerateUniformName(a, kPaperLookupParams),
              GenerateUniformName(b, kPaperLookupParams));
  }
}

TEST(NamegenTest, UniformNamesVary) {
  Rng rng(7);
  NameSpecifier first = GenerateUniformName(rng, kPaperLookupParams);
  bool differs = false;
  for (int i = 0; i < 20 && !differs; ++i) {
    differs = !(GenerateUniformName(rng, kPaperLookupParams) == first);
  }
  EXPECT_TRUE(differs);
}

TEST(NamegenTest, UniformNameRoundTripsThroughParser) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    NameSpecifier n = GenerateUniformName(rng, {4, 4, 3, 3});
    auto parsed = ParseNameSpecifier(n.ToString());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, n);
  }
}

TEST(NamegenTest, ChainNameIsAChain) {
  Rng rng(5);
  NameSpecifier n = GenerateChainName(rng, 6, 3, 3);
  EXPECT_EQ(n.Depth(), 6u);
  EXPECT_EQ(n.PairCount(), 6u);
}

TEST(NamegenTest, SizedNameApproximatesTarget) {
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    NameSpecifier n = GenerateSizedName(rng, 82);
    // Within one pad-pair of the target, like the paper's "on average
    // 82-byte" names.
    EXPECT_GE(n.WireSize(), 60u);
    EXPECT_LE(n.WireSize(), 95u);
  }
}

TEST(NamegenTest, SizedNameCarriesVspace) {
  Rng rng(13);
  NameSpecifier n = GenerateSizedName(rng, 82, "building-ne43");
  EXPECT_EQ(n.GetValue({"vspace"}), "building-ne43");
}

TEST(NamegenTest, DerivedQueryAlwaysMatchesItsAdvertisement) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    NameSpecifier ad = GenerateUniformName(rng, {4, 3, 2, 3});
    NameSpecifier q = DeriveQuery(rng, ad, 0.7, 0.4);
    EXPECT_TRUE(Matches(ad, q)) << "ad " << ad.ToString() << "\nq  " << q.ToString();
  }
}

}  // namespace
}  // namespace ins
