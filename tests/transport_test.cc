// Tests for the loopback and real-UDP transports.

#include <gtest/gtest.h>

#include "ins/sim/event_loop.h"
#include "ins/transport/loopback.h"
#include "ins/transport/udp_transport.h"

namespace ins {
namespace {

TEST(LoopbackTest, SynchronousDelivery) {
  LoopbackNetwork net;
  auto a = net.Bind(MakeAddress(1));
  auto b = net.Bind(MakeAddress(2));
  Bytes got;
  NodeAddress from;
  b->SetReceiveHandler([&](const NodeAddress& src, const Bytes& data) {
    from = src;
    got = data;
  });
  ASSERT_TRUE(a->Send(MakeAddress(2), {1, 2, 3}).ok());
  EXPECT_EQ(got, (Bytes{1, 2, 3}));
  EXPECT_EQ(from, MakeAddress(1));
  EXPECT_EQ(net.delivered_count(), 1u);
}

TEST(LoopbackTest, DeferredThroughExecutor) {
  sim::EventLoop loop;
  LoopbackNetwork net(&loop);
  auto a = net.Bind(MakeAddress(1));
  auto b = net.Bind(MakeAddress(2));
  int got = 0;
  b->SetReceiveHandler([&](const NodeAddress&, const Bytes&) { ++got; });
  a->Send(MakeAddress(2), {1});
  EXPECT_EQ(got, 0);  // not yet: delivery deferred
  loop.RunUntilIdle();
  EXPECT_EQ(got, 1);
}

TEST(LoopbackTest, UnknownDestinationDrops) {
  LoopbackNetwork net;
  auto a = net.Bind(MakeAddress(1));
  EXPECT_TRUE(a->Send(MakeAddress(5), {1}).ok());
  EXPECT_EQ(net.dropped_count(), 1u);
}

TEST(LoopbackTest, BlackholeFaultInjection) {
  LoopbackNetwork net;
  auto a = net.Bind(MakeAddress(1));
  auto b = net.Bind(MakeAddress(2));
  int got = 0;
  b->SetReceiveHandler([&](const NodeAddress&, const Bytes&) { ++got; });
  net.SetBlackhole(MakeAddress(2), true);
  a->Send(MakeAddress(2), {1});
  EXPECT_EQ(got, 0);
  net.SetBlackhole(MakeAddress(2), false);
  a->Send(MakeAddress(2), {1});
  EXPECT_EQ(got, 1);
}

TEST(LoopbackTest, EndpointUnbindsOnDestruction) {
  LoopbackNetwork net;
  auto a = net.Bind(MakeAddress(1));
  {
    auto b = net.Bind(MakeAddress(2));
    b->SetReceiveHandler([](const NodeAddress&, const Bytes&) {});
    a->Send(MakeAddress(2), {1});
    EXPECT_EQ(net.delivered_count(), 1u);
  }
  a->Send(MakeAddress(2), {1});
  EXPECT_EQ(net.dropped_count(), 1u);
}

TEST(UdpTransportTest, RoundTripOverLocalhost) {
  RealEventLoop loop;
  auto a = UdpTransport::Bind(&loop, MakeAddress(1, 42311));
  auto b = UdpTransport::Bind(&loop, MakeAddress(2, 42312));
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();

  Bytes got;
  NodeAddress from;
  (*b)->SetReceiveHandler([&](const NodeAddress& src, const Bytes& data) {
    from = src;
    got = data;
    loop.Stop();
  });
  ASSERT_TRUE((*a)->Send(MakeAddress(2, 42312), {7, 8, 9}).ok());
  loop.RunFor(Seconds(2));
  EXPECT_EQ(got, (Bytes{7, 8, 9}));
  // The virtual source header preserves the sender's virtual identity.
  EXPECT_EQ(from, MakeAddress(1, 42311));
}

TEST(UdpTransportTest, BindConflictFails) {
  RealEventLoop loop;
  auto a = UdpTransport::Bind(&loop, MakeAddress(1, 42321));
  ASSERT_TRUE(a.ok());
  auto b = UdpTransport::Bind(&loop, MakeAddress(2, 42321));
  EXPECT_FALSE(b.ok());
}

TEST(UdpTransportTest, OversizeDatagramRejected) {
  RealEventLoop loop;
  auto a = UdpTransport::Bind(&loop, MakeAddress(1, 42331));
  ASSERT_TRUE(a.ok());
  Bytes huge(70000, 0);
  EXPECT_EQ((*a)->Send(MakeAddress(2, 42332), huge).code(), StatusCode::kInvalidArgument);
}

TEST(RealEventLoopTest, TimersFire) {
  RealEventLoop loop;
  int fired = 0;
  loop.ScheduleAfter(Milliseconds(10), [&] { ++fired; });
  loop.ScheduleAfter(Milliseconds(20), [&] {
    ++fired;
    loop.Stop();
  });
  loop.RunFor(Seconds(2));
  EXPECT_EQ(fired, 2);
}

TEST(RealEventLoopTest, CancelWorks) {
  RealEventLoop loop;
  bool ran = false;
  TaskId id = loop.ScheduleAfter(Milliseconds(5), [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(id));
  loop.RunFor(Milliseconds(30));
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace ins
