// Concurrency test for the sharded lookup core (runs under TSan in CI).
//
// N writer threads publish monotonically versioned advertisements (singles,
// batches, removals, expiry sweeps) while M reader threads run LOOKUP-NAME /
// GET-NAME continuously. Every record field is derived deterministically from
// (announcer, version), so ANY torn read — a record whose fields mix two
// versions, or a name that does not correspond to the record's version — is
// detected. Epoch snapshots additionally guarantee per-reader monotonicity:
// successive lookups never observe a version going backwards.

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ins/common/clock.h"
#include "ins/common/node_address.h"
#include "ins/common/rng.h"
#include "ins/common/worker_pool.h"
#include "ins/name/name_specifier.h"
#include "ins/nametree/name_record.h"
#include "ins/nametree/sharded_name_tree.h"

namespace ins {
namespace {

constexpr size_t kShards = 4;
constexpr size_t kWriters = 2;
constexpr size_t kReaders = 2;
constexpr uint32_t kAnnouncersPerWriter = 8;
constexpr uint64_t kFinalVersion = 50;
constexpr size_t kFamilies = 8;

AnnouncerId IdFor(size_t writer, uint32_t slot) {
  return AnnouncerId{0x0a000000u + static_cast<uint32_t>(writer) + 1, 1000,
                     static_cast<uint32_t>(writer) * 1000 + slot};
}

// The advertised name moves between hash shards as the version advances —
// every writer continuously exercises the cross-shard rename path.
NameSpecifier NameFor(const AnnouncerId& id, uint64_t version) {
  NameSpecifier n;
  n.AddPath({{"svc_" + std::to_string((id.discriminator + version) % kFamilies), "on"},
             {"unit", std::to_string(id.discriminator)}});
  return n;
}

NameRecord RecordFor(const AnnouncerId& id, uint64_t version) {
  NameRecord rec;
  rec.announcer = id;
  rec.version = version;
  rec.expires = Seconds(100000 + version);
  rec.app_metric = static_cast<double>(version * 1000 + id.discriminator);
  rec.endpoint.address = NodeAddress{id.ip, static_cast<uint16_t>(7000 + version % 1000)};
  return rec;
}

// A single coherent (announcer, version) state — fails on any torn read.
void ExpectCoherent(const NameRecord& rec) {
  const NameRecord want = RecordFor(rec.announcer, rec.version);
  EXPECT_EQ(rec.expires, want.expires) << rec.announcer.ToString();
  EXPECT_EQ(rec.app_metric, want.app_metric) << rec.announcer.ToString();
  EXPECT_TRUE(rec.endpoint.address == want.endpoint.address) << rec.announcer.ToString();
}

TEST(ConcurrentLookupTest, WritersAndReadersShareTheStore) {
  ShardedNameTree::Options opts;
  opts.fallback_shards = kShards;
  opts.concurrent = true;
  ShardedNameTree store(opts);
  store.AddSpace("");

  std::atomic<bool> done{false};
  std::atomic<uint64_t> lookups_served{0};

  auto writer = [&](size_t w) {
    Rng rng(w + 1);
    for (uint64_t v = 1; v <= kFinalVersion; ++v) {
      if (v % 3 == 0) {
        // Batch publish: one snapshot flip per touched shard.
        std::vector<std::pair<NameSpecifier, NameRecord>> batch;
        for (uint32_t slot = 0; slot < kAnnouncersPerWriter; ++slot) {
          const AnnouncerId id = IdFor(w, slot);
          batch.emplace_back(NameFor(id, v), RecordFor(id, v));
        }
        store.UpsertBatch("", batch);
      } else {
        for (uint32_t slot = 0; slot < kAnnouncersPerWriter; ++slot) {
          const AnnouncerId id = IdFor(w, slot);
          if (v % 7 == 0 && slot == v % kAnnouncersPerWriter) {
            // Drop one announcer; the next version re-announces it.
            store.Remove("", id);
            continue;
          }
          auto out = store.Upsert("", NameFor(id, v), RecordFor(id, v));
          EXPECT_NE(out.kind, NameTree::UpsertOutcome::kIgnored);
        }
      }
      if (v % 5 == 0) {
        // Expiry sweep (all deadlines are far in the future: a no-op that
        // still takes the write path) and a no-op lease refresh.
        store.ExpireBefore(Seconds(1));
        store.RefreshExpiry("", IdFor(w, 0), Seconds(100000 + v));
      }
      // Stale re-deliveries must lose against any concurrent state. Slot 0
      // is never removed, so a version-0 update can only be ignored.
      if (v > 1 && rng.NextBool(0.25)) {
        const AnnouncerId id = IdFor(w, 0);
        EXPECT_EQ(store.Upsert("", NameFor(id, 0), RecordFor(id, 0)).kind,
                  NameTree::UpsertOutcome::kIgnored);
      }
    }
  };

  auto reader = [&](size_t r) {
    Rng rng(100 + r);
    // Epoch snapshots make versions monotone per announcer within a reader.
    // A cross-shard rename publishes as two snapshots (eviction, then
    // insert; see sharded_name_tree.h), so a reader may transiently miss a
    // moving announcer — the checks below deliberately constrain only the
    // records that ARE observed, never absence.
    std::map<AnnouncerId, uint64_t> last_seen;
    uint64_t served = 0;
    while (!done.load(std::memory_order_acquire)) {
      NameSpecifier query;
      query.AddPathValue({}, "svc_" + std::to_string(rng.NextBelow(kFamilies)),
                         Value::Wildcard());
      if (rng.NextBool(0.9)) {
        for (const NameRecord& rec : store.Lookup("", query)) {
          ExpectCoherent(rec);
          uint64_t& last = last_seen[rec.announcer];
          EXPECT_GE(rec.version, last) << "lookup observed an old epoch";
          last = rec.version;
          ++served;
        }
      } else {
        // GET-NAME against the same snapshot as the lookup: the extracted
        // name must be exactly the one advertised at the record's version.
        for (const auto& named : store.LookupNamed("", query)) {
          ExpectCoherent(named.record);
          EXPECT_TRUE(named.name == NameFor(named.record.announcer, named.record.version))
              << named.name.ToString();
          ++served;
        }
      }
    }
    lookups_served.fetch_add(served, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back(reader, r);
  }
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back(writer, w);
  }
  for (size_t w = 0; w < kWriters; ++w) {
    threads[kReaders + w].join();
  }
  done.store(true, std::memory_order_release);
  for (size_t r = 0; r < kReaders; ++r) {
    threads[r].join();
  }

  // Quiesced final state: every announcer at kFinalVersion with coherent
  // fields and the name it advertised last, across both left-right sides.
  EXPECT_EQ(store.RecordCount(""), kWriters * kAnnouncersPerWriter);
  for (size_t w = 0; w < kWriters; ++w) {
    for (uint32_t slot = 0; slot < kAnnouncersPerWriter; ++slot) {
      const AnnouncerId id = IdFor(w, slot);
      auto rec = store.Find("", id);
      ASSERT_TRUE(rec.has_value()) << id.ToString();
      EXPECT_EQ(rec->version, kFinalVersion);
      ExpectCoherent(*rec);
      auto name = store.GetName("", id);
      ASSERT_TRUE(name.has_value());
      EXPECT_TRUE(*name == NameFor(id, kFinalVersion));
    }
  }
  EXPECT_TRUE(store.CheckInvariants().ok());

  // The run was a real interleaving: readers served lookups and the
  // advertisements spread over several hash shards.
  EXPECT_GT(lookups_served.load(), 0u);
  size_t populated = 0;
  for (const ShardedNameTree::ShardStats& st : store.PerShardStats()) {
    populated += st.records > 0 ? 1 : 0;
  }
  EXPECT_GE(populated, 2u);
}

// Batches and singles interleaved from many threads converge to the same
// state as a sequential application (determinism of the replay protocol:
// both left-right sides must agree — CheckInvariants compares them).
TEST(ConcurrentLookupTest, BatchesFromManyWritersConverge) {
  ShardedNameTree::Options opts;
  opts.fallback_shards = kShards;
  opts.concurrent = true;
  ShardedNameTree store(opts);
  store.AddSpace("");

  constexpr size_t kThreads = 4;
  constexpr uint64_t kRounds = 40;
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&store, w] {
      for (uint64_t v = 1; v <= kRounds; ++v) {
        std::vector<std::pair<NameSpecifier, NameRecord>> batch;
        for (uint32_t slot = 0; slot < 4; ++slot) {
          const AnnouncerId id = IdFor(w, slot);
          batch.emplace_back(NameFor(id, v), RecordFor(id, v));
        }
        ASSERT_EQ(store.UpsertBatch("", batch), batch.size());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  EXPECT_EQ(store.RecordCount(""), kThreads * 4);
  for (size_t w = 0; w < kThreads; ++w) {
    for (uint32_t slot = 0; slot < 4; ++slot) {
      auto rec = store.Find("", IdFor(w, slot));
      ASSERT_TRUE(rec.has_value());
      EXPECT_EQ(rec->version, kRounds);
      ExpectCoherent(*rec);
    }
  }
  EXPECT_TRUE(store.CheckInvariants().ok());
}

// The resolver's fan-out path: ForEachShardMatch scatters shard scans onto a
// WorkerPool (each scan under its own epoch guard on the pool thread) while
// writer threads flip snapshots underneath. Match pointers handed to the
// callback must stay coherent for the duration of the callback.
TEST(ConcurrentLookupTest, PooledShardFanOutUnderWrites) {
  WorkerPool pool(2);
  ShardedNameTree::Options opts;
  opts.fallback_shards = kShards;
  opts.concurrent = true;
  opts.pool = &pool;
  ShardedNameTree store(opts);
  store.AddSpace("");

  for (size_t w = 0; w < kWriters; ++w) {
    for (uint32_t slot = 0; slot < kAnnouncersPerWriter; ++slot) {
      const AnnouncerId id = IdFor(w, slot);
      store.Upsert("", NameFor(id, 1), RecordFor(id, 1));
    }
  }

  std::atomic<bool> done{false};
  std::thread protocol([&store, &done] {
    Rng rng(7);
    while (!done.load(std::memory_order_acquire)) {
      NameSpecifier query;
      query.AddPathValue({}, "svc_" + std::to_string(rng.NextBelow(kFamilies)),
                         Value::Wildcard());
      store.ForEachShardMatch(
          "", query,
          [](size_t shard, const NameTree& tree,
             const std::vector<const NameRecord*>& matches) {
            (void)shard;
            (void)tree;
            for (const NameRecord* rec : matches) {
              ExpectCoherent(*rec);
            }
          });
    }
  });

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      for (uint64_t v = 2; v <= 30; ++v) {
        for (uint32_t slot = 0; slot < kAnnouncersPerWriter; ++slot) {
          const AnnouncerId id = IdFor(w, slot);
          store.Upsert("", NameFor(id, v), RecordFor(id, v));
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  protocol.join();

  EXPECT_EQ(store.RecordCount(""), kWriters * kAnnouncersPerWriter);
  EXPECT_TRUE(store.CheckInvariants().ok());
}

}  // namespace
}  // namespace ins
