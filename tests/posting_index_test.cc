// Property tests for the posting-list secondary index (posting_index.h).
//
// Four families, each pinning one piece of the index's contract with the
// Figure-5 tree walk it replaces on the hot path:
//
//   * intersection invariance — a derived plan's result set is unchanged
//     under any reordering of its intersection terms (the rarest-first
//     evaluation order is an optimization, never a semantic);
//   * monotone shrinkage — strengthening a query (adding a conjunct at the
//     root or deepening a chain) never grows the result set;
//   * promotion/demotion round-trips — posting lists crossing the density
//     threshold re-encode between sorted-array and bitmap representations
//     without changing membership, with hysteresis on the way down;
//   * fallback equivalence — wildcard, range, and union-at-return queries
//     take the tree walk and agree with an index-free tree exactly.
//
// Plus the LookupScratch retention regression: a degenerate query against a
// large tree must not leave megabytes pinned in the thread's scratch.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "ins/common/rng.h"
#include "ins/name/compiled_name.h"
#include "ins/nametree/name_tree.h"
#include "ins/nametree/posting_index.h"
#include "ins/workload/namegen.h"

namespace ins {
namespace {

NameRecord MakeRecord(uint32_t n) {
  NameRecord r;
  r.announcer = AnnouncerId{0x0a000000u + n, 7, n};
  r.expires = Seconds(3600);
  r.version = 1;
  return r;
}

std::set<std::string> Announcers(const std::vector<const NameRecord*>& recs) {
  std::set<std::string> out;
  for (const NameRecord* r : recs) {
    out.insert(r->announcer.ToString());
  }
  return out;
}

NameTree::Options IndexOff() {
  NameTree::Options o;
  o.enable_posting_index = false;
  return o;
}

// ---------------------------------------------------------------------------
// Intersection invariance under conjunct reordering.
// ---------------------------------------------------------------------------

TEST(PostingIndexPropertyTest, PlanResultInvariantUnderTermReordering) {
  Rng rng(17);
  NameTree tree;
  for (uint32_t i = 1; i <= 600; ++i) {
    tree.Upsert(GenerateUniformName(rng, UniformNameParams{4, 3, 3, 2}), MakeRecord(i));
  }
  const PostingIndex* index = tree.posting_index();
  ASSERT_NE(index, nullptr);

  size_t multi_term_plans = 0;
  std::vector<uint32_t> slots_a;
  std::vector<uint32_t> slots_b;
  std::vector<uint64_t> words;
  for (int q = 0; q < 400; ++q) {
    const NameSpecifier query = GenerateUniformName(rng, UniformNameParams{4, 3, 3, 2});
    const CompiledName cq = CompiledName::ForQuery(query, tree.symbols());
    QueryPlan plan;
    index->DerivePlan(cq, &plan);
    if (plan.kind != QueryPlan::Kind::kIndex || plan.terms.size() < 2) {
      continue;
    }
    ++multi_term_plans;
    index->Evaluate(plan, &slots_a, &words);

    // Every permutation round: shuffle, re-evaluate, same ascending slots.
    for (int round = 0; round < 4; ++round) {
      for (size_t i = plan.terms.size(); i > 1; --i) {
        std::swap(plan.terms[i - 1], plan.terms[rng.NextBelow(i)]);
      }
      index->Evaluate(plan, &slots_b, &words);
      ASSERT_EQ(slots_a, slots_b) << "term order changed the intersection on "
                                  << query.ToString();
    }

    // And the slots agree with the Figure-5 walk on the same tree.
    std::set<std::string> via_index;
    for (uint32_t s : slots_a) {
      via_index.insert(index->RecordAt(s)->announcer.ToString());
    }
    EXPECT_EQ(via_index, Announcers(tree.LookupTreeWalk(cq))) << query.ToString();
  }
  // The workload actually produced conjunctive multi-term plans.
  EXPECT_GT(multi_term_plans, 20u);
}

// ---------------------------------------------------------------------------
// Monotone shrinkage under query strengthening.
// ---------------------------------------------------------------------------

TEST(PostingIndexPropertyTest, StrengtheningAQueryNeverGrowsTheResult) {
  Rng rng(29);
  NameTree tree;
  for (uint32_t i = 1; i <= 500; ++i) {
    tree.Upsert(GenerateUniformName(rng, UniformNameParams{5, 3, 4, 2}), MakeRecord(i));
  }

  size_t strict_shrinks = 0;
  for (int q = 0; q < 300; ++q) {
    // Build a root conjunction one av-pair at a time; each extension must
    // yield a subset of the previous result (with the index serving the
    // literal plans and the walk cross-checked at every step).
    NameSpecifier query;
    std::set<std::string> prev;
    bool first = true;
    // Distinct root attributes (the per-level uniqueness invariant), drawn
    // from the generator's pools so the conjuncts genuinely select.
    std::vector<size_t> attrs{0, 1, 2, 3, 4};
    for (size_t i = attrs.size(); i > 1; --i) {
      std::swap(attrs[i - 1], attrs[rng.NextBelow(i)]);
    }
    const size_t conjuncts = 2 + rng.NextBelow(3);
    for (size_t k = 0; k < conjuncts; ++k) {
      query.AddPath({{"a0_" + std::to_string(attrs[k]),
                      "v" + std::to_string(rng.NextBelow(3))}});
      const CompiledName cq = CompiledName::ForQuery(query, tree.symbols());
      const std::set<std::string> now = Announcers(tree.Lookup(cq));
      EXPECT_EQ(now, Announcers(tree.LookupTreeWalk(cq))) << query.ToString();
      if (!first) {
        EXPECT_TRUE(std::includes(prev.begin(), prev.end(), now.begin(), now.end()))
            << "strengthened query grew the result: " << query.ToString();
        strict_shrinks += now.size() < prev.size() ? 1 : 0;
      }
      first = false;
      prev = now;
    }
  }
  // The property was not vacuous: conjuncts genuinely constrained results.
  EXPECT_GT(strict_shrinks, 50u);
}

TEST(PostingIndexPropertyTest, DeepeningAChainShrinksOrGoesUniversal) {
  // Nested strengthening is monotone EXCEPT through Figure 5's
  // `Ta = null -> continue` rule: when the deeper attribute is absent under
  // the matched node, the recursion level is universal and the conjunct
  // stops constraining entirely — the result lawfully jumps to all records.
  // The index must reproduce that exact dichotomy: every deepened query
  // either shrinks the result or returns the universal set, and always
  // agrees with the walk.
  Rng rng(31);
  NameTree tree;
  for (uint32_t i = 1; i <= 400; ++i) {
    tree.Upsert(GenerateChainName(rng, 3, 4, 3), MakeRecord(i));
  }
  const std::set<std::string> all = Announcers(tree.AllRecords());

  size_t shrinks = 0;
  size_t universal_jumps = 0;
  for (int q = 0; q < 200; ++q) {
    std::vector<std::pair<std::string, std::string>> chain;
    std::set<std::string> prev;
    bool first = true;
    for (size_t depth = 1; depth <= 3; ++depth) {
      chain.emplace_back("a" + std::to_string(depth - 1) + "_" +
                             std::to_string(rng.NextBelow(4)),
                         "v" + std::to_string(rng.NextBelow(3)));
      NameSpecifier query;
      query.AddPath(chain);
      const CompiledName cq = CompiledName::ForQuery(query, tree.symbols());
      const std::set<std::string> now = Announcers(tree.Lookup(cq));
      EXPECT_EQ(now, Announcers(tree.LookupTreeWalk(cq))) << query.ToString();
      if (!first) {
        const bool shrank =
            std::includes(prev.begin(), prev.end(), now.begin(), now.end());
        EXPECT_TRUE(shrank || now == all)
            << "deepened query grew the result without going universal: "
            << query.ToString();
        shrinks += shrank && now.size() < prev.size() ? 1 : 0;
        universal_jumps += !shrank ? 1 : 0;
      }
      first = false;
      prev = now;
    }
  }
  // Both arms of the dichotomy actually occurred in the sweep.
  EXPECT_GT(shrinks, 20u);
  EXPECT_GT(universal_jumps, 5u);
}

// ---------------------------------------------------------------------------
// Promotion / demotion round-trips at the density threshold.
// ---------------------------------------------------------------------------

TEST(PostingListTest, PromotionAndDemotionRoundTripPreservesMembership) {
  PostingList list;
  constexpr size_t kCapacity = 1024;

  // Every 3rd slot: dense enough to promote well past the minimum count.
  std::vector<uint32_t> members;
  for (uint32_t s = 0; s < kCapacity; s += 3) {
    members.push_back(s);
  }
  bool promoted = false;
  for (uint32_t s : members) {
    promoted |= list.Add(s, kCapacity);
    ASSERT_TRUE(list.CheckInvariants().ok());
  }
  EXPECT_TRUE(promoted);
  EXPECT_TRUE(list.is_bitmap());
  EXPECT_EQ(list.count(), members.size());

  // Membership and ascending iteration survive the encoding change.
  std::vector<uint32_t> seen;
  list.ForEachAscending([&](uint32_t s) { seen.push_back(s); });
  EXPECT_EQ(seen, members);
  for (uint32_t s = 0; s < kCapacity; ++s) {
    EXPECT_EQ(list.Contains(s), s % 3 == 0) << s;
  }

  // Remove down through the hysteresis band: the list must demote and the
  // survivors must be exactly the members never removed.
  bool demoted = false;
  while (members.size() > 4) {
    const uint32_t victim = members.back();
    members.pop_back();
    demoted |= list.Remove(victim, kCapacity);
    ASSERT_TRUE(list.CheckInvariants().ok());
  }
  EXPECT_TRUE(demoted);
  EXPECT_FALSE(list.is_bitmap());
  seen.clear();
  list.ForEachAscending([&](uint32_t s) { seen.push_back(s); });
  EXPECT_EQ(seen, members);
}

TEST(PostingListTest, OscillatingAtTheThresholdDoesNotThrash) {
  PostingList list;
  constexpr size_t kCapacity = 4096;
  for (uint32_t s = 0; s < 80; ++s) {
    list.Add(s, kCapacity);
  }
  ASSERT_TRUE(list.is_bitmap());  // 80 >= 64 and 80 * 64 >= 4096

  // One add/remove per step right at the promotion boundary: hysteresis
  // (demotion waits for half the density) keeps the representation stable.
  for (int step = 0; step < 200; ++step) {
    list.Remove(static_cast<uint32_t>(step % 80), kCapacity);
    EXPECT_TRUE(list.is_bitmap()) << "demoted at count 79, inside the hysteresis band";
    list.Add(static_cast<uint32_t>(step % 80), kCapacity);
    ASSERT_TRUE(list.CheckInvariants().ok());
  }
}

TEST(PostingIndexPropertyTest, TreeChurnPromotesAndDemotesWithIdenticalResults) {
  NameTree tree;
  // 300 records share [svc=hot]; the posting for that value path covers the
  // whole slot universe and must promote to a bitmap.
  for (uint32_t i = 1; i <= 300; ++i) {
    NameSpecifier n;
    n.AddPath({{"svc", "hot"}, {"unit", "u" + std::to_string(i)}});
    tree.Upsert(n, MakeRecord(i));
  }
  const PostingIndex* index = tree.posting_index();
  ASSERT_NE(index, nullptr);
  PostingIndexStats stats = tree.index_stats();
  EXPECT_GT(stats.promotions, 0u);

  const uint64_t vfp = PostingIndex::ValueFp(PostingIndex::kRootFp,
                                             tree.symbols().Find("svc"),
                                             tree.symbols().Find("hot"));
  const PostingList* posting = index->FindPosting(vfp);
  ASSERT_NE(posting, nullptr);
  EXPECT_TRUE(posting->is_bitmap());
  EXPECT_EQ(posting->count(), 300u);

  NameSpecifier q;
  q.AddPath({{"svc", "hot"}});
  const CompiledName cq = CompiledName::ForQuery(q, tree.symbols());
  EXPECT_EQ(Announcers(tree.Lookup(cq)), Announcers(tree.LookupTreeWalk(cq)));
  EXPECT_EQ(tree.Lookup(cq).size(), 300u);

  // Churn 290 of the records out: the posting must demote back to a sorted
  // array and keep answering identically.
  for (uint32_t i = 1; i <= 290; ++i) {
    ASSERT_TRUE(tree.Remove(AnnouncerId{0x0a000000u + i, 7, i}));
  }
  stats = tree.index_stats();
  EXPECT_GT(stats.demotions, 0u);
  posting = index->FindPosting(vfp);
  ASSERT_NE(posting, nullptr);
  EXPECT_FALSE(posting->is_bitmap());
  EXPECT_EQ(posting->count(), 10u);
  EXPECT_EQ(Announcers(tree.Lookup(cq)), Announcers(tree.LookupTreeWalk(cq)));
  EXPECT_EQ(tree.Lookup(cq).size(), 10u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

// ---------------------------------------------------------------------------
// Fallback equivalence for range / wildcard / union-at-return queries.
// ---------------------------------------------------------------------------

TEST(PostingIndexPropertyTest, WildcardAndRangeQueriesFallBackAndAgree) {
  Rng rng(43);
  NameTree with_index;
  NameTree without(IndexOff());
  for (uint32_t i = 1; i <= 400; ++i) {
    NameSpecifier n;
    n.AddPath({{"svc", "s" + std::to_string(rng.NextBelow(6))},
               {"load", std::to_string(rng.NextBelow(100))}});
    NameRecord rec = MakeRecord(i);
    with_index.Upsert(n, rec);
    without.Upsert(n, rec);
  }

  const PostingIndexStats before = with_index.index_stats();
  for (int q = 0; q < 100; ++q) {
    NameSpecifier wild;
    wild.AddPathValue({}, "svc", Value::Wildcard());
    NameSpecifier range;
    range.AddPathValue({{"svc", "s" + std::to_string(rng.NextBelow(6))}}, "load",
                       Value::Range(Value::Kind::kLess,
                                    static_cast<double>(rng.NextBelow(100))));
    for (const NameSpecifier& query : {wild, range}) {
      const CompiledName ci = CompiledName::ForQuery(query, with_index.symbols());
      const CompiledName co = CompiledName::ForQuery(query, without.symbols());
      const std::set<std::string> got = Announcers(with_index.Lookup(ci));
      EXPECT_EQ(got, Announcers(without.Lookup(co))) << query.ToString();
      EXPECT_EQ(got, Announcers(with_index.LookupTreeWalk(ci))) << query.ToString();
    }
  }
  const PostingIndexStats after = with_index.index_stats();
  EXPECT_EQ(after.fallback_wildcard - before.fallback_wildcard, 100u);
  EXPECT_EQ(after.fallback_range - before.fallback_range, 100u);
  EXPECT_EQ(after.index_lookups, before.index_lookups);  // none served by lists
}

TEST(PostingIndexPropertyTest, UnionAtReturnQueriesFallBackAndAgree) {
  // Records attached at an interior node ([svc=cam]) below which OTHER
  // records continue ([svc=cam [room=r]]): a query reaching past the interior
  // attachment triggers Figure 5's union-at-return rule, which plans cannot
  // express — the index must detect it (sub > end with children) and fall
  // back, agreeing with an index-free tree exactly.
  NameTree with_index;
  NameTree without(IndexOff());
  for (uint32_t i = 1; i <= 40; ++i) {
    NameSpecifier n;
    if (i % 4 == 0) {
      n.AddPath({{"svc", "cam"}});  // ends at the interior node
    } else {
      n.AddPath({{"svc", "cam"}, {"room", "r" + std::to_string(i % 5)}});
    }
    NameRecord rec = MakeRecord(i);
    with_index.Upsert(n, rec);
    without.Upsert(n, rec);
  }

  const PostingIndexStats before = with_index.index_stats();
  for (uint32_t r = 0; r < 5; ++r) {
    NameSpecifier q;
    q.AddPath({{"svc", "cam"}, {"room", "r" + std::to_string(r)}});
    const CompiledName ci = CompiledName::ForQuery(q, with_index.symbols());
    const CompiledName co = CompiledName::ForQuery(q, without.symbols());
    const std::vector<const NameRecord*> got = with_index.Lookup(ci);
    EXPECT_EQ(Announcers(got), Announcers(without.Lookup(co))) << q.ToString();
    // The interior attachments themselves are part of the answer (union).
    EXPECT_GE(got.size(), 10u) << q.ToString();
  }
  const PostingIndexStats after = with_index.index_stats();
  EXPECT_EQ(after.fallback_union - before.fallback_union, 5u);
}

// ---------------------------------------------------------------------------
// Plan-cache behavior and scratch retention.
// ---------------------------------------------------------------------------

TEST(PostingIndexPropertyTest, PlanCacheHitsRepeatQueriesAndInvalidatesOnWrites) {
  NameTree tree;
  for (uint32_t i = 1; i <= 100; ++i) {
    NameSpecifier n;
    n.AddPath({{"svc", "s" + std::to_string(i % 4)}, {"unit", "u" + std::to_string(i)}});
    tree.Upsert(n, MakeRecord(i));
  }
  NameSpecifier q;
  q.AddPath({{"svc", "s1"}});
  const CompiledName cq = CompiledName::ForQuery(q, tree.symbols());
  NameTree::LookupScratch scratch;

  (void)tree.Lookup(cq, &scratch);
  const PostingIndexStats first = tree.index_stats();
  EXPECT_EQ(first.plan_misses, 1u);
  for (int i = 0; i < 10; ++i) {
    (void)tree.Lookup(cq, &scratch);
  }
  PostingIndexStats stats = tree.index_stats();
  EXPECT_EQ(stats.plan_misses, 1u);  // all repeats hit the cached plan
  EXPECT_EQ(stats.plan_hits, 10u);

  // Any mutation bumps the index version; the cached plan must be re-derived.
  tree.Upsert([&] {
    NameSpecifier n;
    n.AddPath({{"svc", "s1"}, {"unit", "u_new"}});
    return n;
  }(), MakeRecord(999));
  (void)tree.Lookup(cq, &scratch);
  stats = tree.index_stats();
  EXPECT_EQ(stats.plan_misses, 2u);
}

TEST(LookupScratchTest, DegenerateQueryDoesNotPinScratchMemory) {
  // Regression for the pooled-vector high-water-mark leak: one broad query
  // against a large tree used to leave every candidate vector at full
  // capacity in the pool forever (hundreds of MB per long-lived thread on a
  // 10^6-name store). Trim() now caps what survives between lookups.
  NameTree tree;
  for (uint32_t i = 1; i <= 50000; ++i) {
    NameSpecifier n;
    n.AddPath({{"common", "c"}, {"unit", "u" + std::to_string(i)}});
    tree.Upsert(n, MakeRecord(i));
  }

  NameSpecifier q;
  q.AddPath({{"common", "c"}});
  const CompiledName cq = CompiledName::ForQuery(q, tree.symbols());
  NameTree::LookupScratch scratch;

  // Both engines produce the full 50k result; neither may pin it afterwards.
  EXPECT_EQ(tree.LookupTreeWalk(cq, &scratch).size(), 50000u);
  EXPECT_EQ(tree.Lookup(cq, &scratch).size(), 50000u);
  // A wildcard query walks and collects through the pooled vectors too.
  NameSpecifier wild;
  wild.AddPathValue({}, "common", Value::Wildcard());
  EXPECT_EQ(tree.Lookup(CompiledName::ForQuery(wild, tree.symbols()), &scratch).size(),
            50000u);

  // Static budget from the Trim caps: pool + stamped set + index scratch,
  // with generous headroom for the plan cache. Far below the ~MB-per-vector
  // the un-capped pool retained.
  constexpr size_t kBudget =
      NameTree::LookupScratch::kMaxRetainedPoolVectors *
          NameTree::LookupScratch::kMaxRetainedVecEntries * sizeof(void*) +
      NameTree::LookupScratch::kMaxRetainedSetSlots * 16 +
      NameTree::LookupScratch::kMaxRetainedSlotEntries * (sizeof(uint32_t) + sizeof(uint64_t)) +
      (1 << 20);
  EXPECT_LE(scratch.RetainedBytes(), kBudget);
  // And the real point: repeated large lookups reach a steady state instead
  // of ratcheting the high-water mark.
  const size_t steady = scratch.RetainedBytes();
  for (int i = 0; i < 5; ++i) {
    (void)tree.Lookup(cq, &scratch);
  }
  EXPECT_LE(scratch.RetainedBytes(), steady + (64 << 10));
}

}  // namespace
}  // namespace ins
