// Tests for the Figure-4 subtree record cache: a cached tree must behave
// identically to the default tree under arbitrary churn, while maintaining
// its internal cache invariants.

#include <gtest/gtest.h>

#include <set>

#include "ins/name/parser.h"
#include "ins/nametree/name_tree.h"
#include "ins/workload/namegen.h"

namespace ins {
namespace {

NameSpecifier P(const char* text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

AnnouncerId Id(uint32_t n) { return AnnouncerId{0x0a000000u + n, 1000, 0}; }

NameRecord Rec(uint32_t n) {
  NameRecord r;
  r.announcer = Id(n);
  r.endpoint.address = MakeAddress(n);
  r.expires = Seconds(3600);
  r.version = 1;
  return r;
}

NameTree::Options Cached() {
  NameTree::Options o;
  o.cache_subtree_records = true;
  return o;
}

std::set<uint32_t> Ids(const std::vector<const NameRecord*>& recs) {
  std::set<uint32_t> out;
  for (const NameRecord* r : recs) {
    out.insert(r->announcer.ip - 0x0a000000u);
  }
  return out;
}

TEST(SubtreeCacheTest, BasicLookupsIdenticalToDefault) {
  NameTree cached(Cached());
  cached.Upsert(P("[service=camera[id=a]]"), Rec(1));
  cached.Upsert(P("[service=camera[id=b]]"), Rec(2));
  cached.Upsert(P("[service=printer]"), Rec(3));
  ASSERT_TRUE(cached.CheckInvariants().ok()) << cached.CheckInvariants();

  EXPECT_EQ(Ids(cached.Lookup(P("[service=camera[id=*]]"))), (std::set<uint32_t>{1, 2}));
  EXPECT_EQ(Ids(cached.Lookup(P("[service=camera]"))), (std::set<uint32_t>{1, 2}));
  EXPECT_EQ(Ids(cached.Lookup(P("[service=*]"))), (std::set<uint32_t>{1, 2, 3}));
}

TEST(SubtreeCacheTest, CacheMaintainedThroughRemoveAndRename) {
  NameTree t(Cached());
  t.Upsert(P("[service=camera][room=510]"), Rec(1));
  t.Upsert(P("[service=camera][room=517]"), Rec(2));
  ASSERT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();

  t.Remove(Id(1));
  ASSERT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
  EXPECT_EQ(Ids(t.Lookup(P("[service=camera]"))), std::set<uint32_t>{2});

  NameRecord moved = Rec(2);
  moved.version = 2;
  t.Upsert(P("[service=camera][room=520]"), moved);
  ASSERT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
  EXPECT_EQ(Ids(t.Lookup(P("[room=520]"))), std::set<uint32_t>{2});
  EXPECT_TRUE(t.Lookup(P("[room=517]")).empty());
}

TEST(SubtreeCacheTest, StatsIncludeCacheMemory) {
  NameTree plain;
  NameTree cached(Cached());
  Rng ra(1);
  Rng rb(1);
  for (uint32_t i = 1; i <= 200; ++i) {
    NameSpecifier n1 = GenerateUniformName(ra, kPaperLookupParams);
    NameSpecifier n2 = GenerateUniformName(rb, kPaperLookupParams);
    plain.Upsert(n1, Rec(i));
    cached.Upsert(n2, Rec(i));
  }
  EXPECT_GT(cached.ComputeStats().bytes, plain.ComputeStats().bytes);
}

struct ChurnParams {
  uint64_t seed;
  UniformNameParams shape;
};

class SubtreeCacheChurnTest : public ::testing::TestWithParam<ChurnParams> {};

TEST_P(SubtreeCacheChurnTest, CachedTreeEquivalentToDefaultUnderChurn) {
  const auto& params = GetParam();
  Rng rng(params.seed);
  NameTree plain;
  NameTree cached(Cached());
  uint64_t version = 1;

  for (int step = 0; step < 300; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      uint32_t id = static_cast<uint32_t>(rng.NextBelow(50)) + 1;
      NameSpecifier ad = GenerateUniformName(rng, params.shape);
      NameRecord r = Rec(id);
      r.version = version++;
      plain.Upsert(ad, r);
      cached.Upsert(ad, r);
    } else if (dice < 0.75) {
      uint32_t id = static_cast<uint32_t>(rng.NextBelow(50)) + 1;
      EXPECT_EQ(plain.Remove(Id(id)), cached.Remove(Id(id)));
    } else {
      NameSpecifier q = GenerateUniformName(rng, params.shape);
      EXPECT_EQ(Ids(plain.Lookup(q)), Ids(cached.Lookup(q))) << q.ToString();
      // Also a wildcard-heavy derived query.
      auto all = plain.AllRecords();
      if (!all.empty()) {
        NameSpecifier base = plain.ExtractName(all[rng.NextBelow(all.size())]);
        NameSpecifier derived = DeriveQuery(rng, base, 0.7, 0.5);
        EXPECT_EQ(Ids(plain.Lookup(derived)), Ids(cached.Lookup(derived)))
            << derived.ToString();
      }
    }
    if (step % 60 == 0) {
      ASSERT_TRUE(cached.CheckInvariants().ok()) << cached.CheckInvariants();
    }
  }
  ASSERT_TRUE(cached.CheckInvariants().ok()) << cached.CheckInvariants();
  EXPECT_EQ(plain.record_count(), cached.record_count());
}

INSTANTIATE_TEST_SUITE_P(Shapes, SubtreeCacheChurnTest,
                         ::testing::Values(ChurnParams{1, {3, 3, 2, 3}},
                                           ChurnParams{2, {2, 2, 1, 2}},
                                           ChurnParams{3, {4, 5, 2, 2}},
                                           ChurnParams{4, {3, 3, 2, 4}},
                                           ChurnParams{5, {2, 4, 2, 3}}));

}  // namespace
}  // namespace ins
