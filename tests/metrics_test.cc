// Tests for the metrics layer: registered handles and the string API sharing
// one value store, log2-bucketed histogram quantiles, snapshot/JSON
// rendering, and the Reset() contract the benches rely on (handles survive).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ins/common/metrics.h"
#include "ins/common/rng.h"

namespace ins {
namespace {

TEST(MetricsRegistryTest, HandleAndStringApiObserveOneValue) {
  MetricsRegistry m;
  CounterHandle c = m.RegisterCounter("forwarding.packets");
  c.Increment();
  m.Increment("forwarding.packets", 2);
  EXPECT_EQ(c.value(), 3u);
  EXPECT_EQ(m.Counter("forwarding.packets"), 3u);

  // Registering the same name again hands back the same slot.
  CounterHandle again = m.RegisterCounter("forwarding.packets");
  again.Increment();
  EXPECT_EQ(c.value(), 4u);

  GaugeHandle g = m.RegisterGauge("inr.names");
  g.Set(-7);
  EXPECT_EQ(m.Gauge("inr.names"), -7);
  m.SetGauge("inr.names", 12);
  EXPECT_EQ(g.value(), 12);

  HistogramHandle h = m.RegisterHistogram("forwarding.lookup_us");
  h.Record(100);
  m.RecordValue("forwarding.lookup_us", 300);
  EXPECT_EQ(m.HistogramOf("forwarding.lookup_us").count(), 2u);
  EXPECT_EQ(h.get()->sum(), 400u);
}

TEST(MetricsRegistryTest, DefaultConstructedHandlesAreNoOpSinks) {
  CounterHandle c;
  GaugeHandle g;
  HistogramHandle h;
  c.Increment(5);
  g.Set(9);
  h.Record(9);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.get(), nullptr);
}

TEST(MetricsRegistryTest, HandlesStayValidAcrossManyRegistrations) {
  // Slot storage must be pointer-stable however many metrics appear after a
  // handle was taken (the deque contract).
  MetricsRegistry m;
  CounterHandle first = m.RegisterCounter("first");
  std::vector<CounterHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(m.RegisterCounter("counter." + std::to_string(i)));
  }
  first.Increment();
  for (auto& h : handles) {
    h.Increment();
  }
  EXPECT_EQ(m.Counter("first"), 1u);
  EXPECT_EQ(m.Counter("counter.0"), 1u);
  EXPECT_EQ(m.Counter("counter.999"), 1u);
}

TEST(MetricsRegistryTest, FamilyTotalRespectsPrefixBoundaries) {
  MetricsRegistry m;
  m.Increment("forwarding.drop.no_match", 3);
  m.Increment("forwarding.drop.hop_limit", 5);
  m.Increment("forwarding.dropped", 100);   // no trailing dot: not family
  m.Increment("forwarding.drops2", 100);    // sorts after the family
  m.Increment("forwarding.drop", 100);      // the bare prefix-minus-dot
  m.Increment("gother.counter", 100);
  EXPECT_EQ(m.FamilyTotal("forwarding.drop."), 8u);
  EXPECT_EQ(m.FamilyTotal("no.such.family."), 0u);
  // An empty prefix sums everything.
  EXPECT_EQ(m.FamilyTotal(""), 408u);
}

TEST(MetricsRegistryTest, ResetZeroesInPlaceAndHandlesSurvive) {
  MetricsRegistry m;
  CounterHandle c = m.RegisterCounter("c");
  GaugeHandle g = m.RegisterGauge("g");
  HistogramHandle h = m.RegisterHistogram("h");
  c.Increment(4);
  g.Set(4);
  h.Record(4);
  m.RecordDuration("t", Milliseconds(3));

  m.Reset();
  EXPECT_EQ(m.Counter("c"), 0u);
  EXPECT_EQ(m.Gauge("g"), 0);
  EXPECT_EQ(m.HistogramOf("h").count(), 0u);
  EXPECT_EQ(m.Timing("t").count, 0u);

  // The old handles still write into the (zeroed) registry.
  c.Increment();
  g.Set(1);
  h.Record(7);
  EXPECT_EQ(m.Counter("c"), 1u);
  EXPECT_EQ(m.Gauge("g"), 1);
  EXPECT_EQ(m.HistogramOf("h").count(), 1u);
  EXPECT_EQ(m.HistogramOf("h").max(), 7u);
}

TEST(MetricsRegistryTest, RecordDurationFeedsStatAndHistogramViews) {
  MetricsRegistry m;
  m.RecordDuration("cluster.reconverge", Milliseconds(10));
  m.RecordDuration("cluster.reconverge", Milliseconds(2));
  m.RecordDuration("cluster.reconverge", Milliseconds(40));

  DurationStat s = m.Timing("cluster.reconverge");
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min, Milliseconds(2));
  EXPECT_EQ(s.max, Milliseconds(40));
  EXPECT_EQ(s.total, Milliseconds(52));
  EXPECT_EQ(s.Mean(), Milliseconds(52) / 3);

  // The same series is a histogram of microseconds for quantile queries.
  Histogram h = m.HistogramOf("cluster.reconverge");
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 2000u);
  EXPECT_EQ(h.max(), 40000u);
}

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), 64u);
  for (size_t b = 1; b < Histogram::kBucketCount; ++b) {
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketLow(b)), b);
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketHigh(b)), b);
  }
}

TEST(HistogramTest, SingleValueDistributionsAnswerExactly) {
  Histogram h;
  for (int i = 0; i < 10; ++i) {
    h.Record(700);
  }
  // min == max clamps the interpolation to the exact value.
  EXPECT_DOUBLE_EQ(h.P50(), 700.0);
  EXPECT_DOUBLE_EQ(h.P99(), 700.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 700.0);
}

TEST(HistogramTest, QuantilesWithinBucketWidthOfExact) {
  Rng rng(7);
  Histogram h;
  std::vector<uint64_t> samples;
  for (int i = 0; i < 5000; ++i) {
    // A long-tailed mix, the shape of latency data.
    uint64_t v = rng.NextBelow(200) + 1;
    if (rng.NextBool(0.05)) {
      v = 10000 + rng.NextBelow(90000);
    }
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.50, 0.90, 0.99}) {
    const size_t rank = std::min(
        samples.size() - 1,
        static_cast<size_t>(q * static_cast<double>(samples.size())));
    const double exact = static_cast<double>(samples[rank]);
    const double est = h.Quantile(q);
    // A log2 bucket's width is at most its low edge, so the estimate is
    // always within a factor of two of any sample in the same bucket.
    EXPECT_GE(est, exact / 2.0) << "q=" << q;
    EXPECT_LE(est, exact * 2.0) << "q=" << q;
    EXPECT_GE(est, static_cast<double>(h.min()));
    EXPECT_LE(est, static_cast<double>(h.max()));
  }
  EXPECT_EQ(h.count(), samples.size());
}

TEST(HistogramTest, SparseBucketsRoundTripThroughFromParts) {
  Histogram h;
  for (uint64_t v : {0u, 1u, 5u, 5u, 900u, 100000u}) {
    h.Record(v);
  }
  Histogram back = Histogram::FromParts(h.sum(), h.min(), h.max(), h.SparseBuckets());
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.sum(), h.sum());
  EXPECT_EQ(back.min(), h.min());
  EXPECT_EQ(back.max(), h.max());
  EXPECT_EQ(back.bucket_counts(), h.bucket_counts());
  EXPECT_DOUBLE_EQ(back.P99(), h.P99());
}

TEST(HistogramTest, MergeCombinesCountsAndExtremes) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(1);
  b.Record(100000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 100000u);
  EXPECT_EQ(a.sum(), 100031u);
  // Merging an empty histogram changes nothing.
  a.Merge(Histogram{});
  EXPECT_EQ(a.count(), 4u);
}

TEST(MetricsSnapshotTest, JsonRendersEverySection) {
  MetricsRegistry m;
  m.Increment("forwarding.packets", 41);
  m.SetGauge("inr.names", 7);
  m.RecordValue("forwarding.lookup_us", 128);
  m.RecordDuration("cluster.reconverge", Milliseconds(5));

  const std::string json = MetricsSnapshotJson(m.Snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"forwarding.packets\": 41"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"inr.names\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [[8, 1]]"), std::string::npos);
  EXPECT_NE(json.find("\"timings\""), std::string::npos);
  EXPECT_NE(json.find("\"min_us\": 5000"), std::string::npos);
  // The duration series appears in BOTH views.
  EXPECT_NE(json.find("\"cluster.reconverge\": {\"count\": 1, \"sum\": 5000"),
            std::string::npos);
}

TEST(MetricsSnapshotTest, EmptyRegistryRendersEmptyObjects) {
  MetricsRegistry m;
  const std::string json = MetricsSnapshotJson(m.Snapshot());
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"timings\": {}"), std::string::npos);
}

}  // namespace
}  // namespace ins
