// Round-trip tests for every control-plane message codec.

#include <gtest/gtest.h>

#include "ins/wire/messages.h"

namespace ins {
namespace {

template <typename T>
T RoundTrip(const T& body) {
  Bytes encoded = Encode(body);
  auto decoded = DecodeMessage(encoded);
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(std::holds_alternative<T>(decoded->body));
  return std::get<T>(decoded->body);
}

EndpointInfo SampleEndpoint() {
  EndpointInfo e;
  e.address = MakeAddress(3, 7001);
  e.bindings = {{8080, "http"}, {5004, "rtp"}};
  return e;
}

AnnouncerId SampleAnnouncer() { return AnnouncerId{0x0a000003, 123456789, 2}; }

TEST(MessagesTest, Advertisement) {
  Advertisement a;
  a.vspace = "building-ne43";
  a.name_text = "[service=camera[id=a]][room=510]";
  a.announcer = SampleAnnouncer();
  a.endpoint = SampleEndpoint();
  a.app_metric = 2.5;
  a.lifetime_s = 45;
  a.version = 9;
  Advertisement b = RoundTrip(a);
  EXPECT_EQ(b.vspace, a.vspace);
  EXPECT_EQ(b.name_text, a.name_text);
  EXPECT_EQ(b.announcer, a.announcer);
  EXPECT_EQ(b.endpoint, a.endpoint);
  EXPECT_DOUBLE_EQ(b.app_metric, 2.5);
  EXPECT_EQ(b.lifetime_s, 45u);
  EXPECT_EQ(b.version, 9u);
}

TEST(MessagesTest, NameUpdateBatch) {
  NameUpdate u;
  u.vspace = "camera-ne43";
  u.triggered = true;
  for (int i = 0; i < 3; ++i) {
    NameUpdateEntry e;
    e.name_text = "[service=camera[id=c" + std::to_string(i) + "]]";
    e.announcer = AnnouncerId{0x0a000000u + static_cast<uint32_t>(i), 42, 0};
    e.endpoint = SampleEndpoint();
    e.app_metric = i * 1.5;
    e.route_metric = i * 0.25;
    e.lifetime_s = 45;
    e.version = static_cast<uint64_t>(i);
    u.entries.push_back(e);
  }
  NameUpdate v = RoundTrip(u);
  EXPECT_EQ(v.vspace, u.vspace);
  EXPECT_TRUE(v.triggered);
  ASSERT_EQ(v.entries.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(v.entries[i].name_text, u.entries[i].name_text);
    EXPECT_EQ(v.entries[i].announcer, u.entries[i].announcer);
    EXPECT_DOUBLE_EQ(v.entries[i].route_metric, u.entries[i].route_metric);
    EXPECT_EQ(v.entries[i].version, u.entries[i].version);
  }
}

TEST(MessagesTest, EmptyNameUpdateIsValid) {
  NameUpdate u;
  NameUpdate v = RoundTrip(u);
  EXPECT_TRUE(v.entries.empty());
  EXPECT_FALSE(v.triggered);
}

TEST(MessagesTest, Discovery) {
  DiscoveryRequest req;
  req.request_id = 77;
  req.vspace = "wl";
  req.filter_text = "[service=*]";
  DiscoveryRequest req2 = RoundTrip(req);
  EXPECT_EQ(req2.request_id, 77u);
  EXPECT_EQ(req2.filter_text, "[service=*]");

  DiscoveryResponse resp;
  resp.request_id = 77;
  resp.vspace = "wl";
  resp.items.push_back({"[service=camera]", SampleEndpoint(), 1.0});
  resp.items.push_back({"[service=printer]", SampleEndpoint(), 4.0});
  DiscoveryResponse resp2 = RoundTrip(resp);
  ASSERT_EQ(resp2.items.size(), 2u);
  EXPECT_EQ(resp2.items[1].name_text, "[service=printer]");
  EXPECT_DOUBLE_EQ(resp2.items[1].app_metric, 4.0);
}

TEST(MessagesTest, EarlyBindingResponse) {
  EarlyBindingResponse e;
  e.request_id = 5;
  e.items.push_back({SampleEndpoint(), 0.5});
  EarlyBindingResponse f = RoundTrip(e);
  ASSERT_EQ(f.items.size(), 1u);
  EXPECT_EQ(f.items[0].endpoint, SampleEndpoint());
}

TEST(MessagesTest, PingPong) {
  Ping p{42, 9999};
  Ping p2 = RoundTrip(p);
  EXPECT_EQ(p2.nonce, 42u);
  EXPECT_EQ(p2.send_time_us, 9999u);
  Pong q{42, 9999};
  Pong q2 = RoundTrip(q);
  EXPECT_EQ(q2.nonce, 42u);
  EXPECT_EQ(q2.echo_send_time_us, 9999u);
}

TEST(MessagesTest, Peering) {
  EXPECT_EQ(RoundTrip(PeerRequest{MakeAddress(9)}).requester, MakeAddress(9));
  EXPECT_EQ(RoundTrip(PeerAccept{MakeAddress(8)}).accepter, MakeAddress(8));
  EXPECT_EQ(RoundTrip(PeerClose{MakeAddress(7)}).closer, MakeAddress(7));
}

TEST(MessagesTest, DsrMessages) {
  DsrRegister reg;
  reg.inr = MakeAddress(4);
  reg.active = true;
  reg.vspaces = {"a", "b"};
  reg.lifetime_s = 60;
  DsrRegister reg2 = RoundTrip(reg);
  EXPECT_EQ(reg2.inr, MakeAddress(4));
  EXPECT_EQ(reg2.vspaces, (std::vector<std::string>{"a", "b"}));

  DsrListResponse list;
  list.request_id = 3;
  list.active_inrs = {MakeAddress(1), MakeAddress(2)};
  list.join_orders = {7, 12};
  DsrListResponse list2 = RoundTrip(list);
  EXPECT_EQ(list2.active_inrs, list.active_inrs);
  EXPECT_EQ(list2.join_orders, list.join_orders);

  // A response whose join_orders does not pair up with active_inrs is
  // rejected at decode time.
  DsrListResponse bad;
  bad.request_id = 5;
  bad.active_inrs = {MakeAddress(1), MakeAddress(2)};
  bad.join_orders = {7};
  EXPECT_FALSE(DecodeMessage(Encode(bad)).ok());

  DsrVspaceResponse vr;
  vr.request_id = 4;
  vr.vspace = "cam";
  vr.inr = MakeAddress(5);
  DsrVspaceResponse vr2 = RoundTrip(vr);
  EXPECT_EQ(vr2.inr, MakeAddress(5));

  DsrCandidatesResponse cr;
  cr.request_id = 6;
  cr.candidates = {MakeAddress(10), MakeAddress(11)};
  EXPECT_EQ(RoundTrip(cr).candidates, cr.candidates);

  EXPECT_EQ(RoundTrip(DsrListRequest{12}).request_id, 12u);
  EXPECT_EQ(RoundTrip(DsrVspaceRequest{13, "x"}).vspace, "x");
  EXPECT_EQ(RoundTrip(DsrCandidatesRequest{14}).request_id, 14u);

  DsrAssignmentsRequest ar;
  ar.request_id = 15;
  ar.inr = MakeAddress(6);
  DsrAssignmentsRequest ar2 = RoundTrip(ar);
  EXPECT_EQ(ar2.request_id, 15u);
  EXPECT_EQ(ar2.inr, MakeAddress(6));

  DsrAssignmentsResponse asr;
  asr.request_id = 15;
  asr.vspaces = {"cam", "building"};
  EXPECT_EQ(RoundTrip(asr).vspaces, asr.vspaces);

  EXPECT_EQ(RoundTrip(PeerKeepalive{MakeAddress(7)}).from, MakeAddress(7));
}

TEST(MessagesTest, LoadBalancingMessages) {
  SpawnRequest s;
  s.requester = MakeAddress(2);
  s.vspaces = {"cams"};
  SpawnRequest s2 = RoundTrip(s);
  EXPECT_EQ(s2.vspaces, s.vspaces);

  DelegateVspace d{MakeAddress(2), "cams"};
  DelegateVspace d2 = RoundTrip(d);
  EXPECT_EQ(d2.vspace, "cams");
  EXPECT_EQ(d2.from, MakeAddress(2));
}

TEST(MessagesTest, ReplicationMessages) {
  JournalDigest d;
  d.from = MakeAddress(1, 5001);
  d.items = {{"", 42}, {"camera-ne43", 7}};
  JournalDigest d2 = RoundTrip(d);
  EXPECT_EQ(d2.from, d.from);
  ASSERT_EQ(d2.items.size(), 2u);
  EXPECT_EQ(d2.items[0].vspace, "");
  EXPECT_EQ(d2.items[0].serial, 42u);
  EXPECT_EQ(d2.items[1].vspace, "camera-ne43");
  EXPECT_EQ(d2.items[1].serial, 7u);

  JournalDeltaRequest req;
  req.from = MakeAddress(2, 5002);
  req.vspace = "camera-ne43";
  req.after_serial = 7;
  req.full = true;
  JournalDeltaRequest req2 = RoundTrip(req);
  EXPECT_EQ(req2.from, req.from);
  EXPECT_EQ(req2.vspace, req.vspace);
  EXPECT_EQ(req2.after_serial, 7u);
  EXPECT_TRUE(req2.full);

  JournalDeltaResponse resp;
  resp.from = MakeAddress(1, 5001);
  resp.vspace = "camera-ne43";
  resp.snapshot = true;
  resp.to_serial = 42;
  resp.seq = 3;
  resp.last = false;
  JournalDeltaResponse::Entry upsert;
  upsert.op = 0;
  upsert.name_text = "[service=camera[id=c1]]";
  upsert.announcer = SampleAnnouncer();
  upsert.endpoint = SampleEndpoint();
  upsert.app_metric = 1.5;
  upsert.route_metric = 3.25;
  upsert.lifetime_s = 45;
  upsert.version = 9;
  resp.entries.push_back(upsert);
  JournalDeltaResponse::Entry tombstone;
  tombstone.op = 2;
  tombstone.announcer = AnnouncerId{0x0a000009, 11, 1};
  resp.entries.push_back(tombstone);
  JournalDeltaResponse resp2 = RoundTrip(resp);
  EXPECT_EQ(resp2.from, resp.from);
  EXPECT_EQ(resp2.vspace, resp.vspace);
  EXPECT_TRUE(resp2.snapshot);
  EXPECT_EQ(resp2.to_serial, 42u);
  EXPECT_EQ(resp2.seq, 3u);
  EXPECT_FALSE(resp2.last);
  ASSERT_EQ(resp2.entries.size(), 2u);
  EXPECT_EQ(resp2.entries[0].op, 0);
  EXPECT_EQ(resp2.entries[0].name_text, upsert.name_text);
  EXPECT_EQ(resp2.entries[0].announcer, upsert.announcer);
  EXPECT_EQ(resp2.entries[0].endpoint, upsert.endpoint);
  EXPECT_DOUBLE_EQ(resp2.entries[0].app_metric, 1.5);
  EXPECT_DOUBLE_EQ(resp2.entries[0].route_metric, 3.25);
  EXPECT_EQ(resp2.entries[0].lifetime_s, 45u);
  EXPECT_EQ(resp2.entries[0].version, 9u);
  EXPECT_EQ(resp2.entries[1].op, 2);
  EXPECT_EQ(resp2.entries[1].announcer, tombstone.announcer);
  EXPECT_EQ(resp2.entries[1].name_text, "");
  EXPECT_EQ(Encode(d)[0], static_cast<uint8_t>(MessageType::kJournalDigest));
  EXPECT_EQ(Encode(req)[0], static_cast<uint8_t>(MessageType::kJournalDeltaRequest));
  EXPECT_EQ(Encode(resp)[0], static_cast<uint8_t>(MessageType::kJournalDeltaResponse));
}

TEST(MessagesTest, ReplicaSetMessages) {
  DsrReplicaSetRequest req;
  req.request_id = (1ull << 63) | 17;  // the LB's tagged-id form survives
  req.vspace = "camera-ne43";
  DsrReplicaSetRequest req2 = RoundTrip(req);
  EXPECT_EQ(req2.request_id, req.request_id);
  EXPECT_EQ(req2.vspace, "camera-ne43");

  DsrReplicaSetResponse resp;
  resp.request_id = 17;
  resp.vspace = "camera-ne43";
  resp.replicas = {MakeAddress(1), MakeAddress(2)};
  resp.candidates = {MakeAddress(3)};
  DsrReplicaSetResponse resp2 = RoundTrip(resp);
  EXPECT_EQ(resp2.request_id, 17u);
  EXPECT_EQ(resp2.vspace, "camera-ne43");
  EXPECT_EQ(resp2.replicas, resp.replicas);
  EXPECT_EQ(resp2.candidates, resp.candidates);

  ReplicaInvite inv{MakeAddress(1), "camera-ne43"};
  ReplicaInvite inv2 = RoundTrip(inv);
  EXPECT_EQ(inv2.from, MakeAddress(1));
  EXPECT_EQ(inv2.vspace, "camera-ne43");

  DsrDeadInrReport report{MakeAddress(2), MakeAddress(1)};
  DsrDeadInrReport report2 = RoundTrip(report);
  EXPECT_EQ(report2.reporter, MakeAddress(2));
  EXPECT_EQ(report2.dead, MakeAddress(1));

  EXPECT_EQ(Encode(req)[0], static_cast<uint8_t>(MessageType::kDsrReplicaSetRequest));
  EXPECT_EQ(Encode(resp)[0], static_cast<uint8_t>(MessageType::kDsrReplicaSetResponse));
  EXPECT_EQ(Encode(inv)[0], static_cast<uint8_t>(MessageType::kReplicaInvite));
  EXPECT_EQ(Encode(report)[0], static_cast<uint8_t>(MessageType::kDsrDeadInrReport));
}

TEST(MessagesTest, DataEnvelopeCarriesPacket) {
  Packet p;
  p.destination_name = "[service=printer]";
  p.payload = {9, 9, 9};
  Packet p2 = RoundTrip(p);
  EXPECT_EQ(p2.destination_name, p.destination_name);
  EXPECT_EQ(p2.payload, p.payload);
}

TEST(MessagesTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeMessage({}).ok());
  EXPECT_FALSE(DecodeMessage({0xff, 1, 2}).ok());
  Bytes truncated = Encode(DsrListRequest{1});
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(DecodeMessage(truncated).ok());
}

TEST(MessagesTest, TypeTagsAreStable) {
  EXPECT_EQ(Encode(Ping{})[0], static_cast<uint8_t>(MessageType::kPing));
  EXPECT_EQ(Encode(DsrListRequest{})[0], static_cast<uint8_t>(MessageType::kDsrListRequest));
  Packet p;
  EXPECT_EQ(Encode(p)[0], static_cast<uint8_t>(MessageType::kData));
  EXPECT_EQ(Encode(MetricsDeltaRequest{})[0],
            static_cast<uint8_t>(MessageType::kMetricsDeltaRequest));
  EXPECT_EQ(Encode(MetricsDeltaResponse{})[0],
            static_cast<uint8_t>(MessageType::kMetricsDeltaResponse));
}

TEST(MessagesTest, EnvelopeChecksumRejectsBitDamage) {
  Bytes valid = Encode(DsrListRequest{42});
  ASSERT_TRUE(DecodeMessage(valid).ok());
  // Any single-bit flip — in the body or in the trailer itself — is caught.
  for (size_t byte = 0; byte < valid.size(); ++byte) {
    Bytes damaged = valid;
    damaged[byte] ^= 0x10;
    EXPECT_FALSE(DecodeMessage(damaged).ok()) << "flip at byte " << byte;
  }
}

TEST(MessagesTest, MetricsDeltaRoundTrip) {
  MetricsDeltaRequest req;
  req.request_id = 88;
  req.reply_to = MakeAddress(9, 7100);
  req.since_seq = 41;
  MetricsDeltaRequest req2 = RoundTrip(req);
  EXPECT_EQ(req2.request_id, 88u);
  EXPECT_EQ(req2.reply_to, MakeAddress(9, 7100));
  EXPECT_EQ(req2.since_seq, 41u);

  MetricsDeltaResponse resp;
  resp.request_id = 88;
  resp.inr = MakeAddress(1, 5678);
  resp.seq = 42;
  resp.since_seq = 41;
  resp.full = false;
  resp.counters = {{"forwarding.delivered", 10}, {"lookup.requests", 99}};
  resp.gauges = {{"admission.queue_depth", -1}};
  MetricsResponse::HistogramItem h;
  h.name = "latency.stage.lookup";
  h.sum = 500;
  h.min = 2;
  h.max = 300;
  h.buckets = {{2, 1}, {9, 3}};
  resp.histograms.push_back(h);
  MetricsDeltaResponse resp2 = RoundTrip(resp);
  EXPECT_EQ(resp2.seq, 42u);
  EXPECT_EQ(resp2.since_seq, 41u);
  EXPECT_FALSE(resp2.full);
  ASSERT_EQ(resp2.counters.size(), 2u);
  EXPECT_EQ(resp2.counters[1].name, "lookup.requests");
  EXPECT_EQ(resp2.counters[1].value, 99u);
  ASSERT_EQ(resp2.gauges.size(), 1u);
  EXPECT_EQ(resp2.gauges[0].value, -1);
  ASSERT_EQ(resp2.histograms.size(), 1u);
  EXPECT_EQ(resp2.histograms[0].buckets.size(), 2u);

  resp.full = true;
  EXPECT_TRUE(RoundTrip(resp).full);
}

TEST(MessagesTest, BuildMetricsDeltaShipsOnlyChangedSlots) {
  MetricsSnapshot baseline;
  baseline.counters["a"] = 1;
  baseline.counters["b"] = 2;
  baseline.gauges["g"] = 5;
  Histogram h;
  h.Record(10);
  baseline.histograms["h"] = h;
  Histogram quiet;
  quiet.Record(3);
  baseline.histograms["quiet"] = quiet;

  MetricsSnapshot now = baseline;
  now.counters["b"] = 7;         // changed
  now.counters["c"] = 1;         // new
  now.histograms["h"].Record(20);  // sampled since baseline

  MetricsDeltaResponse d =
      BuildMetricsDelta(1, MakeAddress(1, 5678), 42, 41, baseline, now);
  EXPECT_FALSE(d.full);
  ASSERT_EQ(d.counters.size(), 2u);  // b and c, not a
  EXPECT_EQ(d.gauges.size(), 0u);    // unchanged gauge is not shipped
  ASSERT_EQ(d.histograms.size(), 1u);
  EXPECT_EQ(d.histograms[0].name, "h");  // quiet histogram is not shipped

  // Applying the delta onto the baseline view reproduces `now` exactly.
  MetricsSnapshot view = baseline;
  ApplyMetricsDelta(d, view);
  EXPECT_EQ(view.counters, now.counters);
  EXPECT_EQ(view.gauges, now.gauges);
  EXPECT_EQ(view.histograms.at("h").count(), 2u);
}

TEST(MessagesTest, FullMetricsResponseReplacesTheView) {
  MetricsSnapshot now;
  now.counters["x"] = 3;
  MetricsDeltaResponse full = BuildMetricsFull(2, MakeAddress(1, 5678), 7, now);
  EXPECT_TRUE(full.full);
  EXPECT_EQ(full.seq, 7u);

  MetricsSnapshot view;
  view.counters["stale"] = 99;  // must not survive a full replacement
  ApplyMetricsDelta(full, view);
  EXPECT_EQ(view.counters.count("stale"), 0u);
  EXPECT_EQ(view.counters.at("x"), 3u);
}

}  // namespace
}  // namespace ins
