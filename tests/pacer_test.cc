// Tests for the token-bucket send pacer and its load feedback.

#include <gtest/gtest.h>

#include "ins/transport/pacer.h"

namespace ins {
namespace {

PacerConfig Enabled() {
  PacerConfig c;
  c.enabled = true;
  c.rate_bytes_per_sec = 1'000'000;  // 1 MB/s nominal
  c.burst_bytes = 10'000;
  c.pacing_gain = 1.0;  // exact arithmetic for the tests
  return c;
}

TEST(PacerTest, DisabledNeverDelays) {
  PacerConfig c;  // enabled = false
  Pacer p(c, TimePoint(0));
  EXPECT_EQ(p.DelayFor(100'000'000, TimePoint(0)).count(), 0);
  p.Commit(100'000'000);
  EXPECT_EQ(p.DelayFor(100'000'000, TimePoint(0)).count(), 0);
}

TEST(PacerTest, BurstBudgetPassesImmediately) {
  Pacer p(Enabled(), TimePoint(0));
  EXPECT_EQ(p.DelayFor(10'000, TimePoint(0)).count(), 0);
  p.Commit(10'000);
  // Bucket empty: the next batch must wait for refill at ~1 byte/us.
  const Duration d = p.DelayFor(5'000, TimePoint(0));
  EXPECT_GT(d.count(), 4'000);
  EXPECT_LT(d.count(), 6'000);
}

TEST(PacerTest, RefillRestoresBudgetOverTime) {
  Pacer p(Enabled(), TimePoint(0));
  p.Commit(10'000);  // drain the bucket
  // After 10 ms at 1 MB/s, 10 KB refilled (capped at burst).
  EXPECT_EQ(p.DelayFor(10'000, TimePoint(10'000)).count(), 0);
  // But never beyond the burst budget, no matter how long the idle gap.
  EXPECT_GT(p.DelayFor(20'000, TimePoint(10'000'000)).count(), 0);
}

TEST(PacerTest, SustainedLoadIsSpacedAtTheRate) {
  Pacer p(Enabled(), TimePoint(0));
  // Send 100 KB in 10 KB batches as fast as the pacer allows.
  TimePoint now(0);
  for (int i = 0; i < 10; ++i) {
    now += p.DelayFor(10'000, now);
    EXPECT_EQ(p.DelayFor(10'000, now).count(), 0);
    p.Commit(10'000);
  }
  // 100 KB minus the 10 KB initial burst at 1 MB/s => ~90 ms total.
  EXPECT_GT(now.count(), 80'000);
  EXPECT_LT(now.count(), 100'000);
}

TEST(PacerTest, LoadSignalReducesRateHyperbolically) {
  PacerConfig c = Enabled();
  c.load_floor = Milliseconds(5);
  c.min_rate_fraction = 0.125;
  Pacer p(c, TimePoint(0));
  EXPECT_EQ(p.current_rate(), 1'000'000u);

  p.OnLoadSignal(Milliseconds(2));  // healthy: below the knee
  EXPECT_EQ(p.current_rate(), 1'000'000u);

  p.OnLoadSignal(Milliseconds(10));  // 2x the knee => half rate
  EXPECT_NEAR(static_cast<double>(p.current_rate()), 500'000.0, 1'000.0);

  p.OnLoadSignal(Seconds(10));  // absurd overload: clamped at the floor
  EXPECT_NEAR(static_cast<double>(p.current_rate()), 125'000.0, 1'000.0);

  p.OnLoadSignal(Duration(0));  // recovered
  EXPECT_EQ(p.current_rate(), 1'000'000u);
}

TEST(PacerTest, PacingGainOvershootsNominalRate) {
  PacerConfig c = Enabled();
  c.pacing_gain = 1.25;
  Pacer p(c, TimePoint(0));
  EXPECT_EQ(p.current_rate(), 1'250'000u);
}

TEST(PacerTest, CommitDebtIsBoundedByOneBurst) {
  Pacer p(Enabled(), TimePoint(0));
  // A forced flush far past the budget must not stall the pacer forever:
  // the debt is capped at one burst, so the wait is at most 2 bursts' worth.
  p.Commit(1'000'000);
  const Duration d = p.DelayFor(10'000, TimePoint(0));
  EXPECT_LE(d.count(), 21'000);
}

}  // namespace
}  // namespace ins
