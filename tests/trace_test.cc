// Hop-by-hop tracing tests: the wire-format trace extension (and its absence
// — untraced packets must be byte-identical to the seed layout), the per-node
// event ring, journey assembly across a live overlay, and the closed
// forwarding.drop.* reason enumeration — every drop site must leave a
// kDropped trace event whose detail names the counter it incremented.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ins/client/api.h"
#include "ins/common/trace.h"
#include "ins/harness/cluster.h"
#include "ins/inr/admission.h"
#include "ins/inr/forwarding.h"
#include "ins/name/parser.h"
#include "ins/sim/event_loop.h"
#include "ins/wire/packet.h"

namespace ins {
namespace {

NameSpecifier P(const char* text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

// --- Wire format -------------------------------------------------------------

Packet SamplePacket() {
  Packet p;
  p.hop_limit = 9;
  p.cache_lifetime_s = 30;
  p.deadline_budget_ms = 250;
  p.source_name = "[service=src]";
  p.destination_name = "[service=dst][room=510]";
  p.payload = {0xde, 0xad, 0xbe, 0xef};
  return p;
}

TEST(TraceWireTest, TracedPacketRoundTripsAndGrowsByTheExtension) {
  Packet plain = SamplePacket();
  Packet traced = SamplePacket();
  traced.trace_id = 0x1122334455667788ull;

  const Bytes plain_bytes = EncodePacket(plain);
  const Bytes traced_bytes = EncodePacket(traced);
  EXPECT_EQ(plain_bytes.size() + kPacketTraceExtensionSize, traced_bytes.size());
  EXPECT_EQ(plain.EncodedSize(), plain_bytes.size());
  EXPECT_EQ(traced.EncodedSize(), traced_bytes.size());
  EXPECT_EQ(plain_bytes[1] & kFlagTraceSampled, 0);
  EXPECT_NE(traced_bytes[1] & kFlagTraceSampled, 0);

  auto decoded = DecodePacket(traced_bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->trace_id, traced.trace_id);
  EXPECT_TRUE(decoded->traced());
  EXPECT_EQ(decoded->source_name, traced.source_name);
  EXPECT_EQ(decoded->destination_name, traced.destination_name);
  EXPECT_EQ(decoded->payload, traced.payload);
  EXPECT_EQ(decoded->deadline_budget_ms, traced.deadline_budget_ms);

  auto plain_decoded = DecodePacket(plain_bytes);
  ASSERT_TRUE(plain_decoded.ok());
  EXPECT_EQ(plain_decoded->trace_id, 0u);
  EXPECT_FALSE(plain_decoded->traced());
}

TEST(TraceWireTest, UntracedEncodingIsByteIdenticalToTheSeedLayout) {
  // The seed wire format, built by hand from the Figure-10 layout: if the
  // trace extension leaks a single byte into the untraced encoding, deployed
  // seed nodes stop interoperating.
  Packet p = SamplePacket();
  p.early_binding = true;

  Bytes expected;
  auto u16 = [&](uint16_t v) {
    expected.push_back(static_cast<uint8_t>(v >> 8));
    expected.push_back(static_cast<uint8_t>(v & 0xff));
  };
  expected.push_back(kInsVersion);
  expected.push_back(kFlagEarlyBinding);  // flags: B only, no trace bit
  u16(9);                                 // hop limit
  expected.push_back(0);                  // cache lifetime u32
  expected.push_back(0);
  expected.push_back(0);
  expected.push_back(30);
  u16(250);  // deadline budget
  u16(0);    // reserved
  const uint16_t src_off = 20;
  const uint16_t dst_off = src_off + static_cast<uint16_t>(p.source_name.size());
  const uint16_t data_off = dst_off + static_cast<uint16_t>(p.destination_name.size());
  u16(src_off);
  u16(dst_off);
  u16(data_off);
  u16(data_off + static_cast<uint16_t>(p.payload.size()));
  expected.insert(expected.end(), p.source_name.begin(), p.source_name.end());
  expected.insert(expected.end(), p.destination_name.begin(), p.destination_name.end());
  expected.insert(expected.end(), p.payload.begin(), p.payload.end());

  EXPECT_EQ(EncodePacket(p), expected);
}

// --- The per-node ring -------------------------------------------------------

TEST(TraceRingTest, OverwritesOldestWhenFull) {
  TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (uint64_t i = 1; i <= 6; ++i) {
    TraceEvent ev;
    ev.trace_id = i;
    ev.at = TimePoint{Microseconds(static_cast<int64_t>(i))};
    ring.Record(ev);
  }
  EXPECT_EQ(ring.recorded(), 6u);
  EXPECT_EQ(ring.overwritten(), 2u);
  std::vector<TraceEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first; the newest events won.
  EXPECT_EQ(events.front().trace_id, 3u);
  EXPECT_EQ(events.back().trace_id, 6u);

  ring.Clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.Events().empty());
}

TEST(TraceRingTest, KindNamesAreDistinct) {
  std::set<std::string_view> names;
  for (auto kind : {TraceEventKind::kReceived, TraceEventKind::kQueued,
                    TraceEventKind::kAdmitted, TraceEventKind::kLookup,
                    TraceEventKind::kNextHopChosen, TraceEventKind::kDelivered,
                    TraceEventKind::kDropped}) {
    auto name = TraceEventKindName(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name;
  }
  EXPECT_EQ(names.size(), 7u);
}

// --- Stage attribution -------------------------------------------------------

TEST(LatencyStageTest, StageNamesAreDistinct) {
  std::set<std::string_view> names;
  for (size_t s = 0; s < kLatencyStageCount; ++s) {
    auto name = LatencyStageName(static_cast<LatencyStage>(s));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name;
  }
  EXPECT_EQ(names.size(), kLatencyStageCount);
}

TEST(LatencyStageTest, EveryTransitionMapsToItsStage) {
  using K = TraceEventKind;
  EXPECT_EQ(StageForTransition(K::kReceived, K::kQueued), LatencyStage::kIngress);
  EXPECT_EQ(StageForTransition(K::kQueued, K::kAdmitted), LatencyStage::kAdmissionQueue);
  // Inline admission (no queue event) is still ingress work.
  EXPECT_EQ(StageForTransition(K::kReceived, K::kAdmitted), LatencyStage::kIngress);
  EXPECT_EQ(StageForTransition(K::kAdmitted, K::kLookup), LatencyStage::kLookup);
  EXPECT_EQ(StageForTransition(K::kLookup, K::kNextHopChosen),
            LatencyStage::kNextHopSelection);
  // Re-entering kReceived is arrival at the next resolver: transport flight.
  EXPECT_EQ(StageForTransition(K::kNextHopChosen, K::kReceived),
            LatencyStage::kTransport);
  EXPECT_EQ(StageForTransition(K::kLookup, K::kDelivered), LatencyStage::kDelivery);
  // A drop ends the journey: nothing to attribute.
  EXPECT_EQ(StageForTransition(K::kLookup, K::kDropped), std::nullopt);
}

TEST(TraceRingStageTest, AttributesGapsIntoStageHistograms) {
  TraceRing ring(64);
  MetricsRegistry metrics;
  ring.EnableStageAttribution(&metrics);

  auto record = [&ring](uint64_t id, int64_t at_us, TraceEventKind kind) {
    TraceEvent ev;
    ev.trace_id = id;
    ev.at = TimePoint{Microseconds(at_us)};
    ev.kind = kind;
    ring.Record(ev);
  };
  record(7, 100, TraceEventKind::kReceived);
  record(7, 130, TraceEventKind::kQueued);    // 30 us ingress
  record(7, 380, TraceEventKind::kAdmitted);  // 250 us admission queue
  record(7, 395, TraceEventKind::kLookup);    // 15 us lookup
  record(7, 402, TraceEventKind::kDelivered); // 7 us delivery

  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.histograms.at("latency.stage.ingress").sum(), 30u);
  EXPECT_EQ(snap.histograms.at("latency.stage.admission_queue").sum(), 250u);
  EXPECT_EQ(snap.histograms.at("latency.stage.lookup").sum(), 15u);
  EXPECT_EQ(snap.histograms.at("latency.stage.delivery").sum(), 7u);
  // The node-local stages reconcile with the node-local end-to-end span.
  uint64_t attributed = 0;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("latency.stage.", 0) == 0) {
      attributed += h.sum();
    }
  }
  EXPECT_EQ(attributed, 302u);  // 402 - 100
}

TEST(TraceRingStageTest, UntrackedPredecessorGoesUnattributed) {
  TraceRing ring(64);
  MetricsRegistry metrics;
  ring.EnableStageAttribution(&metrics);
  // A lone event with no predecessor in the transition table records nothing.
  TraceEvent ev;
  ev.trace_id = 9;
  ev.at = TimePoint{Microseconds(500)};
  ev.kind = TraceEventKind::kDelivered;
  ring.Record(ev);
  for (const auto& [name, h] : metrics.Snapshot().histograms) {
    if (name.rfind("latency.stage.", 0) == 0) {
      EXPECT_EQ(h.count(), 0u) << name;
    }
  }
}

// --- Journey assembly across a live overlay ----------------------------------

struct ClientHarness {
  ClientHarness(SimCluster* cluster, uint32_t host, NodeAddress inr,
                uint64_t trace_sample_every = 0)
      : socket(cluster->net().Bind(MakeAddress(host))) {
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster->dsr_address();
    config.trace_sample_every = trace_sample_every;
    client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
    client->Start();
  }

  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<InsClient> client;
};

TEST(TraceJourneyTest, SampledAnycastAssemblesAMultiHopJourney) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(1));
  Inr* c = cluster.AddInr(3);
  cluster.StabilizeTopology();

  ClientHarness service(&cluster, 30, c->address());
  Bytes delivered_payload;
  service.client->OnData([&](const NameSpecifier&, const Bytes& payload) {
    delivered_payload = payload;
  });
  auto ad = service.client->Advertise(P("[service=camera][room=510]"));
  cluster.loop().RunFor(Seconds(3));  // propagate the name to every resolver

  // 1-in-1 sampling: every data packet this client sends carries a trace id.
  ClientHarness user(&cluster, 20, a->address(), /*trace_sample_every=*/1);
  cluster.Settle();
  ASSERT_TRUE(user.client->attached());
  ASSERT_TRUE(
      user.client->SendAnycast(P("[service=camera][room=510]"), {1, 2, 3}).ok());
  cluster.Settle();
  EXPECT_EQ(delivered_payload, Bytes({1, 2, 3}));

  const uint64_t id = user.client->last_trace_id();
  ASSERT_NE(id, 0u);

  TraceCollector collector = cluster.CollectTraces();
  auto journey = collector.JourneyOf(id);
  ASSERT_TRUE(journey.has_value());
  EXPECT_TRUE(journey->delivered());
  EXPECT_FALSE(journey->dropped());
  EXPECT_STREQ(journey->drop_reason(), "");
  ASSERT_FALSE(journey->events.empty());

  // Causal shape: entered at the user's resolver, resolved somewhere, handed
  // to the service's resolver, crossing at least one overlay link.
  EXPECT_EQ(journey->events.front().kind, TraceEventKind::kReceived);
  EXPECT_EQ(journey->events.front().node, a->address());
  EXPECT_EQ(journey->events.back().kind, TraceEventKind::kDelivered);
  EXPECT_EQ(journey->events.back().node, c->address());

  std::set<NodeAddress> nodes;
  bool saw_lookup = false;
  bool saw_next_hop = false;
  for (const TraceEvent& ev : journey->events) {
    nodes.insert(ev.node);
    saw_lookup |= ev.kind == TraceEventKind::kLookup;
    saw_next_hop |= ev.kind == TraceEventKind::kNextHopChosen;
  }
  EXPECT_GE(nodes.size(), 2u);
  EXPECT_TRUE(saw_lookup);
  EXPECT_TRUE(saw_next_hop);
  EXPECT_GT(journey->Elapsed(), Duration{0});

  // The renderings carry the journey: text names the delivery, the Chrome
  // JSON is loadable ({"traceEvents": ...}) and labels the journey process.
  EXPECT_NE(journey->ToString().find("delivered"), std::string::npos);
  EXPECT_NE(collector.Text().find("delivered"), std::string::npos);
  const std::string json = collector.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("next-hop-chosen"), std::string::npos);

  EXPECT_EQ(collector.DeliveryHistogram().count(), 1u);
  EXPECT_TRUE(collector.LostJourneys().empty());
  EXPECT_EQ(cluster.DumpLostJourneys("trace_test"), 0u);
}

// --- Drop reasons ------------------------------------------------------------

// Every forwarding drop must leave a kDropped event whose detail equals the
// suffix of the forwarding.drop.* counter it incremented. Exercises each
// forwarding-layer reason end-to-end against a live cluster and checks both
// sides of the contract per journey.
TEST(TraceDropTest, EveryForwardingDropReasonExplainsItsJourney) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();

  // A service behind the *other* resolver, so records at `a` are remote.
  ClientHarness service(&cluster, 30, b->address());
  auto ad = service.client->Advertise(P("[service=camera]"));
  cluster.loop().RunFor(Seconds(3));

  auto sender = cluster.AddEndpoint(20);
  auto send = [&](uint64_t trace_id, auto mutate) {
    Packet p;
    p.trace_id = trace_id;
    p.source_name = "[service=test]";
    p.destination_name = "[service=camera]";
    mutate(p);
    sender->Send(a->address(), Envelope{MessageBody(std::move(p))});
    cluster.Settle();
  };

  send(0x101, [](Packet& p) { p.hop_limit = 0; });
  send(0x102, [](Packet& p) { p.destination_name = "[[[not a name"; });
  send(0x103, [](Packet& p) { p.destination_name = "[service=ghost]"; });
  // One overlay hop charges at least 1 ms: a 1 ms budget dies at `a`.
  send(0x104, [](Packet& p) { p.deadline_budget_ms = 1; });
  // A virtual space nobody registered: the DSR answers "no owner".
  send(0x105, [](Packet& p) { p.destination_name = "[vspace=ghost][service=x]"; });
  cluster.Settle(Seconds(2));

  const std::pair<uint64_t, const char*> expected[] = {
      {0x101, "hop_limit"},          {0x102, "bad_destination"},
      {0x103, "no_match"},           {0x104, "deadline"},
      {0x105, "vspace_unresolved"},
  };

  TraceCollector collector = cluster.CollectTraces();
  for (const auto& [trace_id, reason] : expected) {
    auto journey = collector.JourneyOf(trace_id);
    ASSERT_TRUE(journey.has_value()) << reason;
    EXPECT_TRUE(journey->dropped()) << reason;
    EXPECT_FALSE(journey->delivered()) << reason;
    EXPECT_STREQ(journey->drop_reason(), reason);
    // The matching counter moved, and the reason is a member of the closed
    // enumeration (a drop counter outside it cannot produce a trace event).
    EXPECT_GE(a->metrics().Counter(std::string("forwarding.drop.") + reason), 1u)
        << reason;
    bool enumerated = false;
    for (const char* name : kForwardingDropReasonNames) {
      enumerated |= std::string(name) == reason;
    }
    EXPECT_TRUE(enumerated) << reason;
    EXPECT_NE(journey->ToString().find(reason), std::string::npos);
  }

  // All five sampled packets vanished, and forensics says why.
  EXPECT_EQ(collector.LostJourneys().size(), 5u);
  EXPECT_EQ(a->metrics().FamilyTotal("forwarding.drop."), 5u);
}

// Admission sheds are forwarding.drop.shed_class* drops and must leave the
// same paired evidence on sampled packets.
TEST(TraceDropTest, AdmissionShedsRecordDropEventsWithClassReasons) {
  sim::EventLoop loop;
  MetricsRegistry metrics;
  TraceRing ring(64);
  AdmissionConfig config;
  config.enabled = true;
  config.queue_capacity = {8, 1, 1};
  size_t dispatched = 0;
  AdmissionController admission(
      &loop, &metrics, config,
      [&](const NodeAddress&, const Envelope&, Duration) { ++dispatched; }, &ring,
      MakeAddress(1));

  auto data_packet = [](uint64_t trace_id, bool early_binding) {
    Packet p;
    p.trace_id = trace_id;
    p.early_binding = early_binding;
    p.destination_name = "[service=x]";
    return Envelope{MessageBody(p)};
  };

  // Class 2 (late binding): first fills the 1-slot queue, second sheds.
  admission.Admit(MakeAddress(9), data_packet(0x201, false));
  admission.Admit(MakeAddress(9), data_packet(0x202, false));
  // Class 1 (early binding): same again.
  admission.Admit(MakeAddress(9), data_packet(0x301, true));
  admission.Admit(MakeAddress(9), data_packet(0x302, true));

  EXPECT_EQ(metrics.Counter("forwarding.drop.shed_class2"), 1u);
  EXPECT_EQ(metrics.Counter("forwarding.drop.shed_class1"), 1u);

  TraceCollector collector;
  collector.Add(ring);
  auto shed2 = collector.JourneyOf(0x202);
  ASSERT_TRUE(shed2.has_value());
  EXPECT_STREQ(shed2->drop_reason(), "shed_class2");
  auto shed1 = collector.JourneyOf(0x302);
  ASSERT_TRUE(shed1.has_value());
  EXPECT_STREQ(shed1->drop_reason(), "shed_class1");
  // The queued survivors left kQueued events, not drops.
  auto queued = collector.JourneyOf(0x201);
  ASSERT_TRUE(queued.has_value());
  EXPECT_FALSE(queued->dropped());
  EXPECT_EQ(queued->events.front().kind, TraceEventKind::kQueued);

  loop.RunFor(Seconds(1));
  EXPECT_EQ(dispatched, 2u);
}

// The drop-reason family is CLOSED: a resolver registers exactly the
// enumerated forwarding.drop.* counters at construction. Someone adding a new
// drop counter without adding its enumerator (and thus its trace event) fails
// here — FamilyTotal-based accounting and journey forensics must never
// diverge. shed_class0 never carries trace context (class 0 is control
// traffic, not data packets), so membership is exactly what this checks.
TEST(TraceDropTest, DropCounterFamilyMatchesTheReasonEnumeration) {
  static_assert(kForwardingDropReasonCount == 8);
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.Settle();

  const std::string prefix = "forwarding.drop.";
  std::set<std::string> registered;
  for (const auto& [name, value] : inr->metrics().counters()) {
    if (name.compare(0, prefix.size(), prefix) == 0) {
      registered.insert(name.substr(prefix.size()));
    }
  }
  std::set<std::string> enumerated(
      kForwardingDropReasonNames,
      kForwardingDropReasonNames + kForwardingDropReasonCount);
  EXPECT_EQ(registered, enumerated);
}

}  // namespace
}  // namespace ins
