// Tests for virtual-space behaviour at the resolver level: per-space trees,
// space adoption, discovery requests across spaces, and delegation.

#include <gtest/gtest.h>

#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

Advertisement MakeAd(const std::string& name_text, const NodeAddress& endpoint,
                     const std::string& vspace = "", uint32_t discriminator = 0) {
  Advertisement ad;
  ad.vspace = vspace;
  ad.name_text = name_text;
  ad.announcer = AnnouncerId{endpoint.ip, 1000, discriminator};
  ad.endpoint.address = endpoint;
  ad.lifetime_s = 45;
  ad.version = 1;
  return ad;
}

TEST(VspaceTest, VspaceOfExtractsRootAttribute) {
  auto n = *ParseNameSpecifier("[vspace=cams][service=camera]");
  EXPECT_EQ(VspaceManager::VspaceOf(n), "cams");
  auto d = *ParseNameSpecifier("[service=camera]");
  EXPECT_EQ(VspaceManager::VspaceOf(d), "");
}

TEST(VspaceTest, SpacesKeepSeparateTrees) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1, {"alpha", "beta"});
  cluster.StabilizeTopology();
  auto s1 = cluster.AddEndpoint(10);
  auto s2 = cluster.AddEndpoint(11);
  s1->Send(inr->address(), Envelope{MessageBody(
      MakeAd("[vspace=alpha][service=camera]", s1->address()))});
  s2->Send(inr->address(), Envelope{MessageBody(
      MakeAd("[vspace=beta][service=camera]", s2->address()))});
  cluster.Settle();

  EXPECT_EQ(inr->vspaces().Tree("alpha")->record_count(), 1u);
  EXPECT_EQ(inr->vspaces().Tree("beta")->record_count(), 1u);
  // A lookup in alpha never sees beta's records.
  auto q = *ParseNameSpecifier("[service=camera]");
  EXPECT_EQ(inr->vspaces().Tree("alpha")->Lookup(q).size(), 1u);
  EXPECT_EQ(inr->vspaces().Tree("alpha")->Lookup(q)[0]->endpoint.address, s1->address());
}

TEST(VspaceTest, UnknownSpaceIsAdoptedWhenNobodyRoutesIt) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1, {""});
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  svc->Send(inr->address(), Envelope{MessageBody(
      MakeAd("[vspace=fresh][service=sensor]", svc->address()))});
  cluster.loop().RunFor(Seconds(1));

  EXPECT_TRUE(inr->vspaces().Routes("fresh"));
  EXPECT_EQ(inr->vspaces().Tree("fresh")->record_count(), 1u);
  // The adoption propagated to the DSR registration.
  EXPECT_EQ(cluster.dsr().InrForVspace("fresh"), inr->address());
}

TEST(VspaceTest, AdvertisementForwardedToOwningInr) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1, {"alpha"});
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2, {"beta"});
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);

  // The service (mis)attaches to a but advertises into beta.
  svc->Send(a->address(), Envelope{MessageBody(
      MakeAd("[vspace=beta][service=camera]", svc->address()))});
  cluster.loop().RunFor(Seconds(1));

  EXPECT_FALSE(a->vspaces().Routes("beta"));
  EXPECT_EQ(b->vspaces().Tree("beta")->record_count(), 1u);
  EXPECT_EQ(a->metrics().Counter("discovery.advertisements_forwarded"), 1u);
}

TEST(VspaceTest, DiscoveryRequestAnsweredLocally) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  auto client = cluster.AddEndpoint(20);
  svc->Send(inr->address(), Envelope{MessageBody(MakeAd("[service=camera][room=510]", svc->address()))});
  svc->Send(inr->address(), Envelope{MessageBody(MakeAd("[service=printer][room=517]", svc->address(), "", 1))});
  cluster.Settle();

  DiscoveryRequest req;
  req.request_id = 1;
  req.filter_text = "[service=camera]";
  client->Send(inr->address(), Envelope{MessageBody(req)});
  cluster.Settle();

  auto resps = client->ReceivedOf<DiscoveryResponse>();
  ASSERT_EQ(resps.size(), 1u);
  ASSERT_EQ(resps[0].items.size(), 1u);
  EXPECT_EQ(resps[0].items[0].name_text, "[room=510][service=camera]");
}

TEST(VspaceTest, EmptyFilterReturnsAllNames) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  auto client = cluster.AddEndpoint(20);
  for (uint32_t i = 0; i < 4; ++i) {
    svc->Send(inr->address(), Envelope{MessageBody(
        MakeAd("[service=s" + std::to_string(i) + "]", svc->address(), "", i))});
  }
  cluster.Settle();
  client->Send(inr->address(), Envelope{MessageBody(DiscoveryRequest{9, "", "", {}})});
  cluster.Settle();
  auto resps = client->ReceivedOf<DiscoveryResponse>();
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].items.size(), 4u);
}

TEST(VspaceTest, DiscoveryRequestForwardedAcrossSpaces) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1, {"alpha"});
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2, {"beta"});
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  auto client = cluster.AddEndpoint(20);
  svc->Send(b->address(), Envelope{MessageBody(
      MakeAd("[vspace=beta][service=camera]", svc->address()))});
  cluster.loop().RunFor(Seconds(1));

  // Client asks a about beta; the answer arrives directly from b.
  DiscoveryRequest req;
  req.request_id = 2;
  req.vspace = "beta";
  client->Send(a->address(), Envelope{MessageBody(req)});
  cluster.Settle();

  auto resps = client->ReceivedOf<DiscoveryResponse>();
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].vspace, "beta");
  ASSERT_EQ(resps[0].items.size(), 1u);
}

TEST(VspaceTest, DiscoveryForGhostSpaceAnswersEmpty) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1, {"alpha"});
  cluster.StabilizeTopology();
  auto client = cluster.AddEndpoint(20);
  DiscoveryRequest req;
  req.request_id = 3;
  req.vspace = "ghost";
  client->Send(a->address(), Envelope{MessageBody(req)});
  cluster.Settle();
  auto resps = client->ReceivedOf<DiscoveryResponse>();
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_TRUE(resps[0].items.empty());
}

TEST(VspaceTest, DelegationMovesSpaceAndState) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1, {"alpha", "beta"});
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2, {"gamma"});
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  svc->Send(a->address(), Envelope{MessageBody(
      MakeAd("[vspace=beta][service=camera]", svc->address()))});
  cluster.Settle();
  ASSERT_EQ(a->vspaces().Tree("beta")->record_count(), 1u);

  // Simulate the delegation handshake a's load balancer would perform.
  auto harness = cluster.AddEndpoint(30);
  harness->Send(b->address(), Envelope{MessageBody(DelegateVspace{a->address(), "beta"})});
  cluster.Settle();
  a->discovery().SendVspaceStateTo(b->address(), "beta");
  cluster.Settle();
  a->vspaces().RemoveSpace("beta");
  cluster.loop().RunFor(Seconds(1));

  EXPECT_FALSE(a->vspaces().Routes("beta"));
  ASSERT_TRUE(b->vspaces().Routes("beta"));
  EXPECT_EQ(b->vspaces().Tree("beta")->record_count(), 1u);
  // The DSR now points beta at b.
  EXPECT_EQ(cluster.dsr().InrForVspace("beta"), b->address());
}

}  // namespace
}  // namespace ins
