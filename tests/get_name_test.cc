// Tests for the GET-NAME extraction algorithm (paper Figure 6): extracting a
// record's name-specifier from the superposed name-tree must reproduce the
// originally grafted specifier exactly, for every record, under churn.

#include <gtest/gtest.h>

#include "ins/name/parser.h"
#include "ins/nametree/name_tree.h"
#include "ins/workload/namegen.h"

namespace ins {
namespace {

NameSpecifier P(const char* text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

AnnouncerId Id(uint32_t n) { return AnnouncerId{0x0a000000u + n, 1000, 0}; }

NameRecord Rec(uint32_t n) {
  NameRecord r;
  r.announcer = Id(n);
  r.endpoint.address = MakeAddress(n);
  r.expires = Seconds(3600);
  r.version = 1;
  return r;
}

TEST(GetNameTest, SingleChain) {
  NameTree t;
  NameSpecifier ad = P("[service=camera[entity=transmitter[id=a]]]");
  t.Upsert(ad, Rec(1));
  EXPECT_EQ(t.ExtractName(t.Find(Id(1))), ad);
}

TEST(GetNameTest, MultipleLeavesShareTrace) {
  // The specifier forks: GET-NAME must trace up from each leaf and graft onto
  // the already-reconstructed part (the paper's Figure 7 situation).
  NameTree t;
  NameSpecifier ad = P(
      "[service=camera[data-type=picture[format=jpg]][resolution=640x480]]"
      "[room=510]");
  t.Upsert(ad, Rec(1));
  EXPECT_EQ(t.ExtractName(t.Find(Id(1))), ad);
}

TEST(GetNameTest, SuperpositionDoesNotBleedAcrossRecords) {
  NameTree t;
  NameSpecifier a = P("[service=camera[id=a]][room=510]");
  NameSpecifier b = P("[service=camera[id=b]][room=510]");
  NameSpecifier c = P("[service=printer][room=517]");
  t.Upsert(a, Rec(1));
  t.Upsert(b, Rec(2));
  t.Upsert(c, Rec(3));
  EXPECT_EQ(t.ExtractName(t.Find(Id(1))), a);
  EXPECT_EQ(t.ExtractName(t.Find(Id(2))), b);
  EXPECT_EQ(t.ExtractName(t.Find(Id(3))), c);
}

TEST(GetNameTest, SharedLeafValueNode) {
  // Two records end at the same leaf value-node.
  NameTree t;
  NameSpecifier same = P("[service=camera][room=510]");
  t.Upsert(same, Rec(1));
  t.Upsert(same, Rec(2));
  EXPECT_EQ(t.ExtractName(t.Find(Id(1))), same);
  EXPECT_EQ(t.ExtractName(t.Find(Id(2))), same);
}

TEST(GetNameTest, InteriorRecordExtractsPrefixOnly) {
  NameTree t;
  NameSpecifier shallow = P("[service=camera]");
  NameSpecifier deep = P("[service=camera[id=b]]");
  t.Upsert(shallow, Rec(1));
  t.Upsert(deep, Rec(2));
  EXPECT_EQ(t.ExtractName(t.Find(Id(1))), shallow);
  EXPECT_EQ(t.ExtractName(t.Find(Id(2))), deep);
}

TEST(GetNameTest, WildcardLeafRoundTrips) {
  // Receivers may advertise an any-value id (used by Camera subscriptions).
  NameTree t;
  NameSpecifier ad = P("[service=camera[entity=receiver[id=*]]]");
  t.Upsert(ad, Rec(1));
  EXPECT_EQ(t.ExtractName(t.Find(Id(1))), ad);
}

TEST(GetNameTest, SurvivesNeighborRemoval) {
  NameTree t;
  NameSpecifier a = P("[service=camera[id=a]][room=510]");
  NameSpecifier b = P("[service=camera[id=b]][room=510]");
  t.Upsert(a, Rec(1));
  t.Upsert(b, Rec(2));
  t.Remove(Id(1));
  EXPECT_EQ(t.ExtractName(t.Find(Id(2))), b);
}

// Property sweep: graft/extract is the identity for random specifiers, at
// every churn step, for every live record.
class GetNameRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GetNameRoundTripTest, ExtractReturnsGraftedName) {
  Rng rng(GetParam());
  NameTree tree;
  std::vector<std::pair<uint32_t, NameSpecifier>> live;
  uint64_t version = 1;
  for (int step = 0; step < 150; ++step) {
    if (rng.NextDouble() < 0.65 || live.empty()) {
      uint32_t id = static_cast<uint32_t>(rng.NextBelow(40)) + 1;
      NameSpecifier ad = GenerateUniformName(rng, {4, 3, 2, 3});
      NameRecord r = Rec(id);
      r.version = version++;
      tree.Upsert(ad, r);
      bool found = false;
      for (auto& [lid, lad] : live) {
        if (lid == id) {
          lad = ad;
          found = true;
        }
      }
      if (!found) {
        live.emplace_back(id, ad);
      }
    } else {
      size_t k = rng.NextBelow(live.size());
      tree.Remove(Id(live[k].first));
      live.erase(live.begin() + static_cast<long>(k));
    }
    for (const auto& [id, ad] : live) {
      const NameRecord* rec = tree.Find(Id(id));
      ASSERT_NE(rec, nullptr);
      NameSpecifier extracted = tree.ExtractName(rec);
      ASSERT_EQ(extracted, ad)
          << "id " << id << "\nexpected: " << ad.ToString()
          << "\nextracted: " << extracted.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GetNameRoundTripTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace ins
