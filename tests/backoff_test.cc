#include "ins/common/backoff.h"

#include <gtest/gtest.h>

namespace ins {
namespace {

TEST(BackoffTest, GrowsExponentiallyUpToCap) {
  Rng rng(1);
  BackoffConfig config;
  config.initial = Milliseconds(100);
  config.max = Milliseconds(1000);
  config.multiplier = 2.0;
  config.jitter = 0;  // exact values
  Backoff backoff(config, &rng);

  EXPECT_EQ(backoff.Next(), Milliseconds(100));
  EXPECT_EQ(backoff.Next(), Milliseconds(200));
  EXPECT_EQ(backoff.Next(), Milliseconds(400));
  EXPECT_EQ(backoff.Next(), Milliseconds(800));
  EXPECT_EQ(backoff.Next(), Milliseconds(1000));  // capped
  EXPECT_EQ(backoff.Next(), Milliseconds(1000));
  EXPECT_EQ(backoff.failures(), 6);
}

TEST(BackoffTest, ResetReturnsToInitial) {
  Rng rng(1);
  BackoffConfig config;
  config.initial = Milliseconds(100);
  config.jitter = 0;
  Backoff backoff(config, &rng);

  backoff.Next();
  backoff.Next();
  backoff.Reset();
  EXPECT_EQ(backoff.failures(), 0);
  EXPECT_EQ(backoff.Next(), Milliseconds(100));
}

TEST(BackoffTest, JitterShavesDownOnly) {
  Rng rng(7);
  BackoffConfig config;
  config.initial = Milliseconds(1000);
  config.max = Milliseconds(1000);
  config.jitter = 0.3;
  Backoff backoff(config, &rng);

  for (int i = 0; i < 100; ++i) {
    Duration d = backoff.Next();
    EXPECT_LE(d, Milliseconds(1000));
    EXPECT_GE(d, Milliseconds(700));
  }
}

TEST(BackoffTest, JitterIsDeterministicPerSeed) {
  BackoffConfig config;
  Rng a(42);
  Rng b(42);
  Rng c(43);
  Backoff ba(config, &a);
  Backoff bb(config, &b);
  Backoff bc(config, &c);

  bool diverged = false;
  for (int i = 0; i < 10; ++i) {
    Duration da = ba.Next();
    EXPECT_EQ(da, bb.Next());
    if (da != bc.Next()) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);  // different seeds give a different jitter stream
}

TEST(ApplyJitterTest, ZeroFractionIsIdentity) {
  Rng rng(1);
  EXPECT_EQ(ApplyJitter(Seconds(5), 0, rng), Seconds(5));
}

}  // namespace
}  // namespace ins
