// Cluster-level observability: stage-latency attribution reconciling against
// end-to-end latency, per-resolver latency.stage.* histograms on the wire,
// and the flight recorder assembling a causally-ordered incident timeline
// out of a replica kill.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>

#include "ins/client/api.h"
#include "ins/harness/cluster.h"
#include "ins/harness/trace_collector.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

NameSpecifier P(const char* text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

struct ClientHarness {
  ClientHarness(SimCluster* cluster, uint32_t host, NodeAddress inr,
                uint64_t trace_sample_every = 0)
      : socket(cluster->net().Bind(MakeAddress(host))) {
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster->dsr_address();
    config.trace_sample_every = trace_sample_every;
    client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
    client->Start();
  }

  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<InsClient> client;
};

TEST(StageAttributionTest, StageSpansReconcileAgainstEndToEndLatency) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(3);
  cluster.StabilizeTopology();

  // Service behind `b`, user at `a`: every sampled journey crosses at least
  // one overlay hop, so the transport stage is exercised too.
  ClientHarness service(&cluster, 30, b->address());
  auto ad = service.client->Advertise(P("[service=camera]"));
  cluster.loop().RunFor(Seconds(3));
  ClientHarness user(&cluster, 20, a->address(), /*trace_sample_every=*/1);
  cluster.Settle();

  int received = 0;
  service.client->OnData([&](const NameSpecifier&, const Bytes&) { ++received; });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(user.client->SendAnycast(P("[service=camera]"), {1}).ok());
    cluster.Settle();
  }
  ASSERT_EQ(received, 20);

  TraceCollector collector = cluster.CollectTraces();
  StageAttribution att = collector.Attribution();
  ASSERT_GE(att.journeys, 20u);
  // The acceptance bar: classified stage spans account for at least 90% of
  // measured end-to-end latency (here they partition it exactly).
  EXPECT_GE(att.CoverageFraction(), 0.9);
  EXPECT_GT(att.elapsed_total_us, 0u);
  // Cross-resolver journeys spend time in transport and end in delivery.
  EXPECT_GT(att.stage_us[static_cast<size_t>(LatencyStage::kTransport)].count(), 0u);
  EXPECT_GT(att.stage_us[static_cast<size_t>(LatencyStage::kDelivery)].count(), 0u);
  const std::string table = att.Table();
  EXPECT_NE(table.find("transport"), std::string::npos);
  EXPECT_NE(table.find("lookup"), std::string::npos);

  // The same decomposition lands node-locally in each resolver's registry —
  // what netmon polls without any trace ring in sight.
  uint64_t stage_samples = 0;
  for (Inr* inr : cluster.inrs()) {
    for (const auto& [name, h] : inr->metrics().Snapshot().histograms) {
      if (name.rfind("latency.stage.", 0) == 0) {
        stage_samples += h.count();
      }
    }
  }
  EXPECT_GT(stage_samples, 0u);

  // The Chrome trace carries the stage spans as complete ("ph":"X") events.
  const std::string json = collector.ChromeTraceJson();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("transport"), std::string::npos);
}

TEST(FlightTimelineTest, ReplicaKillProducesACausallyOrderedIncident) {
  ClusterOptions options;
  options.inr_template.replication.enabled = true;
  options.inr_template.replication.replica_k = 2;
  SimCluster cluster(options);
  for (uint32_t i = 1; i <= 3; ++i) {
    cluster.AddInr(i);
    cluster.loop().RunFor(Seconds(1));
  }
  cluster.StabilizeTopology();

  ClientHarness ha(&cluster, 30, cluster.inrs()[1]->address());
  auto ad = ha.client->Advertise(P("[vspace=ha][service=hasvc]"));
  cluster.loop().RunFor(Seconds(30));  // replica set forms (k=2)

  // Find a resolver routing "ha" and kill it.
  Inr* victim = nullptr;
  for (Inr* inr : cluster.inrs()) {
    if (inr->vspaces().Routes("ha") && inr != cluster.inrs()[1]) {
      victim = inr;
    }
  }
  if (victim == nullptr) {
    victim = cluster.inrs()[1];
  }
  const NodeAddress victim_addr = victim->address();
  cluster.CrashInr(victim);
  cluster.loop().RunFor(Seconds(60));  // digest silence -> replica declared dead

  std::vector<FlightEvent> timeline = cluster.CollectFlightEvents();
  // The crash (harvested from the dead node's own ring) precedes the
  // survivor's replica-death verdict in the merged timeline.
  int crash_at = -1;
  int dead_at = -1;
  for (size_t i = 0; i < timeline.size(); ++i) {
    const FlightEvent& ev = timeline[i];
    if (ev.kind == FlightEventKind::kInrCrash && ev.node == victim_addr && crash_at < 0) {
      crash_at = static_cast<int>(i);
    }
    if (ev.kind == FlightEventKind::kReplicaDead && ev.peer == victim_addr && dead_at < 0) {
      dead_at = static_cast<int>(i);
    }
  }
  ASSERT_GE(crash_at, 0) << FlightTimelineText(timeline);
  ASSERT_GE(dead_at, 0) << FlightTimelineText(timeline);
  EXPECT_LT(crash_at, dead_at);

  const std::string text = FlightTimelineText(timeline);
  EXPECT_NE(text.find("inr-crash"), std::string::npos);
  EXPECT_NE(text.find("replica-dead"), std::string::npos);
}

TEST(FlightTimelineTest, IncidentDumpIsWrittenEvenWithoutLostJourneys) {
  SimCluster cluster;
  cluster.AddInr(1);
  cluster.StabilizeTopology();

  char dir_template[] = "/tmp/ins_obs_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  setenv("INS_TRACE_DUMP_DIR", dir_template, 1);
  cluster.DumpLostJourneys("obs_unit");
  unsetenv("INS_TRACE_DUMP_DIR");

  std::ifstream incident(std::string(dir_template) + "/obs_unit.incident.txt");
  ASSERT_TRUE(incident.good());
  std::string contents((std::istreambuf_iterator<char>(incident)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("inr-start"), std::string::npos);
}

}  // namespace
}  // namespace ins
