// Unit tests for the LRU packet cache.

#include <gtest/gtest.h>

#include "ins/inr/packet_cache.h"

namespace ins {
namespace {

TEST(PacketCacheTest, InsertAndLookup) {
  PacketCache cache(4);
  cache.Insert("[a=1]", {1, 2}, Seconds(100));
  const auto* e = cache.Lookup("[a=1]", Seconds(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->payload, (Bytes{1, 2}));
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PacketCacheTest, MissOnUnknownKey) {
  PacketCache cache(4);
  EXPECT_EQ(cache.Lookup("[a=1]", Seconds(1)), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PacketCacheTest, ExpiredEntryIsMissAndRemoved) {
  PacketCache cache(4);
  cache.Insert("[a=1]", {1}, Seconds(10));
  EXPECT_EQ(cache.Lookup("[a=1]", Seconds(11)), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PacketCacheTest, OverwriteReplacesPayload) {
  PacketCache cache(4);
  cache.Insert("[a=1]", {1}, Seconds(100));
  cache.Insert("[a=1]", {2}, Seconds(200));
  EXPECT_EQ(cache.size(), 1u);
  const auto* e = cache.Lookup("[a=1]", Seconds(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->payload, Bytes{2});
  EXPECT_EQ(e->expires, Seconds(200));
}

TEST(PacketCacheTest, EvictsLeastRecentlyUsed) {
  PacketCache cache(2);
  cache.Insert("[a=1]", {1}, Seconds(100));
  cache.Insert("[b=2]", {2}, Seconds(100));
  cache.Lookup("[a=1]", Seconds(1));       // a is now most recent
  cache.Insert("[c=3]", {3}, Seconds(100));  // evicts b
  EXPECT_NE(cache.Lookup("[a=1]", Seconds(1)), nullptr);
  EXPECT_EQ(cache.Lookup("[b=2]", Seconds(1)), nullptr);
  EXPECT_NE(cache.Lookup("[c=3]", Seconds(1)), nullptr);
}

TEST(PacketCacheTest, ZeroCapacityNeverStores) {
  PacketCache cache(0);
  cache.Insert("[a=1]", {1}, Seconds(100));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("[a=1]", Seconds(1)), nullptr);
}

// --- Eviction vs expiry: two different removal mechanisms ------------------
//
// Expiry is lazy: an entry past its lifetime is only removed when a lookup
// touches it. Eviction is purely recency-based: when the cache is full, the
// LRU tail goes — even if a dead entry sits closer to the front. The four
// tests below pin that interplay.

TEST(PacketCacheTest, EvictionIsByRecencyNotLiveness) {
  PacketCache cache(2);
  cache.Insert("[a=1]", {1}, Seconds(100));  // long-lived
  cache.Insert("[b=2]", {2}, Seconds(10));   // short-lived
  cache.Lookup("[b=2]", Seconds(5));         // b is now most recent (and live)
  // At t=20, b is expired but untouched, so it still occupies the front of
  // the LRU list; inserting evicts the tail — the perfectly live a.
  cache.Insert("[c=3]", {3}, Seconds(100));
  EXPECT_EQ(cache.Lookup("[a=1]", Seconds(20)), nullptr);  // evicted
  EXPECT_EQ(cache.Lookup("[b=2]", Seconds(20)), nullptr);  // expired at lookup
  EXPECT_NE(cache.Lookup("[c=3]", Seconds(20)), nullptr);
}

TEST(PacketCacheTest, ExpiredLookupFreesTheSlotForInsert) {
  PacketCache cache(2);
  cache.Insert("[a=1]", {1}, Seconds(10));
  cache.Insert("[b=2]", {2}, Seconds(100));
  EXPECT_EQ(cache.Lookup("[a=1]", Seconds(20)), nullptr);  // removed on the spot
  EXPECT_EQ(cache.size(), 1u);
  // The freed slot absorbs the insert; the live b is not evicted.
  cache.Insert("[c=3]", {3}, Seconds(100));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup("[b=2]", Seconds(20)), nullptr);
  EXPECT_NE(cache.Lookup("[c=3]", Seconds(20)), nullptr);
}

TEST(PacketCacheTest, ExpiredLookupsCountAsMissesNeverHits) {
  PacketCache cache(2);
  cache.Insert("[a=1]", {1}, Seconds(10));
  EXPECT_EQ(cache.Lookup("[a=1]", Seconds(11)), nullptr);
  EXPECT_EQ(cache.Lookup("[a=1]", Seconds(12)), nullptr);  // already removed
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PacketCacheTest, OverwriteResurrectsAnExpiredEntry) {
  PacketCache cache(2);
  cache.Insert("[a=1]", {1}, Seconds(10));
  // Past the lifetime but never looked up: the dead entry still sits in the
  // map, and a fresh insert simply replaces it (no double-count, no stale
  // payload).
  cache.Insert("[a=1]", {2}, Seconds(100));
  EXPECT_EQ(cache.size(), 1u);
  const auto* e = cache.Lookup("[a=1]", Seconds(50));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->payload, Bytes{2});
}

TEST(PacketCacheTest, CapacityBound) {
  PacketCache cache(8);
  for (int i = 0; i < 100; ++i) {
    cache.Insert("[k=" + std::to_string(i) + "]", {static_cast<uint8_t>(i)}, Seconds(100));
  }
  EXPECT_EQ(cache.size(), 8u);
  // The 8 most recent survive.
  EXPECT_NE(cache.Lookup("[k=99]", Seconds(1)), nullptr);
  EXPECT_NE(cache.Lookup("[k=92]", Seconds(1)), nullptr);
  EXPECT_EQ(cache.Lookup("[k=91]", Seconds(1)), nullptr);
}

}  // namespace
}  // namespace ins
