// Unit tests for the NameSpecifier AST, builders, and canonical form.

#include <gtest/gtest.h>

#include "ins/name/name_specifier.h"

namespace ins {
namespace {

// The paper's Figure 2/3 example name.
NameSpecifier OvalOfficeCamera() {
  NameSpecifier n;
  n.AddPath({{"city", "washington"},
             {"building", "whitehouse"},
             {"wing", "west"},
             {"room", "oval-office"}});
  n.AddPath({{"service", "camera"}, {"data-type", "picture"}, {"format", "jpg"}});
  n.AddPath({{"service", "camera"}, {"resolution", "640x480"}});
  n.AddPath({{"accessibility", "public"}});
  return n;
}

TEST(ValueTest, LiteralAccepts) {
  Value v = Value::Literal("red");
  EXPECT_TRUE(v.is_literal());
  EXPECT_TRUE(v.Accepts("red"));
  EXPECT_FALSE(v.Accepts("blue"));
}

TEST(ValueTest, WildcardAcceptsAnything) {
  Value v = Value::Wildcard();
  EXPECT_TRUE(v.is_wildcard());
  EXPECT_TRUE(v.Accepts("anything"));
  EXPECT_TRUE(v.Accepts(""));
  EXPECT_EQ(v.ToToken(), "*");
}

TEST(ValueTest, RangeComparesNumerically) {
  Value lt = Value::Range(Value::Kind::kLess, 5);
  EXPECT_TRUE(lt.Accepts("4"));
  EXPECT_TRUE(lt.Accepts("4.9"));
  EXPECT_FALSE(lt.Accepts("5"));
  EXPECT_FALSE(lt.Accepts("six"));  // non-numeric advertised value

  Value ge = Value::Range(Value::Kind::kGreaterEqual, 10);
  EXPECT_TRUE(ge.Accepts("10"));
  EXPECT_FALSE(ge.Accepts("9.99"));
  EXPECT_EQ(ge.ToToken(), ">=10");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Literal("a"), Value::Literal("a"));
  EXPECT_FALSE(Value::Literal("a") == Value::Literal("b"));
  EXPECT_EQ(Value::Wildcard(), Value::Wildcard());
  EXPECT_FALSE(Value::Wildcard() == Value::Literal("*"));
  EXPECT_EQ(Value::Range(Value::Kind::kLess, 5), Value::Range(Value::Kind::kLess, 5));
  EXPECT_FALSE(Value::Range(Value::Kind::kLess, 5) ==
               Value::Range(Value::Kind::kLessEqual, 5));
}

TEST(ParseNumericTest, AcceptsNumbersRejectsJunk) {
  EXPECT_EQ(ParseNumeric("42"), 42.0);
  EXPECT_EQ(ParseNumeric("-3.5"), -3.5);
  EXPECT_FALSE(ParseNumeric("").has_value());
  EXPECT_FALSE(ParseNumeric("12a").has_value());
  EXPECT_FALSE(ParseNumeric("room").has_value());
}

TEST(NameSpecifierTest, EmptyByDefault) {
  NameSpecifier n;
  EXPECT_TRUE(n.empty());
  EXPECT_EQ(n.PairCount(), 0u);
  EXPECT_EQ(n.Depth(), 0u);
  EXPECT_EQ(n.ToString(), "");
}

TEST(NameSpecifierTest, AddPathBuildsSharedPrefixes) {
  NameSpecifier n = OvalOfficeCamera();
  // service=camera appears once with two orthogonal children chains.
  ASSERT_EQ(n.roots().size(), 3u);  // accessibility, city, service (sorted)
  const AvPair* service = FindPair(n.roots(), "service");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->value.literal(), "camera");
  EXPECT_EQ(service->children.size(), 2u);  // data-type, resolution
}

TEST(NameSpecifierTest, PairCountAndDepth) {
  NameSpecifier n = OvalOfficeCamera();
  // city,building,wing,room + service,data-type,format,resolution + accessibility
  EXPECT_EQ(n.PairCount(), 9u);
  EXPECT_EQ(n.Depth(), 4u);
}

TEST(NameSpecifierTest, CanonicalFormIsSortedAndMinimal) {
  NameSpecifier n;
  n.AddPath({{"service", "camera"}, {"entity", "transmitter"}});
  n.AddPath({{"room", "510"}});
  EXPECT_EQ(n.ToString(), "[room=510][service=camera[entity=transmitter]]");
}

TEST(NameSpecifierTest, CanonicalFormIndependentOfInsertionOrder) {
  NameSpecifier a;
  a.AddPath({{"service", "printer"}});
  a.AddPath({{"room", "517"}});
  NameSpecifier b;
  b.AddPath({{"room", "517"}});
  b.AddPath({{"service", "printer"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(NameSpecifierTest, GetValueFollowsAttributePath) {
  NameSpecifier n = OvalOfficeCamera();
  EXPECT_EQ(n.GetValue({"city"}), "washington");
  EXPECT_EQ(n.GetValue({"city", "building", "wing", "room"}), "oval-office");
  EXPECT_EQ(n.GetValue({"service", "data-type", "format"}), "jpg");
  EXPECT_FALSE(n.GetValue({"nope"}).has_value());
  EXPECT_FALSE(n.GetValue({"city", "zip"}).has_value());
}

TEST(NameSpecifierTest, SetValueReplacesAndCreates) {
  NameSpecifier n;
  n.AddPath({{"service", "camera"}, {"id", "a"}});
  n.SetValue({"service", "id"}, "b");
  EXPECT_EQ(n.GetValue({"service", "id"}), "b");
  n.SetValue({"room"}, "510");
  EXPECT_EQ(n.GetValue({"room"}), "510");
}

TEST(NameSpecifierTest, AddPathValueAttachesWildcardLeaf) {
  NameSpecifier n;
  n.AddPathValue({{"service", "camera"}, {"entity", "receiver"}}, "id", Value::Wildcard());
  EXPECT_EQ(n.ToString(), "[service=camera[entity=receiver[id=*]]]");
}

TEST(NameSpecifierTest, WireSizeMatchesCanonicalText) {
  NameSpecifier n = OvalOfficeCamera();
  EXPECT_EQ(n.WireSize(), n.ToString().size());
  EXPECT_GT(n.WireSize(), 50u);
}

TEST(NameSpecifierTest, PrettyStringIsIndented) {
  NameSpecifier n;
  n.AddPath({{"service", "camera"}, {"id", "a"}});
  std::string pretty = n.ToPrettyString();
  EXPECT_NE(pretty.find("[service=camera\n"), std::string::npos);
  EXPECT_NE(pretty.find("  [id=a]"), std::string::npos);
}

TEST(NameSpecifierTest, StructuralEqualityIsDeep) {
  NameSpecifier a = OvalOfficeCamera();
  NameSpecifier b = OvalOfficeCamera();
  EXPECT_EQ(a, b);
  b.SetValue({"city", "building", "wing", "room"}, "east-room");
  EXPECT_FALSE(a == b);
}

TEST(SiblingHelpersTest, FindAndInsertKeepOrder) {
  std::vector<AvPair> sib;
  InsertPair(sib, "c", Value::Literal("3"));
  InsertPair(sib, "a", Value::Literal("1"));
  InsertPair(sib, "b", Value::Literal("2"));
  ASSERT_EQ(sib.size(), 3u);
  EXPECT_EQ(sib[0].attribute, "a");
  EXPECT_EQ(sib[1].attribute, "b");
  EXPECT_EQ(sib[2].attribute, "c");
  EXPECT_NE(FindPair(sib, "b"), nullptr);
  EXPECT_EQ(FindPair(sib, "z"), nullptr);
  // Inserting an existing attribute returns the existing pair.
  AvPair* again = InsertPair(sib, "b", Value::Literal("9"));
  EXPECT_EQ(again->value.literal(), "2");
  EXPECT_EQ(sib.size(), 3u);
}

}  // namespace
}  // namespace ins
