// Chaos soak: a seeded generator scripts random fault windows — partitions,
// loss bursts, delay spikes, corruption storms, DSR crash/restart, INR
// crash/restart — against a live cluster, and after every window the overlay
// must reconverge to a valid spanning tree and still resolve names
// end-to-end. The same seed must reproduce the same run bit-for-bit (the
// determinism fingerprint).
//
// Soak depth is tunable through the environment, so the nightly job can run
// the same binary much harder than the quick tier does:
//   INS_CHAOS_SEEDS   number of seeds to instantiate (default 10; seeds are
//                     1..N). Extra seeds only take effect when the binary is
//                     invoked directly — ctest pins the test list discovered
//                     at build time, where the default applies.
//   INS_CHAOS_ROUNDS  fault windows per run (default 5). Composes with
//                     `ctest -L soak`: every discovered seed just runs
//                     longer.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "ins/common/logging.h"

#include "ins/client/api.h"
#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

constexpr uint32_t kNumInrs = 5;

int EnvCount(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

int SoakRounds() { return EnvCount("INS_CHAOS_ROUNDS", 5); }

std::vector<uint64_t> SoakSeeds() {
  const int count = EnvCount("INS_CHAOS_SEEDS", 10);
  std::vector<uint64_t> seeds(static_cast<size_t>(count));
  for (size_t i = 0; i < seeds.size(); ++i) {
    seeds[i] = i + 1;
  }
  return seeds;
}

NameSpecifier P(const std::string& text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

// A client co-located with a resolver (same host, its own port): client<->INR
// traffic never crosses a link, so faults exercise the overlay, not the edge.
struct AppHost {
  AppHost(SimCluster* cluster, uint32_t host, uint16_t port, NodeAddress inr,
          uint64_t trace_sample_every = 0)
      : socket(cluster->net().Bind(MakeAddress(host, port))) {
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster->dsr_address();
    config.trace_sample_every = trace_sample_every;
    client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
    client->Start();
  }
  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<InsClient> client;
};

struct SoakResult {
  bool ok = true;
  std::string failure;
  std::string fingerprint;  // deterministic trace digest
};

// One full chaos run. All randomness comes from `seed`; two invocations with
// the same seed must produce identical fingerprints. With `replication` the
// cluster runs journaled delta replication in replica mode (k=2) and the
// fault menu gains two windows: partition-heal-converge (kind 6), which
// demands serial-level replica convergence within one anti-entropy round,
// and replica-kill-mid-flood (kind 7), which kills one member of a k=2
// replica set and holds lookup goodput to the (k-1)/k floor.
SoakResult RunSoak(uint64_t seed, bool replication = false) {
  SoakResult result;
  std::ostringstream trace;
  Rng chaos(seed * 7919 + 17);
  // Debugging aid: INS_CHAOS_LOG=1 floods stderr with every resolver's debug
  // log, timestamped in virtual time — far too noisy for CI, invaluable for
  // replaying one failing seed.
  if (std::getenv("INS_CHAOS_LOG") != nullptr) {
    SetMinLogLevel(LogLevel::kDebug);
  }

  ClusterOptions options;
  options.seed = seed;
  options.inr_template.topology.rng_salt = seed;
  options.inr_template.replication.enabled = replication;
  // Replication soaks run replica mode: the "ha" vspace (advertised below)
  // gets a k=2 replica set, and the fault menu gains the replica-kill
  // window (kind 7) with its goodput floor.
  options.inr_template.replication.replica_k = replication ? 2 : 1;
  SimCluster cluster(options);
  for (uint32_t i = 1; i <= kNumInrs; ++i) {
    cluster.AddInr(i);
    cluster.loop().RunFor(Seconds(1));
  }
  cluster.StabilizeTopology();

  // Two services and a client, all co-located with resolvers.
  AppHost svc1(&cluster, 1, 6001, cluster.inrs()[0]->address());
  AppHost svc2(&cluster, 3, 6002, cluster.inrs()[2]->address());
  // Every probe the user sends is trace-sampled: when a run fails, the
  // journeys of the lost probes say which node dropped them and why.
  AppHost user(&cluster, kNumInrs, 7000, cluster.inrs()[kNumInrs - 1]->address(),
               /*trace_sample_every=*/1);
  auto ad1 = svc1.client->Advertise(P("[service=chaos[id=one]]"));
  auto ad2 = svc2.client->Advertise(P("[service=chaos[id=two]]"));
  int received = 0;
  svc1.client->OnData([&](const NameSpecifier&, const Bytes&) { ++received; });
  svc2.client->OnData([&](const NameSpecifier&, const Bytes&) { ++received; });

  // Replica mode: a service in its own "ha" vspace (adopted by INR 2, topped
  // up to k=2 by the maintenance tick) plus a raw probe socket — the
  // replica-kill window (kind 7) measures lookup goodput against this pair.
  std::unique_ptr<AppHost> ha_svc;
  std::unique_ptr<SimCluster::Endpoint> ha_probe;
  int ha_received = 0;
  if (replication) {
    ha_svc = std::make_unique<AppHost>(&cluster, 9, 6003, cluster.inrs()[1]->address());
    ha_svc->client->OnData([&](const NameSpecifier&, const Bytes&) { ++ha_received; });
    ha_probe = cluster.AddEndpoint(8, 7001);
  }
  std::unique_ptr<AdvertisementHandle> ha_ad;
  if (replication) {
    ha_ad = ha_svc->client->Advertise(P("[vspace=ha][service=hasvc]"));
  }
  cluster.loop().RunFor(Seconds(30));  // initial name convergence

  auto fail = [&](const std::string& what) {
    result.ok = false;
    result.failure = what;
    // Failure forensics: dump the journeys of every sampled-but-undelivered
    // packet (written to INS_TRACE_DUMP_DIR when set; CI uploads them).
    cluster.DumpLostJourneys("chaos_seed" + std::to_string(seed));
  };

  const int rounds = SoakRounds();
  // Names flooded during partition windows (kind 6); handles kept so their
  // owners keep refreshing them for the rest of the run.
  std::vector<std::unique_ptr<AdvertisementHandle>> flood_ads;
  for (int round = 0; round < rounds && result.ok; ++round) {
    Duration window = Seconds(5 + static_cast<int64_t>(chaos.NextBelow(11)));
    uint64_t kind = chaos.NextBelow(replication ? 8 : 6);
    trace << "r" << round << ":k" << kind << ":w" << window.count() << ";";
    switch (kind) {
      case 0: {
        // Two-sided partition; the DSR lands on a random side.
        uint32_t cut = 1 + static_cast<uint32_t>(chaos.NextBelow(kNumInrs - 1));
        std::vector<uint32_t> left, right;
        for (uint32_t i = 1; i <= kNumInrs; ++i) {
          (i <= cut ? left : right).push_back(i);
        }
        (chaos.NextBool(0.5) ? left : right).push_back(SimCluster::kDsrHostIndex);
        cluster.Partition({left, right});
        cluster.loop().RunFor(window);
        cluster.Heal();
        break;
      }
      case 1:
        cluster.faults().StartLossBurst(0.2 + 0.4 * chaos.NextDouble(), window);
        cluster.loop().RunFor(window);
        break;
      case 2:
        cluster.faults().StartDelaySpike(
            Milliseconds(20 + static_cast<int64_t>(chaos.NextBelow(81))), window);
        cluster.loop().RunFor(window);
        break;
      case 3:
        cluster.faults().StartCorruptionStorm(0.1 + 0.3 * chaos.NextDouble(), window);
        cluster.loop().RunFor(window);
        break;
      case 4:
        cluster.CrashDsr();
        cluster.loop().RunFor(window);
        cluster.RestartDsr();
        break;
      case 5: {
        // Amnesiac resolver reboot: silent crash, dark window, then a fresh
        // process on the same address. Survivors must drop the stale tree
        // edge (keepalives assert it), the restarted node must re-acquire
        // its DSR assignments, and any client attached to it must fail over.
        std::vector<Inr*> running = cluster.inrs();
        Inr* victim = running[chaos.NextBelow(running.size())];
        const uint32_t host = victim->address().ip & 0xFFu;
        trace << "h" << host << ";";
        cluster.CrashInr(victim);
        cluster.loop().RunFor(window);
        cluster.RestartInr(host);
        break;
      }
      case 6: {
        // PartitionHealConverge (replication mode only): cut the cluster in
        // two MID-FLOOD — fresh names keep landing on one side while the
        // other can't hear about them — then heal. The journal/anti-entropy
        // machinery must reach serial-level convergence once replica-set
        // membership re-forms; checked after the generic tree reconvergence
        // below.
        uint32_t cut = 1 + static_cast<uint32_t>(chaos.NextBelow(kNumInrs - 1));
        std::vector<uint32_t> left, right;
        for (uint32_t i = 1; i <= kNumInrs; ++i) {
          (i <= cut ? left : right).push_back(i);
        }
        // Clients/DSR stay with svc1's side so the flood keeps landing.
        left.push_back(SimCluster::kDsrHostIndex);
        cluster.Partition({left, right});
        for (int n = 0; n < 6; ++n) {
          flood_ads.push_back(svc1.client->Advertise(
              P("[service=flood[round=r" + std::to_string(round) + "][id=n" +
                std::to_string(n) + "]]")));
          cluster.loop().RunFor(window / 6);
        }
        cluster.Heal();
        break;
      }
      case 7: {
        // ReplicaKillMidFlood (replication mode only): kill one member of
        // the "ha" k=2 replica set while a raw probe floods lookups through
        // a non-member resolver. The goodput floor is (k-1)/k of the
        // window's probes — at soak-default timers the failover chain
        // (digest-silence detection, dead report, owner-cache expiry) takes
        // at most ~20 s of the 60 s flood, leaving ample margin above the
        // 15-of-30 floor.
        std::vector<Inr*> members = cluster.ReplicasOf("ha");
        if (members.size() < 2) {
          trace << "skip;";
          cluster.loop().RunFor(window);
          break;
        }
        Inr* victim = members[chaos.NextBelow(members.size())];
        const uint32_t host = victim->address().ip & 0xFFu;
        trace << "m";
        for (Inr* m : members) {
          trace << (m->address().ip & 0xFFu) << ",";
        }
        trace << "h" << host << ";";
        Inr* probe_inr = nullptr;
        for (Inr* inr : cluster.inrs()) {
          if (inr != members[0] && inr != members[1]) {
            probe_inr = inr;
            break;
          }
        }
        if (probe_inr == nullptr) {
          trace << "skip;";
          cluster.loop().RunFor(window);
          break;
        }
        trace << "p" << (probe_inr->address().ip & 0xFFu) << ";";
        auto probe = [&] {
          Packet p;
          p.destination_name = "[vspace=ha][service=hasvc]";
          p.payload = {0x7a};
          ha_probe->Send(probe_inr->address(), Envelope{MessageBody(std::move(p))});
        };
        // Steady state first: the probe path must already deliver before a
        // kill-window shortfall can mean anything.
        int before = ha_received;
        for (int n = 0; n < 5; ++n) {
          probe();
          cluster.loop().RunFor(Seconds(2));
        }
        if (ha_received - before < 4) {
          fail("round " + std::to_string(round) +
               ": replica probe path broken before the kill (" +
               std::to_string(ha_received - before) + "/5 delivered)");
          break;
        }
        cluster.CrashInr(victim);
        before = ha_received;
        for (int n = 0; n < 30; ++n) {
          probe();
          cluster.loop().RunFor(Seconds(2));
        }
        const int delivered = ha_received - before;
        trace << "hg" << delivered << ";";
        cluster.RestartInr(host);
        if (delivered < 15) {
          fail("round " + std::to_string(round) +
               ": lookup goodput below the (k-1)/k floor with one replica "
               "dead (" + std::to_string(delivered) + "/30 delivered)");
        }
        break;
      }
    }

    auto took = cluster.MeasureReconvergence(Seconds(120));
    if (!took.has_value()) {
      fail("round " + std::to_string(round) + " (kind " + std::to_string(kind) +
           "): no reconvergence within 120 s: " + cluster.CheckTreeInvariant());
      break;
    }
    trace << "t" << took->count() << ";";

    if (kind == 6) {
      // In replica mode a partition longer than the digest-death window makes
      // both sides drop each other from their replica sets, so post-heal
      // convergence is membership re-establishment first: a DSR registration
      // refresh clears the suspect mark (<= 20 s), the next maintenance tick
      // re-learns the set (<= 10 s), then one anti-entropy round syncs the
      // journals. The budget covers that whole chain; the measurement returns
      // as soon as replicas actually agree.
      auto caught_up = cluster.MeasureReplicationConvergence(
          options.inr_template.replication.digest_interval + Seconds(40));
      if (!caught_up.has_value()) {
        fail("round " + std::to_string(round) +
             ": replicas diverged after partition heal: " +
             cluster.CheckReplicationConvergence());
        break;
      }
      trace << "rc" << caught_up->count() << ";";
    }

    // Let name routes catch up (purge + full-state push + periodic refresh),
    // then prove an end-to-end lookup works. Datagrams are best-effort, so
    // allow a few attempts.
    cluster.loop().RunFor(Seconds(35));
    int before = received;
    for (int attempt = 0; attempt < 5 && received == before; ++attempt) {
      user.client->SendAnycast(P("[service=chaos]"), {static_cast<uint8_t>(round)});
      cluster.loop().RunFor(Seconds(2));
    }
    if (received == before) {
      fail("round " + std::to_string(round) + " (kind " + std::to_string(kind) +
           "): anycast lookup failed after reconvergence");
      break;
    }
    trace << "rx" << received << ";";
  }

  trace << "drop" << cluster.net().total_datagrams_dropped() << ";";
  trace << "pd" << cluster.faults().metrics().Counter("faults.partition_dropped") << ";";
  trace << "bd" << cluster.faults().metrics().Counter("faults.burst_dropped") << ";";
  trace << "cr" << cluster.faults().metrics().Counter("faults.corrupted") << ";";
  result.fingerprint = trace.str();
  return result;
}

class ChaosSoakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSoakTest, ReconvergesAndResolvesAfterEveryFaultWindow) {
  SoakResult r = RunSoak(GetParam());
  EXPECT_TRUE(r.ok) << r.failure << "\ntrace: " << r.fingerprint;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoakTest, ::testing::ValuesIn(SoakSeeds()));

// Same menu plus the PartitionHealConverge and ReplicaKillMidFlood windows,
// with journaled delta replication on everywhere in replica mode: every heal
// must reach serial-level replica convergence within one anti-entropy round,
// and a replica kill must keep lookups flowing at the (k-1)/k goodput floor.
class ChaosSoakReplicationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSoakReplicationTest, ReplicasConvergeAfterEveryFaultWindow) {
  SoakResult r = RunSoak(GetParam(), /*replication=*/true);
  EXPECT_TRUE(r.ok) << r.failure << "\ntrace: " << r.fingerprint;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoakReplicationTest,
                         ::testing::ValuesIn(SoakSeeds()));

TEST(ChaosSoakDeterminismTest, SameSeedSameTrace) {
  for (uint64_t seed : {3u, 8u}) {
    SoakResult first = RunSoak(seed);
    SoakResult second = RunSoak(seed);
    ASSERT_TRUE(first.ok) << first.failure;
    EXPECT_EQ(first.fingerprint, second.fingerprint) << "seed " << seed;
  }
}

TEST(ChaosSoakDeterminismTest, ReplicationModeIsDeterministicToo) {
  SoakResult first = RunSoak(5, /*replication=*/true);
  SoakResult second = RunSoak(5, /*replication=*/true);
  ASSERT_TRUE(first.ok) << first.failure;
  EXPECT_EQ(first.fingerprint, second.fingerprint);
}

TEST(ChaosSoakDeterminismTest, DifferentSeedsDiverge) {
  SoakResult a = RunSoak(101);
  SoakResult b = RunSoak(102);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

}  // namespace
}  // namespace ins
