// Tests for the self-configuring spanning-tree overlay.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ins/harness/cluster.h"

namespace ins {
namespace {

// Counts undirected overlay links, verifying symmetric neighbor views.
size_t CountLinks(std::vector<Inr*> inrs) {
  std::map<NodeAddress, std::set<NodeAddress>> adj;
  for (Inr* inr : inrs) {
    for (const NodeAddress& n : inr->topology().NeighborAddresses()) {
      adj[inr->address()].insert(n);
    }
  }
  size_t links = 0;
  for (const auto& [a, peers] : adj) {
    for (const NodeAddress& b : peers) {
      EXPECT_TRUE(adj[b].count(a) > 0)
          << "asymmetric link " << a.ToString() << " <-> " << b.ToString();
      if (a < b) {
        ++links;
      }
    }
  }
  return links;
}

// Union-find connectivity check over the overlay.
bool IsConnectedTree(std::vector<Inr*> inrs) {
  if (inrs.empty()) {
    return true;
  }
  std::map<NodeAddress, NodeAddress> parent;
  std::function<NodeAddress(NodeAddress)> find = [&](NodeAddress x) {
    while (parent[x] != x) {
      x = parent[x] = parent[parent[x]];
    }
    return x;
  };
  for (Inr* inr : inrs) {
    parent.emplace(inr->address(), inr->address());
  }
  size_t merges = 0;
  for (Inr* inr : inrs) {
    for (const NodeAddress& n : inr->topology().NeighborAddresses()) {
      NodeAddress ra = find(inr->address());
      NodeAddress rb = find(n);
      if (ra != rb) {
        parent[ra] = rb;
        ++merges;
      }
    }
  }
  return merges == inrs.size() - 1 && CountLinks(inrs) == inrs.size() - 1;
}

TEST(TopologyTest, SingleInrJoinsAsRoot) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(2));
  EXPECT_TRUE(a->topology().joined());
  EXPECT_TRUE(a->topology().NeighborAddresses().empty());
}

TEST(TopologyTest, TwoInrsPeer) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  EXPECT_EQ(a->topology().NeighborAddresses(), std::vector<NodeAddress>{b->address()});
  EXPECT_EQ(b->topology().NeighborAddresses(), std::vector<NodeAddress>{a->address()});
  EXPECT_EQ(b->topology().parent(), a->address());
}

TEST(TopologyTest, SequentialJoinsFormSpanningTree) {
  SimCluster cluster;
  for (uint32_t i = 1; i <= 8; ++i) {
    cluster.AddInr(i);
    cluster.loop().RunFor(Seconds(1));
  }
  cluster.StabilizeTopology();
  EXPECT_TRUE(IsConnectedTree(cluster.inrs()));
}

TEST(TopologyTest, SimultaneousJoinsFormSpanningTree) {
  SimCluster cluster;
  // All at once: the DSR's linear order resolves the race.
  for (uint32_t i = 1; i <= 6; ++i) {
    cluster.AddInr(i);
  }
  cluster.StabilizeTopology();
  EXPECT_TRUE(IsConnectedTree(cluster.inrs()));
}

TEST(TopologyTest, NewInrPicksMinimumRttPeer) {
  SimCluster cluster;
  // Host 3 is much closer to host 2 than to host 1.
  cluster.net().SetLink(MakeAddress(1).ip, MakeAddress(3).ip, {Milliseconds(50), 0, 0});
  cluster.net().SetLink(MakeAddress(2).ip, MakeAddress(3).ip, {Milliseconds(2), 0, 0});
  cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(1));
  Inr* c = cluster.AddInr(3);
  cluster.StabilizeTopology();
  EXPECT_EQ(c->topology().parent(), MakeAddress(2));
}

TEST(TopologyTest, ParentFailureTriggersRejoin) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(1));
  Inr* c = cluster.AddInr(3);
  cluster.StabilizeTopology();
  ASSERT_TRUE(c->topology().joined());

  // Kill whoever c peers with (its parent), ungracefully.
  NodeAddress dead = *c->topology().parent();
  Inr* victim = dead == a->address() ? a : b;
  Inr* survivor = victim == a ? b : a;
  cluster.CrashInr(victim);

  // Keepalives (5 s interval, 3 missed) detect the failure; c rejoins.
  cluster.loop().RunFor(Seconds(40));
  EXPECT_TRUE(c->topology().joined());
  EXPECT_EQ(c->topology().parent(), survivor->address());
  EXPECT_GT(c->metrics().Counter("topology.neighbor_failures"), 0u);
}

TEST(TopologyTest, RestartedPeerRejoinResetsStaleEdge) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  ASSERT_TRUE(IsConnectedTree(cluster.inrs()));

  // b restarts amnesiac before a's keepalive verdict notices anything: its
  // rejoin PeerRequest reaches a resolver that still holds the old edge. The
  // stale edge must be torn down and re-formed, not silently reused — its
  // parent/child direction may no longer match the requester's view.
  cluster.CrashInr(b);
  Inr* b2 = cluster.RestartInr(2);
  cluster.StabilizeTopology();

  EXPECT_TRUE(b2->topology().joined());
  EXPECT_TRUE(IsConnectedTree(cluster.inrs()));
  EXPECT_GT(a->metrics().Counter("topology.edge_resets"), 0u);
}

TEST(TopologyTest, KeepaliveFromNonNeighborIsRepairedWithPeerClose) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();

  // A peer asserting a tree edge this resolver does not hold (the signature
  // of a half-open edge after an amnesiac restart) must be answered with
  // PeerClose so the sender drops its stale edge and rejoins.
  auto ghost = cluster.AddEndpoint(99);
  ghost->Send(a->address(), Envelope{MessageBody(PeerKeepalive{ghost->address()})});
  cluster.Settle();

  EXPECT_EQ(ghost->ReceivedOf<PeerClose>().size(), 1u);
  EXPECT_GT(a->metrics().Counter("topology.half_open_repairs"), 0u);
}

TEST(TopologyTest, GracefulStopNotifiesPeers) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();

  b->Stop();
  cluster.loop().RunFor(Seconds(1));
  // a learns immediately via PeerClose, no keepalive wait.
  EXPECT_TRUE(a->topology().NeighborAddresses().empty());
  // And the DSR no longer lists b.
  EXPECT_EQ(cluster.dsr().ActiveInrs(), std::vector<NodeAddress>{a->address()});
}

TEST(TopologyTest, RelaxationImprovesParentChoice) {
  ClusterOptions options;
  options.inr_template.topology.enable_relaxation = true;
  options.inr_template.topology.relaxation_interval = Seconds(10);
  SimCluster cluster(options);

  // At join time a is the closest peer for c, so c parents a.
  cluster.net().SetLink(MakeAddress(1).ip, MakeAddress(3).ip, {Milliseconds(5), 0, 0});
  cluster.net().SetLink(MakeAddress(2).ip, MakeAddress(3).ip, {Milliseconds(50), 0, 0});
  cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  (void)b;
  cluster.loop().RunFor(Seconds(1));
  Inr* c = cluster.AddInr(3);
  cluster.StabilizeTopology();
  ASSERT_EQ(c->topology().parent(), MakeAddress(1));

  // Network conditions change: the link to b becomes much faster. The
  // relaxation phase re-probes and re-parents c under b (a legal parent —
  // b joined before c in the DSR's linear order).
  cluster.net().SetLink(MakeAddress(2).ip, MakeAddress(3).ip, {Milliseconds(1), 0, 0});
  cluster.loop().RunFor(Seconds(60));
  EXPECT_EQ(c->topology().parent(), MakeAddress(2));
  EXPECT_GT(c->metrics().Counter("topology.relaxation_switches"), 0u);
  EXPECT_TRUE(IsConnectedTree(cluster.inrs()));
}

TEST(TopologyTest, RelaxationNeverAdoptsLaterJoiner) {
  ClusterOptions options;
  options.inr_template.topology.enable_relaxation = true;
  options.inr_template.topology.relaxation_interval = Seconds(10);
  SimCluster cluster(options);

  // b's best RTT is to c, but c joined after b: switching would risk a cycle.
  cluster.net().SetLink(MakeAddress(1).ip, MakeAddress(2).ip, {Milliseconds(20), 0, 0});
  cluster.net().SetLink(MakeAddress(2).ip, MakeAddress(3).ip, {Milliseconds(1), 0, 0});
  cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(3);
  cluster.StabilizeTopology();

  cluster.loop().RunFor(Seconds(60));
  EXPECT_EQ(b->topology().parent(), MakeAddress(1));
  EXPECT_TRUE(IsConnectedTree(cluster.inrs()));
}

TEST(TopologyTest, TreeSurvivesLossyLinks) {
  ClusterOptions options;
  options.default_link = {Milliseconds(2), 0, 0.05};  // 5% loss
  SimCluster cluster(options);
  for (uint32_t i = 1; i <= 5; ++i) {
    cluster.AddInr(i);
    cluster.loop().RunFor(Seconds(1));
  }
  cluster.StabilizeTopology(Seconds(120));
  EXPECT_TRUE(IsConnectedTree(cluster.inrs()));
}

TEST(TopologyTest, ParentCrashRecoversUnderHeavyLoss) {
  // Parent-crash recovery while 15% of datagrams vanish: keepalive pings,
  // list requests, and peer handshakes all get lost along the way, so this
  // exercises the backoff-driven retry path end to end.
  ClusterOptions options;
  options.default_link = {Milliseconds(2), 0, 0.15};
  SimCluster cluster(options);
  for (uint32_t i = 1; i <= 5; ++i) {
    cluster.AddInr(i);
    cluster.loop().RunFor(Seconds(1));
  }
  cluster.StabilizeTopology(Seconds(120));
  ASSERT_EQ(cluster.CheckTreeInvariant(), "");

  // Crash a resolver that other nodes peer through (never the current root's
  // own child-free leaf): pick the parent of the last joiner.
  Inr* last = cluster.inrs().back();
  NodeAddress dead = *last->topology().parent();
  Inr* victim = nullptr;
  for (Inr* inr : cluster.inrs()) {
    if (inr->address() == dead) {
      victim = inr;
    }
  }
  ASSERT_NE(victim, nullptr);
  cluster.CrashInr(victim);

  // Everyone who peered through the victim re-joins despite the loss.
  auto took = cluster.MeasureReconvergence(Seconds(120));
  ASSERT_TRUE(took.has_value()) << cluster.CheckTreeInvariant();
  EXPECT_TRUE(last->topology().joined());
  EXPECT_NE(last->topology().parent(), dead);
}

}  // namespace
}  // namespace ins
