// Resolver-level edge cases: message hygiene, stopped-resolver silence,
// hop-limit loop protection, introspection, and lifecycle.

#include <gtest/gtest.h>

#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

Advertisement MakeAd(const std::string& name_text, const NodeAddress& endpoint) {
  Advertisement ad;
  ad.name_text = name_text;
  ad.announcer = AnnouncerId{endpoint.ip, 1000, 0};
  ad.endpoint.address = endpoint;
  ad.lifetime_s = 45;
  ad.version = 1;
  return ad;
}

TEST(InrTest, GarbageDatagramsCounted) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto peer = cluster.AddEndpoint(10);
  peer->socket().Send(inr->address(), Bytes{0xff, 0x00, 0x13});
  peer->socket().Send(inr->address(), Bytes{});
  cluster.Settle();
  EXPECT_EQ(inr->metrics().Counter("inr.decode_errors"), 2u);
}

TEST(InrTest, StoppedResolverIsSilent) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto peer = cluster.AddEndpoint(10);

  inr->Stop();
  cluster.Settle();
  peer->Send(inr->address(), Envelope{MessageBody(Ping{1, 2})});
  peer->Send(inr->address(), Envelope{MessageBody(MakeAd("[a=1]", peer->address()))});
  cluster.Settle();
  EXPECT_TRUE(peer->ReceivedOf<Pong>().empty());
  EXPECT_GE(inr->metrics().Counter("inr.messages_while_stopped"), 2u);
}

TEST(InrTest, StartStopStartLifecycle) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  inr->Stop();
  cluster.loop().RunFor(Seconds(10));
  EXPECT_TRUE(cluster.dsr().ActiveInrs().empty());

  inr->Start();
  cluster.loop().RunFor(Seconds(5));
  EXPECT_TRUE(inr->running());
  EXPECT_TRUE(inr->topology().joined());
  EXPECT_EQ(cluster.dsr().ActiveInrs().size(), 1u);
}

TEST(InrTest, BadDiscoveryFilterCounted) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto client = cluster.AddEndpoint(10);
  DiscoveryRequest req;
  req.request_id = 1;
  req.filter_text = "[[[broken";
  client->Send(inr->address(), Envelope{MessageBody(req)});
  cluster.Settle();
  EXPECT_EQ(inr->metrics().Counter("inr.bad_discovery_filters"), 1u);
  EXPECT_TRUE(client->ReceivedOf<DiscoveryResponse>().empty());
}

TEST(InrTest, ForgedRoutingLoopBoundedByHopLimit) {
  // Two resolvers are tricked into pointing a record at each other (forged
  // same-version better-metric updates from each side). A packet for that
  // name must die by hop limit instead of looping forever.
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto attacker = cluster.AddEndpoint(10);

  // Plant inconsistent routing state directly in each tree (the situation
  // transient distance-vector inconsistency could produce).
  for (auto [inr, via] : {std::pair{a, b->address()}, std::pair{b, a->address()}}) {
    NameRecord rec;
    rec.announcer = AnnouncerId{0x0b000000u, 1000, 0};
    rec.endpoint.address = MakeAddress(99);
    rec.route.next_hop_inr = via;  // each points at the other: a loop
    rec.route.overlay_metric = 1.0;
    rec.expires = cluster.loop().Now() + Seconds(600);
    rec.version = 1;
    inr->vspaces().Tree("")->Upsert(*ParseNameSpecifier("[service=ghost]"), rec);
  }

  Packet p;
  p.destination_name = "[service=ghost]";
  p.hop_limit = kDefaultHopLimit;
  attacker->Send(a->address(), Envelope{MessageBody(p)});
  cluster.loop().RunFor(Seconds(5));

  // The packet bounced a<->b at most hop_limit times, then died.
  uint64_t forwarded = a->metrics().Counter("forwarding.tunneled") +
                       b->metrics().Counter("forwarding.tunneled");
  EXPECT_LE(forwarded, static_cast<uint64_t>(kDefaultHopLimit));
  EXPECT_EQ(a->metrics().Counter("forwarding.drop.hop_limit") +
                b->metrics().Counter("forwarding.drop.hop_limit"),
            1u);
}

TEST(InrTest, DebugStringShowsDomainState) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1, {"", "cams"});
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", svc->address()))});
  cluster.Settle();

  std::string s = a->DebugString();
  EXPECT_NE(s.find("INR 10.0.0.1"), std::string::npos);
  EXPECT_NE(s.find(b->address().ToString()), std::string::npos);  // neighbor
  EXPECT_NE(s.find("vspace ''"), std::string::npos);
  EXPECT_NE(s.find("vspace 'cams'"), std::string::npos);
  EXPECT_NE(s.find("camera"), std::string::npos);
  EXPECT_NE(s.find("inr.messages"), std::string::npos);
}

TEST(InrTest, EarlyBindingWithNoMatchesReturnsEmptyList) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto client = cluster.AddEndpoint(10);
  Packet req;
  req.early_binding = true;
  req.destination_name = "[service=unicorn]";
  req.payload = EncodeEarlyBindingPayload(7, client->address());
  client->Send(inr->address(), Envelope{MessageBody(req)});
  cluster.Settle();
  auto resps = client->ReceivedOf<EarlyBindingResponse>();
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].request_id, 7u);
  EXPECT_TRUE(resps[0].items.empty());
}

TEST(InrTest, SelfAddressedPacketDelivers) {
  // A service can anycast to its own name (degenerate but legal).
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  svc->Send(inr->address(), Envelope{MessageBody(MakeAd("[service=echo]", svc->address()))});
  cluster.Settle();
  Packet p;
  p.destination_name = "[service=echo]";
  p.payload = {1};
  svc->Send(inr->address(), Envelope{MessageBody(p)});
  cluster.Settle();
  EXPECT_EQ(svc->ReceivedOf<Packet>().size(), 1u);
}

}  // namespace
}  // namespace ins
