// Real-socket integration test (ctest label "realnet"): the quickstart
// scenario — DSR + two INRs + a service + a client — over BatchedUdpTransport
// on the loopback interface, with pacing and admission control enabled.
// Everything runs in real time in one process on one RealEventLoop, so the
// assertions poll with generous deadlines instead of stepping virtual time.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ins/client/api.h"
#include "ins/inr/inr.h"
#include "ins/name/parser.h"
#include "ins/overlay/dsr.h"
#include "ins/transport/batched_udp_transport.h"

namespace ins {
namespace {

constexpr uint16_t kBasePort = 44210;

NameSpecifier P(const std::string& text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

BatchedUdpConfig PacedConfig() {
  BatchedUdpConfig config;
  config.batch_size = 16;
  config.pacer.enabled = true;  // generous defaults: smooths, never starves
  return config;
}

// Polls `done` every few milliseconds of real time, up to `deadline`.
template <typename Pred>
bool RunUntil(RealEventLoop& loop, Duration deadline, Pred done) {
  const TimePoint end = loop.Now() + deadline;
  while (loop.Now() < end) {
    if (done()) {
      return true;
    }
    loop.RunFor(Milliseconds(20));
  }
  return done();
}

std::unique_ptr<BatchedUdpTransport> MustBind(RealEventLoop& loop, uint32_t host,
                                              uint16_t port) {
  auto t = BatchedUdpTransport::Bind(&loop, MakeAddress(host, port), PacedConfig());
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(*t);
}

TEST(RealnetTest, QuickstartScenarioOverBatchedUdp) {
  RealEventLoop loop;

  // --- Infrastructure: DSR + two INRs, paced batched transports everywhere.
  auto dsr_transport = MustBind(loop, 250, kBasePort);
  auto inr1_transport = MustBind(loop, 1, kBasePort + 1);
  auto inr2_transport = MustBind(loop, 2, kBasePort + 2);
  ASSERT_TRUE(dsr_transport && inr1_transport && inr2_transport);
  Dsr dsr(&loop, dsr_transport.get());

  InrConfig inr_config;
  inr_config.dsr = dsr_transport->local_address();
  inr_config.admission.enabled = true;  // exercises the pacer feedback loop
  Inr inr1(&loop, inr1_transport.get(), inr_config);
  Inr inr2(&loop, inr2_transport.get(), inr_config);
  inr1.Start();
  ASSERT_TRUE(RunUntil(loop, Seconds(20), [&] { return inr1.topology().joined(); }));
  inr2.Start();
  ASSERT_TRUE(RunUntil(loop, Seconds(20), [&] { return inr2.topology().joined(); }));

  // --- A service on inr1, a client on inr2.
  auto svc_transport = MustBind(loop, 10, kBasePort + 3);
  auto cli_transport = MustBind(loop, 20, kBasePort + 4);
  ASSERT_TRUE(svc_transport && cli_transport);

  ClientConfig svc_config;
  svc_config.inr = inr1.address();
  svc_config.dsr = dsr_transport->local_address();
  InsClient service(&loop, svc_transport.get(), svc_config);
  service.Start();
  NameSpecifier thermostat = P("[service=thermostat[id=t1]][room=510]");
  auto advertisement = service.Advertise(thermostat, {{9000, "udp"}});

  ClientConfig cli_config;
  cli_config.inr = inr2.address();
  cli_config.dsr = dsr_transport->local_address();
  InsClient client(&loop, cli_transport.get(), cli_config);
  client.Start();
  NameSpecifier client_name = P("[service=realnet-client[id=c1]]");
  auto client_ad = client.Advertise(client_name);

  // No lost control traffic: the advertisement must propagate to BOTH
  // resolvers (registration, triggered update, and routing all over real
  // paced sockets).
  ASSERT_TRUE(RunUntil(loop, Seconds(30), [&] {
    const NameTree* t1 = inr1.vspaces().Tree("");
    const NameTree* t2 = inr2.vspaces().Tree("");
    return t1 != nullptr && t2 != nullptr && t1->record_count() >= 2 &&
           t2->record_count() >= 2;
  })) << "names did not reach both resolvers:\n"
      << inr1.DebugString() << inr2.DebugString();

  // --- Discovery via the client's resolver (inr2).
  bool discovered = false;
  client.Discover(P("[service=thermostat][room=510]"), "",
                  [&](Status s, std::vector<InsClient::DiscoveredName> names) {
                    discovered = s.ok() && names.size() == 1;
                  });
  ASSERT_TRUE(RunUntil(loop, Seconds(20), [&] { return discovered; }));

  // --- Late binding: anycast to the intentional name, reply by name too.
  bool service_got = false;
  bool client_got = false;
  service.OnData([&](const NameSpecifier& from, const Bytes& payload) {
    service_got = payload == Bytes{'t', 'e', 'm', 'p', '?'};
    service.SendAnycast(from, {'2', '1', 'C'}, thermostat);
  });
  client.OnData([&](const NameSpecifier&, const Bytes& payload) {
    client_got = payload == Bytes{'2', '1', 'C'};
  });
  client.SendAnycast(P("[service=thermostat][room=510]"),
                     {'t', 'e', 'm', 'p', '?'}, client_name);
  ASSERT_TRUE(RunUntil(loop, Seconds(20), [&] { return service_got && client_got; }));

  // The paced transports really did batch: the resolvers' registries carry
  // the transport.* family (AttachMetrics wiring).
  EXPECT_GT(inr1.metrics().Counter("transport.send.datagrams"), 0u);
  EXPECT_GT(inr1.metrics().Counter("transport.recv.datagrams"), 0u);
  EXPECT_EQ(inr1.metrics().Counter("transport.drop.error"), 0u);
  EXPECT_EQ(inr2.metrics().Counter("transport.drop.error"), 0u);

  // --- Clean shutdown: stop the resolvers; clients tear down in their
  // destructors. No crashes, no stuck timers.
  inr2.Stop();
  inr1.Stop();
  loop.RunFor(Milliseconds(200));
}

TEST(RealnetTest, ResolverSurvivesBurstTrafficWithPacing) {
  // A client hammers one resolver with discovery requests; with pacing and
  // admission enabled nothing may crash, and the resolver must still answer
  // afterwards (graceful degradation, not collapse).
  RealEventLoop loop;
  auto dsr_transport = MustBind(loop, 250, kBasePort + 10);
  auto inr_transport = MustBind(loop, 1, kBasePort + 11);
  ASSERT_TRUE(dsr_transport && inr_transport);
  Dsr dsr(&loop, dsr_transport.get());
  InrConfig inr_config;
  inr_config.dsr = dsr_transport->local_address();
  inr_config.admission.enabled = true;
  Inr inr(&loop, inr_transport.get(), inr_config);
  inr.Start();
  ASSERT_TRUE(RunUntil(loop, Seconds(20), [&] { return inr.topology().joined(); }));

  auto svc_transport = MustBind(loop, 10, kBasePort + 12);
  ClientConfig svc_config;
  svc_config.inr = inr.address();
  svc_config.dsr = dsr_transport->local_address();
  InsClient service(&loop, svc_transport.get(), svc_config);
  service.Start();
  auto ad = service.Advertise(P("[service=burst-target]"));
  ASSERT_TRUE(RunUntil(loop, Seconds(20), [&] {
    const NameTree* t = inr.vspaces().Tree("");
    return t != nullptr && t->record_count() >= 1;
  }));

  auto cli_transport = MustBind(loop, 20, kBasePort + 13);
  ClientConfig cli_config;
  cli_config.inr = inr.address();
  cli_config.dsr = dsr_transport->local_address();
  InsClient client(&loop, cli_transport.get(), cli_config);
  client.Start();

  int answered = 0;
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 50; ++i) {
      client.Discover(P("[service=burst-target]"), "",
                      [&](Status s, std::vector<InsClient::DiscoveredName> names) {
                        answered += (s.ok() && !names.empty()) ? 1 : 0;
                      });
    }
    loop.RunFor(Milliseconds(10));
  }
  loop.RunFor(Seconds(2));

  // Some requests may time out under overload; the resolver itself must
  // still be responsive afterwards.
  bool alive = false;
  client.Discover(P("[service=burst-target]"), "",
                  [&](Status s, std::vector<InsClient::DiscoveredName> names) {
                    alive = s.ok() && names.size() == 1;
                  });
  EXPECT_TRUE(RunUntil(loop, Seconds(20), [&] { return alive; }));
  EXPECT_GT(answered, 0);

  inr.Stop();
}

}  // namespace
}  // namespace ins
