// INR crash/restart recovery (the resolver counterpart of dsr_restart_test):
// a restarted resolver comes back with empty runtime state and must rebuild
// everything from the protocols alone — overlay membership via the normal
// join/backoff path, virtual-space assignments from the DSR's still-live
// soft-state registration (DsrAssignmentsRequest), and its name tree from
// neighbors' full-state push plus services' periodic re-advertisement. All of
// that completes within one advertisement refresh period, with no duplicate
// announcer records anywhere.

#include <gtest/gtest.h>

#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

Advertisement MakeAd(const std::string& name_text, const NodeAddress& endpoint,
                     uint64_t version = 1) {
  Advertisement ad;
  ad.name_text = name_text;
  ad.announcer = AnnouncerId{endpoint.ip, 1000, 0};
  ad.endpoint.address = endpoint;
  ad.endpoint.bindings = {{8080, "http"}};
  ad.lifetime_s = 45;
  ad.version = version;
  return ad;
}

Packet MakeData(const std::string& dst, Bytes payload) {
  Packet p;
  p.destination_name = dst;
  p.payload = std::move(payload);
  return p;
}

TEST(InrRestartTest, RestartedInrServesNamesWithinOneRefreshPeriod) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(3);
  cluster.StabilizeTopology();

  auto svc = cluster.AddEndpoint(10);
  auto client = cluster.AddEndpoint(20);
  svc->Send(b->address(), Envelope{MessageBody(MakeAd("[service=printer]", svc->address()))});
  cluster.Settle();

  // Baseline: the name resolves through a (tunneled to b, delivered to svc).
  client->Send(a->address(), Envelope{MessageBody(MakeData("[service=printer]", {1}))});
  cluster.Settle();
  ASSERT_EQ(svc->ReceivedOf<Packet>().size(), 1u);

  cluster.CrashInr(a);
  cluster.loop().RunFor(Seconds(5));
  Inr* a2 = cluster.RestartInr(1);
  ASSERT_NE(a2, nullptr);
  EXPECT_TRUE(a2->running());

  // Reconvergence — tree invariant clean again — within one advertisement
  // refresh period of the restart.
  const Duration refresh = cluster.options().inr_template.discovery.update_interval;
  auto took = cluster.MeasureReconvergence(refresh);
  ASSERT_TRUE(took.has_value()) << cluster.CheckTreeInvariant();

  // The restarted resolver's tree was refilled by its neighbors' full-state
  // push: the same name resolves through a2 without any service action.
  client->Send(a2->address(), Envelope{MessageBody(MakeData("[service=printer]", {2}))});
  cluster.Settle();
  ASSERT_EQ(svc->ReceivedOf<Packet>().size(), 2u);

  // No duplicate announcer records anywhere.
  for (Inr* inr : cluster.inrs()) {
    EXPECT_TRUE(inr->vspaces().store().CheckInvariants().ok()) << inr->address().ToString();
  }
  auto q = *ParseNameSpecifier("[service=printer]");
  EXPECT_EQ(a2->vspaces().Tree("")->Lookup(q).size(), 1u);
}

TEST(InrRestartTest, RestartedInrRecoversDelegatedVspaceFromDsr) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto peer = cluster.AddEndpoint(10);

  // "cams" arrives by delegation at runtime — it is NOT in a's start config,
  // so only the DSR recovery path can bring it back after a crash.
  peer->Send(a->address(), Envelope{MessageBody(DelegateVspace{peer->address(), "cams"})});
  cluster.Settle();
  ASSERT_TRUE(a->vspaces().Routes("cams"));
  ASSERT_EQ(cluster.dsr().InrForVspace("cams"), a->address());

  cluster.CrashInr(a);
  cluster.loop().RunFor(Seconds(5));  // well inside the 60 s DSR lifetime
  Inr* a2 = cluster.RestartInr(1);
  ASSERT_NE(a2, nullptr);
  cluster.loop().RunFor(Seconds(2));

  EXPECT_TRUE(a2->vspaces().Routes("cams"));
  EXPECT_GE(a2->metrics().Counter("inr.vspaces_recovered"), 1u);
  EXPECT_EQ(cluster.dsr().InrForVspace("cams"), a2->address());
}

TEST(InrRestartTest, AssignmentsAreGoneOnceTheRegistrationExpires) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto peer = cluster.AddEndpoint(10);
  peer->Send(a->address(), Envelope{MessageBody(DelegateVspace{peer->address(), "cams"})});
  cluster.Settle();
  ASSERT_TRUE(a->vspaces().Routes("cams"));

  cluster.CrashInr(a);
  // Stay down past the DSR registration lifetime: the soft state lapses and
  // there is nothing left to recover — by design.
  const uint32_t lifetime_s = cluster.options().inr_template.topology.dsr_lifetime_s;
  cluster.loop().RunFor(Seconds(lifetime_s + 10));
  Inr* a2 = cluster.RestartInr(1);
  ASSERT_NE(a2, nullptr);
  cluster.loop().RunFor(Seconds(2));

  EXPECT_FALSE(a2->vspaces().Routes("cams"));
  EXPECT_EQ(a2->metrics().Counter("inr.vspaces_recovered"), 0u);
  // The resolver itself is fine: joined, routing its configured spaces.
  EXPECT_TRUE(a2->topology().joined());
  EXPECT_TRUE(a2->vspaces().Routes(""));
}

TEST(InrRestartTest, ReAdvertisementAfterRestartDoesNotDuplicate) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);

  // Service attached to a: its record lives in a's tree and propagates to b.
  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=scanner]", svc->address(), 1))});
  cluster.Settle();
  auto q = *ParseNameSpecifier("[service=scanner]");
  ASSERT_EQ(b->vspaces().Tree("")->Lookup(q).size(), 1u);

  cluster.CrashInr(a);
  cluster.loop().RunFor(Seconds(5));
  Inr* a2 = cluster.RestartInr(1);
  ASSERT_NE(a2, nullptr);
  auto took = cluster.MeasureReconvergence(Seconds(15));
  ASSERT_TRUE(took.has_value()) << cluster.CheckTreeInvariant();

  // The service's next soft-state refresh lands on the restarted resolver.
  // Between the neighbor push (b still had the record, routed via a) and the
  // fresh local advertisement, exactly one record per announcer must remain.
  svc->Send(a2->address(), Envelope{MessageBody(MakeAd("[service=scanner]", svc->address(), 2))});
  cluster.loop().RunFor(Seconds(2));

  EXPECT_EQ(a2->vspaces().Tree("")->Lookup(q).size(), 1u);
  EXPECT_EQ(b->vspaces().Tree("")->Lookup(q).size(), 1u);
  for (Inr* inr : cluster.inrs()) {
    EXPECT_TRUE(inr->vspaces().store().CheckInvariants().ok()) << inr->address().ToString();
  }
}

TEST(InrRestartTest, ReplicationJournalCatchUpCompletesWithinAKeepaliveInterval) {
  // Flagged-on variant of RestartedInrServesNamesWithinOneRefreshPeriod: with
  // journaled replication the restarted resolver must not wait out a refresh
  // period — the first anti-entropy digest round after the overlay rejoin
  // (digest cadence == keepalive cadence) repopulates it from a neighbor's
  // journal.
  ClusterOptions options;
  options.inr_template.replication.enabled = true;
  SimCluster cluster(options);
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();

  auto svc = cluster.AddEndpoint(10);
  for (int i = 0; i < 20; ++i) {
    Advertisement ad = MakeAd("[service=fleet][id=" + std::to_string(i) + "]", svc->address());
    ad.announcer.discriminator = static_cast<uint32_t>(i);
    svc->Send(b->address(), Envelope{MessageBody(ad)});
  }
  cluster.loop().RunFor(Seconds(2));
  ASSERT_TRUE(cluster.CheckReplicationConvergence().empty());

  cluster.CrashInr(a);
  cluster.loop().RunFor(Seconds(20));  // past the keepalive failure window
  Inr* a2 = cluster.RestartInr(1);
  ASSERT_NE(a2, nullptr);
  auto rejoined = cluster.MeasureReconvergence(Seconds(15));
  ASSERT_TRUE(rejoined.has_value()) << cluster.CheckTreeInvariant();

  // From the moment the overlay is whole again, one keepalive interval is
  // the budget for serial-level convergence — no service refresh, no
  // periodic update involved (both are 15 s+ away).
  auto caught_up = cluster.MeasureReplicationConvergence(
      cluster.options().inr_template.topology.keepalive_interval);
  ASSERT_TRUE(caught_up.has_value()) << cluster.CheckReplicationConvergence();

  auto q = *ParseNameSpecifier("[service=fleet]");
  EXPECT_EQ(a2->vspaces().Tree("")->Lookup(q).size(), 20u);
  for (Inr* inr : cluster.inrs()) {
    EXPECT_TRUE(inr->vspaces().store().CheckInvariants().ok()) << inr->address().ToString();
  }
}

}  // namespace
}  // namespace ins
