// Tests for MobilityManager: node mobility with transparent re-announcement
// and session continuity through late binding.

#include <gtest/gtest.h>

#include "ins/client/api.h"
#include "ins/client/mobility.h"
#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

NameSpecifier P(const char* text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

struct MobileClient {
  MobileClient(SimCluster* cluster, uint32_t host, NodeAddress inr)
      : socket(cluster->net().Bind(MakeAddress(host))) {
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster->dsr_address();
    client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
    client->Start();
    mobility = std::make_unique<MobilityManager>(
        &cluster->loop(), client.get(),
        [this](const NodeAddress& addr) { return socket->Rebind(addr); });
  }

  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<InsClient> client;
  std::unique_ptr<MobilityManager> mobility;
};

TEST(MobilityTest, MoveReAnnouncesFromNewAddress) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  MobileClient cam(&cluster, 10, inr->address());
  auto handle = cam.client->Advertise(P("[service=camera][room=510]"));
  cluster.Settle();

  auto before = inr->vspaces().Tree("")->Lookup(P("[service=camera]"));
  ASSERT_EQ(before.size(), 1u);
  EXPECT_EQ(before[0]->endpoint.address, MakeAddress(10));

  ASSERT_TRUE(cam.mobility->Move(MakeAddress(77)).ok());
  cluster.Settle();

  auto after = inr->vspaces().Tree("")->Lookup(P("[service=camera]"));
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0]->endpoint.address, MakeAddress(77));
  EXPECT_EQ(cam.mobility->moves_detected(), 1u);
}

TEST(MobilityTest, SessionContinuesAcrossMove) {
  // The paper's core claim: a client using an intentional name keeps
  // communicating with a service through a move, with zero client changes.
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  MobileClient cam(&cluster, 10, inr->address());
  MobileClient viewer(&cluster, 20, inr->address());

  auto cam_name = P("[service=camera][room=510]");
  auto handle = cam.client->Advertise(cam_name);
  cluster.Settle();

  int received = 0;
  cam.client->OnData([&](const NameSpecifier&, const Bytes&) { ++received; });

  viewer.client->SendAnycast(cam_name, {1});
  cluster.Settle();
  EXPECT_EQ(received, 1);

  // The camera moves. Same intentional name, new network location.
  ASSERT_TRUE(cam.mobility->Move(MakeAddress(78)).ok());
  cluster.Settle();

  viewer.client->SendAnycast(cam_name, {2});
  cluster.Settle();
  EXPECT_EQ(received, 2);
}

TEST(MobilityTest, PollDetectsExternalRebind) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  MobileClient cam(&cluster, 10, inr->address());
  auto handle = cam.client->Advertise(P("[service=camera]"));
  cluster.Settle();

  // The interface changes underneath the client (no Move() call).
  ASSERT_TRUE(cam.socket->Rebind(MakeAddress(79)).ok());
  bool observed = false;
  cam.mobility->on_moved = [&](const NodeAddress& from, const NodeAddress& to) {
    EXPECT_EQ(from, MakeAddress(10));
    EXPECT_EQ(to, MakeAddress(79));
    observed = true;
  };
  cluster.loop().RunFor(Seconds(2));  // poll interval is 500 ms
  EXPECT_TRUE(observed);

  auto recs = inr->vspaces().Tree("")->Lookup(P("[service=camera]"));
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0]->endpoint.address, MakeAddress(79));
}

TEST(MobilityTest, AdvertiserFailsOverWhenItsResolverDies) {
  // A service that only advertises gets no responses, so resolver death is
  // detected by the attachment liveness probe (missed pongs on the refresh
  // tick) — the name must re-appear via a surviving resolver without any
  // application involvement.
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();

  MobileClient cam(&cluster, 10, NodeAddress{});  // attaches via DSR: first = a
  cluster.loop().RunFor(Seconds(1));
  ASSERT_EQ(cam.client->resolver(), a->address());
  auto handle = cam.client->Advertise(P("[service=camera][room=510]"));
  MobileClient viewer(&cluster, 20, b->address());
  cluster.Settle();

  cluster.CrashInr(a);
  // Two missed liveness pongs (one per 15 s refresh tick) trigger failover;
  // the next refresh announces to b. Well under two advertisement lifetimes.
  cluster.loop().RunFor(Seconds(80));
  EXPECT_EQ(cam.client->resolver(), b->address());
  EXPECT_GE(cam.client->metrics().Counter("client.failovers"), 1u);
  ASSERT_EQ(b->vspaces().Tree("")->Lookup(P("[service=camera]")).size(), 1u);

  int received = 0;
  cam.client->OnData([&](const NameSpecifier&, const Bytes&) { ++received; });
  viewer.client->SendAnycast(P("[service=camera][room=510]"), {1});
  cluster.Settle();
  EXPECT_EQ(received, 1);
}

TEST(MobilityTest, MoveToOccupiedAddressFailsCleanly) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  MobileClient a(&cluster, 10, inr->address());
  MobileClient b(&cluster, 11, inr->address());
  Status s = a.mobility->Move(MakeAddress(11));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(a.client->address(), MakeAddress(10));  // unchanged
  EXPECT_EQ(a.mobility->moves_detected(), 0u);
}

}  // namespace
}  // namespace ins
