// Tests for the timer wheel and the epoll RealEventLoop.

#include <gtest/gtest.h>

#include <vector>

#include "ins/transport/real_event_loop.h"
#include "ins/transport/timer_wheel.h"

namespace ins {
namespace {

TimePoint At(int64_t us) { return TimePoint(us); }

TEST(TimerWheelTest, FiresInDeadlineOrder) {
  TimerWheel wheel(At(0));
  std::vector<int> order;
  wheel.Schedule(At(30'000), [&] { order.push_back(3); });
  wheel.Schedule(At(10'000), [&] { order.push_back(1); });
  wheel.Schedule(At(20'000), [&] { order.push_back(2); });
  EXPECT_EQ(wheel.live(), 3u);

  EXPECT_EQ(wheel.Advance(At(15'000)), 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(wheel.Advance(At(40'000)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.live(), 0u);
}

TEST(TimerWheelTest, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel(At(50'000));
  int fired = 0;
  wheel.Schedule(At(1'000), [&] { ++fired; });  // already overdue
  EXPECT_EQ(wheel.Advance(At(50'000)), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, CancelPreventsFiring) {
  TimerWheel wheel(At(0));
  int fired = 0;
  TaskId a = wheel.Schedule(At(10'000), [&] { ++fired; });
  TaskId b = wheel.Schedule(At(10'000), [&] { ++fired; });
  EXPECT_TRUE(wheel.Cancel(a));
  EXPECT_FALSE(wheel.Cancel(a));  // second cancel: already cancelled
  wheel.Advance(At(20'000));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(wheel.Cancel(b));  // already fired
}

TEST(TimerWheelTest, StaleIdFromReusedNodeIsRejected) {
  TimerWheel wheel(At(0));
  TaskId first = wheel.Schedule(At(1'000), [] {});
  wheel.Advance(At(2'000));  // fires; the node returns to the pool
  // The next schedule reuses the node with a bumped generation.
  TaskId second = wheel.Schedule(At(10'000), [] {});
  EXPECT_FALSE(wheel.Cancel(first));  // stale handle must not hit the new timer
  EXPECT_TRUE(wheel.Cancel(second));
}

TEST(TimerWheelTest, FarDeadlinesCascadeThroughLevels) {
  TimerWheel wheel(At(0));
  std::vector<int> order;
  // Spread across level 0 (<262ms), level 1 (<67s), level 2 (<4.7h).
  wheel.Schedule(At(100'000), [&] { order.push_back(1); });       // 100 ms
  wheel.Schedule(At(2'000'000), [&] { order.push_back(2); });     // 2 s
  wheel.Schedule(At(120'000'000), [&] { order.push_back(3); });   // 2 min
  wheel.Schedule(At(7'200'000'000), [&] { order.push_back(4); }); // 2 h

  EXPECT_EQ(wheel.Advance(At(150'000)), 1u);
  EXPECT_EQ(wheel.Advance(At(3'000'000)), 1u);
  EXPECT_EQ(wheel.Advance(At(130'000'000)), 1u);
  EXPECT_EQ(wheel.Advance(At(7'300'000'000)), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(TimerWheelTest, AdvancingInSmallStepsHitsEveryDeadline) {
  TimerWheel wheel(At(0));
  int fired = 0;
  for (int i = 1; i <= 100; ++i) {
    wheel.Schedule(At(i * 10'000), [&] { ++fired; });
  }
  for (int64_t t = 0; t <= 1'100'000; t += 3'000) {
    wheel.Advance(At(t));
  }
  EXPECT_EQ(fired, 100);
}

TEST(TimerWheelTest, NextDueBoundNeverLate) {
  TimerWheel wheel(At(0));
  wheel.Schedule(At(500'000), [] {});
  auto bound = wheel.NextDueBound();
  ASSERT_TRUE(bound.has_value());
  EXPECT_LE(bound->count(), 500'000);
  // And not absurdly early either: within one level-1 slot (262 ms).
  EXPECT_GE(bound->count(), 500'000 - 262'144);
  EXPECT_FALSE(TimerWheel(At(0)).NextDueBound().has_value());
}

TEST(TimerWheelTest, CallbackReschedulingReusesPooledNodes) {
  TimerWheel wheel(At(0));
  int64_t next = 1'000;
  int fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    next += 1'000;
    if (fired < 1000) {
      wheel.Schedule(At(next), tick);
    }
  };
  wheel.Schedule(At(next), tick);
  const size_t pool_after_first = 4;  // generous bound
  for (int64_t t = 0; t <= 1'200'000 && fired < 1000; t += 1'000) {
    wheel.Advance(At(t));
  }
  EXPECT_EQ(fired, 1000);
  // A schedule/fire/reschedule cycle must recycle one node, not grow the pool.
  EXPECT_LE(wheel.pool_size(), pool_after_first);
}

TEST(TimerWheelTest, ManyTimersAcrossSlotsAllFire) {
  TimerWheel wheel(At(0));
  size_t fired = 0;
  for (int i = 0; i < 5000; ++i) {
    wheel.Schedule(At(1'000 + (i % 977) * 4'096), [&] { ++fired; });
  }
  wheel.Advance(At(977 * 4'096 + 10'000));
  EXPECT_EQ(fired, 5000u);
  EXPECT_EQ(wheel.live(), 0u);
}

TEST(RealEventLoopTest, IdleLoopSleepsUntilNextTimer) {
  // The satellite bugfix: with one timer 150 ms out, the loop must park in
  // epoll until (about) that deadline instead of waking every 100 ms — and
  // certainly must not busy-poll. Allow slack for early timer-wheel bounds
  // and scheduler noise.
  RealEventLoop loop;
  loop.ScheduleAfter(Milliseconds(150), [&] { loop.Stop(); });
  const uint64_t before = loop.poll_wakeups();
  loop.RunFor(Seconds(5));
  const uint64_t wakeups = loop.poll_wakeups() - before;
  EXPECT_LE(wakeups, 10u);
  EXPECT_GE(wakeups, 1u);
}

TEST(RealEventLoopTest, RunForWithNoWorkReturnsOnDeadline) {
  RealEventLoop loop;
  const TimePoint start = loop.Now();
  loop.RunFor(Milliseconds(50));
  const Duration elapsed = loop.Now() - start;
  EXPECT_GE(elapsed, Milliseconds(45));
  EXPECT_LE(elapsed, Seconds(2));
}

TEST(RealEventLoopTest, TimerChainsAndCancellation) {
  RealEventLoop loop;
  int fired = 0;
  TaskId cancelled = loop.ScheduleAfter(Milliseconds(5), [&] { fired += 100; });
  EXPECT_TRUE(loop.Cancel(cancelled));
  loop.ScheduleAfter(Milliseconds(2), [&] {
    ++fired;
    loop.ScheduleAfter(Milliseconds(2), [&] {
      ++fired;
      loop.Stop();
    });
  });
  loop.RunFor(Seconds(2));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.pending_timers(), 0u);
}

}  // namespace
}  // namespace ins
