// Tests for the simulated network: latency, bandwidth FIFO, loss, mobility
// rebinding, and CPU modelling.

#include <gtest/gtest.h>

#include "ins/sim/network.h"

namespace ins::sim {
namespace {

Bytes Payload(size_t n, uint8_t fill = 0xaa) { return Bytes(n, fill); }

struct Fixture {
  EventLoop loop;
  Network net{&loop, /*seed=*/7};
};

TEST(NetworkTest, DeliversWithLinkLatency) {
  Fixture f;
  f.net.SetDefaultLink({Milliseconds(5), 0, 0});
  auto a = f.net.Bind(MakeAddress(1));
  auto b = f.net.Bind(MakeAddress(2));
  TimePoint delivered_at{-1};
  NodeAddress from;
  b->SetReceiveHandler([&](const NodeAddress& src, const Bytes& data) {
    delivered_at = f.loop.Now();
    from = src;
    EXPECT_EQ(data.size(), 10u);
  });
  ASSERT_TRUE(a->Send(MakeAddress(2), Payload(10)).ok());
  f.loop.RunUntilIdle();
  EXPECT_EQ(delivered_at, Milliseconds(5));
  EXPECT_EQ(from, MakeAddress(1));
}

TEST(NetworkTest, SameHostDeliveryIsImmediate) {
  Fixture f;
  f.net.SetDefaultLink({Milliseconds(5), 0, 0});
  auto a = f.net.Bind(MakeAddress(1, 5000));
  auto b = f.net.Bind(MakeAddress(1, 5001));  // same ip, different port
  TimePoint at{-1};
  b->SetReceiveHandler([&](const NodeAddress&, const Bytes&) { at = f.loop.Now(); });
  ASSERT_TRUE(a->Send(MakeAddress(1, 5001), Payload(4)).ok());
  f.loop.RunUntilIdle();
  EXPECT_EQ(at, Duration(0));
}

TEST(NetworkTest, BandwidthAddsSerializationDelay) {
  Fixture f;
  // 1 Mbps: 1250 bytes = 10 ms of transmission.
  f.net.SetDefaultLink({Milliseconds(0), 1e6, 0});
  auto a = f.net.Bind(MakeAddress(1));
  auto b = f.net.Bind(MakeAddress(2));
  TimePoint at{-1};
  b->SetReceiveHandler([&](const NodeAddress&, const Bytes&) { at = f.loop.Now(); });
  a->Send(MakeAddress(2), Payload(1250));
  f.loop.RunUntilIdle();
  EXPECT_EQ(at, Milliseconds(10));
}

TEST(NetworkTest, LinkIsFifoUnderBandwidth) {
  Fixture f;
  f.net.SetDefaultLink({Milliseconds(0), 1e6, 0});
  auto a = f.net.Bind(MakeAddress(1));
  auto b = f.net.Bind(MakeAddress(2));
  std::vector<TimePoint> at;
  b->SetReceiveHandler([&](const NodeAddress&, const Bytes&) { at.push_back(f.loop.Now()); });
  a->Send(MakeAddress(2), Payload(1250));  // 10 ms
  a->Send(MakeAddress(2), Payload(1250));  // queued behind: 20 ms
  f.loop.RunUntilIdle();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], Milliseconds(10));
  EXPECT_EQ(at[1], Milliseconds(20));
}

TEST(NetworkTest, PerLinkOverride) {
  Fixture f;
  f.net.SetDefaultLink({Milliseconds(1), 0, 0});
  f.net.SetLink(MakeAddress(1).ip, MakeAddress(2).ip, {Milliseconds(42), 0, 0});
  auto a = f.net.Bind(MakeAddress(1));
  auto b = f.net.Bind(MakeAddress(2));
  auto c = f.net.Bind(MakeAddress(3));
  TimePoint at_b{-1};
  TimePoint at_c{-1};
  b->SetReceiveHandler([&](const NodeAddress&, const Bytes&) { at_b = f.loop.Now(); });
  c->SetReceiveHandler([&](const NodeAddress&, const Bytes&) { at_c = f.loop.Now(); });
  a->Send(MakeAddress(2), Payload(1));
  a->Send(MakeAddress(3), Payload(1));
  f.loop.RunUntilIdle();
  EXPECT_EQ(at_b, Milliseconds(42));
  EXPECT_EQ(at_c, Milliseconds(1));
}

TEST(NetworkTest, LossDropsSilently) {
  Fixture f;
  f.net.SetDefaultLink({Milliseconds(1), 0, 0.5});
  auto a = f.net.Bind(MakeAddress(1));
  auto b = f.net.Bind(MakeAddress(2));
  int received = 0;
  b->SetReceiveHandler([&](const NodeAddress&, const Bytes&) { ++received; });
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(a->Send(MakeAddress(2), Payload(1)).ok());
  }
  f.loop.RunUntilIdle();
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_EQ(f.net.total_datagrams_dropped() + static_cast<uint64_t>(received), 200u);
}

TEST(NetworkTest, SendToUnboundAddressDrops) {
  Fixture f;
  auto a = f.net.Bind(MakeAddress(1));
  EXPECT_TRUE(a->Send(MakeAddress(99), Payload(1)).ok());
  f.loop.RunUntilIdle();
  EXPECT_EQ(f.net.total_datagrams_dropped(), 1u);
}

TEST(NetworkTest, RebindModelsNodeMobility) {
  Fixture f;
  f.net.SetDefaultLink({Milliseconds(5), 0, 0});
  auto a = f.net.Bind(MakeAddress(1));
  auto m = f.net.Bind(MakeAddress(2));
  int received = 0;
  m->SetReceiveHandler([&](const NodeAddress&, const Bytes&) { ++received; });

  a->Send(MakeAddress(2), Payload(1));
  f.loop.RunUntilIdle();
  EXPECT_EQ(received, 1);

  // The node moves; traffic in flight to the old address is lost.
  a->Send(MakeAddress(2), Payload(1));
  ASSERT_TRUE(m->Rebind(MakeAddress(9)).ok());
  f.loop.RunUntilIdle();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.net.total_datagrams_dropped(), 1u);

  // Traffic to the new address arrives.
  a->Send(MakeAddress(9), Payload(1));
  f.loop.RunUntilIdle();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(m->local_address(), MakeAddress(9));
}

TEST(NetworkTest, RebindToOccupiedAddressFails) {
  Fixture f;
  auto a = f.net.Bind(MakeAddress(1));
  auto b = f.net.Bind(MakeAddress(2));
  EXPECT_EQ(b->Rebind(MakeAddress(1)).code(), StatusCode::kAlreadyExists);
}

TEST(NetworkTest, StatsAccumulate) {
  Fixture f;
  auto a = f.net.Bind(MakeAddress(1));
  auto b = f.net.Bind(MakeAddress(2));
  b->SetReceiveHandler([](const NodeAddress&, const Bytes&) {});
  a->Send(MakeAddress(2), Payload(100));
  a->Send(MakeAddress(2), Payload(50));
  f.loop.RunUntilIdle();
  EXPECT_EQ(f.net.host_stats(MakeAddress(1).ip).datagrams_sent, 2u);
  EXPECT_EQ(f.net.host_stats(MakeAddress(1).ip).bytes_sent, 150u);
  EXPECT_EQ(f.net.host_stats(MakeAddress(2).ip).datagrams_received, 2u);
  EXPECT_EQ(f.net.host_stats(MakeAddress(2).ip).bytes_received, 150u);
  f.net.ResetStats();
  EXPECT_EQ(f.net.host_stats(MakeAddress(1).ip).bytes_sent, 0u);
}

TEST(NetworkTest, CpuModelSerializesHandlers) {
  Fixture f;
  f.net.SetDefaultLink({Milliseconds(1), 0, 0});
  // Huge scale so even a trivial handler busies the host measurably.
  f.net.SetCpuScale(MakeAddress(2).ip, 1e6);
  auto a = f.net.Bind(MakeAddress(1));
  auto b = f.net.Bind(MakeAddress(2));
  std::vector<TimePoint> at;
  b->SetReceiveHandler([&](const NodeAddress&, const Bytes&) {
    at.push_back(f.loop.Now());
    // Burn a little real CPU so the meter sees nonzero time.
    volatile uint64_t x = 0;
    for (int i = 0; i < 20000; ++i) {
      x = x + static_cast<uint64_t>(i);
    }
  });
  for (int i = 0; i < 3; ++i) {
    a->Send(MakeAddress(2), Payload(10));
  }
  f.loop.RunUntilIdle();
  ASSERT_EQ(at.size(), 3u);
  // Handlers start strictly after the previous one's charged busy period.
  EXPECT_GT(at[1], at[0]);
  EXPECT_GT(at[2], at[1]);
  EXPECT_GT(f.net.host_stats(MakeAddress(2).ip).cpu_busy.count(), 0);
}

TEST(NetworkTest, CpuChargeAccounting) {
  CpuAccount cpu;
  cpu.scale = 2.0;
  Duration busy = cpu.Charge(Milliseconds(10), Milliseconds(3));
  EXPECT_EQ(busy, Milliseconds(6));
  EXPECT_EQ(cpu.busy_until, Milliseconds(16));
  // Second charge starting earlier queues behind the first.
  cpu.Charge(Milliseconds(12), Milliseconds(1));
  EXPECT_EQ(cpu.busy_until, Milliseconds(18));
  EXPECT_EQ(cpu.total_busy, Milliseconds(8));
}

}  // namespace
}  // namespace ins::sim
