// Tests for the baselines: linear-scan name table (agrees with NameTree on
// schema-complete workloads) and round-robin DNS (documents the behavioural
// gap INS closes).

#include <gtest/gtest.h>

#include <set>

#include "ins/baseline/dns_baseline.h"
#include "ins/baseline/linear_name_table.h"
#include "ins/name/parser.h"
#include "ins/nametree/name_tree.h"
#include "ins/workload/namegen.h"

namespace ins {
namespace {

NameSpecifier P(const char* text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

AnnouncerId Id(uint32_t n) { return AnnouncerId{0x0a000000u + n, 1000, 0}; }

NameRecord Rec(uint32_t n, TimePoint expires = Seconds(3600)) {
  NameRecord r;
  r.announcer = Id(n);
  r.endpoint.address = MakeAddress(n);
  r.expires = expires;
  r.version = 1;
  return r;
}

TEST(LinearNameTableTest, UpsertLookupRemove) {
  LinearNameTable t;
  t.Upsert(P("[service=camera][room=510]"), Rec(1));
  t.Upsert(P("[service=printer][room=517]"), Rec(2));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.Lookup(P("[service=camera]")).size(), 1u);
  EXPECT_EQ(t.Lookup(P("")).size(), 2u);
  EXPECT_TRUE(t.Remove(Id(1)));
  EXPECT_FALSE(t.Remove(Id(1)));
  EXPECT_TRUE(t.Lookup(P("[service=camera]")).empty());
}

TEST(LinearNameTableTest, UpsertReplacesByAnnouncer) {
  LinearNameTable t;
  t.Upsert(P("[room=510]"), Rec(1));
  t.Upsert(P("[room=520]"), Rec(1));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Lookup(P("[room=510]")).empty());
  EXPECT_EQ(t.Lookup(P("[room=520]")).size(), 1u);
}

TEST(LinearNameTableTest, ExpireSweepsSoftState) {
  LinearNameTable t;
  t.Upsert(P("[a=1]"), Rec(1, Seconds(10)));
  t.Upsert(P("[b=2]"), Rec(2, Seconds(30)));
  EXPECT_EQ(t.ExpireBefore(Seconds(20)), 1u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(LinearNameTableTest, AgreesWithNameTreeOnSchemaCompleteWorkloads) {
  Rng rng(99);
  UniformNameParams shape{2, 3, 2, 3};  // na == ra
  NameTree tree;
  LinearNameTable table;
  std::vector<NameSpecifier> ads;
  for (uint32_t i = 1; i <= 60; ++i) {
    NameSpecifier ad = GenerateUniformName(rng, shape);
    tree.Upsert(ad, Rec(i));
    table.Upsert(ad, Rec(i));
    ads.push_back(std::move(ad));
  }
  for (int q = 0; q < 80; ++q) {
    NameSpecifier query = q % 2 == 0 ? GenerateUniformName(rng, shape)
                                     : DeriveQuery(rng, ads[rng.NextBelow(ads.size())],
                                                   0.8, 0.3);
    auto from_tree = tree.Lookup(query);
    auto from_table = table.Lookup(query);
    std::set<uint32_t> a;
    std::set<uint32_t> b;
    for (const NameRecord* r : from_tree) {
      a.insert(r->announcer.ip);
    }
    for (const NameRecord* r : from_table) {
      b.insert(r->announcer.ip);
    }
    EXPECT_EQ(a, b) << "query " << query.ToString();
  }
}

TEST(DnsBaselineTest, ResolveAllReturnsRrset) {
  DnsBaseline dns;
  dns.AddRecord("printer.lcs.mit.edu", MakeAddress(1));
  dns.AddRecord("printer.lcs.mit.edu", MakeAddress(2));
  auto all = dns.ResolveAll("printer.lcs.mit.edu");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
  EXPECT_FALSE(dns.ResolveAll("nope").ok());
}

TEST(DnsBaselineTest, RoundRobinRotates) {
  DnsBaseline dns;
  dns.AddRecord("p", MakeAddress(1));
  dns.AddRecord("p", MakeAddress(2));
  dns.AddRecord("p", MakeAddress(3));
  std::vector<NodeAddress> picks;
  for (int i = 0; i < 6; ++i) {
    picks.push_back(*dns.ResolveOne("p"));
  }
  EXPECT_EQ(picks[0], MakeAddress(1));
  EXPECT_EQ(picks[1], MakeAddress(2));
  EXPECT_EQ(picks[2], MakeAddress(3));
  EXPECT_EQ(picks[3], MakeAddress(1));
}

TEST(DnsBaselineTest, RoundRobinIgnoresLoad) {
  // The documented gap: DNS spreads requests uniformly no matter how uneven
  // the servers' capacity is; INS anycast follows advertised metrics.
  DnsBaseline dns;
  dns.AddRecord("p", MakeAddress(1));  // pretend this one is overloaded
  dns.AddRecord("p", MakeAddress(2));
  int to_overloaded = 0;
  for (int i = 0; i < 100; ++i) {
    if (*dns.ResolveOne("p") == MakeAddress(1)) {
      ++to_overloaded;
    }
  }
  EXPECT_EQ(to_overloaded, 50);  // exactly half, oblivious to load
}

TEST(DnsBaselineTest, RemoveRecord) {
  DnsBaseline dns;
  dns.AddRecord("p", MakeAddress(1));
  dns.AddRecord("p", MakeAddress(2));
  EXPECT_TRUE(dns.RemoveRecord("p", MakeAddress(1)));
  EXPECT_FALSE(dns.RemoveRecord("p", MakeAddress(1)));
  EXPECT_EQ(dns.record_count("p"), 1u);
  EXPECT_TRUE(dns.RemoveRecord("p", MakeAddress(2)));
  EXPECT_EQ(dns.record_count("p"), 0u);
  EXPECT_FALSE(dns.ResolveOne("p").ok());
}

}  // namespace
}  // namespace ins
