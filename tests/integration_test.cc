// End-to-end integration tests: whole-system convergence, churn, failure
// injection, lossy links, and cross-subsystem scenarios that no unit test
// covers. These are the "robustness" design goal (§1) made executable.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ins/client/api.h"
#include "ins/client/mobility.h"
#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

NameSpecifier P(const std::string& text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

struct AppHost {
  AppHost(SimCluster* cluster, uint32_t host, NodeAddress inr)
      : socket(cluster->net().Bind(MakeAddress(host))) {
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster->dsr_address();
    client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
    client->Start();
  }
  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<InsClient> client;
};

// Every resolver eventually knows every advertised name.
bool Converged(SimCluster& cluster, const std::string& vspace, size_t expected) {
  for (Inr* inr : cluster.inrs()) {
    if (!inr->running()) {
      continue;
    }
    const NameTree* tree = inr->vspaces().Tree(vspace);
    if (tree == nullptr || tree->record_count() != expected) {
      return false;
    }
  }
  return true;
}

// --- Convergence sweeps -----------------------------------------------------

struct ConvergenceParams {
  uint32_t inrs;
  uint32_t services;
  double loss;
};

class ConvergenceTest : public ::testing::TestWithParam<ConvergenceParams> {};

TEST_P(ConvergenceTest, AllResolversLearnAllNames) {
  const auto& p = GetParam();
  ClusterOptions options;
  options.default_link = {Milliseconds(2), 0, p.loss};
  options.seed = p.inrs * 1000 + p.services;
  SimCluster cluster(options);
  for (uint32_t i = 1; i <= p.inrs; ++i) {
    cluster.AddInr(i);
    cluster.loop().RunFor(Seconds(1));
  }
  cluster.StabilizeTopology(Seconds(120));

  std::vector<std::unique_ptr<AppHost>> services;
  std::vector<std::unique_ptr<AdvertisementHandle>> handles;
  for (uint32_t s = 0; s < p.services; ++s) {
    auto inr = cluster.inrs()[s % p.inrs];
    services.push_back(std::make_unique<AppHost>(&cluster, 100 + s, inr->address()));
    handles.push_back(services.back()->client->Advertise(
        P("[service=sensor[id=s" + std::to_string(s) + "]][room=" +
          std::to_string(500 + s % 7) + "]")));
  }

  // Triggered updates should converge the system well within one periodic
  // interval even with loss (periodic refresh recovers lost triggers).
  TimePoint deadline = cluster.loop().Now() + Seconds(120);
  while (cluster.loop().Now() < deadline && !Converged(cluster, "", p.services)) {
    cluster.loop().RunFor(Seconds(1));
  }
  EXPECT_TRUE(Converged(cluster, "", p.services))
      << "after 120 s: " << cluster.inrs()[0]->DebugString();

  // Anycast from a client on the last resolver reaches some service.
  AppHost user(&cluster, 250 - 1, cluster.inrs().back()->address());
  int received = 0;
  for (auto& svc : services) {
    svc->client->OnData([&](const NameSpecifier&, const Bytes&) { ++received; });
  }
  // Datagram delivery is best-effort: under lossy links a single send can
  // vanish, so retry a few times (any one arrival proves the route).
  for (int attempt = 0; attempt < 5 && received == 0; ++attempt) {
    user.client->SendAnycast(P("[service=sensor]"), {1});
    cluster.loop().RunFor(Seconds(2));
  }
  EXPECT_GE(received, 1);
}

INSTANTIATE_TEST_SUITE_P(Topologies, ConvergenceTest,
                         ::testing::Values(ConvergenceParams{2, 6, 0.0},
                                           ConvergenceParams{4, 12, 0.0},
                                           ConvergenceParams{6, 18, 0.0},
                                           ConvergenceParams{8, 24, 0.0},
                                           ConvergenceParams{4, 12, 0.02},
                                           ConvergenceParams{6, 12, 0.05}));

// --- Failure injection --------------------------------------------------------

TEST(IntegrationTest, ResolverCrashHealsAndNamesSurvive) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(1));
  Inr* c = cluster.AddInr(3);
  cluster.StabilizeTopology();

  // Service attached to a; clients everywhere can reach it.
  AppHost svc(&cluster, 100, a->address());
  auto handle = svc.client->Advertise(P("[service=camera][room=510]"));
  cluster.loop().RunFor(Seconds(2));
  ASSERT_EQ(c->vspaces().Tree("")->record_count(), 1u);

  // The middle of the tree crashes (b is the likely hub; crash whichever is
  // c's parent).
  NodeAddress dead = *c->topology().parent();
  Inr* victim = dead == a->address() ? a : b;
  bool victim_had_service = victim == a;
  cluster.CrashInr(victim);

  // Keepalives detect the failure; the tree reconnects; soft state purges
  // what died with the victim.
  cluster.loop().RunFor(Seconds(90));
  for (Inr* inr : cluster.inrs()) {
    EXPECT_TRUE(inr->topology().joined());
  }
  if (victim_had_service) {
    // The service's resolver died. The client's liveness probe notices,
    // fails over to a survivor, and its refresh re-announces — the name must
    // still be reachable (the stale record from the dead path expired by
    // soft state; the refreshed one replaced it).
    EXPECT_GE(svc.client->metrics().Counter("client.failovers"), 1u);
    EXPECT_EQ(c->vspaces().Tree("")->record_count(), 1u);
  } else {
    // The service's resolver survived; after re-peering, its name must
    // still be (or become) known to the others via the periodic updates.
  }
  AppHost user(&cluster, 200, c->address());
  int got = 0;
  svc.client->OnData([&](const NameSpecifier&, const Bytes&) { ++got; });
  user.client->SendAnycast(P("[service=camera]"), {9});
  cluster.loop().RunFor(Seconds(2));
  EXPECT_EQ(got, 1);
}

TEST(IntegrationTest, ServiceReattachesAfterItsResolverDies) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();

  AppHost svc(&cluster, 100, a->address());
  auto handle = svc.client->Advertise(P("[service=camera]"));
  cluster.loop().RunFor(Seconds(1));

  cluster.CrashInr(a);

  // No application involvement needed: the client's attachment liveness
  // probe notices the dead resolver (missed pongs on the refresh tick),
  // fails over to b through the DSR, and the next refresh re-announces the
  // name there before the old record has even finished expiring.
  cluster.loop().RunFor(Seconds(90));
  EXPECT_EQ(svc.client->resolver(), b->address());
  EXPECT_GE(svc.client->metrics().Counter("client.failovers"), 1u);
  EXPECT_EQ(b->vspaces().Tree("")->record_count(), 1u);
}

TEST(IntegrationTest, DsrOutageDoesNotDisturbEstablishedOverlay) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  AppHost svc(&cluster, 100, a->address());
  auto handle = svc.client->Advertise(P("[service=camera]"));
  cluster.loop().RunFor(Seconds(1));

  // The DSR goes dark (blackhole by unbinding is not possible here, so the
  // moral equivalent: resolvers keep running; their registrations expire at
  // the DSR, but peer links and name flow do not depend on it).
  // Establish expected state first.
  ASSERT_EQ(b->vspaces().Tree("")->record_count(), 1u);

  // No DSR interaction is needed for steady-state operation: run a long
  // quiet period and verify data-path health.
  cluster.loop().RunFor(Seconds(120));
  AppHost user(&cluster, 200, b->address());
  int got = 0;
  svc.client->OnData([&](const NameSpecifier&, const Bytes&) { ++got; });
  user.client->SendAnycast(P("[service=camera]"), {1});
  cluster.loop().RunFor(Seconds(1));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(a->topology().NeighborAddresses().size(), 1u);
  EXPECT_EQ(b->topology().NeighborAddresses().size(), 1u);
}

// --- Churn soak ----------------------------------------------------------------

TEST(IntegrationTest, ServiceChurnConvergesToFinalSet) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(1));
  Inr* c = cluster.AddInr(3);
  cluster.StabilizeTopology();
  std::vector<Inr*> inrs = {a, b, c};

  Rng rng(77);
  std::vector<std::unique_ptr<AppHost>> hosts;
  std::map<int, std::unique_ptr<AdvertisementHandle>> live;
  for (int i = 0; i < 12; ++i) {
    hosts.push_back(
        std::make_unique<AppHost>(&cluster, 100 + static_cast<uint32_t>(i),
                                  inrs[static_cast<size_t>(i) % 3]->address()));
  }

  // 2 minutes of churn: advertise, drop, re-advertise at random.
  for (int step = 0; step < 60; ++step) {
    int i = static_cast<int>(rng.NextBelow(12));
    if (live.count(i) != 0 && rng.NextBool(0.4)) {
      live.erase(i);  // handle dropped: name will soft-expire
    } else if (live.count(i) == 0) {
      live[i] = hosts[static_cast<size_t>(i)]->client->Advertise(
          P("[service=sensor[id=s" + std::to_string(i) + "]]"));
    }
    cluster.loop().RunFor(Seconds(2));
  }

  // Let soft state settle: everything alive refreshed, everything dropped
  // expired (45 s lifetime).
  cluster.loop().RunFor(Seconds(90));
  for (Inr* inr : inrs) {
    EXPECT_EQ(inr->vspaces().Tree("")->record_count(), live.size())
        << inr->address().ToString() << ":\n"
        << inr->vspaces().Tree("")->DebugString();
    EXPECT_TRUE(inr->vspaces().Tree("")->CheckInvariants().ok());
  }
}

TEST(IntegrationTest, MobileServiceTrackedAcrossResolvers) {
  // A camera moves between hosts attached to different resolvers while a
  // viewer keeps requesting by intentional name.
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();

  AppHost cam(&cluster, 100, a->address());
  auto handle = cam.client->Advertise(P("[service=camera][room=510]"));
  MobilityManager mobility(&cluster.loop(), cam.client.get(),
                           [&](const NodeAddress& addr) { return cam.socket->Rebind(addr); });
  AppHost viewer(&cluster, 200, b->address());
  cluster.loop().RunFor(Seconds(2));  // the camera's name reaches b

  int got = 0;
  cam.client->OnData([&](const NameSpecifier&, const Bytes&) { ++got; });

  for (int round = 0; round < 4; ++round) {
    viewer.client->SendAnycast(P("[service=camera][room=510]"), {1});
    cluster.loop().RunFor(Seconds(2));
    ASSERT_EQ(got, round + 1) << "round " << round;
    // Move to a fresh address; re-announcement races are covered by the
    // triggered updates.
    ASSERT_TRUE(mobility.Move(MakeAddress(110 + static_cast<uint32_t>(round))).ok());
    cluster.loop().RunFor(Seconds(2));
  }
  EXPECT_EQ(cam.client->metrics().Counter("client.address_changes"), 4u);
}

TEST(IntegrationTest, TwoVspacesOperateIndependentlyUnderLoad) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1, {"east"});
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2, {"west"});
  cluster.StabilizeTopology();

  AppHost east_svc(&cluster, 100, a->address());
  AppHost west_svc(&cluster, 101, b->address());
  auto h1 = east_svc.client->Advertise(P("[vspace=east][service=camera]"));
  auto h2 = west_svc.client->Advertise(P("[vspace=west][service=camera]"));
  cluster.loop().RunFor(Seconds(1));

  // A client attached to a reaches both spaces; traffic for west tunnels.
  AppHost user(&cluster, 200, a->address());
  int east_got = 0;
  int west_got = 0;
  east_svc.client->OnData([&](const NameSpecifier&, const Bytes&) { ++east_got; });
  west_svc.client->OnData([&](const NameSpecifier&, const Bytes&) { ++west_got; });
  for (int i = 0; i < 5; ++i) {
    user.client->SendAnycast(P("[vspace=east][service=camera]"), {1});
    user.client->SendAnycast(P("[vspace=west][service=camera]"), {2});
    cluster.loop().RunFor(Seconds(1));
  }
  EXPECT_EQ(east_got, 5);
  EXPECT_EQ(west_got, 5);
  // East names never leak into west's tree or vice versa.
  EXPECT_EQ(a->vspaces().Tree("east")->record_count(), 1u);
  EXPECT_EQ(a->vspaces().Tree("west"), nullptr);
  EXPECT_EQ(b->vspaces().Tree("west")->record_count(), 1u);
}

}  // namespace
}  // namespace ins
