// Unit tests for the name-specifier wire-text parser (paper Figure 3 syntax).

#include <gtest/gtest.h>

#include "ins/name/parser.h"

namespace ins {
namespace {

TEST(ParserTest, EmptyInputIsEmptySpecifier) {
  auto r = ParseNameSpecifier("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  r = ParseNameSpecifier("   \n\t ");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(ParserTest, SinglePair) {
  auto r = ParseNameSpecifier("[service=camera]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "[service=camera]");
  EXPECT_EQ(r->GetValue({"service"}), "camera");
}

TEST(ParserTest, PaperFigure3RoundTrips) {
  // The example from Figure 3, whitespace and line breaks included.
  const char* kText =
      "[city = washington [building = whitehouse\n"
      "                    [wing = west\n"
      "                     [room = oval-office]]]]\n"
      "[service = camera [data-type = picture\n"
      "                   [format = jpg]]\n"
      "                  [resolution = 640x480]]\n"
      "[accessibility = public]";
  auto r = ParseNameSpecifier(kText);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->PairCount(), 9u);
  EXPECT_EQ(r->GetValue({"city", "building", "wing", "room"}), "oval-office");
  EXPECT_EQ(r->GetValue({"service", "resolution"}), "640x480");
  EXPECT_EQ(r->GetValue({"accessibility"}), "public");

  // Canonical text reparses to an equal specifier.
  auto again = ParseNameSpecifier(r->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *r);
}

TEST(ParserTest, WildcardValue) {
  auto r = ParseNameSpecifier("[service=camera[entity=receiver[id=*]]]");
  ASSERT_TRUE(r.ok());
  const AvPair* service = FindPair(r->roots(), "service");
  const AvPair* entity = FindPair(service->children, "entity");
  const AvPair* id = FindPair(entity->children, "id");
  ASSERT_NE(id, nullptr);
  EXPECT_TRUE(id->value.is_wildcard());
}

TEST(ParserTest, BareAttributeIsWildcard) {
  // The paper's Floorplan sends [service=locator[entity=server]][location].
  auto r = ParseNameSpecifier("[service=locator[entity=server]][location]");
  ASSERT_TRUE(r.ok()) << r.status();
  const AvPair* loc = FindPair(r->roots(), "location");
  ASSERT_NE(loc, nullptr);
  EXPECT_TRUE(loc->value.is_wildcard());
}

TEST(ParserTest, RangeOperators) {
  auto r = ParseNameSpecifier("[service=printer[load<5]]");
  ASSERT_TRUE(r.ok()) << r.status();
  const AvPair* load = FindPair(FindPair(r->roots(), "service")->children, "load");
  ASSERT_NE(load, nullptr);
  EXPECT_EQ(load->value.kind(), Value::Kind::kLess);
  EXPECT_DOUBLE_EQ(load->value.bound(), 5.0);

  r = ParseNameSpecifier("[load<=5][temp>-2][count>=10]");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(FindPair(r->roots(), "load")->value.kind(), Value::Kind::kLessEqual);
  EXPECT_EQ(FindPair(r->roots(), "temp")->value.kind(), Value::Kind::kGreater);
  EXPECT_DOUBLE_EQ(FindPair(r->roots(), "temp")->value.bound(), -2.0);
  EXPECT_EQ(FindPair(r->roots(), "count")->value.kind(), Value::Kind::kGreaterEqual);
}

TEST(ParserTest, RangeRoundTripsThroughCanonicalForm) {
  auto r = ParseNameSpecifier("[load<=5.5]");
  ASSERT_TRUE(r.ok());
  auto again = ParseNameSpecifier(r->ToString());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(*again, *r);
}

TEST(ParserTest, NonNumericRangeBoundRejected) {
  auto r = ParseNameSpecifier("[load<busy]");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, ArbitraryWhitespaceAllowed) {
  auto a = ParseNameSpecifier("[ service  =\tcamera [ id = a ] ]");
  auto b = ParseNameSpecifier("[service=camera[id=a]]");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(ParserTest, MissingCloseBracket) {
  auto r = ParseNameSpecifier("[service=camera");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("']'"), std::string::npos);
}

TEST(ParserTest, MissingOpenBracket) {
  EXPECT_FALSE(ParseNameSpecifier("service=camera]").ok());
}

TEST(ParserTest, EmptyBrackets) {
  EXPECT_FALSE(ParseNameSpecifier("[]").ok());
  EXPECT_FALSE(ParseNameSpecifier("[=x]").ok());
}

TEST(ParserTest, MissingValueAfterEquals) {
  EXPECT_FALSE(ParseNameSpecifier("[service=]").ok());
  EXPECT_FALSE(ParseNameSpecifier("[service=[id=a]]").ok());
}

TEST(ParserTest, DuplicateSiblingAttributeRejected) {
  auto r = ParseNameSpecifier("[service=camera][service=printer]");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("duplicate"), std::string::npos);
  // Duplicates among children are also rejected.
  EXPECT_FALSE(ParseNameSpecifier("[a=1[b=2][b=3]]").ok());
}

TEST(ParserTest, ErrorsReportOffsets) {
  auto r = ParseNameSpecifier("[a=1] junk");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseNameSpecifier("[a=1]]").ok());
  EXPECT_FALSE(ParseNameSpecifier("[a=1] x").ok());
}

TEST(ParserTest, DeepNesting) {
  std::string deep;
  for (int i = 0; i < 50; ++i) {
    deep += "[a" + std::to_string(i) + "=v";
  }
  deep += std::string(50, ']');
  auto r = ParseNameSpecifier(deep);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->Depth(), 50u);
  EXPECT_EQ(r->PairCount(), 50u);
}

TEST(ParserTest, TokensExcludeStructuralCharacters) {
  // '=' inside a would-be token splits it; the remainder fails to parse.
  EXPECT_FALSE(ParseNameSpecifier("[a=b=c]").ok());
  // '*' is only the wildcard token, not a general value character.
  EXPECT_FALSE(ParseNameSpecifier("[a=x*]").ok());
}

}  // namespace
}  // namespace ins
