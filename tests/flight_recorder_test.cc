#include "ins/common/flight_recorder.h"

#include <gtest/gtest.h>

#include "ins/common/clock.h"
#include "ins/common/node_address.h"

namespace ins {
namespace {

TimePoint At(int64_t s) { return TimePoint{} + Seconds(s); }
NodeAddress Addr(uint32_t host) { return NodeAddress{0x0a000000u + host, 5678}; }

TEST(FlightRecorderTest, RecordsOldestFirst) {
  FlightRecorder rec(8);
  rec.set_node(Addr(1));
  rec.Record(At(1), FlightEventKind::kInrStart, FlightSeverity::kInfo);
  rec.Record(At(2), FlightEventKind::kShedOnset, FlightSeverity::kWarning, "overload");
  std::vector<FlightEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kInrStart);
  EXPECT_EQ(events[1].kind, FlightEventKind::kShedOnset);
  EXPECT_EQ(events[1].node, Addr(1));
  EXPECT_STREQ(events[1].detail, "overload");
}

TEST(FlightRecorderTest, RingOverwritesOldest) {
  FlightRecorder rec(4);
  rec.set_node(Addr(1));
  for (int i = 0; i < 10; ++i) {
    rec.Record(At(i), FlightEventKind::kEdgeDown, FlightSeverity::kWarning, "", Addr(2),
               static_cast<uint64_t>(i));
  }
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.overwritten(), 6u);
  std::vector<FlightEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 4u);
  // The newest four survive, oldest first.
  EXPECT_EQ(events.front().value, 6u);
  EXPECT_EQ(events.back().value, 9u);
}

TEST(FlightRecorderTest, KindAndSeverityNames) {
  EXPECT_EQ(FlightEventKindName(FlightEventKind::kShedOnset), "shed-onset");
  EXPECT_EQ(FlightEventKindName(FlightEventKind::kInrCrash), "inr-crash");
  EXPECT_EQ(FlightSeverityName(FlightSeverity::kInfo), "INFO");
  EXPECT_EQ(FlightSeverityName(FlightSeverity::kCritical), "CRIT");
}

TEST(MergeFlightEventsTest, OrdersByTimeWithStableTies) {
  FlightRecorder a(8);
  a.set_node(Addr(1));
  a.Record(At(5), FlightEventKind::kReplicaDead, FlightSeverity::kCritical, "", Addr(2));
  a.Record(At(9), FlightEventKind::kReplicaAlive, FlightSeverity::kInfo, "", Addr(2));
  FlightRecorder b(8);
  b.set_node(Addr(2));
  b.Record(At(3), FlightEventKind::kInrCrash, FlightSeverity::kCritical);
  b.Record(At(5), FlightEventKind::kInrStart, FlightSeverity::kInfo);

  std::vector<FlightEvent> all = a.Events();
  for (const FlightEvent& ev : b.Events()) {
    all.push_back(ev);
  }
  std::vector<FlightEvent> merged = MergeFlightEvents(std::move(all));
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].kind, FlightEventKind::kInrCrash);
  // Same-instant tie at t=5: input order preserved (a's event first).
  EXPECT_EQ(merged[1].kind, FlightEventKind::kReplicaDead);
  EXPECT_EQ(merged[2].kind, FlightEventKind::kInrStart);
  EXPECT_EQ(merged[3].kind, FlightEventKind::kReplicaAlive);
}

TEST(MergeFlightEventsTest, TimelineTextCarriesEveryEvent) {
  FlightRecorder rec(8);
  rec.set_node(Addr(7));
  rec.Record(At(1), FlightEventKind::kPacerBackoff, FlightSeverity::kWarning, "", {}, 1500);
  rec.Record(At(2), FlightEventKind::kPacerRelease, FlightSeverity::kInfo);
  std::string text = FlightTimelineText(MergeFlightEvents(rec.Events()));
  EXPECT_NE(text.find("pacer-backoff"), std::string::npos);
  EXPECT_NE(text.find("pacer-release"), std::string::npos);
  EXPECT_NE(text.find("10.0.0.7"), std::string::npos);
  EXPECT_NE(text.find("WARN"), std::string::npos);
}

TEST(FlightRecorderTest, RecordingNeverAllocatesDetails) {
  // The detail pointer is stored, not copied: static strings only by
  // contract. Verify the stored pointer is exactly what was passed.
  static const char kDetail[] = "static-detail";
  FlightRecorder rec(2);
  rec.Record(At(1), FlightEventKind::kSnapshotFallback, FlightSeverity::kWarning, kDetail);
  EXPECT_EQ(rec.Events()[0].detail, static_cast<const char*>(kDetail));
}

}  // namespace
}  // namespace ins
