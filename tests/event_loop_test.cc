// Tests for the deterministic discrete-event loop.

#include <gtest/gtest.h>

#include <vector>

#include "ins/sim/event_loop.h"

namespace ins::sim {
namespace {

TEST(EventLoopTest, StartsAtZeroAndIdle) {
  EventLoop loop;
  EXPECT_EQ(loop.Now().count(), 0);
  EXPECT_FALSE(loop.Step());
  EXPECT_EQ(loop.RunUntilIdle(), 0u);
}

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(Milliseconds(30), [&] { order.push_back(3); });
  loop.ScheduleAt(Milliseconds(10), [&] { order.push_back(1); });
  loop.ScheduleAt(Milliseconds(20), [&] { order.push_back(2); });
  EXPECT_EQ(loop.RunUntilIdle(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), Milliseconds(30));
}

TEST(EventLoopTest, SameTimeRunsInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAt(Milliseconds(10), [&order, i] { order.push_back(i); });
  }
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, PastSchedulesClampToNow) {
  EventLoop loop;
  loop.ScheduleAt(Milliseconds(50), [] {});
  loop.RunUntilIdle();
  bool ran = false;
  loop.ScheduleAt(Milliseconds(10), [&] { ran = true; });  // in the past
  loop.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.Now(), Milliseconds(50));  // time did not go backwards
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  TaskId id = loop.ScheduleAfter(Milliseconds(5), [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));  // already gone
  loop.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(EventLoopTest, CancelAfterRunReturnsFalse) {
  EventLoop loop;
  TaskId id = loop.ScheduleAfter(Milliseconds(1), [] {});
  loop.RunUntilIdle();
  EXPECT_FALSE(loop.Cancel(id));
}

TEST(EventLoopTest, TasksCanScheduleTasks) {
  EventLoop loop;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) {
      loop.ScheduleAfter(Milliseconds(10), step);
    }
  };
  loop.ScheduleAfter(Milliseconds(10), step);
  loop.RunUntilIdle();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(loop.Now(), Milliseconds(50));
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    loop.ScheduleAfter(Milliseconds(10), tick);
  };
  loop.ScheduleAfter(Milliseconds(10), tick);
  loop.RunUntil(Milliseconds(35));
  EXPECT_EQ(count, 3);  // t=10,20,30
  EXPECT_EQ(loop.Now(), Milliseconds(35));
  loop.RunFor(Milliseconds(10));  // to t=45: tick at 40
  EXPECT_EQ(count, 4);
}

TEST(EventLoopTest, RunUntilAdvancesClockWhenIdle) {
  EventLoop loop;
  loop.RunUntil(Seconds(100));
  EXPECT_EQ(loop.Now(), Seconds(100));
}

TEST(EventLoopTest, RunUntilIdleHonorsEventCap) {
  EventLoop loop;
  std::function<void()> forever = [&] { loop.ScheduleAfter(Milliseconds(1), forever); };
  loop.ScheduleAfter(Milliseconds(1), forever);
  EXPECT_EQ(loop.RunUntilIdle(100), 100u);
  EXPECT_EQ(loop.pending_count(), 1u);
}

}  // namespace
}  // namespace ins::sim
