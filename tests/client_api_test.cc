// Tests for the InsClient public API against live resolvers in simulation.

#include <gtest/gtest.h>

#include <algorithm>

#include "ins/client/api.h"
#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

NameSpecifier P(const char* text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

struct ClientHarness {
  explicit ClientHarness(SimCluster* cluster, uint32_t host, NodeAddress inr = {},
                         std::function<void(ClientConfig&)> tweak = {})
      : socket(cluster->net().Bind(MakeAddress(host))) {
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster->dsr_address();
    if (tweak) {
      tweak(config);
    }
    client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
    client->Start();
  }

  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<InsClient> client;
};

TEST(ClientApiTest, AttachesViaDsrWhenNoInrGiven) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  ClientHarness ch(&cluster, 20);  // no INR configured
  cluster.loop().RunFor(Seconds(1));
  EXPECT_TRUE(ch.client->attached());
  EXPECT_EQ(ch.client->resolver(), inr->address());
}

TEST(ClientApiTest, AdvertiseRegistersName) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  ClientHarness ch(&cluster, 20, inr->address());

  auto handle = ch.client->Advertise(P("[service=camera][room=510]"), {{8080, "http"}});
  cluster.Settle();
  EXPECT_EQ(inr->vspaces().Tree("")->record_count(), 1u);
  auto recs = inr->vspaces().Tree("")->Lookup(P("[room=510]"));
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0]->endpoint.bindings[0].transport, "http");
}

TEST(ClientApiTest, DroppingHandleLetsNameExpire) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  ClientHarness ch(&cluster, 20, inr->address());
  {
    auto handle = ch.client->Advertise(P("[service=camera]"));
    cluster.loop().RunFor(Seconds(5));
    EXPECT_EQ(inr->vspaces().Tree("")->record_count(), 1u);
  }
  // Handle gone: no more refreshes; 45 s lifetime runs out.
  cluster.loop().RunFor(Seconds(60));
  EXPECT_EQ(inr->vspaces().Tree("")->record_count(), 0u);
}

TEST(ClientApiTest, RefreshKeepsNameAliveIndefinitely) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  ClientHarness ch(&cluster, 20, inr->address());
  auto handle = ch.client->Advertise(P("[service=camera]"));
  cluster.loop().RunFor(Seconds(120));  // many lifetimes
  EXPECT_EQ(inr->vspaces().Tree("")->record_count(), 1u);
}

TEST(ClientApiTest, DiscoverReturnsMatchingNames) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  ClientHarness svc(&cluster, 10, inr->address());
  ClientHarness user(&cluster, 20, inr->address());
  auto h1 = svc.client->Advertise(P("[service=camera][room=510]"));
  auto h2 = svc.client->Advertise(P("[service=printer][room=517]"));
  cluster.Settle();

  Status status = InternalError("not called");
  std::vector<InsClient::DiscoveredName> got;
  user.client->Discover(P("[service=camera]"), "", [&](Status s, auto names) {
    status = s;
    got = std::move(names);
  });
  cluster.Settle();
  ASSERT_TRUE(status.ok()) << status;
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].name.GetValue({"room"}), "510");
}

TEST(ClientApiTest, DiscoverTimesOutWithoutResolver) {
  SimCluster cluster;  // note: no INR at all
  // Attached to a ghost; a single attempt pins the per-request deadline.
  ClientHarness user(&cluster, 20, MakeAddress(99),
                     [](ClientConfig& c) { c.max_request_attempts = 1; });
  Status status;
  user.client->Discover(NameSpecifier(), "", [&](Status s, auto) { status = s; });
  cluster.loop().RunFor(Seconds(5));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ClientApiTest, DiscoverRetriesHaveBoundedTotalTime) {
  SimCluster cluster;  // no INR at all
  ClientHarness user(&cluster, 20, MakeAddress(99));
  Status status = InternalError("not called");
  bool called = false;
  user.client->Discover(NameSpecifier(), "", [&](Status s, auto) {
    status = s;
    called = true;
  });
  // Still retrying after the first per-attempt deadline...
  cluster.loop().RunFor(Seconds(3));
  EXPECT_FALSE(called);
  // ...but the default 3 attempts + capped backoffs finish well inside 10 s.
  cluster.loop().RunFor(Seconds(7));
  ASSERT_TRUE(called);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(user.client->metrics().Counter("client.discover_retries"), 1u);
}

TEST(ClientApiTest, FailsOverToNextResolverWhenAttachedInrDies) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();

  ClientHarness svc(&cluster, 10, b->address());
  auto handle = svc.client->Advertise(P("[service=printer]"));
  cluster.Settle();

  ClientHarness user(&cluster, 20);  // attaches via the DSR: first = a
  cluster.loop().RunFor(Seconds(1));
  ASSERT_TRUE(user.client->attached());
  ASSERT_EQ(user.client->resolver(), a->address());

  cluster.CrashInr(a);
  Status status = InternalError("not called");
  std::vector<InsClient::DiscoveredName> got;
  user.client->Discover(P("[service=printer]"), "", [&](Status s, auto names) {
    status = s;
    got = std::move(names);
  });
  // Timeouts accumulate, the client re-attaches to b, and a retry of the SAME
  // request (same id) succeeds there — all transparently to the caller.
  cluster.loop().RunFor(Seconds(15));
  ASSERT_TRUE(status.ok()) << status;
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(user.client->resolver(), b->address());
  EXPECT_GE(user.client->metrics().Counter("client.failovers"), 1u);
}

TEST(ClientApiTest, RecoveredResolverIsEligibleAgainAfterHealthyAttach) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();

  ClientHarness user(&cluster, 20);  // attaches via the DSR: first = a
  cluster.loop().RunFor(Seconds(1));
  ASSERT_EQ(user.client->resolver(), a->address());

  // First failover: a dies, the client excludes it and lands on b; the
  // successful Discover against b is the "healthy" signal that clears the
  // exclusion set.
  cluster.CrashInr(a);
  Status status = InternalError("not called");
  user.client->Discover(P("[service=nothing]"), "",
                        [&](Status s, auto) { status = s; });
  cluster.loop().RunFor(Seconds(15));
  ASSERT_TRUE(status.ok()) << status;
  ASSERT_EQ(user.client->resolver(), b->address());

  // a recovers and re-registers. When b dies in turn, the DSR's soft-state
  // list still names BOTH (b's registration outlives the crash): only the
  // cleared exclusion set makes the recovered a eligible — were exclusions
  // held forever, the hunt would fall back to the dead front entry and hang.
  Inr* a2 = cluster.RestartInr(1);
  ASSERT_NE(a2, nullptr);
  cluster.loop().RunFor(Seconds(10));
  cluster.CrashInr(b);
  status = InternalError("not called");
  user.client->Discover(P("[service=nothing]"), "",
                        [&](Status s, auto) { status = s; });
  cluster.loop().RunFor(Seconds(15));
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(user.client->resolver(), a2->address());
  EXPECT_GE(user.client->metrics().Counter("client.failovers"), 2u);
}

TEST(ClientApiTest, PendingOperationsAreBounded) {
  SimCluster cluster;  // no resolver, so nothing ever attaches
  ClientHarness user(&cluster, 20, NodeAddress{},
                     [](ClientConfig& c) { c.max_pending_ops = 2; });
  EXPECT_TRUE(user.client->SendAnycast(P("[service=x]"), {1}).ok());
  EXPECT_TRUE(user.client->SendAnycast(P("[service=x]"), {2}).ok());
  EXPECT_EQ(user.client->SendAnycast(P("[service=x]"), {3}).code(),
            StatusCode::kUnavailable);
  Status status = InternalError("not called");
  user.client->Discover(NameSpecifier(), "", [&](Status s, auto) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);  // failed immediately
  EXPECT_GE(user.client->metrics().Counter("client.pending_overflow"), 2u);
}

TEST(ClientApiTest, ResolveEarlyReturnsBindings) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  ClientHarness s1(&cluster, 10, inr->address());
  ClientHarness s2(&cluster, 11, inr->address());
  ClientHarness user(&cluster, 20, inr->address());
  auto h1 = s1.client->Advertise(P("[service=printer]"), {{631, "ipp"}}, 4.0);
  auto h2 = s2.client->Advertise(P("[service=printer]"), {{631, "ipp"}}, 2.0);
  cluster.Settle();

  std::vector<InsClient::Binding> got;
  user.client->ResolveEarly(P("[service=printer]"), [&](Status s, auto bindings) {
    ASSERT_TRUE(s.ok());
    got = std::move(bindings);
  });
  cluster.Settle();
  ASSERT_EQ(got.size(), 2u);
  // Client-side min-metric selection.
  auto best = std::min_element(got.begin(), got.end(), [](const auto& a, const auto& b) {
    return a.app_metric < b.app_metric;
  });
  EXPECT_EQ(best->endpoint.address, s2.client->address());
  EXPECT_EQ(best->endpoint.bindings[0].port, 631);
}

TEST(ClientApiTest, AnycastRoundTripBetweenClients) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  ClientHarness svc(&cluster, 10, inr->address());
  ClientHarness user(&cluster, 20, inr->address());

  auto svc_name = P("[service=echo][id=s1]");
  auto user_name = P("[service=echo-user][id=u1]");
  auto h1 = svc.client->Advertise(svc_name);
  auto h2 = user.client->Advertise(user_name);
  cluster.Settle();

  // Echo service: reply to the packet's source name.
  svc.client->OnData([&](const NameSpecifier& source, const Bytes& payload) {
    Bytes reply = payload;
    reply.push_back(0xff);
    svc.client->SendAnycast(source, reply, svc_name);
  });
  std::vector<Bytes> user_got;
  user.client->OnData(
      [&](const NameSpecifier&, const Bytes& payload) { user_got.push_back(payload); });

  user.client->SendAnycast(svc_name, {1, 2}, user_name);
  cluster.Settle();
  ASSERT_EQ(user_got.size(), 1u);
  EXPECT_EQ(user_got[0], (Bytes{1, 2, 0xff}));
}

TEST(ClientApiTest, MulticastReachesGroup) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  ClientHarness r1(&cluster, 10, inr->address());
  ClientHarness r2(&cluster, 11, inr->address());
  ClientHarness tx(&cluster, 20, inr->address());
  auto h1 = r1.client->Advertise(P("[service=camera[entity=receiver[id=r1]]]"));
  auto h2 = r2.client->Advertise(P("[service=camera[entity=receiver[id=r2]]]"));
  cluster.Settle();

  int got1 = 0;
  int got2 = 0;
  r1.client->OnData([&](const NameSpecifier&, const Bytes&) { ++got1; });
  r2.client->OnData([&](const NameSpecifier&, const Bytes&) { ++got2; });

  tx.client->SendMulticast(P("[service=camera[entity=receiver[id=*]]]"), {7});
  cluster.Settle();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 1);
}

TEST(ClientApiTest, SetMetricTakesEffectImmediately) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  ClientHarness p1(&cluster, 10, inr->address());
  ClientHarness p2(&cluster, 11, inr->address());
  ClientHarness user(&cluster, 20, inr->address());
  auto h1 = p1.client->Advertise(P("[service=printer]"), {}, 1.0);
  auto h2 = p2.client->Advertise(P("[service=printer]"), {}, 5.0);
  cluster.Settle();

  int at1 = 0;
  int at2 = 0;
  p1.client->OnData([&](const NameSpecifier&, const Bytes&) { ++at1; });
  p2.client->OnData([&](const NameSpecifier&, const Bytes&) { ++at2; });

  user.client->SendAnycast(P("[service=printer]"), {1});
  cluster.Settle();
  EXPECT_EQ(at1, 1);

  h1->SetMetric(9.0);  // queue filled up
  cluster.Settle();
  user.client->SendAnycast(P("[service=printer]"), {2});
  cluster.Settle();
  EXPECT_EQ(at1, 1);
  EXPECT_EQ(at2, 1);
}

TEST(ClientApiTest, SetNameImplementsServiceMobility) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  ClientHarness svc(&cluster, 10, inr->address());
  auto handle = svc.client->Advertise(P("[service=camera][room=510]"));
  cluster.Settle();
  ASSERT_EQ(inr->vspaces().Tree("")->Lookup(P("[room=510]")).size(), 1u);

  handle->SetName(P("[service=camera][room=520]"));
  cluster.Settle();
  EXPECT_TRUE(inr->vspaces().Tree("")->Lookup(P("[room=510]")).empty());
  EXPECT_EQ(inr->vspaces().Tree("")->Lookup(P("[room=520]")).size(), 1u);
}

TEST(ClientApiTest, OperationsQueueUntilAttached) {
  SimCluster cluster;
  // Start the client before any resolver exists; attach via DSR later.
  ClientHarness user(&cluster, 20);
  auto handle = user.client->Advertise(P("[service=camera]"));
  cluster.loop().RunFor(Seconds(1));
  EXPECT_FALSE(user.client->attached());

  // DsrListRequest was answered with an empty list; the client keeps the
  // queued work. Bring up a resolver and restart attachment.
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  user.client->Start();  // retry attach
  cluster.loop().RunFor(Seconds(1));
  ASSERT_TRUE(user.client->attached());
  cluster.loop().RunFor(Seconds(20));  // a refresh tick announces the ad
  EXPECT_EQ(inr->vspaces().Tree("")->record_count(), 1u);
}

}  // namespace
}  // namespace ins
