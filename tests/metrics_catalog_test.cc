// METRICS.md drift test: the catalogue and the runtime registry must agree.
//
// Direction 1 (runtime -> doc): every metric name a fully-exercised cluster
// registers must appear in METRICS.md — new code cannot add an undocumented
// metric.
// Direction 2 (doc -> runtime): every name METRICS.md documents must be
// registered by the exercised scenario (or sit on the explicit event-only
// exemption list below) — the catalogue cannot describe metrics that no
// longer exist.
//
// The catalogue's table rows name metrics in backticks in the first column;
// `a / b` cells document two names, `class{0,1,2}` expands the brace set, and
// the forwarding.drop.* family documents suffixes in its own table.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "ins/client/api.h"
#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

#ifndef INS_METRICS_MD_PATH
#error "INS_METRICS_MD_PATH must point at METRICS.md"
#endif

namespace ins {
namespace {

NameSpecifier P(const char* text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

// Expands one documented token into metric names: expands a single {x,y,z}
// brace group (`admission.admitted.class{0,1,2}` documents three counters).
void ExpandDocName(const std::string& raw, std::set<std::string>* out) {
  size_t open = raw.find('{');
  size_t close = raw.find('}');
  if (open != std::string::npos && close != std::string::npos && close > open) {
    std::string prefix = raw.substr(0, open);
    std::string suffix = raw.substr(close + 1);
    std::stringstream alts(raw.substr(open + 1, close - open - 1));
    std::string alt;
    while (std::getline(alts, alt, ',')) {
      ExpandDocName(prefix + alt + suffix, out);
    }
    return;
  }
  out->insert(raw);
}

// Every backticked token in METRICS.md that looks like a metric name
// (lowercase dotted path). Suffix-table rows (bare words like `hop_limit`)
// are collected separately under the drop-family prefix.
void ParseCatalogue(std::set<std::string>* documented) {
  std::ifstream md(INS_METRICS_MD_PATH);
  ASSERT_TRUE(md.good()) << "cannot read " << INS_METRICS_MD_PATH;
  std::string line;
  bool in_drop_table = false;
  while (std::getline(md, line)) {
    if (line.rfind("#", 0) == 0) {
      in_drop_table = line.find("forwarding.drop.*") != std::string::npos;
    }
    if (line.rfind("|", 0) != 0) {
      continue;
    }
    // All backticked tokens in the first column — cells document several
    // names as `a` / `b` / `c`. Later columns are prose.
    const size_t column_end = line.find('|', 1);
    const std::string cell =
        column_end == std::string::npos ? line : line.substr(0, column_end);
    for (size_t tick = cell.find('`'); tick != std::string::npos;) {
      size_t end = cell.find('`', tick + 1);
      if (end == std::string::npos) {
        break;
      }
      std::string token = cell.substr(tick + 1, end - tick - 1);
      if (in_drop_table) {
        // Rows document bare drop-reason suffixes under the family prefix.
        documented->insert("forwarding.drop." + token);
      } else if (token.find('.') != std::string::npos) {
        ExpandDocName(token, documented);
      }
      tick = cell.find('`', end + 1);
    }
  }
}

// Documented names whose registration needs an event this deterministic
// scenario cannot cheaply provoke (real-socket error paths, rare protocol
// repairs). Each stays documented; this list only waives the "must register
// here" direction, and shrinking it is always safe.
const std::set<std::string>& EventOnlyExemptions() {
  static const std::set<std::string> kExempt = {
      // Real-socket transports: registered by AttachMetrics on a live UDP
      // socket (realnet tier), absent from the sim-only scenario.
      "transport.send.datagrams", "transport.recv.datagrams", "transport.send.batches",
      "transport.recv.batches", "transport.send.batch_fill", "transport.send.oversize_direct",
      "transport.send.write_blocked", "transport.pacer.delays", "transport.send.gso_batches",
      "transport.recv.gro_splits", "transport.drop.backpressure", "transport.drop.error",
      "transport.drop.oversize", "transport.drop.short_write",
      // Registered only when their event first fires; this healthy three-node
      // scenario never attaches via DSR discovery, multicasts, resolves
      // early, expires names, or loses a neighbor.
      "client.attach_attempts", "client.attached", "client.multicasts_sent",
      "client.resolves_sent", "cluster.reconverge", "discovery.advertisements_forwarded",
      "discovery.names_expired", "discovery.periodic_updates_sent",
      "discovery.routes_purged", "discovery.stale_advertisements",
      "discovery.stale_update_entries", "dsr.expirations", "dsr.vspace_requests",
      "inr.decode_errors", "lb.lookup_rate", "lb.update_entry_rate",
      "replica.digests_sent", "replication.tombstones_applied",
      "topology.join_watchdog_retries", "topology.neighbor_failures",
      "topology.neighbors_removed", "topology.rejoins", "topology.root_watch_probes",
      "vspace.owner_cache_hits",
      // Error/repair paths this healthy-cluster scenario never trips.
      "inr.messages_while_stopped", "inr.unexpected_messages", "inr.bad_discovery_filters",
      "inr.vspaces_accepted", "inr.vspaces_recovered", "discovery.bad_advertisements",
      "discovery.bad_update_entries", "discovery.updates_unrouted_space",
      "dsr.unregisters", "dsr.decode_errors", "dsr.unexpected_messages",
      "client.decode_errors", "client.unexpected_messages", "client.pending_overflow",
      "client.failovers", "client.request_timeouts", "client.address_changes",
      "client.discover_retries", "client.resolve_retries",
      "topology.stale_accepts", "topology.half_open_repairs", "topology.order_lapses",
      "topology.lapse_dissolves", "topology.relaxation_switches", "topology.edge_resets",
      "topology.join_retries",
      "replication.snapshots_sent", "replication.snapshots_applied",
      "replication.snapshot_purged", "replication.serial_regressions",
      "replication.transfer_retries", "replication.transfer_aborts",
      "replication.chunk_gaps", "replication.unexpected_responses",
      "replication.non_neighbor_messages", "replication.requests_unrouted_space",
      "replica.peer_deaths", "replica.dead_reports_sent", "replica.routes_retained",
      "availability.failovers", "availability.dead_replicas",
      "availability.dead_replica_reroutes",
      "dsr.dead_reports", "dsr.dead_reports_ignored", "dsr.suspects_cleared",
      "dsr.candidate_registrations", "dsr.candidate_requests",
      "lb.spawns_requested", "lb.no_candidates", "lb.delegations",
      "lb.terminations_requested",
      "vspace.owner_cache_misses",
      "forwarding.drop.hop_limit", "forwarding.drop.deadline",
      "forwarding.drop.bad_destination", "forwarding.drop.vspace_unresolved",
      "forwarding.drop.shed_class0", "forwarding.drop.shed_class1",
      "forwarding.drop.shed_class2",
      "forwarding.multicast", "forwarding.early_binding", "forwarding.cross_vspace",
      "forwarding.cache_answers", "forwarding.cache_inserts",
      "admission.shed_queue_full", "admission.shed_lag",
      "faults.partitions", "faults.heals", "faults.loss_bursts", "faults.delay_spikes",
      "faults.corruption_storms", "faults.partition_dropped", "faults.burst_dropped",
      "faults.corrupted", "faults.delayed",
      "cluster.replica_converge",
  };
  return kExempt;
}

// Prefixes whose members are documented as a family (per-bucket/per-class
// names, timing mirrors) rather than one row per name.
bool DocumentedAsFamily(const std::string& name) {
  for (const char* prefix :
       {"admission.admitted.class", "admission.processed.class", "forwarding.drop.",
        "latency.stage."}) {
    if (name.rfind(prefix, 0) == 0) {
      return true;
    }
  }
  return false;
}

// Exercise every documented subsystem in one deterministic run and union all
// registries the harness can see.
void CollectRuntimeNames(std::set<std::string>* runtime) {
  ClusterOptions options;
  options.inr_template.netmon.advertise = true;
  options.inr_template.replication.enabled = true;
  options.inr_template.replication.replica_k = 2;
  SimCluster cluster(options);
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(3);
  cluster.StabilizeTopology();

  struct ClientHarness {
    ClientHarness(SimCluster* cluster, uint32_t host, NodeAddress inr)
        : socket(cluster->net().Bind(MakeAddress(host))) {
      ClientConfig config;
      config.inr = inr;
      config.dsr = cluster->dsr_address();
      config.trace_sample_every = 1;
      client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
      client->Start();
    }
    std::unique_ptr<sim::Network::Socket> socket;
    std::unique_ptr<InsClient> client;
  };

  ClientHarness service(&cluster, 30, b->address());
  auto ad = service.client->Advertise(P("[service=camera]"));
  auto ha_ad = service.client->Advertise(P("[vspace=ha][service=hasvc]"));
  cluster.loop().RunFor(Seconds(30));
  ClientHarness user(&cluster, 20, a->address());
  cluster.Settle();
  service.client->OnData([](const NameSpecifier&, const Bytes&) {});
  for (int i = 0; i < 5; ++i) {
    user.client->SendAnycast(P("[service=camera]"), {1}).ok();
    user.client->SendAnycast(P("[service=missing]"), {1}).ok();  // no_match drop
    user.client->Discover(P("[service=*]"), "", [](auto&&...) {});
    cluster.Settle();
  }
  // An incremental metrics poll exercises the time-series counters.
  auto poller = cluster.AddEndpoint(40);
  MetricsDeltaRequest req;
  req.request_id = 1;
  poller->Send(a->address(), Envelope{MessageBody(req)});
  cluster.Settle();
  req.request_id = 2;
  req.since_seq = 1;
  poller->Send(a->address(), Envelope{MessageBody(req)});
  cluster.loop().RunFor(Seconds(60));  // expiry sweeps, keepalives, digests

  auto absorb = [runtime](const MetricsSnapshot& snap) {
    for (const auto& [name, v] : snap.counters) {
      runtime->insert(name);
    }
    for (const auto& [name, v] : snap.gauges) {
      runtime->insert(name);
    }
    for (const auto& [name, v] : snap.histograms) {
      runtime->insert(name);
    }
    for (const auto& [name, v] : snap.timings) {
      runtime->insert(name);
    }
  };
  for (Inr* inr : cluster.inrs()) {
    absorb(inr->metrics().Snapshot());
  }
  absorb(cluster.dsr().metrics().Snapshot());
  absorb(cluster.metrics().Snapshot());
  absorb(cluster.faults().metrics().Snapshot());
  absorb(service.client->metrics().Snapshot());
  absorb(user.client->metrics().Snapshot());
}

TEST(MetricsCatalogTest, RuntimeAndCatalogueAgree) {
  std::set<std::string> documented;
  ParseCatalogue(&documented);
  ASSERT_GT(documented.size(), 100u) << "catalogue parse collapsed";

  std::set<std::string> runtime;
  CollectRuntimeNames(&runtime);
  ASSERT_GT(runtime.size(), 50u) << "scenario registered suspiciously few metrics";

  // Direction 1: everything the runtime registers is documented.
  for (const std::string& name : runtime) {
    EXPECT_TRUE(documented.count(name) || DocumentedAsFamily(name))
        << "runtime metric `" << name << "` is not documented in METRICS.md";
  }

  // Direction 2: everything documented is real — registered by this scenario
  // or explicitly exempted as event-only.
  for (const std::string& name : documented) {
    if (EventOnlyExemptions().count(name)) {
      continue;
    }
    EXPECT_TRUE(runtime.count(name))
        << "METRICS.md documents `" << name
        << "` but the exercised cluster never registered it";
  }

  // The exemption list may not rot either: every entry must still be
  // documented (delete entries when their metric leaves the catalogue).
  for (const std::string& name : EventOnlyExemptions()) {
    EXPECT_TRUE(documented.count(name))
        << "exemption `" << name << "` no longer exists in METRICS.md";
  }
}

}  // namespace
}  // namespace ins
