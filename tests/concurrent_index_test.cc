// Concurrency test for the posting-list index under left-right flips (runs
// under TSan in CI, alongside concurrent_lookup_test.cc which covers the
// tree-walk path with wildcard queries).
//
// Readers here issue LITERAL conjunctive queries — the ones the posting
// index serves by intersection — while writers continuously upsert, rename
// across hash shards, remove, and sweep. Every record field derives from
// (announcer, version), so a posting list referencing a retired or torn
// record is caught by the coherence check; per-reader version monotonicity
// pins that the index never serves a side older than one already observed.
// After quiescence the index must have actually served lookups (the test is
// not vacuous), both left-right sides must verify against their trees, and
// the read-side index footprint must be bounded after churn — retired
// posting arrays are reclaimed with their side, not leaked.

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ins/common/clock.h"
#include "ins/common/node_address.h"
#include "ins/common/rng.h"
#include "ins/name/name_specifier.h"
#include "ins/nametree/name_record.h"
#include "ins/nametree/posting_index.h"
#include "ins/nametree/sharded_name_tree.h"

namespace ins {
namespace {

constexpr size_t kShards = 4;
constexpr size_t kWriters = 2;
constexpr size_t kReaders = 2;
constexpr uint32_t kAnnouncersPerWriter = 8;
constexpr uint64_t kFinalVersion = 60;
constexpr size_t kFamilies = 8;

AnnouncerId IdFor(size_t writer, uint32_t slot) {
  return AnnouncerId{0x0b000000u + static_cast<uint32_t>(writer) + 1, 2000,
                     static_cast<uint32_t>(writer) * 1000 + slot};
}

// The first attribute rotates with the version: writers continuously move
// announcers between hash shards, forcing graft/ungraft churn (and posting
// insert/remove churn) on every side.
NameSpecifier NameFor(const AnnouncerId& id, uint64_t version) {
  NameSpecifier n;
  n.AddPath({{"svc_" + std::to_string((id.discriminator + version) % kFamilies), "on"},
             {"unit", std::to_string(id.discriminator)}});
  return n;
}

NameRecord RecordFor(const AnnouncerId& id, uint64_t version) {
  NameRecord rec;
  rec.announcer = id;
  rec.version = version;
  rec.expires = Seconds(100000 + version);
  rec.app_metric = static_cast<double>(version * 1000 + id.discriminator);
  rec.endpoint.address = NodeAddress{id.ip, static_cast<uint16_t>(7000 + version % 1000)};
  return rec;
}

void ExpectCoherent(const NameRecord& rec) {
  const NameRecord want = RecordFor(rec.announcer, rec.version);
  EXPECT_EQ(rec.expires, want.expires) << rec.announcer.ToString();
  EXPECT_EQ(rec.app_metric, want.app_metric) << rec.announcer.ToString();
  EXPECT_TRUE(rec.endpoint.address == want.endpoint.address) << rec.announcer.ToString();
}

TEST(ConcurrentIndexTest, LiteralQueriesStayCoherentAcrossFlips) {
  ShardedNameTree::Options opts;
  opts.fallback_shards = kShards;
  opts.concurrent = true;
  ShardedNameTree store(opts);
  store.AddSpace("");

  std::atomic<bool> done{false};
  std::atomic<uint64_t> lookups_served{0};

  auto writer = [&](size_t w) {
    for (uint64_t v = 1; v <= kFinalVersion; ++v) {
      for (uint32_t slot = 0; slot < kAnnouncersPerWriter; ++slot) {
        const AnnouncerId id = IdFor(w, slot);
        if (v % 7 == 0 && slot == v % kAnnouncersPerWriter) {
          store.Remove("", id);  // re-announced at the next version
          continue;
        }
        auto out = store.Upsert("", NameFor(id, v), RecordFor(id, v));
        EXPECT_NE(out.kind, NameTree::UpsertOutcome::kIgnored);
      }
      if (v % 5 == 0) {
        store.ExpireBefore(Seconds(1));  // no-op sweep, still flips
      }
    }
  };

  auto reader = [&](size_t r) {
    Rng rng(200 + r);
    std::map<AnnouncerId, uint64_t> last_seen;
    uint64_t served = 0;
    while (!done.load(std::memory_order_acquire)) {
      // Literal conjunctive query: the posting-index path. A cross-shard
      // rename publishes as two snapshots, so only observed records are
      // constrained — never absence.
      NameSpecifier query;
      if (rng.NextBool(0.5)) {
        query.AddPath({{"svc_" + std::to_string(rng.NextBelow(kFamilies)), "on"}});
      } else {
        query.AddPath(
            {{"svc_" + std::to_string(rng.NextBelow(kFamilies)), "on"},
             {"unit", std::to_string(rng.NextBelow(kWriters * 1000 + 100))}});
      }
      for (const NameRecord& rec : store.Lookup("", query)) {
        ExpectCoherent(rec);
        uint64_t& last = last_seen[rec.announcer];
        EXPECT_GE(rec.version, last) << "index lookup observed an old epoch";
        last = rec.version;
        ++served;
      }
    }
    lookups_served.fetch_add(served, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back(reader, r);
  }
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back(writer, w);
  }
  for (size_t w = 0; w < kWriters; ++w) {
    threads[kReaders + w].join();
  }
  done.store(true, std::memory_order_release);
  for (size_t r = 0; r < kReaders; ++r) {
    threads[r].join();
  }

  // Quiesced: every announcer at its final version, coherent, and both
  // left-right sides' indexes verify against their trees (CheckInvariants
  // rebuilds the expected postings from tree structure on each side).
  EXPECT_EQ(store.RecordCount(""), kWriters * kAnnouncersPerWriter);
  for (size_t w = 0; w < kWriters; ++w) {
    for (uint32_t slot = 0; slot < kAnnouncersPerWriter; ++slot) {
      const AnnouncerId id = IdFor(w, slot);
      auto rec = store.Find("", id);
      ASSERT_TRUE(rec.has_value()) << id.ToString();
      EXPECT_EQ(rec->version, kFinalVersion);
      ExpectCoherent(*rec);
    }
  }
  EXPECT_TRUE(store.CheckInvariants().ok());

  // The run genuinely exercised the index path concurrently.
  EXPECT_GT(lookups_served.load(), 0u);
  const PostingIndexStats stats = store.IndexStatsTotal();
  EXPECT_GT(stats.TotalLookups(), 0u);
  EXPECT_GT(stats.index_lookups + stats.empty_lookups, 0u);

  // Footprint after churn: ~16 live records spread over <= 8 shard trees.
  // Retired posting arrays from the ~2000 renames must have been reclaimed
  // with their sides — a leak would dwarf this bound.
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_LT(stats.bytes, size_t{4} << 20);
  EXPECT_LE(stats.posting_keys, size_t{kWriters} * kAnnouncersPerWriter * 2 * kShards);
}

// Heavy rename churn on ONE announcer: the posting universe (slot vector)
// must stay compact via free-list reuse, and every flip must leave both
// sides' indexes verifying — the replay rebuilds them identically.
TEST(ConcurrentIndexTest, RenameChurnKeepsSlotUniverseCompact) {
  ShardedNameTree::Options opts;
  opts.fallback_shards = kShards;
  opts.concurrent = true;
  ShardedNameTree store(opts);
  store.AddSpace("");

  std::atomic<bool> done{false};
  std::thread reader([&] {
    Rng rng(11);
    while (!done.load(std::memory_order_acquire)) {
      NameSpecifier query;
      query.AddPath({{"svc_" + std::to_string(rng.NextBelow(kFamilies)), "on"}});
      for (const NameRecord& rec : store.Lookup("", query)) {
        ExpectCoherent(rec);
      }
    }
  });

  const AnnouncerId id = IdFor(0, 0);
  for (uint64_t v = 1; v <= 400; ++v) {
    store.Upsert("", NameFor(id, v), RecordFor(id, v));
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(store.RecordCount(""), 1u);
  EXPECT_TRUE(store.CheckInvariants().ok());
  // One live record: 400 renames may not have grown the index past a few
  // posting keys (free-list slot reuse, erase-at-zero key pruning).
  const PostingIndexStats stats = store.IndexStatsTotal();
  EXPECT_LE(stats.posting_keys, 4u);
  EXPECT_LT(stats.bytes, size_t{64} << 10);
}

}  // namespace
}  // namespace ins
