// Tests for the name-discovery protocol: advertisement handling, soft-state
// expiry, periodic + triggered dissemination across the overlay, route
// metric accumulation, and mobility.

#include <gtest/gtest.h>

#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

Advertisement MakeAd(const std::string& name_text, const NodeAddress& endpoint,
                     uint32_t discriminator = 0, double metric = 0.0,
                     uint64_t version = 1) {
  Advertisement ad;
  ad.name_text = name_text;
  ad.announcer = AnnouncerId{endpoint.ip, 1000, discriminator};
  ad.endpoint.address = endpoint;
  ad.endpoint.bindings = {{8080, "http"}};
  ad.app_metric = metric;
  ad.lifetime_s = 45;
  ad.version = version;
  return ad;
}

TEST(DiscoveryTest, AdvertisementGraftsIntoTree) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);

  svc->Send(inr->address(),
            Envelope{MessageBody(MakeAd("[service=camera][room=510]", svc->address()))});
  cluster.Settle();

  const NameTree* tree = inr->vspaces().Tree("");
  ASSERT_EQ(tree->record_count(), 1u);
  auto recs = tree->Lookup(*ParseNameSpecifier("[room=510]"));
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0]->endpoint.address, svc->address());
  EXPECT_TRUE(recs[0]->route.IsLocal());
}

TEST(DiscoveryTest, MalformedAdvertisementCounted) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  svc->Send(inr->address(), Envelope{MessageBody(MakeAd("[[[", svc->address()))});
  cluster.Settle();
  EXPECT_EQ(inr->metrics().Counter("discovery.bad_advertisements"), 1u);
  EXPECT_EQ(inr->vspaces().Tree("")->record_count(), 0u);
}

TEST(DiscoveryTest, SoftStateExpiresWithoutRefresh) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  Advertisement ad = MakeAd("[service=camera]", svc->address());
  ad.lifetime_s = 10;
  svc->Send(inr->address(), Envelope{MessageBody(ad)});
  cluster.loop().RunFor(Seconds(5));
  EXPECT_EQ(inr->vspaces().Tree("")->record_count(), 1u);
  cluster.loop().RunFor(Seconds(15));
  EXPECT_EQ(inr->vspaces().Tree("")->record_count(), 0u);
  EXPECT_EQ(inr->metrics().Counter("discovery.names_expired"), 1u);
}

TEST(DiscoveryTest, PeriodicRefreshKeepsNameAlive) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  Advertisement ad = MakeAd("[service=camera]", svc->address());
  ad.lifetime_s = 10;
  for (int i = 0; i < 8; ++i) {
    ad.version++;
    svc->Send(inr->address(), Envelope{MessageBody(ad)});
    cluster.loop().RunFor(Seconds(5));
  }
  EXPECT_EQ(inr->vspaces().Tree("")->record_count(), 1u);
}

TEST(DiscoveryTest, TriggeredUpdatePropagatesNewNameQuickly) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);

  TimePoint advertised_at = cluster.loop().Now();
  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", svc->address()))});
  // Well under one periodic interval (15 s): triggered updates do the work.
  cluster.loop().RunFor(Seconds(1));
  EXPECT_EQ(b->vspaces().Tree("")->record_count(), 1u);
  EXPECT_LT(cluster.loop().Now() - advertised_at, Seconds(2));

  // The remote record routes back through a.
  auto recs = b->vspaces().Tree("")->Lookup(*ParseNameSpecifier("[service=camera]"));
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_FALSE(recs[0]->route.IsLocal());
  EXPECT_EQ(recs[0]->route.next_hop_inr, a->address());
  EXPECT_GT(recs[0]->route.overlay_metric, 0.0);
}

TEST(DiscoveryTest, PeriodicUpdatesAloneConvergeWhenTriggeredDisabled) {
  ClusterOptions options;
  options.inr_template.discovery.triggered_updates = false;
  SimCluster cluster(options);
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);

  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", svc->address()))});
  cluster.loop().RunFor(Seconds(2));
  EXPECT_EQ(b->vspaces().Tree("")->record_count(), 0u);  // not yet
  cluster.loop().RunFor(Seconds(20));                    // one periodic interval
  EXPECT_EQ(b->vspaces().Tree("")->record_count(), 1u);
}

TEST(DiscoveryTest, RemoteRecordsExpireWhenSourceInrDies) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  // Keep the service refreshing at a so only b's copy can die.
  Advertisement ad = MakeAd("[service=camera]", svc->address());
  svc->Send(a->address(), Envelope{MessageBody(ad)});
  cluster.loop().RunFor(Seconds(2));
  ASSERT_EQ(b->vspaces().Tree("")->record_count(), 1u);

  cluster.RemoveInr(a);
  // No more refreshes reach b; the record times out (45 s lifetime).
  cluster.loop().RunFor(Seconds(60));
  EXPECT_EQ(b->vspaces().Tree("")->record_count(), 0u);
}

TEST(DiscoveryTest, MetricAccumulatesAcrossHops) {
  SimCluster cluster;
  // Chain: a - b - c with 10 ms links (force join order adjacency by
  // making non-adjacent links slow).
  cluster.net().SetDefaultLink({Milliseconds(10), 0, 0});
  cluster.net().SetLink(MakeAddress(1).ip, MakeAddress(3).ip, {Milliseconds(200), 0, 0});
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(1));
  Inr* c = cluster.AddInr(3);
  cluster.StabilizeTopology();
  ASSERT_EQ(c->topology().parent(), b->address());

  auto svc = cluster.AddEndpoint(10);
  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", svc->address()))});
  cluster.loop().RunFor(Seconds(2));

  auto query = *ParseNameSpecifier("[service=camera]");
  auto at_b = b->vspaces().Tree("")->Lookup(query);
  auto at_c = c->vspaces().Tree("")->Lookup(query);
  ASSERT_EQ(at_b.size(), 1u);
  ASSERT_EQ(at_c.size(), 1u);
  // c's route metric includes one more RTT-based hop than b's.
  EXPECT_GT(at_c[0]->route.overlay_metric, at_b[0]->route.overlay_metric);
  EXPECT_EQ(at_c[0]->route.next_hop_inr, b->address());
}

TEST(DiscoveryTest, ServiceMobilityReplacesNameEverywhere) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);

  svc->Send(a->address(),
            Envelope{MessageBody(MakeAd("[service=camera][room=510]", svc->address(), 0, 0, 1))});
  cluster.loop().RunFor(Seconds(1));
  ASSERT_EQ(b->vspaces().Tree("")->Lookup(*ParseNameSpecifier("[room=510]")).size(), 1u);

  // The camera moves to room 520 (same announcer, higher version).
  svc->Send(a->address(),
            Envelope{MessageBody(MakeAd("[service=camera][room=520]", svc->address(), 0, 0, 2))});
  cluster.loop().RunFor(Seconds(1));
  EXPECT_TRUE(b->vspaces().Tree("")->Lookup(*ParseNameSpecifier("[room=510]")).empty());
  EXPECT_EQ(b->vspaces().Tree("")->Lookup(*ParseNameSpecifier("[room=520]")).size(), 1u);
  EXPECT_EQ(b->vspaces().Tree("")->record_count(), 1u);
}

TEST(DiscoveryTest, NodeMobilityUpdatesEndpointAddress) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", svc->address(), 0, 0, 1))});
  cluster.Settle();

  // The node's address changes; it re-announces from the new location.
  Advertisement moved = MakeAd("[service=camera]", MakeAddress(99), 0, 0, 2);
  moved.announcer = AnnouncerId{svc->address().ip, 1000, 0};  // same announcer
  svc->Send(a->address(), Envelope{MessageBody(moved)});
  cluster.Settle();

  auto recs = a->vspaces().Tree("")->Lookup(*ParseNameSpecifier("[service=camera]"));
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0]->endpoint.address, MakeAddress(99));
}

TEST(DiscoveryTest, IdenticalNamesFromTwoAnnouncersPropagate) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto s1 = cluster.AddEndpoint(10);
  auto s2 = cluster.AddEndpoint(11);
  s1->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", s1->address()))});
  s2->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", s2->address()))});
  cluster.loop().RunFor(Seconds(1));
  EXPECT_EQ(b->vspaces().Tree("")->record_count(), 2u);
}

TEST(DiscoveryTest, NewNeighborReceivesFullState) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  for (int i = 0; i < 5; ++i) {
    svc->Send(a->address(),
              Envelope{MessageBody(MakeAd("[service=camera][id=c" + std::to_string(i) + "]",
                                          svc->address(), static_cast<uint32_t>(i)))});
  }
  cluster.Settle();

  // b joins later and should learn everything promptly via the
  // neighbor-up full-state push, not after a periodic interval.
  Inr* b = cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(2));
  EXPECT_EQ(b->vspaces().Tree("")->record_count(), 5u);
}

TEST(DiscoveryTest, GetNameExtractionFeedsUpdates) {
  // The names b learns are byte-identical to those advertised at a,
  // proving GET-NAME reconstructs specifiers faithfully on the wire path.
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);

  const std::string name =
      "[accessibility=public]"
      "[city=washington[building=whitehouse[wing=west[room=oval-office]]]]"
      "[service=camera[data-type=picture[format=jpg]][resolution=640x480]]";
  svc->Send(a->address(), Envelope{MessageBody(MakeAd(name, svc->address()))});
  cluster.loop().RunFor(Seconds(1));

  const NameTree* tree = b->vspaces().Tree("");
  ASSERT_EQ(tree->record_count(), 1u);
  EXPECT_EQ(tree->ExtractName(tree->AllRecords()[0]).ToString(), name);
}

}  // namespace
}  // namespace ins
