// Tests for the Figure-10 data packet codec.

#include <gtest/gtest.h>

#include "ins/wire/packet.h"

namespace ins {
namespace {

Packet SamplePacket() {
  Packet p;
  p.early_binding = false;
  p.deliver_all = true;
  p.hop_limit = 7;
  p.cache_lifetime_s = 30;
  p.deadline_budget_ms = 250;
  p.source_name = "[service=camera[entity=receiver[id=r]]][room=510]";
  p.destination_name = "[service=camera[entity=transmitter]][room=510]";
  p.payload = {1, 2, 3, 4, 5};
  return p;
}

TEST(PacketTest, RoundTrip) {
  Packet p = SamplePacket();
  Bytes encoded = EncodePacket(p);
  EXPECT_EQ(encoded.size(), p.EncodedSize());

  auto decoded = DecodePacket(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->early_binding, p.early_binding);
  EXPECT_EQ(decoded->deliver_all, p.deliver_all);
  EXPECT_EQ(decoded->answer_from_cache, false);
  EXPECT_EQ(decoded->hop_limit, p.hop_limit);
  EXPECT_EQ(decoded->cache_lifetime_s, p.cache_lifetime_s);
  EXPECT_EQ(decoded->deadline_budget_ms, p.deadline_budget_ms);
  EXPECT_EQ(decoded->source_name, p.source_name);
  EXPECT_EQ(decoded->destination_name, p.destination_name);
  EXPECT_EQ(decoded->payload, p.payload);
}

TEST(PacketTest, FlagsEncodeIndependently) {
  for (int mask = 0; mask < 8; ++mask) {
    Packet p;
    p.early_binding = (mask & 1) != 0;
    p.deliver_all = (mask & 2) != 0;
    p.answer_from_cache = (mask & 4) != 0;
    p.destination_name = "[a=1]";
    auto d = DecodePacket(EncodePacket(p));
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->early_binding, p.early_binding);
    EXPECT_EQ(d->deliver_all, p.deliver_all);
    EXPECT_EQ(d->answer_from_cache, p.answer_from_cache);
  }
}

TEST(PacketTest, EmptyNamesAndPayload) {
  Packet p;
  auto d = DecodePacket(EncodePacket(p));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->source_name, "");
  EXPECT_EQ(d->destination_name, "");
  EXPECT_TRUE(d->payload.empty());
}

TEST(PacketTest, LocatePayloadSkipsNames) {
  Packet p = SamplePacket();
  Bytes encoded = EncodePacket(p);
  auto loc = LocatePayload(encoded);
  ASSERT_TRUE(loc.ok());
  auto [off, len] = *loc;
  EXPECT_EQ(len, p.payload.size());
  EXPECT_EQ(Bytes(encoded.begin() + static_cast<long>(off),
                  encoded.begin() + static_cast<long>(off + len)),
            p.payload);
}

TEST(PacketTest, RejectsTruncatedHeader) {
  Bytes tiny = {1, 2, 3};
  EXPECT_FALSE(DecodePacket(tiny).ok());
}

TEST(PacketTest, RejectsWrongVersion) {
  Packet p = SamplePacket();
  Bytes encoded = EncodePacket(p);
  encoded[0] = 99;
  EXPECT_FALSE(DecodePacket(encoded).ok());
}

TEST(PacketTest, RejectsCorruptPointers) {
  Packet p = SamplePacket();
  Bytes encoded = EncodePacket(p);
  // Corrupt the destination-name pointer so offsets go backwards.
  encoded[14] = 0;
  encoded[15] = 1;
  EXPECT_FALSE(DecodePacket(encoded).ok());
}

TEST(PacketTest, RejectsTruncatedBody) {
  Packet p = SamplePacket();
  Bytes encoded = EncodePacket(p);
  encoded.resize(encoded.size() - 2);  // total-length field now disagrees
  EXPECT_FALSE(DecodePacket(encoded).ok());
}

TEST(PacketTest, HeaderIsTwentyBytes) {
  Packet p;
  EXPECT_EQ(EncodePacket(p).size(), kPacketHeaderSize);
}

TEST(PacketTest, NoDeadlineIsNeverExhausted) {
  Packet p;  // deadline_budget_ms defaults to 0: no deadline
  EXPECT_TRUE(ConsumeDeadlineBudget(p, 0));
  EXPECT_TRUE(ConsumeDeadlineBudget(p, 100000));
  EXPECT_EQ(p.deadline_budget_ms, 0);
}

TEST(PacketTest, DeadlineBudgetDecrements) {
  Packet p;
  p.deadline_budget_ms = 100;
  EXPECT_TRUE(ConsumeDeadlineBudget(p, 40));
  EXPECT_EQ(p.deadline_budget_ms, 60);
  // Zero elapsed still charges the 1ms floor so budgets strictly decrease.
  EXPECT_TRUE(ConsumeDeadlineBudget(p, 0));
  EXPECT_EQ(p.deadline_budget_ms, 59);
}

TEST(PacketTest, DeadlineBudgetExhausts) {
  Packet p;
  p.deadline_budget_ms = 10;
  EXPECT_FALSE(ConsumeDeadlineBudget(p, 10));
  EXPECT_EQ(p.deadline_budget_ms, 0);
  // A fresh 1ms budget dies on any charge (charge >= budget).
  p.deadline_budget_ms = 1;
  EXPECT_FALSE(ConsumeDeadlineBudget(p, 0));
  EXPECT_EQ(p.deadline_budget_ms, 0);
}

}  // namespace
}  // namespace ins
