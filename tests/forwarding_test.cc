// Tests for the forwarding agent: early binding, intentional anycast and
// multicast, hop limits, cross-vspace tunneling, and the caching extension.

#include <gtest/gtest.h>

#include "ins/harness/cluster.h"

namespace ins {
namespace {

Advertisement MakeAd(const std::string& name_text, const NodeAddress& endpoint,
                     uint32_t discriminator = 0, double metric = 0.0,
                     uint64_t version = 1) {
  Advertisement ad;
  ad.name_text = name_text;
  ad.announcer = AnnouncerId{endpoint.ip, 1000, discriminator};
  ad.endpoint.address = endpoint;
  ad.endpoint.bindings = {{8080, "http"}};
  ad.app_metric = metric;
  ad.lifetime_s = 45;
  ad.version = version;
  return ad;
}

Packet MakeData(const std::string& dst, Bytes payload, bool all = false) {
  Packet p;
  p.destination_name = dst;
  p.deliver_all = all;
  p.payload = std::move(payload);
  return p;
}

TEST(ForwardingTest, AnycastDeliversToLocalService) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  auto client = cluster.AddEndpoint(20);

  svc->Send(inr->address(),
            Envelope{MessageBody(MakeAd("[service=printer][room=517]", svc->address()))});
  cluster.Settle();

  client->Send(inr->address(),
               Envelope{MessageBody(MakeData("[service=printer][room=517]", {1, 2, 3}))});
  cluster.Settle();

  auto got = svc->ReceivedOf<Packet>();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, (Bytes{1, 2, 3}));
  EXPECT_EQ(got[0].destination_name, "[service=printer][room=517]");
}

TEST(ForwardingTest, AnycastPicksLeastMetric) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto busy = cluster.AddEndpoint(10);
  auto idle = cluster.AddEndpoint(11);
  auto client = cluster.AddEndpoint(20);

  busy->Send(inr->address(),
             Envelope{MessageBody(MakeAd("[service=printer]", busy->address(), 0, 9.0))});
  idle->Send(inr->address(),
             Envelope{MessageBody(MakeAd("[service=printer]", idle->address(), 0, 1.0))});
  cluster.Settle();

  client->Send(inr->address(), Envelope{MessageBody(MakeData("[service=printer]", {7}))});
  cluster.Settle();

  EXPECT_EQ(idle->ReceivedOf<Packet>().size(), 1u);
  EXPECT_TRUE(busy->ReceivedOf<Packet>().empty());
}

TEST(ForwardingTest, AnycastFollowsMetricUpdates) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto p1 = cluster.AddEndpoint(10);
  auto p2 = cluster.AddEndpoint(11);
  auto client = cluster.AddEndpoint(20);

  p1->Send(inr->address(),
           Envelope{MessageBody(MakeAd("[service=printer]", p1->address(), 0, 1.0, 1))});
  p2->Send(inr->address(),
           Envelope{MessageBody(MakeAd("[service=printer]", p2->address(), 0, 5.0, 1))});
  cluster.Settle();
  client->Send(inr->address(), Envelope{MessageBody(MakeData("[service=printer]", {1}))});
  cluster.Settle();
  EXPECT_EQ(p1->ReceivedOf<Packet>().size(), 1u);

  // p1's queue fills up; it advertises a worse metric. Late binding means
  // the very next message goes to p2 — no client involvement.
  p1->Send(inr->address(),
           Envelope{MessageBody(MakeAd("[service=printer]", p1->address(), 0, 8.0, 2))});
  cluster.Settle();
  client->Send(inr->address(), Envelope{MessageBody(MakeData("[service=printer]", {2}))});
  cluster.Settle();
  EXPECT_EQ(p1->ReceivedOf<Packet>().size(), 1u);
  EXPECT_EQ(p2->ReceivedOf<Packet>().size(), 1u);
}

TEST(ForwardingTest, AnycastAcrossOverlay) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  auto client = cluster.AddEndpoint(20);

  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", svc->address()))});
  cluster.loop().RunFor(Seconds(1));

  // The client attaches to b; the service lives behind a.
  client->Send(b->address(), Envelope{MessageBody(MakeData("[service=camera]", {9}))});
  cluster.Settle();
  ASSERT_EQ(svc->ReceivedOf<Packet>().size(), 1u);
  EXPECT_EQ(b->metrics().Counter("forwarding.tunneled"), 1u);
}

TEST(ForwardingTest, MulticastReachesAllMatches) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto r1 = cluster.AddEndpoint(10);
  auto r2 = cluster.AddEndpoint(11);
  auto r3 = cluster.AddEndpoint(12);
  auto tx = cluster.AddEndpoint(20);

  // Two receivers at a, one at b, plus a non-matching service.
  r1->Send(a->address(), Envelope{MessageBody(
      MakeAd("[service=camera[entity=receiver[id=r1]]][room=510]", r1->address()))});
  r2->Send(a->address(), Envelope{MessageBody(
      MakeAd("[service=camera[entity=receiver[id=r2]]][room=510]", r2->address()))});
  r3->Send(b->address(), Envelope{MessageBody(
      MakeAd("[service=camera[entity=receiver[id=r3]]][room=510]", r3->address()))});
  cluster.loop().RunFor(Seconds(1));

  // The paper's Camera example: all subscribers via [id=*], D=all.
  tx->Send(a->address(),
           Envelope{MessageBody(MakeData(
               "[service=camera[entity=receiver[id=*]]][room=510]", {42}, /*all=*/true))});
  cluster.Settle();

  EXPECT_EQ(r1->ReceivedOf<Packet>().size(), 1u);
  EXPECT_EQ(r2->ReceivedOf<Packet>().size(), 1u);
  EXPECT_EQ(r3->ReceivedOf<Packet>().size(), 1u);
}

TEST(ForwardingTest, MulticastSendsOneCopyPerNextHop) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto r1 = cluster.AddEndpoint(10);
  auto r2 = cluster.AddEndpoint(11);
  auto tx = cluster.AddEndpoint(20);

  // Both receivers behind b; a must forward exactly one copy to b.
  r1->Send(b->address(), Envelope{MessageBody(MakeAd("[g=x[id=1]]", r1->address()))});
  r2->Send(b->address(), Envelope{MessageBody(MakeAd("[g=x[id=2]]", r2->address()))});
  cluster.loop().RunFor(Seconds(1));

  tx->Send(a->address(), Envelope{MessageBody(MakeData("[g=x[id=*]]", {1}, true))});
  cluster.Settle();
  EXPECT_EQ(a->metrics().Counter("forwarding.tunneled"), 1u);
  EXPECT_EQ(r1->ReceivedOf<Packet>().size(), 1u);
  EXPECT_EQ(r2->ReceivedOf<Packet>().size(), 1u);
}

TEST(ForwardingTest, HopLimitDropsPacket) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  auto client = cluster.AddEndpoint(20);
  svc->Send(inr->address(), Envelope{MessageBody(MakeAd("[s=1]", svc->address()))});
  cluster.Settle();

  Packet p = MakeData("[s=1]", {1});
  p.hop_limit = 0;
  client->Send(inr->address(), Envelope{MessageBody(p)});
  cluster.Settle();
  EXPECT_TRUE(svc->ReceivedOf<Packet>().empty());
  EXPECT_EQ(inr->metrics().Counter("forwarding.drop.hop_limit"), 1u);
}

TEST(ForwardingTest, NoMatchCounted) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto client = cluster.AddEndpoint(20);
  client->Send(inr->address(), Envelope{MessageBody(MakeData("[service=nothing]", {1}))});
  cluster.Settle();
  EXPECT_EQ(inr->metrics().Counter("forwarding.drop.no_match"), 1u);
}

TEST(ForwardingTest, DeadlineExhaustionDropsBeforeTunneling) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  auto tx = cluster.AddEndpoint(20);
  svc->Send(b->address(), Envelope{MessageBody(MakeAd("[s=far]", svc->address()))});
  cluster.loop().RunFor(Seconds(1));

  // Budget of 1ms dies on the first overlay hop (a -> b); the service never
  // sees the packet and `a` accounts the drop.
  Packet doomed = MakeData("[s=far]", {1});
  doomed.deadline_budget_ms = 1;
  tx->Send(a->address(), Envelope{MessageBody(doomed)});
  cluster.Settle();
  EXPECT_TRUE(svc->ReceivedOf<Packet>().empty());
  EXPECT_EQ(a->metrics().Counter("forwarding.drop.deadline"), 1u);

  // A roomy budget survives the hop and arrives decremented.
  Packet fine = MakeData("[s=far]", {2});
  fine.deadline_budget_ms = 200;
  tx->Send(a->address(), Envelope{MessageBody(fine)});
  cluster.Settle();
  auto got = svc->ReceivedOf<Packet>();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_LT(got[0].deadline_budget_ms, 200u);
  EXPECT_GT(got[0].deadline_budget_ms, 0u);
}

TEST(ForwardingTest, DropFamilyTotalsAccountEveryDrop) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto client = cluster.AddEndpoint(20);

  Packet dead = MakeData("[s=1]", {1});
  dead.hop_limit = 0;
  client->Send(inr->address(), Envelope{MessageBody(dead)});
  client->Send(inr->address(), Envelope{MessageBody(MakeData("[service=nothing]", {1}))});
  cluster.Settle();

  // Every drop reason lives under the one forwarding.drop.* family, so the
  // family total is the complete drop count.
  const MetricsRegistry& m = inr->metrics();
  EXPECT_EQ(m.FamilyTotal("forwarding.drop."), 2u);
  EXPECT_EQ(m.FamilyTotal("forwarding.drop."),
            m.Counter("forwarding.drop.hop_limit") + m.Counter("forwarding.drop.no_match"));
  // No drop is accounted outside the family under the old flat names.
  EXPECT_EQ(m.Counter("forwarding.hop_limit_exceeded"), 0u);
  EXPECT_EQ(m.Counter("forwarding.no_match"), 0u);
}

TEST(ForwardingTest, EarlyBindingReturnsEndpointsAndMetrics) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto s1 = cluster.AddEndpoint(10);
  auto s2 = cluster.AddEndpoint(11);
  auto client = cluster.AddEndpoint(20);
  s1->Send(inr->address(), Envelope{MessageBody(MakeAd("[service=printer]", s1->address(), 0, 3.0))});
  s2->Send(inr->address(), Envelope{MessageBody(MakeAd("[service=printer]", s2->address(), 0, 1.0))});
  cluster.Settle();

  Packet req = MakeData("[service=printer]", EncodeEarlyBindingPayload(55, client->address()));
  req.early_binding = true;
  client->Send(inr->address(), Envelope{MessageBody(req)});
  cluster.Settle();

  auto resps = client->ReceivedOf<EarlyBindingResponse>();
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].request_id, 55u);
  ASSERT_EQ(resps[0].items.size(), 2u);
  // The client implements metric-based selection; both bindings and metrics
  // are available (richer than round-robin DNS).
  double best = std::min(resps[0].items[0].app_metric, resps[0].items[1].app_metric);
  EXPECT_DOUBLE_EQ(best, 1.0);
  EXPECT_EQ(resps[0].items[0].endpoint.bindings[0].transport, "http");
}

TEST(ForwardingTest, CacheAnswersRepeatRequests) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto camera = cluster.AddEndpoint(10);
  auto viewer = cluster.AddEndpoint(20);

  camera->Send(inr->address(), Envelope{MessageBody(
      MakeAd("[service=camera[entity=transmitter]][room=510]", camera->address()))});
  viewer->Send(inr->address(), Envelope{MessageBody(
      MakeAd("[service=camera[entity=receiver[id=v]]][room=510]", viewer->address()))});
  cluster.Settle();

  // The camera publishes an image with a cache lifetime; the INR caches it
  // under the camera's (source) name as it forwards to the viewer.
  Packet image;
  image.source_name = "[service=camera[entity=transmitter]][room=510]";
  image.destination_name = "[service=camera[entity=receiver[id=v]]][room=510]";
  image.payload = {0xca, 0xfe};
  image.cache_lifetime_s = 30;
  camera->Send(inr->address(), Envelope{MessageBody(image)});
  cluster.Settle();
  ASSERT_EQ(viewer->ReceivedOf<Packet>().size(), 1u);

  // A later request with the answer-from-cache flag is served by the INR;
  // the camera never sees it.
  Packet request;
  request.source_name = "[service=camera[entity=receiver[id=v]]][room=510]";
  request.destination_name = "[service=camera[entity=transmitter]][room=510]";
  request.answer_from_cache = true;
  viewer->Send(inr->address(), Envelope{MessageBody(request)});
  cluster.Settle();

  auto at_viewer = viewer->ReceivedOf<Packet>();
  ASSERT_EQ(at_viewer.size(), 2u);
  EXPECT_EQ(at_viewer[1].payload, (Bytes{0xca, 0xfe}));
  EXPECT_TRUE(camera->ReceivedOf<Packet>().empty());
  EXPECT_EQ(inr->metrics().Counter("forwarding.cache_answers"), 1u);
}

TEST(ForwardingTest, CacheMissFallsThroughToService) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto camera = cluster.AddEndpoint(10);
  auto viewer = cluster.AddEndpoint(20);
  camera->Send(inr->address(), Envelope{MessageBody(
      MakeAd("[service=camera[entity=transmitter]]", camera->address()))});
  cluster.Settle();

  Packet request;
  request.destination_name = "[service=camera[entity=transmitter]]";
  request.source_name = "[service=camera[entity=receiver[id=v]]]";
  request.answer_from_cache = true;
  viewer->Send(inr->address(), Envelope{MessageBody(request)});
  cluster.Settle();
  // Nothing cached: the request reaches the camera as usual.
  EXPECT_EQ(camera->ReceivedOf<Packet>().size(), 1u);
}

TEST(ForwardingTest, ZeroCacheLifetimeDisallowsCaching) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto viewer = cluster.AddEndpoint(20);
  viewer->Send(inr->address(), Envelope{MessageBody(
      MakeAd("[service=camera[entity=receiver[id=v]]]", viewer->address()))});
  cluster.Settle();

  Packet image;
  image.source_name = "[service=camera[entity=transmitter]]";
  image.destination_name = "[service=camera[entity=receiver[id=v]]]";
  image.payload = {1};
  image.cache_lifetime_s = 0;
  viewer->Send(inr->address(), Envelope{MessageBody(image)});
  cluster.Settle();
  EXPECT_EQ(inr->cache().size(), 0u);
}

TEST(ForwardingTest, CrossVspaceTunnelsToOwner) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1, {"alpha"});
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2, {"beta"});
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  auto client = cluster.AddEndpoint(20);

  svc->Send(b->address(), Envelope{MessageBody(
      MakeAd("[vspace=beta][service=camera]", svc->address()))});
  cluster.loop().RunFor(Seconds(1));

  // The client asks a (which routes only alpha); a resolves the owner via
  // the DSR, caches it, and tunnels.
  client->Send(a->address(), Envelope{MessageBody(
      MakeData("[vspace=beta][service=camera]", {5}))});
  cluster.Settle();
  ASSERT_EQ(svc->ReceivedOf<Packet>().size(), 1u);
  EXPECT_EQ(a->metrics().Counter("forwarding.cross_vspace"), 1u);
  EXPECT_EQ(a->metrics().Counter("vspace.owner_cache_misses"), 1u);

  // Second packet hits the owner cache: no DSR round trip.
  client->Send(a->address(), Envelope{MessageBody(
      MakeData("[vspace=beta][service=camera]", {6}))});
  cluster.Settle();
  EXPECT_EQ(svc->ReceivedOf<Packet>().size(), 2u);
  EXPECT_EQ(a->metrics().Counter("vspace.owner_cache_hits"), 1u);
}

TEST(ForwardingTest, UnresolvableVspaceDropsPacket) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1, {"alpha"});
  cluster.StabilizeTopology();
  auto client = cluster.AddEndpoint(20);
  client->Send(a->address(), Envelope{MessageBody(MakeData("[vspace=ghost][x=1]", {1}))});
  cluster.Settle();
  EXPECT_EQ(a->metrics().Counter("forwarding.drop.vspace_unresolved"), 1u);
}

}  // namespace
}  // namespace ins
