// Differential testing of the resolver's lookup structures.
//
// Drives randomized soft-state workloads — add / refresh / change / rename /
// remove / expire / lookup / get-name — through three implementations at
// once and demands identical answers:
//
//   * LinearNameTable  — the Matches()-scan reference model (baseline/);
//   * NameTree         — the paper's superposed tree (Figure 5/6);
//   * ShardedNameTree  — the concurrent sharded core, exercised here in
//                        deterministic inline mode with several fallback
//                        shards so the union-of-shards path is covered.
//
// The three-way equivalence is exact on schema-complete workloads (every
// advertisement uses all r_a attributes per level, i.e. n_a == r_a): that is
// when Figure 5's tree walk coincides with the per-advertisement Matches()
// predicate, and when a hash-sharded union coincides with one tree (see the
// semantics notes in name_tree.h and sharded_name_tree.h). A separate suite
// pins NameTree == ShardedNameTree(fallback_shards=1) on schema-INcomplete
// workloads, where the single-shard layout must be byte-identical by
// construction.
//
// Workload invariants the generator maintains (both by protocol design and
// because the reference model replaces records wholesale): per-announcer
// versions strictly increase and expiry deadlines never move backwards.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ins/baseline/linear_name_table.h"
#include "ins/baseline/string_name_tree.h"
#include "ins/common/rng.h"
#include "ins/name/compiled_name.h"
#include "ins/name/parser.h"
#include "ins/nametree/journal.h"
#include "ins/nametree/name_tree.h"
#include "ins/nametree/sharded_name_tree.h"
#include "ins/workload/namegen.h"

namespace ins {
namespace {

// Schema-complete: every level uses all three attributes of its pool.
constexpr UniformNameParams kCompleteParams{3, 3, 3, 2};
// Schema-incomplete: names omit one of the three attributes per level.
constexpr UniformNameParams kSparseParams{3, 3, 2, 2};

constexpr size_t kSeeds = 10;
constexpr size_t kOpsPerSeed = 1200;

struct LiveName {
  AnnouncerId id;
  NameSpecifier name;
  uint64_t version = 1;
  TimePoint expires{0};
};

// One generated workload state: the three structures under test plus the
// bookkeeping needed to generate valid next operations.
class Harness {
 public:
  static NameTree::Options IndexOffOptions() {
    NameTree::Options o;
    o.enable_posting_index = false;
    return o;
  }

  Harness(uint64_t seed, UniformNameParams params, size_t fallback_shards)
      : rng_(seed), params_(params), tree_off_(IndexOffOptions()) {
    ShardedNameTree::Options opts;
    opts.fallback_shards = fallback_shards;
    // Small ring on purpose: stretches between replica syncs regularly
    // overflow it, so the snapshot-fallback path runs alongside deltas.
    opts.journal_capacity = 32;
    sharded_ = std::make_unique<ShardedNameTree>(opts);
    sharded_->AddSpace("");
    ShardedNameTree::Options replica_opts;
    replica_opts.fallback_shards = fallback_shards;
    replica_ = std::make_unique<ShardedNameTree>(replica_opts);
    replica_->AddSpace("");
  }

  size_t replica_syncs() const { return replica_syncs_; }

  void RunOps(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const uint64_t dice = rng_.NextBelow(100);
      if (dice < 30 || live_.empty()) {
        OpAdd();
      } else if (dice < 45) {
        OpRefresh();
      } else if (dice < 55) {
        OpChange();
      } else if (dice < 63) {
        OpRename();
      } else if (dice < 68) {
        OpRemove();
      } else if (dice < 75) {
        OpBatch();
      } else if (dice < 82) {
        OpExpire();
      } else if (dice < 92) {
        OpCompareLookup();
      } else {
        OpReplicateAndCompare();
      }
    }
    OpReplicateAndCompare();
    CompareAll("final");
    ASSERT_TRUE(tree_.CheckInvariants().ok());
    ASSERT_TRUE(tree_off_.CheckInvariants().ok());
    ASSERT_TRUE(sharded_->CheckInvariants().ok());
    ASSERT_TRUE(replica_->CheckInvariants().ok());

    // The workload genuinely drove the index: lookups ran, and literal
    // queries were served (or proven empty) by posting-list intersection —
    // not by silently falling back to the walk on every query.
    const PostingIndexStats stats = tree_.index_stats();
    EXPECT_GT(stats.TotalLookups(), 0u);
    EXPECT_GT(stats.index_lookups + stats.empty_lookups, 0u);
    EXPECT_EQ(tree_off_.posting_index(), nullptr);
    // Scratch capacity pinned between lookups stays under the Trim caps.
    EXPECT_LE(scratch_.RetainedBytes(), size_t{16} << 20);
  }

 private:
  NameRecord MakeRecord(const LiveName& ln) const {
    NameRecord r;
    r.announcer = ln.id;
    r.endpoint.address = NodeAddress{ln.id.ip, 9000};
    r.app_metric = static_cast<double>(ln.version % 7);
    r.expires = ln.expires;
    r.version = ln.version;
    return r;
  }

  void UpsertEverywhere(const LiveName& ln) {
    NameRecord rec = MakeRecord(ln);
    oracle_.Upsert(ln.name, rec);
    tree_.Upsert(ln.name, rec);
    tree_off_.Upsert(ln.name, rec);
    sharded_->Upsert("", ln.name, rec);
  }

  void OpAdd() {
    LiveName ln;
    const uint32_t n = next_announcer_++;
    ln.id = AnnouncerId{0x0a000000u + n, 7, n};
    ln.name = GenerateUniformName(rng_, params_);
    ln.version = 1;
    ln.expires = now_ + Seconds(static_cast<int64_t>(30 + rng_.NextBelow(300)));
    UpsertEverywhere(ln);
    live_.push_back(ln);
  }

  LiveName& PickLive() { return live_[rng_.NextBelow(live_.size())]; }

  void OpRefresh() {
    LiveName& ln = PickLive();
    ln.version += 1;
    ln.expires =
        std::max(ln.expires, now_ + Seconds(static_cast<int64_t>(30 + rng_.NextBelow(300))));
    UpsertEverywhere(ln);
  }

  void OpChange() {
    LiveName& ln = PickLive();
    ln.version += 1 + rng_.NextBelow(3);  // versions may skip, never repeat
    UpsertEverywhere(ln);
  }

  void OpRename() {
    LiveName& ln = PickLive();
    ln.version += 1;
    ln.name = GenerateUniformName(rng_, params_);
    UpsertEverywhere(ln);
  }

  void OpRemove() {
    size_t idx = rng_.NextBelow(live_.size());
    const AnnouncerId id = live_[idx].id;
    const bool a = oracle_.Remove(id);
    const bool b = tree_.Remove(id);
    const bool c = sharded_->Remove("", id);
    ASSERT_EQ(a, b);
    ASSERT_EQ(a, c);
    ASSERT_EQ(a, tree_off_.Remove(id));
    live_.erase(live_.begin() + static_cast<long>(idx));
  }

  void OpExpire() {
    now_ += Seconds(static_cast<int64_t>(rng_.NextBelow(120)));
    const size_t a = oracle_.ExpireBefore(now_);
    const size_t b = tree_.ExpireBefore(now_);
    const size_t c = sharded_->ExpireBefore(now_);
    ASSERT_EQ(a, b) << "expiry divergence at t=" << now_.count();
    ASSERT_EQ(a, c) << "expiry divergence at t=" << now_.count();
    ASSERT_EQ(a, tree_off_.ExpireBefore(now_)) << "expiry divergence at t=" << now_.count();
    std::erase_if(live_, [this](const LiveName& ln) { return ln.expires < now_; });
  }

  void OpBatch() {
    // One UpsertBatch call against the sharded store vs entry-by-entry
    // application to the oracles — equivalent because announcers within a
    // batch are distinct. Renames inside a batch exercise the cross-shard
    // eviction path under the batched-publish protocol.
    std::vector<size_t> picked;
    const size_t want = 1 + rng_.NextBelow(6);
    for (size_t k = 0; k < want; ++k) {
      const uint64_t kind = rng_.NextBelow(3);
      if (kind == 0 || live_.empty()) {
        LiveName ln;
        const uint32_t n = next_announcer_++;
        ln.id = AnnouncerId{0x0a000000u + n, 7, n};
        ln.name = GenerateUniformName(rng_, params_);
        ln.version = 1;
        ln.expires = now_ + Seconds(static_cast<int64_t>(30 + rng_.NextBelow(300)));
        live_.push_back(ln);
        picked.push_back(live_.size() - 1);
      } else {
        const size_t idx = rng_.NextBelow(live_.size());
        if (std::find(picked.begin(), picked.end(), idx) != picked.end()) {
          continue;  // one entry per announcer per batch
        }
        LiveName& ln = live_[idx];
        ln.version += 1;
        if (kind == 2) {
          ln.name = GenerateUniformName(rng_, params_);  // rename, maybe cross-shard
        }
        picked.push_back(idx);
      }
    }
    std::vector<std::pair<NameSpecifier, NameRecord>> batch;
    for (size_t idx : picked) {
      const LiveName& ln = live_[idx];
      NameRecord rec = MakeRecord(ln);
      oracle_.Upsert(ln.name, rec);
      tree_.Upsert(ln.name, rec);
      tree_off_.Upsert(ln.name, rec);
      batch.emplace_back(ln.name, rec);
    }
    // Every entry is fresh (new announcer or bumped version): none may be
    // dropped by the cross-shard staleness guard.
    ASSERT_EQ(sharded_->UpsertBatch("", batch), batch.size());
  }

  NameSpecifier MakeQuery() {
    // Mix of fresh uniform specifiers (same pools, so they intersect the
    // live set meaningfully) and wildcarded derivations of live names.
    if (!live_.empty() && rng_.NextBool(0.5)) {
      return DeriveQuery(rng_, PickLive().name, 0.8, 0.3);
    }
    return GenerateUniformName(rng_, params_);
  }

  static std::string Render(const std::vector<const NameRecord*>& recs) {
    std::ostringstream os;
    for (const NameRecord* r : recs) {
      os << r->announcer.ToString() << " v" << r->version << " e" << r->expires.count()
         << " m" << r->app_metric << "\n";
    }
    return os.str();
  }

  static std::string Render(const std::vector<NameRecord>& recs) {
    std::ostringstream os;
    for (const NameRecord& r : recs) {
      os << r.announcer.ToString() << " v" << r.version << " e" << r.expires.count() << " m"
         << r.app_metric << "\n";
    }
    return os.str();
  }

  void OpCompareLookup() {
    const NameSpecifier q = MakeQuery();
    const std::string oracle = Render(oracle_.Lookup(q));
    EXPECT_EQ(oracle, Render(tree_.Lookup(q))) << "LOOKUP-NAME diverged on " << q.ToString();
    // The pre-compiled query path (what ShardedNameTree compiles once per
    // store operation) must be byte-identical to the string entry point, with
    // both a caller-provided and the thread-local scratch.
    const CompiledName cq = CompiledName::ForQuery(q, tree_.symbols());
    EXPECT_EQ(oracle, Render(tree_.Lookup(cq, &scratch_)))
        << "compiled LOOKUP-NAME (explicit scratch) diverged on " << q.ToString();
    EXPECT_EQ(oracle, Render(tree_.Lookup(cq)))
        << "compiled LOOKUP-NAME (thread-local scratch) diverged on " << q.ToString();
    // Posting-index three-way: the index path (default Lookup above), the
    // Figure-5 walk on the same tree, and a tree built with the index off
    // must all match the Matches()-scan oracle on every query.
    EXPECT_EQ(oracle, Render(tree_.LookupTreeWalk(cq, &scratch_)))
        << "tree walk diverged from index path on " << q.ToString();
    EXPECT_EQ(oracle,
              Render(tree_off_.Lookup(CompiledName::ForQuery(q, tree_off_.symbols()))))
        << "index-off tree diverged on " << q.ToString();
    EXPECT_EQ(oracle, Render(sharded_->Lookup("", q)))
        << "sharded LOOKUP-NAME diverged on " << q.ToString();
    if (!live_.empty()) {
      // GET-NAME: all three agree on the record's canonical specifier.
      const LiveName& ln = live_[rng_.NextBelow(live_.size())];
      const NameRecord* rec = tree_.Find(ln.id);
      ASSERT_NE(rec, nullptr);
      auto sharded_name = sharded_->GetName("", ln.id);
      ASSERT_TRUE(sharded_name.has_value());
      EXPECT_EQ(ln.name.ToString(), tree_.ExtractName(rec).ToString());
      EXPECT_EQ(ln.name.ToString(), sharded_name->ToString());
    }
  }

  // Replicate-then-compare: catch the replica up from the primary's change
  // journal — an O(changes) delta while its cursor is still on the ring, a
  // full AXFR-style rebuild once it has fallen off — then demand the replica
  // matches the Matches()-scan oracle record-for-record. This is the exact
  // data path the resolver replication protocol serves, minus the wire.
  void OpReplicateAndCompare() {
    const NameJournal* journal = sharded_->journal("");
    ASSERT_NE(journal, nullptr);
    std::vector<JournalEntry> entries;
    if (!journal->ReadSince(replica_serial_, SIZE_MAX, &entries)) {
      replica_->RemoveSpace("");
      replica_->AddSpace("");
      sharded_->ForEachShardTree("", [&](const NameTree& tree) {
        for (const NameRecord* rec : tree.AllRecords()) {
          replica_->Upsert("", tree.ExtractName(rec), *rec);
        }
      });
    } else {
      for (const JournalEntry& e : entries) {
        if (e.op == JournalOp::kUpsert) {
          auto name = ParseNameSpecifier(e.name_text);
          ASSERT_TRUE(name.ok()) << "unparseable journal name: " << e.name_text;
          NameRecord rec;
          rec.announcer = e.announcer;
          rec.endpoint = e.endpoint;
          rec.app_metric = e.app_metric;
          rec.expires = e.expires;
          rec.version = e.version;
          replica_->Upsert("", name.value(), rec);
        } else {
          replica_->Remove("", e.announcer);
        }
      }
    }
    replica_serial_ = journal->head_serial();
    ++replica_syncs_;

    const NameSpecifier match_all;
    EXPECT_EQ(Render(oracle_.Lookup(match_all)), Render(replica_->Lookup("", match_all)))
        << "replica diverged from oracle after sync " << replica_syncs_;
    EXPECT_EQ(oracle_.size(), replica_->RecordCount(""));
  }

  void CompareAll(const std::string& label) {
    const NameSpecifier match_all;  // empty query matches everything
    const std::string oracle = Render(oracle_.Lookup(match_all));
    EXPECT_EQ(oracle, Render(tree_.Lookup(match_all))) << label;
    EXPECT_EQ(oracle, Render(sharded_->Lookup("", match_all))) << label;
    EXPECT_EQ(oracle_.size(), tree_.record_count()) << label;
    EXPECT_EQ(oracle_.size(), sharded_->RecordCount("")) << label;
  }

  Rng rng_;
  UniformNameParams params_;
  TimePoint now_{0};
  uint32_t next_announcer_ = 1;
  std::vector<LiveName> live_;

  LinearNameTable oracle_;
  NameTree tree_;
  // Same workload with Options::enable_posting_index = false: pins that the
  // index-off configuration reproduces the pre-index behavior exactly.
  NameTree tree_off_;
  NameTree::LookupScratch scratch_;  // reused across every compiled lookup
  std::unique_ptr<ShardedNameTree> sharded_;
  // Journal-fed replica of sharded_ (see OpReplicateAndCompare).
  std::unique_ptr<ShardedNameTree> replica_;
  uint64_t replica_serial_ = 0;
  size_t replica_syncs_ = 0;
};

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// Three-way equivalence, schema-complete workload, hash-sharded store.
TEST_P(DifferentialTest, OracleVsTreeVsShardedStore) {
  Harness h(GetParam(), kCompleteParams, /*fallback_shards=*/4);
  h.RunOps(kOpsPerSeed);
  EXPECT_GT(h.replica_syncs(), 1u);  // the replication op really ran
}

// Single-shard store must track the tree exactly on ANY workload — including
// schema-incomplete names where advertisements omit attributes.
TEST_P(DifferentialTest, SingleShardIsByteIdenticalOnSparseWorkload) {
  Rng rng(GetParam() * 977 + 3);
  NameTree tree;
  ShardedNameTree::Options opts;
  opts.fallback_shards = 1;
  ShardedNameTree sharded(opts);
  sharded.AddSpace("");

  std::vector<LiveName> live;
  TimePoint now{0};
  for (size_t i = 0; i < kOpsPerSeed; ++i) {
    const uint64_t dice = rng.NextBelow(100);
    if (dice < 40 || live.empty()) {
      LiveName ln;
      const uint32_t n = static_cast<uint32_t>(i) + 1;
      ln.id = AnnouncerId{0x0b000000u + n, 11, n};
      ln.name = GenerateUniformName(rng, kSparseParams);
      ln.version = 1;
      ln.expires = now + Seconds(static_cast<int64_t>(20 + rng.NextBelow(200)));
      NameRecord rec;
      rec.announcer = ln.id;
      rec.expires = ln.expires;
      rec.version = ln.version;
      tree.Upsert(ln.name, rec);
      sharded.Upsert("", ln.name, rec);
      live.push_back(ln);
    } else if (dice < 60) {
      LiveName& ln = live[rng.NextBelow(live.size())];
      ln.version += 1;
      ln.name = GenerateUniformName(rng, kSparseParams);
      NameRecord rec;
      rec.announcer = ln.id;
      rec.expires = ln.expires;
      rec.version = ln.version;
      tree.Upsert(ln.name, rec);
      sharded.Upsert("", ln.name, rec);
    } else if (dice < 70) {
      now += Seconds(static_cast<int64_t>(rng.NextBelow(80)));
      ASSERT_EQ(tree.ExpireBefore(now), sharded.ExpireBefore(now));
      std::erase_if(live, [now](const LiveName& ln) { return ln.expires < now; });
    } else {
      // Arbitrary (sparse) query: the single shard must agree verbatim.
      NameSpecifier q = GenerateUniformName(rng, kSparseParams);
      std::vector<const NameRecord*> want = tree.Lookup(q);
      std::vector<NameRecord> got = sharded.Lookup("", q);
      ASSERT_EQ(want.size(), got.size()) << q.ToString();
      for (size_t k = 0; k < want.size(); ++k) {
        EXPECT_TRUE(want[k]->announcer == got[k].announcer);
        EXPECT_EQ(want[k]->version, got[k].version);
      }
    }
  }
  EXPECT_EQ(tree.record_count(), sharded.RecordCount(""));
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_TRUE(sharded.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u));

// ---------------------------------------------------------------------------
// Interned core vs the pre-interning string-keyed layout (baseline/
// string_name_tree.h, the ablation baseline): insert-only workloads across
// both schema shapes, identical results on every query. This pins the
// SymbolTable / CompiledName / flat-map rewrite to the old layout's
// observable behavior, independent of the Matches() oracle.
// ---------------------------------------------------------------------------

class InternedVsStringKeyedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InternedVsStringKeyedTest, IdenticalLookupResults) {
  for (const UniformNameParams& params : {kCompleteParams, kSparseParams}) {
    Rng rng(GetParam() * 7919 + 17);
    NameTree interned;
    StringNameTree stringly;
    for (uint32_t i = 1; i <= 400; ++i) {
      NameSpecifier name = GenerateUniformName(rng, params);
      NameRecord rec;
      rec.announcer = AnnouncerId{0x0f000000u + i, 13, i};
      rec.expires = Seconds(3600);
      rec.version = 1;
      interned.Upsert(name, rec);
      stringly.Insert(name, rec);
    }
    NameTree::LookupScratch scratch;
    for (int q = 0; q < 300; ++q) {
      NameSpecifier query = GenerateUniformName(rng, params);
      std::vector<const NameRecord*> a =
          interned.Lookup(CompiledName::ForQuery(query, interned.symbols()), &scratch);
      std::vector<const NameRecord*> b = stringly.Lookup(query);
      ASSERT_EQ(a.size(), b.size()) << query.ToString();
      for (size_t k = 0; k < a.size(); ++k) {
        EXPECT_TRUE(a[k]->announcer == b[k]->announcer) << query.ToString();
      }
    }
    EXPECT_TRUE(interned.CheckInvariants().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternedVsStringKeyedTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// A CompiledName built against a shared symbol table grafts identically into
// every tree attached to that table — the property ShardedNameTree relies on
// to compile once and apply to any shard and both left-right sides.
TEST(SharedSymbolTableTest, CompileOncePortableAcrossTrees) {
  auto symbols = std::make_shared<SymbolTable>();
  NameTree::Options opts;
  opts.symbols = symbols;
  NameTree left(opts);
  NameTree right(opts);
  ASSERT_EQ(&left.symbols(), symbols.get());
  ASSERT_EQ(&right.symbols(), symbols.get());

  Rng rng(99);
  for (uint32_t i = 1; i <= 200; ++i) {
    NameSpecifier name = GenerateUniformName(rng, kSparseParams);
    const CompiledName compiled = CompiledName::ForUpdate(name, symbols.get());
    NameRecord rec;
    rec.announcer = AnnouncerId{0x10000000u + i, 3, i};
    rec.expires = Seconds(3600);
    rec.version = 1;
    left.Upsert(name, compiled, rec);
    right.Upsert(name, compiled, rec);
  }
  for (int q = 0; q < 200; ++q) {
    NameSpecifier query = GenerateUniformName(rng, kSparseParams);
    const CompiledName cq = CompiledName::ForQuery(query, *symbols);
    std::vector<const NameRecord*> a = left.Lookup(cq);
    std::vector<const NameRecord*> b = right.Lookup(cq);
    ASSERT_EQ(a.size(), b.size());
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_TRUE(a[k]->announcer == b[k]->announcer);
    }
  }
  // One table, no per-tree copies: both trees report zero owned symbol bytes.
  EXPECT_EQ(left.ComputeStats().symbol_bytes, 0u);
  EXPECT_EQ(right.ComputeStats().symbol_bytes, 0u);
  EXPECT_TRUE(left.CheckInvariants().ok());
  EXPECT_TRUE(right.CheckInvariants().ok());
}

// ---------------------------------------------------------------------------
// Sharded-union semantics: with advertisements partitioned into "families"
// that are schema-complete within their shard (every family roots at its own
// single distinctive attribute, with a fixed child schema), the union of
// per-shard LOOKUP-NAMEs equals the Matches() reference model EXACTLY — for
// arbitrary queries, including ones mixing attributes of several families.
// This is the semantic contract the concurrent store scales out under.
// ---------------------------------------------------------------------------

// Picks `want` family attribute names that land in pairwise-distinct
// fallback shards of `shards` (the store hashes the first root attribute
// with std::hash, which we replicate here).
std::vector<std::string> DistinctShardFamilies(size_t want, size_t shards) {
  std::vector<std::string> out;
  std::vector<bool> used(shards, false);
  for (char c = 'a'; c <= 'z' && out.size() < want; ++c) {
    std::string attr = std::string("fam_") + c;
    size_t idx = std::hash<std::string>{}(attr) % shards;
    if (!used[idx]) {
      used[idx] = true;
      out.push_back(attr);
    }
  }
  return out;
}

TEST(ShardedFamilyDifferentialTest, UnionOfShardsEqualsMatchesOracle) {
  constexpr size_t kShards = 8;
  const std::vector<std::string> families = DistinctShardFamilies(4, kShards);
  ASSERT_EQ(families.size(), 4u);

  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 1337);
    ShardedNameTree::Options opts;
    opts.fallback_shards = kShards;
    ShardedNameTree store(opts);
    store.AddSpace("");
    LinearNameTable oracle;

    auto family_value = [&rng] { return "v" + std::to_string(rng.NextBelow(4)); };
    auto family_name = [&](const std::string& fam) {
      // [fam_x=v? [kind=v? [room=v?]]] — one root per family, fixed child
      // schema: schema-complete within the family's shard.
      NameSpecifier n;
      n.AddPath({{fam, family_value()}, {"kind", family_value()}, {"room", family_value()}});
      return n;
    };

    for (uint32_t i = 1; i <= 120; ++i) {
      const std::string& fam = families[rng.NextBelow(families.size())];
      NameRecord rec;
      rec.announcer = AnnouncerId{0x0d000000u + i, seed, i};
      rec.expires = Seconds(3600);
      rec.version = 1;
      NameSpecifier name = family_name(fam);
      oracle.Upsert(name, rec);
      store.Upsert("", name, rec);
    }

    // The workload genuinely spreads: several shards hold records.
    size_t populated = 0;
    for (const ShardedNameTree::ShardStats& st : store.PerShardStats()) {
      populated += st.records > 0 ? 1 : 0;
    }
    EXPECT_GE(populated, 3u);

    for (int q = 0; q < 200; ++q) {
      // Queries constrain 1–2 random families, sometimes with wildcards,
      // sometimes with child constraints — and sometimes mix families, the
      // case where a monolithic Figure-5 tree and the prose semantics
      // disagree but the sharded union must still track the oracle.
      NameSpecifier query;
      const size_t constraints = 1 + rng.NextBelow(2);
      const size_t first = rng.NextBelow(families.size());
      const size_t second = (first + 1 + rng.NextBelow(families.size() - 1)) % families.size();
      for (size_t k = 0; k < constraints; ++k) {
        const std::string& fam = families[k == 0 ? first : second];
        if (rng.NextBool(0.3)) {
          query.AddPathValue({}, fam, Value::Wildcard());
        } else if (rng.NextBool(0.5)) {
          query.AddPath({{fam, family_value()}, {"kind", family_value()}});
        } else {
          query.AddPath({{fam, family_value()}});
        }
      }
      std::vector<const NameRecord*> want = oracle.Lookup(query);
      std::vector<NameRecord> got = store.Lookup("", query);
      ASSERT_EQ(want.size(), got.size()) << "query " << query.ToString();
      for (size_t k = 0; k < want.size(); ++k) {
        EXPECT_TRUE(want[k]->announcer == got[k].announcer) << query.ToString();
      }
    }
    EXPECT_TRUE(store.CheckInvariants().ok());
  }
}

// Cross-shard service mobility: a rename whose first attribute changes moves
// the record between fallback shards; the store must report kRenamed and
// never hold the announcer twice.
TEST(ShardedMobilityTest, RenameAcrossFallbackShards) {
  constexpr size_t kShards = 8;
  ShardedNameTree::Options opts;
  opts.fallback_shards = kShards;
  ShardedNameTree store(opts);
  store.AddSpace("");

  auto name_with_root = [](const std::string& attr) {
    NameSpecifier n;
    n.AddPath({{attr, "on"}});
    return n;
  };
  auto shard_of = [&](const std::string& attr) {
    return std::hash<std::string>{}(attr) % kShards;
  };

  Rng rng(42);
  size_t cross_shard_renames = 0;
  for (uint32_t n = 1; n <= 64; ++n) {
    AnnouncerId id{0x0c000000u + n, 5, n};
    NameRecord rec;
    rec.announcer = id;
    rec.expires = Seconds(3600);
    rec.version = 1;
    std::string attr = "svc_" + std::to_string(rng.NextBelow(40));
    ASSERT_EQ(store.Upsert("", name_with_root(attr), rec).kind,
              NameTree::UpsertOutcome::kNew);

    for (int attempt = 0; attempt < 20; ++attempt) {
      std::string renamed_attr = "svc_" + std::to_string(rng.NextBelow(40));
      rec.version += 1;
      auto out = store.Upsert("", name_with_root(renamed_attr), rec);
      ASSERT_NE(out.kind, NameTree::UpsertOutcome::kIgnored);
      ASSERT_EQ(store.RecordCount(""), n) << "announcer duplicated or lost across shards";
      if (shard_of(renamed_attr) != shard_of(attr)) {
        EXPECT_EQ(out.kind, NameTree::UpsertOutcome::kRenamed);
        ++cross_shard_renames;
      }
      attr = renamed_attr;
    }
    // Stale versions must lose even against a record in another shard.
    NameRecord stale = rec;
    stale.version = 0;
    EXPECT_EQ(store.Upsert("", name_with_root("svc_0"), stale).kind,
              NameTree::UpsertOutcome::kIgnored);
    ASSERT_EQ(store.RecordCount(""), n);
  }
  EXPECT_GT(cross_shard_renames, 100u);  // the loop really exercised the path
  EXPECT_TRUE(store.CheckInvariants().ok());
}

// Regression: a batch entry STALER than the announcer's record in a
// different fallback shard must be dropped entirely. Routing it to its
// target shard would graft the announcer twice — the target tree's version
// guard cannot see the other shard's record — leaving a duplicate that
// corrupts Remove/Find/RecordCount.
TEST(ShardedMobilityTest, BatchStaleCrossShardEntryIsIgnored) {
  constexpr size_t kShards = 8;
  ShardedNameTree::Options opts;
  opts.fallback_shards = kShards;
  ShardedNameTree store(opts);
  store.AddSpace("");

  auto name_with_root = [](const std::string& attr) {
    NameSpecifier n;
    n.AddPath({{attr, "on"}});
    return n;
  };
  auto shard_of = [&](const std::string& attr) {
    return std::hash<std::string>{}(attr) % kShards;
  };
  // Two root attributes landing in distinct fallback shards.
  const std::string here = "svc_0";
  std::string there;
  for (int i = 1; there.empty(); ++i) {
    std::string cand = "svc_" + std::to_string(i);
    if (shard_of(cand) != shard_of(here)) {
      there = cand;
    }
  }

  AnnouncerId id{0x0e000000u, 5, 1};
  NameRecord rec;
  rec.announcer = id;
  rec.expires = Seconds(3600);
  rec.version = 2;
  ASSERT_EQ(store.Upsert("", name_with_root(here), rec).kind,
            NameTree::UpsertOutcome::kNew);

  NameRecord stale = rec;
  stale.version = 1;
  EXPECT_EQ(store.UpsertBatch("", {{name_with_root(there), stale}}), 0u);
  EXPECT_EQ(store.RecordCount(""), 1u);
  std::optional<NameRecord> found = store.Find("", id);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->version, 2u);
  auto name = store.GetName("", id);
  ASSERT_TRUE(name.has_value());
  EXPECT_TRUE(*name == name_with_root(here));
  EXPECT_TRUE(store.CheckInvariants().ok());

  // A fresh batch entry still migrates the announcer across shards.
  NameRecord fresh = rec;
  fresh.version = 3;
  EXPECT_EQ(store.UpsertBatch("", {{name_with_root(there), fresh}}), 1u);
  EXPECT_EQ(store.RecordCount(""), 1u);
  found = store.Find("", id);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->version, 3u);
  auto moved = store.GetName("", id);
  ASSERT_TRUE(moved.has_value());
  EXPECT_TRUE(*moved == name_with_root(there));
  EXPECT_TRUE(store.CheckInvariants().ok());
}

}  // namespace
}  // namespace ins
