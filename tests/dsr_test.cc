// Tests for the Domain Space Resolver.

#include <gtest/gtest.h>

#include "ins/overlay/dsr.h"
#include "ins/sim/event_loop.h"
#include "ins/sim/network.h"

namespace ins {
namespace {

struct DsrFixture {
  sim::EventLoop loop;
  sim::Network net{&loop, 3};
  std::unique_ptr<sim::Network::Socket> dsr_socket = net.Bind(MakeAddress(100));
  Dsr dsr{&loop, dsr_socket.get()};

  std::unique_ptr<sim::Network::Socket> client_socket = net.Bind(MakeAddress(50));
  std::vector<Envelope> responses;

  DsrFixture() {
    net.SetDefaultLink({Milliseconds(1), 0, 0});
    client_socket->SetReceiveHandler([this](const NodeAddress&, const Bytes& data) {
      auto env = DecodeMessage(data);
      ASSERT_TRUE(env.ok());
      responses.push_back(std::move(*env));
    });
  }

  void Register(uint32_t host, std::vector<std::string> vspaces, uint32_t lifetime = 60,
                bool active = true) {
    DsrRegister reg;
    reg.inr = MakeAddress(host);
    reg.active = active;
    reg.vspaces = std::move(vspaces);
    reg.lifetime_s = lifetime;
    client_socket->Send(MakeAddress(100), Encode(reg));
    loop.RunFor(Milliseconds(50));
  }
};

TEST(DsrTest, RegistrationsAppearInJoinOrder) {
  DsrFixture f;
  f.Register(3, {""});
  f.Register(1, {""});
  f.Register(2, {""});
  EXPECT_EQ(f.dsr.ActiveInrs(),
            (std::vector<NodeAddress>{MakeAddress(3), MakeAddress(1), MakeAddress(2)}));
}

TEST(DsrTest, RefreshKeepsJoinOrder) {
  DsrFixture f;
  f.Register(3, {""});
  f.Register(1, {""});
  f.Register(3, {""});  // refresh, not rejoin
  EXPECT_EQ(f.dsr.ActiveInrs(),
            (std::vector<NodeAddress>{MakeAddress(3), MakeAddress(1)}));
}

TEST(DsrTest, ListRequestAnswered) {
  DsrFixture f;
  f.Register(1, {""});
  f.Register(2, {""});
  f.client_socket->Send(MakeAddress(100), Encode(DsrListRequest{42}));
  f.loop.RunFor(Milliseconds(50));
  ASSERT_EQ(f.responses.size(), 1u);
  const auto& resp = std::get<DsrListResponse>(f.responses[0].body);
  EXPECT_EQ(resp.request_id, 42u);
  EXPECT_EQ(resp.active_inrs, (std::vector<NodeAddress>{MakeAddress(1), MakeAddress(2)}));
}

TEST(DsrTest, VspaceLookupPrefersEarliestRegistrant) {
  DsrFixture f;
  f.Register(1, {"cams"});
  f.Register(2, {"cams", "printers"});
  EXPECT_EQ(f.dsr.InrForVspace("cams"), MakeAddress(1));
  EXPECT_EQ(f.dsr.InrForVspace("printers"), MakeAddress(2));
  EXPECT_EQ(f.dsr.InrForVspace("nope"), kInvalidAddress);

  f.client_socket->Send(MakeAddress(100), Encode(DsrVspaceRequest{7, "printers"}));
  f.loop.RunFor(Milliseconds(50));
  ASSERT_EQ(f.responses.size(), 1u);
  const auto& resp = std::get<DsrVspaceResponse>(f.responses[0].body);
  EXPECT_EQ(resp.inr, MakeAddress(2));
  EXPECT_EQ(resp.vspace, "printers");
}

TEST(DsrTest, SoftStateExpiry) {
  DsrFixture f;
  f.Register(1, {""}, /*lifetime=*/10);
  f.Register(2, {""}, /*lifetime=*/60);
  EXPECT_EQ(f.dsr.ActiveInrs().size(), 2u);
  f.loop.RunFor(Seconds(20));  // sweeps run every 5 s
  EXPECT_EQ(f.dsr.ActiveInrs(), std::vector<NodeAddress>{MakeAddress(2)});
}

TEST(DsrTest, RefreshPreventsExpiry) {
  DsrFixture f;
  f.Register(1, {""}, 10);
  for (int i = 0; i < 5; ++i) {
    f.loop.RunFor(Seconds(6));
    f.Register(1, {""}, 10);
  }
  EXPECT_EQ(f.dsr.ActiveInrs().size(), 1u);
}

TEST(DsrTest, ZeroLifetimeUnregisters) {
  DsrFixture f;
  f.Register(1, {""});
  f.Register(2, {""});
  f.Register(1, {""}, /*lifetime=*/0);
  EXPECT_EQ(f.dsr.ActiveInrs(), std::vector<NodeAddress>{MakeAddress(2)});
}

TEST(DsrTest, CandidatesTrackedSeparately) {
  DsrFixture f;
  f.dsr.AddCandidate(MakeAddress(9));
  f.Register(8, {}, 60, /*active=*/false);
  EXPECT_EQ(f.dsr.Candidates(),
            (std::vector<NodeAddress>{MakeAddress(8), MakeAddress(9)}));
  EXPECT_TRUE(f.dsr.ActiveInrs().empty());

  f.client_socket->Send(MakeAddress(100), Encode(DsrCandidatesRequest{5}));
  f.loop.RunFor(Milliseconds(50));
  ASSERT_EQ(f.responses.size(), 1u);
  EXPECT_EQ(std::get<DsrCandidatesResponse>(f.responses[0].body).candidates.size(), 2u);
}

TEST(DsrTest, ActivationRemovesFromCandidates) {
  DsrFixture f;
  f.dsr.AddCandidate(MakeAddress(9));
  f.Register(9, {""});
  EXPECT_TRUE(f.dsr.Candidates().empty());
  EXPECT_EQ(f.dsr.ActiveInrs(), std::vector<NodeAddress>{MakeAddress(9)});
}

TEST(DsrTest, GarbageIgnored) {
  DsrFixture f;
  f.client_socket->Send(MakeAddress(100), Bytes{0xde, 0xad});
  f.loop.RunFor(Milliseconds(50));
  EXPECT_EQ(f.dsr.metrics().Counter("dsr.decode_errors"), 1u);
}

}  // namespace
}  // namespace ins
