// Journaled delta replication with anti-entropy digests (inr/replication.h):
// steady-state liveness leases instead of periodic refresh storms, partition
// repair via O(changes) delta transfers, ring-wraparound snapshot fallback,
// idempotent/commutative delta application, and the transfer state machine's
// timeout/retry/abort path. Everything here runs with the feature flag ON;
// the rest of the suite pins the flag-off seed behaviour.

#include <gtest/gtest.h>

#include "ins/harness/cluster.h"
#include "ins/inr/admission.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

Advertisement MakeAd(const std::string& name_text, const NodeAddress& endpoint,
                     uint64_t version = 1, uint32_t discriminator = 0) {
  Advertisement ad;
  ad.name_text = name_text;
  ad.announcer = AnnouncerId{endpoint.ip, 1000, discriminator};
  ad.endpoint.address = endpoint;
  ad.lifetime_s = 45;
  ad.version = version;
  return ad;
}

ClusterOptions ReplicatedOptions(uint64_t seed = 1) {
  ClusterOptions options;
  options.seed = seed;
  options.inr_template.replication.enabled = true;
  return options;
}

// announcer -> version view of one resolver's records in `vspace`.
std::map<AnnouncerId, uint64_t> StateOf(Inr* inr, const std::string& vspace = "") {
  std::map<AnnouncerId, uint64_t> view;
  inr->vspaces().store().ForEachShardTree(vspace, [&](const NameTree& tree) {
    for (const NameRecord* rec : tree.AllRecords()) {
      view[rec->announcer] = rec->version;
    }
  });
  return view;
}

TEST(ReplicationTest, ReplicationMessagesAreAdmissionClass0) {
  // Digest/delta traffic is what keeps replicas converged under exactly the
  // overloads that shed lower classes — it must ride with the keepalives.
  EXPECT_EQ(ClassifyMessage(Envelope{MessageBody(JournalDigest{})}), 0);
  EXPECT_EQ(ClassifyMessage(Envelope{MessageBody(JournalDeltaRequest{})}), 0);
  EXPECT_EQ(ClassifyMessage(Envelope{MessageBody(JournalDeltaResponse{})}), 0);
}

TEST(ReplicationTest, DigestLeasesKeepReplicasAliveWithoutPeriodicUpdates) {
  SimCluster cluster(ReplicatedOptions());
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);

  // The service keeps refreshing its advertisement at a (same version =
  // refresh, not journaled). b's replica must stay alive PAST its shipped
  // 45 s lifetime purely on digest leases — the periodic O(names) refresh
  // updates are suppressed.
  const auto q = *ParseNameSpecifier("[service=camera]");
  for (int t = 0; t <= 70; t += 10) {
    svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", svc->address()))});
    cluster.loop().RunFor(Seconds(10));
    ASSERT_EQ(b->vspaces().Tree("")->Lookup(q).size(), 1u) << "t=" << t;
  }

  EXPECT_EQ(a->metrics().Counter("discovery.periodic_updates_sent"), 0u);
  EXPECT_EQ(b->metrics().Counter("discovery.periodic_updates_sent"), 0u);
  EXPECT_GT(b->metrics().Counter("replication.leases_renewed"), 0u);
  EXPECT_GT(a->metrics().Counter("replication.digests_sent"), 0u);

  // Once the service stops refreshing, a expires the record locally and the
  // kExpire tombstone replicates: both resolvers drop it.
  cluster.loop().RunFor(Seconds(60));
  EXPECT_EQ(a->vspaces().Tree("")->Lookup(q).size(), 0u);
  EXPECT_EQ(b->vspaces().Tree("")->Lookup(q).size(), 0u);
  EXPECT_TRUE(cluster.CheckReplicationConvergence().empty())
      << cluster.CheckReplicationConvergence();
}

TEST(ReplicationTest, HealedPartitionConvergesWithinOneRefreshPeriod) {
  SimCluster cluster(ReplicatedOptions());
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(1));
  Inr* c = cluster.AddInr(3);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);

  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=base]", svc->address()))});
  cluster.loop().RunFor(Seconds(2));
  ASSERT_TRUE(cluster.CheckReplicationConvergence().empty());

  // Partition shorter than the keepalive failure window (3 x 5 s): the
  // overlay edges survive, but b and c miss every triggered update for the
  // names advertised meanwhile.
  cluster.Partition({{1, 10, SimCluster::kDsrHostIndex}, {2, 3}});
  for (int i = 0; i < 10; ++i) {
    svc->Send(a->address(),
              Envelope{MessageBody(MakeAd("[service=part][id=" + std::to_string(i) + "]",
                                          svc->address(), 1,
                                          100 + static_cast<uint32_t>(i)))});
  }
  cluster.loop().RunFor(Seconds(8));
  ASSERT_FALSE(cluster.CheckReplicationConvergence().empty());

  cluster.Heal();
  // One refresh period (15 s) is the bound the seed protocol needs; the
  // anti-entropy digest round (5 s cadence) plus one delta transfer is what
  // actually converges it.
  auto took = cluster.MeasureReplicationConvergence(
      cluster.options().inr_template.discovery.update_interval);
  ASSERT_TRUE(took.has_value()) << cluster.CheckReplicationConvergence();

  EXPECT_GT(b->metrics().Counter("replication.delta_entries_applied") +
                c->metrics().Counter("replication.delta_entries_applied"),
            0u);
  EXPECT_EQ(StateOf(b).size(), 11u);
  EXPECT_EQ(StateOf(c).size(), 11u);
  for (Inr* inr : cluster.inrs()) {
    EXPECT_TRUE(inr->vspaces().store().CheckInvariants().ok()) << inr->address().ToString();
  }
}

TEST(ReplicationTest, JournalWraparoundFallsBackToSnapshotTransfer) {
  ClusterOptions options = ReplicatedOptions();
  // A tiny ring: the partition backlog below overflows it, so the healed
  // peer's cursor has fallen off and only a full snapshot can repair it.
  options.inr_template.replication.journal_capacity = 8;
  SimCluster cluster(options);
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);

  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=base]", svc->address()))});
  cluster.loop().RunFor(Seconds(2));
  ASSERT_TRUE(cluster.CheckReplicationConvergence().empty());

  cluster.Partition({{1, 10, SimCluster::kDsrHostIndex}, {2}});
  for (int i = 0; i < 30; ++i) {
    svc->Send(a->address(),
              Envelope{MessageBody(MakeAd("[service=bulk][id=" + std::to_string(i) + "]",
                                          svc->address(), 1,
                                          200 + static_cast<uint32_t>(i)))});
  }
  cluster.loop().RunFor(Seconds(8));
  cluster.Heal();

  auto took = cluster.MeasureReplicationConvergence(
      cluster.options().inr_template.discovery.update_interval);
  ASSERT_TRUE(took.has_value()) << cluster.CheckReplicationConvergence();
  EXPECT_GE(a->metrics().Counter("replication.snapshots_sent"), 1u);
  EXPECT_GE(b->metrics().Counter("replication.snapshots_applied"), 1u);
  EXPECT_EQ(StateOf(b).size(), 31u);
}

TEST(ReplicationTest, SnapshotTransferPurgesRecordsTheSenderNoLongerHas) {
  ClusterOptions options = ReplicatedOptions();
  options.inr_template.replication.journal_capacity = 8;
  SimCluster cluster(options);
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);

  for (int i = 0; i < 4; ++i) {
    svc->Send(a->address(),
              Envelope{MessageBody(MakeAd("[service=s][id=" + std::to_string(i) + "]",
                                          svc->address(), 1, static_cast<uint32_t>(i)))});
  }
  cluster.loop().RunFor(Seconds(2));
  ASSERT_EQ(StateOf(b).size(), 4u);

  // During the partition, a deletes two of the names AND journals enough
  // churn to overflow the 8-entry ring, so the tombstones themselves fall
  // off: after heal only a snapshot can repair b, and the snapshot's
  // replace-all semantics must purge the two records b never saw deleted.
  cluster.Partition({{1, 10, SimCluster::kDsrHostIndex}, {2}});
  ASSERT_TRUE(a->vspaces().store().Remove("", AnnouncerId{svc->address().ip, 1000, 0}));
  ASSERT_TRUE(a->vspaces().store().Remove("", AnnouncerId{svc->address().ip, 1000, 1}));
  for (int i = 0; i < 12; ++i) {
    svc->Send(a->address(),
              Envelope{MessageBody(MakeAd("[service=churn][id=" + std::to_string(i) + "]",
                                          svc->address(), 1,
                                          300 + static_cast<uint32_t>(i)))});
  }
  cluster.loop().RunFor(Seconds(8));
  cluster.Heal();

  auto took = cluster.MeasureReplicationConvergence(
      cluster.options().inr_template.discovery.update_interval);
  ASSERT_TRUE(took.has_value()) << cluster.CheckReplicationConvergence();
  EXPECT_GE(b->metrics().Counter("replication.snapshots_applied"), 1u);
  EXPECT_GE(b->metrics().Counter("replication.snapshot_purged"), 2u);
  EXPECT_EQ(StateOf(b).size(), 14u);  // 4 - 2 deleted + 12 churn
}

TEST(ReplicationTest, DeltaApplyIsIdempotent) {
  SimCluster cluster(ReplicatedOptions());
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();

  std::vector<NameUpdateEntry> entries;
  for (int i = 0; i < 3; ++i) {
    NameUpdateEntry e;
    e.name_text = "[service=idem][id=" + std::to_string(i) + "]";
    e.announcer = AnnouncerId{0x0a00000a, 1000, static_cast<uint32_t>(i)};
    e.endpoint.address = MakeAddress(10);
    e.lifetime_s = 45;
    e.version = 1;
    entries.push_back(std::move(e));
  }
  EXPECT_EQ(b->discovery().ApplyReplicatedEntries(a->address(), "", entries), 3u);
  const auto after_first = StateOf(b);
  // A retried chunk re-delivers the same entries: the version/next-hop rules
  // absorb them as refreshes — no state change, nothing re-propagated.
  EXPECT_EQ(b->discovery().ApplyReplicatedEntries(a->address(), "", entries), 0u);
  EXPECT_EQ(StateOf(b), after_first);
  EXPECT_EQ(after_first.size(), 3u);
}

TEST(ReplicationTest, DeltaApplyCommutesWithConcurrentLocalWrites) {
  // The same (replicated batch, local advertisement) pair applied in both
  // orders must land every resolver in the same announcer -> version state:
  // the version rules make replica application order-independent.
  auto run = [](bool replicated_first) {
    SimCluster cluster(ReplicatedOptions());
    Inr* a = cluster.AddInr(1);
    cluster.StabilizeTopology();
    auto svc = cluster.AddEndpoint(10);

    std::vector<NameUpdateEntry> batch;
    NameUpdateEntry stale;  // loses to the local version-2 advertisement
    stale.name_text = "[service=cam]";
    stale.announcer = AnnouncerId{svc->address().ip, 1000, 0};
    stale.endpoint.address = MakeAddress(99);
    stale.lifetime_s = 45;
    stale.version = 1;
    batch.push_back(stale);
    NameUpdateEntry fresh;  // disjoint announcer, applies either way
    fresh.name_text = "[service=other]";
    fresh.announcer = AnnouncerId{0x0a000063, 2000, 7};
    fresh.endpoint.address = MakeAddress(99);
    fresh.lifetime_s = 45;
    fresh.version = 3;
    batch.push_back(fresh);

    const NodeAddress peer = MakeAddress(99);
    auto local = [&] {
      svc->Send(a->address(),
                Envelope{MessageBody(MakeAd("[service=cam]", svc->address(), 2))});
      cluster.Settle();
    };
    if (replicated_first) {
      a->discovery().ApplyReplicatedEntries(peer, "", batch);
      local();
    } else {
      local();
      a->discovery().ApplyReplicatedEntries(peer, "", batch);
    }
    cluster.Settle();
    return StateOf(a);
  };

  const auto first = run(true);
  const auto second = run(false);
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first.at(AnnouncerId{0x0a00000a, 1000, 0}), 2u);
}

TEST(ReplicationTest, UnansweredTransferRetriesThenAborts) {
  SimCluster cluster(ReplicatedOptions());
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();

  // a goes silent, then b is handed a digest claiming a is ahead. The delta
  // request vanishes; the transfer must retry max_transfer_retries times on
  // the timeout cadence and then abort — never wedge in `awaiting`.
  const NodeAddress a_addr = a->address();
  cluster.CrashInr(a);
  JournalDigest forged;
  forged.from = a_addr;
  forged.items = {{"", 50}};
  b->replication().HandleDigest(a_addr, forged);
  EXPECT_TRUE(b->replication().TransferInFlight());

  cluster.loop().RunFor(Seconds(12));
  EXPECT_FALSE(b->replication().TransferInFlight());
  EXPECT_EQ(b->metrics().Counter("replication.transfer_retries"),
            static_cast<uint64_t>(b->replication().config().max_transfer_retries));
  EXPECT_EQ(b->metrics().Counter("replication.transfer_aborts"), 1u);
  // The applied cursor never moved: no data was acknowledged.
  EXPECT_EQ(b->replication().AppliedSerial(a_addr, ""), 0u);
}

TEST(ReplicationTest, NonNeighborDigestsAreIgnored) {
  SimCluster cluster(ReplicatedOptions());
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto rogue = cluster.AddEndpoint(20);

  JournalDigest forged;
  forged.from = rogue->address();
  forged.items = {{"", 1000}};
  rogue->Send(a->address(), Envelope{MessageBody(forged)});
  cluster.Settle();

  EXPECT_FALSE(a->replication().TransferInFlight());
  EXPECT_GE(a->metrics().Counter("replication.non_neighbor_messages"), 1u);
  EXPECT_EQ(a->metrics().Counter("replication.delta_requests_sent"), 0u);
}

TEST(ReplicationTest, ForgetPeerDropsPeerGaugesEagerly) {
  SimCluster cluster(ReplicatedOptions());
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", svc->address()))});
  cluster.loop().RunFor(Seconds(8));  // at least one digest round each way
  ASSERT_GE(a->metrics().Gauge("replication.peers"), 1);
  ASSERT_GE(a->metrics().Gauge("replication.peer_spaces"), 1);

  // Graceful removal closes the overlay edge at once; ForgetPeer must drop
  // the peer's lease from the gauges in the same instant — a dead neighbor
  // may never trigger another digest round to lazily correct them.
  cluster.RemoveInr(b);
  cluster.Settle(Seconds(1));
  EXPECT_EQ(a->metrics().Gauge("replication.peers"), 0);
  EXPECT_EQ(a->metrics().Gauge("replication.peer_spaces"), 0);
}

TEST(ReplicationTest, FlagOffKeepsSeedBehaviour) {
  // The default config must journal nothing, send no digests, and keep the
  // periodic refresh path exactly as the seed suite pins it elsewhere.
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", svc->address()))});
  cluster.loop().RunFor(Seconds(20));

  EXPECT_EQ(a->vspaces().store().journal(""), nullptr);
  EXPECT_EQ(a->metrics().Counter("replication.digests_sent"), 0u);
  EXPECT_EQ(b->metrics().Counter("replication.digests_received"), 0u);
  EXPECT_GT(a->metrics().Counter("discovery.periodic_updates_sent"), 0u);
}

}  // namespace
}  // namespace ins
