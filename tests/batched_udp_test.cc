// Tests for BatchedUdpTransport: batching counters, queue backpressure
// accounting, the oversize bypass, wire-format compatibility with
// UdpTransport, and the zero-allocation guarantee on the hot path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "ins/common/metrics.h"
#include "ins/transport/batched_udp_transport.h"
#include "ins/transport/udp_transport.h"

// --- Allocation-counting hook ------------------------------------------------
// The acceptance criterion "zero per-packet heap allocation on the batched
// send/receive hot path" is verified literally: this binary replaces global
// operator new and counts allocations while a test window is open.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_allocs{0};

void* CountedAlloc(size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace ins {
namespace {

struct AllocWindow {
  AllocWindow() {
    g_allocs.store(0);
    g_count_allocs.store(true);
  }
  ~AllocWindow() { g_count_allocs.store(false); }
  uint64_t count() const { return g_allocs.load(); }
};

TEST(BatchedUdpTest, RoundTripAndBatchingCounters) {
  RealEventLoop loop;
  BatchedUdpConfig config;
  config.batch_size = 8;
  auto a = BatchedUdpTransport::Bind(&loop, MakeAddress(1, 43411), config);
  auto b = BatchedUdpTransport::Bind(&loop, MakeAddress(2, 43412), config);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();

  MetricsRegistry tx_metrics;
  MetricsRegistry rx_metrics;
  (*a)->AttachMetrics(&tx_metrics);
  (*b)->AttachMetrics(&rx_metrics);

  int received = 0;
  NodeAddress from;
  Bytes last;
  (*b)->SetReceiveHandler([&](const NodeAddress& src, const Bytes& data) {
    ++received;
    from = src;
    last = data;
    if (received == 64) {
      loop.Stop();
    }
  });

  // 64 sends at batch_size 8: full batches flush inline, one sendmmsg each.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE((*a)->Send(MakeAddress(2, 43412), {1, 2, static_cast<uint8_t>(i)}).ok());
  }
  loop.RunFor(Seconds(5));

  EXPECT_EQ(received, 64);
  EXPECT_EQ(from, MakeAddress(1, 43411));
  EXPECT_EQ(last, (Bytes{1, 2, 63}));
  EXPECT_EQ(tx_metrics.Counter("transport.send.datagrams"), 64u);
  EXPECT_EQ(tx_metrics.Counter("transport.send.batches"), 8u);
  EXPECT_EQ(rx_metrics.Counter("transport.recv.datagrams"), 64u);
  // recvmmsg amortization: far fewer syscalls than datagrams.
  EXPECT_LT(rx_metrics.Counter("transport.recv.batches"), 64u);
}

TEST(BatchedUdpTest, WireFormatMatchesPlainUdpTransport) {
  // Both directions batched <-> plain: the frames must be interchangeable.
  RealEventLoop loop;
  auto batched = BatchedUdpTransport::Bind(&loop, MakeAddress(7, 43421));
  auto plain = UdpTransport::Bind(&loop, MakeAddress(8, 43422));
  ASSERT_TRUE(batched.ok() && plain.ok());

  Bytes got_at_plain;
  Bytes got_at_batched;
  NodeAddress src_at_plain;
  NodeAddress src_at_batched;
  (*plain)->SetReceiveHandler([&](const NodeAddress& src, const Bytes& data) {
    src_at_plain = src;
    got_at_plain = data;
    (*plain)->Send(MakeAddress(7, 43421), {4, 5, 6});
  });
  (*batched)->SetReceiveHandler([&](const NodeAddress& src, const Bytes& data) {
    src_at_batched = src;
    got_at_batched = data;
    loop.Stop();
  });

  ASSERT_TRUE((*batched)->Send(MakeAddress(8, 43422), {1, 2, 3}).ok());
  (*batched)->FlushNow();
  loop.RunFor(Seconds(5));

  EXPECT_EQ(got_at_plain, (Bytes{1, 2, 3}));
  EXPECT_EQ(src_at_plain, MakeAddress(7, 43421));
  EXPECT_EQ(got_at_batched, (Bytes{4, 5, 6}));
  EXPECT_EQ(src_at_batched, MakeAddress(8, 43422));
}

TEST(BatchedUdpTest, CoalescingTimerFlushesPartialBatch) {
  RealEventLoop loop;
  BatchedUdpConfig config;
  config.batch_size = 64;  // never reached: only the timer can flush
  config.flush_delay = Milliseconds(5);
  auto a = BatchedUdpTransport::Bind(&loop, MakeAddress(1, 43431), config);
  auto b = BatchedUdpTransport::Bind(&loop, MakeAddress(2, 43432));
  ASSERT_TRUE(a.ok() && b.ok());

  int received = 0;
  (*b)->SetReceiveHandler([&](const NodeAddress&, const Bytes&) {
    if (++received == 3) {
      loop.Stop();
    }
  });
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*a)->Send(MakeAddress(2, 43432), {9}).ok());
  }
  EXPECT_EQ((*a)->queued(), 3u);  // parked, waiting for the window
  loop.RunFor(Seconds(5));
  EXPECT_EQ(received, 3);
  EXPECT_EQ((*a)->queued(), 0u);
}

TEST(BatchedUdpTest, QueueOverflowIsTypedAndCounted) {
  // Throttle the pacer so nothing drains, then flood past max_queue: every
  // rejected datagram must surface as kResourceExhausted AND be counted, and
  // accepted = queued + sent must hold exactly (no silent loss).
  RealEventLoop loop;
  BatchedUdpConfig config;
  config.batch_size = 16;
  config.max_queue = 64;
  config.pacer.enabled = true;
  config.pacer.rate_bytes_per_sec = 1;  // effectively frozen
  config.pacer.burst_bytes = 1;
  config.pacer.pacing_gain = 1.0;
  auto a = BatchedUdpTransport::Bind(&loop, MakeAddress(1, 43441), config);
  ASSERT_TRUE(a.ok());
  MetricsRegistry metrics;
  (*a)->AttachMetrics(&metrics);

  const int attempts = 500;
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < attempts; ++i) {
    Status s = (*a)->Send(MakeAddress(2, 43442), {1, 2, 3, 4});
    if (s.ok()) {
      ++accepted;
    } else {
      ASSERT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 64);
  EXPECT_EQ(rejected, attempts - 64);
  EXPECT_EQ(metrics.Counter("transport.drop.backpressure"),
            static_cast<uint64_t>(rejected));
  EXPECT_EQ(metrics.Counter("transport.send.datagrams") + (*a)->queued(),
            static_cast<uint64_t>(accepted));
  EXPECT_GE(metrics.Counter("transport.pacer.delays"), 1u);
}

TEST(BatchedUdpTest, OversizeFramesBypassTheRing) {
  RealEventLoop loop;
  auto a = BatchedUdpTransport::Bind(&loop, MakeAddress(1, 43451));
  auto b = BatchedUdpTransport::Bind(&loop, MakeAddress(2, 43452));
  ASSERT_TRUE(a.ok() && b.ok());
  MetricsRegistry metrics;
  (*a)->AttachMetrics(&metrics);

  size_t got = 0;
  (*b)->SetReceiveHandler([&](const NodeAddress&, const Bytes& data) {
    got = data.size();
    loop.Stop();
  });

  Bytes big(10'000, 0xAB);  // > kTxSlotBytes, < max datagram
  ASSERT_TRUE((*a)->Send(MakeAddress(2, 43452), big).ok());
  loop.RunFor(Seconds(5));
  EXPECT_EQ(got, 10'000u);
  EXPECT_EQ(metrics.Counter("transport.send.oversize_direct"), 1u);

  Bytes too_big(70'000, 0);
  EXPECT_EQ((*a)->Send(MakeAddress(2, 43452), too_big).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(metrics.Counter("transport.drop.oversize"), 1u);
}

TEST(BatchedUdpTest, HotPathDoesNotAllocate) {
  RealEventLoop loop;
  BatchedUdpConfig config;
  config.batch_size = 16;
  auto a = BatchedUdpTransport::Bind(&loop, MakeAddress(1, 43461), config);
  auto b = BatchedUdpTransport::Bind(&loop, MakeAddress(2, 43462), config);
  ASSERT_TRUE(a.ok() && b.ok());

  int received = 0;
  int target = 0;
  (*b)->SetReceiveHandler([&](const NodeAddress&, const Bytes& data) {
    received += static_cast<int>(data.size() != 0);
    if (received >= target) {
      loop.Stop();
    }
  });
  Bytes payload(64, 0x5A);
  auto burst = [&](int datagrams) {
    target += datagrams;
    for (int i = 0; i < datagrams; ++i) {
      ASSERT_TRUE((*a)->Send(MakeAddress(2, 43462), payload).ok());
    }
    loop.RunFor(Seconds(5));
    ASSERT_EQ(received, target);
  };

  // Warm-up: grows the rx scratch capacity, faults in slots, pools timer
  // nodes, and warms the epoll dispatch path.
  burst(160);

  // Measured window: full batches flush inline from Send; receive drains
  // through recvmmsg into pooled buffers. Nothing may touch the heap.
  {
    AllocWindow window;
    burst(160);
    ASSERT_EQ(window.count(), 0u)
        << window.count() << " allocations on the batched hot path";
  }
}

}  // namespace
}  // namespace ins
