// Unit + property tests for the NameTree: graft, LOOKUP-NAME, soft-state
// expiry, invariants, and equivalence with the Matches() oracle.

#include <gtest/gtest.h>

#include <set>

#include "ins/name/matcher.h"
#include "ins/name/parser.h"
#include "ins/nametree/name_tree.h"
#include "ins/workload/namegen.h"

namespace ins {
namespace {

NameSpecifier P(const char* text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

AnnouncerId Id(uint32_t n) { return AnnouncerId{0x0a000000u + n, 1000, 0}; }

NameRecord Rec(uint32_t n, double metric = 0.0, TimePoint expires = Seconds(3600)) {
  NameRecord r;
  r.announcer = Id(n);
  r.endpoint.address = MakeAddress(n);
  r.endpoint.bindings.push_back({static_cast<uint16_t>(8000 + n), "udp"});
  r.app_metric = metric;
  r.expires = expires;
  r.version = 1;
  return r;
}

std::set<uint32_t> Ids(const std::vector<const NameRecord*>& recs) {
  std::set<uint32_t> out;
  for (const NameRecord* r : recs) {
    out.insert(r->announcer.ip - 0x0a000000u);
  }
  return out;
}

TEST(NameTreeTest, EmptyTree) {
  NameTree t;
  EXPECT_EQ(t.record_count(), 0u);
  EXPECT_TRUE(t.Lookup(P("[service=camera]")).empty());
  EXPECT_TRUE(t.Lookup(P("")).empty());
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(NameTreeTest, InsertAndExactLookup) {
  NameTree t;
  auto out = t.Upsert(P("[service=camera[id=a]][room=510]"), Rec(1));
  EXPECT_EQ(out.kind, NameTree::UpsertOutcome::kNew);
  EXPECT_EQ(t.record_count(), 1u);
  EXPECT_EQ(Ids(t.Lookup(P("[service=camera[id=a]][room=510]"))), std::set<uint32_t>{1});
  EXPECT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
}

TEST(NameTreeTest, LookupDistinguishesValues) {
  NameTree t;
  t.Upsert(P("[service=camera][room=510]"), Rec(1));
  t.Upsert(P("[service=camera][room=517]"), Rec(2));
  t.Upsert(P("[service=printer][room=510]"), Rec(3));

  EXPECT_EQ(Ids(t.Lookup(P("[room=510]"))), (std::set<uint32_t>{1, 3}));
  EXPECT_EQ(Ids(t.Lookup(P("[service=camera]"))), (std::set<uint32_t>{1, 2}));
  EXPECT_EQ(Ids(t.Lookup(P("[service=camera][room=510]"))), std::set<uint32_t>{1});
  EXPECT_TRUE(t.Lookup(P("[service=scanner]")).empty());
  EXPECT_TRUE(t.Lookup(P("[service=camera][room=520]")).empty());
}

TEST(NameTreeTest, EmptyQueryReturnsAllRecords) {
  NameTree t;
  t.Upsert(P("[a=1]"), Rec(1));
  t.Upsert(P("[b=2]"), Rec(2));
  EXPECT_EQ(Ids(t.Lookup(P(""))), (std::set<uint32_t>{1, 2}));
}

TEST(NameTreeTest, WildcardUnionsAcrossValues) {
  NameTree t;
  t.Upsert(P("[service=camera[id=a]]"), Rec(1));
  t.Upsert(P("[service=camera[id=b]]"), Rec(2));
  t.Upsert(P("[service=printer[id=c]]"), Rec(3));
  EXPECT_EQ(Ids(t.Lookup(P("[service=camera[id=*]]"))), (std::set<uint32_t>{1, 2}));
  EXPECT_EQ(Ids(t.Lookup(P("[service=*]"))), (std::set<uint32_t>{1, 2, 3}));
}

TEST(NameTreeTest, QueryPrefixMatchesDeeperAdvertisements) {
  NameTree t;
  t.Upsert(P("[service=camera[id=a][res=640x480]]"), Rec(1));
  // Query chain ends above the advertisement's leaves.
  EXPECT_EQ(Ids(t.Lookup(P("[service=camera]"))), std::set<uint32_t>{1});
}

TEST(NameTreeTest, AdvertisementPrefixMatchesDeeperQuery) {
  NameTree t;
  t.Upsert(P("[service=camera]"), Rec(1));           // general ad
  t.Upsert(P("[service=camera[id=b]]"), Rec(2));     // specific ad
  // LOOKUP-NAME unions records attached at interior value-nodes.
  EXPECT_EQ(Ids(t.Lookup(P("[service=camera[id=b]]"))), (std::set<uint32_t>{1, 2}));
  EXPECT_EQ(Ids(t.Lookup(P("[service=camera[id=zzz]]"))), std::set<uint32_t>{1});
}

TEST(NameTreeTest, UnknownQueryAttributeDoesNotConstrain) {
  NameTree t;
  t.Upsert(P("[service=camera]"), Rec(1));
  // `floor` appears nowhere in the tree: LOOKUP-NAME's Ta==null continue.
  EXPECT_EQ(Ids(t.Lookup(P("[service=camera][floor=9]"))), std::set<uint32_t>{1});
}

TEST(NameTreeTest, RangeQueries) {
  NameTree t;
  t.Upsert(P("[service=printer[load=2]]"), Rec(1));
  t.Upsert(P("[service=printer[load=7]]"), Rec(2));
  t.Upsert(P("[service=printer[load=5]]"), Rec(3));
  EXPECT_EQ(Ids(t.Lookup(P("[service=printer[load<5]]"))), std::set<uint32_t>{1});
  EXPECT_EQ(Ids(t.Lookup(P("[service=printer[load<=5]]"))), (std::set<uint32_t>{1, 3}));
  EXPECT_EQ(Ids(t.Lookup(P("[service=printer[load>5]]"))), std::set<uint32_t>{2});
  EXPECT_EQ(Ids(t.Lookup(P("[service=printer[load>=5]]"))), (std::set<uint32_t>{2, 3}));
}

TEST(NameTreeTest, IdenticalNamesFromDifferentAnnouncersCoexist) {
  NameTree t;
  t.Upsert(P("[service=camera][room=510]"), Rec(1));
  t.Upsert(P("[service=camera][room=510]"), Rec(2));
  EXPECT_EQ(t.record_count(), 2u);
  EXPECT_EQ(Ids(t.Lookup(P("[room=510]"))), (std::set<uint32_t>{1, 2}));
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(NameTreeTest, RefreshSameDataExtendsExpiry) {
  NameTree t;
  t.Upsert(P("[a=1]"), Rec(1, 0.0, Seconds(10)));
  NameRecord again = Rec(1, 0.0, Seconds(20));
  again.version = 2;
  auto out = t.Upsert(P("[a=1]"), again);
  EXPECT_EQ(out.kind, NameTree::UpsertOutcome::kRefreshed);
  EXPECT_EQ(t.Find(Id(1))->expires, Seconds(20));
  EXPECT_EQ(t.record_count(), 1u);
}

TEST(NameTreeTest, MetricChangeReportsChanged) {
  NameTree t;
  t.Upsert(P("[a=1]"), Rec(1, 5.0));
  NameRecord again = Rec(1, 2.0);
  again.version = 2;
  auto out = t.Upsert(P("[a=1]"), again);
  EXPECT_EQ(out.kind, NameTree::UpsertOutcome::kChanged);
  EXPECT_DOUBLE_EQ(t.Find(Id(1))->app_metric, 2.0);
}

TEST(NameTreeTest, StaleVersionIgnored) {
  NameTree t;
  NameRecord r = Rec(1, 5.0);
  r.version = 10;
  t.Upsert(P("[a=1]"), r);
  NameRecord stale = Rec(1, 99.0);
  stale.version = 3;
  auto out = t.Upsert(P("[a=1]"), stale);
  EXPECT_EQ(out.kind, NameTree::UpsertOutcome::kIgnored);
  EXPECT_DOUBLE_EQ(t.Find(Id(1))->app_metric, 5.0);
}

TEST(NameTreeTest, RenameImplementsServiceMobility) {
  NameTree t;
  t.Upsert(P("[service=camera][room=510]"), Rec(1));
  NameRecord moved = Rec(1);
  moved.version = 2;
  auto out = t.Upsert(P("[service=camera][room=520]"), moved);
  EXPECT_EQ(out.kind, NameTree::UpsertOutcome::kRenamed);
  EXPECT_TRUE(t.Lookup(P("[room=510]")).empty());
  EXPECT_EQ(Ids(t.Lookup(P("[room=520]"))), std::set<uint32_t>{1});
  EXPECT_EQ(t.record_count(), 1u);
  EXPECT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
}

TEST(NameTreeTest, RemoveDetachesAndPrunes) {
  NameTree t;
  t.Upsert(P("[service=camera[id=a]]"), Rec(1));
  t.Upsert(P("[service=camera[id=b]]"), Rec(2));
  EXPECT_TRUE(t.Remove(Id(1)));
  EXPECT_FALSE(t.Remove(Id(1)));
  EXPECT_EQ(Ids(t.Lookup(P("[service=camera[id=*]]"))), std::set<uint32_t>{2});
  EXPECT_TRUE(t.Remove(Id(2)));
  // Tree fully pruned.
  auto st = t.ComputeStats();
  EXPECT_EQ(st.attribute_nodes, 0u);
  EXPECT_EQ(st.value_nodes, 0u);
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(NameTreeTest, ExpireBeforeSweepsSoftState) {
  NameTree t;
  t.Upsert(P("[a=1]"), Rec(1, 0.0, Seconds(10)));
  t.Upsert(P("[b=2]"), Rec(2, 0.0, Seconds(30)));
  EXPECT_EQ(t.ExpireBefore(Seconds(20)), 1u);
  EXPECT_EQ(t.record_count(), 1u);
  EXPECT_EQ(t.Find(Id(1)), nullptr);
  EXPECT_NE(t.Find(Id(2)), nullptr);
  EXPECT_EQ(t.ExpireBefore(Seconds(20)), 0u);
  EXPECT_EQ(t.ExpireBefore(Seconds(31)), 1u);
  EXPECT_EQ(t.record_count(), 0u);
}

TEST(NameTreeTest, StatsTrackGrowthAndShrink) {
  NameTree t;
  auto empty = t.ComputeStats();
  t.Upsert(P("[service=camera[id=a]][room=510]"), Rec(1));
  auto one = t.ComputeStats();
  EXPECT_GT(one.bytes, empty.bytes);
  EXPECT_EQ(one.records, 1u);
  EXPECT_EQ(one.attribute_nodes, 3u);  // service, id, room
  EXPECT_EQ(one.value_nodes, 3u);      // camera, a, 510
  t.Remove(Id(1));
  auto back = t.ComputeStats();
  EXPECT_EQ(back.attribute_nodes, 0u);
  EXPECT_EQ(back.records, 0u);
}

TEST(NameTreeTest, DebugStringShowsStructure) {
  NameTree t;
  t.Upsert(P("[service=camera[id=a]]"), Rec(1));
  std::string s = t.DebugString();
  EXPECT_NE(s.find("service:"), std::string::npos);
  EXPECT_NE(s.find("= camera"), std::string::npos);
  EXPECT_NE(s.find("(1 record)"), std::string::npos);
}

// --- Property sweeps vs. the Matches() oracle. -----------------------------
//
// Per the semantics note on NameTree::Lookup, Figure-5 lookups over a
// superposed tree agree exactly with per-advertisement Matches() when
// advertisements are schema-complete (na == ra: every specifier carries every
// attribute at each level). When advertisements omit attributes that others
// advertise (na < ra), Lookup() is a subset of the Matches() oracle.

struct SweepParams {
  uint64_t seed;
  size_t num_names;
  UniformNameParams shape;
};

class LookupExactOracleTest : public ::testing::TestWithParam<SweepParams> {};

TEST_P(LookupExactOracleTest, SchemaCompleteLookupsMatchOracleExactly) {
  const SweepParams& sp = GetParam();
  ASSERT_EQ(sp.shape.na, sp.shape.ra) << "exact suite requires schema-complete ads";
  Rng rng(sp.seed);
  NameTree tree;
  std::vector<NameSpecifier> ads;
  for (size_t i = 0; i < sp.num_names; ++i) {
    NameSpecifier ad = GenerateUniformName(rng, sp.shape);
    tree.Upsert(ad, Rec(static_cast<uint32_t>(i + 1)));
    ads.push_back(std::move(ad));
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();

  for (int q = 0; q < 60; ++q) {
    NameSpecifier query;
    if (q % 3 == 0) {
      query = GenerateUniformName(rng, sp.shape);
    } else {
      const NameSpecifier& base = ads[rng.NextBelow(ads.size())];
      query = DeriveQuery(rng, base, 0.8, 0.3);
    }
    std::set<uint32_t> expected;
    for (size_t i = 0; i < ads.size(); ++i) {
      if (Matches(ads[i], query)) {
        expected.insert(static_cast<uint32_t>(i + 1));
      }
    }
    EXPECT_EQ(Ids(tree.Lookup(query)), expected)
        << "query: " << query.ToString() << "\ntree:\n"
        << tree.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LookupExactOracleTest,
    ::testing::Values(SweepParams{1, 20, {2, 3, 2, 3}},  // na == ra throughout
                      SweepParams{2, 50, {2, 3, 2, 3}},
                      SweepParams{3, 40, {1, 2, 1, 2}},
                      SweepParams{4, 30, {2, 5, 2, 2}},
                      SweepParams{5, 25, {3, 2, 3, 2}},
                      SweepParams{6, 10, {2, 3, 2, 4}},
                      SweepParams{7, 80, {2, 4, 2, 3}}));

class LookupSubsetOracleTest : public ::testing::TestWithParam<SweepParams> {};

TEST_P(LookupSubsetOracleTest, LookupIsSubsetOfOracleAndFindsTheBaseAd) {
  const SweepParams& sp = GetParam();
  Rng rng(sp.seed);
  NameTree tree;
  std::vector<NameSpecifier> ads;
  for (size_t i = 0; i < sp.num_names; ++i) {
    NameSpecifier ad = GenerateUniformName(rng, sp.shape);
    tree.Upsert(ad, Rec(static_cast<uint32_t>(i + 1)));
    ads.push_back(std::move(ad));
  }

  for (int q = 0; q < 80; ++q) {
    size_t base_index = rng.NextBelow(ads.size());
    NameSpecifier query = DeriveQuery(rng, ads[base_index], 0.8, 0.3);

    std::set<uint32_t> oracle;
    for (size_t i = 0; i < ads.size(); ++i) {
      if (Matches(ads[i], query)) {
        oracle.insert(static_cast<uint32_t>(i + 1));
      }
    }
    std::set<uint32_t> looked_up = Ids(tree.Lookup(query));

    // Figure-5 lookups never return a record the per-ad oracle rejects.
    for (uint32_t id : looked_up) {
      EXPECT_TRUE(oracle.count(id) > 0)
          << "lookup returned non-matching ad " << id << " for " << query.ToString();
    }
    // A query derived from an advertisement always finds that advertisement:
    // every constraint follows one of the base ad's own chains.
    EXPECT_TRUE(looked_up.count(static_cast<uint32_t>(base_index + 1)) > 0)
        << "query " << query.ToString() << " missed its base ad "
        << ads[base_index].ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LookupSubsetOracleTest,
    ::testing::Values(SweepParams{11, 20, {3, 3, 2, 3}},  // the paper's Fig-12 shape
                      SweepParams{12, 50, {3, 3, 2, 3}},
                      SweepParams{13, 40, {4, 2, 2, 2}},
                      SweepParams{14, 30, {4, 5, 2, 2}},
                      SweepParams{15, 25, {5, 2, 3, 2}},
                      SweepParams{16, 10, {3, 3, 2, 4}}));

TEST(NameTreeTest, SuperpositionFiltersAdsOmittingAKnownAttribute) {
  // The documented Figure-5 divergence, pinned as intended behaviour: once
  // any advertisement defines an attribute at a position, a query on that
  // attribute excludes sibling advertisements that omit it...
  NameTree t;
  t.Upsert(P("[service=camera]"), Rec(1));            // omits room
  t.Upsert(P("[room=510]"), Rec(2));                  // defines room
  EXPECT_EQ(Ids(t.Lookup(P("[room=510]"))), std::set<uint32_t>{2});
  // ...even though per-ad matching would admit the omitting ad:
  EXPECT_TRUE(Matches(P("[service=camera]"), P("[room=510]")));
  // Remove the defining ad and the same query no longer constrains.
  t.Remove(Id(2));
  EXPECT_EQ(Ids(t.Lookup(P("[room=510]"))), std::set<uint32_t>{1});
}

class ChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnTest, RandomChurnPreservesInvariants) {
  Rng rng(GetParam());
  NameTree tree;
  std::vector<std::pair<uint32_t, NameSpecifier>> live;
  uint64_t version = 1;
  for (int step = 0; step < 400; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.5 || live.empty()) {
      uint32_t id = static_cast<uint32_t>(rng.NextBelow(60)) + 1;
      NameSpecifier ad = GenerateUniformName(rng, {3, 3, 2, 2});
      NameRecord r = Rec(id);
      r.version = version++;
      tree.Upsert(ad, r);
      bool found = false;
      for (auto& [lid, lad] : live) {
        if (lid == id) {
          lad = ad;
          found = true;
        }
      }
      if (!found) {
        live.emplace_back(id, ad);
      }
    } else if (dice < 0.8) {
      size_t k = rng.NextBelow(live.size());
      tree.Remove(Id(live[k].first));
      live.erase(live.begin() + static_cast<long>(k));
    } else {
      // Random lookups mustn't disturb anything.
      tree.Lookup(GenerateUniformName(rng, {3, 3, 2, 2}));
    }
    if (step % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
      ASSERT_EQ(tree.record_count(), live.size());
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnTest, ::testing::Values(11, 22, 33, 44, 55));

// The expiry min-heap makes the soft-state sweep O(expired + stale), not
// O(records): expiring 1 record out of 100k must do one unit of work, and a
// no-op sweep must do zero (a single heap-front peek).
TEST(NameTreeTest, ExpirySweepTouchesOnlyDueRecords) {
  NameTree t;
  constexpr uint32_t kRecords = 100000;
  for (uint32_t i = 1; i <= kRecords; ++i) {
    NameSpecifier n;
    n.AddPath({{"unit", std::to_string(i)}});
    const TimePoint expires =
        i == 1 ? Seconds(10) : (i == 2 ? Seconds(100) : Seconds(1000000));
    ASSERT_EQ(t.Upsert(n, Rec(i, 0.0, expires)).kind, NameTree::UpsertOutcome::kNew);
  }
  EXPECT_EQ(t.ComputeStats().expiry_heap_entries, kRecords);

  // Exactly one record due: the sweep pops one heap entry and never looks at
  // the other 99999.
  const uint64_t before = t.expiry_scan_visits();
  EXPECT_EQ(t.ExpireBefore(Seconds(20)), 1u);
  EXPECT_EQ(t.expiry_scan_visits() - before, 1u);
  EXPECT_EQ(t.record_count(), kRecords - 1);
  EXPECT_EQ(t.ComputeStats().expiry_heap_entries, kRecords - 1);

  // Nothing due: no heap pops at all.
  EXPECT_EQ(t.ExpireBefore(Seconds(50)), 0u);
  EXPECT_EQ(t.expiry_scan_visits() - before, 1u);

  // A lease extension leaves the old heap entry behind as a stale marker;
  // sweeping past the OLD deadline visits just that marker, removes nothing,
  // and the record survives under its extended lease.
  ASSERT_TRUE(t.RefreshExpiry(Id(2), Seconds(1000000)));
  EXPECT_EQ(t.ComputeStats().expiry_heap_entries, kRecords);  // 99999 live + 1 stale
  const uint64_t before_stale = t.expiry_scan_visits();
  EXPECT_EQ(t.ExpireBefore(Seconds(200)), 0u);
  EXPECT_EQ(t.expiry_scan_visits() - before_stale, 1u);
  EXPECT_EQ(t.record_count(), kRecords - 1);
  EXPECT_NE(t.Find(Id(2)), nullptr);
  ASSERT_TRUE(t.CheckInvariants().ok()) << t.CheckInvariants();
}

}  // namespace
}  // namespace ins
