// Tests for the Camera application: request–response, subscriptions over
// intentional multicast, mobility, and INR-side frame caching.

#include <gtest/gtest.h>

#include "ins/apps/camera.h"
#include "ins/harness/cluster.h"

namespace ins {
namespace {

struct AppHost {
  AppHost(SimCluster* cluster, uint32_t host, NodeAddress inr)
      : socket(cluster->net().Bind(MakeAddress(host))) {
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster->dsr_address();
    client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
    client->Start();
  }
  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<InsClient> client;
};

struct CameraFixture {
  CameraFixture() {
    inr = cluster.AddInr(1);
    cluster.StabilizeTopology();
  }
  SimCluster cluster;
  Inr* inr;
};

TEST(CameraTest, RequestResponse) {
  CameraFixture f;
  AppHost cam_host(&f.cluster, 10, f.inr->address());
  AppHost view_host(&f.cluster, 20, f.inr->address());
  CameraTransmitter cam(cam_host.client.get(), "a", "510");
  cam.SetImage({1, 2, 3});
  CameraReceiver viewer(view_host.client.get(), "v1");
  f.cluster.Settle();

  Status status = InternalError("not called");
  Bytes image;
  viewer.RequestImage("510", /*allow_cached=*/false, [&](Status s, Bytes img) {
    status = s;
    image = std::move(img);
  });
  f.cluster.Settle();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(image, (Bytes{1, 2, 3}));
  EXPECT_EQ(cam.requests_served(), 1u);
}

TEST(CameraTest, RequestToEmptyRoomTimesOut) {
  CameraFixture f;
  AppHost view_host(&f.cluster, 20, f.inr->address());
  CameraReceiver viewer(view_host.client.get(), "v1");
  f.cluster.Settle();
  Status status;
  viewer.RequestImage("999", false, [&](Status s, Bytes) { status = s; });
  f.cluster.loop().RunFor(Seconds(5));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(CameraTest, SubscriptionDeliversToAllReceivers) {
  CameraFixture f;
  AppHost cam_host(&f.cluster, 10, f.inr->address());
  AppHost v1_host(&f.cluster, 20, f.inr->address());
  AppHost v2_host(&f.cluster, 21, f.inr->address());
  AppHost v3_host(&f.cluster, 22, f.inr->address());
  CameraTransmitter cam(cam_host.client.get(), "a", "510");
  CameraReceiver v1(v1_host.client.get(), "r1");
  CameraReceiver v2(v2_host.client.get(), "r2");
  CameraReceiver v3(v3_host.client.get(), "r3");
  v1.Subscribe("510");
  v2.Subscribe("510");
  v3.Subscribe("520");  // different room: must not receive
  f.cluster.Settle();

  int got1 = 0;
  int got2 = 0;
  int got3 = 0;
  v1.on_frame = [&](const NameSpecifier&, const Bytes&) { ++got1; };
  v2.on_frame = [&](const NameSpecifier&, const Bytes&) { ++got2; };
  v3.on_frame = [&](const NameSpecifier&, const Bytes&) { ++got3; };

  cam.SetImage({9});
  cam.PublishToSubscribers();
  f.cluster.Settle();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 1);
  EXPECT_EQ(got3, 0);

  // Unsubscribed receivers stop getting frames.
  v2.Unsubscribe();
  f.cluster.Settle();
  cam.PublishToSubscribers();
  f.cluster.Settle();
  EXPECT_EQ(got1, 2);
  EXPECT_EQ(got2, 1);
}

TEST(CameraTest, ServiceMobilityMovesRoom) {
  CameraFixture f;
  AppHost cam_host(&f.cluster, 10, f.inr->address());
  AppHost view_host(&f.cluster, 20, f.inr->address());
  CameraTransmitter cam(cam_host.client.get(), "a", "510");
  cam.SetImage({5});
  CameraReceiver viewer(view_host.client.get(), "v1");
  f.cluster.Settle();

  cam.MoveToRoom("520");
  f.cluster.Settle();

  // Requests to the old room find nothing; the new room answers.
  Status old_status;
  viewer.RequestImage("510", false, [&](Status s, Bytes) { old_status = s; });
  Status new_status = InternalError("pending");
  Bytes image;
  viewer.RequestImage("520", false, [&](Status s, Bytes img) {
    new_status = s;
    image = std::move(img);
  });
  f.cluster.loop().RunFor(Seconds(5));
  EXPECT_EQ(old_status.code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(new_status.ok()) << new_status;
  EXPECT_EQ(image, Bytes{5});
}

TEST(CameraTest, CachedFrameAnsweredByInr) {
  CameraFixture f;
  AppHost cam_host(&f.cluster, 10, f.inr->address());
  AppHost sub_host(&f.cluster, 20, f.inr->address());
  AppHost view_host(&f.cluster, 21, f.inr->address());
  CameraTransmitter cam(cam_host.client.get(), "a", "510");
  cam.SetImage({0xaa, 0xbb});
  CameraReceiver subscriber(sub_host.client.get(), "s1");
  subscriber.Subscribe("510");
  CameraReceiver viewer(view_host.client.get(), "v1");
  f.cluster.Settle();

  // Publishing with a cache lifetime seeds the INR cache.
  cam.PublishToSubscribers(/*cache_lifetime_s=*/30);
  f.cluster.Settle();
  EXPECT_GT(f.inr->cache().size(), 0u);

  const uint64_t served_before = cam.requests_served();
  Status status = InternalError("pending");
  Bytes image;
  viewer.RequestImage("510", /*allow_cached=*/true, [&](Status s, Bytes img) {
    status = s;
    image = std::move(img);
  });
  f.cluster.Settle();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(image, (Bytes{0xaa, 0xbb}));
  // The camera never saw the request: the resolver answered from its cache.
  EXPECT_EQ(cam.requests_served(), served_before);
  EXPECT_EQ(f.inr->metrics().Counter("forwarding.cache_answers"), 1u);
}

TEST(CameraTest, SubscriptionWorksAcrossOverlay) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();

  AppHost cam_host(&cluster, 10, a->address());
  AppHost view_host(&cluster, 20, b->address());
  CameraTransmitter cam(cam_host.client.get(), "a", "510");
  CameraReceiver viewer(view_host.client.get(), "v1");
  viewer.Subscribe("510");
  cluster.loop().RunFor(Seconds(1));

  int frames = 0;
  viewer.on_frame = [&](const NameSpecifier&, const Bytes&) { ++frames; };
  cam.SetImage({1});
  cam.PublishToSubscribers();
  cluster.Settle();
  EXPECT_EQ(frames, 1);
}

}  // namespace
}  // namespace ins
