// Cross-application scenario tests: the three paper applications running
// together, interactions between subscriptions and mobility, multi-user
// printer contention, and Floorplan driving Camera/Printer by discovered
// names (the paper's "clicking an icon invokes the service" flow).

#include <gtest/gtest.h>

#include "ins/apps/camera.h"
#include "ins/apps/floorplan.h"
#include "ins/apps/printer.h"
#include "ins/client/mobility.h"
#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

struct AppHost {
  AppHost(SimCluster* cluster, uint32_t host, NodeAddress inr)
      : socket(cluster->net().Bind(MakeAddress(host))) {
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster->dsr_address();
    client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
    client->Start();
  }
  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<InsClient> client;
};

TEST(AppScenarioTest, SubscriptionFollowsCameraRoomMove) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  AppHost cam_host(&cluster, 10, inr->address());
  AppHost sub_host(&cluster, 20, inr->address());
  CameraTransmitter cam(cam_host.client.get(), "a", "510");
  CameraReceiver sub(sub_host.client.get(), "s");
  sub.Subscribe("510");
  cluster.Settle();

  int frames = 0;
  sub.on_frame = [&](const NameSpecifier&, const Bytes&) { ++frames; };
  cam.SetImage({1});
  cam.PublishToSubscribers();
  cluster.Settle();
  EXPECT_EQ(frames, 1);

  // The camera moves rooms; the subscriber (still on 510) stops receiving,
  // then re-subscribes to the new room and receives again.
  cam.MoveToRoom("520");
  cluster.Settle();
  cam.PublishToSubscribers();
  cluster.Settle();
  EXPECT_EQ(frames, 1);

  sub.Subscribe("520");
  cluster.Settle();
  cam.PublishToSubscribers();
  cluster.Settle();
  EXPECT_EQ(frames, 2);
}

TEST(AppScenarioTest, CameraNodeMobilityKeepsSubscriptionAlive) {
  // Node mobility (address change) must NOT break the group: the receiver's
  // subscription is by name, and the transmitter re-announces on move.
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  AppHost cam_host(&cluster, 10, inr->address());
  AppHost sub_host(&cluster, 20, inr->address());
  CameraTransmitter cam(cam_host.client.get(), "a", "510");
  MobilityManager mobility(&cluster.loop(), cam_host.client.get(),
                           [&](const NodeAddress& a) { return cam_host.socket->Rebind(a); });
  CameraReceiver sub(sub_host.client.get(), "s");
  sub.Subscribe("510");
  cluster.Settle();

  int frames = 0;
  sub.on_frame = [&](const NameSpecifier&, const Bytes&) { ++frames; };
  cam.SetImage({1});
  cam.PublishToSubscribers();
  cluster.Settle();
  ASSERT_EQ(frames, 1);

  ASSERT_TRUE(mobility.Move(MakeAddress(99)).ok());
  cluster.Settle();
  cam.PublishToSubscribers();
  cluster.Settle();
  EXPECT_EQ(frames, 2);
}

TEST(AppScenarioTest, FloorplanDrivenCameraFetch) {
  // The paper's flow: discover via Floorplan, click an icon, talk to the
  // service using the discovered name.
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  AppHost cam_host(&cluster, 10, inr->address());
  AppHost ui_host(&cluster, 20, inr->address());
  CameraTransmitter cam(cam_host.client.get(), "a", "510");
  cam.SetImage({0x11});
  FloorplanApp ui(ui_host.client.get(), "disp");
  CameraReceiver viewer(ui_host.client.get(), "disp-view");
  // NOTE: ui and viewer share a client; CameraReceiver's OnData takes over.
  // Floorplan discovery still works (it uses request/response messages).
  cluster.Settle();

  std::string discovered_room;
  ui.Refresh([&](Status s) {
    ASSERT_TRUE(s.ok());
    for (const auto& [key, icon] : ui.icons()) {
      // Pick the transmitter icon (the viewer's own receiver advertisement
      // is also a camera-service name, but carries no room).
      if (icon.service == "camera" && !icon.room.empty()) {
        discovered_room = icon.room;
      }
    }
  });
  cluster.Settle();
  ASSERT_EQ(discovered_room, "510");

  Bytes image;
  viewer.RequestImage(discovered_room, false, [&](Status s, Bytes img) {
    ASSERT_TRUE(s.ok()) << s;
    image = std::move(img);
  });
  cluster.Settle();
  EXPECT_EQ(image, Bytes{0x11});
}

TEST(AppScenarioTest, TwoUsersShareThePrinterPool) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  AppHost p1_host(&cluster, 10, inr->address());
  AppHost p2_host(&cluster, 11, inr->address());
  AppHost alice_host(&cluster, 20, inr->address());
  AppHost bob_host(&cluster, 21, inr->address());
  PrinterSpooler::Options slow;
  slow.tick_interval = Seconds(600);
  PrinterSpooler p1(p1_host.client.get(), "lw1", "517", slow);
  PrinterSpooler p2(p2_host.client.get(), "lw2", "517", slow);
  PrinterClient alice(alice_host.client.get(), "alice");
  PrinterClient bob(bob_host.client.get(), "bob");
  cluster.Settle();

  for (int i = 0; i < 3; ++i) {
    alice.SubmitToBest("517", Bytes(5000, 'a'), [](Status, auto) {});
    cluster.Settle();
    bob.SubmitToBest("517", Bytes(5000, 'b'), [](Status, auto) {});
    cluster.Settle();
  }
  // Load spread across the pool regardless of submitting user.
  EXPECT_EQ(p1.queue().size() + p2.queue().size(), 6u);
  EXPECT_EQ(p1.queue().size(), 3u);
  EXPECT_EQ(p2.queue().size(), 3u);

  // All of both users' jobs are accounted for somewhere in the pool.
  int alice_jobs = 0;
  int bob_jobs = 0;
  for (const PrinterSpooler* p : {&p1, &p2}) {
    for (const PrintJob& j : p->queue()) {
      (j.user == "alice" ? alice_jobs : bob_jobs) += 1;
    }
  }
  EXPECT_EQ(alice_jobs, 3);
  EXPECT_EQ(bob_jobs, 3);
}

TEST(AppScenarioTest, AllThreeAppsCoexistOnOneOverlay) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();

  AppHost loc_host(&cluster, 10, a->address());
  LocatorService locator(loc_host.client.get());
  locator.AddMap("floor5", {1, 2, 3});
  AppHost cam_host(&cluster, 11, a->address());
  CameraTransmitter cam(cam_host.client.get(), "a", "510");
  cam.SetImage({0xee});
  AppHost prn_host(&cluster, 12, b->address());
  PrinterSpooler lw1(prn_host.client.get(), "lw1", "517");

  AppHost user_host(&cluster, 20, b->address());
  FloorplanApp ui(user_host.client.get(), "disp");
  cluster.loop().RunFor(Seconds(2));

  size_t icons = 0;
  ui.Refresh([&](Status s) {
    ASSERT_TRUE(s.ok());
    icons = ui.icons().size();
  });
  cluster.Settle();
  // Camera + printer + locator, discovered across the overlay.
  EXPECT_EQ(icons, 3u);

  Bytes map;
  ui.RequestMap("floor5", [&](Status s, Bytes m) {
    ASSERT_TRUE(s.ok()) << s;
    map = std::move(m);
  });
  cluster.Settle();
  EXPECT_EQ(map, (Bytes{1, 2, 3}));

  PrinterClient user(user_host.client.get(), "carol");
  // NOTE: PrinterClient replaces the shared client's OnData handler; the
  // FloorplanApp interactions above are complete, so this is safe.
  Status submit_status = InternalError("pending");
  user.SubmitToBest("517", Bytes(100, 'x'), [&](Status s, auto) { submit_status = s; });
  cluster.Settle();
  EXPECT_TRUE(submit_status.ok()) << submit_status;
  EXPECT_EQ(lw1.queue().size(), 1u);
}

}  // namespace
}  // namespace ins
