// Protocol-detail tests for name dissemination: split horizon, the
// distance-vector acceptance rules, metric-jitter damping, and update-storm
// hygiene. These pin behaviours that only show up as counter patterns, not
// as end-state.

#include <gtest/gtest.h>

#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

Advertisement MakeAd(const std::string& name_text, const NodeAddress& endpoint,
                     uint64_t version = 1) {
  Advertisement ad;
  ad.name_text = name_text;
  ad.announcer = AnnouncerId{endpoint.ip, 1000, 0};
  ad.endpoint.address = endpoint;
  ad.lifetime_s = 45;
  ad.version = version;
  return ad;
}

NameUpdate MakeUpdate(const std::string& name_text, uint32_t announcer_host,
                      double route_metric, uint64_t version,
                      const NodeAddress& endpoint) {
  NameUpdate u;
  NameUpdateEntry e;
  e.name_text = name_text;
  e.announcer = AnnouncerId{0x0a000000u + announcer_host, 1000, 0};
  e.endpoint.address = endpoint;
  e.route_metric = route_metric;
  e.lifetime_s = 45;
  e.version = version;
  u.entries.push_back(std::move(e));
  return u;
}

TEST(DiscoveryProtocolTest, SplitHorizonNeverEchoesToSource) {
  // Two resolvers; a name advertised at a. The triggered and periodic
  // updates from b must never carry that name back to a.
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", svc->address()))});

  // Two periodic intervals (within the 45 s advertisement lifetime): b
  // refreshes the route from a's updates but never advertises it back.
  cluster.loop().RunFor(Seconds(35));
  // a's record must still be the locally attached one, never overwritten by
  // a bounced remote route.
  auto recs = a->vspaces().Tree("")->Lookup(*ParseNameSpecifier("[service=camera]"));
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0]->route.IsLocal());
  // And b sent periodic updates, all of them empty of that name (entries
  // sent counter counts entries; b learned 1 name and must export 0).
  EXPECT_EQ(b->metrics().Counter("discovery.update_entries_sent"), 0u);
}

TEST(DiscoveryProtocolTest, LocalRecordsWinOverSameVersionEchoes) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  auto rogue = cluster.AddEndpoint(11);
  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", svc->address(), 5))});
  cluster.Settle();

  // A same-version remote claim for the same announcer must not displace
  // the locally attached record.
  rogue->Send(a->address(), Envelope{MessageBody(MakeUpdate(
      "[service=camera]", 10, 3.0, 5, rogue->address()))});
  cluster.Settle();
  auto recs = a->vspaces().Tree("")->Lookup(*ParseNameSpecifier("[service=camera]"));
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0]->route.IsLocal());
  EXPECT_EQ(recs[0]->endpoint.address, svc->address());
}

TEST(DiscoveryProtocolTest, HigherVersionRemoteReplacesLocal) {
  // Service mobility across resolvers: the service re-announces elsewhere
  // with a higher version; the old resolver must accept the remote route.
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  svc->Send(a->address(), Envelope{MessageBody(MakeAd("[service=camera]", svc->address(), 1))});
  cluster.Settle();
  ASSERT_TRUE(a->vspaces().Tree("")->AllRecords()[0]->route.IsLocal());

  // Same announcer re-attaches at b with version 2.
  svc->Send(b->address(), Envelope{MessageBody(MakeAd("[service=camera]", svc->address(), 2))});
  cluster.loop().RunFor(Seconds(2));
  auto at_a = a->vspaces().Tree("")->AllRecords();
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_FALSE(at_a[0]->route.IsLocal());
  EXPECT_EQ(at_a[0]->route.next_hop_inr, b->address());
  EXPECT_EQ(at_a[0]->version, 2u);
}

TEST(DiscoveryProtocolTest, BetterPathSameVersionAdopted) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto peer1 = cluster.AddEndpoint(11);
  auto peer2 = cluster.AddEndpoint(12);

  peer1->Send(a->address(), Envelope{MessageBody(MakeUpdate(
      "[service=camera]", 30, 500.0, 1, MakeAddress(30)))});
  cluster.Settle();
  auto recs = a->vspaces().Tree("")->AllRecords();
  ASSERT_EQ(recs.size(), 1u);
  double first_metric = recs[0]->route.overlay_metric;
  EXPECT_EQ(recs[0]->route.next_hop_inr, peer1->address());

  // A much better same-version path arrives from elsewhere: adopt.
  peer2->Send(a->address(), Envelope{MessageBody(MakeUpdate(
      "[service=camera]", 30, 1.0, 1, MakeAddress(30)))});
  cluster.Settle();
  recs = a->vspaces().Tree("")->AllRecords();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0]->route.next_hop_inr, peer2->address());
  EXPECT_LT(recs[0]->route.overlay_metric, first_metric);

  // A worse same-version path from a third party is ignored.
  peer1->Send(a->address(), Envelope{MessageBody(MakeUpdate(
      "[service=camera]", 30, 800.0, 1, MakeAddress(30)))});
  cluster.Settle();
  EXPECT_EQ(a->vspaces().Tree("")->AllRecords()[0]->route.next_hop_inr, peer2->address());
}

TEST(DiscoveryProtocolTest, MetricJitterDoesNotTriggerUpdateStorms) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  (void)b;  // b exists so a has a neighbor to (not) trigger towards
  cluster.StabilizeTopology();
  auto peer = cluster.AddEndpoint(11);

  peer->Send(a->address(), Envelope{MessageBody(MakeUpdate(
      "[service=camera]", 30, 100.0, 1, MakeAddress(30)))});
  cluster.Settle();
  uint64_t triggered_before = a->metrics().Counter("discovery.triggered_updates_sent");

  // Re-deliveries with ±2% metric drift (same version, same next hop) are
  // refreshes, not changes — no triggered updates to b.
  for (int i = 0; i < 10; ++i) {
    double jitter = 100.0 + (i % 2 == 0 ? 2.0 : -2.0);
    peer->Send(a->address(), Envelope{MessageBody(MakeUpdate(
        "[service=camera]", 30, jitter, 1, MakeAddress(30)))});
    cluster.Settle();
  }
  EXPECT_EQ(a->metrics().Counter("discovery.triggered_updates_sent"), triggered_before);

  // A real metric change (well beyond the 10% damping band, which is
  // relative to the total metric including the link cost) does propagate.
  peer->Send(a->address(), Envelope{MessageBody(MakeUpdate(
      "[service=camera]", 30, 3000.0, 1, MakeAddress(30)))});
  cluster.Settle();
  EXPECT_GT(a->metrics().Counter("discovery.triggered_updates_sent"), triggered_before);
}

TEST(DiscoveryProtocolTest, ZeroLifetimeEntriesIgnored) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto peer = cluster.AddEndpoint(11);
  NameUpdate u = MakeUpdate("[service=camera]", 30, 1.0, 1, MakeAddress(30));
  u.entries[0].lifetime_s = 0;  // stale on arrival
  peer->Send(a->address(), Envelope{MessageBody(u)});
  cluster.Settle();
  EXPECT_EQ(a->vspaces().Tree("")->record_count(), 0u);
}

TEST(DiscoveryProtocolTest, MalformedEntryDoesNotPoisonBatch) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto peer = cluster.AddEndpoint(11);
  NameUpdate u;
  u.entries.push_back(MakeUpdate("((broken((", 30, 1.0, 1, MakeAddress(30)).entries[0]);
  u.entries.push_back(MakeUpdate("[service=ok]", 31, 1.0, 1, MakeAddress(31)).entries[0]);
  peer->Send(a->address(), Envelope{MessageBody(u)});
  cluster.Settle();
  EXPECT_EQ(a->vspaces().Tree("")->record_count(), 1u);
  EXPECT_EQ(a->metrics().Counter("discovery.bad_update_entries"), 1u);
}

TEST(DiscoveryProtocolTest, PeriodicUpdatesRefreshRemoteExpiry) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  auto svc = cluster.AddEndpoint(10);
  // The service refreshes at a every 10 s (as InsClient would).
  Advertisement ad = MakeAd("[service=camera]", svc->address());
  for (int i = 0; i < 12; ++i) {
    ad.version++;
    svc->Send(a->address(), Envelope{MessageBody(ad)});
    cluster.loop().RunFor(Seconds(10));
    // b's copy must never expire: a's periodic/triggered updates keep it
    // alive even though the service never talks to b.
    ASSERT_EQ(b->vspaces().Tree("")->record_count(), 1u) << "at iteration " << i;
  }
}

}  // namespace
}  // namespace ins
