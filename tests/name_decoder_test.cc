// Memoized wire-text decoding: hits must be invisible (identical to a fresh
// parse), errors must not be cached, and eviction must never invalidate a
// result a caller still holds.

#include "ins/wire/name_decoder.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ins/common/rng.h"
#include "ins/name/parser.h"
#include "ins/workload/namegen.h"

namespace ins {
namespace {

TEST(NameDecoderTest, HitReturnsSameParseAsCold) {
  NameDecoder decoder;
  const std::string text = "[building=ne43 [floor=5]] [service=camera]";
  auto first = decoder.Decode(text);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(decoder.misses(), 1u);
  auto second = decoder.Decode(text);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(decoder.hits(), 1u);
  // Same memo entry, and equal to an unmemoized parse.
  EXPECT_EQ(first->get(), second->get());
  auto fresh = ParseNameSpecifier(text);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(**first == *fresh);
}

TEST(NameDecoderTest, ErrorsAreReturnedNotCached) {
  NameDecoder decoder;
  const std::string bad = "[building=ne43";  // unbalanced
  EXPECT_FALSE(decoder.Decode(bad).ok());
  EXPECT_FALSE(decoder.Decode(bad).ok());
  EXPECT_EQ(decoder.hits(), 0u);
  // A good name still decodes after the failures.
  EXPECT_TRUE(decoder.Decode("[service=printer]").ok());
}

TEST(NameDecoderTest, EvictionKeepsOutstandingResultsAlive) {
  // A 1-slot decoder: every distinct name evicts the previous one. Held
  // results must stay valid and correct regardless.
  NameDecoder decoder(1);
  Rng rng(5);
  std::vector<std::shared_ptr<const NameSpecifier>> held;
  std::vector<std::string> texts;
  for (int i = 0; i < 50; ++i) {
    texts.push_back(GenerateUniformName(rng, kPaperLookupParams).ToString());
    auto decoded = decoder.Decode(texts.back());
    ASSERT_TRUE(decoded.ok());
    held.push_back(*decoded);
  }
  for (size_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(held[i]->ToString(), texts[i]);
  }
}

TEST(NameDecoderTest, RepeatedForwardingWorkloadMostlyHits) {
  // The forwarding steady state: a handful of destination names re-decoded
  // per packet. After warmup the decoder must serve from the memo.
  NameDecoder decoder;
  Rng rng(9);
  std::vector<std::string> destinations;
  for (int i = 0; i < 8; ++i) {
    destinations.push_back(GenerateUniformName(rng, kPaperLookupParams).ToString());
  }
  for (int round = 0; round < 100; ++round) {
    for (const std::string& d : destinations) {
      ASSERT_TRUE(decoder.Decode(d).ok());
    }
  }
  // Direct-mapped slots may collide within the working set, so the exact
  // ratio is layout-dependent — but a stable single destination (the
  // forwarding common case) must hit every time after warmup.
  EXPECT_GT(decoder.hits(), decoder.misses());
  NameDecoder single;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(single.Decode(destinations[0]).ok());
  }
  EXPECT_EQ(single.hits(), 99u);
  EXPECT_EQ(single.misses(), 1u);
}

}  // namespace
}  // namespace ins
