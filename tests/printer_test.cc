// Tests for the Printer application: metric-driven load balancing via
// intentional anycast, queue listing, job removal with permissions, and
// error handling.

#include <gtest/gtest.h>

#include "ins/apps/printer.h"
#include "ins/harness/cluster.h"

namespace ins {
namespace {

struct AppHost {
  AppHost(SimCluster* cluster, uint32_t host, NodeAddress inr)
      : socket(cluster->net().Bind(MakeAddress(host))) {
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster->dsr_address();
    client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
    client->Start();
  }
  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<InsClient> client;
};

struct PrinterFixture {
  PrinterFixture() {
    inr = cluster.AddInr(1);
    cluster.StabilizeTopology();
  }
  SimCluster cluster;
  Inr* inr;
};

TEST(PrinterTest, SubmitToNamedPrinter) {
  PrinterFixture f;
  AppHost p_host(&f.cluster, 10, f.inr->address());
  AppHost u_host(&f.cluster, 20, f.inr->address());
  PrinterSpooler lw1(p_host.client.get(), "lw1", "517");
  PrinterClient user(u_host.client.get(), "alice");
  f.cluster.Settle();

  Status status = InternalError("pending");
  PrinterClient::SubmitResult result;
  user.SubmitToPrinter("lw1", Bytes(1000, 'x'), [&](Status s, auto r) {
    status = s;
    result = r;
  });
  f.cluster.Settle();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(result.printer_id, "lw1");
  EXPECT_EQ(lw1.queue().size(), 1u);
  EXPECT_EQ(lw1.queue().front().user, "alice");
  EXPECT_EQ(lw1.queue().front().size_bytes, 1000u);
}

TEST(PrinterTest, AnycastBalancesLoadAcrossPrinters) {
  PrinterFixture f;
  AppHost p1_host(&f.cluster, 10, f.inr->address());
  AppHost p2_host(&f.cluster, 11, f.inr->address());
  AppHost u_host(&f.cluster, 20, f.inr->address());
  // Slow printers so queues persist during the burst.
  PrinterSpooler::Options slow;
  slow.bytes_per_tick = 1;
  slow.tick_interval = Seconds(60);
  PrinterSpooler p1(p1_host.client.get(), "lw1", "517", slow);
  PrinterSpooler p2(p2_host.client.get(), "lw2", "517", slow);
  PrinterClient user(u_host.client.get(), "alice");
  f.cluster.Settle();

  // Submit a burst by location; each job changes the chosen printer's
  // metric, so anycast alternates rather than pile on one printer.
  int acks = 0;
  for (int i = 0; i < 6; ++i) {
    user.SubmitToBest("517", Bytes(10000, 'x'), [&](Status s, auto) {
      ASSERT_TRUE(s.ok()) << s;
      ++acks;
    });
    f.cluster.Settle();
  }
  EXPECT_EQ(acks, 6);
  EXPECT_EQ(p1.queue().size(), 3u);
  EXPECT_EQ(p2.queue().size(), 3u);
}

TEST(PrinterTest, ErroredPrinterAvoided) {
  PrinterFixture f;
  AppHost p1_host(&f.cluster, 10, f.inr->address());
  AppHost p2_host(&f.cluster, 11, f.inr->address());
  AppHost u_host(&f.cluster, 20, f.inr->address());
  PrinterSpooler::Options slow;
  slow.tick_interval = Seconds(600);  // keep queues stable during the test
  PrinterSpooler p1(p1_host.client.get(), "lw1", "517", slow);
  PrinterSpooler p2(p2_host.client.get(), "lw2", "517", slow);
  PrinterClient user(u_host.client.get(), "alice");
  f.cluster.Settle();

  p1.SetError(true);  // out of paper: huge metric penalty
  f.cluster.Settle();
  for (int i = 0; i < 3; ++i) {
    user.SubmitToBest("517", Bytes(100, 'x'), [](Status, auto) {});
    f.cluster.Settle();
  }
  EXPECT_EQ(p1.queue().size(), 0u);
  EXPECT_EQ(p2.queue().size(), 3u);

  // Paper fixed; p1 becomes attractive again.
  p1.SetError(false);
  f.cluster.Settle();
  user.SubmitToBest("517", Bytes(100, 'x'), [](Status, auto) {});
  f.cluster.Settle();
  EXPECT_EQ(p1.queue().size(), 1u);
}

TEST(PrinterTest, JobsDrainOverTime) {
  PrinterFixture f;
  AppHost p_host(&f.cluster, 10, f.inr->address());
  AppHost u_host(&f.cluster, 20, f.inr->address());
  PrinterSpooler::Options fast;
  fast.bytes_per_tick = 1000;
  fast.tick_interval = Seconds(1);
  PrinterSpooler lw1(p_host.client.get(), "lw1", "517", fast);
  PrinterClient user(u_host.client.get(), "alice");
  f.cluster.Settle();

  user.SubmitToPrinter("lw1", Bytes(2500, 'x'), [](Status, auto) {});
  f.cluster.Settle();
  ASSERT_EQ(lw1.queue().size(), 1u);
  f.cluster.loop().RunFor(Seconds(4));
  EXPECT_EQ(lw1.queue().size(), 0u);
  EXPECT_EQ(lw1.jobs_completed(), 1u);
  EXPECT_DOUBLE_EQ(lw1.current_metric(), 0.0);
}

TEST(PrinterTest, ListJobsShowsQueue) {
  PrinterFixture f;
  AppHost p_host(&f.cluster, 10, f.inr->address());
  AppHost u_host(&f.cluster, 20, f.inr->address());
  PrinterSpooler::Options slow;
  slow.tick_interval = Seconds(600);
  PrinterSpooler lw1(p_host.client.get(), "lw1", "517", slow);
  PrinterClient user(u_host.client.get(), "alice");
  f.cluster.Settle();

  user.SubmitToPrinter("lw1", Bytes(100, 'x'), [](Status, auto) {});
  f.cluster.Settle();
  user.SubmitToPrinter("lw1", Bytes(200, 'y'), [](Status, auto) {});
  f.cluster.Settle();

  std::vector<PrintJob> jobs;
  user.ListJobs("lw1", [&](Status s, auto j) {
    ASSERT_TRUE(s.ok()) << s;
    jobs = std::move(j);
  });
  f.cluster.Settle();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].user, "alice");
  EXPECT_EQ(jobs[1].size_bytes, 200u);
}

TEST(PrinterTest, RemoveJobRespectsOwnership) {
  PrinterFixture f;
  AppHost p_host(&f.cluster, 10, f.inr->address());
  AppHost alice_host(&f.cluster, 20, f.inr->address());
  AppHost bob_host(&f.cluster, 21, f.inr->address());
  PrinterSpooler::Options slow;
  slow.tick_interval = Seconds(600);
  PrinterSpooler lw1(p_host.client.get(), "lw1", "517", slow);
  PrinterClient alice(alice_host.client.get(), "alice");
  PrinterClient bob(bob_host.client.get(), "bob");
  f.cluster.Settle();

  uint64_t job_id = 0;
  alice.SubmitToPrinter("lw1", Bytes(100, 'x'), [&](Status, auto r) { job_id = r.job_id; });
  f.cluster.Settle();
  ASSERT_NE(job_id, 0u);

  // Bob cannot remove Alice's job.
  Status bob_status;
  bob.RemoveJob("lw1", job_id, [&](Status s) { bob_status = s; });
  f.cluster.Settle();
  EXPECT_EQ(bob_status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(lw1.queue().size(), 1u);

  // Alice can.
  Status alice_status = InternalError("pending");
  alice.RemoveJob("lw1", job_id, [&](Status s) { alice_status = s; });
  f.cluster.Settle();
  EXPECT_TRUE(alice_status.ok()) << alice_status;
  EXPECT_EQ(lw1.queue().size(), 0u);
}

TEST(PrinterTest, SubmitToMissingPrinterTimesOut) {
  PrinterFixture f;
  AppHost u_host(&f.cluster, 20, f.inr->address());
  PrinterClient user(u_host.client.get(), "alice");
  f.cluster.Settle();
  Status status;
  user.SubmitToPrinter("ghost", Bytes(10, 'x'), [&](Status s, auto) { status = s; });
  f.cluster.loop().RunFor(Seconds(5));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace ins
