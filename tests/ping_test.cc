// Tests for the INR-ping RTT agent.

#include <gtest/gtest.h>

#include "ins/harness/cluster.h"
#include "ins/overlay/ping.h"
#include "ins/sim/event_loop.h"

namespace ins {
namespace {

// Direct agent tests against a scripted responder.
struct PingFixture {
  sim::EventLoop loop;
  std::vector<std::pair<NodeAddress, Envelope>> sent;
  PingAgent agent{&loop, [this](const NodeAddress& dst, const Envelope& env) {
                    sent.emplace_back(dst, env);
                  }};

  // Simulates the target answering after `delay`.
  void AnswerLastPingAfter(Duration delay) {
    ASSERT_FALSE(sent.empty());
    auto [dst, env] = sent.back();
    const Ping& ping = std::get<Ping>(env.body);
    Pong pong = PingAgent::PongFor(ping);
    loop.ScheduleAfter(delay, [this, dst = dst, pong] { agent.HandlePong(dst, pong); });
  }
};

TEST(PingAgentTest, MeasuresRtt) {
  PingFixture f;
  std::optional<Duration> got;
  f.agent.SendPing(MakeAddress(2), Seconds(1), [&](std::optional<Duration> rtt) { got = rtt; });
  ASSERT_EQ(f.sent.size(), 1u);
  f.AnswerLastPingAfter(Milliseconds(12));
  f.loop.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, Milliseconds(12));
  EXPECT_EQ(f.agent.SmoothedRtt(MakeAddress(2)), Milliseconds(12));
}

TEST(PingAgentTest, TimesOut) {
  PingFixture f;
  std::optional<Duration> got = Milliseconds(999);
  bool called = false;
  f.agent.SendPing(MakeAddress(2), Milliseconds(100), [&](std::optional<Duration> rtt) {
    got = rtt;
    called = true;
  });
  f.loop.RunUntilIdle();
  EXPECT_TRUE(called);
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(f.agent.pending_count(), 0u);
}

TEST(PingAgentTest, LatePongAfterTimeoutIgnored) {
  PingFixture f;
  int calls = 0;
  f.agent.SendPing(MakeAddress(2), Milliseconds(10), [&](std::optional<Duration>) { ++calls; });
  auto [dst, env] = f.sent.back();
  Pong pong = PingAgent::PongFor(std::get<Ping>(env.body));
  f.loop.RunUntilIdle();  // timeout fires
  f.agent.HandlePong(dst, pong);
  EXPECT_EQ(calls, 1);
}

TEST(PingAgentTest, SmoothingBlendsSamples) {
  PingFixture f;
  f.agent.SendPing(MakeAddress(2), Seconds(1), [](std::optional<Duration>) {});
  f.AnswerLastPingAfter(Milliseconds(100));
  f.loop.RunUntilIdle();
  f.agent.SendPing(MakeAddress(2), Seconds(1), [](std::optional<Duration>) {});
  f.AnswerLastPingAfter(Milliseconds(20));
  f.loop.RunUntilIdle();
  // EWMA with alpha 0.25: 0.25*20 + 0.75*100 = 80 ms.
  EXPECT_EQ(f.agent.SmoothedRtt(MakeAddress(2)), Milliseconds(80));
}

TEST(PingAgentTest, UnknownPeerMetricIsLarge) {
  PingFixture f;
  EXPECT_FALSE(f.agent.SmoothedRtt(MakeAddress(5)).has_value());
  EXPECT_GE(f.agent.LinkMetricMs(MakeAddress(5)), 1000.0);
}

TEST(PingAgentTest, ConcurrentPingsMatchedByNonce) {
  PingFixture f;
  std::optional<Duration> a;
  std::optional<Duration> b;
  f.agent.SendPing(MakeAddress(2), Seconds(1), [&](std::optional<Duration> rtt) { a = rtt; });
  f.agent.SendPing(MakeAddress(3), Seconds(1), [&](std::optional<Duration> rtt) { b = rtt; });
  ASSERT_EQ(f.sent.size(), 2u);
  // Answer the second first.
  Pong pong_b = PingAgent::PongFor(std::get<Ping>(f.sent[1].second.body));
  Pong pong_a = PingAgent::PongFor(std::get<Ping>(f.sent[0].second.body));
  f.loop.ScheduleAfter(Milliseconds(5),
                       [&f, pong_b] { f.agent.HandlePong(MakeAddress(3), pong_b); });
  f.loop.ScheduleAfter(Milliseconds(9),
                       [&f, pong_a] { f.agent.HandlePong(MakeAddress(2), pong_a); });
  f.loop.RunUntilIdle();
  EXPECT_EQ(a, Milliseconds(9));
  EXPECT_EQ(b, Milliseconds(5));
}

// End-to-end over the simulated network: a live INR answers pings.
TEST(PingAgentTest, EndToEndAgainstLiveInr) {
  SimCluster cluster;
  cluster.net().SetDefaultLink({Milliseconds(3), 0, 0});
  cluster.AddInr(1);
  cluster.StabilizeTopology();

  auto client = cluster.AddEndpoint(50);
  PingAgent agent(&cluster.loop(), [&](const NodeAddress& dst, const Envelope& env) {
    client->Send(dst, env);
  });
  std::optional<Duration> rtt;
  // Pongs arrive at the endpoint; feed them to the agent.
  client->socket().SetReceiveHandler([&](const NodeAddress& src, const Bytes& data) {
    auto env = DecodeMessage(data);
    ASSERT_TRUE(env.ok());
    if (auto* pong = std::get_if<Pong>(&env->body)) {
      agent.HandlePong(src, *pong);
    }
  });
  agent.SendPing(MakeAddress(1), Seconds(1), [&](std::optional<Duration> r) { rtt = r; });
  cluster.Settle();
  ASSERT_TRUE(rtt.has_value());
  EXPECT_EQ(*rtt, Milliseconds(6));  // 3 ms each way
}

}  // namespace
}  // namespace ins
