// Robustness property tests on the wire codecs and the parser: random and
// mutated inputs must never crash, and valid inputs must round-trip. The
// resolvers sit on an open UDP port (§2: any device can talk to an INR), so
// decoder hardening is a correctness requirement, not a nicety.

#include <gtest/gtest.h>

#include "ins/name/parser.h"
#include "ins/wire/messages.h"
#include "ins/workload/namegen.h"

namespace ins {
namespace {

class WireFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzzTest, RandomBytesNeverCrashDecoder) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage(rng.NextBelow(300));
    for (uint8_t& b : garbage) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    auto result = DecodeMessage(garbage);  // must return, never crash
    (void)result;
  }
}

TEST_P(WireFuzzTest, TruncationsOfValidMessagesNeverCrash) {
  Rng rng(GetParam());
  NameUpdate update;
  update.vspace = "building";
  for (int i = 0; i < 4; ++i) {
    NameUpdateEntry e;
    e.name_text = GenerateSizedName(rng, 82).ToString();
    e.announcer = AnnouncerId{1, 2, static_cast<uint32_t>(i)};
    e.endpoint.address = MakeAddress(3);
    e.endpoint.bindings = {{80, "http"}, {554, "rtsp"}};
    e.lifetime_s = 45;
    update.entries.push_back(std::move(e));
  }
  Bytes valid = Encode(update);
  for (size_t len = 0; len < valid.size(); ++len) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(len));
    auto result = DecodeMessage(truncated);
    EXPECT_FALSE(result.ok()) << "truncation to " << len << " decoded";
  }
}

TEST_P(WireFuzzTest, SingleByteMutationsNeverCrash) {
  Rng rng(GetParam());
  Advertisement ad;
  ad.vspace = "v";
  ad.name_text = GenerateSizedName(rng, 82).ToString();
  ad.announcer = AnnouncerId{7, 8, 9};
  ad.endpoint.address = MakeAddress(3);
  ad.endpoint.bindings = {{80, "http"}};
  ad.lifetime_s = 45;
  Bytes valid = Encode(ad);
  for (int i = 0; i < 1000; ++i) {
    Bytes mutated = valid;
    size_t pos = rng.NextBelow(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    auto result = DecodeMessage(mutated);
    (void)result;  // ok() either way; just must not crash or over-read
  }
}

TEST_P(WireFuzzTest, RandomPacketsRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    Packet p;
    p.early_binding = rng.NextBool(0.3);
    p.deliver_all = rng.NextBool(0.3);
    p.answer_from_cache = rng.NextBool(0.2);
    p.hop_limit = static_cast<uint16_t>(rng.NextBelow(32));
    p.cache_lifetime_s = static_cast<uint32_t>(rng.NextBelow(1000));
    p.source_name = GenerateSizedName(rng, 40 + rng.NextBelow(80)).ToString();
    p.destination_name = GenerateSizedName(rng, 40 + rng.NextBelow(80)).ToString();
    p.payload = Bytes(rng.NextBelow(600), static_cast<uint8_t>(rng.NextU64()));
    auto decoded = DecodePacket(EncodePacket(p));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->source_name, p.source_name);
    EXPECT_EQ(decoded->destination_name, p.destination_name);
    EXPECT_EQ(decoded->payload, p.payload);
    EXPECT_EQ(decoded->hop_limit, p.hop_limit);
  }
}

TEST_P(WireFuzzTest, ParserNeverCrashesOnRandomText) {
  Rng rng(GetParam());
  const char alphabet[] = "[]=<>* \tabz019.-";
  for (int i = 0; i < 3000; ++i) {
    std::string text;
    size_t len = rng.NextBelow(120);
    for (size_t j = 0; j < len; ++j) {
      text.push_back(alphabet[rng.NextBelow(sizeof(alphabet) - 1)]);
    }
    auto result = ParseNameSpecifier(text);  // must return, never crash
    if (result.ok()) {
      // Anything accepted must survive a canonicalization round trip.
      auto again = ParseNameSpecifier(result->ToString());
      ASSERT_TRUE(again.ok()) << "'" << text << "' -> '" << result->ToString() << "'";
      EXPECT_EQ(*again, *result);
    }
  }
}

TEST_P(WireFuzzTest, GeneratedNamesAlwaysRoundTripThroughWireText) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    UniformNameParams shape{1 + rng.NextBelow(4), 1 + rng.NextBelow(4), 0, 1 + rng.NextBelow(4)};
    shape.na = 1 + rng.NextBelow(shape.ra);
    NameSpecifier n = GenerateUniformName(rng, shape);
    auto parsed = ParseNameSpecifier(n.ToString());
    ASSERT_TRUE(parsed.ok()) << n.ToString();
    EXPECT_EQ(*parsed, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ins
