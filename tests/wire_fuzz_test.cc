// Robustness property tests on the wire codecs and the parser: random and
// mutated inputs must never crash, and valid inputs must round-trip. The
// resolvers sit on an open UDP port (§2: any device can talk to an INR), so
// decoder hardening is a correctness requirement, not a nicety.

#include <gtest/gtest.h>

#include "ins/name/parser.h"
#include "ins/wire/messages.h"
#include "ins/workload/namegen.h"

namespace ins {
namespace {

class WireFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzzTest, RandomBytesNeverCrashDecoder) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage(rng.NextBelow(300));
    for (uint8_t& b : garbage) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    auto result = DecodeMessage(garbage);  // must return, never crash
    (void)result;
  }
}

TEST_P(WireFuzzTest, TruncationsOfValidMessagesNeverCrash) {
  Rng rng(GetParam());
  NameUpdate update;
  update.vspace = "building";
  for (int i = 0; i < 4; ++i) {
    NameUpdateEntry e;
    e.name_text = GenerateSizedName(rng, 82).ToString();
    e.announcer = AnnouncerId{1, 2, static_cast<uint32_t>(i)};
    e.endpoint.address = MakeAddress(3);
    e.endpoint.bindings = {{80, "http"}, {554, "rtsp"}};
    e.lifetime_s = 45;
    update.entries.push_back(std::move(e));
  }
  Bytes valid = Encode(update);
  for (size_t len = 0; len < valid.size(); ++len) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(len));
    auto result = DecodeMessage(truncated);
    EXPECT_FALSE(result.ok()) << "truncation to " << len << " decoded";
  }
}

TEST_P(WireFuzzTest, SingleByteMutationsNeverCrash) {
  Rng rng(GetParam());
  Advertisement ad;
  ad.vspace = "v";
  ad.name_text = GenerateSizedName(rng, 82).ToString();
  ad.announcer = AnnouncerId{7, 8, 9};
  ad.endpoint.address = MakeAddress(3);
  ad.endpoint.bindings = {{80, "http"}};
  ad.lifetime_s = 45;
  Bytes valid = Encode(ad);
  for (int i = 0; i < 1000; ++i) {
    Bytes mutated = valid;
    size_t pos = rng.NextBelow(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    auto result = DecodeMessage(mutated);
    (void)result;  // ok() either way; just must not crash or over-read
  }
}

TEST_P(WireFuzzTest, RandomPacketsRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    Packet p;
    p.early_binding = rng.NextBool(0.3);
    p.deliver_all = rng.NextBool(0.3);
    p.answer_from_cache = rng.NextBool(0.2);
    p.hop_limit = static_cast<uint16_t>(rng.NextBelow(32));
    p.cache_lifetime_s = static_cast<uint32_t>(rng.NextBelow(1000));
    p.source_name = GenerateSizedName(rng, 40 + rng.NextBelow(80)).ToString();
    p.destination_name = GenerateSizedName(rng, 40 + rng.NextBelow(80)).ToString();
    p.payload = Bytes(rng.NextBelow(600), static_cast<uint8_t>(rng.NextU64()));
    if (rng.NextBool(0.3)) {
      p.trace_id = rng.NextU64();  // sampled: header grows by the extension
    }
    auto decoded = DecodePacket(EncodePacket(p));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->source_name, p.source_name);
    EXPECT_EQ(decoded->destination_name, p.destination_name);
    EXPECT_EQ(decoded->payload, p.payload);
    EXPECT_EQ(decoded->hop_limit, p.hop_limit);
    EXPECT_EQ(decoded->trace_id, p.trace_id);
  }
}

TEST_P(WireFuzzTest, ParserNeverCrashesOnRandomText) {
  Rng rng(GetParam());
  const char alphabet[] = "[]=<>* \tabz019.-";
  for (int i = 0; i < 3000; ++i) {
    std::string text;
    size_t len = rng.NextBelow(120);
    for (size_t j = 0; j < len; ++j) {
      text.push_back(alphabet[rng.NextBelow(sizeof(alphabet) - 1)]);
    }
    auto result = ParseNameSpecifier(text);  // must return, never crash
    if (result.ok()) {
      // Anything accepted must survive a canonicalization round trip.
      auto again = ParseNameSpecifier(result->ToString());
      ASSERT_TRUE(again.ok()) << "'" << text << "' -> '" << result->ToString() << "'";
      EXPECT_EQ(*again, *result);
    }
  }
}

TEST_P(WireFuzzTest, GeneratedNamesAlwaysRoundTripThroughWireText) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    UniformNameParams shape{1 + rng.NextBelow(4), 1 + rng.NextBelow(4), 0, 1 + rng.NextBelow(4)};
    shape.na = 1 + rng.NextBelow(shape.ra);
    NameSpecifier n = GenerateUniformName(rng, shape);
    auto parsed = ParseNameSpecifier(n.ToString());
    ASSERT_TRUE(parsed.ok()) << n.ToString();
    EXPECT_EQ(*parsed, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest, ::testing::Values(1, 2, 3, 4, 5));

// --- Exhaustive corruption sweep ---------------------------------------------
//
// One valid instance of every control message type; every single-bit flip of
// every byte, and every truncation, must decode without crashing or
// over-reading (run under ASan/UBSan in CI). This is what the in-flight
// corruption the fault injector produces looks like on arrival.

std::vector<Bytes> EncodedSpecimens() {
  Rng rng(99);
  std::vector<Bytes> specimens;

  Packet p;
  p.hop_limit = 8;
  p.source_name = "[service=fuzz]";
  p.destination_name = GenerateSizedName(rng, 82).ToString();
  p.payload = {1, 2, 3};
  specimens.push_back(Encode(p));

  Advertisement ad;
  ad.vspace = "v";
  ad.name_text = GenerateSizedName(rng, 82).ToString();
  ad.announcer = AnnouncerId{7, 8, 9};
  ad.endpoint.address = MakeAddress(3);
  ad.endpoint.bindings = {{80, "http"}};
  ad.lifetime_s = 45;
  specimens.push_back(Encode(ad));

  NameUpdate update;
  update.vspace = "building";
  for (int i = 0; i < 2; ++i) {
    NameUpdateEntry e;
    e.name_text = GenerateSizedName(rng, 82).ToString();
    e.announcer = AnnouncerId{1, 2, static_cast<uint32_t>(i)};
    e.endpoint.address = MakeAddress(3);
    e.endpoint.bindings = {{554, "rtsp"}};
    e.lifetime_s = 45;
    update.entries.push_back(std::move(e));
  }
  specimens.push_back(Encode(update));

  DiscoveryRequest dreq;
  dreq.request_id = 5;
  dreq.vspace = "cam";
  dreq.filter_text = "[service=camera]";
  dreq.reply_to = MakeAddress(9);
  specimens.push_back(Encode(dreq));

  DiscoveryResponse dresp;
  dresp.request_id = 5;
  dresp.vspace = "cam";
  dresp.items.push_back({"[service=camera[id=c1]]",
                         EndpointInfo{MakeAddress(4), {{554, "rtsp"}}}, 1.5});
  specimens.push_back(Encode(dresp));

  EarlyBindingResponse eb;
  eb.request_id = 6;
  eb.items.push_back({EndpointInfo{MakeAddress(4), {{80, "http"}}}, 0.5});
  specimens.push_back(Encode(eb));

  specimens.push_back(Encode(Ping{42, 123456}));
  specimens.push_back(Encode(Pong{42, 123456}));
  specimens.push_back(Encode(PeerRequest{MakeAddress(1)}));
  specimens.push_back(Encode(PeerAccept{MakeAddress(2)}));
  specimens.push_back(Encode(PeerClose{MakeAddress(3)}));

  DsrRegister reg;
  reg.inr = MakeAddress(4);
  reg.active = true;
  reg.vspaces = {"a", "b"};
  reg.lifetime_s = 60;
  specimens.push_back(Encode(reg));

  specimens.push_back(Encode(DsrListRequest{11}));

  DsrListResponse list;
  list.request_id = 11;
  list.active_inrs = {MakeAddress(1), MakeAddress(2)};
  list.join_orders = {1, 2};
  specimens.push_back(Encode(list));

  specimens.push_back(Encode(DsrVspaceRequest{12, "cam"}));
  specimens.push_back(Encode(DsrVspaceResponse{12, "cam", MakeAddress(2)}));
  specimens.push_back(Encode(DsrCandidatesRequest{13}));
  specimens.push_back(Encode(DsrCandidatesResponse{13, {MakeAddress(7)}}));
  specimens.push_back(Encode(SpawnRequest{MakeAddress(1), {"cam"}}));
  specimens.push_back(Encode(DelegateVspace{MakeAddress(1), "cam"}));
  specimens.push_back(Encode(DsrAssignmentsRequest{14, MakeAddress(2)}));
  specimens.push_back(Encode(DsrAssignmentsResponse{14, {"cam", "building"}}));
  specimens.push_back(Encode(PeerKeepalive{MakeAddress(3)}));

  MetricsRequest mreq;
  mreq.request_id = 15;
  mreq.reply_to = MakeAddress(9);
  specimens.push_back(Encode(mreq));

  MetricsResponse mresp;
  mresp.request_id = 15;
  mresp.inr = MakeAddress(1);
  mresp.counters = {{"forwarding.packets", 123}, {"forwarding.drop.no_match", 4}};
  mresp.gauges = {{"inr.names", 17}, {"admission.lag_us", -1}};
  MetricsResponse::HistogramItem h;
  h.name = "forwarding.lookup_us";
  h.sum = 900;
  h.min = 100;
  h.max = 500;
  h.buckets = {{7, 2}, {9, 1}};
  mresp.histograms.push_back(std::move(h));
  specimens.push_back(Encode(mresp));

  JournalDigest jd;
  jd.from = MakeAddress(1);
  jd.items = {{"", 42}, {"cam", 7}};
  specimens.push_back(Encode(jd));

  JournalDeltaRequest jreq;
  jreq.from = MakeAddress(2);
  jreq.vspace = "cam";
  jreq.after_serial = 7;
  specimens.push_back(Encode(jreq));

  JournalDeltaResponse jresp;
  jresp.from = MakeAddress(1);
  jresp.vspace = "cam";
  jresp.to_serial = 42;
  jresp.seq = 0;
  jresp.last = true;
  JournalDeltaResponse::Entry upsert;
  upsert.op = 0;
  upsert.name_text = GenerateSizedName(rng, 82).ToString();
  upsert.announcer = AnnouncerId{1, 2, 3};
  upsert.endpoint = EndpointInfo{MakeAddress(4), {{554, "rtsp"}}};
  upsert.app_metric = 1.5;
  upsert.route_metric = 3.25;
  upsert.lifetime_s = 45;
  upsert.version = 9;
  jresp.entries.push_back(std::move(upsert));
  JournalDeltaResponse::Entry tombstone;
  tombstone.op = 1;
  tombstone.announcer = AnnouncerId{1, 2, 4};
  jresp.entries.push_back(std::move(tombstone));
  specimens.push_back(Encode(jresp));

  specimens.push_back(Encode(DsrReplicaSetRequest{(1ull << 63) | 16, "cam"}));
  DsrReplicaSetResponse rset;
  rset.request_id = 16;
  rset.vspace = "cam";
  rset.replicas = {MakeAddress(1), MakeAddress(2)};
  rset.candidates = {MakeAddress(3)};
  specimens.push_back(Encode(rset));
  specimens.push_back(Encode(ReplicaInvite{MakeAddress(1), "cam"}));
  specimens.push_back(Encode(DsrDeadInrReport{MakeAddress(2), MakeAddress(1)}));

  MetricsDeltaRequest mdreq;
  mdreq.request_id = (1ull << 62) | 5;
  mdreq.reply_to = MakeAddress(9);
  mdreq.since_seq = 17;
  specimens.push_back(Encode(mdreq));

  MetricsDeltaResponse mdresp;
  mdresp.request_id = 5;
  mdresp.inr = MakeAddress(1);
  mdresp.seq = 18;
  mdresp.since_seq = 17;
  mdresp.full = false;
  mdresp.counters = {{"forwarding.delivered", 41}, {"lookup.requests", 1002}};
  mdresp.gauges = {{"topology.neighbors", 3}};
  MetricsResponse::HistogramItem dh;
  dh.name = "latency.stage.lookup";
  dh.sum = 1234;
  dh.min = 80;
  dh.max = 700;
  dh.buckets = {{6, 3}, {8, 2}};
  mdresp.histograms.push_back(std::move(dh));
  specimens.push_back(Encode(mdresp));

  // One specimen beyond the one-per-type set: a SAMPLED packet, whose
  // header carries the trace extension — the sweep must cover both layouts.
  Packet traced = p;
  traced.trace_id = 0xDEADBEEFCAFEF00Dull;
  specimens.push_back(Encode(traced));
  return specimens;
}

TEST(WireCorruptionSweepTest, EveryBitFlipOfEveryMessageTypeIsSafe) {
  std::vector<Bytes> specimens = EncodedSpecimens();
  // One specimen per message type plus the traced-packet variant.
  ASSERT_EQ(specimens.size(), std::variant_size_v<MessageBody> + 1);
  for (const Bytes& valid : specimens) {
    ASSERT_TRUE(DecodeMessage(valid).ok());
    for (size_t byte = 0; byte < valid.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        Bytes mutated = valid;
        mutated[byte] ^= static_cast<uint8_t>(1u << bit);
        auto result = DecodeMessage(mutated);
        (void)result;  // either verdict is fine; must not crash or over-read
      }
    }
  }
}

TEST(WireCorruptionSweepTest, EveryTruncationOfEveryMessageTypeIsRejected) {
  for (const Bytes& valid : EncodedSpecimens()) {
    for (size_t len = 0; len < valid.size(); ++len) {
      Bytes truncated(valid.begin(), valid.begin() + static_cast<long>(len));
      auto result = DecodeMessage(truncated);
      EXPECT_FALSE(result.ok()) << "truncation to " << len << " decoded";
    }
  }
}

}  // namespace
}  // namespace ins
