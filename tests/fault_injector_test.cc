#include "ins/sim/fault_injector.h"

#include <gtest/gtest.h>

#include "ins/sim/event_loop.h"
#include "ins/sim/network.h"

namespace ins::sim {
namespace {

// Two raw hosts with receive counters; links are lossless unless the
// injector says otherwise.
struct Rig {
  EventLoop loop;
  Network net{&loop, /*seed=*/1};
  FaultInjector faults{&net, /*seed=*/1};
  std::unique_ptr<Network::Socket> a{net.Bind(MakeAddress(1))};
  std::unique_ptr<Network::Socket> b{net.Bind(MakeAddress(2))};
  std::unique_ptr<Network::Socket> c{net.Bind(MakeAddress(3))};
  std::vector<Bytes> at_b;
  std::vector<Bytes> at_c;

  Rig() {
    b->SetReceiveHandler([this](const NodeAddress&, const Bytes& d) { at_b.push_back(d); });
    c->SetReceiveHandler([this](const NodeAddress&, const Bytes& d) { at_c.push_back(d); });
  }
};

TEST(FaultInjectorTest, PartitionDropsCrossGroupTraffic) {
  Rig rig;
  rig.faults.Partition({{MakeAddress(1).ip, MakeAddress(2).ip}, {MakeAddress(3).ip}});

  ASSERT_TRUE(rig.a->Send(MakeAddress(2), {1}).ok());
  ASSERT_TRUE(rig.a->Send(MakeAddress(3), {2}).ok());
  rig.loop.RunFor(Milliseconds(10));

  EXPECT_EQ(rig.at_b.size(), 1u);  // same side: delivered
  EXPECT_EQ(rig.at_c.size(), 0u);  // across the cut: dropped
  EXPECT_EQ(rig.faults.metrics().Counter("faults.partition_dropped"), 1);

  rig.faults.Heal();
  ASSERT_TRUE(rig.a->Send(MakeAddress(3), {3}).ok());
  rig.loop.RunFor(Milliseconds(10));
  EXPECT_EQ(rig.at_c.size(), 1u);
}

TEST(FaultInjectorTest, UnlistedHostsAreIsolated) {
  Rig rig;
  rig.faults.Partition({{MakeAddress(1).ip}});  // 2 and 3 unlisted

  ASSERT_TRUE(rig.a->Send(MakeAddress(2), {1}).ok());
  rig.loop.RunFor(Milliseconds(10));
  EXPECT_TRUE(rig.at_b.empty());
}

TEST(FaultInjectorTest, LossBurstDropsOnlyDuringWindow) {
  Rig rig;
  rig.faults.StartLossBurst(1.0, Milliseconds(100));

  ASSERT_TRUE(rig.a->Send(MakeAddress(2), {1}).ok());
  rig.loop.RunFor(Milliseconds(200));  // window over
  ASSERT_TRUE(rig.a->Send(MakeAddress(2), {2}).ok());
  rig.loop.RunFor(Milliseconds(10));

  ASSERT_EQ(rig.at_b.size(), 1u);
  EXPECT_EQ(rig.at_b[0], Bytes{2});
  EXPECT_EQ(rig.faults.metrics().Counter("faults.burst_dropped"), 1);
}

TEST(FaultInjectorTest, DelaySpikeAddsLatency) {
  Rig rig;
  rig.faults.StartDelaySpike(Milliseconds(50), Milliseconds(100));

  ASSERT_TRUE(rig.a->Send(MakeAddress(2), {1}).ok());
  rig.loop.RunFor(Milliseconds(10));  // past the 1 ms base latency
  EXPECT_TRUE(rig.at_b.empty());      // still in flight
  rig.loop.RunFor(Milliseconds(50));
  EXPECT_EQ(rig.at_b.size(), 1u);
  EXPECT_EQ(rig.faults.metrics().Counter("faults.delayed"), 1);
}

TEST(FaultInjectorTest, CorruptionStormMutatesPayloads) {
  Rig rig;
  rig.faults.StartCorruptionStorm(1.0, Seconds(10));

  const Bytes original(64, 0xAB);
  int mutated = 0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rig.a->Send(MakeAddress(2), original).ok());
  }
  rig.loop.RunFor(Milliseconds(10));
  ASSERT_EQ(rig.at_b.size(), 20u);
  for (const Bytes& got : rig.at_b) {
    if (got != original) {
      ++mutated;
    }
  }
  // Every datagram was corrupted (p=1): a bit flip or a truncation always
  // changes a non-empty payload.
  EXPECT_EQ(mutated, 20);
  EXPECT_EQ(rig.faults.metrics().Counter("faults.corrupted"), 20);
}

TEST(FaultInjectorTest, ScheduledPlanFiresAtVirtualTimes) {
  Rig rig;
  FaultPlan plan;
  plan.events.push_back({TimePoint(0) + Milliseconds(100),
                         FaultEvent::Kind::kPartition,
                         {{MakeAddress(1).ip}, {MakeAddress(2).ip}}});
  plan.events.push_back({TimePoint(0) + Milliseconds(300), FaultEvent::Kind::kHeal});
  rig.faults.Schedule(plan);

  ASSERT_TRUE(rig.a->Send(MakeAddress(2), {1}).ok());  // before the partition
  rig.loop.RunFor(Milliseconds(200));                  // now partitioned
  ASSERT_TRUE(rig.a->Send(MakeAddress(2), {2}).ok());
  rig.loop.RunFor(Milliseconds(200));                  // healed at 300 ms
  ASSERT_TRUE(rig.a->Send(MakeAddress(2), {3}).ok());
  rig.loop.RunFor(Milliseconds(10));

  ASSERT_EQ(rig.at_b.size(), 2u);
  EXPECT_EQ(rig.at_b[0], Bytes{1});
  EXPECT_EQ(rig.at_b[1], Bytes{3});
}

TEST(FaultInjectorTest, SameSeedSameFaultStream) {
  auto run = [](uint64_t seed) {
    EventLoop loop;
    Network net(&loop, seed);
    FaultInjector faults(&net, seed);
    auto a = net.Bind(MakeAddress(1));
    auto b = net.Bind(MakeAddress(2));
    uint64_t received = 0;
    b->SetReceiveHandler([&](const NodeAddress&, const Bytes&) { ++received; });
    faults.StartLossBurst(0.5, Seconds(10));
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(a->Send(MakeAddress(2), {static_cast<uint8_t>(i)}).ok());
    }
    loop.RunFor(Seconds(1));
    return received;
  };
  uint64_t r1 = run(9);
  uint64_t r2 = run(9);
  uint64_t r3 = run(10);
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r1, r3);  // overwhelmingly likely over 200 p=0.5 draws
  EXPECT_GT(r1, 0u);
  EXPECT_LT(r1, 200u);
}

}  // namespace
}  // namespace ins::sim
