// Tests for the NetworkMonitor app: intentional bootstrap off [service=netmon]
// advertisements, metrics polling over the wire, the cluster-wide report, and
// soft-state aging of resolvers that stop answering.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "ins/apps/netmon.h"
#include "ins/client/api.h"
#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

NameSpecifier P(const char* text) {
  auto r = ParseNameSpecifier(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return std::move(r).value();
}

struct ClientHarness {
  ClientHarness(SimCluster* cluster, uint32_t host, NodeAddress inr)
      : socket(cluster->net().Bind(MakeAddress(host))) {
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster->dsr_address();
    client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
    client->Start();
  }

  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<InsClient> client;
};

struct MonitorHarness {
  MonitorHarness(SimCluster* cluster, uint32_t host, NetworkMonitor::Options options)
      : socket(cluster->net().Bind(MakeAddress(host))),
        monitor(std::make_unique<NetworkMonitor>(&cluster->loop(), socket.get(),
                                                 std::move(options))) {}

  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<NetworkMonitor> monitor;
};

ClusterOptions AdvertisingOptions() {
  ClusterOptions options;
  options.inr_template.netmon.advertise = true;
  return options;
}

TEST(NetmonTest, DiscoversEveryResolverAndPollsSnapshots) {
  SimCluster cluster(AdvertisingOptions());
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(2));  // netmon self-ads propagate overlay-wide

  // Some real traffic so the polled counters are non-trivial: a client at `a`
  // reaches a service behind `b`.
  ClientHarness service(&cluster, 30, b->address());
  auto ad = service.client->Advertise(P("[service=camera]"));
  cluster.loop().RunFor(Seconds(3));
  ClientHarness user(&cluster, 20, a->address());
  cluster.Settle();
  ASSERT_TRUE(user.client->SendAnycast(P("[service=camera]"), {7}).ok());
  cluster.Settle();

  NetworkMonitor::Options options;
  options.inr = a->address();
  MonitorHarness mh(&cluster, 40, options);
  mh.monitor->PollOnce();
  cluster.Settle(Seconds(1));

  const auto& resolvers = mh.monitor->resolvers();
  ASSERT_EQ(resolvers.size(), 2u);
  ASSERT_TRUE(resolvers.count(a->address()));
  ASSERT_TRUE(resolvers.count(b->address()));
  EXPECT_GE(mh.monitor->snapshots_received(), 2u);

  // The polled snapshot carries `a`'s live counters and histograms over the
  // wire — including the lookup the data packet triggered.
  const MetricsSnapshot& snap = resolvers.at(a->address()).snapshot;
  EXPECT_GE(snap.counters.at("forwarding.packets"), 1u);
  EXPECT_GE(snap.counters.at("forwarding.lookups"), 1u);
  ASSERT_TRUE(snap.histograms.count("forwarding.lookup_us"));
  EXPECT_GE(snap.histograms.at("forwarding.lookup_us").count(), 1u);
  // Inventory gauges are refreshed when the snapshot leaves the node; `a`
  // knows at least the camera name plus the netmon self-advertisements.
  EXPECT_GE(snap.gauges.at("inr.names"), 2);

  // One row per resolver, with the key-counter and latency-quantile columns.
  const std::string report = mh.monitor->Report();
  EXPECT_NE(report.find("2 resolver(s)"), std::string::npos);
  EXPECT_NE(report.find(a->address().ToString()), std::string::npos);
  EXPECT_NE(report.find(b->address().ToString()), std::string::npos);
  EXPECT_NE(report.find("lookup_p99us"), std::string::npos);
  EXPECT_NE(report.find("delivered"), std::string::npos);
}

TEST(NetmonTest, AdvertisementIsOptInSoDefaultClustersStayInvisible) {
  SimCluster cluster;  // default: NetmonConfig.advertise == false
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(2));
  // The seed contract benches rely on: no self-advertisement in the tree.
  EXPECT_EQ(a->vspaces().Tree("")->record_count(), 0u);

  NetworkMonitor::Options options;
  options.inr = a->address();
  MonitorHarness mh(&cluster, 40, options);
  mh.monitor->PollOnce();
  cluster.Settle(Seconds(1));
  EXPECT_TRUE(mh.monitor->resolvers().empty());
  EXPECT_EQ(mh.monitor->snapshots_received(), 0u);
}

TEST(NetmonTest, ForgetsResolversThatStopAnswering) {
  SimCluster cluster(AdvertisingOptions());
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(2));

  NetworkMonitor::Options options;
  options.inr = a->address();
  options.poll_interval = Seconds(2);
  options.forget_after = Seconds(8);
  MonitorHarness mh(&cluster, 40, options);
  mh.monitor->Start();
  cluster.Settle(Seconds(1));
  ASSERT_EQ(mh.monitor->resolvers().size(), 2u);

  // `b` dies silently. Its netmon advertisement survives in `a`'s tree until
  // the soft-state lifetime runs out, so the monitor may briefly re-discover
  // it — but with no snapshots coming back, aging wins once the ad expires.
  cluster.CrashInr(b);
  cluster.loop().RunFor(Seconds(60));
  ASSERT_EQ(mh.monitor->resolvers().size(), 1u);
  EXPECT_TRUE(mh.monitor->resolvers().count(a->address()));
  // `a` keeps answering the whole time.
  EXPECT_NE(mh.monitor->Report().find(a->address().ToString()), std::string::npos);
  mh.monitor->Stop();
}

TEST(NetmonTest, AgesOutResolverCrashedMidPoll) {
  SimCluster cluster(AdvertisingOptions());
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(2));

  NetworkMonitor::Options options;
  options.inr = a->address();
  options.poll_interval = Seconds(2);
  options.forget_after = Seconds(8);
  MonitorHarness mh(&cluster, 40, options);
  mh.monitor->Start();
  cluster.Settle(Seconds(1));
  ASSERT_EQ(mh.monitor->resolvers().size(), 2u);
  const uint64_t a_messages_before =
      mh.monitor->resolvers().at(a->address()).snapshot.counters.at("inr.messages");

  // Crash `b` with the monitor's next MetricsRequest IN FLIGHT: PollOnce
  // fires the request, then the resolver dies before it can answer. The
  // monitor must not treat the never-answered poll as contact — `b` ages out
  // on schedule, and its stale counters leave the report instead of being
  // presented as a live row forever.
  const NodeAddress b_addr = b->address();
  mh.monitor->PollOnce();
  cluster.CrashInr(b);
  cluster.loop().RunFor(Seconds(60));

  ASSERT_EQ(mh.monitor->resolvers().size(), 1u);
  EXPECT_TRUE(mh.monitor->resolvers().count(a->address()));
  EXPECT_EQ(mh.monitor->resolvers().count(b_addr), 0u);
  const std::string report = mh.monitor->Report();
  EXPECT_NE(report.find("1 resolver(s)"), std::string::npos);
  EXPECT_EQ(report.find(b_addr.ToString()), std::string::npos);
  // The surviving resolver's row is live (still being re-polled), not a
  // leftover of the last poll before the crash.
  EXPECT_GT(mh.monitor->resolvers().at(a->address()).snapshot.counters.at("inr.messages"),
            a_messages_before);
  mh.monitor->Stop();
}

// --- Incremental (delta) polling ---------------------------------------------

TEST(NetmonDeltaTest, FirstPollIsFullThenDeltasReassembleTheSnapshot) {
  SimCluster cluster(AdvertisingOptions());
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(2));

  NetworkMonitor::Options options;
  options.inr = a->address();
  ASSERT_TRUE(options.delta_polling);  // incremental is the default
  MonitorHarness mh(&cluster, 40, options);

  mh.monitor->PollOnce();
  cluster.Settle(Seconds(1));
  EXPECT_EQ(mh.monitor->fulls_received(), 1u);
  EXPECT_EQ(mh.monitor->deltas_received(), 0u);
  ASSERT_EQ(mh.monitor->resolvers().size(), 1u);
  EXPECT_GT(mh.monitor->resolvers().at(a->address()).last_seq, 0u);

  // Subsequent polls ship only what changed, and the reassembled view stays
  // equal to what a full snapshot would say.
  for (int i = 0; i < 3; ++i) {
    mh.monitor->PollOnce();
    cluster.Settle(Seconds(1));
  }
  EXPECT_EQ(mh.monitor->fulls_received(), 1u);
  EXPECT_GE(mh.monitor->deltas_received(), 3u);
  const MetricsSnapshot& view = mh.monitor->resolvers().at(a->address()).snapshot;
  const MetricsSnapshot direct = a->metrics().Snapshot();
  for (const char* name : {"inr.messages", "inr.metrics_requests", "timeseries.samples"}) {
    EXPECT_EQ(view.counters.at(name), direct.counters.at(name)) << name;
  }
  // The ring sample is appended before the response that ships it is counted,
  // so the reassembled view trails the live counter by exactly the in-flight
  // response.
  EXPECT_EQ(view.counters.at("timeseries.delta_served") + 1,
            direct.counters.at("timeseries.delta_served"));
  EXPECT_GE(direct.counters.at("timeseries.delta_served"), 3u);
}

TEST(NetmonDeltaTest, BaselineEvictedFromTheRingFallsBackToFull) {
  ClusterOptions copts = AdvertisingOptions();
  copts.inr_template.metrics_timeseries_capacity = 4;  // tiny retained window
  SimCluster cluster(copts);
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(2));

  NetworkMonitor::Options options;
  options.inr = a->address();
  MonitorHarness slow(&cluster, 40, options);
  slow.monitor->PollOnce();
  cluster.Settle(Seconds(1));
  ASSERT_EQ(slow.monitor->fulls_received(), 1u);

  // A second, faster monitor appends enough samples to evict the slow
  // monitor's baseline from the resolver's 4-sample ring.
  MonitorHarness fast(&cluster, 41, options);
  for (int i = 0; i < 6; ++i) {
    fast.monitor->PollOnce();
    cluster.Settle(Seconds(1));
  }

  slow.monitor->PollOnce();
  cluster.Settle(Seconds(1));
  EXPECT_EQ(slow.monitor->fulls_received(), 2u);  // gap -> full, not a bogus delta
  EXPECT_GT(slow.monitor->resolvers().at(a->address()).last_seq, 1u);
}

TEST(NetmonDeltaTest, ResolverRestartResetsTheSequenceChain) {
  SimCluster cluster(AdvertisingOptions());
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(2));

  NetworkMonitor::Options options;
  options.inr = a->address();
  options.forget_after = Seconds(600);  // keep `b` known across its restart
  MonitorHarness mh(&cluster, 40, options);
  for (int i = 0; i < 2; ++i) {
    mh.monitor->PollOnce();
    cluster.Settle(Seconds(1));
  }
  ASSERT_EQ(mh.monitor->resolvers().size(), 2u);
  const NodeAddress b_addr = b->address();
  ASSERT_GE(mh.monitor->resolvers().at(b_addr).last_seq, 2u);

  // Restart `b`: its time-series ring starts over from sequence 1. The
  // monitor's stale baseline cannot chain onto the new incarnation — the
  // resolver answers full, and the monitor re-bases instead of merging
  // pre-restart counters with post-restart ones.
  cluster.CrashInr(b);
  cluster.loop().RunFor(Seconds(5));
  cluster.RestartInr(2);
  cluster.loop().RunFor(Seconds(10));
  const uint64_t fulls_before = mh.monitor->fulls_received();
  mh.monitor->PollOnce();
  cluster.Settle(Seconds(1));

  EXPECT_GT(mh.monitor->fulls_received(), fulls_before);
  const auto& b_status = mh.monitor->resolvers().at(b_addr);
  EXPECT_EQ(b_status.last_seq, 1u);  // re-based on the new incarnation
  // The reassembled view is the fresh node's, not an accretion of old state.
  EXPECT_LT(b_status.snapshot.counters.at("inr.messages"), 100u);
}

// --- SLO burn evaluation -----------------------------------------------------

NetworkMonitor::Options SloOptions(NodeAddress inr) {
  NetworkMonitor::Options options;
  options.inr = inr;
  options.poll_interval = Seconds(5);
  options.slo.enabled = true;
  options.slo.latency_target_us = 1000;
  options.slo.latency_budget = 0.01;
  options.slo.drop_budget = 0.01;
  options.slo.short_window = Seconds(30);
  options.slo.long_window = Seconds(120);
  options.slo.burn_threshold = 2.0;
  return options;
}

TEST(NetmonSloTest, SteadyTrafficStaysWithinBudget) {
  SimCluster cluster(AdvertisingOptions());
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(2));

  ClientHarness service(&cluster, 30, a->address());
  auto ad = service.client->Advertise(P("[service=camera]"));
  cluster.loop().RunFor(Seconds(3));
  ClientHarness user(&cluster, 20, a->address());
  cluster.Settle();

  MonitorHarness mh(&cluster, 40, SloOptions(a->address()));
  mh.monitor->Start();
  // Healthy traffic across several windows: every lookup resolves, nothing
  // drops, simulated lookups are far under the 1 ms target.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(user.client->SendAnycast(P("[service=camera]"), {1}).ok());
    cluster.loop().RunFor(Seconds(5));
  }
  EXPECT_TRUE(mh.monitor->ActiveAlerts().empty());
  const auto& status = mh.monitor->resolvers().at(a->address());
  EXPECT_LE(mh.monitor->GoodputBurn(status).short_burn, 1.0);
  mh.monitor->Stop();
}

TEST(NetmonSloTest, SustainedDropsTripTheGoodputBurnAlert) {
  SimCluster cluster(AdvertisingOptions());
  Inr* a = cluster.AddInr(1);
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(2));

  ClientHarness user(&cluster, 20, a->address());
  cluster.Settle();

  MonitorHarness mh(&cluster, 40, SloOptions(a->address()));
  mh.monitor->Start();
  // Every packet targets a name nobody advertised: 100% no_match drops, far
  // beyond the 1% budget, sustained across both burn windows.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(user.client->SendAnycast(P("[service=ghost]"), {1}).ok());
    cluster.loop().RunFor(Seconds(5));
  }
  std::vector<SloAlert> alerts = mh.monitor->ActiveAlerts();
  ASSERT_FALSE(alerts.empty());
  bool goodput = false;
  for (const SloAlert& alert : alerts) {
    if (alert.objective == "goodput" && alert.resolver == a->address()) {
      goodput = true;
      EXPECT_GT(alert.short_burn, 2.0);
      EXPECT_GT(alert.long_burn, 2.0);
    }
  }
  EXPECT_TRUE(goodput);
  // The report surfaces the alert for a human reader.
  const std::string report = mh.monitor->Report();
  EXPECT_NE(report.find("SLO"), std::string::npos);
  EXPECT_NE(report.find("goodput"), std::string::npos);
  mh.monitor->Stop();
}

}  // namespace
}  // namespace ins
