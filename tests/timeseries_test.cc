#include "ins/common/timeseries.h"

#include <gtest/gtest.h>

#include "ins/common/clock.h"
#include "ins/common/metrics.h"

namespace ins {
namespace {

TimePoint At(int64_t s) { return TimePoint{} + Seconds(s); }

MetricsSnapshot Snap(uint64_t lookups, int64_t depth = 0) {
  MetricsSnapshot s;
  s.counters["lookup.requests"] = lookups;
  s.gauges["admission.queue_depth"] = depth;
  return s;
}

TEST(MetricsTimeSeriesTest, SequencesStartAtOneAndGrow) {
  MetricsTimeSeries ts(4);
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_EQ(ts.newest_seq(), 0u);
  EXPECT_EQ(ts.Append(Snap(1), At(1)), 1u);
  EXPECT_EQ(ts.Append(Snap(2), At(2)), 2u);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.oldest_seq(), 1u);
  EXPECT_EQ(ts.newest_seq(), 2u);
}

TEST(MetricsTimeSeriesTest, AppendOverwritesOldestAtCapacity) {
  MetricsTimeSeries ts(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    ts.Append(Snap(i), At(static_cast<int64_t>(i)));
  }
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.oldest_seq(), 3u);
  EXPECT_EQ(ts.newest_seq(), 5u);
  EXPECT_EQ(ts.evicted(), 2u);
  EXPECT_EQ(ts.SampleAt(1), nullptr);
  EXPECT_EQ(ts.SampleAt(2), nullptr);
  ASSERT_NE(ts.SampleAt(3), nullptr);
  EXPECT_EQ(ts.SampleAt(3)->snapshot.counters.at("lookup.requests"), 3u);
  ASSERT_NE(ts.Newest(), nullptr);
  EXPECT_EQ(ts.Newest()->seq, 5u);
  EXPECT_EQ(ts.SampleAt(6), nullptr);  // never taken
}

TEST(MetricsTimeSeriesTest, NewestAtOrBefore) {
  MetricsTimeSeries ts(8);
  ts.Append(Snap(1), At(10));
  ts.Append(Snap(2), At(20));
  ts.Append(Snap(3), At(30));
  EXPECT_EQ(ts.NewestAtOrBefore(At(5)), nullptr);
  ASSERT_NE(ts.NewestAtOrBefore(At(20)), nullptr);
  EXPECT_EQ(ts.NewestAtOrBefore(At(20))->seq, 2u);
  EXPECT_EQ(ts.NewestAtOrBefore(At(25))->seq, 2u);
  EXPECT_EQ(ts.NewestAtOrBefore(At(99))->seq, 3u);
}

TEST(MetricsTimeSeriesTest, CounterRateAndDeltaOverWindow) {
  MetricsTimeSeries ts(16);
  ts.Append(Snap(100), At(0));
  ts.Append(Snap(150), At(5));
  ts.Append(Snap(400), At(10));
  // Window of 10 s opens at the t=0 sample: 300 increase over 10 s.
  EXPECT_EQ(ts.CounterDelta("lookup.requests", Seconds(10)), 300u);
  EXPECT_DOUBLE_EQ(ts.CounterRate("lookup.requests", Seconds(10)), 30.0);
  // Window of 5 s opens at the t=5 sample: 250 over 5 s.
  EXPECT_EQ(ts.CounterDelta("lookup.requests", Seconds(5)), 250u);
  EXPECT_DOUBLE_EQ(ts.CounterRate("lookup.requests", Seconds(5)), 50.0);
  // A window wider than history clamps to the oldest retained sample.
  EXPECT_EQ(ts.CounterDelta("lookup.requests", Seconds(1000)), 300u);
  // Absent counter reads as zero change.
  EXPECT_EQ(ts.CounterDelta("no.such.counter", Seconds(10)), 0u);
}

TEST(MetricsTimeSeriesTest, RateNeedsTwoSamples) {
  MetricsTimeSeries ts(4);
  EXPECT_DOUBLE_EQ(ts.CounterRate("lookup.requests", Seconds(10)), 0.0);
  ts.Append(Snap(100), At(0));
  EXPECT_DOUBLE_EQ(ts.CounterRate("lookup.requests", Seconds(10)), 0.0);
}

TEST(MetricsTimeSeriesTest, GaugeStatsOverWindow) {
  MetricsTimeSeries ts(8);
  ts.Append(Snap(1, 5), At(0));
  ts.Append(Snap(2, 12), At(5));
  ts.Append(Snap(3, 7), At(10));
  MetricsTimeSeries::GaugeStats g = ts.GaugeOver("admission.queue_depth", Seconds(10));
  EXPECT_EQ(g.samples, 3u);
  EXPECT_EQ(g.min, 5);
  EXPECT_EQ(g.max, 12);
  EXPECT_EQ(g.last, 7);
  EXPECT_EQ(ts.GaugeOver("absent", Seconds(10)).samples, 0u);
}

TEST(MetricsTimeSeriesTest, HistogramDeltaIsBucketwiseIncrease) {
  MetricsTimeSeries ts(8);
  MetricsSnapshot then;
  Histogram h1;
  h1.Record(3);
  h1.Record(100);
  then.histograms["lookup.latency_us"] = h1;
  ts.Append(then, At(0));

  MetricsSnapshot now = then;
  Histogram& h2 = now.histograms["lookup.latency_us"];
  h2.Record(3);
  h2.Record(7);
  ts.Append(now, At(10));

  Histogram delta = ts.HistogramDelta("lookup.latency_us", Seconds(10));
  EXPECT_EQ(delta.count(), 2u);  // only the two new recordings
  EXPECT_EQ(ts.HistogramDelta("absent", Seconds(10)).count(), 0u);
}

TEST(HistogramIncreaseTest, SubtractsCumulativeCounts) {
  Histogram then;
  then.Record(10);
  Histogram now = then;
  now.Record(10);
  now.Record(1000);
  Histogram inc = HistogramIncrease(now, then);
  EXPECT_EQ(inc.count(), 2u);
  // min/max clamp to populated bucket bounds — usable for interpolation.
  EXPECT_LE(inc.min(), 10u);
  EXPECT_GE(inc.max(), 1000u / 2);
}

TEST(MetricsTimeSeriesTest, ClearForgetsEverything) {
  MetricsTimeSeries ts(4);
  ts.Append(Snap(1), At(1));
  ts.Clear();
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_EQ(ts.Newest(), nullptr);
}

}  // namespace
}  // namespace ins
