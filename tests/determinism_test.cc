// Simulator determinism: identical seeds must produce bit-identical runs.
// The experiment harnesses (and any future regression bisection) depend on
// this property, so it gets its own test.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace ins {
namespace {

// Runs a small but busy scenario and returns a fingerprint of everything
// observable: metrics counters, tree contents, topology.
std::map<std::string, uint64_t> RunScenario(uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  options.default_link = {Milliseconds(3), 1e6, 0.02};  // loss + bandwidth on
  SimCluster cluster(options);
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(1));
  Inr* c = cluster.AddInr(3);
  cluster.StabilizeTopology(Seconds(60));

  auto svc = cluster.AddEndpoint(10);
  auto client = cluster.AddEndpoint(20);
  for (uint32_t i = 0; i < 6; ++i) {
    Advertisement ad;
    ad.name_text = "[service=sensor[id=s" + std::to_string(i) + "]]";
    ad.announcer = AnnouncerId{svc->address().ip, 1000, i};
    ad.endpoint.address = svc->address();
    ad.lifetime_s = 600;
    ad.version = 1;
    svc->Send(cluster.inrs()[i % 3]->address(), Envelope{MessageBody(ad)});
    cluster.loop().RunFor(Milliseconds(200));
  }
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.destination_name = "[service=sensor]";
    p.payload = {static_cast<uint8_t>(i)};
    client->Send(cluster.inrs()[static_cast<size_t>(i) % 3]->address(),
                 Envelope{MessageBody(p)});
    cluster.loop().RunFor(Milliseconds(100));
  }
  cluster.loop().RunFor(Seconds(30));

  std::map<std::string, uint64_t> fingerprint;
  int index = 0;
  for (Inr* inr : {a, b, c}) {
    std::string prefix = "inr" + std::to_string(index++) + ".";
    for (const auto& [name, value] : inr->metrics().counters()) {
      fingerprint[prefix + name] = value;
    }
    fingerprint[prefix + "names"] = inr->vspaces().Tree("")->record_count();
    fingerprint[prefix + "neighbors"] = inr->topology().NeighborAddresses().size();
    fingerprint[prefix + "now_us"] = static_cast<uint64_t>(cluster.loop().Now().count());
  }
  fingerprint["dropped"] = cluster.net().total_datagrams_dropped();
  return fingerprint;
}

TEST(DeterminismTest, SameSeedSameUniverse) {
  auto run1 = RunScenario(42);
  auto run2 = RunScenario(42);
  EXPECT_EQ(run1, run2);
}

TEST(DeterminismTest, DifferentSeedDiverges) {
  // With 2% loss, different seeds drop different packets; at least one
  // observable differs (this guards against the seed being ignored).
  auto run1 = RunScenario(1);
  auto run2 = RunScenario(2);
  EXPECT_NE(run1, run2);
}

}  // namespace
}  // namespace ins
