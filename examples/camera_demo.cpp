// Camera demo (paper §3.2): a mobile camera network over a two-resolver
// overlay.
//
// Demonstrates all four behaviours the paper describes:
//   1. request–response image fetch by intentional name,
//   2. group delivery: one multicast frame reaches every subscriber,
//   3. INR-side caching: a repeat request is answered by the resolver,
//   4. node mobility: the camera's host changes address mid-session and a
//      viewer's next request still succeeds (late binding).
//
//   $ ./camera_demo

#include <cstdio>
#include <memory>

#include "ins/apps/camera.h"
#include "ins/client/mobility.h"
#include "ins/inr/inr.h"
#include "ins/overlay/dsr.h"
#include "ins/transport/udp_transport.h"

namespace {

constexpr uint16_t kBasePort = 15840;

struct Node {
  std::unique_ptr<ins::UdpTransport> transport;
  std::unique_ptr<ins::InsClient> client;

  Node(ins::RealEventLoop* loop, uint32_t host, uint16_t port, ins::NodeAddress inr,
       ins::NodeAddress dsr) {
    auto t = ins::UdpTransport::Bind(loop, ins::MakeAddress(host, port));
    if (!t.ok()) {
      std::fprintf(stderr, "bind %u failed\n", port);
      std::exit(1);
    }
    transport = std::move(t).value();
    ins::ClientConfig config;
    config.inr = inr;
    config.dsr = dsr;
    client = std::make_unique<ins::InsClient>(loop, transport.get(), config);
    client->Start();
  }
};

}  // namespace

int main() {
  using namespace ins;
  RealEventLoop loop;

  auto dsr_transport = UdpTransport::Bind(&loop, MakeAddress(250, kBasePort));
  auto inr1_transport = UdpTransport::Bind(&loop, MakeAddress(1, kBasePort + 1));
  auto inr2_transport = UdpTransport::Bind(&loop, MakeAddress(2, kBasePort + 2));
  if (!dsr_transport.ok() || !inr1_transport.ok() || !inr2_transport.ok()) {
    std::fprintf(stderr, "bind failed (ports in use?)\n");
    return 1;
  }
  Dsr dsr(&loop, dsr_transport->get());
  NodeAddress dsr_addr = (*dsr_transport)->local_address();

  InrConfig config1;
  config1.dsr = dsr_addr;
  Inr inr1(&loop, inr1_transport->get(), config1);
  inr1.Start();
  loop.RunFor(Milliseconds(200));
  Inr inr2(&loop, inr2_transport->get(), config1);
  inr2.Start();
  loop.RunFor(Milliseconds(400));
  std::printf("overlay: inr1 neighbors=%zu inr2 neighbors=%zu\n",
              inr1.topology().NeighborAddresses().size(),
              inr2.topology().NeighborAddresses().size());

  // The camera attaches to inr1; viewers attach to inr2.
  Node cam_node(&loop, 10, kBasePort + 3, inr1.address(), dsr_addr);
  CameraTransmitter camera(cam_node.client.get(), "cam-a", "510");
  camera.SetImage({'f', 'r', 'a', 'm', 'e', '1'});
  MobilityManager camera_mobility(
      &loop, cam_node.client.get(),
      [&](const NodeAddress&) { return Status::Ok(); });  // UDP demo: identity move

  Node v1_node(&loop, 20, kBasePort + 4, inr2.address(), dsr_addr);
  CameraReceiver viewer1(v1_node.client.get(), "v1");
  Node v2_node(&loop, 21, kBasePort + 5, inr2.address(), dsr_addr);
  CameraReceiver viewer2(v2_node.client.get(), "v2");
  loop.RunFor(Milliseconds(500));

  int checks_passed = 0;

  // 1. Request–response across the overlay.
  viewer1.RequestImage("510", false, [&](Status s, Bytes img) {
    std::printf("1. request-response: %s, image '%.*s'\n", s.ToString().c_str(),
                static_cast<int>(img.size()), reinterpret_cast<const char*>(img.data()));
    if (s.ok()) {
      ++checks_passed;
    }
  });
  loop.RunFor(Seconds(1));

  // 2. Subscriptions: one multicast frame reaches both viewers.
  viewer1.Subscribe("510");
  viewer2.Subscribe("510");
  loop.RunFor(Milliseconds(500));
  int frames = 0;
  viewer1.on_frame = [&](const NameSpecifier&, const Bytes&) { ++frames; };
  viewer2.on_frame = [&](const NameSpecifier&, const Bytes&) { ++frames; };
  camera.SetImage({'f', 'r', 'a', 'm', 'e', '2'});
  camera.PublishToSubscribers(/*cache_lifetime_s=*/30);
  loop.RunFor(Seconds(1));
  std::printf("2. multicast: %d/2 subscribers got the frame\n", frames);
  if (frames == 2) {
    ++checks_passed;
  }

  // 3. Cached answer: the resolver replies, the camera never sees it.
  uint64_t served_before = camera.requests_served();
  viewer2.RequestImage("510", /*allow_cached=*/true, [&](Status s, Bytes img) {
    bool from_cache = camera.requests_served() == served_before;
    std::printf("3. cached fetch: %s, '%.*s' (answered by %s)\n", s.ToString().c_str(),
                static_cast<int>(img.size()), reinterpret_cast<const char*>(img.data()),
                from_cache ? "an INR cache" : "the camera");
    if (s.ok() && from_cache) {
      ++checks_passed;
    }
  });
  loop.RunFor(Seconds(1));

  // 4. Node mobility: the camera host re-announces (in a real deployment the
  // address changes; the name stays) and viewers keep working untouched.
  camera_mobility.Move(cam_node.client->address());
  loop.RunFor(Milliseconds(500));
  viewer1.RequestImage("510", false, [&](Status s, Bytes) {
    std::printf("4. post-move request: %s\n", s.ToString().c_str());
    if (s.ok()) {
      ++checks_passed;
    }
    loop.Stop();
  });
  loop.RunFor(Seconds(2));

  std::printf("camera_demo: %d/4 checks passed — %s\n", checks_passed,
              checks_passed == 4 ? "OK" : "FAILED");
  return checks_passed == 4 ? 0 : 1;
}
