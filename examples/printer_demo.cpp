// Printer demo (paper §3.3): load-balancing job submission by location.
//
// Three spoolers with different speeds serve room 517. A user submits a
// batch of jobs "to the best printer in 517" — the printer's name is omitted
// on purpose; intentional anycast routes each job by the spoolers' advertised
// load metrics. The demo prints the resulting distribution, then takes one
// printer out of service and shows traffic steering away from it, and
// finally lists and cancels a queued job.
//
//   $ ./printer_demo

#include <cstdio>
#include <map>
#include <memory>

#include "ins/apps/printer.h"
#include "ins/inr/inr.h"
#include "ins/overlay/dsr.h"
#include "ins/transport/udp_transport.h"

namespace {

constexpr uint16_t kBasePort = 15860;

struct Node {
  std::unique_ptr<ins::UdpTransport> transport;
  std::unique_ptr<ins::InsClient> client;

  Node(ins::RealEventLoop* loop, uint32_t host, uint16_t port, ins::NodeAddress inr,
       ins::NodeAddress dsr) {
    auto t = ins::UdpTransport::Bind(loop, ins::MakeAddress(host, port));
    if (!t.ok()) {
      std::fprintf(stderr, "bind %u failed\n", port);
      std::exit(1);
    }
    transport = std::move(t).value();
    ins::ClientConfig config;
    config.inr = inr;
    config.dsr = dsr;
    client = std::make_unique<ins::InsClient>(loop, transport.get(), config);
    client->Start();
  }
};

}  // namespace

int main() {
  using namespace ins;
  RealEventLoop loop;

  auto dsr_transport = UdpTransport::Bind(&loop, MakeAddress(250, kBasePort));
  auto inr_transport = UdpTransport::Bind(&loop, MakeAddress(1, kBasePort + 1));
  if (!dsr_transport.ok() || !inr_transport.ok()) {
    std::fprintf(stderr, "bind failed (ports in use?)\n");
    return 1;
  }
  Dsr dsr(&loop, dsr_transport->get());
  InrConfig inr_config;
  inr_config.dsr = (*dsr_transport)->local_address();
  Inr inr(&loop, inr_transport->get(), inr_config);
  inr.Start();
  loop.RunFor(Milliseconds(200));

  NodeAddress inr_addr = inr.address();
  NodeAddress dsr_addr = (*dsr_transport)->local_address();

  // Three printers in room 517; jobs stay queued for the demo's duration.
  PrinterSpooler::Options slow;
  slow.tick_interval = Seconds(600);
  Node lw1_node(&loop, 10, kBasePort + 2, inr_addr, dsr_addr);
  PrinterSpooler lw1(lw1_node.client.get(), "lw1", "517", slow);
  Node lw2_node(&loop, 11, kBasePort + 3, inr_addr, dsr_addr);
  PrinterSpooler lw2(lw2_node.client.get(), "lw2", "517", slow);
  Node lw3_node(&loop, 12, kBasePort + 4, inr_addr, dsr_addr);
  PrinterSpooler lw3(lw3_node.client.get(), "lw3", "517", slow);

  Node user_node(&loop, 20, kBasePort + 5, inr_addr, dsr_addr);
  PrinterClient alice(user_node.client.get(), "alice");
  loop.RunFor(Milliseconds(500));

  // Submit 9 equal jobs by location only.
  std::map<std::string, int> taken;
  uint64_t a_job_id = 0;
  for (int i = 0; i < 9; ++i) {
    alice.SubmitToBest("517", Bytes(8192, 'x'), [&](Status s, auto result) {
      if (s.ok()) {
        taken[result.printer_id] += 1;
        a_job_id = result.job_id;
      }
    });
    loop.RunFor(Milliseconds(250));
  }
  std::printf("9 jobs submitted to 'the best printer in room 517':\n");
  for (const auto& [printer, count] : taken) {
    std::printf("  %s: %d job(s)\n", printer.c_str(), count);
  }
  bool balanced = taken["lw1"] == 3 && taken["lw2"] == 3 && taken["lw3"] == 3;

  // lw2 jams; new jobs avoid it.
  std::printf("\n>> lw2 reports an error (out of paper)\n");
  lw2.SetError(true);
  loop.RunFor(Milliseconds(300));
  std::map<std::string, int> after_error;
  for (int i = 0; i < 4; ++i) {
    alice.SubmitToBest("517", Bytes(8192, 'x'), [&](Status s, auto result) {
      if (s.ok()) {
        after_error[result.printer_id] += 1;
      }
    });
    loop.RunFor(Milliseconds(250));
  }
  std::printf("4 more jobs:\n");
  for (const auto& [printer, count] : after_error) {
    std::printf("  %s: %d job(s)\n", printer.c_str(), count);
  }
  bool avoided = after_error.count("lw2") == 0;

  // Queue management: list lw1's queue, cancel the last submitted job.
  bool listed = false;
  alice.ListJobs("lw1", [&](Status s, std::vector<PrintJob> jobs) {
    std::printf("\nlw1 queue (%s): %zu job(s)\n", s.ToString().c_str(), jobs.size());
    for (const PrintJob& j : jobs) {
      std::printf("  #%llu %s %u bytes\n", static_cast<unsigned long long>(j.id),
                  j.user.c_str(), j.size_bytes);
    }
    listed = s.ok() && !jobs.empty();
  });
  loop.RunFor(Seconds(1));

  bool ok = balanced && avoided && listed;
  std::printf("printer_demo: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
