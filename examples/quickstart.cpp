// Quickstart: the smallest complete INS deployment.
//
// Starts, in one process over real UDP loopback sockets: a Domain Space
// Resolver, one Intentional Name Resolver, a service that advertises an
// intentional name, and a client that discovers the service, resolves it
// with early binding, and exchanges a message with it via intentional
// anycast — no hostnames or addresses anywhere in the application code.
//
// By default every endpoint runs on the batched fast path (sendmmsg/recvmmsg
// + pacing); pass --transport=udp for the plain one-syscall-per-datagram
// transport.
//
//   $ ./quickstart [--transport=udp|batched]

#include <cstdio>
#include <cstring>

#include "ins/client/api.h"
#include "ins/inr/inr.h"
#include "ins/name/parser.h"
#include "ins/overlay/dsr.h"
#include "ins/transport/factory.h"

namespace {

constexpr uint16_t kBasePort = 15800;

ins::NameSpecifier Name(const char* text) {
  auto parsed = ins::ParseNameSpecifier(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad name %s: %s\n", text, parsed.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(parsed).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ins;
  RealEventLoop loop;

  TransportKind kind = TransportKind::kBatchedUdp;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      auto parsed = ParseTransportKind(argv[i] + 12);
      if (!parsed.ok() || *parsed == TransportKind::kSim) {
        std::fprintf(stderr, "usage: %s [--transport=udp|batched]\n", argv[0]);
        return 2;
      }
      kind = *parsed;
    }
  }
  std::printf("transport: %s\n", TransportKindName(kind));

  // --- Infrastructure: one DSR, one INR -------------------------------------
  auto dsr_transport = MakeRealTransport(kind, &loop, MakeAddress(250, kBasePort));
  auto inr_transport = MakeRealTransport(kind, &loop, MakeAddress(1, kBasePort + 1));
  if (!dsr_transport.ok() || !inr_transport.ok()) {
    std::fprintf(stderr, "bind failed (ports in use?)\n");
    return 1;
  }
  Dsr dsr(&loop, dsr_transport->get());

  InrConfig inr_config;
  inr_config.dsr = (*dsr_transport)->local_address();
  Inr inr(&loop, inr_transport->get(), inr_config);
  inr.Start();
  loop.RunFor(Milliseconds(200));  // let the resolver join
  std::printf("resolver %s is up (joined=%d)\n", inr.address().ToString().c_str(),
              inr.topology().joined() ? 1 : 0);

  // --- A service: a thermostat in room 510 ----------------------------------
  auto svc_transport = MakeRealTransport(kind, &loop, MakeAddress(10, kBasePort + 2));
  ClientConfig svc_config;
  svc_config.inr = inr.address();
  svc_config.dsr = (*dsr_transport)->local_address();
  InsClient service(&loop, svc_transport->get(), svc_config);
  service.Start();

  NameSpecifier thermostat_name =
      Name("[service=thermostat[id=t1]][room=510][building=ne43]");
  auto advertisement = service.Advertise(thermostat_name, {{9000, "udp"}});
  service.OnData([&](const NameSpecifier& from, const Bytes& payload) {
    std::printf("service: request '%.*s' from %s\n", static_cast<int>(payload.size()),
                reinterpret_cast<const char*>(payload.data()), from.ToString().c_str());
    const char* reply = "21.5C";
    service.SendAnycast(from, Bytes(reply, reply + 5), thermostat_name);
  });

  // --- A client: finds the thermostat by what it is, not where it is ---------
  auto cli_transport = MakeRealTransport(kind, &loop, MakeAddress(20, kBasePort + 3));
  ClientConfig cli_config;
  cli_config.inr = inr.address();
  cli_config.dsr = (*dsr_transport)->local_address();
  InsClient client(&loop, cli_transport->get(), cli_config);
  client.Start();
  NameSpecifier client_name = Name("[service=quickstart-client[id=c1]]");
  auto client_ad = client.Advertise(client_name);

  loop.RunFor(Milliseconds(300));  // advertisements propagate

  // 1. Discovery: what thermostats exist in room 510?
  client.Discover(Name("[service=thermostat][room=510]"), "",
                  [](Status s, std::vector<InsClient::DiscoveredName> names) {
                    std::printf("discovery (%s): %zu name(s)\n", s.ToString().c_str(),
                                names.size());
                    for (const auto& n : names) {
                      std::printf("  %s\n", n.name.ToString().c_str());
                    }
                  });

  // 2. Early binding: DNS-style resolution to addresses + metrics.
  client.ResolveEarly(Name("[service=thermostat][room=510]"),
                      [](Status s, std::vector<InsClient::Binding> bindings) {
                        std::printf("early binding (%s): %zu location(s)\n",
                                    s.ToString().c_str(), bindings.size());
                        for (const auto& b : bindings) {
                          std::printf("  %s metric=%.1f\n",
                                      b.endpoint.address.ToString().c_str(), b.app_metric);
                        }
                      });

  // 3. Late binding: send straight to the intentional name.
  bool done = false;
  client.OnData([&](const NameSpecifier& from, const Bytes& payload) {
    std::printf("client: '%.*s' from %s\n", static_cast<int>(payload.size()),
                reinterpret_cast<const char*>(payload.data()), from.ToString().c_str());
    done = true;
    loop.Stop();
  });
  const char* question = "temp?";
  client.SendAnycast(Name("[service=thermostat][room=510]"),
                     Bytes(question, question + 5), client_name);

  loop.RunFor(Seconds(3));
  std::printf(done ? "quickstart: OK\n" : "quickstart: FAILED (no reply)\n");
  return done ? 0 : 1;
}
