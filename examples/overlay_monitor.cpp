// Overlay monitor: the paper's NetworkManagement application (§4), headless.
//
// Runs a five-resolver domain inside the deterministic simulator, populates
// it with services, then prints what an operator console would show: the DSR
// view, each resolver's spanning-tree neighbors and link metrics, per-vspace
// name-trees, and protocol counters. It then injects a resolver crash, a
// network partition, and a DSR crash/restart, showing the healed topology
// after each — watching the system's robustness machinery (keepalive failure
// detection, backoff re-join, split merging, soft-state expiry) do its job.
//
//   $ ./overlay_monitor

#include <cstdio>

#include "ins/harness/cluster.h"
#include "ins/name/parser.h"

namespace {

using namespace ins;

void PrintDomain(SimCluster& cluster, const char* title) {
  std::printf("\n===== %s (t = %.1f s) =====\n", title, ToSeconds(cluster.loop().Now()));
  std::printf("DSR active list (join order):");
  for (const NodeAddress& a : cluster.dsr().ActiveInrs()) {
    std::printf("  %s", a.ToString().c_str());
  }
  std::printf("\n\n");
  for (Inr* inr : cluster.inrs()) {
    if (!inr->running()) {
      continue;
    }
    std::printf("INR %s  joined=%d\n", inr->address().ToString().c_str(),
                inr->topology().joined() ? 1 : 0);
    for (const NodeAddress& n : inr->topology().NeighborAddresses()) {
      bool is_parent = inr->topology().parent() == n;
      std::printf("  peer %s  rtt=%.1f ms%s\n", n.ToString().c_str(),
                  inr->topology().LinkMetricMs(n), is_parent ? "  (parent)" : "");
    }
    for (const std::string& vspace : inr->vspaces().RoutedSpaces()) {
      const NameTree* tree = inr->vspaces().Tree(vspace);
      auto stats = tree->ComputeStats();
      std::printf("  vspace '%s': %zu names, %zu attr-nodes, %zu value-nodes, %zu B\n",
                  vspace.c_str(), stats.records, stats.attribute_nodes,
                  stats.value_nodes, stats.bytes);
    }
    std::printf("  counters: msgs=%llu updates_rx=%llu lookups=%llu fwd=%llu\n",
                static_cast<unsigned long long>(inr->metrics().Counter("inr.messages")),
                static_cast<unsigned long long>(
                    inr->metrics().Counter("discovery.updates_received")),
                static_cast<unsigned long long>(
                    inr->metrics().Counter("forwarding.lookups")),
                static_cast<unsigned long long>(
                    inr->metrics().Counter("forwarding.packets")));
  }
}

}  // namespace

int main() {
  SimCluster cluster;
  std::vector<Inr*> inrs;
  for (uint32_t i = 1; i <= 5; ++i) {
    inrs.push_back(cluster.AddInr(i));
    cluster.loop().RunFor(Seconds(1));
  }
  cluster.StabilizeTopology();

  // Populate with a few services via raw advertisements.
  auto svc = cluster.AddEndpoint(100);
  const char* kNames[] = {
      "[service=camera[entity=transmitter[id=a]]][room=510]",
      "[service=camera[entity=transmitter[id=b]]][room=517]",
      "[service=printer[entity=spooler[id=lw1]]][room=517]",
      "[service=locator[entity=server]]",
      "[service=thermostat[id=t1]][room=504]",
  };
  uint32_t disc = 0;
  for (const char* name : kNames) {
    Advertisement ad;
    ad.name_text = name;
    ad.announcer = AnnouncerId{svc->address().ip, 1000, disc++};
    ad.endpoint.address = svc->address();
    ad.lifetime_s = 600;
    ad.version = 1;
    svc->Send(inrs[disc % inrs.size()]->address(), Envelope{MessageBody(ad)});
  }
  cluster.loop().RunFor(Seconds(5));
  PrintDomain(cluster, "healthy domain, 5 resolvers, 5 services");

  // Show one resolver's name-tree in full (the management GUI's tree view).
  std::printf("\nname-tree at %s:\n%s", inrs[0]->address().ToString().c_str(),
              inrs[0]->vspaces().Tree("")->DebugString().c_str());

  // Inject a crash and watch the domain heal.
  std::printf("\n>> injecting crash of %s\n", inrs[2]->address().ToString().c_str());
  cluster.CrashInr(inrs[2]);
  inrs.erase(inrs.begin() + 2);
  cluster.loop().RunFor(Seconds(90));
  PrintDomain(cluster, "after crash + self-healing");

  // Partition the domain: resolvers on hosts 1-2 on one side, 3-5 plus the
  // DSR (and the service endpoint) on the other. Each side keeps a working
  // tree; on heal, the minority-side root demotes itself and the trees merge.
  std::printf("\n>> partitioning {hosts 1,2} | {hosts 4,5, DSR}\n");
  // Host 3's resolver crashed above; leaving it out of every group isolates
  // it entirely, which is exactly right for a dead host.
  cluster.Partition({{1, 2}, {4, 5, 100, SimCluster::kDsrHostIndex}});
  cluster.loop().RunFor(Seconds(40));
  PrintDomain(cluster, "during partition (two independent trees)");
  cluster.Heal();
  auto merge_took = cluster.MeasureReconvergence();
  std::printf("\n>> healed; trees merged in %.1f s (invariant: %s)\n",
              merge_took ? ToSeconds(*merge_took) : -1.0,
              cluster.CheckTreeInvariant().empty() ? "ok"
                                                   : cluster.CheckTreeInvariant().c_str());
  PrintDomain(cluster, "after partition heal");

  // Crash the DSR and bring it back empty: soft-state re-registration must
  // rebuild its view within one refresh interval.
  std::printf("\n>> crashing DSR, restarting it empty 5 s later\n");
  cluster.CrashDsr();
  cluster.loop().RunFor(Seconds(5));
  cluster.RestartDsr();
  // The overlay never depended on the DSR once built, so the tree is intact
  // throughout; the DSR's view refills from soft-state re-registrations
  // within one (jittered) refresh interval.
  auto dsr_took = cluster.MeasureReconvergence();
  cluster.loop().RunFor(cluster.options().inr_template.topology.dsr_refresh_interval);
  std::printf(">> overlay intact (reconverged in %.1f s); DSR relearned %zu "
              "resolvers within one refresh interval\n",
              dsr_took ? ToSeconds(*dsr_took) : -1.0,
              cluster.dsr().ActiveInrs().size());
  PrintDomain(cluster, "after DSR restart");

  bool ok = merge_took.has_value() && dsr_took.has_value() &&
            cluster.dsr().ActiveInrs().size() == 4;
  for (Inr* inr : cluster.inrs()) {
    ok = ok && inr->topology().joined();
  }
  ok = ok && cluster.CheckTreeInvariant().empty();
  std::printf("\noverlay_monitor: %s\n", ok ? "OK (domain healed)" : "FAILED");
  return ok ? 0 : 1;
}
