// Floorplan demo (paper §3.1): map-based discovery of location-dependent
// services.
//
// Brings up a DSR, an INR, a Locator map server, a camera, two printers, and
// a Floorplan display. The display fetches the region map from the Locator
// (routed purely by intentional name), discovers every service on the floor,
// and prints them as an ASCII floorplan. One camera then moves rooms; a
// refresh shows its icon following the service.
//
//   $ ./floorplan_demo

#include <cstdio>
#include <memory>

#include "ins/apps/camera.h"
#include "ins/apps/floorplan.h"
#include "ins/apps/printer.h"
#include "ins/inr/inr.h"
#include "ins/overlay/dsr.h"
#include "ins/transport/udp_transport.h"

namespace {

constexpr uint16_t kBasePort = 15820;

struct Node {
  std::unique_ptr<ins::UdpTransport> transport;
  std::unique_ptr<ins::InsClient> client;

  Node(ins::RealEventLoop* loop, uint32_t host, uint16_t port, ins::NodeAddress inr,
       ins::NodeAddress dsr) {
    auto t = ins::UdpTransport::Bind(loop, ins::MakeAddress(host, port));
    if (!t.ok()) {
      std::fprintf(stderr, "bind %u failed: %s\n", port, t.status().ToString().c_str());
      std::exit(1);
    }
    transport = std::move(t).value();
    ins::ClientConfig config;
    config.inr = inr;
    config.dsr = dsr;
    client = std::make_unique<ins::InsClient>(loop, transport.get(), config);
    client->Start();
  }
};

void PrintIcons(const ins::FloorplanApp& ui) {
  std::printf("+---------------- floor 5, building NE43 ----------------+\n");
  for (const auto& [key, icon] : ui.icons()) {
    std::printf("| room %-5s  [%s]  %s\n", icon.room.c_str(), icon.service.c_str(),
                key.c_str());
  }
  std::printf("+--------------------------------------------------------+\n");
}

}  // namespace

int main() {
  using namespace ins;
  RealEventLoop loop;

  auto dsr_transport = UdpTransport::Bind(&loop, MakeAddress(250, kBasePort));
  auto inr_transport = UdpTransport::Bind(&loop, MakeAddress(1, kBasePort + 1));
  if (!dsr_transport.ok() || !inr_transport.ok()) {
    std::fprintf(stderr, "bind failed (ports in use?)\n");
    return 1;
  }
  Dsr dsr(&loop, dsr_transport->get());
  InrConfig inr_config;
  inr_config.dsr = (*dsr_transport)->local_address();
  Inr inr(&loop, inr_transport->get(), inr_config);
  inr.Start();
  loop.RunFor(Milliseconds(200));

  NodeAddress inr_addr = inr.address();
  NodeAddress dsr_addr = (*dsr_transport)->local_address();

  // Services on the floor.
  Node locator_node(&loop, 10, kBasePort + 2, inr_addr, dsr_addr);
  LocatorService locator(locator_node.client.get());
  locator.AddMap("ne43-5", {'<', '5', 't', 'h', '-', 'f', 'l', 'o', 'o', 'r', '>'});

  Node camera_node(&loop, 11, kBasePort + 3, inr_addr, dsr_addr);
  CameraTransmitter camera(camera_node.client.get(), "cam-a", "510");

  Node lw1_node(&loop, 12, kBasePort + 4, inr_addr, dsr_addr);
  PrinterSpooler lw1(lw1_node.client.get(), "lw1", "517");
  Node lw2_node(&loop, 13, kBasePort + 5, inr_addr, dsr_addr);
  PrinterSpooler lw2(lw2_node.client.get(), "lw2", "504");

  // The user's display.
  Node display_node(&loop, 20, kBasePort + 6, inr_addr, dsr_addr);
  FloorplanApp ui(display_node.client.get(), "disp1");

  loop.RunFor(Milliseconds(400));  // advertisements propagate

  ui.RequestMap("ne43-5", [](Status s, Bytes map) {
    std::printf("map fetch: %s, %zu bytes: %.*s\n", s.ToString().c_str(), map.size(),
                static_cast<int>(map.size()), reinterpret_cast<const char*>(map.data()));
  });
  ui.Refresh([&](Status s) {
    std::printf("discovery round 1: %s\n", s.ToString().c_str());
    PrintIcons(ui);
  });
  loop.RunFor(Seconds(1));

  // The camera is carried to another room: service mobility — its icon
  // follows on the next refresh with no re-configuration anywhere.
  std::printf("\n>> camera cam-a moves from room 510 to room 504\n\n");
  camera.MoveToRoom("504");
  loop.RunFor(Milliseconds(400));

  bool ok = false;
  ui.Refresh([&](Status s) {
    std::printf("discovery round 2: %s\n", s.ToString().c_str());
    PrintIcons(ui);
    for (const auto& [key, icon] : ui.icons()) {
      if (icon.service == "camera" && icon.room == "504") {
        ok = true;
      }
    }
  });
  loop.RunFor(Seconds(1));

  std::printf(ok ? "floorplan_demo: OK\n" : "floorplan_demo: FAILED\n");
  return ok ? 0 : 1;
}
