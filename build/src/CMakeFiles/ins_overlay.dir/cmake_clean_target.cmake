file(REMOVE_RECURSE
  "libins_overlay.a"
)
