# Empty compiler generated dependencies file for ins_overlay.
# This may be replaced when dependencies are built.
