file(REMOVE_RECURSE
  "CMakeFiles/ins_overlay.dir/ins/overlay/dsr.cc.o"
  "CMakeFiles/ins_overlay.dir/ins/overlay/dsr.cc.o.d"
  "CMakeFiles/ins_overlay.dir/ins/overlay/ping.cc.o"
  "CMakeFiles/ins_overlay.dir/ins/overlay/ping.cc.o.d"
  "CMakeFiles/ins_overlay.dir/ins/overlay/topology.cc.o"
  "CMakeFiles/ins_overlay.dir/ins/overlay/topology.cc.o.d"
  "libins_overlay.a"
  "libins_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ins_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
