file(REMOVE_RECURSE
  "CMakeFiles/ins_wire.dir/ins/wire/messages.cc.o"
  "CMakeFiles/ins_wire.dir/ins/wire/messages.cc.o.d"
  "CMakeFiles/ins_wire.dir/ins/wire/packet.cc.o"
  "CMakeFiles/ins_wire.dir/ins/wire/packet.cc.o.d"
  "libins_wire.a"
  "libins_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ins_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
