file(REMOVE_RECURSE
  "libins_wire.a"
)
