# Empty dependencies file for ins_wire.
# This may be replaced when dependencies are built.
