# Empty dependencies file for ins_inr.
# This may be replaced when dependencies are built.
