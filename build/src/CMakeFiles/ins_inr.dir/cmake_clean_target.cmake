file(REMOVE_RECURSE
  "libins_inr.a"
)
