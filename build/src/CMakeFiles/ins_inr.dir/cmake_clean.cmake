file(REMOVE_RECURSE
  "CMakeFiles/ins_inr.dir/ins/inr/forwarding.cc.o"
  "CMakeFiles/ins_inr.dir/ins/inr/forwarding.cc.o.d"
  "CMakeFiles/ins_inr.dir/ins/inr/inr.cc.o"
  "CMakeFiles/ins_inr.dir/ins/inr/inr.cc.o.d"
  "CMakeFiles/ins_inr.dir/ins/inr/load_balancer.cc.o"
  "CMakeFiles/ins_inr.dir/ins/inr/load_balancer.cc.o.d"
  "CMakeFiles/ins_inr.dir/ins/inr/name_discovery.cc.o"
  "CMakeFiles/ins_inr.dir/ins/inr/name_discovery.cc.o.d"
  "CMakeFiles/ins_inr.dir/ins/inr/packet_cache.cc.o"
  "CMakeFiles/ins_inr.dir/ins/inr/packet_cache.cc.o.d"
  "CMakeFiles/ins_inr.dir/ins/inr/vspace.cc.o"
  "CMakeFiles/ins_inr.dir/ins/inr/vspace.cc.o.d"
  "libins_inr.a"
  "libins_inr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ins_inr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
