# Empty dependencies file for ins_sim.
# This may be replaced when dependencies are built.
