file(REMOVE_RECURSE
  "CMakeFiles/ins_sim.dir/ins/sim/cpu_meter.cc.o"
  "CMakeFiles/ins_sim.dir/ins/sim/cpu_meter.cc.o.d"
  "CMakeFiles/ins_sim.dir/ins/sim/event_loop.cc.o"
  "CMakeFiles/ins_sim.dir/ins/sim/event_loop.cc.o.d"
  "CMakeFiles/ins_sim.dir/ins/sim/network.cc.o"
  "CMakeFiles/ins_sim.dir/ins/sim/network.cc.o.d"
  "libins_sim.a"
  "libins_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ins_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
