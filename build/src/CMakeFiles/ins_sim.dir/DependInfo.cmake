
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ins/sim/cpu_meter.cc" "src/CMakeFiles/ins_sim.dir/ins/sim/cpu_meter.cc.o" "gcc" "src/CMakeFiles/ins_sim.dir/ins/sim/cpu_meter.cc.o.d"
  "/root/repo/src/ins/sim/event_loop.cc" "src/CMakeFiles/ins_sim.dir/ins/sim/event_loop.cc.o" "gcc" "src/CMakeFiles/ins_sim.dir/ins/sim/event_loop.cc.o.d"
  "/root/repo/src/ins/sim/network.cc" "src/CMakeFiles/ins_sim.dir/ins/sim/network.cc.o" "gcc" "src/CMakeFiles/ins_sim.dir/ins/sim/network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ins_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
