file(REMOVE_RECURSE
  "libins_sim.a"
)
