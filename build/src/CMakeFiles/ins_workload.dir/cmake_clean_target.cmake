file(REMOVE_RECURSE
  "libins_workload.a"
)
