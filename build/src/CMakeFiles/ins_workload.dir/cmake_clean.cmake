file(REMOVE_RECURSE
  "CMakeFiles/ins_workload.dir/ins/workload/namegen.cc.o"
  "CMakeFiles/ins_workload.dir/ins/workload/namegen.cc.o.d"
  "libins_workload.a"
  "libins_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ins_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
