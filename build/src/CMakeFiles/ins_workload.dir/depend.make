# Empty dependencies file for ins_workload.
# This may be replaced when dependencies are built.
