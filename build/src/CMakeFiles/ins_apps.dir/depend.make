# Empty dependencies file for ins_apps.
# This may be replaced when dependencies are built.
