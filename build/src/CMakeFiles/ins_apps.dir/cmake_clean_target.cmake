file(REMOVE_RECURSE
  "libins_apps.a"
)
