file(REMOVE_RECURSE
  "CMakeFiles/ins_apps.dir/ins/apps/camera.cc.o"
  "CMakeFiles/ins_apps.dir/ins/apps/camera.cc.o.d"
  "CMakeFiles/ins_apps.dir/ins/apps/floorplan.cc.o"
  "CMakeFiles/ins_apps.dir/ins/apps/floorplan.cc.o.d"
  "CMakeFiles/ins_apps.dir/ins/apps/printer.cc.o"
  "CMakeFiles/ins_apps.dir/ins/apps/printer.cc.o.d"
  "libins_apps.a"
  "libins_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ins_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
