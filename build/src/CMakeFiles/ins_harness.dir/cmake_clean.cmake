file(REMOVE_RECURSE
  "CMakeFiles/ins_harness.dir/ins/harness/cluster.cc.o"
  "CMakeFiles/ins_harness.dir/ins/harness/cluster.cc.o.d"
  "libins_harness.a"
  "libins_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ins_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
