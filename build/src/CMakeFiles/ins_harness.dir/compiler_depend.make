# Empty compiler generated dependencies file for ins_harness.
# This may be replaced when dependencies are built.
