file(REMOVE_RECURSE
  "libins_harness.a"
)
