
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ins/name/matcher.cc" "src/CMakeFiles/ins_name.dir/ins/name/matcher.cc.o" "gcc" "src/CMakeFiles/ins_name.dir/ins/name/matcher.cc.o.d"
  "/root/repo/src/ins/name/name_specifier.cc" "src/CMakeFiles/ins_name.dir/ins/name/name_specifier.cc.o" "gcc" "src/CMakeFiles/ins_name.dir/ins/name/name_specifier.cc.o.d"
  "/root/repo/src/ins/name/parser.cc" "src/CMakeFiles/ins_name.dir/ins/name/parser.cc.o" "gcc" "src/CMakeFiles/ins_name.dir/ins/name/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ins_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
