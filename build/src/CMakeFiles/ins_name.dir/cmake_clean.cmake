file(REMOVE_RECURSE
  "CMakeFiles/ins_name.dir/ins/name/matcher.cc.o"
  "CMakeFiles/ins_name.dir/ins/name/matcher.cc.o.d"
  "CMakeFiles/ins_name.dir/ins/name/name_specifier.cc.o"
  "CMakeFiles/ins_name.dir/ins/name/name_specifier.cc.o.d"
  "CMakeFiles/ins_name.dir/ins/name/parser.cc.o"
  "CMakeFiles/ins_name.dir/ins/name/parser.cc.o.d"
  "libins_name.a"
  "libins_name.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ins_name.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
