file(REMOVE_RECURSE
  "libins_name.a"
)
