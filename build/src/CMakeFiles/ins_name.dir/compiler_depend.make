# Empty compiler generated dependencies file for ins_name.
# This may be replaced when dependencies are built.
