
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ins/common/bytes.cc" "src/CMakeFiles/ins_common.dir/ins/common/bytes.cc.o" "gcc" "src/CMakeFiles/ins_common.dir/ins/common/bytes.cc.o.d"
  "/root/repo/src/ins/common/logging.cc" "src/CMakeFiles/ins_common.dir/ins/common/logging.cc.o" "gcc" "src/CMakeFiles/ins_common.dir/ins/common/logging.cc.o.d"
  "/root/repo/src/ins/common/metrics.cc" "src/CMakeFiles/ins_common.dir/ins/common/metrics.cc.o" "gcc" "src/CMakeFiles/ins_common.dir/ins/common/metrics.cc.o.d"
  "/root/repo/src/ins/common/status.cc" "src/CMakeFiles/ins_common.dir/ins/common/status.cc.o" "gcc" "src/CMakeFiles/ins_common.dir/ins/common/status.cc.o.d"
  "/root/repo/src/ins/common/string_util.cc" "src/CMakeFiles/ins_common.dir/ins/common/string_util.cc.o" "gcc" "src/CMakeFiles/ins_common.dir/ins/common/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
