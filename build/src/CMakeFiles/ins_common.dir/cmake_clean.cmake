file(REMOVE_RECURSE
  "CMakeFiles/ins_common.dir/ins/common/bytes.cc.o"
  "CMakeFiles/ins_common.dir/ins/common/bytes.cc.o.d"
  "CMakeFiles/ins_common.dir/ins/common/logging.cc.o"
  "CMakeFiles/ins_common.dir/ins/common/logging.cc.o.d"
  "CMakeFiles/ins_common.dir/ins/common/metrics.cc.o"
  "CMakeFiles/ins_common.dir/ins/common/metrics.cc.o.d"
  "CMakeFiles/ins_common.dir/ins/common/status.cc.o"
  "CMakeFiles/ins_common.dir/ins/common/status.cc.o.d"
  "CMakeFiles/ins_common.dir/ins/common/string_util.cc.o"
  "CMakeFiles/ins_common.dir/ins/common/string_util.cc.o.d"
  "libins_common.a"
  "libins_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ins_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
