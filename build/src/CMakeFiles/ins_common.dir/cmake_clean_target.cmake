file(REMOVE_RECURSE
  "libins_common.a"
)
