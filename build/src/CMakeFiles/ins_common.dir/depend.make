# Empty dependencies file for ins_common.
# This may be replaced when dependencies are built.
