file(REMOVE_RECURSE
  "libins_transport.a"
)
