# Empty dependencies file for ins_transport.
# This may be replaced when dependencies are built.
