file(REMOVE_RECURSE
  "CMakeFiles/ins_transport.dir/ins/transport/loopback.cc.o"
  "CMakeFiles/ins_transport.dir/ins/transport/loopback.cc.o.d"
  "CMakeFiles/ins_transport.dir/ins/transport/udp_transport.cc.o"
  "CMakeFiles/ins_transport.dir/ins/transport/udp_transport.cc.o.d"
  "libins_transport.a"
  "libins_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ins_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
