file(REMOVE_RECURSE
  "libins_nametree.a"
)
