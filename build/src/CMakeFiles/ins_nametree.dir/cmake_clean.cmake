file(REMOVE_RECURSE
  "CMakeFiles/ins_nametree.dir/ins/nametree/name_record.cc.o"
  "CMakeFiles/ins_nametree.dir/ins/nametree/name_record.cc.o.d"
  "CMakeFiles/ins_nametree.dir/ins/nametree/name_tree.cc.o"
  "CMakeFiles/ins_nametree.dir/ins/nametree/name_tree.cc.o.d"
  "libins_nametree.a"
  "libins_nametree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ins_nametree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
