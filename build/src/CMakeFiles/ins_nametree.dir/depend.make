# Empty dependencies file for ins_nametree.
# This may be replaced when dependencies are built.
