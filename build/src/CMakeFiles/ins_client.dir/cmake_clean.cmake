file(REMOVE_RECURSE
  "CMakeFiles/ins_client.dir/ins/client/api.cc.o"
  "CMakeFiles/ins_client.dir/ins/client/api.cc.o.d"
  "CMakeFiles/ins_client.dir/ins/client/mobility.cc.o"
  "CMakeFiles/ins_client.dir/ins/client/mobility.cc.o.d"
  "libins_client.a"
  "libins_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ins_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
