# Empty dependencies file for ins_client.
# This may be replaced when dependencies are built.
