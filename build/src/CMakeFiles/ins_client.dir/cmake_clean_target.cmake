file(REMOVE_RECURSE
  "libins_client.a"
)
