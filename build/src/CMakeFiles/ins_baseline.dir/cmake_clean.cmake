file(REMOVE_RECURSE
  "CMakeFiles/ins_baseline.dir/ins/baseline/dns_baseline.cc.o"
  "CMakeFiles/ins_baseline.dir/ins/baseline/dns_baseline.cc.o.d"
  "CMakeFiles/ins_baseline.dir/ins/baseline/linear_name_table.cc.o"
  "CMakeFiles/ins_baseline.dir/ins/baseline/linear_name_table.cc.o.d"
  "libins_baseline.a"
  "libins_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ins_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
