# Empty compiler generated dependencies file for ins_baseline.
# This may be replaced when dependencies are built.
