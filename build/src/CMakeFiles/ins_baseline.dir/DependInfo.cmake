
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ins/baseline/dns_baseline.cc" "src/CMakeFiles/ins_baseline.dir/ins/baseline/dns_baseline.cc.o" "gcc" "src/CMakeFiles/ins_baseline.dir/ins/baseline/dns_baseline.cc.o.d"
  "/root/repo/src/ins/baseline/linear_name_table.cc" "src/CMakeFiles/ins_baseline.dir/ins/baseline/linear_name_table.cc.o" "gcc" "src/CMakeFiles/ins_baseline.dir/ins/baseline/linear_name_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ins_nametree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_name.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
