file(REMOVE_RECURSE
  "libins_baseline.a"
)
