file(REMOVE_RECURSE
  "CMakeFiles/discovery_protocol_test.dir/discovery_protocol_test.cc.o"
  "CMakeFiles/discovery_protocol_test.dir/discovery_protocol_test.cc.o.d"
  "discovery_protocol_test"
  "discovery_protocol_test.pdb"
  "discovery_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discovery_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
