# Empty compiler generated dependencies file for discovery_protocol_test.
# This may be replaced when dependencies are built.
