file(REMOVE_RECURSE
  "CMakeFiles/camera_test.dir/camera_test.cc.o"
  "CMakeFiles/camera_test.dir/camera_test.cc.o.d"
  "camera_test"
  "camera_test.pdb"
  "camera_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camera_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
