# Empty compiler generated dependencies file for subtree_cache_test.
# This may be replaced when dependencies are built.
