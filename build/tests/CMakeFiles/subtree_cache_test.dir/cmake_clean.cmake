file(REMOVE_RECURSE
  "CMakeFiles/subtree_cache_test.dir/subtree_cache_test.cc.o"
  "CMakeFiles/subtree_cache_test.dir/subtree_cache_test.cc.o.d"
  "subtree_cache_test"
  "subtree_cache_test.pdb"
  "subtree_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subtree_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
