file(REMOVE_RECURSE
  "CMakeFiles/namegen_test.dir/namegen_test.cc.o"
  "CMakeFiles/namegen_test.dir/namegen_test.cc.o.d"
  "namegen_test"
  "namegen_test.pdb"
  "namegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
