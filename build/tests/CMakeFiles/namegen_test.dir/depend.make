# Empty dependencies file for namegen_test.
# This may be replaced when dependencies are built.
