# Empty dependencies file for name_tree_test.
# This may be replaced when dependencies are built.
