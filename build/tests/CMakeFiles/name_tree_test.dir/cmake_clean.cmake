file(REMOVE_RECURSE
  "CMakeFiles/name_tree_test.dir/name_tree_test.cc.o"
  "CMakeFiles/name_tree_test.dir/name_tree_test.cc.o.d"
  "name_tree_test"
  "name_tree_test.pdb"
  "name_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
