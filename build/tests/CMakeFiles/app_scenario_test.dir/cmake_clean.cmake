file(REMOVE_RECURSE
  "CMakeFiles/app_scenario_test.dir/app_scenario_test.cc.o"
  "CMakeFiles/app_scenario_test.dir/app_scenario_test.cc.o.d"
  "app_scenario_test"
  "app_scenario_test.pdb"
  "app_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
