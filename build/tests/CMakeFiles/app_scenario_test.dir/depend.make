# Empty dependencies file for app_scenario_test.
# This may be replaced when dependencies are built.
