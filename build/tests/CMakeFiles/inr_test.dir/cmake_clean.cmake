file(REMOVE_RECURSE
  "CMakeFiles/inr_test.dir/inr_test.cc.o"
  "CMakeFiles/inr_test.dir/inr_test.cc.o.d"
  "inr_test"
  "inr_test.pdb"
  "inr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
