# Empty dependencies file for inr_test.
# This may be replaced when dependencies are built.
