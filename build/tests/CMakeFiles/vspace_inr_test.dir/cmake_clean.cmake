file(REMOVE_RECURSE
  "CMakeFiles/vspace_inr_test.dir/vspace_inr_test.cc.o"
  "CMakeFiles/vspace_inr_test.dir/vspace_inr_test.cc.o.d"
  "vspace_inr_test"
  "vspace_inr_test.pdb"
  "vspace_inr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vspace_inr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
