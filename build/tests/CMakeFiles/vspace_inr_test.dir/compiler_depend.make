# Empty compiler generated dependencies file for vspace_inr_test.
# This may be replaced when dependencies are built.
