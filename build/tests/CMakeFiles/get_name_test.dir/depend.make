# Empty dependencies file for get_name_test.
# This may be replaced when dependencies are built.
