file(REMOVE_RECURSE
  "CMakeFiles/get_name_test.dir/get_name_test.cc.o"
  "CMakeFiles/get_name_test.dir/get_name_test.cc.o.d"
  "get_name_test"
  "get_name_test.pdb"
  "get_name_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/get_name_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
