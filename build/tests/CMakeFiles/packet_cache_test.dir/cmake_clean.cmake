file(REMOVE_RECURSE
  "CMakeFiles/packet_cache_test.dir/packet_cache_test.cc.o"
  "CMakeFiles/packet_cache_test.dir/packet_cache_test.cc.o.d"
  "packet_cache_test"
  "packet_cache_test.pdb"
  "packet_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
