# Empty compiler generated dependencies file for name_specifier_test.
# This may be replaced when dependencies are built.
