file(REMOVE_RECURSE
  "CMakeFiles/name_specifier_test.dir/name_specifier_test.cc.o"
  "CMakeFiles/name_specifier_test.dir/name_specifier_test.cc.o.d"
  "name_specifier_test"
  "name_specifier_test.pdb"
  "name_specifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_specifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
