file(REMOVE_RECURSE
  "CMakeFiles/overlay_monitor.dir/overlay_monitor.cpp.o"
  "CMakeFiles/overlay_monitor.dir/overlay_monitor.cpp.o.d"
  "overlay_monitor"
  "overlay_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
