file(REMOVE_RECURSE
  "CMakeFiles/camera_demo.dir/camera_demo.cpp.o"
  "CMakeFiles/camera_demo.dir/camera_demo.cpp.o.d"
  "camera_demo"
  "camera_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camera_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
