# Empty dependencies file for camera_demo.
# This may be replaced when dependencies are built.
