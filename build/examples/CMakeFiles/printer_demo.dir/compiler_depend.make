# Empty compiler generated dependencies file for printer_demo.
# This may be replaced when dependencies are built.
