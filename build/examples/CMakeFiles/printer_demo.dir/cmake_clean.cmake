file(REMOVE_RECURSE
  "CMakeFiles/printer_demo.dir/printer_demo.cpp.o"
  "CMakeFiles/printer_demo.dir/printer_demo.cpp.o.d"
  "printer_demo"
  "printer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
