file(REMOVE_RECURSE
  "CMakeFiles/floorplan_demo.dir/floorplan_demo.cpp.o"
  "CMakeFiles/floorplan_demo.dir/floorplan_demo.cpp.o.d"
  "floorplan_demo"
  "floorplan_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floorplan_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
