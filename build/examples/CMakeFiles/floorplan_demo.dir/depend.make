# Empty dependencies file for floorplan_demo.
# This may be replaced when dependencies are built.
