# Empty dependencies file for bench_ablation_lookup_scaling.
# This may be replaced when dependencies are built.
