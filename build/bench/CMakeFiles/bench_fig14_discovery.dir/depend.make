# Empty dependencies file for bench_fig14_discovery.
# This may be replaced when dependencies are built.
