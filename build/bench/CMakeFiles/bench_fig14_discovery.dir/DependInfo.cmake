
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig14_discovery.cc" "bench/CMakeFiles/bench_fig14_discovery.dir/bench_fig14_discovery.cc.o" "gcc" "bench/CMakeFiles/bench_fig14_discovery.dir/bench_fig14_discovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ins_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_inr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_nametree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_name.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ins_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
