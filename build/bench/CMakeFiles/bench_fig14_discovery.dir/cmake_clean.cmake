file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_discovery.dir/bench_fig14_discovery.cc.o"
  "CMakeFiles/bench_fig14_discovery.dir/bench_fig14_discovery.cc.o.d"
  "bench_fig14_discovery"
  "bench_fig14_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
