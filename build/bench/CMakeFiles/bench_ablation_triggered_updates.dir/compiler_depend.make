# Empty compiler generated dependencies file for bench_ablation_triggered_updates.
# This may be replaced when dependencies are built.
