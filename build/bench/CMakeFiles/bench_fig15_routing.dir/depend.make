# Empty dependencies file for bench_fig15_routing.
# This may be replaced when dependencies are built.
