# Empty dependencies file for bench_ablation_anycast_vs_dns.
# This may be replaced when dependencies are built.
