file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_anycast_vs_dns.dir/bench_ablation_anycast_vs_dns.cc.o"
  "CMakeFiles/bench_ablation_anycast_vs_dns.dir/bench_ablation_anycast_vs_dns.cc.o.d"
  "bench_ablation_anycast_vs_dns"
  "bench_ablation_anycast_vs_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_anycast_vs_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
