# Empty compiler generated dependencies file for bench_ablation_update_vs_lookup.
# This may be replaced when dependencies are built.
