file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_vspace_partition.dir/bench_fig9_vspace_partition.cc.o"
  "CMakeFiles/bench_fig9_vspace_partition.dir/bench_fig9_vspace_partition.cc.o.d"
  "bench_fig9_vspace_partition"
  "bench_fig9_vspace_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_vspace_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
