file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_lookup.dir/bench_fig12_lookup.cc.o"
  "CMakeFiles/bench_fig12_lookup.dir/bench_fig12_lookup.cc.o.d"
  "bench_fig12_lookup"
  "bench_fig12_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
