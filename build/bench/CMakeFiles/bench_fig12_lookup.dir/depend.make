# Empty dependencies file for bench_fig12_lookup.
# This may be replaced when dependencies are built.
