// Ablation — §2.5's bottleneck claim: "the name processing in the name
// dissemination protocol dominated the lookup processing in most of our
// experiments ... because all the resolvers need to be aware of all the
// names in the system".
//
// This bench separates the per-name costs on one resolver:
//   * update processing — decode a NameUpdateEntry, parse its name, run the
//     distance-vector acceptance, upsert/graft into the tree;
//   * update generation — GET-NAME extraction + encoding for a periodic
//     update (the paper's other per-name dissemination cost);
//   * lookup — one LOOKUP-NAME against the same tree.
// and reports their ratio across tree sizes.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_support.h"
#include "ins/harness/cluster.h"

namespace {

using namespace ins;

struct Costs {
  double update_us_per_name = 0;
  double extract_us_per_name = 0;
  double lookup_us = 0;
};

Costs Measure(size_t n) {
  Costs out;

  // Update processing through the full resolver path.
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();
  auto peer = cluster.AddEndpoint(200);
  Rng rng(3);
  std::vector<NameUpdateEntry> entries;
  for (size_t i = 0; i < n; ++i) {
    NameUpdateEntry e;
    e.name_text = GenerateSizedName(rng, 82).ToString();
    e.announcer = AnnouncerId{0x0b000000u + static_cast<uint32_t>(i), 1, 0};
    e.endpoint.address = MakeAddress(static_cast<uint32_t>(i % 200 + 2));
    e.lifetime_s = 1u << 20;
    e.version = 1;
    entries.push_back(std::move(e));
  }
  auto send_round = [&](uint64_t version) {
    constexpr size_t kBatch = 64;
    for (size_t i = 0; i < entries.size(); i += kBatch) {
      NameUpdate u;
      size_t end = std::min(entries.size(), i + kBatch);
      for (size_t j = i; j < end; ++j) {
        entries[j].version = version;
        u.entries.push_back(entries[j]);
      }
      peer->Send(inr->address(), Envelope{MessageBody(std::move(u))});
    }
  };
  send_round(1);
  cluster.loop().RunFor(Milliseconds(100));
  double refresh_s = bench::WallSeconds([&] {
    send_round(2);
    cluster.loop().RunFor(Milliseconds(100));
  });
  out.update_us_per_name = refresh_s * 1e6 / static_cast<double>(n);

  // Update generation: GET-NAME + encode for every record (one periodic
  // update's worth of extraction work).
  const NameTree* tree = inr->vspaces().Tree("");
  double extract_s = bench::WallSeconds([&] {
    size_t bytes = 0;
    for (const NameRecord* rec : tree->AllRecords()) {
      bytes += tree->ExtractName(rec).ToString().size();
    }
    benchmark::DoNotOptimize(bytes);
  });
  out.extract_us_per_name = extract_s * 1e6 / static_cast<double>(n);

  // Lookup cost on the same tree (random queries of the same shape).
  std::vector<NameSpecifier> queries;
  for (int i = 0; i < 200; ++i) {
    queries.push_back(GenerateSizedName(rng, 82));
  }
  double lookup_s = bench::WallSeconds([&] {
    for (int round = 0; round < 5; ++round) {
      for (const NameSpecifier& q : queries) {
        benchmark::DoNotOptimize(tree->Lookup(q));
      }
    }
  });
  out.lookup_us = lookup_s * 1e6 / 1000.0;
  return out;
}

}  // namespace

int main() {
  bench::Banner("Ablation (§2.5): update processing vs lookup processing per name",
                "name dissemination processing dominates lookups — every resolver "
                "must process every name in the system, but only the queried ones "
                "on lookups");
  std::printf("%8s %18s %20s %14s %16s\n", "names", "update (us/name)",
              "extract (us/name)", "lookup (us)", "update/lookup");
  for (size_t n : {1000u, 4000u, 8000u, 16000u}) {
    Costs c = Measure(n);
    std::printf("%8zu %18.2f %20.2f %14.2f %15.1fx\n", n, c.update_us_per_name,
                c.extract_us_per_name, c.lookup_us,
                c.update_us_per_name / std::max(c.lookup_us, 1e-9));
  }
  std::printf("\nshape check: per-name update processing exceeds a typical lookup, "
              "and the full refresh touches every name while lookups touch one — "
              "hence update processing is the bottleneck the paper partitions "
              "vspaces to relieve.\n");
  return 0;
}
