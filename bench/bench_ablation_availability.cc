// Ablation — k-replica lookup availability vs the single-owner seed.
//
// In the seed, each virtual space has exactly one owning resolver: when it
// dies, every name in the space is unreachable until the owner's soft state
// is rebuilt from scratch (and the records themselves are simply gone from
// the overlay). Replica mode assigns each vspace a k-replica set; a dead
// member is detected by digest silence, reported to the DSR, and routed
// around, so lookups keep flowing off the survivors with zero names lost.
//
// One measurement per mode (off = seed, on = k=2), same script: announce
// 10^2 names into the "ha" vspace, flood lookups through a NON-member
// resolver, then kill the member serving the space mid-flood and keep
// flooding.
//   * steady_delivered / kill_delivered: probes answered before / after the
//     kill (40-probe window, one per 500 ms of virtual time).
//   * failover_ms: virtual time from the kill to the first delivered probe.
//   * names_surviving: records still held by a live replica after the kill.
// Invariants (exit 1), replica mode only:
//   * kill-window goodput >= (k-1)/k = 1/2 of the window's probes,
//   * failover within one keepalive interval (5 s),
//   * zero names lost.
//
// Writes a JSON report (argv[1], default bench_ablation_availability.json):
//   {"bench": "ablation_availability", "names": 100, "goodput_floor": 0.5,
//    "series": [{"replica_mode": false, "steady_delivered": ...,
//     "kill_delivered": ..., "kill_probes": ..., "failover_ms": ...,
//     "names_surviving": ...}, {"replica_mode": true, ...}]}

#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.h"
#include "ins/common/metrics.h"
#include "ins/harness/cluster.h"
#include "ins/wire/messages.h"

namespace {

using namespace ins;

constexpr uint32_t kNames = 100;
constexpr int kSteadyProbes = 20;
constexpr int kKillProbes = 40;  // x 500 ms = a 20 s flood window
constexpr double kGoodputFloor = 0.5;  // (k-1)/k at k=2
constexpr double kFailoverBudgetMs = 5000.0;  // one keepalive interval

struct Mode {
  bool replica_mode = false;
  int steady_delivered = 0;
  int kill_delivered = 0;
  double failover_ms = -1.0;  // -1: no probe ever delivered post-kill
  uint64_t names_surviving = 0;
  std::string metrics_json;  // surviving replica's registry (on-mode only)
};

std::string ProbeName(uint32_t index) {
  return "[vspace=ha][service=cam][id=c" + std::to_string(index) + "]";
}

Advertisement MakeAd(const NodeAddress& endpoint, uint32_t index) {
  Advertisement ad;
  ad.vspace = "ha";
  ad.name_text = ProbeName(index);
  ad.announcer = AnnouncerId{endpoint.ip, 1000, index};
  ad.endpoint.address = endpoint;
  ad.lifetime_s = 120;  // outlives the run: losses are failover losses
  ad.version = 1;
  return ad;
}

Mode RunMode(bool replica_mode) {
  Mode mode;
  mode.replica_mode = replica_mode;

  // Test-speed failover timers (mirrors replica_failover_test): 1 s digests,
  // 2 missed digests to declare death, 1 s owner-cache TTL — the whole chain
  // fits well inside one 5 s keepalive interval.
  ClusterOptions options;
  auto& repl = options.inr_template.replication;
  repl.enabled = replica_mode;
  repl.replica_k = replica_mode ? 2 : 1;
  repl.digest_interval = Seconds(1);
  repl.replica_missed_digests = 2;
  repl.owner_cache_ttl = Seconds(1);
  options.inr_template.load_balancer.replica_interval = Seconds(2);
  SimCluster cluster(options);
  Inr* a = cluster.AddInr(1, {"ha"});
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(2, {""});
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(3, {""});
  cluster.StabilizeTopology();
  cluster.loop().RunFor(Seconds(6));  // replica-set formation window

  std::vector<Inr*> members = cluster.ReplicasOf("ha");
  if (replica_mode && members.size() != 2) {
    std::printf("FAILED: replica set did not form (got %zu members)\n", members.size());
    std::exit(1);
  }
  Inr* outsider = nullptr;
  for (Inr* inr : cluster.inrs()) {
    bool member = false;
    for (Inr* m : members) {
      member = member || m == inr;
    }
    if (!member) {
      outsider = inr;
      break;
    }
  }

  // All names announced through the space's original owner; in replica mode
  // the journal cross-replicates them to the recruit.
  auto svc = cluster.AddEndpoint(10);
  for (uint32_t i = 0; i < kNames; ++i) {
    svc->Send(a->address(), Envelope{MessageBody(MakeAd(svc->address(), i))});
  }
  cluster.loop().RunFor(Seconds(4));

  auto probe = cluster.AddEndpoint(20);
  uint32_t next_name = 0;
  auto send_probe = [&] {
    Packet p;
    p.destination_name = ProbeName(next_name++ % kNames);
    p.payload = {0xab};
    probe->Send(outsider->address(), Envelope{MessageBody(std::move(p))});
  };

  // Steady state: every probe should land on the service endpoint.
  for (int n = 0; n < kSteadyProbes; ++n) {
    send_probe();
    cluster.loop().RunFor(Milliseconds(500));
  }
  mode.steady_delivered = static_cast<int>(svc->ReceivedOf<Packet>().size());

  // Kill the resolver serving "ha" mid-flood and keep probing.
  svc->ClearReceived();
  const TimePoint killed = cluster.loop().Now();
  cluster.CrashInr(a);
  size_t seen = 0;
  for (int n = 0; n < kKillProbes; ++n) {
    send_probe();
    cluster.loop().RunFor(Milliseconds(500));
    const size_t now_delivered = svc->ReceivedOf<Packet>().size();
    if (now_delivered > seen && mode.failover_ms < 0.0) {
      mode.failover_ms =
          static_cast<double>((cluster.loop().Now() - killed).count()) / 1000.0;
    }
    seen = now_delivered;
  }
  mode.kill_delivered = static_cast<int>(svc->ReceivedOf<Packet>().size());

  // Zero-names-lost check: a live replica must still hold the full table
  // (ReplicasOf only returns running resolvers, so the crashed `a` is gone).
  for (Inr* inr : cluster.ReplicasOf("ha")) {
    if (const NameTree* tree = inr->vspaces().Tree("ha")) {
      mode.names_surviving = tree->record_count();
      mode.metrics_json = bench::MetricsJson(inr->metrics(), 6);
    }
  }
  if (mode.metrics_json.empty()) {
    mode.metrics_json = "{}";
  }
  return mode;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench_ablation_availability.json";

  std::printf("availability ablation: %u names, %d-probe kill window\n", kNames, kKillProbes);
  std::printf("%-12s %-10s %-10s %-12s %-10s\n", "replicas", "steady", "post-kill",
              "failover ms", "surviving");

  std::vector<Mode> series;
  for (bool replica_mode : {false, true}) {
    Mode m = RunMode(replica_mode);
    series.push_back(m);
    std::printf("%-12s %d/%-8d %d/%-8d %-12.1f %llu\n", replica_mode ? "k=2" : "k=1 (seed)",
                m.steady_delivered, kSteadyProbes, m.kill_delivered, kKillProbes,
                m.failover_ms, static_cast<unsigned long long>(m.names_surviving));
  }

  const Mode& on = series[1];
  bool ok = true;
  if (on.steady_delivered < kSteadyProbes) {
    std::printf("FAILED: replica mode dropped probes in steady state (%d/%d)\n",
                on.steady_delivered, kSteadyProbes);
    ok = false;
  }
  if (on.kill_delivered < static_cast<int>(kGoodputFloor * kKillProbes)) {
    std::printf("FAILED: post-kill goodput below the (k-1)/k floor (%d/%d < %.0f%%)\n",
                on.kill_delivered, kKillProbes, kGoodputFloor * 100.0);
    ok = false;
  }
  if (on.failover_ms < 0.0 || on.failover_ms > kFailoverBudgetMs) {
    std::printf("FAILED: failover took %.1f ms (budget: one keepalive interval, %.0f ms)\n",
                on.failover_ms, kFailoverBudgetMs);
    ok = false;
  }
  if (on.names_surviving != kNames) {
    std::printf("FAILED: names lost in failover (%llu/%u survive)\n",
                static_cast<unsigned long long>(on.names_surviving), kNames);
    ok = false;
  }
  if (!ok) {
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_availability\",\n");
  std::fprintf(f, "  \"names\": %u,\n  \"steady_probes\": %d,\n  \"kill_probes\": %d,\n",
               kNames, kSteadyProbes, kKillProbes);
  std::fprintf(f, "  \"goodput_floor\": %.2f,\n  \"series\": [\n", kGoodputFloor);
  for (size_t i = 0; i < series.size(); ++i) {
    const Mode& m = series[i];
    std::fprintf(f,
                 "    {\"replica_mode\": %s, \"steady_delivered\": %d, "
                 "\"kill_delivered\": %d, \"failover_ms\": %.1f, "
                 "\"names_surviving\": %llu,\n     \"metrics\": %s}%s\n",
                 m.replica_mode ? "true" : "false", m.steady_delivered, m.kill_delivered,
                 m.failover_ms, static_cast<unsigned long long>(m.names_surviving),
                 m.metrics_json.c_str(), i + 1 < series.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("report: %s\n", out_path.c_str());
  return 0;
}
