// Ablation — overload control: the degradation curve from 1x to 8x load.
//
// One resolver with admission control enabled and a modeled service rate of
// 100 msg/s (processing_cost 10 ms) faces four workloads at once:
//   * class 0: a service refreshing its advertisement every 5 s (45 s life),
//   * class 1: a discovery probe every 200 ms,
//   * class 2: a late-binding data flood at `multiplier` x 90 msg/s
//     (90% of capacity at 1x, so the baseline runs healthy; 2x and up are
//     genuine overload).
// Each data packet carries its virtual send time; the receiving endpoint
// turns that into an end-to-end latency sample. 60 virtual seconds per
// multiplier, fresh cluster each time.
//
// The curve the numbers must draw — and the invariants this bench enforces
// (exit 1 otherwise):
//   * control plane survives every multiplier: zero class-0 sheds, zero
//     name-tree expiries, the record still present at the end;
//   * discovery keeps working: every probe answered, zero class-1 sheds —
//     degradation spends class 2 first, and class 2 is enough here;
//   * data goodput saturates at capacity instead of collapsing, and p99
//     latency of DELIVERED packets stays bounded by the class-2 shed
//     threshold (shed early, never queue without bound).
//
// Writes a JSON report (argv[1], default bench_ablation_overload.json):
//   {"bench": "ablation_overload", "capacity_msgs_per_s": 100, "series": [
//     {"multiplier": 1, "offered_per_s": 90, "data_delivered_per_s": ...,
//      "data_shed": ..., "p50_ms": ..., "p99_ms": ...,
//      "control_admitted": ..., "control_processed": ..., ...}, ...]}

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.h"
#include "ins/common/metrics.h"
#include "ins/harness/cluster.h"
#include "ins/wire/messages.h"

namespace {

using namespace ins;

constexpr int kCapacityPerS = 100;        // 1 / processing_cost
constexpr int kBaseDataPerS = 90;         // 1x leaves headroom for control
constexpr int kDurationS = 60;            // flood length per multiplier
constexpr uint32_t kAdLifetimeS = 45;
constexpr Duration kRefreshEvery = Seconds(5);
constexpr Duration kProbeEvery = Milliseconds(200);
// Every Nth flood packet carries a trace id: when the accounting invariant
// fails, the journeys of the sampled packets say exactly where they went.
constexpr uint64_t kTraceSampleEvery = 16;

struct SeriesPoint {
  int multiplier = 0;
  int offered_per_s = 0;
  uint64_t data_sent = 0;
  uint64_t data_admitted = 0;
  uint64_t data_shed = 0;
  uint64_t data_delivered = 0;
  uint64_t probes_sent = 0;
  uint64_t probes_answered = 0;
  uint64_t control_admitted = 0;
  uint64_t control_processed = 0;
  uint64_t control_shed = 0;
  uint64_t names_expired = 0;
  size_t record_count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::string metrics_json;  // the resolver's full registry snapshot
};

Advertisement MakeAd(const NodeAddress& endpoint, uint64_t version) {
  Advertisement ad;
  ad.name_text = "[service=sink]";
  ad.announcer = AnnouncerId{endpoint.ip, 1000, 0};
  ad.endpoint.address = endpoint;
  ad.lifetime_s = kAdLifetimeS;
  ad.version = version;
  return ad;
}

SeriesPoint RunMultiplier(int multiplier) {
  SimCluster cluster;
  InrConfig config = cluster.options().inr_template;
  config.admission.enabled = true;
  config.admission.processing_cost = Milliseconds(1000 / kCapacityPerS);
  Inr* inr = cluster.AddInrWithConfig(1, std::move(config));
  cluster.StabilizeTopology();

  SeriesPoint point;
  point.multiplier = multiplier;
  point.offered_per_s = kBaseDataPerS * multiplier;

  // The service: a raw socket whose receive handler timestamps every
  // delivered data packet against the virtual send time in its payload.
  auto svc_socket = cluster.net().Bind(MakeAddress(10));
  Histogram latency_us;  // end-to-end, log2-bucketed like the registry's own
  svc_socket->SetReceiveHandler([&](const NodeAddress&, const Bytes& data) {
    auto env = DecodeMessage(data);
    if (!env.ok()) {
      return;
    }
    if (const auto* packet = std::get_if<Packet>(&env->body)) {
      ByteReader r(packet->payload);
      if (auto sent_us = r.ReadU64(); sent_us.ok()) {
        ++point.data_delivered;
        const int64_t us = cluster.loop().Now().count() - static_cast<int64_t>(*sent_us);
        latency_us.Record(static_cast<uint64_t>(std::max<int64_t>(us, 0)));
      }
    }
  });
  svc_socket->Send(inr->address(), Encode(MakeAd(svc_socket->local_address(), 1)));
  cluster.Settle();

  const TimePoint flood_end = cluster.loop().Now() + Seconds(kDurationS);

  // Class 0: soft-state refresh, well inside the 45 s lifetime.
  uint64_t version = 1;
  std::function<void()> refresh = [&] {
    svc_socket->Send(inr->address(), Encode(MakeAd(svc_socket->local_address(), ++version)));
    if (cluster.loop().Now() < flood_end) {
      cluster.loop().ScheduleAfter(kRefreshEvery, refresh);
    }
  };
  cluster.loop().ScheduleAfter(kRefreshEvery, refresh);

  // Class 1: discovery probes.
  auto probe_socket = cluster.net().Bind(MakeAddress(20));
  probe_socket->SetReceiveHandler([&](const NodeAddress&, const Bytes& data) {
    auto env = DecodeMessage(data);
    if (env.ok() && std::get_if<DiscoveryResponse>(&env->body) != nullptr) {
      ++point.probes_answered;
    }
  });
  std::function<void()> probe = [&] {
    DiscoveryRequest req;
    req.request_id = ++point.probes_sent;
    req.reply_to = probe_socket->local_address();
    probe_socket->Send(inr->address(), Encode(req));
    if (cluster.loop().Now() < flood_end) {
      cluster.loop().ScheduleAfter(kProbeEvery, probe);
    }
  };
  probe();

  // Class 2: the data flood, one packet per event for a smooth arrival
  // process (burst shapes would measure the burst, not the controller).
  auto flood_socket = cluster.net().Bind(MakeAddress(30));
  const Duration gap = Microseconds(1000000 / (kBaseDataPerS * multiplier));
  std::function<void()> flood = [&] {
    Packet p;
    p.destination_name = "[service=sink]";
    ByteWriter w;
    w.WriteU64(static_cast<uint64_t>(cluster.loop().Now().count()));
    p.payload = std::move(w).TakeBytes();
    if (point.data_sent % kTraceSampleEvery == 0) {
      p.trace_id = (0x0B5E001ull << 32) ^ (point.data_sent + 1);
    }
    flood_socket->Send(inr->address(), EncodeMessage(Envelope{MessageBody(std::move(p))}));
    ++point.data_sent;
    if (cluster.loop().Now() < flood_end) {
      cluster.loop().ScheduleAfter(gap, flood);
    }
  };
  flood();

  cluster.loop().RunFor(Seconds(kDurationS) + Seconds(3));  // flood + drain-out

  const MetricsRegistry& m = inr->metrics();
  point.data_admitted = m.Counter("admission.admitted.class2");
  point.data_shed = m.Counter("forwarding.drop.shed_class2");
  point.control_admitted = m.Counter("admission.admitted.class0");
  point.control_processed = m.Counter("admission.processed.class0");
  point.control_shed = m.Counter("forwarding.drop.shed_class0") +
                       m.Counter("forwarding.drop.shed_class1");
  point.names_expired = m.Counter("discovery.names_expired");
  point.record_count = inr->vspaces().Tree("")->record_count();
  point.p50_ms = static_cast<double>(latency_us.P50()) / 1000.0;
  point.p99_ms = static_cast<double>(latency_us.P99()) / 1000.0;
  point.metrics_json = bench::MetricsJson(m, 6);

  // Sampled packets that neither arrived nor left a drop event vanished
  // somewhere; dump their journeys (to INS_TRACE_DUMP_DIR when set).
  if (point.data_delivered + point.data_shed != point.data_sent) {
    cluster.DumpLostJourneys("overload_x" + std::to_string(multiplier));
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench_ablation_overload.json";

  std::printf("overload ablation: capacity %d msg/s, %d s per multiplier\n", kCapacityPerS,
              kDurationS);
  std::printf("%-6s %-10s %-12s %-12s %-10s %-10s %-9s %-9s\n", "mult", "offered/s",
              "delivered/s", "data shed", "probes ok", "ctl ok", "p50 ms", "p99 ms");

  std::vector<SeriesPoint> series;
  bool ok = true;
  for (int multiplier : {1, 2, 4, 8}) {
    SeriesPoint p = RunMultiplier(multiplier);
    series.push_back(p);
    std::printf("%-6d %-10d %-12.1f %-12llu %llu/%-6llu %llu/%-6llu %-9.1f %-9.1f\n",
                p.multiplier, p.offered_per_s,
                static_cast<double>(p.data_delivered) / kDurationS,
                static_cast<unsigned long long>(p.data_shed),
                static_cast<unsigned long long>(p.probes_answered),
                static_cast<unsigned long long>(p.probes_sent),
                static_cast<unsigned long long>(p.control_processed),
                static_cast<unsigned long long>(p.control_admitted), p.p50_ms, p.p99_ms);

    // Graceful-degradation invariants; a violated one fails the bench.
    if (p.control_shed != 0 || p.names_expired != 0 || p.record_count != 1) {
      std::printf("FAILED at %dx: control plane degraded (shed=%llu expired=%llu records=%zu)\n",
                  p.multiplier, static_cast<unsigned long long>(p.control_shed),
                  static_cast<unsigned long long>(p.names_expired), p.record_count);
      ok = false;
    }
    if (p.probes_answered != p.probes_sent) {
      std::printf("FAILED at %dx: %llu of %llu discovery probes unanswered\n", p.multiplier,
                  static_cast<unsigned long long>(p.probes_sent - p.probes_answered),
                  static_cast<unsigned long long>(p.probes_sent));
      ok = false;
    }
    if (multiplier >= 2 && p.data_shed == 0) {
      std::printf("FAILED at %dx: overload but nothing shed\n", p.multiplier);
      ok = false;
    }
    if (p.data_delivered + p.data_shed != p.data_sent) {
      std::printf("FAILED at %dx: %llu data packets unaccounted for\n", p.multiplier,
                  static_cast<unsigned long long>(p.data_sent - p.data_delivered - p.data_shed));
      ok = false;
    }
  }
  if (!ok) {
    return 1;
  }
  std::printf("control plane survived every multiplier; degradation spent class 2 only\n");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_overload\",\n");
  std::fprintf(f, "  \"capacity_msgs_per_s\": %d,\n  \"duration_s\": %d,\n  \"series\": [\n",
               kCapacityPerS, kDurationS);
  for (size_t i = 0; i < series.size(); ++i) {
    const SeriesPoint& p = series[i];
    std::fprintf(f,
                 "    {\"multiplier\": %d, \"offered_per_s\": %d, "
                 "\"data_sent\": %llu, \"data_admitted\": %llu, \"data_shed\": %llu, "
                 "\"data_delivered_per_s\": %.1f, \"probes_sent\": %llu, "
                 "\"probes_answered\": %llu, \"control_admitted\": %llu, "
                 "\"control_processed\": %llu, \"control_shed\": %llu, "
                 "\"names_expired\": %llu, \"p50_ms\": %.2f, \"p99_ms\": %.2f,\n"
                 "     \"metrics\": %s}%s\n",
                 p.multiplier, p.offered_per_s, static_cast<unsigned long long>(p.data_sent),
                 static_cast<unsigned long long>(p.data_admitted),
                 static_cast<unsigned long long>(p.data_shed),
                 static_cast<double>(p.data_delivered) / kDurationS,
                 static_cast<unsigned long long>(p.probes_sent),
                 static_cast<unsigned long long>(p.probes_answered),
                 static_cast<unsigned long long>(p.control_admitted),
                 static_cast<unsigned long long>(p.control_processed),
                 static_cast<unsigned long long>(p.control_shed),
                 static_cast<unsigned long long>(p.names_expired), p.p50_ms, p.p99_ms,
                 p.metrics_json.c_str(), i + 1 == series.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
