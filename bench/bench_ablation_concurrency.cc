// Ablation — concurrent sharded lookup core: reader throughput vs threads.
//
// Builds a 50k-name store (8 hash shards over a family workload, left-right
// concurrent mode) and sweeps reader thread counts 1 -> 8. Each reader drains
// a shared op counter running 90% LOOKUP-NAME / 10% GET-NAME from a fixed
// query set; every result is checked against a reference answer computed
// single-threaded before the sweep, so a sweep only counts if the concurrent
// readers return byte-identical results. A final series adds one background
// writer (lease refreshes + version bumps) to show reader throughput under
// write pressure.
//
// Writes a JSON report (argv[1], default bench_ablation_concurrency.json):
//   {"bench": "ablation_concurrency", "hardware_concurrency": ...,
//    "tree_records": 50000, "series": [{"threads": 1, "ops_per_s": ...}, ...]}
//
// The scaling claim (>= 3x at 8 threads vs 1) holds on multi-core hosts; the
// report records hardware_concurrency so single-core CI runs are read for
// what they are — a no-contention sanity check, not a scaling result.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ins/common/clock.h"
#include "ins/common/rng.h"
#include "ins/name/name_specifier.h"
#include "ins/nametree/name_record.h"
#include "ins/nametree/sharded_name_tree.h"

namespace {

using namespace ins;

constexpr size_t kRecords = 50000;
constexpr size_t kShards = 8;
constexpr size_t kFamilies = 16;
constexpr size_t kQueries = 1024;
constexpr uint64_t kOpsPerSweep = 60000;

std::string FamilyAttr(uint64_t k) { return "svc_" + std::to_string(k % kFamilies); }

// Each advertisement roots at a family attribute (svc_*: the shard key) and
// additionally carries a `unit` root shared by EVERY shard. Queries always
// constrain `unit`: an attribute present in all shards keeps the "absent
// attribute is unconstrained" rule from turning cross-shard queries into
// whole-store scans, so result sizes stay bounded and bench ops measure the
// lookup machinery rather than bulk record copying.
NameSpecifier MakeName(Rng& rng, uint32_t i) {
  NameSpecifier n;
  n.AddPath({{FamilyAttr(rng.NextBelow(kFamilies)), "v" + std::to_string(rng.NextBelow(8))},
             {"kind", "k" + std::to_string(rng.NextBelow(8))}});
  n.AddPath({{"unit", "u" + std::to_string(i % 1024)}});
  return n;
}

AnnouncerId IdOf(uint32_t i) {
  return AnnouncerId{0x0a000000u + i, 1000, i};
}

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

// Deterministic op `op` against the store; returns a result fingerprint.
uint64_t RunOp(const ShardedNameTree& store, const std::vector<NameSpecifier>& queries,
               uint64_t op) {
  uint64_t h = 0;
  if (op % 10 == 9) {
    // GET-NAME of a fixed announcer per op slot.
    auto name = store.GetName("", IdOf(static_cast<uint32_t>(op * 677 % kRecords) + 1));
    if (name.has_value()) {
      h = Mix(h, std::hash<std::string>{}(name->ToString()));
    }
    return h;
  }
  for (const NameRecord& rec : store.Lookup("", queries[op % kQueries])) {
    h = Mix(h, (static_cast<uint64_t>(rec.announcer.ip) << 20) ^ rec.version);
  }
  return h;
}

struct Sweep {
  size_t threads = 0;
  bool with_writer = false;
  double ops_per_s = 0.0;
  uint64_t mismatches = 0;
};

Sweep RunSweep(const ShardedNameTree& store, ShardedNameTree* mut_store,
               const std::vector<NameSpecifier>& queries,
               const std::vector<uint64_t>& reference, size_t threads, bool with_writer) {
  std::atomic<uint64_t> next_op{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<bool> writer_stop{false};

  std::thread writer;
  if (with_writer) {
    writer = std::thread([mut_store, &writer_stop] {
      Rng rng(99);
      uint64_t v = 2;
      while (!writer_stop.load(std::memory_order_acquire)) {
        const uint32_t i = static_cast<uint32_t>(rng.NextBelow(kRecords)) + 1;
        mut_store->RefreshExpiry("", IdOf(i), Seconds(1u << 30));
        if (rng.NextBool(0.2)) {
          Rng nrng(i);  // the record keeps its name; only the version moves
          NameRecord rec;
          rec.announcer = IdOf(i);
          rec.expires = Seconds(1u << 30);
          rec.version = ++v;
          mut_store->Upsert("", MakeName(nrng, i), rec);
        }
        std::this_thread::yield();  // don't starve readers on small hosts
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> readers;
  readers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    readers.emplace_back([&] {
      uint64_t bad = 0;
      for (uint64_t op = next_op.fetch_add(1, std::memory_order_relaxed);
           op < kOpsPerSweep; op = next_op.fetch_add(1, std::memory_order_relaxed)) {
        const uint64_t slot = op % reference.size();
        const uint64_t h = RunOp(store, queries, slot);
        // Under a concurrent writer results legitimately drift; otherwise
        // every reader must reproduce the single-threaded answer exactly.
        if (!with_writer && h != reference[slot]) {
          ++bad;
        }
      }
      mismatches.fetch_add(bad, std::memory_order_relaxed);
    });
  }
  for (auto& r : readers) {
    r.join();
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  if (with_writer) {
    writer_stop.store(true, std::memory_order_release);
    writer.join();
  }

  Sweep s;
  s.threads = threads;
  s.with_writer = with_writer;
  s.ops_per_s = static_cast<double>(kOpsPerSweep) / secs;
  s.mismatches = mismatches.load();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench_ablation_concurrency.json";

  ShardedNameTree::Options opts;
  opts.fallback_shards = kShards;
  opts.concurrent = true;
  ShardedNameTree store(opts);
  store.AddSpace("");

  // 50k-name family workload, batch-published.
  Rng rng(4242);
  std::vector<std::pair<NameSpecifier, NameRecord>> batch;
  batch.reserve(1000);
  for (uint32_t i = 1; i <= kRecords; ++i) {
    Rng nrng(i);  // name derivable from i alone (the writer reuses this)
    NameRecord rec;
    rec.announcer = IdOf(i);
    rec.expires = Seconds(1u << 30);
    rec.version = 1;
    batch.emplace_back(MakeName(nrng, i), rec);
    if (batch.size() == 1000) {
      store.UpsertBatch("", batch);
      batch.clear();
    }
  }

  // Query mix, always unit-anchored: plain unit point queries, family
  // wildcards, and nested kind constraints.
  std::vector<NameSpecifier> queries;
  queries.reserve(kQueries);
  for (size_t q = 0; q < kQueries; ++q) {
    NameSpecifier spec;
    const std::string fam = FamilyAttr(rng.NextBelow(kFamilies));
    const std::string unit = "u" + std::to_string(rng.NextBelow(1024));
    if (q % 3 == 1) {
      spec.AddPathValue({}, fam, Value::Wildcard());
    } else if (q % 3 == 2) {
      spec.AddPath({{fam, "v" + std::to_string(rng.NextBelow(8))},
                    {"kind", "k" + std::to_string(rng.NextBelow(8))}});
    }
    spec.AddPath({{"unit", unit}});
    queries.push_back(std::move(spec));
  }

  // Reference answers, computed single-threaded.
  std::vector<uint64_t> reference(kQueries * 10);
  for (uint64_t op = 0; op < reference.size(); ++op) {
    reference[op] = RunOp(store, queries, op);
  }

  std::printf("concurrent sharded lookup core: %zu records, %zu shards, hw=%u\n",
              store.TotalRecordCount(), kShards, std::thread::hardware_concurrency());
  std::printf("%-10s %-12s %-14s %s\n", "threads", "writer", "ops/sec", "mismatches");

  std::vector<Sweep> series;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    series.push_back(RunSweep(store, &store, queries, reference, threads, false));
    const Sweep& s = series.back();
    std::printf("%-10zu %-12s %-14.0f %llu\n", s.threads, "no", s.ops_per_s,
                static_cast<unsigned long long>(s.mismatches));
  }
  for (size_t threads : {2u, 4u}) {
    series.push_back(RunSweep(store, &store, queries, reference, threads, true));
    const Sweep& s = series.back();
    std::printf("%-10zu %-12s %-14.0f %s\n", s.threads, "yes", s.ops_per_s, "-");
  }

  uint64_t total_mismatches = 0;
  for (const Sweep& s : series) {
    total_mismatches += s.mismatches;
  }
  if (total_mismatches != 0 || !store.CheckInvariants().ok()) {
    std::printf("FAILED: %llu result mismatches vs single-threaded reference\n",
                static_cast<unsigned long long>(total_mismatches));
    return 1;
  }
  std::printf("all sweeps byte-identical to the single-threaded reference\n");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_concurrency\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f, "  \"tree_records\": %zu,\n  \"fallback_shards\": %zu,\n", kRecords, kShards);
  std::fprintf(f, "  \"ops_per_sweep\": %llu,\n  \"series\": [\n",
               static_cast<unsigned long long>(kOpsPerSweep));
  for (size_t i = 0; i < series.size(); ++i) {
    const Sweep& s = series[i];
    std::fprintf(f, "    {\"threads\": %zu, \"background_writer\": %s, \"ops_per_s\": %.1f}%s\n",
                 s.threads, s.with_writer ? "true" : "false", s.ops_per_s,
                 i + 1 == series.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
