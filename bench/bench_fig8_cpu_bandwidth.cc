// Figure 8 — CPU vs. bandwidth saturation for name update processing.
//
// Paper: with a 15-second refresh interval and randomly generated 82-byte
// intentional names, a 450 MHz Pentium II running the Java resolver
// saturates its CPU before the name-update traffic fills a 1 Mbit/s wireless
// link; name update processing, not bandwidth, is the scaling bottleneck
// (§2.5, motivating virtual-space partitioning).
//
// Reproduction: one resolver receives a full refresh round of N names
// (encoded NameUpdate batches through the real decode + Bellman-Ford +
// name-tree path, version-bumped like real client refreshes). We measure the
// wall-clock processing time of the round, then report:
//   bw%          — update bytes vs. a 1 Mbit/s link over the 15 s interval
//   cpu%(2026)   — processing time vs. the 15 s interval on this machine
//   cpu%(cal.)   — same, scaled so the per-name cost matches the paper's
//                  hardware (calibrated at the N where the paper's CPU
//                  saturates); shows the paper's crossover mechanically.

#include <cstdio>

#include "bench_support.h"
#include "ins/harness/cluster.h"

namespace {

using namespace ins;

constexpr double kRefreshIntervalS = 15.0;
constexpr double kLinkBps = 1e6;
// The paper's CPU is saturated (100%) at roughly this many names.
constexpr size_t kCalibrationNames = 10000;

struct RoundResult {
  double seconds = 0;
  size_t bytes = 0;
};

// Sends one full refresh round of `entries` to the resolver and measures the
// wall time the resolver spends processing it.
RoundResult RunRound(SimCluster& cluster, SimCluster::Endpoint& peer, Inr* inr,
                     std::vector<NameUpdateEntry>& entries, uint64_t version) {
  RoundResult out;
  constexpr size_t kBatch = 64;
  std::vector<Bytes> encoded;
  for (size_t i = 0; i < entries.size(); i += kBatch) {
    NameUpdate update;
    update.vspace = "";
    size_t end = std::min(entries.size(), i + kBatch);
    for (size_t j = i; j < end; ++j) {
      entries[j].version = version;
      update.entries.push_back(entries[j]);
    }
    encoded.push_back(EncodeMessage(Envelope{MessageBody(std::move(update))}));
  }
  for (const Bytes& b : encoded) {
    out.bytes += b.size();
    peer.socket().Send(inr->address(), b);
  }
  out.seconds = bench::WallSeconds([&] { cluster.loop().RunFor(Milliseconds(100)); });
  return out;
}

}  // namespace

int main() {
  bench::Banner(
      "Figure 8: CPU vs bandwidth saturation (15 s refresh, 82-byte names, 1 Mbit/s)",
      "Pentium II CPU saturates (100%) well before update traffic reaches 1 Mbit/s; "
      "bandwidth utilisation stays below the link rate across 0..20000 names");

  Rng rng(7);
  std::vector<size_t> points = {2500, 5000, 7500, 10000, 12500, 15000, 17500, 20000};

  // Build the workload once: N distinct 82-byte names from distinct announcers.
  std::vector<NameUpdateEntry> entries;
  entries.reserve(points.back());
  for (size_t i = 0; i < points.back(); ++i) {
    NameUpdateEntry e;
    e.name_text = GenerateSizedName(rng, 82).ToString();
    e.announcer = AnnouncerId{0x0b000000u + static_cast<uint32_t>(i), 1, 0};
    e.endpoint.address = MakeAddress(static_cast<uint32_t>(i % 200 + 2));
    e.route_metric = 1.0;
    e.lifetime_s = 45;
    entries.push_back(std::move(e));
  }

  // Calibrate the per-name cost against the paper's hardware.
  double calibration_scale = 0;
  {
    SimCluster cluster;
    Inr* inr = cluster.AddInr(1);
    cluster.StabilizeTopology();
    auto peer = cluster.AddEndpoint(200);
    std::vector<NameUpdateEntry> cal(entries.begin(),
                                     entries.begin() + static_cast<long>(kCalibrationNames));
    RunRound(cluster, *peer, inr, cal, 1);             // insert round
    auto round = RunRound(cluster, *peer, inr, cal, 2);  // steady-state refresh
    calibration_scale = kRefreshIntervalS / round.seconds;
    std::printf("calibration: refresh of %zu names takes %.4f s here; scaling "
                "x%.0f emulates the paper's saturated CPU at that point\n\n",
                kCalibrationNames, round.seconds, calibration_scale);
  }

  std::printf("%8s %12s %12s %8s %12s %12s\n", "names", "refresh_s", "KB/round",
              "bw%", "cpu%(2026)", "cpu%(cal.)");
  for (size_t n : points) {
    SimCluster cluster;
    Inr* inr = cluster.AddInr(1);
    cluster.StabilizeTopology();
    auto peer = cluster.AddEndpoint(200);
    std::vector<NameUpdateEntry> subset(entries.begin(),
                                        entries.begin() + static_cast<long>(n));
    RunRound(cluster, *peer, inr, subset, 1);  // initial discovery
    RoundResult round = RunRound(cluster, *peer, inr, subset, 2);

    double bw_util = static_cast<double>(round.bytes) * 8.0 / (kRefreshIntervalS * kLinkBps);
    double cpu_modern = round.seconds / kRefreshIntervalS;
    double cpu_calibrated = cpu_modern * calibration_scale;
    std::printf("%8zu %12.4f %12.1f %7.1f%% %11.2f%% %11.1f%%\n", n, round.seconds,
                static_cast<double>(round.bytes) / 1024.0, bw_util * 100.0,
                cpu_modern * 100.0, std::min(100.0, cpu_calibrated * 100.0));
  }
  std::printf("\nshape check: calibrated CPU reaches 100%% while bandwidth stays "
              "below 100%% of the 1 Mbit/s link — the paper's crossover.\n");
  return 0;
}
