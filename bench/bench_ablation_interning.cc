// Ablation — symbol interning on the LOOKUP-NAME hot path.
//
// Compares the resolver's interned core (SymbolTable + CompiledName +
// SymbolId-keyed flat node maps + reused lookup scratch) against the
// pre-interning string-keyed tree (ins/baseline/string_name_tree.h):
// per-node `unordered_map<std::string, ...>`, strings re-hashed per probe,
// range tokens re-parsed per candidate, intersection vectors allocated per
// query. Same Figure 12 workload shape (r_a=3, r_v=3, n_a=2, d=3), same
// seeds, 10^2–10^4 names; both sides return identical results (asserted at
// setup), so the ratio isolates the constant-factor change.
//
// Run with --benchmark_format=json (the CI bench job does) and the
// acceptance bar is >= 2x median lookups_per_s for interned/string at 10^4
// names.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_support.h"
#include "ins/baseline/string_name_tree.h"
#include "ins/name/compiled_name.h"
#include "ins/workload/namegen.h"

namespace {

using namespace ins;

// Both trees are populated from identical (name, record) streams; queries are
// drawn from the same generator state so every (impl, n) pair measures the
// same work.
constexpr uint64_t kSeed = 42;
constexpr int kQueryCount = 1000;

std::vector<NameSpecifier> MakeQueries(Rng& rng) {
  std::vector<NameSpecifier> queries;
  queries.reserve(kQueryCount);
  for (int i = 0; i < kQueryCount; ++i) {
    queries.push_back(GenerateUniformName(rng, kPaperLookupParams));
  }
  return queries;
}

void BM_LookupStringKeyed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(kSeed);
  StringNameTree tree;
  {
    // Populate with the exact stream PopulateTree feeds the interned tree.
    Rng pop_rng(kSeed);
    NameTree reference;
    std::vector<NameSpecifier> ads = bench::PopulateTree(&reference, n, pop_rng);
    for (size_t i = 0; i < ads.size(); ++i) {
      NameRecord rec;
      rec.announcer = AnnouncerId{0x0a000000u + static_cast<uint32_t>(i + 1), 1000,
                                  static_cast<uint32_t>(i)};
      rec.endpoint.address = MakeAddress(static_cast<uint32_t>(i % 250 + 1));
      rec.expires = Seconds(1u << 30);
      rec.version = 1;
      tree.Insert(ads[i], rec);
    }
    rng = pop_rng;  // continue the stream where population left it
  }
  std::vector<NameSpecifier> queries = MakeQueries(rng);

  size_t qi = 0;
  for (auto _ : state) {
    auto records = tree.Lookup(queries[qi]);
    benchmark::DoNotOptimize(records);
    qi = (qi + 1) % queries.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["lookups_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["names_in_tree"] = static_cast<double>(n);
  state.counters["memory_bytes"] = static_cast<double>(tree.MemoryBytes());
}

void BM_LookupInterned(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(kSeed);
  NameTree tree;
  bench::PopulateTree(&tree, n, rng);
  std::vector<NameSpecifier> queries = MakeQueries(rng);

  // The per-store-operation path: compile once per query against the tree's
  // intern table, reuse an explicit scratch across calls.
  std::vector<CompiledName> compiled;
  compiled.reserve(queries.size());
  for (const NameSpecifier& q : queries) {
    compiled.push_back(CompiledName::ForQuery(q, tree.symbols()));
  }
  NameTree::LookupScratch scratch;

  size_t qi = 0;
  for (auto _ : state) {
    auto records = tree.Lookup(compiled[qi], &scratch);
    benchmark::DoNotOptimize(records);
    qi = (qi + 1) % queries.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["lookups_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["names_in_tree"] = static_cast<double>(n);
  state.counters["memory_bytes"] =
      static_cast<double>(tree.ComputeStats().bytes);
}

// Result-equality check: the ablation is meaningless if the two cores
// disagree. Runs once at startup over every population size.
void VerifyIdenticalResults() {
  for (size_t n : {100u, 1000u, 10000u}) {
    Rng rng(kSeed);
    NameTree interned;
    std::vector<NameSpecifier> ads = bench::PopulateTree(&interned, n, rng);
    StringNameTree stringly;
    for (size_t i = 0; i < ads.size(); ++i) {
      NameRecord rec;
      rec.announcer = AnnouncerId{0x0a000000u + static_cast<uint32_t>(i + 1), 1000,
                                  static_cast<uint32_t>(i)};
      rec.endpoint.address = MakeAddress(static_cast<uint32_t>(i % 250 + 1));
      rec.expires = Seconds(1u << 30);
      rec.version = 1;
      stringly.Insert(ads[i], rec);
    }
    std::vector<NameSpecifier> queries = MakeQueries(rng);
    for (const NameSpecifier& q : queries) {
      auto a = interned.Lookup(q);
      auto b = stringly.Lookup(q);
      bool same = a.size() == b.size();
      for (size_t i = 0; same && i < a.size(); ++i) {
        same = a[i]->announcer == b[i]->announcer;
      }
      if (!same) {
        std::fprintf(stderr,
                     "FATAL: interned and string-keyed lookup disagree at n=%zu "
                     "query=%s\n",
                     n, q.ToString().c_str());
        std::exit(1);
      }
    }
  }
}

BENCHMARK(BM_LookupStringKeyed)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_LookupInterned)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  bench::Banner(
      "Ablation: symbol interning on the LOOKUP-NAME hot path "
      "(string-keyed baseline vs interned core, Fig-12 workload)",
      "n/a (implementation ablation; acceptance: >= 2x median lookups_per_s "
      "at 10^4 names)");
  VerifyIdenticalResults();
  std::printf("result check: interned == string-keyed on all seeds\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
