// Ablation — triggered vs. periodic-only name dissemination (§2.2).
//
// The paper's discovery protocol sends triggered updates when new or changed
// information arrives, on top of periodic refreshes. This ablation disables
// triggered updates and measures the discovery time of a fresh name across a
// 5-resolver chain: with triggered updates, tens of milliseconds (Figure 14
// regime); with periodic-only, up to one full update interval per hop.

#include <cstdio>
#include <map>

#include "bench_support.h"
#include "ins/harness/cluster.h"

namespace {

using namespace ins;

constexpr uint32_t kChain = 5;

double MeasureDiscoveryMs(bool triggered) {
  ClusterOptions options;
  options.default_link = {Milliseconds(4), 0, 0};
  options.inr_template.discovery.triggered_updates = triggered;
  options.inr_template.discovery.update_interval = Seconds(15);
  SimCluster cluster(options);
  for (uint32_t i = 1; i <= kChain; ++i) {
    for (uint32_t j = i + 1; j <= kChain; ++j) {
      cluster.net().SetLink(MakeAddress(i).ip, MakeAddress(j).ip,
                            {Milliseconds(4) * (j - i), 0, 0});
    }
  }
  std::vector<Inr*> chain;
  for (uint32_t i = 1; i <= kChain; ++i) {
    chain.push_back(cluster.AddInr(i));
    cluster.loop().RunFor(Seconds(1));
  }
  cluster.StabilizeTopology();

  TimePoint tail_time{-1};
  chain.back()->discovery().on_name_discovered =
      [&](const std::string&, const NameSpecifier&, const NameRecord&) {
        tail_time = cluster.loop().Now();
      };

  auto svc = cluster.AddEndpoint(100);
  Advertisement ad;
  ad.name_text = "[service=sensor[id=fresh]][room=510]";
  ad.announcer = AnnouncerId{svc->address().ip, 1000, 0};
  ad.endpoint.address = svc->address();
  ad.lifetime_s = 120;
  ad.version = 1;
  TimePoint t0 = cluster.loop().Now();
  svc->Send(chain.front()->address(), Envelope{MessageBody(ad)});
  cluster.loop().RunFor(Seconds(90));  // several periodic intervals
  return tail_time.count() >= 0 ? ToMillis(tail_time - t0) : -1.0;
}

}  // namespace

int main() {
  bench::Banner("Ablation: triggered updates vs periodic-only dissemination",
                "triggered: new names cross the overlay in tens of ms; disabled: "
                "each hop waits for the next periodic (15 s) update");
  double with_triggered = MeasureDiscoveryMs(true);
  double without = MeasureDiscoveryMs(false);
  std::printf("%-28s %14.1f ms\n", "triggered updates ON", with_triggered);
  std::printf("%-28s %14.1f ms\n", "triggered updates OFF", without);
  std::printf("\nspeedup from triggered updates across %u hops: %.0fx\n", kChain - 1,
              without / with_triggered);
  std::printf("shape check: ON is tens of milliseconds; OFF is on the order of "
              "hops * update interval.\n");
  return 0;
}
