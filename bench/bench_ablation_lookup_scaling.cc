// Ablation — §5.1.1 lookup-cost analysis: hash-based name-tree vs. linear
// structures, and the posting-list index vs. the Figure-5 tree walk.
//
// The paper derives T(d) = Θ(n_a^d (r_a + r_v + b)) for linear attribute/
// value search and Θ(n_a^d (1 + b)) with hash tables, and argues d stays
// small in practice. This bench measures:
//   * the hash-based NameTree (the shipped implementation),
//   * the LinearNameTable baseline (no shared structure: Matches() over
//     every advertisement — the degenerate end of the analysis),
// across tree size n and name depth d, confirming (i) the tree's lookup cost
// is roughly flat in n while the linear scan degrades linearly, and (ii)
// cost grows with n_a^d (the per-name work), not with vocabulary size.
//
// The *Conjunctive pair extends the ablation to the million-name regime the
// index targets: a service-directory-shaped workload (a broad svc family ×
// a narrow unit id per record) where the walk's cost is dominated by
// collecting the broad conjunct's subtree while the index streams the rare
// posting and probes a bitmap. Both engines run against the SAME tree —
// BM_IndexConjunctive through Lookup() (posting-list path), and
// BM_WalkConjunctive through LookupTreeWalk() (index bypassed) — and the
// binary REFUSES to run (exit 1) unless both return hash-identical result
// sets on every query at 10^5 names. CI's gate additionally requires
// index-on >= 5x walk throughput at 10^5 (see ci.yml), using the
// `result_hash` counters emitted here to re-assert set identity from JSON.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_support.h"
#include "ins/baseline/linear_name_table.h"
#include "ins/workload/namegen.h"

namespace {

using namespace ins;

// ---------------------------------------------------------------------------
// Conjunctive million-name workload (index-on/off ablation).
// ---------------------------------------------------------------------------

// Record i advertises [svc=s{i%32} [inst=n{i%4096}]] [unit=u{i%509}]:
// svc selects 1/32 of the tree (a dense bitmap posting), unit 1/509 (a rare
// sorted posting; 509 is prime so the two moduli stay independent). Their
// conjunction matches ~n/16k records.
constexpr size_t kSvcFamilies = 32;
constexpr size_t kInstSlots = 4096;
constexpr size_t kUnitSlots = 509;

NameSpecifier ConjName(size_t i) {
  NameSpecifier n;
  n.AddPath({{"svc", "s" + std::to_string(i % kSvcFamilies)},
             {"inst", "n" + std::to_string(i % kInstSlots)}});
  n.AddPath({{"unit", "u" + std::to_string(i % kUnitSlots)}});
  return n;
}

void PopulateConjTree(NameTree* tree, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    NameRecord rec;
    rec.announcer = AnnouncerId{0x0a000000u + static_cast<uint32_t>(i + 1), 1000,
                                static_cast<uint32_t>(i)};
    rec.expires = Seconds(1u << 30);
    rec.version = 1;
    tree->Upsert(ConjName(i), rec);
  }
}

// 256 two-conjunct literal queries [svc=s?][unit=u?] cycling over the
// families; the 7q+3 stride decorrelates the pair from the population.
std::vector<CompiledName> MakeConjQueries(const NameTree& tree) {
  std::vector<CompiledName> out;
  out.reserve(256);
  for (size_t q = 0; q < 256; ++q) {
    NameSpecifier spec;
    spec.AddPath({{"svc", "s" + std::to_string(q % kSvcFamilies)}});
    spec.AddPath({{"unit", "u" + std::to_string((q * 7 + 3) % kUnitSlots)}});
    out.push_back(CompiledName::ForQuery(spec, tree.symbols()));
  }
  return out;
}

// FNV-1a over the announcer identities of every query's result set, in
// result order. Identical across engines iff the result sets are identical.
uint64_t ResultHash(const std::vector<const NameRecord*>& recs) {
  uint64_t h = UINT64_C(0xcbf29ce484222325);
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= UINT64_C(0x100000001b3);
  };
  for (const NameRecord* r : recs) {
    mix(r->announcer.ip);
    mix(r->announcer.start_time_us);
    mix(r->announcer.discriminator);
  }
  return h;
}

template <typename LookupFn>
uint64_t HashAllQueries(const std::vector<CompiledName>& queries, LookupFn&& lookup) {
  uint64_t h = UINT64_C(0x84222325cbf29ce4);
  for (const CompiledName& q : queries) {
    h ^= ResultHash(lookup(q));
    h *= UINT64_C(0x100000001b3);
  }
  return h;
}

// Exits the process unless the index path and the tree walk return
// hash-identical result sets for every query at `n` names. Runs before the
// benchmarks so a semantic divergence can never be reported as a speedup.
void VerifyConjParityOrDie(size_t n) {
  NameTree tree;
  PopulateConjTree(&tree, n);
  const std::vector<CompiledName> queries = MakeConjQueries(tree);
  NameTree::LookupScratch scratch;
  size_t nonempty = 0;
  for (const CompiledName& q : queries) {
    const auto via_index = tree.Lookup(q, &scratch);
    const auto via_walk = tree.LookupTreeWalk(q, &scratch);
    nonempty += via_index.empty() ? 0 : 1;
    if (ResultHash(via_index) != ResultHash(via_walk)) {
      std::fprintf(stderr,
                   "FATAL: index/walk result divergence at n=%zu "
                   "(index=%zu records, walk=%zu records)\n",
                   n, via_index.size(), via_walk.size());
      std::exit(1);
    }
  }
  const PostingIndexStats stats = tree.index_stats();
  if (stats.index_lookups == 0 || nonempty == 0) {
    std::fprintf(stderr,
                 "FATAL: parity check did not exercise the index path "
                 "(index_lookups=%llu, nonempty=%zu)\n",
                 static_cast<unsigned long long>(stats.index_lookups), nonempty);
    std::exit(1);
  }
  std::printf("parity: %zu queries at n=%zu, index==walk, %zu non-empty\n",
              queries.size(), n, nonempty);
}

void BM_IndexConjunctive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  NameTree tree;
  PopulateConjTree(&tree, n);
  const std::vector<CompiledName> queries = MakeConjQueries(tree);
  NameTree::LookupScratch scratch;
  state.counters["result_hash"] = static_cast<double>(
      HashAllQueries(queries, [&](const CompiledName& q) { return tree.Lookup(q, &scratch); }) >>
      24);  // truncated to stay exact in a double
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(queries[qi], &scratch));
    qi = (qi + 1) % queries.size();
  }
  state.counters["lookups_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["index_bytes"] = static_cast<double>(tree.ComputeStats().index_bytes);
}

void BM_WalkConjunctive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  NameTree tree;
  PopulateConjTree(&tree, n);
  const std::vector<CompiledName> queries = MakeConjQueries(tree);
  NameTree::LookupScratch scratch;
  state.counters["result_hash"] = static_cast<double>(
      HashAllQueries(
          queries, [&](const CompiledName& q) { return tree.LookupTreeWalk(q, &scratch); }) >>
      24);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.LookupTreeWalk(queries[qi], &scratch));
    qi = (qi + 1) % queries.size();
  }
  state.counters["lookups_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_IndexConjunctive)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WalkConjunctive)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Hash tree vs linear scan (the original §5.1.1 ablation).
// ---------------------------------------------------------------------------

std::vector<NameSpecifier> MakeQueries(Rng& rng, const UniformNameParams& shape) {
  std::vector<NameSpecifier> queries;
  queries.reserve(256);
  for (int i = 0; i < 256; ++i) {
    queries.push_back(GenerateUniformName(rng, shape));
  }
  return queries;
}

void BM_TreeLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const UniformNameParams shape{3, 3, 2, static_cast<size_t>(state.range(1))};
  Rng rng(42);
  NameTree tree;
  bench::PopulateTree(&tree, n, rng, shape);
  auto queries = MakeQueries(rng, shape);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(queries[qi]));
    qi = (qi + 1) % queries.size();
  }
  state.counters["lookups_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_LinearLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const UniformNameParams shape{3, 3, 2, static_cast<size_t>(state.range(1))};
  Rng rng(42);
  LinearNameTable table;
  for (size_t i = 0; i < n; ++i) {
    NameRecord rec;
    rec.announcer = AnnouncerId{0x0a000000u + static_cast<uint32_t>(i + 1), 1000, 0};
    rec.expires = Seconds(1u << 30);
    rec.version = 1;
    table.Upsert(GenerateUniformName(rng, shape), rec);
  }
  auto queries = MakeQueries(rng, shape);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(queries[qi]));
    qi = (qi + 1) % queries.size();
  }
  state.counters["lookups_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

// n sweep at the paper's depth (d=3): tree ~flat, linear degrades with n.
BENCHMARK(BM_TreeLookup)->Args({100, 3})->Args({1000, 3})->Args({5000, 3})->Args({14300, 3});
BENCHMARK(BM_LinearLookup)->Args({100, 3})->Args({1000, 3})->Args({5000, 3})->Args({14300, 3});

// d sweep at fixed n: both grow with n_a^d, as the analysis predicts.
BENCHMARK(BM_TreeLookup)->Args({2000, 1})->Args({2000, 2})->Args({2000, 3})->Args({2000, 4});

}  // namespace

int main(int argc, char** argv) {
  bench::Banner(
      "Ablation (analysis 5.1.1): hash name-tree vs linear scan",
      "T(d) = Theta(n_a^d (1+b)) hashed vs Theta(n_a^d (r_a+r_v+b)) linear; the "
      "tree's advantage grows with the number of names");
  VerifyConjParityOrDie(100000);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
