// Ablation — §5.1.1 lookup-cost analysis: hash-based name-tree vs. linear
// structures.
//
// The paper derives T(d) = Θ(n_a^d (r_a + r_v + b)) for linear attribute/
// value search and Θ(n_a^d (1 + b)) with hash tables, and argues d stays
// small in practice. This bench measures:
//   * the hash-based NameTree (the shipped implementation),
//   * the LinearNameTable baseline (no shared structure: Matches() over
//     every advertisement — the degenerate end of the analysis),
// across tree size n and name depth d, confirming (i) the tree's lookup cost
// is roughly flat in n while the linear scan degrades linearly, and (ii)
// cost grows with n_a^d (the per-name work), not with vocabulary size.

#include <benchmark/benchmark.h>

#include "bench_support.h"
#include "ins/baseline/linear_name_table.h"
#include "ins/workload/namegen.h"

namespace {

using namespace ins;

std::vector<NameSpecifier> MakeQueries(Rng& rng, const UniformNameParams& shape) {
  std::vector<NameSpecifier> queries;
  queries.reserve(256);
  for (int i = 0; i < 256; ++i) {
    queries.push_back(GenerateUniformName(rng, shape));
  }
  return queries;
}

void BM_TreeLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const UniformNameParams shape{3, 3, 2, static_cast<size_t>(state.range(1))};
  Rng rng(42);
  NameTree tree;
  bench::PopulateTree(&tree, n, rng, shape);
  auto queries = MakeQueries(rng, shape);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(queries[qi]));
    qi = (qi + 1) % queries.size();
  }
  state.counters["lookups_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_LinearLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const UniformNameParams shape{3, 3, 2, static_cast<size_t>(state.range(1))};
  Rng rng(42);
  LinearNameTable table;
  for (size_t i = 0; i < n; ++i) {
    NameRecord rec;
    rec.announcer = AnnouncerId{0x0a000000u + static_cast<uint32_t>(i + 1), 1000, 0};
    rec.expires = Seconds(1u << 30);
    rec.version = 1;
    table.Upsert(GenerateUniformName(rng, shape), rec);
  }
  auto queries = MakeQueries(rng, shape);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(queries[qi]));
    qi = (qi + 1) % queries.size();
  }
  state.counters["lookups_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

// n sweep at the paper's depth (d=3): tree ~flat, linear degrades with n.
BENCHMARK(BM_TreeLookup)->Args({100, 3})->Args({1000, 3})->Args({5000, 3})->Args({14300, 3});
BENCHMARK(BM_LinearLookup)->Args({100, 3})->Args({1000, 3})->Args({5000, 3})->Args({14300, 3});

// d sweep at fixed n: both grow with n_a^d, as the analysis predicts.
BENCHMARK(BM_TreeLookup)->Args({2000, 1})->Args({2000, 2})->Args({2000, 3})->Args({2000, 4});

}  // namespace

int main(int argc, char** argv) {
  bench::Banner(
      "Ablation (analysis 5.1.1): hash name-tree vs linear scan",
      "T(d) = Theta(n_a^d (1+b)) hashed vs Theta(n_a^d (r_a+r_v+b)) linear; the "
      "tree's advantage grows with the number of names");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
