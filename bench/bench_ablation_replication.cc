// Ablation — journaled delta replication vs the soft-state refresh storm.
//
// The paper's resolvers re-announce their ENTIRE name table to every neighbor
// each update period: steady-state inter-INR bandwidth is O(names) per period
// whether anything changed or not. The replication subsystem replaces that
// with per-vspace change journals plus anti-entropy digests: steady-state
// cost collapses to O(1) digest rounds, and a restarted resolver catches up
// from a neighbor's journal instead of waiting out a refresh period.
//
// Two measurements at 10^4 names, feature off vs on:
//   * Phase A, steady state: bytes the quiet resolver B ingests over a 60 s
//     window while the names stay alive (refreshes only, no changes).
//     Invariant (exit 1): replication cuts B's steady-state ingress by >= 5x.
//   * Phase B, restart recovery: crash B, dark window, restart; virtual time
//     from restart until B again holds every record.
//
// Writes a JSON report (argv[1], default bench_ablation_replication.json):
//   {"bench": "ablation_replication", "names": 10000, "series": [
//     {"replication": false, "steady_bytes": ..., "steady_updates": ...,
//      "recovery_ms": ...}, {"replication": true, ...}],
//    "steady_bytes_ratio": ...}

#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.h"
#include "ins/common/metrics.h"
#include "ins/harness/cluster.h"
#include "ins/wire/messages.h"

namespace {

using namespace ins;

constexpr size_t kNames = 10000;
constexpr int kSteadyWindowS = 60;       // 4 full refresh periods
constexpr uint32_t kAdLifetimeS = 45;
constexpr Duration kRefreshEvery = Seconds(15);

struct Mode {
  bool replication = false;
  uint64_t steady_bytes = 0;    // B's ingress over the steady window
  uint64_t steady_updates = 0;  // full-table update entries B received
  uint64_t steady_digests = 0;  // anti-entropy digests B received
  double recovery_ms = 0.0;     // restart -> all records back at B
  std::string metrics_json;     // B's registry after the run
};

Advertisement MakeAd(const NodeAddress& endpoint, uint32_t index) {
  Advertisement ad;
  ad.name_text = "[service=fleet][id=n" + std::to_string(index) + "]";
  ad.announcer = AnnouncerId{endpoint.ip, 1000, index};
  ad.endpoint.address = endpoint;
  ad.lifetime_s = kAdLifetimeS;
  ad.version = 1;
  return ad;
}

Mode RunMode(bool replication) {
  Mode mode;
  mode.replication = replication;

  ClusterOptions options;
  options.inr_template.replication.enabled = replication;
  SimCluster cluster(options);
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(2);
  cluster.StabilizeTopology();

  // 10^4 services attached to a; a raw socket re-announces all of them every
  // refresh period (identical versions: pure soft-state refresh, the load
  // every deployment carries in steady state).
  auto svc = cluster.net().Bind(MakeAddress(10));
  auto announce_all = [&] {
    for (uint32_t i = 0; i < kNames; ++i) {
      svc->Send(a->address(), Encode(MakeAd(svc->local_address(), i)));
    }
  };
  announce_all();
  bool refreshing = true;
  std::function<void()> refresh = [&] {
    if (!refreshing) {
      return;
    }
    announce_all();
    cluster.loop().ScheduleAfter(kRefreshEvery, refresh);
  };
  cluster.loop().ScheduleAfter(kRefreshEvery, refresh);

  // Let the initial flood propagate fully before opening the window.
  auto converged = cluster.MeasureReplicationConvergence(Seconds(60));
  if (!converged.has_value()) {
    std::printf("FAILED: initial convergence (replication=%d): %s\n", replication,
                cluster.CheckReplicationConvergence().c_str());
    std::exit(1);
  }
  // Cold-start settling: the first digest round after a 10^4-name flood finds
  // the peer's cursor at 0 with the ring long overflowed, so it runs the
  // one-time full snapshot. That is bootstrap cost, not steady state — let it
  // (and any still-queued triggered updates) drain before measuring.
  cluster.loop().RunFor(Seconds(12));

  // Phase A: steady state. Nothing changes; only refreshes, keepalives, and
  // (mode-dependent) periodic full updates or digest rounds flow.
  Inr* b = cluster.inrs()[1];
  const uint64_t bytes_before = b->metrics().Counter("inr.bytes_received");
  const uint64_t updates_before = b->metrics().Counter("discovery.update_entries_received");
  const uint64_t digests_before = b->metrics().Counter("replication.digests_received");
  cluster.loop().RunFor(Seconds(kSteadyWindowS));
  mode.steady_bytes = b->metrics().Counter("inr.bytes_received") - bytes_before;
  mode.steady_updates = b->metrics().Counter("discovery.update_entries_received") - updates_before;
  mode.steady_digests = b->metrics().Counter("replication.digests_received") - digests_before;

  // Phase B: amnesiac restart of the quiet resolver. Recovery is over when
  // every record is back (replication: journal/snapshot catch-up; seed: full
  // push on the re-formed edge plus the next refresh wave).
  cluster.CrashInr(b);
  cluster.loop().RunFor(Seconds(20));  // edge death + dark window
  Inr* b2 = cluster.RestartInr(2);
  if (b2 == nullptr) {
    std::printf("FAILED: restart did not bring the resolver back\n");
    std::exit(1);
  }
  const TimePoint restarted = cluster.loop().Now();
  // Recovery must be judged against the restarted node itself: right after
  // restart it routes no spaces yet, so the cluster-level convergence check
  // would skip it and pass vacuously.
  bool recovered = false;
  const TimePoint deadline = restarted + Seconds(120);
  while (cluster.loop().Now() < deadline) {
    cluster.loop().RunFor(Milliseconds(200));
    if (b2->vspaces().store().RecordCount("") == kNames &&
        cluster.CheckReplicationConvergence().empty()) {
      recovered = true;
      break;
    }
  }
  if (!recovered) {
    std::printf("FAILED: no recovery within 120 s (replication=%d): %s\n", replication,
                cluster.CheckReplicationConvergence().c_str());
    std::exit(1);
  }
  mode.recovery_ms =
      static_cast<double>((cluster.loop().Now() - restarted).count()) / 1000.0;
  refreshing = false;
  mode.metrics_json = bench::MetricsJson(b2->metrics(), 6);
  return mode;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench_ablation_replication.json";

  std::printf("replication ablation: %zu names, %d s steady window\n", kNames, kSteadyWindowS);
  std::printf("%-12s %-14s %-16s %-10s %-12s\n", "replication", "steady bytes", "update entries",
              "digests", "recovery ms");

  std::vector<Mode> series;
  for (bool replication : {false, true}) {
    Mode m = RunMode(replication);
    series.push_back(m);
    std::printf("%-12s %-14llu %-16llu %-10llu %-12.1f\n", replication ? "on" : "off",
                static_cast<unsigned long long>(m.steady_bytes),
                static_cast<unsigned long long>(m.steady_updates),
                static_cast<unsigned long long>(m.steady_digests), m.recovery_ms);
  }

  const double ratio = series[1].steady_bytes > 0
                           ? static_cast<double>(series[0].steady_bytes) /
                                 static_cast<double>(series[1].steady_bytes)
                           : 0.0;
  std::printf("steady-state ingress reduction: %.1fx\n", ratio);
  bool ok = true;
  if (ratio < 5.0) {
    std::printf("FAILED: replication must cut steady-state update bytes >= 5x (got %.1fx)\n",
                ratio);
    ok = false;
  }
  // The mechanism check, not just the magnitude: with replication on, the
  // steady window must carry NO full-table re-announcements, and digests
  // must actually be flowing.
  if (series[1].steady_updates != 0 || series[1].steady_digests == 0) {
    std::printf("FAILED: replication mode still re-announcing (updates=%llu digests=%llu)\n",
                static_cast<unsigned long long>(series[1].steady_updates),
                static_cast<unsigned long long>(series[1].steady_digests));
    ok = false;
  }
  if (!ok) {
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_replication\",\n");
  std::fprintf(f, "  \"names\": %zu,\n  \"steady_window_s\": %d,\n", kNames, kSteadyWindowS);
  std::fprintf(f, "  \"steady_bytes_ratio\": %.2f,\n  \"series\": [\n", ratio);
  for (size_t i = 0; i < series.size(); ++i) {
    const Mode& m = series[i];
    std::fprintf(f,
                 "    {\"replication\": %s, \"steady_bytes\": %llu, "
                 "\"steady_update_entries\": %llu, \"steady_digests\": %llu, "
                 "\"recovery_ms\": %.1f,\n     \"metrics\": %s}%s\n",
                 m.replication ? "true" : "false",
                 static_cast<unsigned long long>(m.steady_bytes),
                 static_cast<unsigned long long>(m.steady_updates),
                 static_cast<unsigned long long>(m.steady_digests), m.recovery_ms,
                 m.metrics_json.c_str(), i + 1 < series.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("report: %s\n", out_path.c_str());
  return 0;
}
