// Figure 12 — Name-tree lookup performance.
//
// Paper: with r_a=3, r_v=3, n_a=2, d=3, an (untuned Java, 450 MHz P-II)
// resolver sustains ~900 lookups/s at 100 names in the tree, declining
// gently to ~700 lookups/s at 14300 names; the decline comes from the base
// case b (bigger record sets to intersect), not from tree depth.
//
// This harness performs 1000 random lookups per point (exactly the paper's
// procedure) using google-benchmark for stable timing, and prints the
// series. Absolute numbers are orders of magnitude higher on 2026 hardware;
// the reproduced shape is the mild monotone decline over the same range.

#include <benchmark/benchmark.h>

#include "bench_support.h"
#include "ins/workload/namegen.h"

namespace {

using namespace ins;

void BM_Fig12Lookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  NameTree tree;
  bench::PopulateTree(&tree, n, rng);

  // The paper times 1000 random lookup operations; pre-generate the same
  // kind of random name-specifiers (same uniform distribution).
  std::vector<NameSpecifier> queries;
  queries.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    queries.push_back(GenerateUniformName(rng, kPaperLookupParams));
  }

  size_t qi = 0;
  size_t found = 0;
  for (auto _ : state) {
    auto records = tree.Lookup(queries[qi]);
    benchmark::DoNotOptimize(records);
    found += records.size();
    qi = (qi + 1) % queries.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["lookups_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["names_in_tree"] = static_cast<double>(n);
  state.counters["avg_matches"] =
      static_cast<double>(found) / static_cast<double>(state.iterations());
}

BENCHMARK(BM_Fig12Lookup)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(6000)
    ->Arg(8000)
    ->Arg(10000)
    ->Arg(12000)
    ->Arg(14300);

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("Figure 12: name-tree lookup performance (r_a=3, r_v=3, n_a=2, d=3)",
                "~900 lookups/s at 100 names declining to ~700 lookups/s at 14300 "
                "names (Java, 450 MHz Pentium II)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
