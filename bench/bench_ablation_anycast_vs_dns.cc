// Ablation — intentional anycast vs. round-robin DNS for the Printer
// workload (§2, §3.3).
//
// Two printers share a room; one is 4x slower. A user submits a stream of
// equal jobs. Round-robin DNS (the baseline the paper contrasts with)
// alternates blindly, so the slow printer's queue grows without bound.
// Intentional anycast follows the spoolers' advertised load metrics, keeping
// the queues near the processing-rate-proportional balance. The paper's
// point: resolution should optimize an application-controlled metric, not a
// name-to-address table.

#include <cstdio>

#include "bench_support.h"
#include "ins/apps/printer.h"
#include "ins/baseline/dns_baseline.h"
#include "ins/harness/cluster.h"

namespace {

using namespace ins;

struct AppHost {
  AppHost(SimCluster* cluster, uint32_t host, NodeAddress inr)
      : socket(cluster->net().Bind(MakeAddress(host))) {
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster->dsr_address();
    client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
    client->Start();
  }
  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<InsClient> client;
};

struct Outcome {
  size_t fast_peak = 0;
  size_t slow_peak = 0;
  uint64_t fast_done = 0;
  uint64_t slow_done = 0;
};

Outcome Run(bool use_anycast) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1);
  cluster.StabilizeTopology();

  AppHost fast_host(&cluster, 10, inr->address());
  AppHost slow_host(&cluster, 11, inr->address());
  PrinterSpooler::Options fast_opts;
  fast_opts.bytes_per_tick = 8192;  // fast printer
  fast_opts.tick_interval = Seconds(1);
  PrinterSpooler::Options slow_opts;
  slow_opts.bytes_per_tick = 2048;  // 4x slower
  slow_opts.tick_interval = Seconds(1);
  PrinterSpooler fast(fast_host.client.get(), "fast", "517", fast_opts);
  PrinterSpooler slow(slow_host.client.get(), "slow", "517", slow_opts);

  AppHost user_host(&cluster, 20, inr->address());
  PrinterClient user(user_host.client.get(), "alice");

  // Round-robin DNS baseline: a static RRset of the two printer names.
  DnsBaseline dns;
  dns.AddRecord("printer.room517", MakeAddress(10));
  dns.AddRecord("printer.room517", MakeAddress(11));
  cluster.Settle(Seconds(1));

  Outcome out;
  for (int i = 0; i < 40; ++i) {
    if (use_anycast) {
      user.SubmitToBest("517", Bytes(4096, 'x'), [](Status, auto) {});
    } else {
      // DNS-style: resolve once, submit to whichever address came up.
      NodeAddress target = *dns.ResolveOne("printer.room517");
      const char* id = target == MakeAddress(10) ? "fast" : "slow";
      user.SubmitToPrinter(id, Bytes(4096, 'x'), [](Status, auto) {});
    }
    cluster.loop().RunFor(Milliseconds(500));
    out.fast_peak = std::max(out.fast_peak, fast.queue().size());
    out.slow_peak = std::max(out.slow_peak, slow.queue().size());
  }
  cluster.loop().RunFor(Seconds(30));  // drain
  out.fast_done = fast.jobs_completed();
  out.slow_done = slow.jobs_completed();
  return out;
}

}  // namespace

int main() {
  bench::Banner("Ablation: intentional anycast vs round-robin DNS (Printer workload)",
                "anycast routes by the application metric (queue length), DNS "
                "alternates blindly; the slow printer's queue blows up under DNS");
  Outcome dns = Run(false);
  Outcome ins_run = Run(true);
  std::printf("%-22s %14s %14s %12s %12s\n", "", "fast peak q", "slow peak q",
              "fast done", "slow done");
  std::printf("%-22s %14zu %14zu %12llu %12llu\n", "round-robin DNS", dns.fast_peak,
              dns.slow_peak, static_cast<unsigned long long>(dns.fast_done),
              static_cast<unsigned long long>(dns.slow_done));
  std::printf("%-22s %14zu %14zu %12llu %12llu\n", "intentional anycast",
              ins_run.fast_peak, ins_run.slow_peak,
              static_cast<unsigned long long>(ins_run.fast_done),
              static_cast<unsigned long long>(ins_run.slow_done));
  std::printf("\nshape check: under DNS the slow printer's peak queue is much larger; "
              "anycast keeps the slow queue bounded and pushes work to the fast "
              "printer in proportion to capacity.\n");
  return 0;
}
