// Real-socket transport ablation — sim vs UdpTransport vs BatchedUdpTransport.
//
// Every other number in this repo was measured on the deterministic sim
// transport; this bench measures the wire path itself on real loopback
// sockets. One sender and one receiver share a RealEventLoop; the sender
// pumps fixed-size datagrams as fast as backpressure allows while the
// receiver drains, and each payload carries its send timestamp so
// send-to-deliver latency comes out of the same run.
//
// Series: the in-process sim loopback (the no-syscall ceiling), the plain
// one-sendto-per-datagram UdpTransport, and BatchedUdpTransport at 1/8/64
// datagrams per sendmmsg, pacing off and on.
//
// Invariant (exit 1): batched at batch 64 must move >= 2x the datagrams/s of
// the unbatched transport — the syscall amortization the fast path exists
// for. CI runs this gate on every push.
//
// Writes a JSON report (argv[1], default bench_udp_throughput.json):
//   {"bench": "udp_throughput", "payload_bytes": 64, "datagrams": ...,
//    "batched_vs_udp": ..., "series": [{"transport": "batched", "batch": 64,
//    "pacing": false, "datagrams_per_sec": ..., "p50_us": ..., "p99_us": ...,
//    "delivered_fraction": ...}, ...]}

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ins/common/metrics.h"
#include "ins/transport/batched_udp_transport.h"
#include "ins/transport/loopback.h"
#include "ins/transport/udp_transport.h"

namespace {

using namespace ins;

constexpr size_t kPayloadBytes = 64;
constexpr uint64_t kDatagrams = 200'000;
constexpr uint16_t kBasePort = 46100;

struct RunResult {
  std::string transport;
  size_t batch = 0;
  bool pacing = false;
  double datagrams_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double delivered_fraction = 0.0;
};

double WallSeconds(std::chrono::steady_clock::time_point a,
                   std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

void StampNow(Bytes* payload, TimePoint now) {
  const int64_t us = now.count();
  std::memcpy(payload->data(), &us, sizeof(us));
}

int64_t ReadStamp(const Bytes& payload) {
  int64_t us = 0;
  std::memcpy(&us, payload.data(), sizeof(us));
  return us;
}

// Pumps kDatagrams through sender->receiver on one RealEventLoop, draining
// as backpressure demands, and reports throughput + latency quantiles.
RunResult RunReal(const std::string& label, RealEventLoop& loop, Transport& sender,
                  Transport& receiver, const NodeAddress& dest,
                  BatchedUdpTransport* batched) {
  RunResult r;
  r.transport = label;

  uint64_t received = 0;
  Histogram latency;
  auto wall_start = std::chrono::steady_clock::now();
  auto wall_last_recv = wall_start;
  receiver.SetReceiveHandler([&](const NodeAddress&, const Bytes& data) {
    ++received;
    const int64_t sent_at = ReadStamp(data);
    const int64_t now = loop.Now().count();
    latency.Record(now > sent_at ? static_cast<uint64_t>(now - sent_at) : 0);
    wall_last_recv = std::chrono::steady_clock::now();
  });

  Bytes payload(kPayloadBytes, 0x42);
  uint64_t sent = 0;
  wall_start = std::chrono::steady_clock::now();
  while (sent < kDatagrams) {
    bool blocked = false;
    for (int burst = 0; burst < 4096 && sent < kDatagrams; ++burst) {
      StampNow(&payload, loop.Now());
      Status s = sender.Send(dest, payload);
      if (!s.ok()) {
        blocked = true;
        break;
      }
      ++sent;
    }
    // Let the receiver drain (and a blocked sender queue flush).
    loop.RunFor(Milliseconds(blocked ? 2 : 1));
  }
  if (batched != nullptr) {
    batched->FlushNow();
  }
  // Drain the tail: stop once receipt goes quiet.
  for (int quiet = 0; quiet < 20 && received < sent; ++quiet) {
    const uint64_t before = received;
    loop.RunFor(Milliseconds(25));
    if (received != before) {
      quiet = 0;
    }
  }

  const double elapsed = WallSeconds(wall_start, wall_last_recv);
  r.datagrams_per_sec = elapsed > 0 ? static_cast<double>(received) / elapsed : 0;
  r.p50_us = latency.P50();
  r.p99_us = latency.P99();
  r.delivered_fraction =
      sent > 0 ? static_cast<double>(received) / static_cast<double>(sent) : 0;
  receiver.SetReceiveHandler(nullptr);
  return r;
}

RunResult RunSim() {
  // The in-process loopback with synchronous delivery: what the whole tier-1
  // suite runs on, and the no-syscall upper bound for this host.
  RunResult r;
  r.transport = "sim";
  LoopbackNetwork net;
  auto a = net.Bind(MakeAddress(1));
  auto b = net.Bind(MakeAddress(2));
  uint64_t received = 0;
  b->SetReceiveHandler([&](const NodeAddress&, const Bytes&) { ++received; });
  Bytes payload(kPayloadBytes, 0x42);
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < kDatagrams; ++i) {
    a->Send(MakeAddress(2), payload);
  }
  const double elapsed = WallSeconds(start, std::chrono::steady_clock::now());
  r.datagrams_per_sec = elapsed > 0 ? static_cast<double>(received) / elapsed : 0;
  r.delivered_fraction = static_cast<double>(received) / static_cast<double>(kDatagrams);
  return r;
}

RunResult RunUdp() {
  RealEventLoop loop;
  auto a = UdpTransport::Bind(&loop, MakeAddress(1, kBasePort));
  auto b = UdpTransport::Bind(&loop, MakeAddress(2, kBasePort + 1));
  if (!a.ok() || !b.ok()) {
    std::printf("FAILED: bind: %s\n",
                (!a.ok() ? a.status() : b.status()).ToString().c_str());
    std::exit(1);
  }
  return RunReal("udp", loop, **a, **b, MakeAddress(2, kBasePort + 1), nullptr);
}

RunResult RunBatched(size_t batch, bool pacing, uint16_t port) {
  RealEventLoop loop;
  BatchedUdpConfig config;
  config.batch_size = batch;
  // Keep the coalescing window tight: this bench measures throughput, and a
  // sub-batch tail should not idle for long.
  config.flush_delay = Microseconds(100);
  if (pacing) {
    config.pacer.enabled = true;
    config.pacer.rate_bytes_per_sec = 512ull * 1024 * 1024;
    config.pacer.burst_bytes = 1024 * 1024;
  }
  auto a = BatchedUdpTransport::Bind(&loop, MakeAddress(1, port), config);
  auto b = BatchedUdpTransport::Bind(&loop, MakeAddress(2, port + 1), config);
  if (!a.ok() || !b.ok()) {
    std::printf("FAILED: bind: %s\n",
                (!a.ok() ? a.status() : b.status()).ToString().c_str());
    std::exit(1);
  }
  RunResult r =
      RunReal("batched", loop, **a, **b, MakeAddress(2, port + 1), a->get());
  r.batch = batch;
  r.pacing = pacing;
  return r;
}

void PrintRow(const RunResult& r) {
  std::printf("%-8s %-6s %-7s %14.0f %10.1f %10.1f %10.3f\n", r.transport.c_str(),
              r.batch == 0 ? "-" : std::to_string(r.batch).c_str(),
              r.transport == "batched" ? (r.pacing ? "on" : "off") : "-",
              r.datagrams_per_sec, r.p50_us, r.p99_us, r.delivered_fraction);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench_udp_throughput.json";

  std::printf("udp throughput: %llu datagrams of %zu bytes, loopback\n",
              static_cast<unsigned long long>(kDatagrams), kPayloadBytes);
  std::printf("%-8s %-6s %-7s %14s %10s %10s %10s\n", "mode", "batch", "pacing",
              "datagrams/s", "p50 us", "p99 us", "delivered");

  std::vector<RunResult> series;
  series.push_back(RunSim());
  PrintRow(series.back());
  series.push_back(RunUdp());
  PrintRow(series.back());
  const RunResult& udp = series.back();

  uint16_t port = kBasePort + 10;
  double batched_best = 0;
  for (bool pacing : {false, true}) {
    for (size_t batch : {size_t{1}, size_t{8}, size_t{64}}) {
      series.push_back(RunBatched(batch, pacing, port));
      port += 2;
      PrintRow(series.back());
      if (!pacing && series.back().datagrams_per_sec > batched_best) {
        batched_best = series.back().datagrams_per_sec;
      }
    }
  }

  const double ratio =
      udp.datagrams_per_sec > 0 ? batched_best / udp.datagrams_per_sec : 0;
  std::printf("batched/unbatched: %.2fx\n", ratio);
  if (ratio < 2.0) {
    std::printf("FAILED: batched transport must reach >= 2x unbatched datagrams/s "
                "(got %.2fx)\n", ratio);
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"udp_throughput\",\n");
  std::fprintf(f, "  \"payload_bytes\": %zu,\n  \"datagrams\": %llu,\n", kPayloadBytes,
               static_cast<unsigned long long>(kDatagrams));
  std::fprintf(f, "  \"batched_vs_udp\": %.2f,\n  \"series\": [\n", ratio);
  for (size_t i = 0; i < series.size(); ++i) {
    const RunResult& r = series[i];
    std::fprintf(f,
                 "    {\"transport\": \"%s\", \"batch\": %zu, \"pacing\": %s, "
                 "\"datagrams_per_sec\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
                 "\"delivered_fraction\": %.4f}%s\n",
                 r.transport.c_str(), r.batch, r.pacing ? "true" : "false",
                 r.datagrams_per_sec, r.p50_us, r.p99_us, r.delivered_fraction,
                 i + 1 < series.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("report: %s\n", out_path.c_str());
  return 0;
}
