// Figure 15 — Processing and routing time per INR for a 100-packet burst.
//
// Paper: bursts of one hundred 586-byte messages with random ~82-byte source
// and destination names, between 15-second periodic updates. Three cases:
//   * local destination        — 3.1 ms/packet at 250 names rising to
//                                ~19 ms/packet at 5000 names (lookup plus
//                                end-application delivery);
//   * remote INR, same vspace  — flatter, ~9.8 ms/packet (pure lookup and
//                                forwarding, no delivery code);
//   * remote, different vspace — ~381 ms per 100-packet burst, constant in
//                                the name count: the ingress resolver knows
//                                only the next-hop INR (DSR-resolved and
//                                cached on first access).
//
// Reproduction: the ingress resolver's host models its CPU (each handler's
// measured wall time is charged to the host), and the reported number is the
// ingress host's accumulated CPU time for the burst — exactly "processing
// and routing time per INR". Absolute values are 2026-hardware; the
// reproduced shape is: local grows with names-in-vspace, remote-same-vspace
// grows less (no delivery fan-out), remote-different-vspace stays flat.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.h"
#include "ins/harness/cluster.h"

namespace {

using namespace ins;

constexpr size_t kBurst = 100;
constexpr size_t kPayload = 586;

std::vector<std::string> Populate(SimCluster& cluster, SimCluster::Endpoint& feeder,
                                  Inr* inr, const std::string& vspace, size_t n,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  names.reserve(n);
  constexpr size_t kBatch = 64;
  NameUpdate update;
  update.vspace = vspace;
  for (size_t i = 0; i < n; ++i) {
    NameUpdateEntry e;
    e.name_text = GenerateSizedName(rng, 82, vspace).ToString();
    e.announcer = AnnouncerId{0x0c000000u + static_cast<uint32_t>(i), 1, 0};
    e.endpoint.address = MakeAddress(static_cast<uint32_t>(i % 200 + 10));
    e.lifetime_s = 1u << 20;
    e.version = 1;
    names.push_back(e.name_text);
    update.entries.push_back(std::move(e));
    if (update.entries.size() == kBatch || i + 1 == n) {
      feeder.Send(inr->address(), Envelope{MessageBody(update)});
      update.entries.clear();
      cluster.loop().RunFor(Milliseconds(20));
    }
  }
  cluster.loop().RunFor(Seconds(5));
  return names;
}

// Sends the burst at `ingress` and returns the ingress HOST's CPU time (ms)
// charged while draining it.
double BurstCpuMs(SimCluster& cluster, SimCluster::Endpoint& sender,
                  const NodeAddress& ingress, const std::vector<std::string>& dst_names,
                  Rng& rng) {
  Rng name_rng(99);
  std::vector<Bytes> encoded;
  encoded.reserve(kBurst);
  for (size_t i = 0; i < kBurst; ++i) {
    Packet p;
    p.destination_name = dst_names[rng.NextBelow(dst_names.size())];
    p.source_name = GenerateSizedName(name_rng, 82).ToString();
    p.payload = Bytes(kPayload, 0x5a);
    encoded.push_back(EncodeMessage(Envelope{MessageBody(std::move(p))}));
  }
  Duration before = cluster.net().host_stats(ingress.ip).cpu_busy;
  for (const Bytes& b : encoded) {
    sender.socket().Send(ingress, b);
  }
  cluster.loop().RunFor(Seconds(2));
  Duration after = cluster.net().host_stats(ingress.ip).cpu_busy;
  return ToMillis(after - before);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench_fig15_routing.json";
  bench::Banner(
      "Figure 15: time to route a 100-packet burst (586-byte messages, 82-byte names)",
      "local destination 3.1->19 ms/pkt as names grow 250->5000; remote same-vspace "
      "~flat ~9.8 ms/pkt; remote different-vspace ~constant ~381 ms/burst");

  std::printf("%8s %17s %22s %23s %12s %12s\n", "names", "local (ms/burst)",
              "remote same-vs (ms/b)", "remote diff-vs (ms/b)", "lookup p50us",
              "lookup p99us");

  struct Row {
    size_t n = 0;
    double local_ms = 0, remote_ms = 0, diff_ms = 0;
    double lookup_p50_us = 0, lookup_p99_us = 0;
  };
  std::vector<Row> rows;

  // The paper measures bursts *between* 15-second periodic updates; keep
  // periodic processing out of the measurement window.
  ClusterOptions quiet;
  quiet.inr_template.discovery.update_interval = Seconds(3600);

  for (size_t n : {250u, 1000u, 2000u, 3000u, 4000u, 5000u}) {
    // --- Case 1: sender and destinations attach to the same resolver. ------
    double local_ms = 0;
    Histogram lookup_us;  // the ingress resolver's name-tree resolution time
    {
      SimCluster cluster(quiet);
      cluster.net().SetCpuScale(MakeAddress(1).ip, 1.0);
      Inr* inr = cluster.AddInr(1);
      cluster.StabilizeTopology();
      auto feeder = cluster.AddEndpoint(200);
      auto names = Populate(cluster, *feeder, inr, "", n, 1);
      auto sender = cluster.AddEndpoint(201);
      Rng rng(5);
      BurstCpuMs(cluster, *sender, inr->address(), names, rng);  // warm-up
      inr->metrics().Reset();  // the measured burst's lookups only
      local_ms = BurstCpuMs(cluster, *sender, inr->address(), names, rng);
      lookup_us = inr->metrics().HistogramOf("forwarding.lookup_us");
    }

    // --- Case 2: destinations live behind a neighbor resolver. -------------
    double remote_ms = 0;
    {
      SimCluster cluster(quiet);
      cluster.net().SetCpuScale(MakeAddress(1).ip, 1.0);
      Inr* a = cluster.AddInr(1);
      cluster.loop().RunFor(Seconds(1));
      Inr* b = cluster.AddInr(2);
      cluster.StabilizeTopology();
      auto feeder = cluster.AddEndpoint(200);
      // Names enter at b and propagate to a; a's records all point at b, so
      // a's work is lookup + tunnel (no end-application delivery).
      auto names = Populate(cluster, *feeder, b, "", n, 1);
      cluster.loop().RunFor(Seconds(5));
      auto sender = cluster.AddEndpoint(201);
      Rng rng(5);
      BurstCpuMs(cluster, *sender, a->address(), names, rng);
      remote_ms = BurstCpuMs(cluster, *sender, a->address(), names, rng);
    }

    // --- Case 3: the vspace is routed by another resolver entirely. --------
    double diff_ms = 0;
    {
      SimCluster cluster(quiet);
      cluster.net().SetCpuScale(MakeAddress(1).ip, 1.0);
      Inr* a = cluster.AddInr(1, {"alpha"});
      cluster.loop().RunFor(Seconds(1));
      Inr* b = cluster.AddInr(2, {"beta"});
      cluster.StabilizeTopology();
      auto feeder = cluster.AddEndpoint(200);
      auto names = Populate(cluster, *feeder, b, "beta", n, 1);
      auto sender = cluster.AddEndpoint(201);
      Rng rng(5);
      // First burst pays the one-time DSR query (warm-up); the measured one
      // uses the cached next-hop, independent of n.
      BurstCpuMs(cluster, *sender, a->address(), names, rng);
      diff_ms = BurstCpuMs(cluster, *sender, a->address(), names, rng);
    }

    Row row;
    row.n = n;
    row.local_ms = local_ms;
    row.remote_ms = remote_ms;
    row.diff_ms = diff_ms;
    row.lookup_p50_us = lookup_us.P50();
    row.lookup_p99_us = lookup_us.P99();
    rows.push_back(row);
    std::printf("%8zu %17.3f %22.3f %23.3f %12.1f %12.1f\n", n, local_ms, remote_ms,
                diff_ms, row.lookup_p50_us, row.lookup_p99_us);
  }
  std::printf("\nshape check: columns 2 and 3 grow with names in the vspace (the "
              "ingress resolver's lookups see larger record sets), column 4 stays "
              "flat (no lookup at the ingress resolver: cached vspace next-hop "
              "only). Unlike the paper, our local case does not outgrow the remote "
              "one — the paper attributes that extra growth to its delivery code "
              "\"happen[ing] to vary linearly with the number of names\", an "
              "implementation artifact this codebase does not share.\n");

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"fig15_routing\",\n  \"series\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"names\": %zu, \"local_ms\": %.3f, \"remote_same_vspace_ms\": "
                   "%.3f, \"remote_diff_vspace_ms\": %.3f, \"lookup_p50_us\": %.1f, "
                   "\"lookup_p99_us\": %.1f}%s\n",
                   r.n, r.local_ms, r.remote_ms, r.diff_ms, r.lookup_p50_us,
                   r.lookup_p99_us, i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
