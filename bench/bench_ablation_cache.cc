// Ablation — the §3.2 INR packet-caching extension.
//
// A camera behind a slow (high-latency) overlay link publishes frames with a
// cache lifetime; viewers attached to the near resolver fetch images. With
// caching, repeat requests are answered by the resolver: latency drops to
// the local round trip and the camera's request load collapses. Without
// caching, every request crosses the slow link to the origin.

#include <cstdio>

#include "bench_support.h"
#include "ins/apps/camera.h"
#include "ins/harness/cluster.h"

namespace {

using namespace ins;

struct AppHost {
  AppHost(SimCluster* cluster, uint32_t host, NodeAddress inr)
      : socket(cluster->net().Bind(MakeAddress(host))) {
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster->dsr_address();
    client = std::make_unique<InsClient>(&cluster->loop(), socket.get(), config);
    client->Start();
  }
  std::unique_ptr<sim::Network::Socket> socket;
  std::unique_ptr<InsClient> client;
};

struct RunResult {
  double avg_latency_ms = 0;
  uint64_t origin_requests = 0;
};

RunResult Run(bool use_cache, int requests) {
  SimCluster cluster;
  // The camera sits across a slow 40 ms link; viewers are 1 ms away from
  // their resolver.
  cluster.net().SetDefaultLink({Milliseconds(1), 0, 0});
  Inr* near_inr = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  cluster.net().SetLink(MakeAddress(1).ip, MakeAddress(2).ip, {Milliseconds(40), 0, 0});
  cluster.net().SetLink(MakeAddress(2).ip, MakeAddress(10).ip, {Milliseconds(1), 0, 0});
  Inr* far_inr = cluster.AddInr(2);
  cluster.StabilizeTopology();

  AppHost cam_host(&cluster, 10, far_inr->address());
  // Keep the camera near its own resolver, far from the viewers.
  cluster.net().SetLink(MakeAddress(10).ip, MakeAddress(1).ip, {Milliseconds(40), 0, 0});
  CameraTransmitter camera(cam_host.client.get(), "cam", "510");
  camera.SetImage(Bytes(512, 0xab));
  AppHost viewer_host(&cluster, 20, near_inr->address());
  CameraReceiver viewer(viewer_host.client.get(), "v");
  viewer.Subscribe("510");
  cluster.loop().RunFor(Seconds(2));

  // Seed: one frame published (with a cache lifetime when caching is on).
  camera.PublishToSubscribers(use_cache ? 60 : 0);
  cluster.loop().RunFor(Seconds(1));

  RunResult result;
  uint64_t served_before = camera.requests_served();
  double total_ms = 0;
  int completed = 0;
  for (int i = 0; i < requests; ++i) {
    TimePoint start = cluster.loop().Now();
    bool done = false;
    viewer.RequestImage("510", use_cache, [&](Status s, Bytes) {
      if (s.ok()) {
        total_ms += ToMillis(cluster.loop().Now() - start);
        ++completed;
      }
      done = true;
    });
    while (!done) {
      cluster.loop().RunFor(Milliseconds(50));
    }
  }
  result.avg_latency_ms = completed > 0 ? total_ms / completed : -1;
  result.origin_requests = camera.requests_served() - served_before;
  return result;
}

}  // namespace

int main() {
  bench::Banner("Ablation (§3.2): INR packet caching for repeat requests",
                "cached objects are served by resolvers along the path, so "
                "requests need not return to the origin server");
  constexpr int kRequests = 20;
  RunResult without = Run(false, kRequests);
  RunResult with = Run(true, kRequests);
  std::printf("%-18s %18s %22s\n", "", "avg latency (ms)", "origin requests served");
  std::printf("%-18s %18.1f %22llu\n", "cache OFF", without.avg_latency_ms,
              static_cast<unsigned long long>(without.origin_requests));
  std::printf("%-18s %18.1f %22llu\n", "cache ON", with.avg_latency_ms,
              static_cast<unsigned long long>(with.origin_requests));
  std::printf("\nshape check: caching cuts latency from the slow-link round trip to "
              "the local one and drops origin load to zero for repeats.\n");
  return 0;
}
