// Ablation — the Figure-4 subtree record cache.
//
// The paper's Figure 4 caption describes value-nodes holding "pointers to
// all the name-records they correspond to", i.e. a precomputed per-node
// record list. Our default tree collects subtree records on demand instead.
// This ablation quantifies the trade: cached lookups avoid the subtree walk
// (fastest when queries end on interior nodes with big subtrees), while
// grafts pay an extra ancestor walk and memory grows by one pointer per
// terminal per level.

#include <benchmark/benchmark.h>

#include "bench_support.h"
#include "ins/workload/namegen.h"

namespace {

using namespace ins;

NameTree::Options Cached(bool on) {
  NameTree::Options o;
  o.cache_subtree_records = on;
  return o;
}

// Interior-ending queries (prefixes): the case the cache accelerates.
std::vector<NameSpecifier> PrefixQueries(Rng& rng, size_t count) {
  std::vector<NameSpecifier> out;
  for (size_t i = 0; i < count; ++i) {
    NameSpecifier full = GenerateUniformName(rng, kPaperLookupParams);
    out.push_back(DeriveQuery(rng, full, 0.9, 0.0));
    // Truncate to depth 1 by dropping children: keep only roots.
    for (AvPair& p : out.back().mutable_roots()) {
      p.children.clear();
    }
  }
  return out;
}

void BM_Lookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool cache = state.range(1) != 0;
  Rng rng(42);
  NameTree tree(Cached(cache));
  bench::PopulateTree(&tree, n, rng);
  auto queries = PrefixQueries(rng, 128);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(queries[qi]));
    qi = (qi + 1) % queries.size();
  }
  state.counters["lookups_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_Graft(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool cache = state.range(1) != 0;
  Rng rng(42);
  NameTree tree(Cached(cache));
  bench::PopulateTree(&tree, n, rng);
  Rng gen(7);
  uint32_t next = 1u << 20;
  for (auto _ : state) {
    NameRecord rec;
    rec.announcer = AnnouncerId{next++, 5, 0};
    rec.expires = Seconds(1u << 30);
    rec.version = 1;
    tree.Upsert(GenerateUniformName(gen, kPaperLookupParams), rec);
  }
  state.counters["grafts_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_Lookup)->Args({2000, 0})->Args({2000, 1})->Args({14300, 0})->Args({14300, 1});
BENCHMARK(BM_Graft)->Args({2000, 0})->Args({2000, 1})->Args({14300, 0})->Args({14300, 1});

}  // namespace

int main(int argc, char** argv) {
  bench::Banner(
      "Ablation: Figure-4 subtree record cache (args: names, cache on/off)",
      "per-value-node record lists trade faster interior lookups for slower "
      "grafts and more memory");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Memory cost of the cache at 14300 names.
  for (bool cache : {false, true}) {
    Rng rng(42);
    NameTree tree(Cached(cache));
    bench::PopulateTree(&tree, 14300, rng);
    auto stats = tree.ComputeStats();
    std::printf("memory at 14300 names, cache %-3s: %.2f MB\n", cache ? "ON" : "OFF",
                static_cast<double>(stats.bytes) / 1e6);
  }
  benchmark::Shutdown();
  return 0;
}
