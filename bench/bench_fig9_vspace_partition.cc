// Figure 9 — Periodic update times under virtual-space partitioning.
//
// Paper: the time to process periodic updates grows linearly with the total
// number of names. Splitting the names into two virtual spaces on ONE
// machine does not help (that resolver still processes every name), but
// delegating the two spaces to two machines halves the per-machine
// processing time — the namespace-partitioning result that motivates the
// load balancer's vspace delegation.
//
// Reproduction: a refresh round of N names is processed under three
// configurations; we report the per-machine (max) wall-clock processing time
// in milliseconds, like the paper's y-axis.

#include <algorithm>
#include <cstdio>

#include "bench_support.h"
#include "ins/harness/cluster.h"

namespace {

using namespace ins;

std::vector<NameUpdateEntry> MakeEntries(Rng& rng, size_t n, const std::string& vspace,
                                         uint32_t announcer_base) {
  std::vector<NameUpdateEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    NameUpdateEntry e;
    e.name_text = GenerateSizedName(rng, 82, vspace).ToString();
    e.announcer = AnnouncerId{announcer_base + static_cast<uint32_t>(i), 1, 0};
    e.endpoint.address = MakeAddress(static_cast<uint32_t>(i % 200 + 2));
    e.lifetime_s = 45;
    entries.push_back(std::move(e));
  }
  return entries;
}

void SendRound(SimCluster::Endpoint& peer, const NodeAddress& inr,
               std::vector<NameUpdateEntry>& entries, const std::string& vspace,
               uint64_t version) {
  constexpr size_t kBatch = 64;
  for (size_t i = 0; i < entries.size(); i += kBatch) {
    NameUpdate update;
    update.vspace = vspace;
    size_t end = std::min(entries.size(), i + kBatch);
    for (size_t j = i; j < end; ++j) {
      entries[j].version = version;
      update.entries.push_back(entries[j]);
    }
    peer.socket().Send(inr, EncodeMessage(Envelope{MessageBody(std::move(update))}));
  }
}

// One resolver routing every given space processes the whole round.
double OneMachine(size_t total, const std::vector<std::string>& spaces) {
  SimCluster cluster;
  Inr* inr = cluster.AddInr(1, spaces);
  cluster.StabilizeTopology();
  auto peer = cluster.AddEndpoint(200);
  Rng rng(11);
  std::vector<std::vector<NameUpdateEntry>> per_space;
  size_t share = total / spaces.size();
  for (size_t s = 0; s < spaces.size(); ++s) {
    per_space.push_back(MakeEntries(rng, share, spaces[s],
                                    0x0b000000u + static_cast<uint32_t>(s) * 0x100000u));
  }
  for (size_t s = 0; s < spaces.size(); ++s) {
    SendRound(*peer, inr->address(), per_space[s], spaces[s], 1);
  }
  cluster.loop().RunFor(Milliseconds(100));  // insert round (untimed)
  for (size_t s = 0; s < spaces.size(); ++s) {
    SendRound(*peer, inr->address(), per_space[s], spaces[s], 2);
  }
  return bench::WallSeconds([&] { cluster.loop().RunFor(Milliseconds(100)); });
}

// Two resolvers, one space each; the metric is the slower machine's time.
double TwoMachines(size_t total) {
  SimCluster cluster;
  Inr* a = cluster.AddInr(1, {"s1"});
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2, {"s2"});
  cluster.StabilizeTopology();
  auto peer = cluster.AddEndpoint(200);
  Rng rng(11);
  auto e1 = MakeEntries(rng, total / 2, "s1", 0x0b000000u);
  auto e2 = MakeEntries(rng, total / 2, "s2", 0x0b100000u);
  SendRound(*peer, a->address(), e1, "s1", 1);
  SendRound(*peer, b->address(), e2, "s2", 1);
  cluster.loop().RunFor(Milliseconds(200));

  // Measure each machine's round separately: in a real deployment they run
  // in parallel, so the per-machine time is the max of the two.
  SendRound(*peer, a->address(), e1, "s1", 2);
  double ta = bench::WallSeconds([&] { cluster.loop().RunFor(Milliseconds(100)); });
  SendRound(*peer, b->address(), e2, "s2", 2);
  double tb = bench::WallSeconds([&] { cluster.loop().RunFor(Milliseconds(100)); });
  return std::max(ta, tb);
}

}  // namespace

int main() {
  bench::Banner(
      "Figure 9: periodic update time vs total names, virtual-space partitioning",
      "linear growth; 2 spaces on 1 machine ~= 1 space on 1 machine; "
      "2 spaces on 2 machines ~= half the per-machine time");

  std::printf("%8s %22s %22s %22s\n", "names", "1 vspace/1 machine(ms)",
              "2 vspaces/1 machine(ms)", "2 vspaces/2 machines(ms)");
  for (size_t n : {1000u, 2000u, 3000u, 4000u, 5000u}) {
    double one_one = OneMachine(n, {""});
    double two_one = OneMachine(n, {"s1", "s2"});
    double two_two = TwoMachines(n);
    std::printf("%8zu %22.2f %22.2f %22.2f\n", n, one_one * 1e3, two_one * 1e3,
                two_two * 1e3);
  }
  std::printf("\nshape check: column 3 tracks column 2 (same machine does all the "
              "work); column 4 is ~half (partitioning across resolvers sheds "
              "update-processing load).\n");
  return 0;
}
