// Figure 13 — Name-tree size.
//
// Paper: over the same name-trees as Figure 12 (r_a=3, r_v=3, n_a=2, d=3,
// one-character attribute/value strings), the memory allocated to the
// name-tree grows from ~0.5 MB at ~1000 names to ~4 MB at 14300 names. The
// curve is steep while the attribute/value vocabulary fills in, then linear:
// additional names add only pointers and name-records.
//
// The paper measured JVM heap growth; we account bytes exactly via
// NameTree::ComputeStats (DESIGN.md substitution #2). The shape — early
// curve, then a straight line whose slope is per-record overhead — is the
// reproduced result.

#include <cstdio>

#include "bench_support.h"

int main() {
  using namespace ins;
  bench::Banner("Figure 13: name-tree size vs. number of names",
                "~0.5 MB at 1000 names growing linearly to ~4 MB at 14300 names "
                "(Java heap)");

  std::printf("%10s %14s %14s %14s %16s\n", "names", "attr-nodes", "value-nodes",
              "bytes", "MB");
  double prev_bytes = 0;
  for (size_t n : {100u, 1000u, 2000u, 4000u, 6000u, 8000u, 10000u, 12000u, 14300u}) {
    Rng rng(42);
    NameTree tree;
    bench::PopulateTree(&tree, n, rng);
    auto stats = tree.ComputeStats();
    std::printf("%10zu %14zu %14zu %14zu %16.3f\n", n, stats.attribute_nodes,
                stats.value_nodes, stats.bytes, static_cast<double>(stats.bytes) / 1e6);
    prev_bytes = static_cast<double>(stats.bytes);
  }
  (void)prev_bytes;

  // Per-record marginal cost over the linear tail (the paper's observation
  // that growth comes from pointers + records once the vocabulary exists).
  Rng rng(42);
  NameTree small;
  bench::PopulateTree(&small, 4000, rng);
  Rng rng2(42);
  NameTree big;
  bench::PopulateTree(&big, 14300, rng2);
  double per_record =
      static_cast<double>(big.ComputeStats().bytes - small.ComputeStats().bytes) /
      (14300.0 - 4000.0);
  std::printf("\nmarginal bytes/record over the linear tail: %.1f\n", per_record);
  return 0;
}
