// Figure 14 — Discovery time of a new name vs. overlay hops.
//
// Paper: Td(n) = n (Tl + Tg + Tup + d) — the time for a newly advertised
// name to be discovered n INR hops away is linear in n, with a measured
// slope under 10 ms/hop; typical discovery times are a few tens of
// milliseconds, dominated by network transmission delay.
//
// Reproduction: a 10-resolver chain (adjacency forced by distance-
// proportional link latencies, 4 ms per physical hop one-way), hosts model
// their CPU (measured handler wall time charged to virtual time), and a
// service advertises a fresh name at the chain's head. Each resolver reports
// the virtual time it grafts the name; we print discovery time vs. hops and
// the fitted slope.

#include <cstdio>
#include <map>

#include "bench_support.h"
#include "ins/harness/cluster.h"

int main() {
  using namespace ins;
  bench::Banner("Figure 14: discovery time of a new name vs. number of INR hops",
                "linear in hops, slope < 10 ms/hop; tens of milliseconds typical");

  constexpr uint32_t kChain = 10;  // head + 9 hops
  constexpr int kTrials = 5;
  constexpr auto kHopLatency = Milliseconds(4);

  std::map<uint32_t, std::vector<double>> discovery_ms;  // hops -> samples

  for (int trial = 0; trial < kTrials; ++trial) {
    SimCluster cluster(ClusterOptions{static_cast<uint64_t>(trial + 1),
                                      {Milliseconds(4), 0, 0},
                                      InrConfig{}});
    // Distance-proportional latency forces the spanning tree into a chain.
    for (uint32_t i = 1; i <= kChain; ++i) {
      for (uint32_t j = i + 1; j <= kChain; ++j) {
        cluster.net().SetLink(MakeAddress(i).ip, MakeAddress(j).ip,
                              {kHopLatency * (j - i), 0, 0});
      }
      cluster.net().SetCpuScale(MakeAddress(i).ip, 1.0);  // charge real CPU
    }
    std::vector<Inr*> chain;
    for (uint32_t i = 1; i <= kChain; ++i) {
      chain.push_back(cluster.AddInr(i));
      cluster.loop().RunFor(Seconds(1));
    }
    cluster.StabilizeTopology();

    // Hook every resolver's discovery event.
    std::map<NodeAddress, TimePoint> grafted_at;
    for (Inr* inr : chain) {
      NodeAddress self = inr->address();
      inr->discovery().on_name_discovered =
          [&grafted_at, self, &cluster](const std::string&, const NameSpecifier&,
                                        const NameRecord&) {
            grafted_at.emplace(self, cluster.loop().Now());
          };
    }

    auto svc = cluster.AddEndpoint(100 + static_cast<uint32_t>(trial));
    Advertisement ad;
    ad.name_text = "[service=sensor[id=fresh-" + std::to_string(trial) + "]][room=510]";
    ad.announcer = AnnouncerId{svc->address().ip, 1000, static_cast<uint32_t>(trial)};
    ad.endpoint.address = svc->address();
    ad.lifetime_s = 45;
    ad.version = 1;

    TimePoint t0 = cluster.loop().Now();
    svc->Send(chain.front()->address(), Envelope{MessageBody(ad)});
    cluster.loop().RunFor(Seconds(2));

    for (uint32_t h = 1; h < kChain; ++h) {
      auto it = grafted_at.find(chain[h]->address());
      if (it != grafted_at.end()) {
        discovery_ms[h].push_back(ToMillis(it->second - t0));
      }
    }
  }

  std::printf("%6s %16s\n", "hops", "discovery (ms)");
  double sum_xy = 0;
  double sum_x = 0;
  double sum_y = 0;
  double sum_xx = 0;
  size_t count = 0;
  for (const auto& [hops, samples] : discovery_ms) {
    double avg = 0;
    for (double s : samples) {
      avg += s;
    }
    avg /= static_cast<double>(samples.size());
    std::printf("%6u %16.2f\n", hops, avg);
    sum_xy += hops * avg;
    sum_x += hops;
    sum_y += avg;
    sum_xx += static_cast<double>(hops) * hops;
    ++count;
  }
  double n = static_cast<double>(count);
  double slope = (n * sum_xy - sum_x * sum_y) / (n * sum_xx - sum_x * sum_x);
  std::printf("\nfitted slope: %.2f ms/hop (links contribute %.1f ms one-way per hop; "
              "the rest is resolver processing)\n",
              slope, ToMillis(Milliseconds(4)));
  std::printf("shape check: linear in hops, slope < 10 ms/hop.\n");
  return 0;
}
