// Ablation — stage-latency attribution coverage and tracing overhead.
//
// The observability layer claims that the per-stage spans carved out of a
// traced packet's journey PARTITION its end-to-end latency: ingress wait +
// admission queue + lookup + next-hop selection + transport + delivery ≈
// everything the client measured. If the stages leak time (events missing,
// transitions unclassified), latency attribution silently under-reports and
// an operator chasing a regression looks at the wrong stage.
//
// One cluster, one flood: 3 resolvers in a chain, a service behind the far
// one, every packet traced (sample_every=1). Per delivered journey we take
//   * e2e_us       — last event minus first event (what the client saw),
//   * attributed_us — the sum of its classified stage spans,
// and compare the distributions at p50/p99, plus the aggregate coverage
// fraction over all journeys.
//
// Invariants (exit 1):
//   * attributed p50 >= 90% of e2e p50,
//   * attributed p99 >= 90% of e2e p99,
//   * aggregate coverage fraction >= 0.9,
//   * every delivered journey produced at least one transport span (the
//     traffic is forced cross-resolver, so a journey without one means hop
//     events were lost).
//
// The run is repeated with tracing off to report the virtual-traffic
// wall-clock delta; the hard <= 5% gate on tracing overhead lives in CI's
// figure-12 before/after smoke, where the comparison is against the merge
// base rather than a same-process re-run.
//
// Writes a JSON report (argv[1], default bench_ablation_attribution.json):
//   {"bench": "ablation_attribution", "journeys": N,
//    "e2e_p50_us": ..., "e2e_p99_us": ..., "attributed_p50_us": ...,
//    "attributed_p99_us": ..., "coverage": ..., "stage_share": {...},
//    "untraced_wall_s": ..., "traced_wall_s": ...}

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.h"
#include "ins/client/api.h"
#include "ins/harness/cluster.h"
#include "ins/harness/trace_collector.h"
#include "ins/name/parser.h"

namespace {

using namespace ins;

constexpr int kPackets = 400;
constexpr double kCoverageFloor = 0.9;

NameSpecifier P(const char* text) {
  auto r = ParseNameSpecifier(text);
  if (!r.ok()) {
    std::printf("bad name %s: %s\n", text, r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

uint64_t Percentile(std::vector<uint64_t> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct Run {
  double wall_s = 0.0;
  std::vector<uint64_t> e2e_us;         // per delivered journey
  std::vector<uint64_t> attributed_us;  // same order
  size_t journeys_without_transport = 0;
  StageAttribution attribution;
};

Run RunFlood(uint64_t trace_sample_every) {
  Run run;
  SimCluster cluster;
  Inr* a = cluster.AddInr(1);
  cluster.loop().RunFor(Seconds(1));
  Inr* b = cluster.AddInr(2);
  cluster.loop().RunFor(Seconds(1));
  cluster.AddInr(3);
  cluster.StabilizeTopology();

  auto make_client = [&](uint32_t host, NodeAddress inr, uint64_t sample) {
    struct Client {
      std::unique_ptr<sim::Network::Socket> socket;
      std::unique_ptr<InsClient> client;
    };
    Client c;
    c.socket = cluster.net().Bind(MakeAddress(host));
    ClientConfig config;
    config.inr = inr;
    config.dsr = cluster.dsr_address();
    config.trace_sample_every = sample;
    c.client = std::make_unique<InsClient>(&cluster.loop(), c.socket.get(), config);
    c.client->Start();
    return c;
  };

  // Service behind `b`, sender attached to `a`: every packet takes at least
  // one overlay hop, so the transport stage is always present.
  auto service = make_client(30, b->address(), 0);
  auto ad = service.client->Advertise(P("[service=camera]"));
  cluster.loop().RunFor(Seconds(3));
  auto user = make_client(20, a->address(), trace_sample_every);
  cluster.Settle();
  int received = 0;
  service.client->OnData([&](const NameSpecifier&, const Bytes&) { ++received; });

  run.wall_s = bench::WallSeconds([&] {
    for (int i = 0; i < kPackets; ++i) {
      if (!user.client->SendAnycast(P("[service=camera]"), {1}).ok()) {
        std::printf("send %d failed\n", i);
        std::exit(1);
      }
      cluster.loop().RunFor(Milliseconds(5));
    }
    cluster.Settle();
  });
  if (received < kPackets) {
    std::printf("FAILED: only %d/%d packets delivered\n", received, kPackets);
    std::exit(1);
  }
  if (trace_sample_every == 0) {
    return run;  // overhead baseline: no journeys to collect
  }

  TraceCollector collector = cluster.CollectTraces();
  run.attribution = collector.Attribution();
  for (const PacketJourney& j : collector.Journeys()) {
    if (!j.delivered()) {
      continue;
    }
    uint64_t attributed = 0;
    bool transport = false;
    for (const PacketJourney::StageSpan& span : j.StageSpans()) {
      attributed += static_cast<uint64_t>(span.span().count());
      transport = transport || span.stage == LatencyStage::kTransport;
    }
    run.e2e_us.push_back(static_cast<uint64_t>(j.Elapsed().count()));
    run.attributed_us.push_back(attributed);
    if (!transport) {
      ++run.journeys_without_transport;
    }
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench_ablation_attribution.json";

  std::printf("attribution ablation: %d cross-resolver packets, every one traced\n",
              kPackets);
  Run untraced = RunFlood(0);
  Run traced = RunFlood(1);

  const uint64_t e2e_p50 = Percentile(traced.e2e_us, 0.50);
  const uint64_t e2e_p99 = Percentile(traced.e2e_us, 0.99);
  const uint64_t att_p50 = Percentile(traced.attributed_us, 0.50);
  const uint64_t att_p99 = Percentile(traced.attributed_us, 0.99);
  const double coverage = traced.attribution.CoverageFraction();

  std::printf("%-24s %10s %10s\n", "", "p50 us", "p99 us");
  std::printf("%-24s %10llu %10llu\n", "end-to-end",
              static_cast<unsigned long long>(e2e_p50),
              static_cast<unsigned long long>(e2e_p99));
  std::printf("%-24s %10llu %10llu\n", "sum of stage spans",
              static_cast<unsigned long long>(att_p50),
              static_cast<unsigned long long>(att_p99));
  std::printf("coverage %.4f over %llu journeys; wall %.3fs untraced, %.3fs traced\n",
              coverage, static_cast<unsigned long long>(traced.attribution.journeys),
              untraced.wall_s, traced.wall_s);
  std::printf("%s\n", traced.attribution.Table().c_str());

  bool ok = true;
  if (att_p50 < static_cast<uint64_t>(kCoverageFloor * static_cast<double>(e2e_p50))) {
    std::printf("FAILED: attributed p50 %llu < 90%% of e2e p50 %llu\n",
                static_cast<unsigned long long>(att_p50),
                static_cast<unsigned long long>(e2e_p50));
    ok = false;
  }
  if (att_p99 < static_cast<uint64_t>(kCoverageFloor * static_cast<double>(e2e_p99))) {
    std::printf("FAILED: attributed p99 %llu < 90%% of e2e p99 %llu\n",
                static_cast<unsigned long long>(att_p99),
                static_cast<unsigned long long>(e2e_p99));
    ok = false;
  }
  if (coverage < kCoverageFloor) {
    std::printf("FAILED: aggregate coverage %.4f < %.2f\n", coverage, kCoverageFloor);
    ok = false;
  }
  if (traced.journeys_without_transport > 0) {
    std::printf("FAILED: %zu delivered journeys missing a transport span\n",
                traced.journeys_without_transport);
    ok = false;
  }
  if (!ok) {
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_attribution\",\n");
  std::fprintf(f, "  \"packets\": %d,\n  \"journeys\": %llu,\n", kPackets,
               static_cast<unsigned long long>(traced.attribution.journeys));
  std::fprintf(f, "  \"e2e_p50_us\": %llu,\n  \"e2e_p99_us\": %llu,\n",
               static_cast<unsigned long long>(e2e_p50),
               static_cast<unsigned long long>(e2e_p99));
  std::fprintf(f, "  \"attributed_p50_us\": %llu,\n  \"attributed_p99_us\": %llu,\n",
               static_cast<unsigned long long>(att_p50),
               static_cast<unsigned long long>(att_p99));
  std::fprintf(f, "  \"coverage\": %.4f,\n", coverage);
  std::fprintf(f, "  \"stage_share\": {\n");
  for (size_t s = 0; s < kLatencyStageCount; ++s) {
    const uint64_t sum = traced.attribution.stage_us[s].sum();
    const double share =
        traced.attribution.attributed_total_us > 0
            ? static_cast<double>(sum) /
                  static_cast<double>(traced.attribution.attributed_total_us)
            : 0.0;
    std::fprintf(f, "    \"%s\": %.4f%s\n",
                 std::string(LatencyStageName(static_cast<LatencyStage>(s))).c_str(),
                 share, s + 1 < kLatencyStageCount ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"untraced_wall_s\": %.4f,\n  \"traced_wall_s\": %.4f\n",
               untraced.wall_s, traced.wall_s);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("report: %s\n", out_path.c_str());
  return 0;
}
