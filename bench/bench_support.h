// Shared helpers for the reproduction harnesses: table printing in the shape
// of the paper's figures, tree population, and wall-clock measurement.

#ifndef BENCH_BENCH_SUPPORT_H_
#define BENCH_BENCH_SUPPORT_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "ins/common/metrics.h"
#include "ins/common/rng.h"
#include "ins/nametree/name_tree.h"
#include "ins/workload/namegen.h"

namespace bench {

// Prints a figure banner: what the paper showed, what we regenerate.
inline void Banner(const char* figure, const char* paper_result) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper: %s\n", paper_result);
  std::printf("================================================================\n");
}

inline double WallSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// Populates a tree with `n` uniformly grown names (paper §5.1 parameters by
// default) and returns the advertised specifiers.
inline std::vector<ins::NameSpecifier> PopulateTree(
    ins::NameTree* tree, size_t n, ins::Rng& rng,
    const ins::UniformNameParams& shape = ins::kPaperLookupParams) {
  std::vector<ins::NameSpecifier> ads;
  ads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ins::NameSpecifier name = ins::GenerateUniformName(rng, shape);
    ins::NameRecord rec;
    rec.announcer = ins::AnnouncerId{0x0a000000u + static_cast<uint32_t>(i + 1),
                                     1000, static_cast<uint32_t>(i)};
    rec.endpoint.address = ins::MakeAddress(static_cast<uint32_t>(i % 250 + 1));
    rec.expires = ins::Seconds(1u << 30);
    rec.version = 1;
    tree->Upsert(name, rec);
    ads.push_back(std::move(name));
  }
  return ads;
}

// A registry's full snapshot as a JSON object ({"counters": ..., "gauges":
// ..., "histograms": ..., "timings": ...}), for embedding in bench reports so
// a regression investigation starts from the numbers, not from a re-run.
// `indent` is the left margin of the emitted block.
inline std::string MetricsJson(const ins::MetricsRegistry& registry, int indent = 2) {
  return ins::MetricsSnapshotJson(registry.Snapshot(), indent);
}

}  // namespace bench

#endif  // BENCH_BENCH_SUPPORT_H_
