// Lightweight error handling for libins: Status and Result<T>.
//
// Core resolver paths do not use exceptions (they sit on packet-processing hot
// paths); fallible operations return Status or Result<T> instead. The code set
// mirrors the subset of canonical codes the system actually needs.

#ifndef INS_COMMON_STATUS_H_
#define INS_COMMON_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ins {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,
  kDeadlineExceeded,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

// Human-readable name of a status code, e.g. "NOT_FOUND".
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors matching the codes above.
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}

// A value of type T or an error Status. Accessing value() on an error aborts
// in debug builds; callers must check ok() first.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirror absl::StatusOr.
  Result(T value) : rep_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

// Propagates an error Status out of the enclosing function.
#define INS_RETURN_IF_ERROR(expr)         \
  do {                                    \
    ::ins::Status ins_status__ = (expr);  \
    if (!ins_status__.ok()) {             \
      return ins_status__;                \
    }                                     \
  } while (0)

// Assigns the value of a Result<T> expression or propagates its error.
#define INS_CONCAT_INNER_(a, b) a##b
#define INS_CONCAT_(a, b) INS_CONCAT_INNER_(a, b)
#define INS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()
#define INS_ASSIGN_OR_RETURN(lhs, expr) \
  INS_ASSIGN_OR_RETURN_IMPL_(INS_CONCAT_(ins_result__, __LINE__), lhs, expr)

}  // namespace ins

#endif  // INS_COMMON_STATUS_H_
