// MetricsTimeSeries: a fixed-capacity ring of periodic registry snapshots.
//
// A single MetricsSnapshot is a point-in-time reading; rates ("lookups per
// second"), derivatives, and windowed quantiles need history. Every node that
// wants them keeps a MetricsTimeSeries and appends a snapshot on a periodic
// cadence (the resolver appends one per metrics poll it answers; the netmon
// app appends one per snapshot it receives). The ring has fixed capacity and
// O(1) append in ring bookkeeping — an append overwrites the oldest sample in
// place, it never grows or shifts storage.
//
// Samples are numbered by a monotonically increasing sequence. The sequence
// is what the incremental metrics poll on the wire keys on: a client says
// "changes since seq S", the resolver diffs its current registry against the
// retained sample S — or falls back to a full snapshot when S fell off the
// ring or belongs to a previous incarnation (wire/messages.h,
// MetricsDeltaRequest/MetricsDeltaResponse).

#ifndef INS_COMMON_TIMESERIES_H_
#define INS_COMMON_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ins/common/clock.h"
#include "ins/common/metrics.h"

namespace ins {

struct MetricsSample {
  uint64_t seq = 0;  // 0 = never assigned; the first appended sample is 1
  TimePoint at{0};
  MetricsSnapshot snapshot;
};

class MetricsTimeSeries {
 public:
  explicit MetricsTimeSeries(size_t capacity = 64);

  // Appends a sample taken now and returns its sequence number.
  uint64_t Append(const MetricsSnapshot& snapshot, TimePoint at);

  size_t capacity() const { return ring_.size(); }
  size_t size() const;
  uint64_t newest_seq() const { return appended_; }
  uint64_t oldest_seq() const;
  uint64_t appended() const { return appended_; }
  uint64_t evicted() const;

  // The retained sample with sequence `seq`, or nullptr when it was never
  // taken or has been overwritten.
  const MetricsSample* SampleAt(uint64_t seq) const;
  const MetricsSample* Newest() const;
  // The newest retained sample taken at or before `at` (nullptr when the
  // whole ring is newer).
  const MetricsSample* NewestAtOrBefore(TimePoint at) const;

  // --- Rate / derivative queries --------------------------------------------
  // All windowed queries compare the newest sample against the newest sample
  // at least `window` older (clamped to the oldest retained one), so they
  // degrade gracefully while history is still filling.

  // Counter increase per second over the window; 0 with fewer than 2 samples.
  double CounterRate(const std::string& name, Duration window) const;
  // Raw counter increase over the window.
  uint64_t CounterDelta(const std::string& name, Duration window) const;

  struct GaugeStats {
    int64_t min = 0;
    int64_t max = 0;
    int64_t last = 0;
    size_t samples = 0;  // 0 = the gauge was absent from every window sample
  };
  // Min/max/last of a gauge over every retained sample inside the window.
  GaugeStats GaugeOver(const std::string& name, Duration window) const;

  // The named histogram's increase over the window: bucket-wise difference
  // between the newest and the window-opening sample (histogram counts are
  // monotonic). An empty histogram when either end is missing the name.
  Histogram HistogramDelta(const std::string& name, Duration window) const;

  void Clear();

 private:
  // Oldest retained sample's ring index.
  const MetricsSample* WindowOpen(Duration window) const;

  std::vector<MetricsSample> ring_;
  uint64_t appended_ = 0;
};

// Bucket-wise difference `now - then` of two cumulative histograms (counts
// are monotonic between two snapshots of one registry). min/max of the delta
// are unknowable from bucket counts alone and are clamped to the populated
// bucket bounds, which is exactly what quantile interpolation needs.
Histogram HistogramIncrease(const Histogram& now, const Histogram& then);

}  // namespace ins

#endif  // INS_COMMON_TIMESERIES_H_
