// FlightRecorder: an always-on, allocation-free ring of SYSTEM events.
//
// Packet tracing (common/trace.h) explains what happened to one sampled
// packet; the flight recorder explains what happened to the NODE: overload
// shedding switching on and off, replica-set members dying and failing over,
// journal transfers falling back to snapshots, overlay edges breaking and
// repairing, the pacer backing off, resolvers restarting. Each node records
// into a fixed-capacity overwrite-oldest ring (same discipline as TraceRing:
// bounded memory however long a soak runs, newest events win). Recording an
// event is a few stores — details have static storage, nothing allocates —
// so it stays on in production and in every chaos soak.
//
// On a failure the harness merges every node's ring (including rings
// harvested from crashed nodes) into one causally-ordered incident timeline
// (simulated time is a single global clock) and dumps it next to the trace
// journeys — the "what was the system doing when the packet vanished" half
// of the forensics.

#ifndef INS_COMMON_FLIGHT_RECORDER_H_
#define INS_COMMON_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ins/common/clock.h"
#include "ins/common/node_address.h"

namespace ins {

enum class FlightEventKind : uint8_t {
  kShedOnset = 0,        // admission started shedding; value = load signal us
  kShedClear = 1,        // admission stopped shedding; value = load signal us
  kReplicaDead = 2,      // digest silence declared peer dead; peer = who
  kReplicaAlive = 3,     // a declared-dead replica digested again; peer = who
  kSnapshotFallback = 4, // journal delta impossible, full snapshot; peer = who
  kEdgeDown = 5,         // overlay neighbor lost; peer = who
  kEdgeRepair = 6,       // overlay neighbor (re)established; peer = who
  kParentLost = 7,       // the join parent died; the node re-runs the join
  kPacerBackoff = 8,     // load signal engaged the pacer; value = signal us
  kPacerRelease = 9,     // load signal released the pacer
  kInrStart = 10,        // resolver started (first start or restart)
  kInrStop = 11,         // graceful stop
  kInrCrash = 12,        // injected silent death
};

std::string_view FlightEventKindName(FlightEventKind kind);

enum class FlightSeverity : uint8_t {
  kInfo = 0,
  kWarning = 1,
  kCritical = 2,
};

std::string_view FlightSeverityName(FlightSeverity severity);

struct FlightEvent {
  TimePoint at{0};   // node-local (simulated) time
  NodeAddress node;  // recorder's owner
  FlightEventKind kind = FlightEventKind::kInrStart;
  FlightSeverity severity = FlightSeverity::kInfo;
  // Kind-specific annotation with static storage; never owned, so recording
  // an event allocates nothing.
  const char* detail = "";
  NodeAddress peer;
  uint64_t value = 0;

  std::string ToString() const;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 256);

  void Record(const FlightEvent& event);
  // Convenience: fills `at`/`node` and records.
  void Record(TimePoint at, FlightEventKind kind, FlightSeverity severity,
              const char* detail = "", NodeAddress peer = {}, uint64_t value = 0);

  void set_node(NodeAddress node) { node_ = node; }

  // The retained events, oldest first.
  std::vector<FlightEvent> Events() const;

  size_t capacity() const { return ring_.size(); }
  uint64_t recorded() const { return recorded_; }
  uint64_t overwritten() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }
  void Clear();

 private:
  NodeAddress node_;
  std::vector<FlightEvent> ring_;
  uint64_t recorded_ = 0;
};

// Merges per-node event lists into one causally-ordered timeline (simulated
// time is a single global clock; stable order breaks same-instant ties by
// input order). Rendered one event per line:
//   [12.345678s] WARN  10.0.0.2:5678 edge-down peer=10.0.0.3:5678
std::vector<FlightEvent> MergeFlightEvents(std::vector<FlightEvent> events);
std::string FlightTimelineText(const std::vector<FlightEvent>& merged);

}  // namespace ins

#endif  // INS_COMMON_FLIGHT_RECORDER_H_
