// Leveled stderr logging.
//
// Usage: INS_LOG(kInfo) << "discovered " << n << " names";
// Messages below the global minimum level are discarded without formatting.
//
// Log lines carry the node context of the thread that emits them: the
// simulation harness installs its virtual clock (SetThreadLogClock) and each
// resolver scopes its own address around message handling (ScopedLogNode), so
// a chaos-soak line reads
//   [WARN 12.345s 10.0.0.3:5678 forwarding.cc:42] ...
// instead of an anonymous interleaving of thirty resolvers.

#ifndef INS_COMMON_LOGGING_H_
#define INS_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string_view>

namespace ins {

class Clock;

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

// Global threshold; messages with level < threshold are dropped.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

std::string_view LogLevelName(LogLevel level);

// Installs `clock` as this thread's log timestamp source (nullptr clears it).
// With no clock installed, lines carry no timestamp — the real-UDP examples
// keep the seed format.
void SetThreadLogClock(const Clock* clock);

// Sets this thread's node tag ("" clears it). Prefer ScopedLogNode.
void SetThreadLogNode(std::string_view node);

// RAII node tag for the duration of a message-handling scope; restores the
// previous tag on exit, so nested scopes (an INR dispatching to a co-located
// client callback) unwind correctly.
class ScopedLogNode {
 public:
  explicit ScopedLogNode(std::string_view node);
  ~ScopedLogNode();

  ScopedLogNode(const ScopedLogNode&) = delete;
  ScopedLogNode& operator=(const ScopedLogNode&) = delete;

 private:
  char previous_[48];
};

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ins

// Dangling-else trick: the streamed expression is only evaluated when the
// level passes the threshold.
#define INS_LOG(level)                                        \
  if (::ins::LogLevel::level < ::ins::MinLogLevel()) {        \
  } else                                                      \
    ::ins::internal::LogMessage(::ins::LogLevel::level, __FILE__, __LINE__)

// Rate-limited variant: emits the 1st, (n+1)th, (2n+1)th... execution of this
// statement, so a per-packet warning cannot flood a chaos run. The counter
// still advances when the level is suppressed, keeping "every N" anchored to
// occurrences, not to the log level in force. Unlike INS_LOG this expands to
// a declaration plus a statement, so it cannot be the body of an unbraced
// `if`/`for` — wrap such uses in braces.
#define INS_LOG_EVERY_N_CAT_(a, b) a##b
#define INS_LOG_EVERY_N_CAT(a, b) INS_LOG_EVERY_N_CAT_(a, b)
#define INS_LOG_EVERY_N(level, n)                                                       \
  static ::std::atomic<uint64_t> INS_LOG_EVERY_N_CAT(ins_log_occurrences_, __LINE__){0}; \
  if (INS_LOG_EVERY_N_CAT(ins_log_occurrences_, __LINE__)                               \
              .fetch_add(1, ::std::memory_order_relaxed) %                              \
          static_cast<uint64_t>(n) !=                                                   \
      0) {                                                                              \
  } else                                                                                \
    INS_LOG(level)

#endif  // INS_COMMON_LOGGING_H_
