// Leveled stderr logging.
//
// Usage: INS_LOG(kInfo) << "discovered " << n << " names";
// Messages below the global minimum level are discarded without formatting.

#ifndef INS_COMMON_LOGGING_H_
#define INS_COMMON_LOGGING_H_

#include <sstream>
#include <string_view>

namespace ins {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

// Global threshold; messages with level < threshold are dropped.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

std::string_view LogLevelName(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ins

// Dangling-else trick: the streamed expression is only evaluated when the
// level passes the threshold.
#define INS_LOG(level)                                        \
  if (::ins::LogLevel::level < ::ins::MinLogLevel()) {        \
  } else                                                      \
    ::ins::internal::LogMessage(::ins::LogLevel::level, __FILE__, __LINE__)

#endif  // INS_COMMON_LOGGING_H_
