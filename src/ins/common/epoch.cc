#include "ins/common/epoch.h"

#include <chrono>
#include <functional>
#include <thread>

namespace ins {

EpochDomain::Guard::Guard(EpochDomain* domain) : domain_(domain) {
  // Announce-then-read ordering: the epoch is loaded BEFORE the slot claim
  // becomes visible, so the announced value can only be stale-low — which
  // makes writers wait conservatively, never reclaim early.
  size_t start = std::hash<std::thread::id>{}(std::this_thread::get_id()) % kSlots;
  for (;;) {
    for (size_t i = 0; i < kSlots; ++i) {
      std::atomic<uint64_t>& slot = domain_->slots_[(start + i) % kSlots].epoch;
      uint64_t expected = kIdle;
      uint64_t e = domain_->global_.load(std::memory_order_seq_cst);
      if (slot.compare_exchange_strong(expected, e, std::memory_order_seq_cst)) {
        slot_ = &slot;
        epoch_ = e;
        return;
      }
    }
    std::this_thread::yield();  // every slot busy: more readers than kSlots
  }
}

void EpochDomain::Guard::Release() {
  if (slot_ != nullptr) {
    slot_->store(kIdle, std::memory_order_seq_cst);
    slot_ = nullptr;
  }
}

uint64_t EpochDomain::MinActiveEpoch() const {
  uint64_t min = current();
  for (const Slot& s : slots_) {
    uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e != kIdle && e < min) {
      min = e;
    }
  }
  return min;
}

void EpochDomain::WaitForReadersBefore(uint64_t epoch) const {
  for (int spin = 0; MinActiveEpoch() < epoch; ++spin) {
    if (spin < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

}  // namespace ins
