#include "ins/common/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace ins {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string Ipv4ToString(uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff, (addr >> 16) & 0xff,
                (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

}  // namespace ins
