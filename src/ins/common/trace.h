// Hop-by-hop packet tracing (the observability side of the paper's
// NetworkManagement service).
//
// A sampled data packet carries a 64-bit trace id in its header (wire format
// in wire/packet.h); every resolver that touches it appends TraceEvents to a
// fixed-capacity per-node ring. The harness merges the rings into causal
// per-packet journeys (harness/trace_collector.h) — which path a packet
// took, where it was queued, and exactly why it was dropped. An unsampled
// packet (trace id 0) records nothing: the cost on the seed path is one
// branch per event site.

#ifndef INS_COMMON_TRACE_H_
#define INS_COMMON_TRACE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "ins/common/clock.h"
#include "ins/common/metrics.h"
#include "ins/common/node_address.h"

namespace ins {

enum class TraceEventKind : uint8_t {
  kReceived = 0,       // datagram decoded on a node; value = hop limit left
  kQueued = 1,         // held by admission control; value = queue depth
  kAdmitted = 2,       // released to dispatch; value = microseconds queued
  kLookup = 3,         // resolved against the name tree; value = match count
  kNextHopChosen = 4,  // tunneled on; peer = next-hop INR, value = hop limit
  kDelivered = 5,      // handed to an attached endpoint; peer = endpoint
  kDropped = 6,        // detail = the forwarding.drop.* reason suffix
};

std::string_view TraceEventKindName(TraceEventKind kind);

// The stages a traced packet's end-to-end latency decomposes into. Every gap
// between two consecutive TraceEvents of one journey belongs to exactly one
// stage (StageForTransition), so the per-stage spans of a journey sum to its
// measured end-to-end latency — the reconciliation the attribution bench
// gates on.
enum class LatencyStage : uint8_t {
  kIngress = 0,          // datagram decoded -> enqueued (or admitted inline)
  kAdmissionQueue = 1,   // waiting in the admission queues
  kLookup = 2,           // dispatch -> name-tree resolution done
  kNextHopSelection = 3, // resolution -> next-hop tunnel send
  kTransport = 4,        // in flight between resolvers (send -> next receive)
  kDelivery = 5,         // resolution -> handed to the endpoint
};
inline constexpr size_t kLatencyStageCount = 6;

std::string_view LatencyStageName(LatencyStage stage);

// Classifies the gap that ENDS at an event of kind `cur` (the previous event
// of the same journey had kind `prev`). Returns nullopt for gaps that are not
// part of the latency decomposition (e.g. the span into a kDropped event, or
// a duplicate-kind transition a multicast fan-out can produce).
std::optional<LatencyStage> StageForTransition(TraceEventKind prev, TraceEventKind cur);

struct TraceEvent {
  uint64_t trace_id = 0;
  TimePoint at{0};   // node-local (simulated) time of the event
  NodeAddress node;  // resolver that recorded the event
  TraceEventKind kind = TraceEventKind::kReceived;
  // Kind-specific annotation with static storage (drop reason, delivery
  // flavor); never owned, so recording an event allocates nothing.
  const char* detail = "";
  NodeAddress peer;   // next hop / delivery endpoint when meaningful
  uint64_t value = 0; // kind-specific scalar (see the kind comments)
};

// Fixed-capacity overwrite-oldest event ring. Bounded memory per node however
// long a soak runs; when it wraps, the newest events win — the tail of a
// journey is what diagnoses a loss.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 1024);

  void Record(const TraceEvent& event);

  // Node-local stage attribution: once enabled, every recorded event whose
  // predecessor (same trace id, same node) is still in the transition table
  // also records the gap into the per-stage latency.stage.<name> histogram of
  // `registry`. The table is a fixed-size open-addressed array — recording
  // stays allocation-free; a colliding trace id evicts the older entry and
  // that packet's next gap goes unattributed (it is a sampled diagnostic, not
  // an exact count). The cross-node kTransport stage never resolves here (the
  // receiving node has no local predecessor); the harness's TraceCollector
  // attributes it from the merged journey.
  void EnableStageAttribution(MetricsRegistry* registry);

  // The retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  size_t capacity() const { return ring_.size(); }
  uint64_t recorded() const { return recorded_; }
  uint64_t overwritten() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }
  void Clear();

 private:
  struct TransitionSlot {
    uint64_t trace_id = 0;  // 0 = empty
    TimePoint at{0};
    TraceEventKind kind = TraceEventKind::kReceived;
  };
  static constexpr size_t kTransitionSlots = 64;

  std::vector<TraceEvent> ring_;
  uint64_t recorded_ = 0;
  bool stages_enabled_ = false;
  std::array<HistogramHandle, kLatencyStageCount> stage_us_;
  std::array<TransitionSlot, kTransitionSlots> transitions_{};
};

}  // namespace ins

#endif  // INS_COMMON_TRACE_H_
