// Hop-by-hop packet tracing (the observability side of the paper's
// NetworkManagement service).
//
// A sampled data packet carries a 64-bit trace id in its header (wire format
// in wire/packet.h); every resolver that touches it appends TraceEvents to a
// fixed-capacity per-node ring. The harness merges the rings into causal
// per-packet journeys (harness/trace_collector.h) — which path a packet
// took, where it was queued, and exactly why it was dropped. An unsampled
// packet (trace id 0) records nothing: the cost on the seed path is one
// branch per event site.

#ifndef INS_COMMON_TRACE_H_
#define INS_COMMON_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "ins/common/clock.h"
#include "ins/common/node_address.h"

namespace ins {

enum class TraceEventKind : uint8_t {
  kReceived = 0,       // datagram decoded on a node; value = hop limit left
  kQueued = 1,         // held by admission control; value = queue depth
  kAdmitted = 2,       // released to dispatch; value = microseconds queued
  kLookup = 3,         // resolved against the name tree; value = match count
  kNextHopChosen = 4,  // tunneled on; peer = next-hop INR, value = hop limit
  kDelivered = 5,      // handed to an attached endpoint; peer = endpoint
  kDropped = 6,        // detail = the forwarding.drop.* reason suffix
};

std::string_view TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  uint64_t trace_id = 0;
  TimePoint at{0};   // node-local (simulated) time of the event
  NodeAddress node;  // resolver that recorded the event
  TraceEventKind kind = TraceEventKind::kReceived;
  // Kind-specific annotation with static storage (drop reason, delivery
  // flavor); never owned, so recording an event allocates nothing.
  const char* detail = "";
  NodeAddress peer;   // next hop / delivery endpoint when meaningful
  uint64_t value = 0; // kind-specific scalar (see the kind comments)
};

// Fixed-capacity overwrite-oldest event ring. Bounded memory per node however
// long a soak runs; when it wraps, the newest events win — the tail of a
// journey is what diagnoses a loss.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 1024);

  void Record(const TraceEvent& event);

  // The retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  size_t capacity() const { return ring_.size(); }
  uint64_t recorded() const { return recorded_; }
  uint64_t overwritten() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }
  void Clear();

 private:
  std::vector<TraceEvent> ring_;
  uint64_t recorded_ = 0;
};

}  // namespace ins

#endif  // INS_COMMON_TRACE_H_
