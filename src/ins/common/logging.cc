#include "ins/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "ins/common/clock.h"

namespace ins {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

// Thread-local log context. The node tag is a fixed buffer (not std::string)
// so installing it never allocates and is safe at any point of a handler.
thread_local const Clock* t_log_clock = nullptr;
thread_local char t_log_node[48] = {0};

void CopyNodeTag(char (&dst)[48], std::string_view node) {
  const size_t n = node.size() < sizeof(dst) - 1 ? node.size() : sizeof(dst) - 1;
  std::memcpy(dst, node.data(), n);
  dst[n] = '\0';
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetThreadLogClock(const Clock* clock) { t_log_clock = clock; }

void SetThreadLogNode(std::string_view node) { CopyNodeTag(t_log_node, node); }

ScopedLogNode::ScopedLogNode(std::string_view node) {
  std::memcpy(previous_, t_log_node, sizeof(previous_));
  CopyNodeTag(t_log_node, node);
}

ScopedLogNode::~ScopedLogNode() { std::memcpy(t_log_node, previous_, sizeof(t_log_node)); }

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LogLevelName(level);
  if (t_log_clock != nullptr) {
    // Virtual time in seconds with microsecond resolution, e.g. "12.345678s".
    const int64_t us = t_log_clock->Now().count();
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %lld.%06llds", static_cast<long long>(us / 1000000),
                  static_cast<long long>(us % 1000000));
    stream_ << buf;
  }
  if (t_log_node[0] != '\0') {
    stream_ << " " << t_log_node;
  }
  stream_ << " " << (base != nullptr ? base + 1 : file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ >= LogLevel::kError) {
    std::fflush(stderr);
  }
}

}  // namespace internal
}  // namespace ins
