#include "ins/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace ins {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};
}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LogLevelName(level) << " " << (base != nullptr ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ >= LogLevel::kError) {
    std::fflush(stderr);
  }
}

}  // namespace internal
}  // namespace ins
