// Jittered exponential backoff.
//
// Retry loops that fire on a fixed interval synchronize across nodes: after a
// partition heals, every orphaned resolver re-joins (and re-registers) in the
// same event-loop tick, hammering the DSR and each other — the classic
// thundering herd. Every retry in the overlay therefore draws its delay from
// a Backoff: exponential growth with a cap bounds the worst-case retry rate,
// and per-node deterministic jitter decorrelates the fleet while keeping
// simulation runs bit-reproducible from a seed.

#ifndef INS_COMMON_BACKOFF_H_
#define INS_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "ins/common/clock.h"
#include "ins/common/rng.h"

namespace ins {

struct BackoffConfig {
  Duration initial = Milliseconds(1000);
  Duration max = Seconds(30);
  double multiplier = 2.0;
  // Fraction of the nominal delay randomized away: the k-th delay is drawn
  // uniformly from [d*(1-jitter), d] where d = min(initial*multiplier^k, max).
  double jitter = 0.3;
};

// Draws `base` scaled uniformly from [1-frac, 1]. Shaving the interval down
// (never up) keeps jittered soft-state refreshes inside their lifetime.
inline Duration ApplyJitter(Duration base, double frac, Rng& rng) {
  double scale = 1.0 - frac * rng.NextDouble();
  return Duration(static_cast<int64_t>(static_cast<double>(base.count()) * scale));
}

class Backoff {
 public:
  Backoff(const BackoffConfig& config, Rng* rng) : config_(config), rng_(rng) {}

  // Delay to wait before the next attempt; successive calls grow the delay
  // exponentially up to the cap.
  Duration Next() {
    Duration d = current_;
    current_ = std::min(
        config_.max,
        Duration(static_cast<int64_t>(static_cast<double>(current_.count()) *
                                      config_.multiplier)));
    ++failures_;
    return ApplyJitter(d, config_.jitter, *rng_);
  }

  // Back to the initial delay (call when the guarded operation succeeds).
  void Reset() {
    current_ = config_.initial;
    failures_ = 0;
  }

  int failures() const { return failures_; }
  const BackoffConfig& config() const { return config_; }

 private:
  BackoffConfig config_;
  Rng* rng_;
  Duration current_ = config_.initial;
  int failures_ = 0;
};

}  // namespace ins

#endif  // INS_COMMON_BACKOFF_H_
