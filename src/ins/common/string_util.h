// Small string helpers shared across modules.

#ifndef INS_COMMON_STRING_UTIL_H_
#define INS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ins {

// Splits on a single character; empty pieces are preserved.
std::vector<std::string> SplitString(std::string_view s, char sep);

// Joins pieces with a separator.
std::string JoinStrings(const std::vector<std::string>& pieces, std::string_view sep);

// True if `s` begins with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Renders an IPv4-style address stored in host order, e.g. 0x0a000001 ->
// "10.0.0.1". Used for AnnouncerIDs and debug output.
std::string Ipv4ToString(uint32_t addr);

}  // namespace ins

#endif  // INS_COMMON_STRING_UTIL_H_
