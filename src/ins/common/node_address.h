// Network addressing shared by the simulator, the wire formats, and the
// resolver. An address is an IPv4-style 32-bit host identifier plus a UDP
// port; the simulated network and the real UDP transport both speak it.

#ifndef INS_COMMON_NODE_ADDRESS_H_
#define INS_COMMON_NODE_ADDRESS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "ins/common/string_util.h"

namespace ins {

struct NodeAddress {
  uint32_t ip = 0;
  uint16_t port = 0;

  constexpr bool IsValid() const { return ip != 0; }

  std::string ToString() const {
    return Ipv4ToString(ip) + ":" + std::to_string(port);
  }

  friend constexpr bool operator==(const NodeAddress& a, const NodeAddress& b) {
    return a.ip == b.ip && a.port == b.port;
  }
  friend constexpr bool operator!=(const NodeAddress& a, const NodeAddress& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const NodeAddress& a, const NodeAddress& b) {
    return a.ip != b.ip ? a.ip < b.ip : a.port < b.port;
  }
};

inline constexpr NodeAddress kInvalidAddress{};

struct NodeAddressHash {
  size_t operator()(const NodeAddress& a) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(a.ip) << 16) | a.port);
  }
};

// Builds a test/simulation address: 10.0.x.y, default INS port 5678.
constexpr uint16_t kInsPort = 5678;
constexpr NodeAddress MakeAddress(uint32_t host_index, uint16_t port = kInsPort) {
  return NodeAddress{0x0a000000u + host_index, port};
}

}  // namespace ins

#endif  // INS_COMMON_NODE_ADDRESS_H_
