// Epoch-based read reclamation for the concurrent lookup core.
//
// Readers of a shared structure announce the epoch they entered in a private
// slot, do their reads against an immutable published version, and clear the
// slot on exit — no locks, no reference-count ping-pong on the hot path.
// Writers publish a new version, advance the global epoch, and wait until no
// reader still announces an older epoch before reclaiming (or reusing) the
// retired version. The resolver uses one EpochDomain per sharded name-tree;
// the drain is what lets the per-shard writer recycle the previous tree copy
// in the left-right scheme (see nametree/sharded_name_tree.h).
//
// Slots are claimed by compare-and-swap from a fixed array, so readers need
// no registration step and arbitrary (bounded) thread counts work. Claiming
// is lock-free: a reader retries from a thread-hashed starting index until a
// free slot is won.

#ifndef INS_COMMON_EPOCH_H_
#define INS_COMMON_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ins {

class EpochDomain {
 public:
  // More slots than any realistic reader-thread count (nested read guards on
  // one thread consume one slot each).
  static constexpr size_t kSlots = 64;
  static constexpr uint64_t kIdle = ~0ull;

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // RAII read-side critical section. While alive, no version published at or
  // after the announced epoch is reclaimed.
  class Guard {
   public:
    Guard() = default;
    explicit Guard(EpochDomain* domain);
    ~Guard() { Release(); }

    Guard(Guard&& other) noexcept : domain_(other.domain_), slot_(other.slot_),
                                    epoch_(other.epoch_) {
      other.domain_ = nullptr;
      other.slot_ = nullptr;
    }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        domain_ = other.domain_;
        slot_ = other.slot_;
        epoch_ = other.epoch_;
        other.domain_ = nullptr;
        other.slot_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    bool active() const { return slot_ != nullptr; }
    // The epoch this reader announced on entry.
    uint64_t epoch() const { return epoch_; }

   private:
    void Release();

    EpochDomain* domain_ = nullptr;
    std::atomic<uint64_t>* slot_ = nullptr;
    uint64_t epoch_ = 0;
  };

  Guard Enter() { return Guard(this); }

  uint64_t current() const { return global_.load(std::memory_order_seq_cst); }

  // Moves the domain to a new epoch; returns the new value. Called by a
  // writer immediately after publishing a new version.
  uint64_t Advance() { return global_.fetch_add(1, std::memory_order_seq_cst) + 1; }

  // The reclamation counter: the oldest epoch still announced by any active
  // reader, or `current()` when no reader is inside.
  uint64_t MinActiveEpoch() const;

  // Blocks (spin + yield) until every reader that announced an epoch older
  // than `epoch` has left. After this returns, versions retired before
  // `epoch` have no readers and may be reclaimed or rewritten.
  void WaitForReadersBefore(uint64_t epoch) const;

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  std::atomic<uint64_t> global_{1};
  Slot slots_[kSlots];
};

}  // namespace ins

#endif  // INS_COMMON_EPOCH_H_
