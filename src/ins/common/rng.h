// Deterministic pseudo-random number generation (xoshiro256**).
//
// All randomness in libins — workload generation, simulated packet loss,
// random name-specifier synthesis for the benchmark harnesses — flows through
// a seeded Rng so experiments are reproducible bit-for-bit.

#ifndef INS_COMMON_RNG_H_
#define INS_COMMON_RNG_H_

#include <cassert>
#include <cstdint>

namespace ins {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace ins

#endif  // INS_COMMON_RNG_H_
