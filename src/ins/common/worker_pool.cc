#include "ins/common/worker_pool.h"

#include <atomic>

namespace ins {

WorkerPool::WorkerPool(size_t threads) {
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::Post(std::function<void()> fn) {
  if (threads_.empty()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void WorkerPool::RunAll(size_t n, const std::function<void(size_t)>& fn) {
  if (threads_.empty() || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  struct Barrier {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = n;
  for (size_t i = 0; i < n; ++i) {
    Post([barrier, &fn, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(barrier->mu);
      if (--barrier->remaining == 0) {
        barrier->done.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(barrier->mu);
  barrier->done.wait(lock, [&] { return barrier->remaining == 0; });
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace ins
