#include "ins/common/bytes.h"

#include <cassert>
#include <cstring>

namespace ins {

void ByteWriter::WriteU8(uint8_t v) { buf_.push_back(v); }

void ByteWriter::WriteU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::WriteU32(uint32_t v) {
  WriteU16(static_cast<uint16_t>(v >> 16));
  WriteU16(static_cast<uint16_t>(v));
}

void ByteWriter::WriteU64(uint64_t v) {
  WriteU32(static_cast<uint32_t>(v >> 32));
  WriteU32(static_cast<uint32_t>(v));
}

void ByteWriter::WriteString(std::string_view s) {
  assert(s.size() <= 0xffff);
  WriteU16(static_cast<uint16_t>(s.size()));
  WriteBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

void ByteWriter::WriteBytes(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void ByteWriter::PatchU16(size_t offset, uint16_t v) {
  assert(offset + 2 <= buf_.size());
  buf_[offset] = static_cast<uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<uint8_t>(v);
}

void ByteWriter::PatchU32(size_t offset, uint32_t v) {
  PatchU16(offset, static_cast<uint16_t>(v >> 16));
  PatchU16(offset + 2, static_cast<uint16_t>(v));
}

Status ByteReader::CheckAvailable(size_t n) const {
  if (pos_ + n > len_) {
    return OutOfRangeError("buffer underrun: need " + std::to_string(n) +
                           " bytes at offset " + std::to_string(pos_) + " of " +
                           std::to_string(len_));
  }
  return Status::Ok();
}

Result<uint8_t> ByteReader::ReadU8() {
  INS_RETURN_IF_ERROR(CheckAvailable(1));
  return data_[pos_++];
}

Result<uint16_t> ByteReader::ReadU16() {
  INS_RETURN_IF_ERROR(CheckAvailable(2));
  uint16_t v = static_cast<uint16_t>(static_cast<uint16_t>(data_[pos_]) << 8 |
                                     static_cast<uint16_t>(data_[pos_ + 1]));
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::ReadU32() {
  INS_RETURN_IF_ERROR(CheckAvailable(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = v << 8 | data_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  INS_RETURN_IF_ERROR(CheckAvailable(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = v << 8 | data_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 8;
  return v;
}

Result<std::string> ByteReader::ReadString() {
  auto len = ReadU16();
  if (!len.ok()) {
    return len.status();
  }
  INS_RETURN_IF_ERROR(CheckAvailable(*len));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), *len);
  pos_ += *len;
  return s;
}

Result<Bytes> ByteReader::ReadBytes(size_t len) {
  INS_RETURN_IF_ERROR(CheckAvailable(len));
  Bytes b(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return b;
}

Status ByteReader::SeekTo(size_t offset) {
  if (offset > len_) {
    return OutOfRangeError("seek past end: " + std::to_string(offset) + " > " +
                           std::to_string(len_));
  }
  pos_ = offset;
  return Status::Ok();
}

}  // namespace ins
