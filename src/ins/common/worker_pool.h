// A fixed pool of worker threads for the concurrent lookup core.
//
// The resolver's protocol machinery stays single-threaded (it runs on an
// Executor, under virtual time in the simulator), but LOOKUP-NAME / GET-NAME
// are pure reads and parallelize across name-tree shards (paper §5, Figures 8
// and 12 identify lookup throughput as the scaling bottleneck). WorkerPool is
// the TaskRunner (common/executor.h) those reads run on: a fixed number of
// threads created up front, a simple mutex-guarded queue feeding them, and a
// completion barrier for scatter/gather fan-out.
//
// With zero threads the pool degenerates to inline execution, so the same
// call sites work unchanged in single-threaded deployments and tests.

#ifndef INS_COMMON_WORKER_POOL_H_
#define INS_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "ins/common/executor.h"

namespace ins {

class WorkerPool : public TaskRunner {
 public:
  // `threads` == 0 builds an inline pool: Post/RunAll execute on the caller.
  explicit WorkerPool(size_t threads);
  ~WorkerPool() override;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueues fn for execution on some worker (or runs it inline when the
  // pool has no threads).
  void Post(std::function<void()> fn) override;

  // Scatter/gather barrier: runs fn(0) .. fn(n-1) across the pool and blocks
  // until all of them finish. Must not be called from a worker thread (the
  // caller parks on a condition variable and would deadlock the pool if it
  // occupied the last worker).
  void RunAll(size_t n, const std::function<void(size_t)>& fn);

  size_t thread_count() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ins

#endif  // INS_COMMON_WORKER_POOL_H_
