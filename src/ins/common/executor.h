// Task scheduling abstraction.
//
// Timers (soft-state expiry sweeps, periodic advertisement refresh, periodic
// routing updates) are scheduled through an Executor so the same code runs
// under virtual time in the simulator and real time in live deployments.

#ifndef INS_COMMON_EXECUTOR_H_
#define INS_COMMON_EXECUTOR_H_

#include <cstdint>
#include <functional>

#include "ins/common/clock.h"

namespace ins {

// Opaque handle identifying a scheduled task; 0 is never a valid id.
using TaskId = uint64_t;
inline constexpr TaskId kInvalidTaskId = 0;

class Executor {
 public:
  virtual ~Executor() = default;

  // Runs `fn` at absolute time `when` (clamped to Now() if in the past).
  virtual TaskId ScheduleAt(TimePoint when, std::function<void()> fn) = 0;

  // Runs `fn` after `delay` from now.
  TaskId ScheduleAfter(Duration delay, std::function<void()> fn) {
    return ScheduleAt(Now() + delay, std::move(fn));
  }

  // Cancels a pending task. Returns false if it already ran or was cancelled.
  virtual bool Cancel(TaskId id) = 0;

  // The executor's notion of current time.
  virtual TimePoint Now() const = 0;
};

}  // namespace ins

#endif  // INS_COMMON_EXECUTOR_H_
