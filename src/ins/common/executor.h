// Task scheduling abstractions.
//
// Timers (soft-state expiry sweeps, periodic advertisement refresh, periodic
// routing updates) are scheduled through an Executor so the same code runs
// under virtual time in the simulator and real time in live deployments.
// TaskRunner is the untimed counterpart: run-as-soon-as-possible submission,
// implemented inline for single-threaded callers and by common/worker_pool.h
// for the multi-threaded lookup core.

#ifndef INS_COMMON_EXECUTOR_H_
#define INS_COMMON_EXECUTOR_H_

#include <cstdint>
#include <functional>

#include "ins/common/clock.h"

namespace ins {

// Opaque handle identifying a scheduled task; 0 is never a valid id.
using TaskId = uint64_t;
inline constexpr TaskId kInvalidTaskId = 0;

class Executor {
 public:
  virtual ~Executor() = default;

  // Runs `fn` at absolute time `when` (clamped to Now() if in the past).
  virtual TaskId ScheduleAt(TimePoint when, std::function<void()> fn) = 0;

  // Runs `fn` after `delay` from now.
  TaskId ScheduleAfter(Duration delay, std::function<void()> fn) {
    return ScheduleAt(Now() + delay, std::move(fn));
  }

  // Cancels a pending task. Returns false if it already ran or was cancelled.
  virtual bool Cancel(TaskId id) = 0;

  // The executor's notion of current time.
  virtual TimePoint Now() const = 0;
};

// Immediate (untimed) task submission. Unlike Executor, a TaskRunner makes
// no ordering or threading promise beyond "fn runs once, eventually"; callers
// that need a completion barrier build one on top (see WorkerPool::RunAll).
class TaskRunner {
 public:
  virtual ~TaskRunner() = default;
  virtual void Post(std::function<void()> fn) = 0;
};

// Runs everything synchronously on the calling thread; the degenerate
// TaskRunner used when no worker pool is configured.
class InlineRunner : public TaskRunner {
 public:
  void Post(std::function<void()> fn) override { fn(); }
};

}  // namespace ins

#endif  // INS_COMMON_EXECUTOR_H_
