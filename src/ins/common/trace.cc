#include "ins/common/trace.h"

namespace ins {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kReceived:
      return "received";
    case TraceEventKind::kQueued:
      return "queued";
    case TraceEventKind::kAdmitted:
      return "admitted";
    case TraceEventKind::kLookup:
      return "lookup";
    case TraceEventKind::kNextHopChosen:
      return "next-hop-chosen";
    case TraceEventKind::kDelivered:
      return "delivered";
    case TraceEventKind::kDropped:
      return "dropped";
  }
  return "?";
}

std::string_view LatencyStageName(LatencyStage stage) {
  switch (stage) {
    case LatencyStage::kIngress:
      return "ingress";
    case LatencyStage::kAdmissionQueue:
      return "admission_queue";
    case LatencyStage::kLookup:
      return "lookup";
    case LatencyStage::kNextHopSelection:
      return "next_hop";
    case LatencyStage::kTransport:
      return "transport";
    case LatencyStage::kDelivery:
      return "delivery";
  }
  return "?";
}

std::optional<LatencyStage> StageForTransition(TraceEventKind prev, TraceEventKind cur) {
  switch (cur) {
    case TraceEventKind::kQueued:
      // Decode + classify between the datagram arriving and it being queued.
      return LatencyStage::kIngress;
    case TraceEventKind::kAdmitted:
      // With admission enabled the predecessor is kQueued and the gap is time
      // spent in the queues; inline admission goes kReceived -> kAdmitted and
      // the (zero-width in the simulator) gap is still ingress work.
      return prev == TraceEventKind::kQueued ? LatencyStage::kAdmissionQueue
                                             : LatencyStage::kIngress;
    case TraceEventKind::kLookup:
      return LatencyStage::kLookup;
    case TraceEventKind::kNextHopChosen:
      // Post-resolution route selection — also the path of a packet tunneled
      // toward its vspace owner without a local lookup.
      return LatencyStage::kNextHopSelection;
    case TraceEventKind::kReceived:
      // The only way a journey re-enters kReceived is arrival on the next
      // resolver: the gap is transport flight time.
      return LatencyStage::kTransport;
    case TraceEventKind::kDelivered:
      return LatencyStage::kDelivery;
    case TraceEventKind::kDropped:
      return std::nullopt;  // a drop ends the journey; nothing to attribute
  }
  return std::nullopt;
}

TraceRing::TraceRing(size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void TraceRing::EnableStageAttribution(MetricsRegistry* registry) {
  for (size_t s = 0; s < kLatencyStageCount; ++s) {
    stage_us_[s] = registry->RegisterHistogram(
        "latency.stage." + std::string(LatencyStageName(static_cast<LatencyStage>(s))));
  }
  stages_enabled_ = true;
}

void TraceRing::Record(const TraceEvent& event) {
  ring_[recorded_ % ring_.size()] = event;
  ++recorded_;
  if (!stages_enabled_ || event.trace_id == 0) {
    return;
  }
  TransitionSlot& slot = transitions_[event.trace_id % kTransitionSlots];
  if (slot.trace_id == event.trace_id && event.at >= slot.at) {
    if (auto stage = StageForTransition(slot.kind, event.kind); stage.has_value()) {
      stage_us_[static_cast<size_t>(*stage)].Record(
          static_cast<uint64_t>((event.at - slot.at).count()));
    }
  }
  slot.trace_id = event.trace_id;
  slot.at = event.at;
  slot.kind = event.kind;
}

std::vector<TraceEvent> TraceRing::Events() const {
  std::vector<TraceEvent> out;
  const size_t n = recorded_ < ring_.size() ? static_cast<size_t>(recorded_) : ring_.size();
  out.reserve(n);
  const uint64_t start = recorded_ - n;
  for (uint64_t i = start; i < recorded_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

void TraceRing::Clear() {
  recorded_ = 0;
  transitions_.fill(TransitionSlot{});
}

}  // namespace ins
