#include "ins/common/trace.h"

namespace ins {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kReceived:
      return "received";
    case TraceEventKind::kQueued:
      return "queued";
    case TraceEventKind::kAdmitted:
      return "admitted";
    case TraceEventKind::kLookup:
      return "lookup";
    case TraceEventKind::kNextHopChosen:
      return "next-hop-chosen";
    case TraceEventKind::kDelivered:
      return "delivered";
    case TraceEventKind::kDropped:
      return "dropped";
  }
  return "?";
}

TraceRing::TraceRing(size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void TraceRing::Record(const TraceEvent& event) {
  ring_[recorded_ % ring_.size()] = event;
  ++recorded_;
}

std::vector<TraceEvent> TraceRing::Events() const {
  std::vector<TraceEvent> out;
  const size_t n = recorded_ < ring_.size() ? static_cast<size_t>(recorded_) : ring_.size();
  out.reserve(n);
  const uint64_t start = recorded_ - n;
  for (uint64_t i = start; i < recorded_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

void TraceRing::Clear() {
  recorded_ = 0;
}

}  // namespace ins
