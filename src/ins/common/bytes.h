// Binary encoding primitives used by the wire formats.
//
// All multi-byte integers are big-endian (network order), matching the
// fixed-layout INS packet header in Figure 10 of the paper. Strings are
// length-prefixed with a u16.

#ifndef INS_COMMON_BYTES_H_
#define INS_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ins/common/status.h"

namespace ins {

using Bytes = std::vector<uint8_t>;

// Appends encoded values to an owned buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  // u16 length prefix + raw bytes; aborts if s exceeds 65535 bytes.
  void WriteString(std::string_view s);
  void WriteBytes(const uint8_t* data, size_t len);
  void WriteBytes(const Bytes& b) { WriteBytes(b.data(), b.size()); }

  // Overwrites a previously written u16/u32 at `offset` (for back-patching
  // header pointer fields whose values are known only after serialization).
  void PatchU16(size_t offset, uint16_t v);
  void PatchU32(size_t offset, uint32_t v);

  size_t size() const { return buf_.size(); }
  const Bytes& bytes() const& { return buf_; }
  Bytes TakeBytes() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

// Reads encoded values from a borrowed buffer with bounds checking.
// The buffer must outlive the reader.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const Bytes& b) : ByteReader(b.data(), b.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<std::string> ReadString();
  // Reads exactly `len` raw bytes.
  Result<Bytes> ReadBytes(size_t len);

  // Moves the cursor to an absolute offset (for header pointer fields).
  Status SeekTo(size_t offset);

  size_t position() const { return pos_; }
  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  Status CheckAvailable(size_t n) const;

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace ins

#endif  // INS_COMMON_BYTES_H_
