// Time types and the Clock abstraction.
//
// All of libins runs against an abstract Clock so the same resolver code can
// execute under the deterministic discrete-event simulator (sim::EventLoop)
// or against the real system clock (examples over UDP).

#ifndef INS_COMMON_CLOCK_H_
#define INS_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace ins {

// Durations and absolute times are microsecond-resolution. TimePoint is time
// since an arbitrary epoch (simulation start, or process start for RealClock).
using Duration = std::chrono::microseconds;
using TimePoint = std::chrono::microseconds;

constexpr Duration Microseconds(int64_t us) { return Duration(us); }
constexpr Duration Milliseconds(int64_t ms) { return Duration(ms * 1000); }
constexpr Duration Seconds(int64_t s) { return Duration(s * 1000000); }

constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d.count()) / 1e6;
}
constexpr double ToMillis(Duration d) {
  return static_cast<double>(d.count()) / 1e3;
}

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;
};

// Wall clock relative to the first call in the process.
class RealClock : public Clock {
 public:
  TimePoint Now() const override {
    static const auto kStart = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<Duration>(std::chrono::steady_clock::now() - kStart);
  }
};

// Manually-advanced clock for unit tests.
class ManualClock : public Clock {
 public:
  TimePoint Now() const override { return now_; }
  void Advance(Duration d) { now_ += d; }
  void Set(TimePoint t) { now_ = t; }

 private:
  TimePoint now_{0};
};

}  // namespace ins

#endif  // INS_COMMON_CLOCK_H_
