#include "ins/common/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace ins {

std::string_view FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kShedOnset:
      return "shed-onset";
    case FlightEventKind::kShedClear:
      return "shed-clear";
    case FlightEventKind::kReplicaDead:
      return "replica-dead";
    case FlightEventKind::kReplicaAlive:
      return "replica-alive";
    case FlightEventKind::kSnapshotFallback:
      return "snapshot-fallback";
    case FlightEventKind::kEdgeDown:
      return "edge-down";
    case FlightEventKind::kEdgeRepair:
      return "edge-repair";
    case FlightEventKind::kParentLost:
      return "parent-lost";
    case FlightEventKind::kPacerBackoff:
      return "pacer-backoff";
    case FlightEventKind::kPacerRelease:
      return "pacer-release";
    case FlightEventKind::kInrStart:
      return "inr-start";
    case FlightEventKind::kInrStop:
      return "inr-stop";
    case FlightEventKind::kInrCrash:
      return "inr-crash";
  }
  return "?";
}

std::string_view FlightSeverityName(FlightSeverity severity) {
  switch (severity) {
    case FlightSeverity::kInfo:
      return "INFO";
    case FlightSeverity::kWarning:
      return "WARN";
    case FlightSeverity::kCritical:
      return "CRIT";
  }
  return "?";
}

std::string FlightEvent::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%" PRId64 ".%06" PRId64 "s] %-4s ", at.count() / 1000000,
                at.count() % 1000000, std::string(FlightSeverityName(severity)).c_str());
  std::string out = buf;
  out += node.ToString();
  out += " ";
  out += FlightEventKindName(kind);
  if (detail != nullptr && detail[0] != '\0') {
    out += " ";
    out += detail;
  }
  if (peer.IsValid()) {
    out += " peer=";
    out += peer.ToString();
  }
  if (value != 0) {
    std::snprintf(buf, sizeof(buf), " value=%" PRIu64, value);
    out += buf;
  }
  return out;
}

FlightRecorder::FlightRecorder(size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::Record(const FlightEvent& event) {
  ring_[recorded_ % ring_.size()] = event;
  ++recorded_;
}

void FlightRecorder::Record(TimePoint at, FlightEventKind kind, FlightSeverity severity,
                            const char* detail, NodeAddress peer, uint64_t value) {
  FlightEvent ev;
  ev.at = at;
  ev.node = node_;
  ev.kind = kind;
  ev.severity = severity;
  ev.detail = detail;
  ev.peer = peer;
  ev.value = value;
  Record(ev);
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  std::vector<FlightEvent> out;
  const size_t n = recorded_ < ring_.size() ? static_cast<size_t>(recorded_) : ring_.size();
  out.reserve(n);
  const uint64_t start = recorded_ - n;
  for (uint64_t i = start; i < recorded_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

void FlightRecorder::Clear() { recorded_ = 0; }

std::vector<FlightEvent> MergeFlightEvents(std::vector<FlightEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& a, const FlightEvent& b) { return a.at < b.at; });
  return events;
}

std::string FlightTimelineText(const std::vector<FlightEvent>& merged) {
  std::string out;
  for (const FlightEvent& ev : merged) {
    out += ev.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace ins
