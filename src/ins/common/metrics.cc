#include "ins/common/metrics.h"

#include <algorithm>
#include <sstream>

namespace ins {

double Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based; walk the buckets to find where it sits.
  const double rank = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kBucketCount; ++b) {
    if (counts_[b] == 0) {
      continue;
    }
    const uint64_t before = cumulative;
    cumulative += counts_[b];
    if (static_cast<double>(cumulative) < rank) {
      continue;
    }
    // Interpolate inside the winning bucket, tightened by the observed
    // extremes — a single-bucket distribution answers exactly.
    const double low = static_cast<double>(std::max(BucketLow(b), min_));
    const double high = static_cast<double>(std::min(BucketHigh(b), max_));
    const double within =
        (rank - static_cast<double>(before)) / static_cast<double>(counts_[b]);
    return low + (high - low) * within;
  }
  return static_cast<double>(max_);
}

std::vector<std::pair<uint8_t, uint64_t>> Histogram::SparseBuckets() const {
  std::vector<std::pair<uint8_t, uint64_t>> out;
  for (size_t b = 0; b < kBucketCount; ++b) {
    if (counts_[b] != 0) {
      out.emplace_back(static_cast<uint8_t>(b), counts_[b]);
    }
  }
  return out;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t b = 0; b < kBucketCount; ++b) {
    counts_[b] += other.counts_[b];
  }
}

Histogram Histogram::FromParts(uint64_t sum, uint64_t min, uint64_t max,
                               const std::vector<std::pair<uint8_t, uint64_t>>& buckets) {
  Histogram h;
  for (const auto& [index, count] : buckets) {
    if (index < kBucketCount) {
      h.counts_[index] += count;
      h.count_ += count;
    }
  }
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  return h;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.counters = counters();
  snap.gauges = gauges();
  for (const auto& [name, slot] : histograms_) {
    snap.histograms.emplace(name, *slot);
  }
  snap.timings = timings_;
  return snap;
}

namespace {

// Metric names are dot-separated identifiers, but escape the JSON specials
// anyway so a surprising name can never corrupt a dump.
void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\';
    }
    os << c;
  }
  os << '"';
}

}  // namespace

std::string MetricsSnapshotJson(const MetricsSnapshot& snapshot, int indent) {
  const std::string pad(static_cast<size_t>(indent < 0 ? 0 : indent), ' ');
  const std::string pad2 = pad + pad;
  std::ostringstream os;
  os << "{\n";

  os << pad << "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    os << (first ? "\n" : ",\n") << pad2;
    AppendJsonString(os, name);
    os << ": " << value;
    first = false;
  }
  os << (first ? "" : "\n" + pad) << "},\n";

  os << pad << "\"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    os << (first ? "\n" : ",\n") << pad2;
    AppendJsonString(os, name);
    os << ": " << value;
    first = false;
  }
  os << (first ? "" : "\n" + pad) << "},\n";

  os << pad << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    os << (first ? "\n" : ",\n") << pad2;
    AppendJsonString(os, name);
    os << ": {\"count\": " << h.count() << ", \"sum\": " << h.sum()
       << ", \"min\": " << h.min() << ", \"max\": " << h.max() << ", \"p50\": " << h.P50()
       << ", \"p90\": " << h.P90() << ", \"p99\": " << h.P99() << ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [index, count] : h.SparseBuckets()) {
      os << (first_bucket ? "" : ", ") << "[" << static_cast<int>(index) << ", " << count
         << "]";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n" + pad) << "},\n";

  os << pad << "\"timings\": {";
  first = true;
  for (const auto& [name, stat] : snapshot.timings) {
    os << (first ? "\n" : ",\n") << pad2;
    AppendJsonString(os, name);
    os << ": {\"count\": " << stat.count << ", \"total_us\": " << stat.total.count()
       << ", \"min_us\": " << stat.min.count() << ", \"max_us\": " << stat.max.count()
       << "}";
    first = false;
  }
  os << (first ? "" : "\n" + pad) << "}\n";

  os << "}";
  return os.str();
}

}  // namespace ins
