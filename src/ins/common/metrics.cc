#include "ins/common/metrics.h"

// MetricsRegistry is header-only; this translation unit anchors the library.
