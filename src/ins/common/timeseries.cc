#include "ins/common/timeseries.h"

#include <algorithm>

namespace ins {

MetricsTimeSeries::MetricsTimeSeries(size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

uint64_t MetricsTimeSeries::Append(const MetricsSnapshot& snapshot, TimePoint at) {
  MetricsSample& slot = ring_[appended_ % ring_.size()];
  slot.seq = ++appended_;
  slot.at = at;
  slot.snapshot = snapshot;
  return slot.seq;
}

size_t MetricsTimeSeries::size() const {
  return appended_ < ring_.size() ? static_cast<size_t>(appended_) : ring_.size();
}

uint64_t MetricsTimeSeries::oldest_seq() const {
  if (appended_ == 0) {
    return 0;
  }
  return appended_ < ring_.size() ? 1 : appended_ - ring_.size() + 1;
}

uint64_t MetricsTimeSeries::evicted() const {
  return appended_ > ring_.size() ? appended_ - ring_.size() : 0;
}

const MetricsSample* MetricsTimeSeries::SampleAt(uint64_t seq) const {
  if (seq == 0 || seq > appended_ || seq < oldest_seq()) {
    return nullptr;
  }
  return &ring_[(seq - 1) % ring_.size()];
}

const MetricsSample* MetricsTimeSeries::Newest() const { return SampleAt(appended_); }

const MetricsSample* MetricsTimeSeries::NewestAtOrBefore(TimePoint at) const {
  const MetricsSample* best = nullptr;
  for (uint64_t seq = oldest_seq(); seq != 0 && seq <= appended_; ++seq) {
    const MetricsSample* s = SampleAt(seq);
    if (s == nullptr || s->at > at) {
      break;  // samples are appended in time order
    }
    best = s;
  }
  return best;
}

const MetricsSample* MetricsTimeSeries::WindowOpen(Duration window) const {
  const MetricsSample* newest = Newest();
  if (newest == nullptr) {
    return nullptr;
  }
  const MetricsSample* open = NewestAtOrBefore(newest->at - window);
  if (open == nullptr) {
    // The whole retained history is younger than the window: use the oldest
    // sample we still have (graceful degradation during warm-up).
    open = SampleAt(oldest_seq());
  }
  return open;
}

uint64_t MetricsTimeSeries::CounterDelta(const std::string& name, Duration window) const {
  const MetricsSample* newest = Newest();
  const MetricsSample* open = WindowOpen(window);
  if (newest == nullptr || open == nullptr || open->seq == newest->seq) {
    return 0;
  }
  auto now_it = newest->snapshot.counters.find(name);
  const uint64_t now_v = now_it == newest->snapshot.counters.end() ? 0 : now_it->second;
  auto then_it = open->snapshot.counters.find(name);
  const uint64_t then_v = then_it == open->snapshot.counters.end() ? 0 : then_it->second;
  return now_v > then_v ? now_v - then_v : 0;  // a reset between samples reads as 0
}

double MetricsTimeSeries::CounterRate(const std::string& name, Duration window) const {
  const MetricsSample* newest = Newest();
  const MetricsSample* open = WindowOpen(window);
  if (newest == nullptr || open == nullptr || open->seq == newest->seq ||
      newest->at <= open->at) {
    return 0.0;
  }
  return static_cast<double>(CounterDelta(name, window)) / ToSeconds(newest->at - open->at);
}

MetricsTimeSeries::GaugeStats MetricsTimeSeries::GaugeOver(const std::string& name,
                                                           Duration window) const {
  GaugeStats stats;
  const MetricsSample* newest = Newest();
  if (newest == nullptr) {
    return stats;
  }
  const TimePoint open_at = newest->at - window;
  for (uint64_t seq = oldest_seq(); seq != 0 && seq <= appended_; ++seq) {
    const MetricsSample* s = SampleAt(seq);
    if (s == nullptr || s->at < open_at) {
      continue;
    }
    auto it = s->snapshot.gauges.find(name);
    if (it == s->snapshot.gauges.end()) {
      continue;
    }
    if (stats.samples == 0) {
      stats.min = stats.max = it->second;
    } else {
      stats.min = std::min(stats.min, it->second);
      stats.max = std::max(stats.max, it->second);
    }
    stats.last = it->second;
    ++stats.samples;
  }
  return stats;
}

Histogram MetricsTimeSeries::HistogramDelta(const std::string& name, Duration window) const {
  const MetricsSample* newest = Newest();
  const MetricsSample* open = WindowOpen(window);
  if (newest == nullptr || open == nullptr || open->seq == newest->seq) {
    return Histogram{};
  }
  auto now_it = newest->snapshot.histograms.find(name);
  if (now_it == newest->snapshot.histograms.end()) {
    return Histogram{};
  }
  auto then_it = open->snapshot.histograms.find(name);
  if (then_it == open->snapshot.histograms.end()) {
    return now_it->second;  // the whole histogram appeared inside the window
  }
  return HistogramIncrease(now_it->second, then_it->second);
}

void MetricsTimeSeries::Clear() {
  for (MetricsSample& s : ring_) {
    s = MetricsSample{};
  }
  appended_ = 0;
}

Histogram HistogramIncrease(const Histogram& now, const Histogram& then) {
  std::vector<std::pair<uint8_t, uint64_t>> buckets;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  bool any = false;
  const auto& now_counts = now.bucket_counts();
  const auto& then_counts = then.bucket_counts();
  for (size_t b = 0; b < Histogram::kBucketCount; ++b) {
    const uint64_t delta = now_counts[b] > then_counts[b] ? now_counts[b] - then_counts[b] : 0;
    if (delta == 0) {
      continue;
    }
    buckets.emplace_back(static_cast<uint8_t>(b), delta);
    if (!any) {
      min = Histogram::BucketLow(b);
      any = true;
    }
    max = Histogram::BucketHigh(b);
  }
  sum = now.sum() > then.sum() ? now.sum() - then.sum() : 0;
  return Histogram::FromParts(sum, min, max, buckets);
}

}  // namespace ins
