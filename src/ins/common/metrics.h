// Lightweight in-process metrics, the moral equivalent of the paper's
// NetworkManagement monitoring application: every INR exposes counters and
// gauges (names known, updates processed, packets forwarded, bytes sent) that
// tests and benchmarks read to observe system behaviour.

#ifndef INS_COMMON_METRICS_H_
#define INS_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "ins/common/clock.h"

namespace ins {

// Aggregate of recorded durations (e.g. overlay reconvergence times after an
// injected fault): enough for a benchmark to report count / mean / worst-case
// time-to-heal without keeping every sample.
struct DurationStat {
  uint64_t count = 0;
  Duration total{0};
  Duration max{0};

  Duration Mean() const { return count == 0 ? Duration(0) : total / static_cast<int64_t>(count); }
};

// A named bag of monotonic counters and settable gauges. Not thread-safe;
// each node owns its registry and all access happens on that node's executor.
class MetricsRegistry {
 public:
  void Increment(const std::string& name, uint64_t delta = 1) {
    counters_[name] += delta;
  }
  uint64_t Counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void SetGauge(const std::string& name, int64_t value) { gauges_[name] = value; }
  int64_t Gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
  }

  void RecordDuration(const std::string& name, Duration d) {
    DurationStat& s = timings_[name];
    s.count += 1;
    s.total += d;
    if (d > s.max) {
      s.max = d;
    }
  }
  DurationStat Timing(const std::string& name) const {
    auto it = timings_.find(name);
    return it == timings_.end() ? DurationStat{} : it->second;
  }

  // Sum of every counter whose name starts with `prefix` — e.g.
  // FamilyTotal("forwarding.drop.") is the total packets dropped for any
  // reason, without the caller having to know every reason that exists.
  uint64_t FamilyTotal(const std::string& prefix) const {
    uint64_t total = 0;
    for (auto it = counters_.lower_bound(prefix);
         it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
      total += it->second;
    }
    return total;
  }

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, int64_t>& gauges() const { return gauges_; }
  const std::map<std::string, DurationStat>& timings() const { return timings_; }

  void Reset() {
    counters_.clear();
    gauges_.clear();
    timings_.clear();
  }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, DurationStat> timings_;
};

}  // namespace ins

#endif  // INS_COMMON_METRICS_H_
