// Lightweight in-process metrics, the moral equivalent of the paper's
// NetworkManagement monitoring application: every INR exposes counters,
// gauges, and latency histograms (names known, updates processed, packets
// forwarded, lookup/queueing/delivery times) that tests, benchmarks, and the
// netmon app read to observe system behaviour.
//
// Two access paths share one value store:
//  * the string API (Increment/Counter/SetGauge/...) — cold paths, tests,
//    and ad-hoc instrumentation; one map lookup per call;
//  * pre-registered handles (RegisterCounter/...) — the packet path; a
//    handle is a stable pointer into the registry, so an increment is one
//    add with no hashing, no string compare, no allocation.

#ifndef INS_COMMON_METRICS_H_
#define INS_COMMON_METRICS_H_

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ins/common/clock.h"

namespace ins {

// Aggregate of recorded durations (e.g. overlay reconvergence times after an
// injected fault): enough for a benchmark to report count / mean / best /
// worst-case time-to-heal without keeping every sample.
struct DurationStat {
  uint64_t count = 0;
  Duration total{0};
  Duration min{0};
  Duration max{0};

  Duration Mean() const { return count == 0 ? Duration(0) : total / static_cast<int64_t>(count); }
};

// Fixed-shape log2-bucketed histogram of non-negative integer samples
// (microseconds on every current use). Bucket b holds the values whose
// bit_width is b, i.e. [2^(b-1), 2^b): constant-time record, 65 buckets
// cover the whole u64 range, and a quantile estimate is always within the
// 2x width of its bucket (exact when clamped by the observed min/max).
class Histogram {
 public:
  static constexpr size_t kBucketCount = 65;  // bucket 0 = the value zero

  static constexpr size_t BucketOf(uint64_t value) {
    return static_cast<size_t>(std::bit_width(value));
  }
  // Inclusive value range covered by bucket b.
  static constexpr uint64_t BucketLow(size_t b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }
  static constexpr uint64_t BucketHigh(size_t b) {
    return b >= 64 ? ~uint64_t{0} : (uint64_t{1} << b) - 1;
  }

  void Record(uint64_t value) {
    counts_[BucketOf(value)] += 1;
    if (count_ == 0 || value < min_) {
      min_ = value;
    }
    if (value > max_) {
      max_ = value;
    }
    count_ += 1;
    sum_ += value;
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return min_; }
  uint64_t max() const { return max_; }
  double Mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_); }

  // Quantile estimate for q in [0, 1]: linear interpolation inside the
  // bucket holding the q-th sample, clamped to the observed [min, max].
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P90() const { return Quantile(0.90); }
  double P99() const { return Quantile(0.99); }

  const std::array<uint64_t, kBucketCount>& bucket_counts() const { return counts_; }
  // The non-empty buckets as (index, count) pairs — the wire/JSON encoding.
  std::vector<std::pair<uint8_t, uint64_t>> SparseBuckets() const;

  void Merge(const Histogram& other);
  void Reset() { *this = Histogram{}; }

  // Rebuilds a histogram from its transported parts (netmon polling).
  static Histogram FromParts(uint64_t sum, uint64_t min, uint64_t max,
                             const std::vector<std::pair<uint8_t, uint64_t>>& buckets);

 private:
  std::array<uint64_t, kBucketCount> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// O(1) handles into a registry. A default-constructed handle is a no-op sink
// (writes vanish, reads are zero), so optional instrumentation needs no null
// checks at the call sites. Handles stay valid across Reset() — the registry
// zeroes values in place, it never moves them.
class CounterHandle {
 public:
  CounterHandle() = default;
  void Increment(uint64_t delta = 1) {
    if (slot_ != nullptr) {
      *slot_ += delta;
    }
  }
  uint64_t value() const { return slot_ == nullptr ? 0 : *slot_; }

 private:
  friend class MetricsRegistry;
  explicit CounterHandle(uint64_t* slot) : slot_(slot) {}
  uint64_t* slot_ = nullptr;
};

class GaugeHandle {
 public:
  GaugeHandle() = default;
  void Set(int64_t value) {
    if (slot_ != nullptr) {
      *slot_ = value;
    }
  }
  int64_t value() const { return slot_ == nullptr ? 0 : *slot_; }

 private:
  friend class MetricsRegistry;
  explicit GaugeHandle(int64_t* slot) : slot_(slot) {}
  int64_t* slot_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  void Record(uint64_t value) {
    if (slot_ != nullptr) {
      slot_->Record(value);
    }
  }
  const Histogram* get() const { return slot_; }

 private:
  friend class MetricsRegistry;
  explicit HistogramHandle(Histogram* slot) : slot_(slot) {}
  Histogram* slot_ = nullptr;
};

// A point-in-time copy of a registry: what the wire protocol ships to the
// netmon app and bench JSON embeds.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram> histograms;
  std::map<std::string, DurationStat> timings;
};

// A named bag of monotonic counters, settable gauges, histograms, and
// duration aggregates. Not thread-safe; each node owns its registry and all
// access happens on that node's executor.
class MetricsRegistry {
 public:
  // --- Pre-registration (hot paths) ----------------------------------------
  // Registering the same name twice returns a handle to the same slot, so a
  // handle and the string API always observe one value.

  CounterHandle RegisterCounter(const std::string& name) {
    return CounterHandle(CounterSlot(name));
  }
  GaugeHandle RegisterGauge(const std::string& name) { return GaugeHandle(GaugeSlot(name)); }
  HistogramHandle RegisterHistogram(const std::string& name) {
    return HistogramHandle(HistogramSlot(name));
  }

  // --- String API (cold paths, tests) --------------------------------------

  void Increment(const std::string& name, uint64_t delta = 1) { *CounterSlot(name) += delta; }
  uint64_t Counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : *it->second;
  }

  void SetGauge(const std::string& name, int64_t value) { *GaugeSlot(name) = value; }
  int64_t Gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : *it->second;
  }

  void RecordValue(const std::string& name, uint64_t value) {
    HistogramSlot(name)->Record(value);
  }
  // Copy of the named histogram (empty if never recorded).
  Histogram HistogramOf(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? Histogram{} : *it->second;
  }

  // Records into both views of a duration series: the DurationStat aggregate
  // and a same-named histogram of microseconds (the quantile view).
  void RecordDuration(const std::string& name, Duration d) {
    DurationStat& s = timings_[name];
    if (s.count == 0 || d < s.min) {
      s.min = d;
    }
    if (d > s.max) {
      s.max = d;
    }
    s.count += 1;
    s.total += d;
    HistogramSlot(name)->Record(d.count() < 0 ? 0 : static_cast<uint64_t>(d.count()));
  }
  DurationStat Timing(const std::string& name) const {
    auto it = timings_.find(name);
    return it == timings_.end() ? DurationStat{} : it->second;
  }

  // Sum of every counter whose name starts with `prefix` — e.g.
  // FamilyTotal("forwarding.drop.") is the total packets dropped for any
  // reason, without the caller having to know every reason that exists.
  uint64_t FamilyTotal(const std::string& prefix) const {
    uint64_t total = 0;
    for (auto it = counters_.lower_bound(prefix);
         it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
      total += *it->second;
    }
    return total;
  }

  // Materialized name->value views (values live in slot storage now, so
  // these return copies, not references).
  std::map<std::string, uint64_t> counters() const {
    std::map<std::string, uint64_t> out;
    for (const auto& [name, slot] : counters_) {
      out.emplace(name, *slot);
    }
    return out;
  }
  std::map<std::string, int64_t> gauges() const {
    std::map<std::string, int64_t> out;
    for (const auto& [name, slot] : gauges_) {
      out.emplace(name, *slot);
    }
    return out;
  }
  const std::map<std::string, DurationStat>& timings() const { return timings_; }

  MetricsSnapshot Snapshot() const;

  // Zeroes every value in place. Registered names and outstanding handles
  // stay valid (a handle held by a subsystem must survive a mid-run Reset).
  void Reset() {
    for (uint64_t& v : counter_slots_) {
      v = 0;
    }
    for (int64_t& v : gauge_slots_) {
      v = 0;
    }
    for (Histogram& h : histogram_slots_) {
      h.Reset();
    }
    timings_.clear();
  }

 private:
  // Slot storage is a deque: push_back never moves existing elements, so the
  // pointers held by index maps and handles are stable for the registry's
  // lifetime.
  uint64_t* CounterSlot(const std::string& name) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      counter_slots_.push_back(0);
      it = counters_.emplace(name, &counter_slots_.back()).first;
    }
    return it->second;
  }
  int64_t* GaugeSlot(const std::string& name) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauge_slots_.push_back(0);
      it = gauges_.emplace(name, &gauge_slots_.back()).first;
    }
    return it->second;
  }
  Histogram* HistogramSlot(const std::string& name) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histogram_slots_.emplace_back();
      it = histograms_.emplace(name, &histogram_slots_.back()).first;
    }
    return it->second;
  }

  std::deque<uint64_t> counter_slots_;
  std::deque<int64_t> gauge_slots_;
  std::deque<Histogram> histogram_slots_;
  std::map<std::string, uint64_t*> counters_;
  std::map<std::string, int64_t*> gauges_;
  std::map<std::string, Histogram*> histograms_;
  std::map<std::string, DurationStat> timings_;
};

// Renders a snapshot as JSON: {"counters": {...}, "gauges": {...},
// "histograms": {name: {count, sum, min, max, p50, p90, p99,
// buckets: [[index, count], ...]}}, "timings": {...}}. Shared by the bench
// JSON writers and the netmon report.
std::string MetricsSnapshotJson(const MetricsSnapshot& snapshot, int indent = 2);

}  // namespace ins

#endif  // INS_COMMON_METRICS_H_
