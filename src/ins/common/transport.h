// Datagram transport abstraction.
//
// Every endpoint in the system — INRs, clients, the DSR — owns one Transport
// bound to a NodeAddress. Implementations: sim::Network sockets (virtual
// time, deterministic), LoopbackTransport (in-process, for unit tests), and
// UdpTransport (real POSIX sockets, used by the runnable examples).

#ifndef INS_COMMON_TRANSPORT_H_
#define INS_COMMON_TRANSPORT_H_

#include <functional>

#include "ins/common/bytes.h"
#include "ins/common/clock.h"
#include "ins/common/node_address.h"
#include "ins/common/status.h"

namespace ins {

class MetricsRegistry;

// Which wire path an endpoint runs on. Sim stays the default everywhere —
// the whole tier-1 suite is deterministic virtual time — while the real
// transports carry byte-identical frames over actual sockets.
enum class TransportKind {
  kSim,        // sim::Network virtual-time socket (deterministic tests)
  kUdp,        // one sendto/recv syscall per datagram
  kBatchedUdp  // sendmmsg/recvmmsg batching + pacing (the fast path)
};

class Transport {
 public:
  using ReceiveHandler = std::function<void(const NodeAddress& source, const Bytes& data)>;

  virtual ~Transport() = default;

  // Best-effort datagram send; like UDP, delivery is not guaranteed.
  virtual Status Send(const NodeAddress& destination, const Bytes& data) = 0;

  // Installs the receive callback. At most one handler at a time.
  virtual void SetReceiveHandler(ReceiveHandler handler) = 0;

  virtual NodeAddress local_address() const = 0;

  // Re-points the transport's `transport.*` instrumentation at the owning
  // node's registry, so drops and batch sizes show up beside the node's own
  // metrics. Default: the transport keeps its private registry (sim and
  // loopback transports have nothing to report).
  virtual void AttachMetrics(MetricsRegistry* metrics) { (void)metrics; }

  // Load feedback from the owning node (the AdmissionController's smoothed
  // queueing-delay signal). Pacing transports slow their send rate as the
  // node saturates; everything else ignores it.
  virtual void OnLoadSignal(Duration load) { (void)load; }
};

}  // namespace ins

#endif  // INS_COMMON_TRANSPORT_H_
