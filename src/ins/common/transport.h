// Datagram transport abstraction.
//
// Every endpoint in the system — INRs, clients, the DSR — owns one Transport
// bound to a NodeAddress. Implementations: sim::Network sockets (virtual
// time, deterministic), LoopbackTransport (in-process, for unit tests), and
// UdpTransport (real POSIX sockets, used by the runnable examples).

#ifndef INS_COMMON_TRANSPORT_H_
#define INS_COMMON_TRANSPORT_H_

#include <functional>

#include "ins/common/bytes.h"
#include "ins/common/node_address.h"
#include "ins/common/status.h"

namespace ins {

class Transport {
 public:
  using ReceiveHandler = std::function<void(const NodeAddress& source, const Bytes& data)>;

  virtual ~Transport() = default;

  // Best-effort datagram send; like UDP, delivery is not guaranteed.
  virtual Status Send(const NodeAddress& destination, const Bytes& data) = 0;

  // Installs the receive callback. At most one handler at a time.
  virtual void SetReceiveHandler(ReceiveHandler handler) = 0;

  virtual NodeAddress local_address() const = 0;
};

}  // namespace ins

#endif  // INS_COMMON_TRANSPORT_H_
