#include "ins/wire/packet.h"

namespace ins {

size_t Packet::EncodedSize() const {
  return kPacketHeaderSize + (traced() ? kPacketTraceExtensionSize : 0) +
         source_name.size() + destination_name.size() + payload.size();
}

bool ConsumeDeadlineBudget(Packet& p, uint32_t elapsed_ms) {
  if (p.deadline_budget_ms == 0) {
    return true;  // no deadline
  }
  const uint32_t charge = elapsed_ms == 0 ? 1 : elapsed_ms;
  if (charge >= p.deadline_budget_ms) {
    p.deadline_budget_ms = 0;
    return false;
  }
  p.deadline_budget_ms = static_cast<uint16_t>(p.deadline_budget_ms - charge);
  return true;
}

Bytes EncodePacket(const Packet& p) {
  ByteWriter w;
  uint8_t flags = 0;
  if (p.early_binding) {
    flags |= kFlagEarlyBinding;
  }
  if (p.deliver_all) {
    flags |= kFlagDeliverAll;
  }
  if (p.answer_from_cache) {
    flags |= kFlagAnswerFromCache;
  }
  if (p.traced()) {
    flags |= kFlagTraceSampled;
  }
  const size_t src_off = kPacketHeaderSize + (p.traced() ? kPacketTraceExtensionSize : 0);
  const size_t dst_off = src_off + p.source_name.size();
  const size_t data_off = dst_off + p.destination_name.size();
  const size_t total = data_off + p.payload.size();

  w.WriteU8(p.version);
  w.WriteU8(flags);
  w.WriteU16(p.hop_limit);
  w.WriteU32(p.cache_lifetime_s);
  w.WriteU16(p.deadline_budget_ms);
  w.WriteU16(0);  // reserved
  w.WriteU16(static_cast<uint16_t>(src_off));
  w.WriteU16(static_cast<uint16_t>(dst_off));
  w.WriteU16(static_cast<uint16_t>(data_off));
  w.WriteU16(static_cast<uint16_t>(total));
  if (p.traced()) {
    w.WriteU64(p.trace_id);
  }
  w.WriteBytes(reinterpret_cast<const uint8_t*>(p.source_name.data()), p.source_name.size());
  w.WriteBytes(reinterpret_cast<const uint8_t*>(p.destination_name.data()),
               p.destination_name.size());
  w.WriteBytes(p.payload);
  return std::move(w).TakeBytes();
}

namespace {

struct HeaderFields {
  uint8_t version;
  uint8_t flags;
  uint16_t hop_limit;
  uint32_t cache_lifetime_s;
  uint16_t deadline_budget_ms;
  uint64_t trace_id;
  size_t src_off;
  size_t dst_off;
  size_t data_off;
  size_t total;
};

Result<HeaderFields> ReadHeader(const Bytes& buffer) {
  if (buffer.size() < kPacketHeaderSize) {
    return InvalidArgumentError("packet shorter than header: " +
                                std::to_string(buffer.size()) + " bytes");
  }
  ByteReader r(buffer);
  HeaderFields h;
  h.version = *r.ReadU8();
  if (h.version != kInsVersion) {
    return InvalidArgumentError("unsupported INS version " + std::to_string(h.version));
  }
  h.flags = *r.ReadU8();
  h.hop_limit = *r.ReadU16();
  h.cache_lifetime_s = *r.ReadU32();
  h.deadline_budget_ms = *r.ReadU16();
  r.ReadU16();  // reserved; ignored on receive
  h.src_off = *r.ReadU16();
  h.dst_off = *r.ReadU16();
  h.data_off = *r.ReadU16();
  h.total = *r.ReadU16();
  // The source name starts right after the fixed header — or after the trace
  // extension when the trace flag says one is present. Either way every
  // truncation or pointer inversion is rejected here.
  const bool traced = (h.flags & kFlagTraceSampled) != 0;
  const size_t expected_src_off =
      kPacketHeaderSize + (traced ? kPacketTraceExtensionSize : 0);
  if (h.src_off != expected_src_off || h.dst_off < h.src_off || h.data_off < h.dst_off ||
      h.total < h.data_off || h.total != buffer.size()) {
    return InvalidArgumentError("inconsistent packet pointers");
  }
  h.trace_id = 0;
  if (traced) {
    auto id = r.ReadU64();
    if (!id.ok()) {
      return id.status();
    }
    h.trace_id = *id;
  }
  return h;
}

}  // namespace

Result<Packet> DecodePacket(const Bytes& buffer) {
  auto h = ReadHeader(buffer);
  if (!h.ok()) {
    return h.status();
  }
  Packet p;
  p.version = h->version;
  p.early_binding = (h->flags & kFlagEarlyBinding) != 0;
  p.deliver_all = (h->flags & kFlagDeliverAll) != 0;
  p.answer_from_cache = (h->flags & kFlagAnswerFromCache) != 0;
  p.hop_limit = h->hop_limit;
  p.cache_lifetime_s = h->cache_lifetime_s;
  p.deadline_budget_ms = h->deadline_budget_ms;
  p.trace_id = h->trace_id;
  p.source_name.assign(reinterpret_cast<const char*>(buffer.data() + h->src_off),
                       h->dst_off - h->src_off);
  p.destination_name.assign(reinterpret_cast<const char*>(buffer.data() + h->dst_off),
                            h->data_off - h->dst_off);
  p.payload.assign(buffer.begin() + static_cast<long>(h->data_off),
                   buffer.begin() + static_cast<long>(h->total));
  return p;
}

Result<std::pair<size_t, size_t>> LocatePayload(const Bytes& buffer) {
  auto h = ReadHeader(buffer);
  if (!h.ok()) {
    return h.status();
  }
  return std::make_pair(h->data_off, h->total - h->data_off);
}

}  // namespace ins
