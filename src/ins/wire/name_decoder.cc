#include "ins/wire/name_decoder.h"

#include <functional>

#include "ins/name/parser.h"

namespace ins {

NameDecoder::NameDecoder(size_t slots) {
  size_t cap = 1;
  while (cap < slots) {
    cap <<= 1;
  }
  slots_.resize(cap);
  mask_ = cap - 1;
}

Result<std::shared_ptr<const NameSpecifier>> NameDecoder::Decode(const std::string& wire_text) {
  Slot& slot = slots_[std::hash<std::string>{}(wire_text) & mask_];
  if (slot.name != nullptr && slot.text == wire_text) {
    ++hits_;
    return slot.name;
  }
  ++misses_;
  Result<NameSpecifier> parsed = ParseNameSpecifier(wire_text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  slot.text = wire_text;
  slot.name = std::make_shared<const NameSpecifier>(std::move(parsed).value());
  return slot.name;
}

}  // namespace ins
