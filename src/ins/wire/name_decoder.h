// Memoized wire-text -> NameSpecifier decoding.
//
// Names cross the wire as canonical text (Figure 3) and every recipient used
// to re-tokenize them: a forwarding agent on a stable overlay path parses the
// SAME destination text once per packet, hop after hop. The decoder keeps a
// small direct-mapped memo of recent parses so the steady-state cost of
// decoding a repeated name is one hash probe and one string compare — the
// wire-layer analogue of the name-tree's interned hot path (a CompiledName is
// built once per store operation; this makes the NameSpecifier it is built
// from cost nothing to re-materialize per packet).
//
// Parsing is deterministic, so memoization is invisible: Decode(text) returns
// exactly what ParseNameSpecifier(text) would. Parse errors are not cached
// (malformed packets are the rare path and should not evict good entries).
//
// Not thread-safe: each protocol-thread owner (forwarding agent, discovery
// agent) embeds its own decoder.

#ifndef INS_WIRE_NAME_DECODER_H_
#define INS_WIRE_NAME_DECODER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ins/common/status.h"
#include "ins/name/name_specifier.h"

namespace ins {

class NameDecoder {
 public:
  // `slots` is rounded up to a power of two; default covers a resolver's
  // working set of distinct in-flight destinations.
  explicit NameDecoder(size_t slots = 64);

  // Parses `wire_text`, memoized. The returned pointer stays valid for as
  // long as the caller holds it (slots hold shared ownership, so a colliding
  // decode evicts the slot without invalidating outstanding results).
  Result<std::shared_ptr<const NameSpecifier>> Decode(const std::string& wire_text);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Slot {
    std::string text;
    std::shared_ptr<const NameSpecifier> name;
  };

  std::vector<Slot> slots_;
  size_t mask_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ins

#endif  // INS_WIRE_NAME_DECODER_H_
