#include "ins/wire/messages.h"

#include <bit>
#include <cstring>

namespace ins {

namespace {

// Doubles travel as their IEEE-754 bit pattern.
void WriteDouble(ByteWriter& w, double v) { w.WriteU64(std::bit_cast<uint64_t>(v)); }

Result<double> ReadDouble(ByteReader& r) {
  auto bits = r.ReadU64();
  if (!bits.ok()) {
    return bits.status();
  }
  return std::bit_cast<double>(*bits);
}

void WriteAddress(ByteWriter& w, const NodeAddress& a) {
  w.WriteU32(a.ip);
  w.WriteU16(a.port);
}

Result<NodeAddress> ReadAddress(ByteReader& r) {
  NodeAddress a;
  INS_ASSIGN_OR_RETURN(a.ip, r.ReadU32());
  INS_ASSIGN_OR_RETURN(a.port, r.ReadU16());
  return a;
}

void WriteAnnouncer(ByteWriter& w, const AnnouncerId& id) {
  w.WriteU32(id.ip);
  w.WriteU64(id.start_time_us);
  w.WriteU32(id.discriminator);
}

Result<AnnouncerId> ReadAnnouncer(ByteReader& r) {
  AnnouncerId id;
  INS_ASSIGN_OR_RETURN(id.ip, r.ReadU32());
  INS_ASSIGN_OR_RETURN(id.start_time_us, r.ReadU64());
  INS_ASSIGN_OR_RETURN(id.discriminator, r.ReadU32());
  return id;
}

void WriteEndpoint(ByteWriter& w, const EndpointInfo& e) {
  WriteAddress(w, e.address);
  w.WriteU16(static_cast<uint16_t>(e.bindings.size()));
  for (const PortBinding& b : e.bindings) {
    w.WriteU16(b.port);
    w.WriteString(b.transport);
  }
}

Result<EndpointInfo> ReadEndpoint(ByteReader& r) {
  EndpointInfo e;
  INS_ASSIGN_OR_RETURN(e.address, ReadAddress(r));
  uint16_t n = 0;
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  e.bindings.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    PortBinding b;
    INS_ASSIGN_OR_RETURN(b.port, r.ReadU16());
    INS_ASSIGN_OR_RETURN(b.transport, r.ReadString());
    e.bindings.push_back(std::move(b));
  }
  return e;
}

void WriteAddressList(ByteWriter& w, const std::vector<NodeAddress>& v) {
  w.WriteU16(static_cast<uint16_t>(v.size()));
  for (const NodeAddress& a : v) {
    WriteAddress(w, a);
  }
}

Result<std::vector<NodeAddress>> ReadAddressList(ByteReader& r) {
  uint16_t n = 0;
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  std::vector<NodeAddress> v;
  v.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    NodeAddress a;
    INS_ASSIGN_OR_RETURN(a, ReadAddress(r));
    v.push_back(a);
  }
  return v;
}

void WriteStringList(ByteWriter& w, const std::vector<std::string>& v) {
  w.WriteU16(static_cast<uint16_t>(v.size()));
  for (const std::string& s : v) {
    w.WriteString(s);
  }
}

Result<std::vector<std::string>> ReadStringList(ByteReader& r) {
  uint16_t n = 0;
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  std::vector<std::string> v;
  v.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    std::string s;
    INS_ASSIGN_OR_RETURN(s, r.ReadString());
    v.push_back(std::move(s));
  }
  return v;
}

// --- Per-type body codecs ---------------------------------------------------

void EncodeBody(ByteWriter& w, const Packet& p) {
  Bytes encoded = EncodePacket(p);
  w.WriteU32(static_cast<uint32_t>(encoded.size()));
  w.WriteBytes(encoded);
}

Result<Packet> DecodePacketBody(ByteReader& r) {
  uint32_t len = 0;
  INS_ASSIGN_OR_RETURN(len, r.ReadU32());
  Bytes raw;
  INS_ASSIGN_OR_RETURN(raw, r.ReadBytes(len));
  return DecodePacket(raw);
}

void EncodeBody(ByteWriter& w, const Advertisement& a) {
  w.WriteString(a.vspace);
  w.WriteString(a.name_text);
  WriteAnnouncer(w, a.announcer);
  WriteEndpoint(w, a.endpoint);
  WriteDouble(w, a.app_metric);
  w.WriteU32(a.lifetime_s);
  w.WriteU64(a.version);
}

Result<Advertisement> DecodeAdvertisement(ByteReader& r) {
  Advertisement a;
  INS_ASSIGN_OR_RETURN(a.vspace, r.ReadString());
  INS_ASSIGN_OR_RETURN(a.name_text, r.ReadString());
  INS_ASSIGN_OR_RETURN(a.announcer, ReadAnnouncer(r));
  INS_ASSIGN_OR_RETURN(a.endpoint, ReadEndpoint(r));
  INS_ASSIGN_OR_RETURN(a.app_metric, ReadDouble(r));
  INS_ASSIGN_OR_RETURN(a.lifetime_s, r.ReadU32());
  INS_ASSIGN_OR_RETURN(a.version, r.ReadU64());
  return a;
}

void EncodeBody(ByteWriter& w, const NameUpdate& u) {
  w.WriteString(u.vspace);
  w.WriteU8(u.triggered ? 1 : 0);
  w.WriteU16(static_cast<uint16_t>(u.entries.size()));
  for (const NameUpdateEntry& e : u.entries) {
    w.WriteString(e.name_text);
    WriteAnnouncer(w, e.announcer);
    WriteEndpoint(w, e.endpoint);
    WriteDouble(w, e.app_metric);
    WriteDouble(w, e.route_metric);
    w.WriteU32(e.lifetime_s);
    w.WriteU64(e.version);
  }
}

Result<NameUpdate> DecodeNameUpdate(ByteReader& r) {
  NameUpdate u;
  INS_ASSIGN_OR_RETURN(u.vspace, r.ReadString());
  uint8_t trig = 0;
  INS_ASSIGN_OR_RETURN(trig, r.ReadU8());
  u.triggered = trig != 0;
  uint16_t n = 0;
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  u.entries.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    NameUpdateEntry e;
    INS_ASSIGN_OR_RETURN(e.name_text, r.ReadString());
    INS_ASSIGN_OR_RETURN(e.announcer, ReadAnnouncer(r));
    INS_ASSIGN_OR_RETURN(e.endpoint, ReadEndpoint(r));
    INS_ASSIGN_OR_RETURN(e.app_metric, ReadDouble(r));
    INS_ASSIGN_OR_RETURN(e.route_metric, ReadDouble(r));
    INS_ASSIGN_OR_RETURN(e.lifetime_s, r.ReadU32());
    INS_ASSIGN_OR_RETURN(e.version, r.ReadU64());
    u.entries.push_back(std::move(e));
  }
  return u;
}

void EncodeBody(ByteWriter& w, const DiscoveryRequest& d) {
  w.WriteU64(d.request_id);
  w.WriteString(d.vspace);
  w.WriteString(d.filter_text);
  WriteAddress(w, d.reply_to);
}

Result<DiscoveryRequest> DecodeDiscoveryRequest(ByteReader& r) {
  DiscoveryRequest d;
  INS_ASSIGN_OR_RETURN(d.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(d.vspace, r.ReadString());
  INS_ASSIGN_OR_RETURN(d.filter_text, r.ReadString());
  INS_ASSIGN_OR_RETURN(d.reply_to, ReadAddress(r));
  return d;
}

void EncodeBody(ByteWriter& w, const DiscoveryResponse& d) {
  w.WriteU64(d.request_id);
  w.WriteString(d.vspace);
  w.WriteU16(static_cast<uint16_t>(d.items.size()));
  for (const DiscoveryResponse::Item& it : d.items) {
    w.WriteString(it.name_text);
    WriteEndpoint(w, it.endpoint);
    WriteDouble(w, it.app_metric);
  }
}

Result<DiscoveryResponse> DecodeDiscoveryResponse(ByteReader& r) {
  DiscoveryResponse d;
  INS_ASSIGN_OR_RETURN(d.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(d.vspace, r.ReadString());
  uint16_t n = 0;
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  d.items.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    DiscoveryResponse::Item it;
    INS_ASSIGN_OR_RETURN(it.name_text, r.ReadString());
    INS_ASSIGN_OR_RETURN(it.endpoint, ReadEndpoint(r));
    INS_ASSIGN_OR_RETURN(it.app_metric, ReadDouble(r));
    d.items.push_back(std::move(it));
  }
  return d;
}

void EncodeBody(ByteWriter& w, const EarlyBindingResponse& e) {
  w.WriteU64(e.request_id);
  w.WriteU16(static_cast<uint16_t>(e.items.size()));
  for (const EarlyBindingResponse::Item& it : e.items) {
    WriteEndpoint(w, it.endpoint);
    WriteDouble(w, it.app_metric);
  }
}

Result<EarlyBindingResponse> DecodeEarlyBindingResponse(ByteReader& r) {
  EarlyBindingResponse e;
  INS_ASSIGN_OR_RETURN(e.request_id, r.ReadU64());
  uint16_t n = 0;
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  e.items.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    EarlyBindingResponse::Item it;
    INS_ASSIGN_OR_RETURN(it.endpoint, ReadEndpoint(r));
    INS_ASSIGN_OR_RETURN(it.app_metric, ReadDouble(r));
    e.items.push_back(std::move(it));
  }
  return e;
}

void EncodeBody(ByteWriter& w, const Ping& p) {
  w.WriteU64(p.nonce);
  w.WriteU64(p.send_time_us);
}

Result<Ping> DecodePing(ByteReader& r) {
  Ping p;
  INS_ASSIGN_OR_RETURN(p.nonce, r.ReadU64());
  INS_ASSIGN_OR_RETURN(p.send_time_us, r.ReadU64());
  return p;
}

void EncodeBody(ByteWriter& w, const Pong& p) {
  w.WriteU64(p.nonce);
  w.WriteU64(p.echo_send_time_us);
}

Result<Pong> DecodePong(ByteReader& r) {
  Pong p;
  INS_ASSIGN_OR_RETURN(p.nonce, r.ReadU64());
  INS_ASSIGN_OR_RETURN(p.echo_send_time_us, r.ReadU64());
  return p;
}

void EncodeBody(ByteWriter& w, const PeerRequest& p) { WriteAddress(w, p.requester); }
void EncodeBody(ByteWriter& w, const PeerAccept& p) { WriteAddress(w, p.accepter); }
void EncodeBody(ByteWriter& w, const PeerClose& p) { WriteAddress(w, p.closer); }

void EncodeBody(ByteWriter& w, const DsrRegister& d) {
  WriteAddress(w, d.inr);
  w.WriteU8(d.active ? 1 : 0);
  WriteStringList(w, d.vspaces);
  w.WriteU32(d.lifetime_s);
}

Result<DsrRegister> DecodeDsrRegister(ByteReader& r) {
  DsrRegister d;
  INS_ASSIGN_OR_RETURN(d.inr, ReadAddress(r));
  uint8_t active = 0;
  INS_ASSIGN_OR_RETURN(active, r.ReadU8());
  d.active = active != 0;
  INS_ASSIGN_OR_RETURN(d.vspaces, ReadStringList(r));
  INS_ASSIGN_OR_RETURN(d.lifetime_s, r.ReadU32());
  return d;
}

void EncodeBody(ByteWriter& w, const DsrListRequest& d) { w.WriteU64(d.request_id); }

void EncodeBody(ByteWriter& w, const DsrListResponse& d) {
  w.WriteU64(d.request_id);
  WriteAddressList(w, d.active_inrs);
  w.WriteU16(static_cast<uint16_t>(d.join_orders.size()));
  for (uint64_t order : d.join_orders) {
    w.WriteU64(order);
  }
}

Result<DsrListResponse> DecodeDsrListResponse(ByteReader& r) {
  DsrListResponse d;
  INS_ASSIGN_OR_RETURN(d.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(d.active_inrs, ReadAddressList(r));
  uint16_t n = 0;
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  if (n != d.active_inrs.size()) {
    return InvalidArgumentError("join_orders/active_inrs length mismatch");
  }
  d.join_orders.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    uint64_t order = 0;
    INS_ASSIGN_OR_RETURN(order, r.ReadU64());
    d.join_orders.push_back(order);
  }
  return d;
}

void EncodeBody(ByteWriter& w, const DsrVspaceRequest& d) {
  w.WriteU64(d.request_id);
  w.WriteString(d.vspace);
}

Result<DsrVspaceRequest> DecodeDsrVspaceRequest(ByteReader& r) {
  DsrVspaceRequest d;
  INS_ASSIGN_OR_RETURN(d.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(d.vspace, r.ReadString());
  return d;
}

void EncodeBody(ByteWriter& w, const DsrVspaceResponse& d) {
  w.WriteU64(d.request_id);
  w.WriteString(d.vspace);
  WriteAddress(w, d.inr);
}

Result<DsrVspaceResponse> DecodeDsrVspaceResponse(ByteReader& r) {
  DsrVspaceResponse d;
  INS_ASSIGN_OR_RETURN(d.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(d.vspace, r.ReadString());
  INS_ASSIGN_OR_RETURN(d.inr, ReadAddress(r));
  return d;
}

void EncodeBody(ByteWriter& w, const DsrCandidatesRequest& d) { w.WriteU64(d.request_id); }

void EncodeBody(ByteWriter& w, const DsrCandidatesResponse& d) {
  w.WriteU64(d.request_id);
  WriteAddressList(w, d.candidates);
}

Result<DsrCandidatesResponse> DecodeDsrCandidatesResponse(ByteReader& r) {
  DsrCandidatesResponse d;
  INS_ASSIGN_OR_RETURN(d.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(d.candidates, ReadAddressList(r));
  return d;
}

void EncodeBody(ByteWriter& w, const SpawnRequest& s) {
  WriteAddress(w, s.requester);
  WriteStringList(w, s.vspaces);
}

Result<SpawnRequest> DecodeSpawnRequest(ByteReader& r) {
  SpawnRequest s;
  INS_ASSIGN_OR_RETURN(s.requester, ReadAddress(r));
  INS_ASSIGN_OR_RETURN(s.vspaces, ReadStringList(r));
  return s;
}

void EncodeBody(ByteWriter& w, const DelegateVspace& d) {
  WriteAddress(w, d.from);
  w.WriteString(d.vspace);
}

Result<DelegateVspace> DecodeDelegateVspace(ByteReader& r) {
  DelegateVspace d;
  INS_ASSIGN_OR_RETURN(d.from, ReadAddress(r));
  INS_ASSIGN_OR_RETURN(d.vspace, r.ReadString());
  return d;
}

void EncodeBody(ByteWriter& w, const DsrAssignmentsRequest& d) {
  w.WriteU64(d.request_id);
  WriteAddress(w, d.inr);
}

Result<DsrAssignmentsRequest> DecodeDsrAssignmentsRequest(ByteReader& r) {
  DsrAssignmentsRequest d;
  INS_ASSIGN_OR_RETURN(d.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(d.inr, ReadAddress(r));
  return d;
}

void EncodeBody(ByteWriter& w, const DsrAssignmentsResponse& d) {
  w.WriteU64(d.request_id);
  WriteStringList(w, d.vspaces);
}

Result<DsrAssignmentsResponse> DecodeDsrAssignmentsResponse(ByteReader& r) {
  DsrAssignmentsResponse d;
  INS_ASSIGN_OR_RETURN(d.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(d.vspaces, ReadStringList(r));
  return d;
}

void EncodeBody(ByteWriter& w, const PeerKeepalive& p) { WriteAddress(w, p.from); }

void EncodeBody(ByteWriter& w, const JournalDigest& d) {
  WriteAddress(w, d.from);
  w.WriteU16(static_cast<uint16_t>(d.items.size()));
  for (const JournalDigest::Item& it : d.items) {
    w.WriteString(it.vspace);
    w.WriteU64(it.serial);
  }
}

Result<JournalDigest> DecodeJournalDigest(ByteReader& r) {
  JournalDigest d;
  INS_ASSIGN_OR_RETURN(d.from, ReadAddress(r));
  uint16_t n = 0;
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  d.items.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    JournalDigest::Item it;
    INS_ASSIGN_OR_RETURN(it.vspace, r.ReadString());
    INS_ASSIGN_OR_RETURN(it.serial, r.ReadU64());
    d.items.push_back(std::move(it));
  }
  return d;
}

void EncodeBody(ByteWriter& w, const JournalDeltaRequest& d) {
  WriteAddress(w, d.from);
  w.WriteString(d.vspace);
  w.WriteU64(d.after_serial);
  w.WriteU8(d.full ? 1 : 0);
}

Result<JournalDeltaRequest> DecodeJournalDeltaRequest(ByteReader& r) {
  JournalDeltaRequest d;
  INS_ASSIGN_OR_RETURN(d.from, ReadAddress(r));
  INS_ASSIGN_OR_RETURN(d.vspace, r.ReadString());
  INS_ASSIGN_OR_RETURN(d.after_serial, r.ReadU64());
  uint8_t full = 0;
  INS_ASSIGN_OR_RETURN(full, r.ReadU8());
  d.full = full != 0;
  return d;
}

void EncodeBody(ByteWriter& w, const JournalDeltaResponse& d) {
  WriteAddress(w, d.from);
  w.WriteString(d.vspace);
  w.WriteU8(d.snapshot ? 1 : 0);
  w.WriteU64(d.to_serial);
  w.WriteU32(d.seq);
  w.WriteU8(d.last ? 1 : 0);
  w.WriteU16(static_cast<uint16_t>(d.entries.size()));
  for (const JournalDeltaResponse::Entry& e : d.entries) {
    w.WriteU8(e.op);
    w.WriteString(e.name_text);
    WriteAnnouncer(w, e.announcer);
    WriteEndpoint(w, e.endpoint);
    WriteDouble(w, e.app_metric);
    WriteDouble(w, e.route_metric);
    w.WriteU32(e.lifetime_s);
    w.WriteU64(e.version);
  }
}

Result<JournalDeltaResponse> DecodeJournalDeltaResponse(ByteReader& r) {
  JournalDeltaResponse d;
  INS_ASSIGN_OR_RETURN(d.from, ReadAddress(r));
  INS_ASSIGN_OR_RETURN(d.vspace, r.ReadString());
  uint8_t snapshot = 0;
  INS_ASSIGN_OR_RETURN(snapshot, r.ReadU8());
  d.snapshot = snapshot != 0;
  INS_ASSIGN_OR_RETURN(d.to_serial, r.ReadU64());
  INS_ASSIGN_OR_RETURN(d.seq, r.ReadU32());
  uint8_t last = 0;
  INS_ASSIGN_OR_RETURN(last, r.ReadU8());
  d.last = last != 0;
  uint16_t n = 0;
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  d.entries.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    JournalDeltaResponse::Entry e;
    INS_ASSIGN_OR_RETURN(e.op, r.ReadU8());
    INS_ASSIGN_OR_RETURN(e.name_text, r.ReadString());
    INS_ASSIGN_OR_RETURN(e.announcer, ReadAnnouncer(r));
    INS_ASSIGN_OR_RETURN(e.endpoint, ReadEndpoint(r));
    INS_ASSIGN_OR_RETURN(e.app_metric, ReadDouble(r));
    INS_ASSIGN_OR_RETURN(e.route_metric, ReadDouble(r));
    INS_ASSIGN_OR_RETURN(e.lifetime_s, r.ReadU32());
    INS_ASSIGN_OR_RETURN(e.version, r.ReadU64());
    d.entries.push_back(std::move(e));
  }
  return d;
}

void EncodeBody(ByteWriter& w, const DsrReplicaSetRequest& d) {
  w.WriteU64(d.request_id);
  w.WriteString(d.vspace);
}

Result<DsrReplicaSetRequest> DecodeDsrReplicaSetRequest(ByteReader& r) {
  DsrReplicaSetRequest d;
  INS_ASSIGN_OR_RETURN(d.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(d.vspace, r.ReadString());
  return d;
}

void EncodeBody(ByteWriter& w, const DsrReplicaSetResponse& d) {
  w.WriteU64(d.request_id);
  w.WriteString(d.vspace);
  WriteAddressList(w, d.replicas);
  WriteAddressList(w, d.candidates);
}

Result<DsrReplicaSetResponse> DecodeDsrReplicaSetResponse(ByteReader& r) {
  DsrReplicaSetResponse d;
  INS_ASSIGN_OR_RETURN(d.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(d.vspace, r.ReadString());
  INS_ASSIGN_OR_RETURN(d.replicas, ReadAddressList(r));
  INS_ASSIGN_OR_RETURN(d.candidates, ReadAddressList(r));
  return d;
}

void EncodeBody(ByteWriter& w, const ReplicaInvite& d) {
  WriteAddress(w, d.from);
  w.WriteString(d.vspace);
}

Result<ReplicaInvite> DecodeReplicaInvite(ByteReader& r) {
  ReplicaInvite d;
  INS_ASSIGN_OR_RETURN(d.from, ReadAddress(r));
  INS_ASSIGN_OR_RETURN(d.vspace, r.ReadString());
  return d;
}

void EncodeBody(ByteWriter& w, const DsrDeadInrReport& d) {
  WriteAddress(w, d.reporter);
  WriteAddress(w, d.dead);
}

Result<DsrDeadInrReport> DecodeDsrDeadInrReport(ByteReader& r) {
  DsrDeadInrReport d;
  INS_ASSIGN_OR_RETURN(d.reporter, ReadAddress(r));
  INS_ASSIGN_OR_RETURN(d.dead, ReadAddress(r));
  return d;
}

void EncodeBody(ByteWriter& w, const MetricsRequest& m) {
  w.WriteU64(m.request_id);
  WriteAddress(w, m.reply_to);
}

Result<MetricsRequest> DecodeMetricsRequest(ByteReader& r) {
  MetricsRequest m;
  INS_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(m.reply_to, ReadAddress(r));
  return m;
}

void EncodeBody(ByteWriter& w, const MetricsResponse& m) {
  w.WriteU64(m.request_id);
  WriteAddress(w, m.inr);
  w.WriteU16(static_cast<uint16_t>(m.counters.size()));
  for (const MetricsResponse::CounterItem& c : m.counters) {
    w.WriteString(c.name);
    w.WriteU64(c.value);
  }
  w.WriteU16(static_cast<uint16_t>(m.gauges.size()));
  for (const MetricsResponse::GaugeItem& g : m.gauges) {
    w.WriteString(g.name);
    w.WriteU64(static_cast<uint64_t>(g.value));
  }
  w.WriteU16(static_cast<uint16_t>(m.histograms.size()));
  for (const MetricsResponse::HistogramItem& h : m.histograms) {
    w.WriteString(h.name);
    w.WriteU64(h.sum);
    w.WriteU64(h.min);
    w.WriteU64(h.max);
    w.WriteU8(static_cast<uint8_t>(h.buckets.size()));
    for (const auto& [index, count] : h.buckets) {
      w.WriteU8(index);
      w.WriteU64(count);
    }
  }
}

Result<MetricsResponse> DecodeMetricsResponse(ByteReader& r) {
  MetricsResponse m;
  INS_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(m.inr, ReadAddress(r));
  uint16_t n = 0;
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  m.counters.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    MetricsResponse::CounterItem c;
    INS_ASSIGN_OR_RETURN(c.name, r.ReadString());
    INS_ASSIGN_OR_RETURN(c.value, r.ReadU64());
    m.counters.push_back(std::move(c));
  }
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  m.gauges.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    MetricsResponse::GaugeItem g;
    INS_ASSIGN_OR_RETURN(g.name, r.ReadString());
    uint64_t raw = 0;
    INS_ASSIGN_OR_RETURN(raw, r.ReadU64());
    g.value = static_cast<int64_t>(raw);
    m.gauges.push_back(std::move(g));
  }
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  m.histograms.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    MetricsResponse::HistogramItem h;
    INS_ASSIGN_OR_RETURN(h.name, r.ReadString());
    INS_ASSIGN_OR_RETURN(h.sum, r.ReadU64());
    INS_ASSIGN_OR_RETURN(h.min, r.ReadU64());
    INS_ASSIGN_OR_RETURN(h.max, r.ReadU64());
    uint8_t buckets = 0;
    INS_ASSIGN_OR_RETURN(buckets, r.ReadU8());
    h.buckets.reserve(buckets);
    for (uint8_t b = 0; b < buckets; ++b) {
      uint8_t index = 0;
      uint64_t count = 0;
      INS_ASSIGN_OR_RETURN(index, r.ReadU8());
      INS_ASSIGN_OR_RETURN(count, r.ReadU64());
      h.buckets.emplace_back(index, count);
    }
    m.histograms.push_back(std::move(h));
  }
  return m;
}

void EncodeBody(ByteWriter& w, const MetricsDeltaRequest& m) {
  w.WriteU64(m.request_id);
  WriteAddress(w, m.reply_to);
  w.WriteU64(m.since_seq);
}

Result<MetricsDeltaRequest> DecodeMetricsDeltaRequest(ByteReader& r) {
  MetricsDeltaRequest m;
  INS_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(m.reply_to, ReadAddress(r));
  INS_ASSIGN_OR_RETURN(m.since_seq, r.ReadU64());
  return m;
}

// The item sections reuse the MetricsResponse wire layout exactly; only the
// delta framing (seq, since_seq, full) precedes them.
void EncodeMetricsItems(ByteWriter& w,
                        const std::vector<MetricsResponse::CounterItem>& counters,
                        const std::vector<MetricsResponse::GaugeItem>& gauges,
                        const std::vector<MetricsResponse::HistogramItem>& histograms) {
  w.WriteU16(static_cast<uint16_t>(counters.size()));
  for (const MetricsResponse::CounterItem& c : counters) {
    w.WriteString(c.name);
    w.WriteU64(c.value);
  }
  w.WriteU16(static_cast<uint16_t>(gauges.size()));
  for (const MetricsResponse::GaugeItem& g : gauges) {
    w.WriteString(g.name);
    w.WriteU64(static_cast<uint64_t>(g.value));
  }
  w.WriteU16(static_cast<uint16_t>(histograms.size()));
  for (const MetricsResponse::HistogramItem& h : histograms) {
    w.WriteString(h.name);
    w.WriteU64(h.sum);
    w.WriteU64(h.min);
    w.WriteU64(h.max);
    w.WriteU8(static_cast<uint8_t>(h.buckets.size()));
    for (const auto& [index, count] : h.buckets) {
      w.WriteU8(index);
      w.WriteU64(count);
    }
  }
}

Status DecodeMetricsItems(ByteReader& r,
                          std::vector<MetricsResponse::CounterItem>& counters,
                          std::vector<MetricsResponse::GaugeItem>& gauges,
                          std::vector<MetricsResponse::HistogramItem>& histograms) {
  uint16_t n = 0;
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  counters.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    MetricsResponse::CounterItem c;
    INS_ASSIGN_OR_RETURN(c.name, r.ReadString());
    INS_ASSIGN_OR_RETURN(c.value, r.ReadU64());
    counters.push_back(std::move(c));
  }
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  gauges.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    MetricsResponse::GaugeItem g;
    INS_ASSIGN_OR_RETURN(g.name, r.ReadString());
    uint64_t raw = 0;
    INS_ASSIGN_OR_RETURN(raw, r.ReadU64());
    g.value = static_cast<int64_t>(raw);
    gauges.push_back(std::move(g));
  }
  INS_ASSIGN_OR_RETURN(n, r.ReadU16());
  histograms.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    MetricsResponse::HistogramItem h;
    INS_ASSIGN_OR_RETURN(h.name, r.ReadString());
    INS_ASSIGN_OR_RETURN(h.sum, r.ReadU64());
    INS_ASSIGN_OR_RETURN(h.min, r.ReadU64());
    INS_ASSIGN_OR_RETURN(h.max, r.ReadU64());
    uint8_t buckets = 0;
    INS_ASSIGN_OR_RETURN(buckets, r.ReadU8());
    h.buckets.reserve(buckets);
    for (uint8_t b = 0; b < buckets; ++b) {
      uint8_t index = 0;
      uint64_t count = 0;
      INS_ASSIGN_OR_RETURN(index, r.ReadU8());
      INS_ASSIGN_OR_RETURN(count, r.ReadU64());
      h.buckets.emplace_back(index, count);
    }
    histograms.push_back(std::move(h));
  }
  return Status::Ok();
}

void EncodeBody(ByteWriter& w, const MetricsDeltaResponse& m) {
  w.WriteU64(m.request_id);
  WriteAddress(w, m.inr);
  w.WriteU64(m.seq);
  w.WriteU64(m.since_seq);
  w.WriteU8(m.full ? 1 : 0);
  EncodeMetricsItems(w, m.counters, m.gauges, m.histograms);
}

Result<MetricsDeltaResponse> DecodeMetricsDeltaResponse(ByteReader& r) {
  MetricsDeltaResponse m;
  INS_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  INS_ASSIGN_OR_RETURN(m.inr, ReadAddress(r));
  INS_ASSIGN_OR_RETURN(m.seq, r.ReadU64());
  INS_ASSIGN_OR_RETURN(m.since_seq, r.ReadU64());
  uint8_t full = 0;
  INS_ASSIGN_OR_RETURN(full, r.ReadU8());
  m.full = full != 0;
  INS_RETURN_IF_ERROR(DecodeMetricsItems(r, m.counters, m.gauges, m.histograms));
  return m;
}

}  // namespace

MessageType Envelope::type() const {
  struct Visitor {
    MessageType operator()(const Packet&) { return MessageType::kData; }
    MessageType operator()(const Advertisement&) { return MessageType::kAdvertisement; }
    MessageType operator()(const NameUpdate&) { return MessageType::kNameUpdate; }
    MessageType operator()(const DiscoveryRequest&) { return MessageType::kDiscoveryRequest; }
    MessageType operator()(const DiscoveryResponse&) {
      return MessageType::kDiscoveryResponse;
    }
    MessageType operator()(const EarlyBindingResponse&) {
      return MessageType::kEarlyBindingResponse;
    }
    MessageType operator()(const Ping&) { return MessageType::kPing; }
    MessageType operator()(const Pong&) { return MessageType::kPong; }
    MessageType operator()(const PeerRequest&) { return MessageType::kPeerRequest; }
    MessageType operator()(const PeerAccept&) { return MessageType::kPeerAccept; }
    MessageType operator()(const PeerClose&) { return MessageType::kPeerClose; }
    MessageType operator()(const DsrRegister&) { return MessageType::kDsrRegister; }
    MessageType operator()(const DsrListRequest&) { return MessageType::kDsrListRequest; }
    MessageType operator()(const DsrListResponse&) { return MessageType::kDsrListResponse; }
    MessageType operator()(const DsrVspaceRequest&) { return MessageType::kDsrVspaceRequest; }
    MessageType operator()(const DsrVspaceResponse&) {
      return MessageType::kDsrVspaceResponse;
    }
    MessageType operator()(const DsrCandidatesRequest&) {
      return MessageType::kDsrCandidatesRequest;
    }
    MessageType operator()(const DsrCandidatesResponse&) {
      return MessageType::kDsrCandidatesResponse;
    }
    MessageType operator()(const SpawnRequest&) { return MessageType::kSpawnRequest; }
    MessageType operator()(const DelegateVspace&) { return MessageType::kDelegateVspace; }
    MessageType operator()(const DsrAssignmentsRequest&) {
      return MessageType::kDsrAssignmentsRequest;
    }
    MessageType operator()(const DsrAssignmentsResponse&) {
      return MessageType::kDsrAssignmentsResponse;
    }
    MessageType operator()(const PeerKeepalive&) { return MessageType::kPeerKeepalive; }
    MessageType operator()(const MetricsRequest&) { return MessageType::kMetricsRequest; }
    MessageType operator()(const MetricsResponse&) { return MessageType::kMetricsResponse; }
    MessageType operator()(const JournalDigest&) { return MessageType::kJournalDigest; }
    MessageType operator()(const JournalDeltaRequest&) {
      return MessageType::kJournalDeltaRequest;
    }
    MessageType operator()(const JournalDeltaResponse&) {
      return MessageType::kJournalDeltaResponse;
    }
    MessageType operator()(const DsrReplicaSetRequest&) {
      return MessageType::kDsrReplicaSetRequest;
    }
    MessageType operator()(const DsrReplicaSetResponse&) {
      return MessageType::kDsrReplicaSetResponse;
    }
    MessageType operator()(const ReplicaInvite&) { return MessageType::kReplicaInvite; }
    MessageType operator()(const DsrDeadInrReport&) {
      return MessageType::kDsrDeadInrReport;
    }
    MessageType operator()(const MetricsDeltaRequest&) {
      return MessageType::kMetricsDeltaRequest;
    }
    MessageType operator()(const MetricsDeltaResponse&) {
      return MessageType::kMetricsDeltaResponse;
    }
  };
  return std::visit(Visitor{}, body);
}

uint32_t EnvelopeChecksum(const uint8_t* data, size_t len) {
  // 32-bit FNV-1a. Not cryptographic — it plays the role of the UDP/link
  // checksum the real deployment gets for free: a datagram that took bit
  // damage in flight is dropped at decode instead of poisoning soft state
  // (a flipped NameUpdate version or metric field would otherwise install a
  // route that honest refreshes cannot displace until lifetime expiry).
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

Bytes EncodeMessage(const Envelope& e) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(e.type()));
  std::visit([&w](const auto& body) { EncodeBody(w, body); }, e.body);
  w.WriteU32(EnvelopeChecksum(w.bytes().data(), w.size()));
  return std::move(w).TakeBytes();
}

Result<Envelope> DecodeMessage(const Bytes& buffer) {
  if (buffer.size() < 5) {  // type byte + trailing checksum
    return InvalidArgumentError("envelope too short");
  }
  const size_t body_len = buffer.size() - 4;
  ByteReader trailer(buffer.data() + body_len, 4);
  uint32_t stored = 0;
  INS_ASSIGN_OR_RETURN(stored, trailer.ReadU32());
  if (EnvelopeChecksum(buffer.data(), body_len) != stored) {
    return InvalidArgumentError("envelope checksum mismatch");
  }
  ByteReader r(buffer.data(), body_len);
  uint8_t raw_type = 0;
  INS_ASSIGN_OR_RETURN(raw_type, r.ReadU8());
  switch (static_cast<MessageType>(raw_type)) {
    case MessageType::kData: {
      INS_ASSIGN_OR_RETURN(Packet p, DecodePacketBody(r));
      return Envelope{MessageBody(std::move(p))};
    }
    case MessageType::kAdvertisement: {
      INS_ASSIGN_OR_RETURN(Advertisement a, DecodeAdvertisement(r));
      return Envelope{MessageBody(std::move(a))};
    }
    case MessageType::kNameUpdate: {
      INS_ASSIGN_OR_RETURN(NameUpdate u, DecodeNameUpdate(r));
      return Envelope{MessageBody(std::move(u))};
    }
    case MessageType::kDiscoveryRequest: {
      INS_ASSIGN_OR_RETURN(DiscoveryRequest d, DecodeDiscoveryRequest(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kDiscoveryResponse: {
      INS_ASSIGN_OR_RETURN(DiscoveryResponse d, DecodeDiscoveryResponse(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kEarlyBindingResponse: {
      INS_ASSIGN_OR_RETURN(EarlyBindingResponse e, DecodeEarlyBindingResponse(r));
      return Envelope{MessageBody(std::move(e))};
    }
    case MessageType::kPing: {
      INS_ASSIGN_OR_RETURN(Ping p, DecodePing(r));
      return Envelope{MessageBody(p)};
    }
    case MessageType::kPong: {
      INS_ASSIGN_OR_RETURN(Pong p, DecodePong(r));
      return Envelope{MessageBody(p)};
    }
    case MessageType::kPeerRequest: {
      PeerRequest p;
      INS_ASSIGN_OR_RETURN(p.requester, ReadAddress(r));
      return Envelope{MessageBody(p)};
    }
    case MessageType::kPeerAccept: {
      PeerAccept p;
      INS_ASSIGN_OR_RETURN(p.accepter, ReadAddress(r));
      return Envelope{MessageBody(p)};
    }
    case MessageType::kPeerClose: {
      PeerClose p;
      INS_ASSIGN_OR_RETURN(p.closer, ReadAddress(r));
      return Envelope{MessageBody(p)};
    }
    case MessageType::kDsrRegister: {
      INS_ASSIGN_OR_RETURN(DsrRegister d, DecodeDsrRegister(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kDsrListRequest: {
      DsrListRequest d;
      INS_ASSIGN_OR_RETURN(d.request_id, r.ReadU64());
      return Envelope{MessageBody(d)};
    }
    case MessageType::kDsrListResponse: {
      INS_ASSIGN_OR_RETURN(DsrListResponse d, DecodeDsrListResponse(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kDsrVspaceRequest: {
      INS_ASSIGN_OR_RETURN(DsrVspaceRequest d, DecodeDsrVspaceRequest(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kDsrVspaceResponse: {
      INS_ASSIGN_OR_RETURN(DsrVspaceResponse d, DecodeDsrVspaceResponse(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kDsrCandidatesRequest: {
      DsrCandidatesRequest d;
      INS_ASSIGN_OR_RETURN(d.request_id, r.ReadU64());
      return Envelope{MessageBody(d)};
    }
    case MessageType::kDsrCandidatesResponse: {
      INS_ASSIGN_OR_RETURN(DsrCandidatesResponse d, DecodeDsrCandidatesResponse(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kSpawnRequest: {
      INS_ASSIGN_OR_RETURN(SpawnRequest s, DecodeSpawnRequest(r));
      return Envelope{MessageBody(std::move(s))};
    }
    case MessageType::kDelegateVspace: {
      INS_ASSIGN_OR_RETURN(DelegateVspace d, DecodeDelegateVspace(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kDsrAssignmentsRequest: {
      INS_ASSIGN_OR_RETURN(DsrAssignmentsRequest d, DecodeDsrAssignmentsRequest(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kDsrAssignmentsResponse: {
      INS_ASSIGN_OR_RETURN(DsrAssignmentsResponse d, DecodeDsrAssignmentsResponse(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kPeerKeepalive: {
      PeerKeepalive p;
      INS_ASSIGN_OR_RETURN(p.from, ReadAddress(r));
      return Envelope{MessageBody(p)};
    }
    case MessageType::kMetricsRequest: {
      INS_ASSIGN_OR_RETURN(MetricsRequest m, DecodeMetricsRequest(r));
      return Envelope{MessageBody(m)};
    }
    case MessageType::kMetricsResponse: {
      INS_ASSIGN_OR_RETURN(MetricsResponse m, DecodeMetricsResponse(r));
      return Envelope{MessageBody(std::move(m))};
    }
    case MessageType::kJournalDigest: {
      INS_ASSIGN_OR_RETURN(JournalDigest d, DecodeJournalDigest(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kJournalDeltaRequest: {
      INS_ASSIGN_OR_RETURN(JournalDeltaRequest d, DecodeJournalDeltaRequest(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kJournalDeltaResponse: {
      INS_ASSIGN_OR_RETURN(JournalDeltaResponse d, DecodeJournalDeltaResponse(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kDsrReplicaSetRequest: {
      INS_ASSIGN_OR_RETURN(DsrReplicaSetRequest d, DecodeDsrReplicaSetRequest(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kDsrReplicaSetResponse: {
      INS_ASSIGN_OR_RETURN(DsrReplicaSetResponse d, DecodeDsrReplicaSetResponse(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kReplicaInvite: {
      INS_ASSIGN_OR_RETURN(ReplicaInvite d, DecodeReplicaInvite(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kDsrDeadInrReport: {
      INS_ASSIGN_OR_RETURN(DsrDeadInrReport d, DecodeDsrDeadInrReport(r));
      return Envelope{MessageBody(std::move(d))};
    }
    case MessageType::kMetricsDeltaRequest: {
      INS_ASSIGN_OR_RETURN(MetricsDeltaRequest m, DecodeMetricsDeltaRequest(r));
      return Envelope{MessageBody(m)};
    }
    case MessageType::kMetricsDeltaResponse: {
      INS_ASSIGN_OR_RETURN(MetricsDeltaResponse m, DecodeMetricsDeltaResponse(r));
      return Envelope{MessageBody(std::move(m))};
    }
  }
  return InvalidArgumentError("unknown message type " + std::to_string(raw_type));
}

MetricsResponse BuildMetricsResponse(uint64_t request_id, const NodeAddress& inr,
                                     const MetricsSnapshot& snapshot) {
  MetricsResponse resp;
  resp.request_id = request_id;
  resp.inr = inr;
  resp.counters.reserve(snapshot.counters.size());
  for (const auto& [name, value] : snapshot.counters) {
    resp.counters.push_back({name, value});
  }
  resp.gauges.reserve(snapshot.gauges.size());
  for (const auto& [name, value] : snapshot.gauges) {
    resp.gauges.push_back({name, value});
  }
  resp.histograms.reserve(snapshot.histograms.size());
  for (const auto& [name, h] : snapshot.histograms) {
    MetricsResponse::HistogramItem item;
    item.name = name;
    item.sum = h.sum();
    item.min = h.min();
    item.max = h.max();
    item.buckets = h.SparseBuckets();
    resp.histograms.push_back(std::move(item));
  }
  return resp;
}

MetricsSnapshot SnapshotFromResponse(const MetricsResponse& resp) {
  MetricsSnapshot snap;
  for (const MetricsResponse::CounterItem& c : resp.counters) {
    snap.counters[c.name] = c.value;
  }
  for (const MetricsResponse::GaugeItem& g : resp.gauges) {
    snap.gauges[g.name] = g.value;
  }
  for (const MetricsResponse::HistogramItem& h : resp.histograms) {
    snap.histograms[h.name] = Histogram::FromParts(h.sum, h.min, h.max, h.buckets);
  }
  return snap;
}

namespace {

MetricsResponse::HistogramItem HistogramItemFrom(const std::string& name,
                                                const Histogram& h) {
  MetricsResponse::HistogramItem item;
  item.name = name;
  item.sum = h.sum();
  item.min = h.min();
  item.max = h.max();
  item.buckets = h.SparseBuckets();
  return item;
}

}  // namespace

MetricsDeltaResponse BuildMetricsFull(uint64_t request_id, const NodeAddress& inr,
                                      uint64_t seq, const MetricsSnapshot& now) {
  MetricsDeltaResponse resp;
  resp.request_id = request_id;
  resp.inr = inr;
  resp.seq = seq;
  resp.since_seq = 0;
  resp.full = true;
  resp.counters.reserve(now.counters.size());
  for (const auto& [name, value] : now.counters) {
    resp.counters.push_back({name, value});
  }
  resp.gauges.reserve(now.gauges.size());
  for (const auto& [name, value] : now.gauges) {
    resp.gauges.push_back({name, value});
  }
  resp.histograms.reserve(now.histograms.size());
  for (const auto& [name, h] : now.histograms) {
    resp.histograms.push_back(HistogramItemFrom(name, h));
  }
  return resp;
}

MetricsDeltaResponse BuildMetricsDelta(uint64_t request_id, const NodeAddress& inr,
                                       uint64_t seq, uint64_t since_seq,
                                       const MetricsSnapshot& baseline,
                                       const MetricsSnapshot& now) {
  MetricsDeltaResponse resp;
  resp.request_id = request_id;
  resp.inr = inr;
  resp.seq = seq;
  resp.since_seq = since_seq;
  resp.full = false;
  for (const auto& [name, value] : now.counters) {
    auto it = baseline.counters.find(name);
    if (it == baseline.counters.end() || it->second != value) {
      resp.counters.push_back({name, value});
    }
  }
  for (const auto& [name, value] : now.gauges) {
    auto it = baseline.gauges.find(name);
    if (it == baseline.gauges.end() || it->second != value) {
      resp.gauges.push_back({name, value});
    }
  }
  // Histograms ship whole (cumulative) whenever any sample landed since the
  // baseline; the client swaps the histogram in rather than merging buckets.
  for (const auto& [name, h] : now.histograms) {
    auto it = baseline.histograms.find(name);
    if (it == baseline.histograms.end() || it->second.count() != h.count()) {
      resp.histograms.push_back(HistogramItemFrom(name, h));
    }
  }
  return resp;
}

void ApplyMetricsDelta(const MetricsDeltaResponse& resp, MetricsSnapshot& view) {
  if (resp.full) {
    view = MetricsSnapshot{};
  }
  for (const MetricsResponse::CounterItem& c : resp.counters) {
    view.counters[c.name] = c.value;
  }
  for (const MetricsResponse::GaugeItem& g : resp.gauges) {
    view.gauges[g.name] = g.value;
  }
  for (const MetricsResponse::HistogramItem& h : resp.histograms) {
    view.histograms[h.name] = Histogram::FromParts(h.sum, h.min, h.max, h.buckets);
  }
}

}  // namespace ins
