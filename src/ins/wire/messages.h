// Control-plane message formats.
//
// Every datagram in the system is one Envelope: a u8 message type followed by
// the message body. Data packets (wire/packet.h) travel inside kData
// envelopes; everything else is control plane: service advertisements,
// INR-to-INR name updates (the name-discovery routing protocol), client
// discovery and early-binding requests, INR-pings, peering, and the Domain
// Space Resolver (DSR) protocol.

#ifndef INS_WIRE_MESSAGES_H_
#define INS_WIRE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "ins/common/bytes.h"
#include "ins/common/metrics.h"
#include "ins/common/node_address.h"
#include "ins/common/status.h"
#include "ins/nametree/name_record.h"
#include "ins/wire/packet.h"

namespace ins {

enum class MessageType : uint8_t {
  kData = 1,                  // Packet (application payload with names)
  kAdvertisement = 2,         // service/client -> INR
  kNameUpdate = 3,            // INR -> INR (periodic or triggered)
  kDiscoveryRequest = 4,      // client -> INR
  kDiscoveryResponse = 5,     // INR -> client
  kEarlyBindingResponse = 6,  // INR -> client (request is a kData with B set)
  kPing = 7,                  // INR-ping for RTT estimation / liveness
  kPong = 8,
  kPeerRequest = 9,           // spanning-tree neighbor establishment
  kPeerAccept = 10,
  kPeerClose = 11,
  kDsrRegister = 12,          // INR -> DSR (soft state, periodic)
  kDsrListRequest = 13,       // anyone -> DSR: active INRs
  kDsrListResponse = 14,
  kDsrVspaceRequest = 15,     // INR/client -> DSR: who routes this vspace?
  kDsrVspaceResponse = 16,
  kDsrCandidatesRequest = 17,  // INR -> DSR: nodes available for spawning
  kDsrCandidatesResponse = 18,
  kSpawnRequest = 19,  // INR -> candidate node: start a resolver
  kDelegateVspace = 20,  // INR -> INR: take over routing this vspace
  kDsrAssignmentsRequest = 21,   // restarted INR -> DSR: which vspaces did I route?
  kDsrAssignmentsResponse = 22,
  kPeerKeepalive = 23,  // INR -> neighbor INR: I still consider us peered
  kMetricsRequest = 24,   // netmon -> INR: send me your metrics snapshot
  kMetricsResponse = 25,  // INR -> netmon
  kJournalDigest = 26,        // INR -> neighbor INR: my per-vspace serials
  kJournalDeltaRequest = 27,  // behind INR -> neighbor: send me the changes
  kJournalDeltaResponse = 28,  // delta stream or full-snapshot chunk
  kDsrReplicaSetRequest = 29,   // INR -> DSR: who replicates this vspace?
  kDsrReplicaSetResponse = 30,  // replica set in join order + spare candidates
  kReplicaInvite = 31,  // primary INR -> INR: join this vspace's replica set
  kDsrDeadInrReport = 32,  // replica INR -> DSR: member stopped digesting
  kMetricsDeltaRequest = 33,   // netmon -> INR: changes since sample seq S
  kMetricsDeltaResponse = 34,  // INR -> netmon: changed slots only, or full
};

// --- Service advertisement (client/service -> its INR) ---------------------

struct Advertisement {
  std::string vspace;       // "" = the default space
  std::string name_text;    // wire text of the advertised name-specifier
  AnnouncerId announcer;
  EndpointInfo endpoint;    // where the service listens
  double app_metric = 0.0;  // intentional-anycast metric (lower = better)
  uint32_t lifetime_s = 0;  // soft-state lifetime
  uint64_t version = 0;     // monotonic per announcer
};

// --- INR-to-INR name update (the name-discovery protocol, §2.2) ------------

// One entry of a (possibly batched) update. Carries everything §2.2 lists:
// addresses and [port, transport] pairs, the application metric, the
// advertiser's AnnouncerID, and the sender's route metric to the destination
// (the receiver adds the sender link's metric: distributed Bellman-Ford).
struct NameUpdateEntry {
  std::string name_text;
  AnnouncerId announcer;
  EndpointInfo endpoint;
  double app_metric = 0.0;
  double route_metric = 0.0;  // sender's distance to the destination
  uint32_t lifetime_s = 0;
  uint64_t version = 0;
};

struct NameUpdate {
  std::string vspace;
  bool triggered = false;  // true for triggered (delta) updates
  std::vector<NameUpdateEntry> entries;
};

// --- Client discovery (§2.2 "Discovering names") ----------------------------

struct DiscoveryRequest {
  uint64_t request_id = 0;
  std::string vspace;
  std::string filter_text;  // empty = all known names
  // Where the response should go. Set by the requesting client; preserved
  // when an INR forwards the request to the resolver owning the vspace.
  NodeAddress reply_to;
};

struct DiscoveryResponse {
  uint64_t request_id = 0;
  std::string vspace;
  // Matching names with their anycast metrics; enough for a client to render
  // (Floorplan) or choose and early-bind.
  struct Item {
    std::string name_text;
    EndpointInfo endpoint;
    double app_metric = 0.0;
  };
  std::vector<Item> items;
};

// --- Early binding response (§2, DNS-like interface) ------------------------

struct EarlyBindingResponse {
  uint64_t request_id = 0;  // echoed from the requesting packet's payload
  struct Item {
    EndpointInfo endpoint;
    double app_metric = 0.0;
  };
  std::vector<Item> items;  // client picks, e.g., the least metric
};

// --- INR-ping ---------------------------------------------------------------

struct Ping {
  uint64_t nonce = 0;
  uint64_t send_time_us = 0;  // echoed in the pong; sender computes RTT
};

struct Pong {
  uint64_t nonce = 0;
  uint64_t echo_send_time_us = 0;
};

// --- Peering (spanning-tree overlay, §2.4) ----------------------------------

struct PeerRequest {
  NodeAddress requester;
};

struct PeerAccept {
  NodeAddress accepter;
};

struct PeerClose {
  NodeAddress closer;
};

// --- DSR protocol ------------------------------------------------------------

struct DsrRegister {
  NodeAddress inr;
  bool active = true;  // false: registering as a spawn candidate only
  std::vector<std::string> vspaces;  // spaces this INR routes
  uint32_t lifetime_s = 0;
};

struct DsrListRequest {
  uint64_t request_id = 0;
};

struct DsrListResponse {
  uint64_t request_id = 0;
  std::vector<NodeAddress> active_inrs;  // in join (linear) order
  // Parallel to active_inrs: the DSR's monotonic join order of each entry.
  // An INR whose own order changed between two responses knows its soft-state
  // registration lapsed (it expired and re-registered), i.e. that ordering
  // relationships its overlay edges were built on may no longer hold.
  std::vector<uint64_t> join_orders;
};

struct DsrVspaceRequest {
  uint64_t request_id = 0;
  std::string vspace;
};

struct DsrVspaceResponse {
  uint64_t request_id = 0;
  std::string vspace;
  NodeAddress inr;  // invalid when nobody routes the space
};

struct DsrCandidatesRequest {
  uint64_t request_id = 0;
};

struct DsrCandidatesResponse {
  uint64_t request_id = 0;
  std::vector<NodeAddress> candidates;
};

// A crashed-then-restarted INR lost its in-memory vspace assignments, but the
// DSR still holds its soft-state registration until the lifetime lapses. The
// restarted resolver asks for that registration back so it resumes routing the
// same spaces instead of rejoining empty-handed and black-holing them until an
// operator re-assigns.
struct DsrAssignmentsRequest {
  uint64_t request_id = 0;
  NodeAddress inr;  // asking about this INR's registration (normally self)
};

struct DsrAssignmentsResponse {
  uint64_t request_id = 0;
  std::vector<std::string> vspaces;  // empty = registration already expired
};

// --- Load balancing ----------------------------------------------------------

struct SpawnRequest {
  NodeAddress requester;
  std::vector<std::string> vspaces;  // spaces the new INR should route
};

struct DelegateVspace {
  NodeAddress from;
  std::string vspace;
};

// Unlike the anonymous liveness Pings, a keepalive ASSERTS the tree edge: a
// receiver that does not consider `from` a neighbor replies PeerClose, so a
// half-open edge heals. This is what lets the overlay survive an amnesiac
// reboot — a resolver restarting on its old address answers pings happily,
// and without this message its former neighbors would hold the stale edge
// forever.
struct PeerKeepalive {
  NodeAddress from;
};

// --- Journal replication (anti-entropy between neighbor INRs) ----------------

// Sent on keepalive cadence to every overlay neighbor: the head serial of
// every routed vspace's change journal. A receiver whose applied serial for
// (sender, vspace) is lower asks for a delta; an equal serial doubles as a
// liveness lease on every record learned from the sender (no per-record
// refresh needed); a HIGHER applied serial means the sender restarted with a
// fresh journal, and the receiver resynchronizes from scratch.
struct JournalDigest {
  NodeAddress from;
  struct Item {
    std::string vspace;
    uint64_t serial = 0;
  };
  std::vector<Item> items;
};

// "Send me every change after `after_serial`" — or, when `full` is set (the
// requester's serial fell off the sender's journal ring, or the sender's
// serial regressed), a full snapshot of the vspace.
struct JournalDeltaRequest {
  NodeAddress from;
  std::string vspace;
  uint64_t after_serial = 0;
  bool full = false;
};

// One chunk of a delta stream or snapshot transfer. Chunks of one transfer
// carry consecutive `seq` numbers and the same `to_serial`; the last chunk
// sets `last`. A requester seeing a seq gap aborts and re-requests (UDP
// transport: chunks can vanish). For snapshots, entries are all kUpsert and
// the receiver drops any record it learned from this peer that the snapshot
// does not mention (the AXFR replace-all semantics).
struct JournalDeltaResponse {
  NodeAddress from;
  std::string vspace;
  bool snapshot = false;
  uint64_t to_serial = 0;  // applied serial after the final chunk lands
  uint32_t seq = 0;
  bool last = true;
  struct Entry {
    uint8_t op = 0;  // JournalOp: 0 upsert, 1 delete, 2 expire
    std::string name_text;
    AnnouncerId announcer;
    EndpointInfo endpoint;
    double app_metric = 0.0;
    double route_metric = 0.0;  // sender's distance (Bellman-Ford input)
    uint32_t lifetime_s = 0;    // remaining soft-state lifetime at send time
    uint64_t version = 0;
  };
  std::vector<Entry> entries;
};

// --- Replica sets (vspace availability beyond one resolver) ------------------

// In replica mode (ReplicationConfig.replica_k >= 2) a vspace is served by a
// SET of resolvers instead of exactly one. The DSR derives the set from its
// soft-state registrations: every active INR routing the space, in join
// order, with the oldest registrant acting as the set's primary. The same
// request also returns spare candidates so the primary can top the set back
// up to k without a second round trip.
struct DsrReplicaSetRequest {
  uint64_t request_id = 0;
  std::string vspace;
};

struct DsrReplicaSetResponse {
  uint64_t request_id = 0;
  std::string vspace;
  // Live registrants routing the vspace, in join order (front = primary).
  // Members the DSR currently suspects dead (see DsrDeadInrReport) are
  // omitted while their registration proves nothing either way.
  std::vector<NodeAddress> replicas;
  // Active INRs NOT in `replicas`, in join order: invite material.
  std::vector<NodeAddress> candidates;
};

// The primary asks another resolver to join a vspace's replica set. The
// invitee starts routing the space (and thereby registers it with the DSR);
// the inviter follows up with a full vspace state transfer so the new member
// is warm before its first digest round.
struct ReplicaInvite {
  NodeAddress from;
  std::string vspace;
};

// A replica that stopped receiving digests from a set member reports the
// silence. The DSR does NOT erase the member's registration (the reporter
// may merely be partitioned from it): it marks the member suspect for a
// bounded interval, during which vspace resolution answers skip it. A
// registration refresh from the suspect clears the mark — proof of life
// beats one peer's suspicion.
struct DsrDeadInrReport {
  NodeAddress reporter;
  NodeAddress dead;
};

// --- Metrics polling (the paper's NetworkManagement service) -----------------

// The netmon app asks a resolver for its metrics. Classified as control
// traffic by admission (the monitor must see an overloaded resolver, not be
// shed by it).
struct MetricsRequest {
  uint64_t request_id = 0;
  NodeAddress reply_to;  // invalid = answer to the datagram source
};

// A resolver's registry snapshot: counters, gauges, and histograms (as
// sparse non-empty log2 buckets plus the moments needed to re-quantile on
// the monitor side). DurationStat aggregates travel as histograms already —
// RecordDuration feeds both views under one name.
struct MetricsResponse {
  uint64_t request_id = 0;
  NodeAddress inr;  // who is answering

  struct CounterItem {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeItem {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramItem {
    std::string name;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::vector<std::pair<uint8_t, uint64_t>> buckets;  // (bucket index, count)
  };
  std::vector<CounterItem> counters;
  std::vector<GaugeItem> gauges;
  std::vector<HistogramItem> histograms;
};

// --- Incremental metrics polling ---------------------------------------------

// "Send me what changed since your sample `since_seq`." The resolver keeps a
// ring of recent snapshots (common/timeseries.h), numbered by a sequence that
// is monotonic for one resolver incarnation. since_seq = 0 (a client that has
// no baseline yet) always gets a full snapshot.
struct MetricsDeltaRequest {
  uint64_t request_id = 0;
  NodeAddress reply_to;  // invalid = answer to the datagram source
  uint64_t since_seq = 0;
};

// The incremental answer. When `full` is false the item vectors carry ONLY
// the slots whose values changed between retained sample since_seq and now —
// the steady-state poll ships a handful of hot counters instead of the whole
// catalogue. When since_seq fell off the resolver's ring, or belongs to a
// previous incarnation (resolver restart: sequences start over from 1), the
// resolver answers with `full` set and the complete snapshot; the client
// replaces its view and re-bases on `seq`.
struct MetricsDeltaResponse {
  uint64_t request_id = 0;
  NodeAddress inr;
  uint64_t seq = 0;        // sequence of the snapshot this response represents
  uint64_t since_seq = 0;  // the baseline the delta was computed against (0 if full)
  bool full = false;
  std::vector<MetricsResponse::CounterItem> counters;
  std::vector<MetricsResponse::GaugeItem> gauges;
  std::vector<MetricsResponse::HistogramItem> histograms;
};

// --- Envelope ----------------------------------------------------------------

using MessageBody =
    std::variant<Packet, Advertisement, NameUpdate, DiscoveryRequest, DiscoveryResponse,
                 EarlyBindingResponse, Ping, Pong, PeerRequest, PeerAccept, PeerClose,
                 DsrRegister, DsrListRequest, DsrListResponse, DsrVspaceRequest,
                 DsrVspaceResponse, DsrCandidatesRequest, DsrCandidatesResponse,
                 SpawnRequest, DelegateVspace, DsrAssignmentsRequest, DsrAssignmentsResponse,
                 PeerKeepalive, MetricsRequest, MetricsResponse, JournalDigest,
                 JournalDeltaRequest, JournalDeltaResponse, DsrReplicaSetRequest,
                 DsrReplicaSetResponse, ReplicaInvite, DsrDeadInrReport,
                 MetricsDeltaRequest, MetricsDeltaResponse>;

struct Envelope {
  MessageBody body;

  MessageType type() const;
};

// FNV-1a over the type byte and body. EncodeMessage appends it as a trailing
// u32; DecodeMessage verifies it and rejects damaged datagrams before any
// field reaches protocol state (the integrity check UDP provides in the real
// deployment).
uint32_t EnvelopeChecksum(const uint8_t* data, size_t len);

Bytes EncodeMessage(const Envelope& e);
Result<Envelope> DecodeMessage(const Bytes& buffer);

// Convenience: wraps a body and encodes in one step.
template <typename T>
Bytes Encode(T body) {
  return EncodeMessage(Envelope{MessageBody(std::move(body))});
}

// Conversions between a registry snapshot and its wire form, shared by the
// resolver's metrics responder and the netmon poller. DurationStat timings
// are not shipped separately: RecordDuration mirrors them into same-named
// histograms, which carry strictly more information.
MetricsResponse BuildMetricsResponse(uint64_t request_id, const NodeAddress& inr,
                                     const MetricsSnapshot& snapshot);
MetricsSnapshot SnapshotFromResponse(const MetricsResponse& resp);

// Builds the incremental answer: only the slots of `now` that differ from
// `baseline` (new names count as changed). Histograms compare on recorded
// count — a histogram ships whenever it received any sample since the
// baseline, as its full cumulative form (bucket state is not diffable on the
// client without shipping all buckets anyway, and one histogram is small).
MetricsDeltaResponse BuildMetricsDelta(uint64_t request_id, const NodeAddress& inr,
                                       uint64_t seq, uint64_t since_seq,
                                       const MetricsSnapshot& baseline,
                                       const MetricsSnapshot& now);
// Full-snapshot fallback in the delta framing (`full` set).
MetricsDeltaResponse BuildMetricsFull(uint64_t request_id, const NodeAddress& inr,
                                      uint64_t seq, const MetricsSnapshot& now);
// Applies a delta (or full) response onto the client's view of the resolver.
void ApplyMetricsDelta(const MetricsDeltaResponse& resp, MetricsSnapshot& view);

}  // namespace ins

#endif  // INS_WIRE_MESSAGES_H_
