// The INS data-packet format (paper Figure 10).
//
// A data packet carries a source and destination name-specifier (as wire
// text), two bit-flags — B selects early vs. late binding, D selects anycast
// (`any`) vs. multicast (`all`) delivery — a hop limit decremented at each
// overlay hop, a cache lifetime governing INR-side data caching, and the
// opaque application payload. Because name-specifiers are variable length,
// the header stores byte offsets ("pointers") to the source name, destination
// name, and data, so a forwarding agent can locate the payload without
// parsing the names. INRs never interpret application data.

#ifndef INS_WIRE_PACKET_H_
#define INS_WIRE_PACKET_H_

#include <cstdint>
#include <string>

#include "ins/common/bytes.h"
#include "ins/common/status.h"

namespace ins {

inline constexpr uint8_t kInsVersion = 1;
inline constexpr uint16_t kDefaultHopLimit = 16;

// Flag bits (the paper's B and D single-bit flags, plus the cache-probe bit
// added by the application-independent caching extension of §3.2, plus the
// trace-sampled bit of the observability layer).
inline constexpr uint8_t kFlagEarlyBinding = 0x01;  // B: 1 = early binding
inline constexpr uint8_t kFlagDeliverAll = 0x02;    // D: 1 = multicast (all)
inline constexpr uint8_t kFlagAnswerFromCache = 0x04;
// 1 = an 8-byte trace id follows the fixed header (hop-by-hop tracing). The
// bit is set exactly when trace_id != 0, so untraced packets are byte-for-
// byte the seed wire format.
inline constexpr uint8_t kFlagTraceSampled = 0x08;

struct Packet {
  uint8_t version = kInsVersion;
  bool early_binding = false;    // B flag
  bool deliver_all = false;      // D flag: false = anycast, true = multicast
  bool answer_from_cache = false;
  uint16_t hop_limit = kDefaultHopLimit;
  uint32_t cache_lifetime_s = 0;  // 0 disallows caching
  // Remaining end-to-end deadline budget in milliseconds; 0 = no deadline.
  // Each INR charges the packet for overlay hops and (under overload) for
  // the time it spent queued, and drops it once the budget is exhausted —
  // doing dead work for a request the client already gave up on only deepens
  // an overload. Carried in the reserved space of the Figure-10 header.
  uint16_t deadline_budget_ms = 0;
  // Trace context: non-zero = this packet is sampled for hop-by-hop tracing
  // and its id travels in a header extension behind kFlagTraceSampled. Zero
  // (the default) adds no wire bytes and no per-hop work.
  uint64_t trace_id = 0;
  std::string source_name;        // wire text of the source name-specifier
  std::string destination_name;   // wire text of the destination name-specifier
  Bytes payload;

  bool traced() const { return trace_id != 0; }

  // Total encoded size in bytes.
  size_t EncodedSize() const;
};

// Fixed header layout (20 bytes), all fields big-endian:
//   u8  version        u8  flags          u16 hop limit
//   u32 cache lifetime (seconds)
//   u16 deadline budget (ms)  u16 reserved (must-be-zero on send, ignored)
//   u16 ptr to source name   u16 ptr to destination name
//   u16 ptr to data          u16 total length
// followed by the two name-specifier texts and the payload at the offsets the
// pointers give.
//
// When the trace flag (0x08) is set, a u64 trace id sits between the fixed
// header and the source name — the pointer fields already locate every
// section, so a seed-era reader that checked offsets instead of hard-coding
// them would still find names and payload. Untraced packets carry no
// extension: their bytes are identical to the seed format.
inline constexpr size_t kPacketHeaderSize = 20;
inline constexpr size_t kPacketTraceExtensionSize = 8;

// Charges `elapsed_ms` against the packet's deadline budget. Returns false —
// and zeroes the budget — when the budget is exhausted and the packet should
// be dropped instead of forwarded. A packet with no deadline (budget 0) is
// never exhausted. Every charge is at least 1 ms so a finite budget always
// decreases hop by hop.
bool ConsumeDeadlineBudget(Packet& p, uint32_t elapsed_ms);

Bytes EncodePacket(const Packet& p);
Result<Packet> DecodePacket(const Bytes& buffer);

// Reads only the payload location from an encoded packet without touching
// the names — the forwarding fast path the pointer fields exist for. Returns
// (offset, length) of the data section.
Result<std::pair<size_t, size_t>> LocatePayload(const Bytes& buffer);

}  // namespace ins

#endif  // INS_WIRE_PACKET_H_
