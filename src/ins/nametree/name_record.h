// Name-records: what a name-tree leaf points at (paper §2.3.1).
//
// A name-record carries the route to the next-hop INR, the address of the
// final destination, the overlay route metric (INR-to-INR round-trip latency
// based), the application-advertised end-node metric for intentional anycast
// and early binding, the AnnouncerID differentiating identical names from
// different applications, and the soft-state expiration time.

#ifndef INS_NAMETREE_NAME_RECORD_H_
#define INS_NAMETREE_NAME_RECORD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ins/common/clock.h"
#include "ins/common/node_address.h"

namespace ins {

// Uniquely identifies the announcing application instance. The paper
// constructs it from the announcer's IP address concatenated with its startup
// time, which allows multiple instances on one node; a small discriminator is
// added so a single application can announce several independent names.
struct AnnouncerId {
  uint32_t ip = 0;
  uint64_t start_time_us = 0;
  uint32_t discriminator = 0;

  bool IsValid() const { return ip != 0; }
  std::string ToString() const {
    return Ipv4ToString(ip) + "@" + std::to_string(start_time_us) + "#" +
           std::to_string(discriminator);
  }

  friend bool operator==(const AnnouncerId& a, const AnnouncerId& b) {
    return a.ip == b.ip && a.start_time_us == b.start_time_us &&
           a.discriminator == b.discriminator;
  }
  friend bool operator<(const AnnouncerId& a, const AnnouncerId& b) {
    if (a.ip != b.ip) {
      return a.ip < b.ip;
    }
    if (a.start_time_us != b.start_time_us) {
      return a.start_time_us < b.start_time_us;
    }
    return a.discriminator < b.discriminator;
  }
};

struct AnnouncerIdHash {
  size_t operator()(const AnnouncerId& a) const {
    uint64_t h = a.start_time_us * 0x9e3779b97f4a7c15ull;
    h ^= (static_cast<uint64_t>(a.ip) << 32) | a.discriminator;
    h *= 0xbf58476d1ce4e5b9ull;
    return static_cast<size_t>(h ^ (h >> 29));
  }
};

// A [port-number, transport-type] pair (paper §2.2): returned to clients for
// early binding so they can contact the service directly.
struct PortBinding {
  uint16_t port = 0;
  std::string transport;  // e.g. "udp", "tcp", "http", "rtp"

  friend bool operator==(const PortBinding& a, const PortBinding& b) {
    return a.port == b.port && a.transport == b.transport;
  }
};

// Where the announced service actually lives.
struct EndpointInfo {
  NodeAddress address;                 // final-destination node (client port)
  std::vector<PortBinding> bindings;   // service ports for early binding

  friend bool operator==(const EndpointInfo& a, const EndpointInfo& b) {
    return a.address == b.address && a.bindings == b.bindings;
  }
};

// Route learned through the overlay: forward towards the destination via
// `next_hop_inr`; `overlay_metric` accumulates INR-to-INR RTT along the path
// (0 means the destination is attached directly to this resolver).
struct RouteInfo {
  NodeAddress next_hop_inr;  // invalid => destination is locally attached
  double overlay_metric = 0.0;

  bool IsLocal() const { return !next_hop_inr.IsValid(); }

  friend bool operator==(const RouteInfo& a, const RouteInfo& b) {
    return a.next_hop_inr == b.next_hop_inr && a.overlay_metric == b.overlay_metric;
  }
};

class NameTree;

// One advertisement as known to one resolver. Owned by the NameTree; leaf
// value-nodes of the advertised specifier hold pointers to it.
struct NameRecord {
  AnnouncerId announcer;
  EndpointInfo endpoint;
  double app_metric = 0.0;  // application-advertised, lower is better
  RouteInfo route;
  TimePoint expires{0};

  // Monotonic per-announcer version stamped by the origin; resolvers ignore
  // stale (lower-versioned) updates that race ahead of fresh ones.
  uint64_t version = 0;

  std::string ToString() const;

  // Value copy with the tree-internal terminal pointers cleared: safe to hand
  // across shard/thread boundaries after the source tree version is retired.
  NameRecord Detached() const {
    NameRecord copy = *this;
    copy.terminals_.clear();
    copy.slot_ = 0xFFFFFFFFu;
    return copy;
  }

 private:
  friend class NameTree;
  // Leaf value-nodes of this record's specifier, maintained by the tree for
  // removal and for GET-NAME extraction. Opaque outside the tree.
  std::vector<void*> terminals_;
  // Dense posting-index record id (posting_index.h), assigned by the owning
  // tree's index for the record's lifetime; 0xFFFFFFFF when unindexed.
  uint32_t slot_ = 0xFFFFFFFFu;
};

}  // namespace ins

#endif  // INS_NAMETREE_NAME_RECORD_H_
