// The per-tree secondary index: posting lists keyed by value-path
// fingerprints, turning conjunctive literal LOOKUP-NAME queries into
// rarest-first sorted-list / word-parallel bitmap intersections instead of
// tree walks (ROADMAP item: hold >= 1M lookups/s at 10^5-10^6 names).
//
// Keys. A name-tree node is identified by the hash chain of the (attribute,
// value) SymbolId pairs on its root path: ValueFp(parent_fp, a, v). Chained
// fingerprints — rather than flat (a, v) pairs — preserve the tree's
// hierarchical semantics: `[a=1[b=2]]` and `[b=2]` name different nodes and
// therefore different postings. Three maps mirror the tree exactly:
//
//   sub_[vfp]         posting list of the records with a terminal at or
//                     below node vfp == the records whose specifier contains
//                     that value path (the tree's Sub(p') sets);
//   end_count_[vfp]   how many records are attached exactly at vfp;
//   attr_count_[afp]  how many records graft through attribute-path afp.
//
// Counts (not lists) suffice for end/attr because plan derivation only needs
// the structural facts LOOKUP-NAME branches on: an attribute path exists in
// the tree iff attr_count > 0, a value node exists iff sub_ holds its key,
// and a value node has no attribute children iff sub == end (every record
// under it is attached right there, in which case End == Sub and the sub
// posting doubles as the End set). The remaining case — records attached at
// an interior node with deeper query levels (the union-at-return rule) —
// falls back to the tree walk, as do wildcard and range levels.
//
// Record ids. Records get dense u32 slots from a free-list allocator (the
// bitmap universe); posting lists store slots sorted ascending and promote
// to bitmaps above a density threshold with hysteresis on the way back down.
//
// Concurrency. A PostingIndex is a private member of one NameTree and is
// mutated only through that tree's write path, so the left-right protocol
// covers it for free: the index flips sides with its tree, readers see the
// published side under the same epoch guard, and deterministic replay
// rebuilds the retired side's index identically. The version() counter —
// bumped on every mutation — is what keys QueryPlanCache validity. The
// lookup counters are relaxed atomics because concurrent readers share the
// published side.

#ifndef INS_NAMETREE_POSTING_INDEX_H_
#define INS_NAMETREE_POSTING_INDEX_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ins/common/status.h"
#include "ins/name/compiled_name.h"
#include "ins/nametree/query_plan.h"

namespace ins {

struct NameRecord;

// One posting: the set of record slots on one value path, sorted-array or
// bitmap representation chosen by density. Membership, insertion, and
// removal are representation-independent; only cost changes.
class PostingList {
 public:
  // Sorted lists promote to bitmaps when they are both big enough to matter
  // and dense enough that capacity/8 bytes of bitmap beat 4*count bytes of
  // array; demotion waits for half that density (hysteresis, so a workload
  // oscillating at the threshold does not re-encode per update).
  static constexpr uint32_t kPromoteMinCount = 64;
  static constexpr size_t kPromoteDensity = 64;  // promote at count >= cap/64
  static constexpr size_t kDemoteDensity = 128;  // demote at count < cap/128

  uint32_t count() const { return count_; }
  bool is_bitmap() const { return is_bitmap_; }

  // `capacity` is the current slot-universe size (index slot vector length);
  // promotion decisions are taken against it at mutation time. Returns true
  // when the representation changed (promotion/demotion).
  bool Add(uint32_t slot, size_t capacity);
  bool Remove(uint32_t slot, size_t capacity);

  bool Contains(uint32_t slot) const;

  // Calls fn(slot) for every member in ascending slot order.
  template <typename Fn>
  void ForEachAscending(Fn&& fn) const {
    if (!is_bitmap_) {
      for (uint32_t s : sorted_) {
        fn(s);
      }
      return;
    }
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(static_cast<uint32_t>(w * 64 + static_cast<size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  // Representation internals for the intersection kernels.
  const std::vector<uint32_t>& sorted() const { return sorted_; }
  const std::vector<uint64_t>& words() const { return words_; }

  size_t MemoryBytes() const {
    return sorted_.capacity() * sizeof(uint32_t) + words_.capacity() * sizeof(uint64_t);
  }

  Status CheckInvariants() const;

 private:
  void Promote(size_t capacity);
  void Demote();

  bool is_bitmap_ = false;
  uint32_t count_ = 0;
  std::vector<uint32_t> sorted_;  // ascending, unique; empty in bitmap mode
  std::vector<uint64_t> words_;   // bitmap mode only
};

// Counter snapshot aggregated across shards/sides for the index.* metrics
// family and test assertions.
struct PostingIndexStats {
  // Lookup outcomes (read-side events, counted where the lookup ran).
  uint64_t index_lookups = 0;      // served by posting-list intersection
  uint64_t empty_lookups = 0;      // plan proved the result empty
  uint64_t universal_lookups = 0;  // no level constrained; AllRecords served
  uint64_t fallback_wildcard = 0;  // tree walk: wildcard level
  uint64_t fallback_range = 0;     // tree walk: range level
  uint64_t fallback_union = 0;     // tree walk: union-at-return level
  uint64_t plan_hits = 0;          // QueryPlanCache hits
  uint64_t plan_misses = 0;        // plans derived fresh
  // Structural events (write-side; in concurrent mode the left-right replay
  // applies each mutation to both sides, so these count per-side events).
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  // Size of the read side.
  size_t posting_keys = 0;  // distinct value paths with a posting
  size_t bytes = 0;

  uint64_t TotalLookups() const {
    return index_lookups + empty_lookups + universal_lookups + fallback_wildcard +
           fallback_range + fallback_union;
  }
  uint64_t TotalFallbacks() const {
    return fallback_wildcard + fallback_range + fallback_union;
  }

  PostingIndexStats& operator+=(const PostingIndexStats& o);
};

class PostingIndex {
 public:
  // Fingerprint chain seeds/salts. Attribute and value paths are salted
  // differently so AttrFp(p, a) never collides with a ValueFp by key reuse.
  static constexpr uint64_t kRootFp = UINT64_C(0x9ae16a3b2f90404f);

  static uint64_t AttrFp(uint64_t parent_fp, SymbolId attribute) {
    return Chain(parent_fp ^ UINT64_C(0xa0761d6478bd642f), attribute, 0);
  }
  static uint64_t ValueFp(uint64_t parent_fp, SymbolId attribute, SymbolId token) {
    return Chain(parent_fp, attribute, token);
  }

  PostingIndex();

  PostingIndex(const PostingIndex&) = delete;
  PostingIndex& operator=(const PostingIndex&) = delete;

  // Process-unique instance id: with left-right sides and tree teardown, a
  // plan cached against one index must never validate against another that
  // happens to reuse its address.
  uint64_t id() const { return id_; }
  // Bumped on every mutation; a cached plan is valid only at exact version.
  uint64_t version() const { return version_; }

  // ---- Writer side (called under the owning tree's write discipline) ----

  // Assigns a dense slot for a new record (free-list reuse keeps the
  // universe compact across churn, which keeps bitmaps small).
  uint32_t AcquireSlot(const NameRecord* rec);
  void ReleaseSlot(uint32_t slot);

  // One grafted tree node: record `slot` grafts (attribute, token) under
  // `parent_fp`; `terminal` when the record attaches at this node. Returns
  // the node's value fingerprint (the parent_fp for its children).
  uint64_t AddTerm(uint64_t parent_fp, SymbolId attribute, SymbolId token, bool terminal,
                   uint32_t slot);

  // Exact inverse of AddTerm: `vfp`/`afp` are the fingerprints AddTerm
  // derived. Empty postings and zero counts are erased so key presence keeps
  // mirroring the pruned tree.
  void RemoveTerm(uint64_t vfp, uint64_t afp, bool terminal, uint32_t slot);

  // ---- Reader side (epoch-protected published side) ----

  // Derives the plan for `query` (ForQuery-compiled) against current state.
  void DerivePlan(const CompiledName& query, QueryPlan* out) const;

  // Intersects the plan's posting lists into ascending `out_slots`. The plan
  // must have kind kIndex and be current (same version). `word_scratch` backs
  // the all-bitmap kernel.
  void Evaluate(const QueryPlan& plan, std::vector<uint32_t>* out_slots,
                std::vector<uint64_t>* word_scratch) const;

  const NameRecord* RecordAt(uint32_t slot) const { return slots_[slot]; }
  size_t slot_capacity() const { return slots_.size(); }

  const PostingList* FindPosting(uint64_t vfp) const {
    auto it = sub_.find(vfp);
    return it == sub_.end() ? nullptr : &it->second;
  }

  // ---- Accounting / verification ----

  // Lookup-outcome counters, incremented by the owning tree's lookup path
  // (relaxed atomics: concurrent readers share the published side).
  void CountOutcome(QueryPlan::Kind kind, bool plan_cache_hit) const;

  PostingIndexStats Stats() const;
  size_t MemoryBytes() const;

  // Compares the index against expectations rebuilt from the owning tree:
  // exact key sets and exact posting membership. `expected_sub` values must
  // be sorted ascending and unique.
  Status VerifyAgainst(
      const std::unordered_map<uint64_t, std::vector<uint32_t>>& expected_sub,
      const std::unordered_map<uint64_t, uint32_t>& expected_end,
      const std::unordered_map<uint64_t, uint32_t>& expected_attr,
      size_t live_records) const;

 private:
  static uint64_t Chain(uint64_t parent_fp, SymbolId attribute, SymbolId token) {
    uint64_t h = parent_fp ^ ((static_cast<uint64_t>(attribute) << 32) |
                              (static_cast<uint64_t>(token) + 1));
    h *= UINT64_C(0x9e3779b97f4a7c15);
    h ^= h >> 32;
    h *= UINT64_C(0xd6e8feb86659fd93);
    return h ^ (h >> 29);
  }

  enum class LevelResult { kUniversal, kConstrained, kEmpty, kFallback };

  // One recursion level of plan derivation; mirrors NameTree::LookupLevel's
  // branch structure using index state only. Appends intersection terms to
  // `out->terms`; on kFallback, `out->kind` holds the fallback reason.
  LevelResult DeriveLevel(const CompiledName& query, uint32_t begin, uint32_t count,
                          uint64_t parent_fp, QueryPlan* out) const;

  void BumpVersion() { ++version_; }

  uint64_t id_ = 0;
  uint64_t version_ = 0;

  std::vector<const NameRecord*> slots_;  // slot -> record (null when free)
  std::vector<uint32_t> free_slots_;
  size_t live_slots_ = 0;

  std::unordered_map<uint64_t, PostingList> sub_;
  std::unordered_map<uint64_t, uint32_t> end_count_;
  std::unordered_map<uint64_t, uint32_t> attr_count_;

  uint64_t promotions_ = 0;
  uint64_t demotions_ = 0;

  // Read-side counters (see CountOutcome).
  mutable std::atomic<uint64_t> index_lookups_{0};
  mutable std::atomic<uint64_t> empty_lookups_{0};
  mutable std::atomic<uint64_t> universal_lookups_{0};
  mutable std::atomic<uint64_t> fallback_wildcard_{0};
  mutable std::atomic<uint64_t> fallback_range_{0};
  mutable std::atomic<uint64_t> fallback_union_{0};
  mutable std::atomic<uint64_t> plan_hits_{0};
  mutable std::atomic<uint64_t> plan_misses_{0};
};

}  // namespace ins

#endif  // INS_NAMETREE_POSTING_INDEX_H_
