#include "ins/nametree/posting_index.h"

#include <algorithm>
#include <cassert>

namespace ins {

// ---------------------------------------------------------------------------
// PostingList

bool PostingList::Add(uint32_t slot, size_t capacity) {
  if (is_bitmap_) {
    const size_t w = slot / 64;
    if (w >= words_.size()) {
      words_.resize(w + 1, 0);
    }
    assert((words_[w] & (UINT64_C(1) << (slot % 64))) == 0);
    words_[w] |= UINT64_C(1) << (slot % 64);
    ++count_;
    return false;
  }
  if (sorted_.empty() || slot > sorted_.back()) {
    // Fresh slots are allocated in increasing order, so bulk population is
    // O(1) amortized per posting entry.
    sorted_.push_back(slot);
  } else {
    auto it = std::lower_bound(sorted_.begin(), sorted_.end(), slot);
    assert(it == sorted_.end() || *it != slot);
    sorted_.insert(it, slot);
  }
  ++count_;
  if (count_ >= kPromoteMinCount &&
      static_cast<size_t>(count_) * kPromoteDensity >= capacity) {
    Promote(capacity);
    return true;
  }
  return false;
}

bool PostingList::Remove(uint32_t slot, size_t capacity) {
  assert(count_ > 0);
  if (is_bitmap_) {
    const size_t w = slot / 64;
    assert(w < words_.size() && (words_[w] & (UINT64_C(1) << (slot % 64))) != 0);
    words_[w] &= ~(UINT64_C(1) << (slot % 64));
    --count_;
    if (count_ < kPromoteMinCount / 2 ||
        static_cast<size_t>(count_) * kDemoteDensity < capacity) {
      Demote();
      return true;
    }
    return false;
  }
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), slot);
  assert(it != sorted_.end() && *it == slot);
  sorted_.erase(it);
  --count_;
  return false;
}

bool PostingList::Contains(uint32_t slot) const {
  if (is_bitmap_) {
    const size_t w = slot / 64;
    return w < words_.size() && (words_[w] & (UINT64_C(1) << (slot % 64))) != 0;
  }
  return std::binary_search(sorted_.begin(), sorted_.end(), slot);
}

void PostingList::Promote(size_t capacity) {
  words_.assign((std::max(capacity, size_t{1}) + 63) / 64, 0);
  for (uint32_t s : sorted_) {
    const size_t w = s / 64;
    if (w >= words_.size()) {
      words_.resize(w + 1, 0);
    }
    words_[w] |= UINT64_C(1) << (s % 64);
  }
  std::vector<uint32_t>().swap(sorted_);
  is_bitmap_ = true;
}

void PostingList::Demote() {
  sorted_.clear();
  sorted_.reserve(count_);
  ForEachAscending([this](uint32_t s) { sorted_.push_back(s); });
  std::vector<uint64_t>().swap(words_);
  is_bitmap_ = false;
}

Status PostingList::CheckInvariants() const {
  if (is_bitmap_) {
    if (!sorted_.empty()) {
      return InternalError("bitmap posting retains a sorted array");
    }
    uint64_t bits = 0;
    for (uint64_t w : words_) {
      bits += static_cast<uint64_t>(__builtin_popcountll(w));
    }
    if (bits != count_) {
      return InternalError("bitmap posting count drifted from popcount");
    }
    return Status::Ok();
  }
  if (!words_.empty()) {
    return InternalError("sorted posting retains bitmap words");
  }
  if (sorted_.size() != count_) {
    return InternalError("sorted posting count drifted from array size");
  }
  if (!std::is_sorted(sorted_.begin(), sorted_.end()) ||
      std::adjacent_find(sorted_.begin(), sorted_.end()) != sorted_.end()) {
    return InternalError("sorted posting not strictly ascending");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// PostingIndexStats

PostingIndexStats& PostingIndexStats::operator+=(const PostingIndexStats& o) {
  index_lookups += o.index_lookups;
  empty_lookups += o.empty_lookups;
  universal_lookups += o.universal_lookups;
  fallback_wildcard += o.fallback_wildcard;
  fallback_range += o.fallback_range;
  fallback_union += o.fallback_union;
  plan_hits += o.plan_hits;
  plan_misses += o.plan_misses;
  promotions += o.promotions;
  demotions += o.demotions;
  posting_keys += o.posting_keys;
  bytes += o.bytes;
  return *this;
}

// ---------------------------------------------------------------------------
// PostingIndex: writer side

PostingIndex::PostingIndex() {
  static std::atomic<uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

uint32_t PostingIndex::AcquireSlot(const NameRecord* rec) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(nullptr);
  }
  slots_[slot] = rec;
  ++live_slots_;
  BumpVersion();
  return slot;
}

void PostingIndex::ReleaseSlot(uint32_t slot) {
  assert(slot < slots_.size() && slots_[slot] != nullptr);
  slots_[slot] = nullptr;
  free_slots_.push_back(slot);
  --live_slots_;
  BumpVersion();
}

uint64_t PostingIndex::AddTerm(uint64_t parent_fp, SymbolId attribute, SymbolId token,
                               bool terminal, uint32_t slot) {
  ++attr_count_[AttrFp(parent_fp, attribute)];
  const uint64_t vfp = ValueFp(parent_fp, attribute, token);
  if (sub_[vfp].Add(slot, slots_.size())) {
    ++promotions_;
  }
  if (terminal) {
    ++end_count_[vfp];
  }
  BumpVersion();
  return vfp;
}

void PostingIndex::RemoveTerm(uint64_t vfp, uint64_t afp, bool terminal, uint32_t slot) {
  auto sub_it = sub_.find(vfp);
  assert(sub_it != sub_.end());
  if (sub_it->second.Remove(slot, slots_.size())) {
    ++demotions_;
  }
  if (sub_it->second.count() == 0) {
    // Key presence mirrors the pruned tree: an empty posting would make plan
    // derivation disagree with LOOKUP-NAME's "value advertised nowhere".
    sub_.erase(sub_it);
  }
  if (terminal) {
    auto end_it = end_count_.find(vfp);
    assert(end_it != end_count_.end() && end_it->second > 0);
    if (--end_it->second == 0) {
      end_count_.erase(end_it);
    }
  }
  auto attr_it = attr_count_.find(afp);
  assert(attr_it != attr_count_.end() && attr_it->second > 0);
  if (--attr_it->second == 0) {
    attr_count_.erase(attr_it);
  }
  BumpVersion();
}

// ---------------------------------------------------------------------------
// Plan derivation
//
// Mirrors NameTree::LookupLevel conjunct by conjunct using index state only.
// The structural facts it branches on are exact mirrors of the tree:
//   attr_count_ holds afp      <=> the attribute node exists (Ta != null)
//   sub_ holds vfp             <=> the value node exists
//   sub count == end count     <=> the value node has no attribute children
//                                  (every record under it attaches there),
//                                  in which case End == Sub.

PostingIndex::LevelResult PostingIndex::DeriveLevel(const CompiledName& query,
                                                    uint32_t begin, uint32_t count,
                                                    uint64_t parent_fp,
                                                    QueryPlan* out) const {
  const std::vector<CompiledAvNode>& nodes = query.nodes();
  bool constrained = false;
  bool fallback = false;
  for (uint32_t qi = begin; qi < begin + count; ++qi) {
    const CompiledAvNode& n = nodes[qi];
    if (n.attribute == kInvalidSymbol ||
        attr_count_.find(AttrFp(parent_fp, n.attribute)) == attr_count_.end()) {
      continue;  // `if Ta = null then continue`: conjunct is unconstraining
    }
    if (n.kind != Value::Kind::kLiteral) {
      // Wildcard / range levels stay on the tree path. Keep scanning: a
      // later empty literal still proves the whole level empty, in which
      // case the tree walk is unnecessary.
      if (!fallback) {
        out->kind = n.kind == Value::Kind::kWildcard ? QueryPlan::Kind::kFallbackWildcard
                                                     : QueryPlan::Kind::kFallbackRange;
        fallback = true;
      }
      continue;
    }
    const uint64_t vfp = ValueFp(parent_fp, n.attribute, n.token);
    auto sub_it = n.token == kInvalidSymbol ? sub_.end() : sub_.find(vfp);
    if (sub_it == sub_.end()) {
      // Attribute present but this value advertised nowhere under it: the
      // level — and with it the conjunct's whole subtree product — is empty.
      return LevelResult::kEmpty;
    }
    if (n.child_count == 0) {
      out->terms.push_back(vfp);  // query chain ends: Sub(p')
      constrained = true;
      continue;
    }
    auto end_it = end_count_.find(vfp);
    const uint32_t end = end_it == end_count_.end() ? 0 : end_it->second;
    if (sub_it->second.count() == end) {
      out->terms.push_back(vfp);  // tree chain ends: End(p') == Sub(p')
      constrained = true;
      continue;
    }
    if (end != 0) {
      // Union-at-return: conjunct value is Recurse(C) ∪ End(p'), and End is
      // not materialized as a posting. Tree walk.
      if (!fallback) {
        out->kind = QueryPlan::Kind::kFallbackUnion;
        fallback = true;
      }
      continue;
    }
    // No records attached at this interior node: the conjunct value is
    // exactly the recursive level's value, so its terms flatten into this
    // intersection (conjunct-level intersection is associative).
    switch (DeriveLevel(query, n.child_begin, n.child_count, vfp, out)) {
      case LevelResult::kEmpty:
        return LevelResult::kEmpty;  // ∅ ∪ End(p') = ∅ when end == 0
      case LevelResult::kConstrained:
        constrained = true;
        break;
      case LevelResult::kFallback:
        fallback = true;  // reason already recorded in out->kind
        break;
      case LevelResult::kUniversal:
        break;  // no constraint below: S ∩ (universal ∪ ∅) = S
    }
  }
  if (fallback) {
    return LevelResult::kFallback;
  }
  return constrained ? LevelResult::kConstrained : LevelResult::kUniversal;
}

void PostingIndex::DerivePlan(const CompiledName& query, QueryPlan* out) const {
  out->terms.clear();
  out->kind = QueryPlan::Kind::kUniversal;
  switch (DeriveLevel(query, 0, query.root_count(), kRootFp, out)) {
    case LevelResult::kUniversal:
      out->kind = QueryPlan::Kind::kUniversal;
      out->terms.clear();
      break;
    case LevelResult::kEmpty:
      out->kind = QueryPlan::Kind::kEmpty;
      out->terms.clear();
      break;
    case LevelResult::kConstrained:
      out->kind = QueryPlan::Kind::kIndex;
      break;
    case LevelResult::kFallback:
      out->terms.clear();  // kind holds the fallback reason
      break;
  }
}

// ---------------------------------------------------------------------------
// Evaluation

namespace {

// Galloping membership probe over a sorted posting, resuming from *pos.
// Driver slots arrive ascending, so each cursor sweeps its list once per
// evaluation regardless of how many probes land in it.
inline bool SortedAdvanceContains(const std::vector<uint32_t>& v, size_t* pos,
                                  uint32_t slot) {
  const size_t n = v.size();
  size_t i = *pos;
  if (i >= n) {
    return false;
  }
  if (v[i] < slot) {
    size_t step = 1;
    size_t j = i + 1;
    while (j < n && v[j] < slot) {
      i = j;
      j += step;
      step <<= 1;
    }
    const size_t hi = std::min(j, n - 1) + 1;  // v[hi-1] >= slot or hi == n
    i = static_cast<size_t>(
        std::lower_bound(v.begin() + static_cast<ptrdiff_t>(i) + 1,
                         v.begin() + static_cast<ptrdiff_t>(hi), slot) -
        v.begin());
    *pos = i;
    if (i >= n) {
      return false;
    }
  }
  return v[i] == slot;
}

}  // namespace

void PostingIndex::Evaluate(const QueryPlan& plan, std::vector<uint32_t>* out_slots,
                            std::vector<uint64_t>* word_scratch) const {
  assert(plan.kind == QueryPlan::Kind::kIndex && !plan.terms.empty());
  out_slots->clear();

  constexpr size_t kMaxInlineTerms = 64;
  const PostingList* inline_lists[kMaxInlineTerms];
  std::vector<const PostingList*> heap_lists;
  const PostingList** lists = inline_lists;
  if (plan.terms.size() > kMaxInlineTerms) {
    heap_lists.resize(plan.terms.size());
    lists = heap_lists.data();
  }

  size_t rarest = 0;
  bool all_bitmap = true;
  for (size_t i = 0; i < plan.terms.size(); ++i) {
    auto it = sub_.find(plan.terms[i]);
    assert(it != sub_.end() && "plan evaluated against the index version it was derived from");
    lists[i] = &it->second;
    all_bitmap = all_bitmap && lists[i]->is_bitmap();
    if (lists[i]->count() < lists[rarest]->count()) {
      rarest = i;
    }
  }
  const size_t nterms = plan.terms.size();

  if (nterms == 1) {
    out_slots->reserve(lists[0]->count());
    lists[0]->ForEachAscending([&](uint32_t s) { out_slots->push_back(s); });
    return;
  }

  if (all_bitmap) {
    // Word-parallel AND. Words past any operand's tail are zero in the
    // result, so the kernel runs over the shortest operand.
    size_t nwords = lists[0]->words().size();
    for (size_t i = 1; i < nterms; ++i) {
      nwords = std::min(nwords, lists[i]->words().size());
    }
    word_scratch->assign(lists[rarest]->words().begin(),
                         lists[rarest]->words().begin() + static_cast<ptrdiff_t>(nwords));
    for (size_t i = 0; i < nterms; ++i) {
      if (i == rarest) {
        continue;
      }
      const std::vector<uint64_t>& w = lists[i]->words();
      for (size_t k = 0; k < nwords; ++k) {
        (*word_scratch)[k] &= w[k];
      }
    }
    for (size_t w = 0; w < nwords; ++w) {
      uint64_t bits = (*word_scratch)[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        out_slots->push_back(static_cast<uint32_t>(w * 64 + static_cast<size_t>(b)));
        bits &= bits - 1;
      }
    }
    return;
  }

  // Rarest-first: stream the smallest posting in ascending order, probe the
  // rest (O(1) bit tests on bitmaps, galloping monotone cursors on arrays).
  struct Cursor {
    const std::vector<uint32_t>* v;
    size_t pos;
  };
  Cursor inline_cursors[kMaxInlineTerms];
  const PostingList* inline_bitmaps[kMaxInlineTerms];
  std::vector<Cursor> heap_cursors;
  std::vector<const PostingList*> heap_bitmaps;
  Cursor* cursors = inline_cursors;
  const PostingList** bitmaps = inline_bitmaps;
  if (nterms > kMaxInlineTerms) {
    heap_cursors.resize(nterms);
    heap_bitmaps.resize(nterms);
    cursors = heap_cursors.data();
    bitmaps = heap_bitmaps.data();
  }
  size_t ncursors = 0;
  size_t nbitmaps = 0;
  for (size_t i = 0; i < nterms; ++i) {
    if (i == rarest) {
      continue;
    }
    if (lists[i]->is_bitmap()) {
      bitmaps[nbitmaps++] = lists[i];
    } else {
      cursors[ncursors++] = Cursor{&lists[i]->sorted(), 0};
    }
  }

  lists[rarest]->ForEachAscending([&](uint32_t slot) {
    for (size_t i = 0; i < nbitmaps; ++i) {
      if (!bitmaps[i]->Contains(slot)) {
        return;
      }
    }
    for (size_t i = 0; i < ncursors; ++i) {
      if (!SortedAdvanceContains(*cursors[i].v, &cursors[i].pos, slot)) {
        return;
      }
    }
    out_slots->push_back(slot);
  });
}

// ---------------------------------------------------------------------------
// Accounting / verification

void PostingIndex::CountOutcome(QueryPlan::Kind kind, bool plan_cache_hit) const {
  (plan_cache_hit ? plan_hits_ : plan_misses_).fetch_add(1, std::memory_order_relaxed);
  switch (kind) {
    case QueryPlan::Kind::kIndex:
      index_lookups_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryPlan::Kind::kEmpty:
      empty_lookups_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryPlan::Kind::kUniversal:
      universal_lookups_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryPlan::Kind::kFallbackWildcard:
      fallback_wildcard_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryPlan::Kind::kFallbackRange:
      fallback_range_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryPlan::Kind::kFallbackUnion:
      fallback_union_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

PostingIndexStats PostingIndex::Stats() const {
  PostingIndexStats st;
  st.index_lookups = index_lookups_.load(std::memory_order_relaxed);
  st.empty_lookups = empty_lookups_.load(std::memory_order_relaxed);
  st.universal_lookups = universal_lookups_.load(std::memory_order_relaxed);
  st.fallback_wildcard = fallback_wildcard_.load(std::memory_order_relaxed);
  st.fallback_range = fallback_range_.load(std::memory_order_relaxed);
  st.fallback_union = fallback_union_.load(std::memory_order_relaxed);
  st.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  st.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  st.promotions = promotions_;
  st.demotions = demotions_;
  st.posting_keys = sub_.size();
  st.bytes = MemoryBytes();
  return st;
}

size_t PostingIndex::MemoryBytes() const {
  // Hash nodes: key + value + the libstdc++ node header; buckets: one
  // pointer each. The same estimate style ComputeStats uses for std::map.
  constexpr size_t kHashNode = 16;
  size_t bytes = slots_.capacity() * sizeof(const NameRecord*) +
                 free_slots_.capacity() * sizeof(uint32_t);
  bytes += sub_.bucket_count() * sizeof(void*);
  for (const auto& [fp, list] : sub_) {
    bytes += sizeof(fp) + sizeof(PostingList) + kHashNode + list.MemoryBytes();
  }
  bytes += end_count_.bucket_count() * sizeof(void*) +
           end_count_.size() * (sizeof(uint64_t) + sizeof(uint32_t) + kHashNode);
  bytes += attr_count_.bucket_count() * sizeof(void*) +
           attr_count_.size() * (sizeof(uint64_t) + sizeof(uint32_t) + kHashNode);
  return bytes;
}

Status PostingIndex::VerifyAgainst(
    const std::unordered_map<uint64_t, std::vector<uint32_t>>& expected_sub,
    const std::unordered_map<uint64_t, uint32_t>& expected_end,
    const std::unordered_map<uint64_t, uint32_t>& expected_attr,
    size_t live_records) const {
  if (live_slots_ != live_records) {
    return InternalError("posting index live-slot count drifted from record count");
  }
  size_t occupied = 0;
  for (const NameRecord* rec : slots_) {
    occupied += rec != nullptr ? 1 : 0;
  }
  if (occupied != live_records || occupied + free_slots_.size() != slots_.size()) {
    return InternalError("posting index slot allocator inconsistent");
  }

  if (sub_.size() != expected_sub.size()) {
    return InternalError("posting index sub key count mismatch: index " +
                         std::to_string(sub_.size()) + ", tree " +
                         std::to_string(expected_sub.size()));
  }
  std::vector<uint32_t> got;
  for (const auto& [fp, want] : expected_sub) {
    auto it = sub_.find(fp);
    if (it == sub_.end()) {
      return InternalError("posting missing for a live value path");
    }
    INS_RETURN_IF_ERROR(it->second.CheckInvariants());
    got.clear();
    it->second.ForEachAscending([&](uint32_t s) { got.push_back(s); });
    if (got != want) {
      return InternalError("posting membership diverged from the tree");
    }
  }

  if (end_count_.size() != expected_end.size()) {
    return InternalError("posting index end-count key count mismatch");
  }
  for (const auto& [fp, want] : expected_end) {
    auto it = end_count_.find(fp);
    if (it == end_count_.end() || it->second != want) {
      return InternalError("posting index end count diverged from the tree");
    }
  }

  if (attr_count_.size() != expected_attr.size()) {
    return InternalError("posting index attr-count key count mismatch");
  }
  for (const auto& [fp, want] : expected_attr) {
    auto it = attr_count_.find(fp);
    if (it == attr_count_.end() || it->second != want) {
      return InternalError("posting index attr count diverged from the tree");
    }
  }
  return Status::Ok();
}

}  // namespace ins
