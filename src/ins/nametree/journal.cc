#include "ins/nametree/journal.h"

namespace ins {

uint64_t NameJournal::Append(JournalEntry e) {
  std::lock_guard<std::mutex> lock(mu_);
  e.serial = ++head_serial_;
  ring_.push_back(std::move(e));
  if (ring_.size() > capacity_) {
    ring_.pop_front();
  }
  return head_serial_;
}

uint64_t NameJournal::head_serial() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_serial_;
}

uint64_t NameJournal::tail_serial() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? 0 : ring_.front().serial;
}

bool NameJournal::ReadSince(uint64_t from, size_t max, std::vector<JournalEntry>* out,
                            bool* more) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (more != nullptr) {
    *more = false;
  }
  if (from >= head_serial_) {
    return true;  // caller is current (or ahead, which digests catch)
  }
  // Servable iff every serial in (from, head] is still ringed, i.e. the
  // first entry we owe — from + 1 — has not been evicted.
  if (ring_.empty() || ring_.front().serial > from + 1) {
    return false;
  }
  // Entries are contiguous by serial: index of serial s is s - front.serial.
  size_t begin = static_cast<size_t>(from + 1 - ring_.front().serial);
  size_t end = ring_.size();
  if (end - begin > max) {
    end = begin + max;
    if (more != nullptr) {
      *more = true;
    }
  }
  out->reserve(out->size() + (end - begin));
  for (size_t i = begin; i < end; ++i) {
    out->push_back(ring_[i]);
  }
  return true;
}

size_t NameJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

}  // namespace ins
