#include "ins/nametree/name_record.h"

#include <sstream>

namespace ins {

std::string NameRecord::ToString() const {
  std::ostringstream os;
  os << "{announcer=" << announcer.ToString() << " endpoint=" << endpoint.address.ToString()
     << " app_metric=" << app_metric;
  if (route.IsLocal()) {
    os << " route=local";
  } else {
    os << " route=via:" << route.next_hop_inr.ToString() << "/" << route.overlay_metric;
  }
  os << " expires=" << expires.count() << "us v" << version << "}";
  return os.str();
}

}  // namespace ins
