// Small-size-optimized flat map keyed by interned SymbolId.
//
// The name-tree's per-node child maps are overwhelmingly tiny (a handful of
// orthogonal attributes, a handful of values) with occasional huge fan-out
// nodes (a `unit=u0..u1023` style attribute). This container serves both
// regimes without per-node heap graphs:
//
//   * up to kInlineMax entries: one contiguous array, sorted by key, found
//     by linear scan of 4-byte keys — a single cache line for typical nodes;
//   * above that: open-addressing hash table (multiply-shift hash, linear
//     probing, backward-shift deletion — no tombstones), power-of-two
//     capacity, max 7/8 load.
//
// Keys are real SymbolIds; kInvalidSymbol is the empty-slot sentinel, so
// probing for kInvalidSymbol (an uninterned query token) returns "absent"
// immediately. Values are movable (the tree stores unique_ptr nodes).
// Iteration order is unspecified; callers that need determinism sort.

#ifndef INS_NAMETREE_SYMBOL_MAP_H_
#define INS_NAMETREE_SYMBOL_MAP_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "ins/name/symbol_table.h"

namespace ins {

template <typename T>
class SymbolMap {
 public:
  struct Entry {
    SymbolId key = kInvalidSymbol;
    T value{};
  };

  static constexpr size_t kInlineMax = 8;

  SymbolMap() = default;
  SymbolMap(SymbolMap&&) noexcept = default;
  SymbolMap& operator=(SymbolMap&&) noexcept = default;
  SymbolMap(const SymbolMap&) = delete;
  SymbolMap& operator=(const SymbolMap&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Pointer to the value for `key`, or nullptr. Probing kInvalidSymbol is
  // allowed and always misses.
  T* Find(SymbolId key) {
    if (key == kInvalidSymbol || size_ == 0) {
      return nullptr;
    }
    if (inline_mode()) {
      for (Entry& e : entries_) {
        if (e.key == key) {
          return &e.value;
        }
        if (e.key > key) {
          break;  // inline entries are sorted
        }
      }
      return nullptr;
    }
    const size_t mask = entries_.size() - 1;
    for (size_t i = Slot(key, mask);; i = (i + 1) & mask) {
      if (entries_[i].key == key) {
        return &entries_[i].value;
      }
      if (entries_[i].key == kInvalidSymbol) {
        return nullptr;
      }
    }
  }
  const T* Find(SymbolId key) const { return const_cast<SymbolMap*>(this)->Find(key); }

  // Value for `key`, default-constructing (and inserting) if absent.
  T& FindOrInsert(SymbolId key) {
    assert(key != kInvalidSymbol);
    if (T* found = Find(key)) {
      return *found;
    }
    if (inline_mode()) {
      if (size_ < kInlineMax) {
        size_t pos = 0;
        while (pos < size_ && entries_[pos].key < key) {
          ++pos;
        }
        entries_.insert(entries_.begin() + static_cast<ptrdiff_t>(pos), Entry{key, T{}});
        ++size_;
        return entries_[pos].value;
      }
      Rehash(kInlineMax * 4);  // spill to the hash regime
    } else if ((size_ + 1) * 8 > entries_.size() * 7) {
      Rehash(entries_.size() * 2);
    }
    const size_t mask = entries_.size() - 1;
    size_t i = Slot(key, mask);
    while (entries_[i].key != kInvalidSymbol) {
      i = (i + 1) & mask;
    }
    entries_[i].key = key;
    ++size_;
    return entries_[i].value;
  }

  // Removes `key`; returns whether it was present.
  bool Erase(SymbolId key) {
    if (size_ == 0 || key == kInvalidSymbol) {
      return false;
    }
    if (inline_mode()) {
      for (size_t i = 0; i < size_; ++i) {
        if (entries_[i].key == key) {
          entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
          --size_;
          return true;
        }
      }
      return false;
    }
    const size_t mask = entries_.size() - 1;
    size_t i = Slot(key, mask);
    while (entries_[i].key != key) {
      if (entries_[i].key == kInvalidSymbol) {
        return false;
      }
      i = (i + 1) & mask;
    }
    // Backward-shift deletion: slide the probe chain left so no tombstone is
    // needed and probe distances stay minimal.
    size_t hole = i;
    for (size_t j = (hole + 1) & mask;; j = (j + 1) & mask) {
      if (entries_[j].key == kInvalidSymbol) {
        break;
      }
      const size_t home = Slot(entries_[j].key, mask);
      // Move j into the hole only if the hole lies within [home, j].
      const size_t dist_hole = (hole - home) & mask;
      const size_t dist_j = (j - home) & mask;
      if (dist_hole <= dist_j) {
        entries_[hole] = std::move(entries_[j]);
        hole = j;
      }
    }
    entries_[hole] = Entry{};
    --size_;
    return true;
  }

  // Visits every (key, value); mutation of the map during the visit is not
  // allowed. `fn(SymbolId, T&)` / `fn(SymbolId, const T&)`.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Entry& e : entries_) {
      if (e.key != kInvalidSymbol) {
        fn(e.key, e.value);
      }
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& e : entries_) {
      if (e.key != kInvalidSymbol) {
        fn(e.key, e.value);
      }
    }
  }

  // Heap footprint of the entry storage (the Figure 13 accounting).
  size_t MemoryBytes() const { return entries_.capacity() * sizeof(Entry); }

 private:
  // In inline mode `entries_` holds exactly size_ sorted entries; in hash
  // mode it is the power-of-two slot array with empty sentinels.
  bool inline_mode() const { return entries_.size() <= kInlineMax; }

  static size_t Slot(SymbolId key, size_t mask) {
    return (static_cast<size_t>(key) * 2654435761u) & mask;
  }

  void Rehash(size_t new_capacity) {
    std::vector<Entry> old = std::move(entries_);
    entries_.clear();
    entries_.resize(new_capacity);
    const size_t mask = new_capacity - 1;
    for (Entry& e : old) {
      if (e.key == kInvalidSymbol) {
        continue;
      }
      size_t i = Slot(e.key, mask);
      while (entries_[i].key != kInvalidSymbol) {
        i = (i + 1) & mask;
      }
      entries_[i] = std::move(e);
    }
  }

  std::vector<Entry> entries_;
  size_t size_ = 0;
};

}  // namespace ins

#endif  // INS_NAMETREE_SYMBOL_MAP_H_
