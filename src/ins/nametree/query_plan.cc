#include "ins/nametree/query_plan.h"

namespace ins {

namespace {

inline uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + UINT64_C(0x9e3779b97f4a7c15) + (h << 6) + (h >> 2);
  h *= UINT64_C(0xbf58476d1ce4e5b9);
  return h ^ (h >> 29);
}

}  // namespace

uint64_t QueryFingerprint(const CompiledName& query) {
  uint64_t h = UINT64_C(0x84222325cbf29ce4) ^ query.root_count();
  for (const CompiledAvNode& n : query.nodes()) {
    h = Mix(h, (static_cast<uint64_t>(n.attribute) << 32) | n.token);
    uint64_t bits = 0;
    if (n.kind != Value::Kind::kLiteral) {
      // Only range kinds carry a bound that matters; literal `number` is a
      // graft-time cache and must not perturb the fingerprint.
      static_assert(sizeof(bits) == sizeof(n.number));
      __builtin_memcpy(&bits, &n.number, sizeof(bits));
    }
    h = Mix(h, bits ^ (static_cast<uint64_t>(n.kind) << 56));
    h = Mix(h, (static_cast<uint64_t>(n.child_begin) << 32) | n.child_count);
  }
  return h;
}

}  // namespace ins
