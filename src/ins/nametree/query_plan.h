// Compiled query plans for the posting-list index (posting_index.h).
//
// A conjunctive literal-only query compiles to a QueryPlan: either a list of
// path-fingerprint terms whose posting lists get intersected, a constant
// (empty / universal), or a fallback verdict naming why the tree walk must
// run instead (wildcard or range level, or a union-at-return level the index
// cannot express). Deriving a plan costs O(query nodes) hash probes; the
// QueryPlanCache memoizes it so a hot destination query — the ones the wire
// NameDecoder memo keeps hitting — skips even that.
//
// Cache validity: a plan is only meaningful against the exact index state it
// was derived from, so entries are keyed by (index instance id, index
// version, query fingerprint) and every index mutation bumps the version.
// The cache lives inside a LookupScratch (thread-local by construction), so
// concurrent readers never share cache storage.

#ifndef INS_NAMETREE_QUERY_PLAN_H_
#define INS_NAMETREE_QUERY_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ins/name/compiled_name.h"

namespace ins {

struct QueryPlan {
  enum class Kind : uint8_t {
    kIndex,             // intersect the posting lists named by `terms`
    kEmpty,             // some literal level matches nothing: result is {}
    kUniversal,         // no level constrains: result is every record
    kFallbackWildcard,  // query has a wildcard level: tree walk
    kFallbackRange,     // query has a range level: tree walk
    kFallbackUnion,     // union-at-return level (records end mid-chain): tree walk
  };

  Kind kind = Kind::kUniversal;
  // Value-path fingerprints (PostingIndex::ValueFp chains) to intersect, in
  // query order; only meaningful for kIndex.
  std::vector<uint64_t> terms;

  bool NeedsTreeWalk() const {
    return kind == Kind::kFallbackWildcard || kind == Kind::kFallbackRange ||
           kind == Kind::kFallbackUnion;
  }
};

// Order- and structure-sensitive 64-bit fingerprint of a compiled query.
// Queries compiled from the same specifier text against the same symbol
// table fingerprint identically (the NameDecoder memo hands out the shared
// parse, so a hot destination hits one cache slot).
uint64_t QueryFingerprint(const CompiledName& query);

// Direct-mapped plan cache (the NameDecoder memo pattern). Not thread-safe;
// owned per LookupScratch.
class QueryPlanCache {
 public:
  static constexpr size_t kSlots = 256;

  // The cached plan for (index_id, version, qfp), or nullptr. All three must
  // match exactly: a stale version never serves.
  const QueryPlan* Find(uint64_t index_id, uint64_t version, uint64_t qfp) const {
    if (entries_.empty()) {
      return nullptr;
    }
    const Entry& e = entries_[SlotOf(qfp)];
    if (e.valid && e.index_id == index_id && e.version == version && e.qfp == qfp) {
      return &e.plan;
    }
    return nullptr;
  }

  // Claims the slot for `qfp`, evicting whatever occupied it, and returns the
  // plan storage for the caller to fill.
  QueryPlan* Insert(uint64_t index_id, uint64_t version, uint64_t qfp) {
    if (entries_.empty()) {
      entries_.resize(kSlots);
    }
    Entry& e = entries_[SlotOf(qfp)];
    e.index_id = index_id;
    e.version = version;
    e.qfp = qfp;
    e.valid = true;
    e.plan.terms.clear();
    return &e.plan;
  }

  size_t MemoryBytes() const {
    size_t bytes = entries_.capacity() * sizeof(Entry);
    for (const Entry& e : entries_) {
      bytes += e.plan.terms.capacity() * sizeof(uint64_t);
    }
    return bytes;
  }

 private:
  struct Entry {
    uint64_t index_id = 0;
    uint64_t version = 0;
    uint64_t qfp = 0;
    bool valid = false;
    QueryPlan plan;
  };

  static size_t SlotOf(uint64_t qfp) {
    return static_cast<size_t>((qfp * UINT64_C(0x9e3779b97f4a7c15)) >> 56) % kSlots;
  }

  std::vector<Entry> entries_;  // sized lazily on first insert
};

}  // namespace ins

#endif  // INS_NAMETREE_QUERY_PLAN_H_
