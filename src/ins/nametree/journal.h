// Per-vspace change journal: the versioned history a resolver's replication
// protocol serves deltas from (the BIND zone-journal / IXFR idea transplanted
// to intentional names).
//
// Every state-CHANGING write to a vspace's record store — a new or changed
// record, a removal, a soft-state expiry — appends one entry stamped with the
// next value of a per-(resolver, vspace) serial. Soft-state refreshes are
// deliberately NOT journaled: liveness travels as digest rounds instead of
// per-record re-announcements, which is what removes the refresh storm.
//
// The journal is a bounded ring. A peer that asks for entries after a serial
// still on the ring gets an O(changes) delta; one whose serial has fallen off
// must take a full snapshot transfer (the AXFR fallback). Serial 0 means
// "never seen anything".

#ifndef INS_NAMETREE_JOURNAL_H_
#define INS_NAMETREE_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "ins/common/clock.h"
#include "ins/nametree/name_record.h"

namespace ins {

enum class JournalOp : uint8_t {
  kUpsert = 0,  // record created or changed (kNew / kChanged / kRenamed)
  kDelete = 1,  // record explicitly removed (purge, delete propagation)
  kExpire = 2,  // record swept by soft-state expiry
};

struct JournalEntry {
  uint64_t serial = 0;  // stamped by Append; strictly increasing from 1
  JournalOp op = JournalOp::kUpsert;
  // Record snapshot at capture time. Deletes/expiries carry only the
  // announcer (name_text empty, the rest zero).
  std::string name_text;
  AnnouncerId announcer;
  EndpointInfo endpoint;
  double app_metric = 0.0;
  double route_metric = 0.0;  // owner's distance at capture time
  TimePoint expires{0};
  uint64_t version = 0;
};

// Bounded ring of journal entries with a monotonic serial. Appends under an
// internal mutex: in the store's concurrent mode different shards of one
// space may mutate from different threads, and all of them feed one journal.
class NameJournal {
 public:
  explicit NameJournal(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  NameJournal(const NameJournal&) = delete;
  NameJournal& operator=(const NameJournal&) = delete;

  // Stamps `e` with the next serial, appends it (evicting the oldest entry
  // when full), and returns the assigned serial.
  uint64_t Append(JournalEntry e);

  // Newest serial ever assigned; 0 when nothing was ever appended.
  uint64_t head_serial() const;
  // Oldest serial still on the ring; 0 when the ring is empty.
  uint64_t tail_serial() const;

  // Copies entries with serial in (from, from + max] into `out` (oldest
  // first) and sets `*more` when entries beyond those remain. Returns false
  // when `from` has fallen off the ring — history between `from` and the
  // tail is gone, and the caller must fall back to a full snapshot.
  bool ReadSince(uint64_t from, size_t max, std::vector<JournalEntry>* out,
                 bool* more = nullptr) const;

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t head_serial_ = 0;
  std::deque<JournalEntry> ring_;
};

}  // namespace ins

#endif  // INS_NAMETREE_JOURNAL_H_
