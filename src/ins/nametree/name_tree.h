// The name-tree: the resolver's central data structure (paper §2.3).
//
// A name-tree is the superposition of all name-specifiers a resolver knows
// about: alternating layers of attribute-nodes (orthogonal attributes) and
// value-nodes (possible values), with value-nodes pointing at name-records.
// Three paper algorithms live here:
//
//   * graft        — merge a newly discovered name-specifier into the tree
//                    and attach its name-record at the leaf value-nodes;
//   * LOOKUP-NAME  — single-pass, no-backtracking retrieval of the records
//                    matching a query specifier (Figure 5), with hash-table
//                    attribute/value lookup (the Θ(n_a^d (1+b)) variant of
//                    the §5.1.1 analysis);
//   * GET-NAME     — reconstruct a record's specifier by tracing upward from
//                    its leaf value-nodes and grafting onto already-extracted
//                    fragments (Figure 6), used when sending updates.
//
// Soft state: records carry an expiry; ExpireBefore() sweeps them out and
// prunes empty branches. Expiries are indexed in a lazy min-heap so a sweep
// costs O(expired + stale entries popped), not a walk of the whole tree —
// expiry_scan_visits() exposes the work done so tests can pin the bound.
// The tree also accounts its memory precisely (heap included), which
// reproduces the paper's Figure 13.

#ifndef INS_NAMETREE_NAME_TREE_H_
#define INS_NAMETREE_NAME_TREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ins/common/clock.h"
#include "ins/common/status.h"
#include "ins/name/name_specifier.h"
#include "ins/nametree/name_record.h"

namespace ins {

class NameTree {
 public:
  struct Options {
    // Figure 4's caption describes value-nodes containing "pointers to all
    // the name-records they correspond to". When enabled, every value-node
    // maintains a sorted cache of the records in its subtree, kept
    // incrementally on graft/ungraft: lookups intersect the cached lists
    // instead of collecting subtrees on the fly (faster lookups, slower
    // updates, more memory — quantified in bench_ablation_subtree_cache).
    // The default (off) collects on demand.
    bool cache_subtree_records = false;
  };

  NameTree() : NameTree(Options{}) {}
  explicit NameTree(Options options);
  ~NameTree();

  NameTree(const NameTree&) = delete;
  NameTree& operator=(const NameTree&) = delete;

  // Outcome of merging an advertisement.
  struct UpsertOutcome {
    enum Kind {
      kNew,        // announcer was unknown: name grafted
      kRefreshed,  // same name and data: expiry/version refreshed only
      kChanged,    // data (metric, endpoint, route) changed; name identical
      kRenamed,    // same announcer, different specifier: old graft replaced
      kIgnored,    // stale version; nothing done
    } kind;
    NameRecord* record;  // nullptr only when kIgnored
  };

  // Inserts or refreshes the advertisement `info` under `name`. A record is
  // identified by its AnnouncerId: re-announcing with a different specifier
  // implements service mobility (the old graft is removed). Updates carrying
  // a version lower than the stored one are ignored.
  UpsertOutcome Upsert(const NameSpecifier& name, const NameRecord& info);

  // LOOKUP-NAME: all records matching the query. Results are sorted by
  // AnnouncerId for deterministic output. An empty query matches everything.
  //
  // Semantics note (a faithful reproduction of Figure 5): a query av-pair
  // whose attribute is absent from the *whole tree* does not constrain the
  // result (`if Ta = null then continue`), but once any advertisement uses
  // that attribute at that position, the constraint applies to every
  // candidate — an advertisement that omits the attribute is then excluded
  // unless its specifier chain ends above it (the union-at-return rule).
  // Per-advertisement Matches() semantics, where an omitted advertisement
  // attribute is always a wildcard, coincide with Lookup() exactly when
  // advertisements are schema-complete at each position; otherwise Lookup()
  // returns a subset. Property tests pin down both relationships.
  std::vector<const NameRecord*> Lookup(const NameSpecifier& query) const;

  // GET-NAME: reconstructs the name-specifier of a record owned by this tree.
  NameSpecifier ExtractName(const NameRecord* record) const;

  // Removes the record for `id`. Returns false if unknown.
  bool Remove(const AnnouncerId& id);

  // Extends the expiry of `id` to max(current, expires) without touching any
  // other field, keeping the expiry index consistent. Returns false if the
  // announcer is unknown.
  bool RefreshExpiry(const AnnouncerId& id, TimePoint expires);

  // Removes every record with expires < now; returns how many were removed.
  // Driven by the expiry min-heap: cost is proportional to the number of
  // heap entries that have come due (expired records plus entries staled by
  // refreshes/removals), independent of the live tree size.
  size_t ExpireBefore(TimePoint now);

  // Cumulative count of expiry-heap entries examined by ExpireBefore calls;
  // the sweep-cost accounting used by tests and the network-management view.
  uint64_t expiry_scan_visits() const { return expiry_scan_visits_; }

  // True when the expiry index has an entry due before `now` (possibly a
  // stale one); a cheap pre-check for skipping a sweep entirely.
  bool HasExpiryDueBefore(TimePoint now) const {
    return !expiry_heap_.empty() && expiry_heap_.front().first < now;
  }

  const NameRecord* Find(const AnnouncerId& id) const;
  // Caution: do not set `expires` through this pointer — that bypasses the
  // expiry index. Use RefreshExpiry() (or Upsert) instead.
  NameRecord* FindMutable(const AnnouncerId& id);

  // All live records, sorted by AnnouncerId.
  std::vector<const NameRecord*> AllRecords() const;

  size_t record_count() const { return records_.size(); }

  struct Stats {
    size_t attribute_nodes = 0;
    size_t value_nodes = 0;
    size_t records = 0;
    size_t expiry_heap_entries = 0;  // live + stale entries in the min-heap
    size_t bytes = 0;  // estimated resident bytes of the whole structure
  };
  Stats ComputeStats() const;

  // Renders the tree for debugging (NetworkManagement-style view).
  std::string DebugString() const;

  // Verifies internal invariants (parent pointers, terminal back-pointers,
  // sorted sibling order); used by tests. Returns an error describing the
  // first violation found.
  Status CheckInvariants() const;

 private:
  struct AttributeNode;
  struct ValueNode;

  struct AttributeNode {
    std::string attribute;
    ValueNode* parent;  // owning value-node (never null; root is a ValueNode)
    // Hash-based child lookup: the paper's Θ(1) find of a value.
    std::unordered_map<std::string, std::unique_ptr<ValueNode>> values;
  };

  struct ValueNode {
    std::string value;          // empty for the root pseudo-node
    AttributeNode* parent_attr; // null for root
    // Hash-based child lookup of orthogonal attributes.
    std::unordered_map<std::string, std::unique_ptr<AttributeNode>> attributes;
    // Records whose specifier has a leaf ending at this value-node.
    std::vector<NameRecord*> records;
    // With Options::cache_subtree_records: every record in this subtree,
    // sorted by pointer, one entry per terminal (duplicates possible when a
    // record has several leaves below this node).
    std::vector<const NameRecord*> subtree_cache;
  };

  // A sorted set of record pointers, or "the universal set" before the first
  // intersection (paper: S starts as the set of all possible name-records).
  struct CandidateSet {
    bool universal = true;
    std::vector<const NameRecord*> items;  // sorted by pointer

    void IntersectWith(std::vector<const NameRecord*> other);
    bool Empty() const { return !universal && items.empty(); }
  };

  // Grafts `pairs` below `parent`, attaching `rec` at leaf value-nodes.
  void Graft(ValueNode* parent, const std::vector<AvPair>& pairs, NameRecord* rec);
  // Detaches `rec` from its terminal value-nodes and prunes empty branches.
  void Ungraft(NameRecord* rec);
  void PruneUpward(ValueNode* v);

  // One recursion level of LOOKUP-NAME rooted at value-node `node`.
  void LookupLevel(const ValueNode* node, const std::vector<AvPair>& pairs,
                   CandidateSet* s) const;
  void SubtreeRecords(const ValueNode* node, std::vector<const NameRecord*>* out) const;
  void SubtreeRecords(const AttributeNode* node, std::vector<const NameRecord*>* out) const;
  // Adds/removes one cache entry for `rec` on every ancestor of `leaf`.
  void AddToAncestorCaches(ValueNode* leaf, const NameRecord* rec);
  void RemoveFromAncestorCaches(ValueNode* leaf, const NameRecord* rec);

  // Pushes a (deadline, id) entry when a record's expiry is set or extended.
  // Entries are never erased in place; ExpireBefore pops lazily and skips
  // entries whose deadline no longer matches the live record.
  void PushExpiry(TimePoint expires, const AnnouncerId& id);

  Options options_;
  ValueNode root_;
  std::map<AnnouncerId, std::unique_ptr<NameRecord>> records_;

  // Min-heap over (deadline, announcer), maintained with std::push/pop_heap
  // on a greater-than comparator. Stale entries (refreshed or removed
  // records) are skipped when popped.
  std::vector<std::pair<TimePoint, AnnouncerId>> expiry_heap_;
  uint64_t expiry_scan_visits_ = 0;
};

// Converts a stored value token back into a Value ("*" -> wildcard, "<5" ->
// range, anything else -> literal). Shared with the wire codecs.
Value ValueFromToken(const std::string& token);

}  // namespace ins

#endif  // INS_NAMETREE_NAME_TREE_H_
