// The name-tree: the resolver's central data structure (paper §2.3).
//
// A name-tree is the superposition of all name-specifiers a resolver knows
// about: alternating layers of attribute-nodes (orthogonal attributes) and
// value-nodes (possible values), with value-nodes pointing at name-records.
// Three paper algorithms live here:
//
//   * graft        — merge a newly discovered name-specifier into the tree
//                    and attach its name-record at the leaf value-nodes;
//   * LOOKUP-NAME  — single-pass, no-backtracking retrieval of the records
//                    matching a query specifier (Figure 5), with hash-table
//                    attribute/value lookup (the Θ(n_a^d (1+b)) variant of
//                    the §5.1.1 analysis);
//   * GET-NAME     — reconstruct a record's specifier by tracing upward from
//                    its leaf value-nodes and grafting onto already-extracted
//                    fragments (Figure 6), used when sending updates.
//
// Hot-path data layout: attribute and value strings are interned once into a
// SymbolTable (name/symbol_table.h); tree nodes key their children by u32
// SymbolId in small-size-optimized flat maps (symbol_map.h), and specifiers
// are compiled (name/compiled_name.h) once per update or per store query.
// The asymptotics are the paper's; the constant factor per probe drops from
// a std::string hash + node-based bucket chase to an integer compare over a
// contiguous array. Range matching compares against a numeric cached on the
// value-node at graft time instead of re-parsing the token per candidate.
//
// Soft state: records carry an expiry; ExpireBefore() sweeps them out and
// prunes empty branches. Expiries are indexed in a lazy min-heap so a sweep
// costs O(expired + stale entries popped), not a walk of the whole tree —
// expiry_scan_visits() exposes the work done so tests can pin the bound.
// The tree also accounts its memory precisely (heap included, symbol table
// and flat-map footprints counted), which reproduces the paper's Figure 13.

#ifndef INS_NAMETREE_NAME_TREE_H_
#define INS_NAMETREE_NAME_TREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ins/common/clock.h"
#include "ins/common/status.h"
#include "ins/name/compiled_name.h"
#include "ins/name/name_specifier.h"
#include "ins/name/symbol_table.h"
#include "ins/nametree/name_record.h"
#include "ins/nametree/posting_index.h"
#include "ins/nametree/query_plan.h"
#include "ins/nametree/symbol_map.h"

namespace ins {

class NameTree {
 public:
  struct Options {
    // Figure 4's caption describes value-nodes containing "pointers to all
    // the name-records they correspond to". When enabled, every value-node
    // maintains a sorted cache of the records in its subtree, kept
    // incrementally on graft/ungraft: lookups intersect the cached lists
    // instead of collecting subtrees on the fly (faster lookups, slower
    // updates, more memory — quantified in bench_ablation_subtree_cache).
    // The default (off) collects on demand.
    bool cache_subtree_records = false;
    // Intern table for attribute/value tokens. Null (the default): the tree
    // owns a private table. ShardedNameTree passes one shared table to every
    // shard and both left-right sides, so a name compiled once is valid
    // against all of them (the table is append-only and ids are stable).
    std::shared_ptr<SymbolTable> symbols;
    // Maintain a posting-list secondary index (posting_index.h) alongside
    // the tree, and serve conjunctive literal queries by posting-list
    // intersection; wildcard/range/union queries keep the tree walk. The
    // index is provably result-identical to the walk (differential and
    // property tests pin it); off reproduces the pre-index layout exactly.
    bool enable_posting_index = true;
  };

  NameTree() : NameTree(Options{}) {}
  explicit NameTree(Options options);
  ~NameTree();

  NameTree(const NameTree&) = delete;
  NameTree& operator=(const NameTree&) = delete;

  // The intern table this tree grafts against. Compile queries with
  // CompiledName::ForQuery(query, tree.symbols()) to reuse across calls.
  const SymbolTable& symbols() const { return *symbols_; }
  SymbolTable* mutable_symbols() { return symbols_.get(); }
  std::shared_ptr<SymbolTable> shared_symbols() const { return symbols_; }

  // Reusable per-lookup scratch: the intersection working vectors of
  // LOOKUP-NAME, pooled so repeated queries allocate nothing in steady
  // state. Lookup() without one uses a thread-local instance; callers with
  // their own threading discipline (bench loops, shard fan-out slots) can
  // pass one explicitly. Not thread-safe; contents are transient per call.
  class LookupScratch {
   public:
    void Reset() { used_ = 0; }
    std::vector<const NameRecord*>* Acquire() {
      if (used_ == pool_.size()) {
        pool_.push_back(std::make_unique<std::vector<const NameRecord*>>());
      }
      std::vector<const NameRecord*>* v = pool_[used_++].get();
      v->clear();
      return v;
    }

    // Retained-capacity caps, enforced by Trim() at the end of every Lookup.
    // Pooled vectors and the stamped set are sized by result fan-out: one
    // degenerate query against a 10^6-name tree (a single common attribute)
    // inflates them to tens of MB, and without a cap every long-lived lookup
    // thread pins that high-water mark forever.
    static constexpr size_t kMaxRetainedPoolVectors = 32;
    static constexpr size_t kMaxRetainedVecEntries = 1 << 16;   // 512 KB each
    static constexpr size_t kMaxRetainedSetSlots = 1 << 17;     // 2 MB
    static constexpr size_t kMaxRetainedSlotEntries = 1 << 17;  // 512 KB

    // Releases any scratch block grown past its cap. Transient allocations
    // within a lookup are unaffected; only what survives between lookups is
    // bounded.
    void Trim();

    // Bytes currently pinned between lookups (the quantity Trim bounds).
    size_t RetainedBytes() const;

   private:
    friend class NameTree;

    // Open-addressing pointer-set scratch backing IntersectWith: generation
    // stamping makes "clear" O(1), so intersecting candidate lists costs one
    // linear pass with no sort and no allocation in steady state.
    struct SetSlot {
      const NameRecord* ptr = nullptr;
      uint64_t gen = 0;
    };
    std::vector<SetSlot> set_slots_;
    uint64_t set_gen_ = 0;

    // unique_ptr elements keep acquired pointers stable across pool growth.
    std::vector<std::unique_ptr<std::vector<const NameRecord*>>> pool_;
    size_t used_ = 0;

    // Index-path scratch: the intersection's slot output and the bitmap
    // AND kernel's word buffer.
    std::vector<uint32_t> slot_scratch_;
    std::vector<uint64_t> word_scratch_;
    // Per-thread plan memo (query_plan.h); keyed by index id + version, so
    // it never serves stale plans across mutations or side flips.
    QueryPlanCache plan_cache_;
  };

  // Outcome of merging an advertisement.
  struct UpsertOutcome {
    enum Kind {
      kNew,        // announcer was unknown: name grafted
      kRefreshed,  // same name and data: expiry/version refreshed only
      kChanged,    // data (metric, endpoint, route) changed; name identical
      kRenamed,    // same announcer, different specifier: old graft replaced
      kIgnored,    // stale version; nothing done
    } kind;
    NameRecord* record;  // nullptr only when kIgnored
    // True when the merge moved the stored version forward. A kRefreshed
    // with an advanced version is a liveness signal from the announcer, not
    // pure duplicate suppression — replication journals it so digest serials
    // advance and downstream replicas keep their copies leased.
    bool version_advanced = false;
  };

  // Inserts or refreshes the advertisement `info` under `name`. A record is
  // identified by its AnnouncerId: re-announcing with a different specifier
  // implements service mobility (the old graft is removed). Updates carrying
  // a version lower than the stored one are ignored.
  UpsertOutcome Upsert(const NameSpecifier& name, const NameRecord& info);

  // As above with the name already compiled (CompiledName::ForUpdate against
  // this tree's symbols()). The sharded store compiles once per entry and
  // replays the same compiled name on both left-right sides.
  UpsertOutcome Upsert(const NameSpecifier& name, const CompiledName& compiled,
                       const NameRecord& info);

  // LOOKUP-NAME: all records matching the query. Results are sorted by
  // AnnouncerId for deterministic output. An empty query matches everything.
  //
  // Semantics note (a faithful reproduction of Figure 5): a query av-pair
  // whose attribute is absent from the *whole tree* does not constrain the
  // result (`if Ta = null then continue`), but once any advertisement uses
  // that attribute at that position, the constraint applies to every
  // candidate — an advertisement that omits the attribute is then excluded
  // unless its specifier chain ends above it (the union-at-return rule).
  // Per-advertisement Matches() semantics, where an omitted advertisement
  // attribute is always a wildcard, coincide with Lookup() exactly when
  // advertisements are schema-complete at each position; otherwise Lookup()
  // returns a subset. Property tests pin down both relationships.
  std::vector<const NameRecord*> Lookup(const NameSpecifier& query) const;

  // As above with the query already compiled (ForQuery against symbols());
  // the per-store-operation path: compile once, run per shard. A null
  // scratch uses the thread-local pool. With the posting index enabled,
  // conjunctive literal queries are served by posting-list intersection
  // (plan memoized in the scratch's QueryPlanCache); wildcard/range/union
  // queries fall back to LookupTreeWalk. Results are identical either way.
  std::vector<const NameRecord*> Lookup(const CompiledName& query,
                                        LookupScratch* scratch = nullptr) const;

  // The Figure-5 tree walk, bypassing the posting index unconditionally.
  // Lookup()'s fallback path, public so tests and the index ablation bench
  // can compare both engines on the same tree.
  std::vector<const NameRecord*> LookupTreeWalk(const CompiledName& query,
                                                LookupScratch* scratch = nullptr) const;

  // GET-NAME: reconstructs the name-specifier of a record owned by this tree.
  NameSpecifier ExtractName(const NameRecord* record) const;

  // Removes the record for `id`. Returns false if unknown.
  bool Remove(const AnnouncerId& id);

  // Extends the expiry of `id` to max(current, expires) without touching any
  // other field, keeping the expiry index consistent. Returns false if the
  // announcer is unknown.
  bool RefreshExpiry(const AnnouncerId& id, TimePoint expires);

  // Removes every record with expires < now; returns how many were removed.
  // Driven by the expiry min-heap: cost is proportional to the number of
  // heap entries that have come due (expired records plus entries staled by
  // refreshes/removals), independent of the live tree size. When `expired`
  // is non-null the announcers of the removed records are appended to it, in
  // removal order (deterministic: heap order), so callers can journal them.
  size_t ExpireBefore(TimePoint now, std::vector<AnnouncerId>* expired = nullptr);

  // Cumulative count of expiry-heap entries examined by ExpireBefore calls;
  // the sweep-cost accounting used by tests and the network-management view.
  uint64_t expiry_scan_visits() const { return expiry_scan_visits_; }

  // True when the expiry index has an entry due before `now` (possibly a
  // stale one); a cheap pre-check for skipping a sweep entirely.
  bool HasExpiryDueBefore(TimePoint now) const {
    return !expiry_heap_.empty() && expiry_heap_.front().first < now;
  }

  const NameRecord* Find(const AnnouncerId& id) const;
  // Caution: do not set `expires` through this pointer — that bypasses the
  // expiry index. Use RefreshExpiry() (or Upsert) instead.
  NameRecord* FindMutable(const AnnouncerId& id);

  // All live records, sorted by AnnouncerId.
  std::vector<const NameRecord*> AllRecords() const;

  size_t record_count() const { return records_.size(); }

  struct Stats {
    size_t attribute_nodes = 0;
    size_t value_nodes = 0;
    size_t records = 0;
    size_t expiry_heap_entries = 0;  // live + stale entries in the min-heap
    size_t bytes = 0;  // estimated resident bytes of the whole structure
    // Portion of `bytes` that is the intern table. Zero when the table is
    // shared (ShardedNameTree accounts it once at the store level instead,
    // so Figure 13 totals never double-count it).
    size_t symbol_bytes = 0;
    // Portion of `bytes` that is the posting index (zero when disabled).
    size_t index_bytes = 0;
  };
  Stats ComputeStats() const;

  // The posting index, or nullptr when Options::enable_posting_index is off.
  // Exposed read-only for tests, stats aggregation, and the ablation bench.
  const PostingIndex* posting_index() const { return index_.get(); }
  // Counter snapshot; zeroed struct when the index is disabled.
  PostingIndexStats index_stats() const {
    return index_ != nullptr ? index_->Stats() : PostingIndexStats{};
  }

  // Renders the tree for debugging (NetworkManagement-style view).
  std::string DebugString() const;

  // Verifies internal invariants (parent pointers, terminal back-pointers,
  // flat-map key consistency, cached numerics); used by tests. Returns an
  // error describing the first violation found.
  Status CheckInvariants() const;

 private:
  struct AttributeNode;
  struct ValueNode;

  struct AttributeNode {
    SymbolId attribute = kInvalidSymbol;
    ValueNode* parent;  // owning value-node (never null; root is a ValueNode)
    // Interned-key flat child map: the paper's Θ(1) find of a value.
    SymbolMap<std::unique_ptr<ValueNode>> values;
  };

  struct ValueNode {
    SymbolId token = kInvalidSymbol;  // kInvalidSymbol only for the root
    // The token parsed as a number, cached at graft time: range queries
    // compare doubles instead of calling strtod per candidate.
    bool has_number = false;
    double number = 0.0;
    AttributeNode* parent_attr = nullptr;  // null for root
    // Interned-key flat child map of orthogonal attributes.
    SymbolMap<std::unique_ptr<AttributeNode>> attributes;
    // Records whose specifier has a leaf ending at this value-node.
    std::vector<NameRecord*> records;
    // With Options::cache_subtree_records: every record in this subtree,
    // sorted by pointer, one entry per terminal (duplicates possible when a
    // record has several leaves below this node).
    std::vector<const NameRecord*> subtree_cache;
  };

  // A sorted set of record pointers, or "the universal set" before the first
  // intersection (paper: S starts as the set of all possible name-records).
  // The items vector is owned by the active LookupScratch.
  struct CandidateSet {
    bool universal = true;
    std::vector<const NameRecord*>* items = nullptr;

    bool Empty() const { return !universal && items->empty(); }
  };

  // Intersects `other` into `s` (duplicates in either side collapse). Uses
  // the scratch's stamped pointer set: one O(|items| + |other|) pass, no
  // sorting, no allocation in steady state. Candidate order afterwards is
  // `other`'s traversal order; Lookup sorts the final result by announcer.
  static void IntersectWith(CandidateSet* s, const std::vector<const NameRecord*>* other,
                            LookupScratch* scratch);

  // Grafts compiled nodes [begin, begin+count) below `parent`, attaching
  // `rec` at leaf value-nodes. `fp` is `parent`'s value-path fingerprint
  // (PostingIndex::kRootFp at the root); index terms are added per node.
  void Graft(ValueNode* parent, const CompiledName& name, uint32_t begin, uint32_t count,
             NameRecord* rec, uint64_t fp);
  // Detaches `rec` from its terminal value-nodes and prunes empty branches.
  void Ungraft(NameRecord* rec);
  void PruneUpward(ValueNode* v);
  // Removes `rec`'s posting-index terms by recomputing its value-path
  // fingerprints from the live tree structure. Must run BEFORE Ungraft —
  // pruning destroys the parent chain the recomputation walks.
  void IndexRemoveTerms(NameRecord* rec);

  // One recursion level of LOOKUP-NAME rooted at value-node `node`, over
  // compiled query nodes [begin, begin+count).
  void LookupLevel(const ValueNode* node, const CompiledName& query, uint32_t begin,
                   uint32_t count, CandidateSet* s, LookupScratch* scratch) const;
  void SubtreeRecords(const ValueNode* node, std::vector<const NameRecord*>* out) const;
  void SubtreeRecords(const AttributeNode* node, std::vector<const NameRecord*>* out) const;
  // Adds/removes one cache entry for `rec` on every ancestor of `leaf`.
  void AddToAncestorCaches(ValueNode* leaf, const NameRecord* rec);
  void RemoveFromAncestorCaches(ValueNode* leaf, const NameRecord* rec);

  // Pushes a (deadline, id) entry when a record's expiry is set or extended.
  // Entries are never erased in place; ExpireBefore pops lazily and skips
  // entries whose deadline no longer matches the live record.
  void PushExpiry(TimePoint expires, const AnnouncerId& id);

  Options options_;
  std::shared_ptr<SymbolTable> symbols_;
  bool owns_symbols_ = false;
  ValueNode root_;
  std::map<AnnouncerId, std::unique_ptr<NameRecord>> records_;
  // The posting-list secondary index (null when disabled). Mutated only on
  // this tree's write path, so the left-right protocol flips and replays it
  // together with the tree.
  std::unique_ptr<PostingIndex> index_;

  // Min-heap over (deadline, announcer), maintained with std::push/pop_heap
  // on a greater-than comparator. Stale entries (refreshed or removed
  // records) are skipped when popped.
  std::vector<std::pair<TimePoint, AnnouncerId>> expiry_heap_;
  uint64_t expiry_scan_visits_ = 0;
};

}  // namespace ins

#endif  // INS_NAMETREE_NAME_TREE_H_
