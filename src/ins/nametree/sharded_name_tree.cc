#include "ins/nametree/sharded_name_tree.h"

#include <algorithm>
#include <set>
#include <utility>

namespace ins {

ShardedNameTree::ShardedNameTree(Options options) : options_(std::move(options)) {
  if (options_.fallback_shards == 0) {
    options_.fallback_shards = 1;
  }
  if (options_.tree_options.symbols == nullptr) {
    options_.tree_options.symbols = std::make_shared<SymbolTable>();
  }
  symbols_ = options_.tree_options.symbols;
}

std::unique_ptr<ShardedNameTree::Shard> ShardedNameTree::MakeShard(const std::string& space,
                                                                   size_t sub) const {
  auto shard = std::make_unique<Shard>();
  shard->space = space;
  shard->sub = sub;
  shard->sides[0] = std::make_unique<NameTree>(options_.tree_options);
  if (options_.concurrent) {
    shard->sides[1] = std::make_unique<NameTree>(options_.tree_options);
  }
  return shard;
}

void ShardedNameTree::AddSpace(const std::string& vspace) {
  auto [it, inserted] = spaces_.try_emplace(vspace);
  if (!inserted) {
    return;
  }
  const size_t count = vspace.empty() ? options_.fallback_shards : 1;
  it->second.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    it->second.push_back(MakeShard(vspace, i));
  }
  if (options_.journal_capacity > 0) {
    journals_.emplace(vspace, std::make_unique<NameJournal>(options_.journal_capacity));
  }
}

bool ShardedNameTree::RemoveSpace(const std::string& vspace) {
  journals_.erase(vspace);
  return spaces_.erase(vspace) > 0;
}

NameJournal* ShardedNameTree::journal(const std::string& vspace) {
  auto it = journals_.find(vspace);
  return it == journals_.end() ? nullptr : it->second.get();
}

const NameJournal* ShardedNameTree::journal(const std::string& vspace) const {
  return const_cast<ShardedNameTree*>(this)->journal(vspace);
}

uint64_t ShardedNameTree::JournalHead(const std::string& vspace) const {
  const NameJournal* j = journal(vspace);
  return j == nullptr ? 0 : j->head_serial();
}

void ShardedNameTree::JournalUpsert(const std::string& vspace, const NameSpecifier& name,
                                    const NameRecord& record) {
  NameJournal* j = journal(vspace);
  if (j == nullptr) {
    return;
  }
  JournalEntry e;
  e.op = JournalOp::kUpsert;
  e.name_text = name.ToString();
  e.announcer = record.announcer;
  e.endpoint = record.endpoint;
  e.app_metric = record.app_metric;
  e.route_metric = record.route.overlay_metric;
  e.expires = record.expires;
  e.version = record.version;
  j->Append(std::move(e));
}

void ShardedNameTree::JournalTombstone(const std::string& vspace, JournalOp op,
                                       const AnnouncerId& id) {
  NameJournal* j = journal(vspace);
  if (j == nullptr) {
    return;
  }
  JournalEntry e;
  e.op = op;
  e.announcer = id;
  j->Append(std::move(e));
}

bool ShardedNameTree::Routes(const std::string& vspace) const {
  return spaces_.count(vspace) > 0;
}

std::vector<std::string> ShardedNameTree::RoutedSpaces() const {
  std::vector<std::string> out;
  out.reserve(spaces_.size());
  for (const auto& [space, shards] : spaces_) {
    out.push_back(space);
  }
  return out;
}

size_t ShardedNameTree::ShardCountOf(const std::string& vspace) const {
  auto it = spaces_.find(vspace);
  return it == spaces_.end() ? 0 : it->second.size();
}

size_t ShardedNameTree::TotalShardCount() const {
  size_t n = 0;
  for (const auto& [space, shards] : spaces_) {
    n += shards.size();
  }
  return n;
}

size_t ShardedNameTree::FallbackIndex(const NameSpecifier& name) const {
  if (options_.fallback_shards <= 1 || name.roots().empty()) {
    return 0;
  }
  return std::hash<std::string>{}(name.roots().front().attribute) % options_.fallback_shards;
}

const std::vector<std::unique_ptr<ShardedNameTree::Shard>>* ShardedNameTree::ShardsOf(
    const std::string& vspace) const {
  auto it = spaces_.find(vspace);
  return it == spaces_.end() ? nullptr : &it->second;
}

ShardedNameTree::UpsertResult ShardedNameTree::Upsert(const std::string& vspace,
                                                      const NameSpecifier& name,
                                                      const NameRecord& info) {
  auto it = spaces_.find(vspace);
  if (it == spaces_.end()) {
    UpsertResult r;
    r.routed = false;
    return r;
  }
  auto& shards = it->second;
  const size_t target = shards.size() > 1 ? FallbackIndex(name) : 0;

  // Compile once; the shared intern table makes the compiled form valid on
  // every shard and both left-right sides (the replay reuses it too).
  const CompiledName compiled = CompiledName::ForUpdate(name, symbols_.get());

  // Lock the whole space so the cross-shard probe and the move are atomic
  // against other writers (shards of one space share a writer under load, so
  // this does not serialize independent spaces).
  std::vector<std::unique_lock<std::mutex>> locks;
  if (options_.concurrent) {
    locks.reserve(shards.size());
    for (auto& s : shards) {
      locks.emplace_back(s->write_mu);
    }
  }

  // Service mobility across fallback shards: a re-announcement whose first
  // attribute changed hashes elsewhere; evict the old graft first so the
  // store never holds the announcer twice (what one tree's rename would do).
  for (size_t i = 0; i < shards.size(); ++i) {
    if (i == target) {
      continue;
    }
    const NameRecord* old_rec = ReadSide(*shards[i]).Find(info.announcer);
    if (old_rec == nullptr) {
      continue;
    }
    if (info.version < old_rec->version) {
      UpsertResult r;
      r.kind = NameTree::UpsertOutcome::kIgnored;
      return r;
    }
    AnnouncerId id = info.announcer;
    ApplyLocked(*shards[i], [&id](NameTree& t) { return t.Remove(id); });
    auto out = ApplyLocked(*shards[target],
                           [&](NameTree& t) { return t.Upsert(name, compiled, info); });
    UpsertResult r;
    r.kind = out.kind == NameTree::UpsertOutcome::kIgnored
                 ? NameTree::UpsertOutcome::kIgnored
                 : NameTree::UpsertOutcome::kRenamed;
    FillResult(r, *shards[target], out.record, out.version_advanced);
    if (r.name.has_value() && r.record.has_value()) {
      JournalUpsert(vspace, *r.name, *r.record);
    }
    return r;
  }

  auto out =
      ApplyLocked(*shards[target], [&](NameTree& t) { return t.Upsert(name, compiled, info); });
  UpsertResult r;
  r.kind = out.kind;
  FillResult(r, *shards[target], out.record, out.version_advanced);
  // FillResult populates name/record exactly for the journaled outcomes
  // (kNew / kChanged / kRenamed, plus version-advancing refreshes — the
  // announcer heartbeat); same-version refreshes and ignores stay off the
  // journal.
  if (r.name.has_value() && r.record.has_value()) {
    JournalUpsert(vspace, *r.name, *r.record);
  }
  return r;
}

void ShardedNameTree::FillResult(UpsertResult& r, const Shard& shard,
                                 const NameRecord* rec, bool version_advanced) const {
  // Detach under the caller-held write lock: no flip can retire the read side
  // while we copy. A same-version kRefreshed carries no payload — its callers
  // never consume it and the refresh path stays copy-free. A kRefreshed that
  // ADVANCED the version is the announcer's liveness heartbeat: it is
  // detached so the journal records it and digest serials move, which is how
  // replicas past the first hop keep starved copies leased (version-unchanged
  // refreshes never reach them otherwise — they are neither flooded nor
  // journaled).
  if (rec == nullptr || r.kind == NameTree::UpsertOutcome::kIgnored ||
      (r.kind == NameTree::UpsertOutcome::kRefreshed && !version_advanced)) {
    return;
  }
  const NameTree& t = ReadSide(shard);
  r.name = t.ExtractName(rec);
  r.record = rec->Detached();
}

size_t ShardedNameTree::UpsertBatch(
    const std::string& vspace,
    const std::vector<std::pair<NameSpecifier, NameRecord>>& batch) {
  auto it = spaces_.find(vspace);
  if (it == spaces_.end() || batch.empty()) {
    return 0;
  }
  auto& shards = it->second;

  std::vector<std::unique_lock<std::mutex>> locks;
  if (options_.concurrent) {
    locks.reserve(shards.size());
    for (auto& s : shards) {
      locks.emplace_back(s->write_mu);
    }
  }

  // Route entries to their shard; evict cross-shard movers first (rare). An
  // entry staler than the announcer's record in another shard is dropped
  // outright — routing it to the target shard would duplicate the announcer,
  // since the target tree's own version guard only sees its local record.
  // Each surviving entry is compiled exactly once; the compiled form is
  // replayed verbatim on both left-right sides of its shard.
  struct RoutedOp {
    const std::pair<NameSpecifier, NameRecord>* entry;
    CompiledName compiled;
  };
  std::vector<std::vector<RoutedOp>> per_shard(shards.size());
  for (const auto& entry : batch) {
    const size_t target = shards.size() > 1 ? FallbackIndex(entry.first) : 0;
    bool stale = false;
    for (size_t i = 0; i < shards.size(); ++i) {
      if (i == target) {
        continue;
      }
      const NameRecord* old_rec = ReadSide(*shards[i]).Find(entry.second.announcer);
      if (old_rec == nullptr) {
        continue;
      }
      if (entry.second.version < old_rec->version) {
        stale = true;  // mirror Upsert's kIgnored
        break;
      }
      AnnouncerId id = entry.second.announcer;
      ApplyLocked(*shards[i], [&id](NameTree& t) { return t.Remove(id); });
    }
    if (stale) {
      continue;
    }
    per_shard[target].push_back(
        RoutedOp{&entry, CompiledName::ForUpdate(entry.first, symbols_.get())});
  }

  size_t applied = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    if (per_shard[i].empty()) {
      continue;
    }
    // One snapshot publish covers the whole per-shard batch. The lambda
    // reports per-op outcomes by return value (not by side effect): the
    // left-right protocol applies it twice, and only the first application's
    // result is used — journal capture happens here, outside the lambda.
    std::vector<std::pair<NameTree::UpsertOutcome::Kind, bool>> kinds =
        ApplyLocked(*shards[i], [&ops = per_shard[i]](NameTree& t) {
          std::vector<std::pair<NameTree::UpsertOutcome::Kind, bool>> out;
          out.reserve(ops.size());
          for (const auto& op : ops) {
            auto o = t.Upsert(op.entry->first, op.compiled, op.entry->second);
            out.emplace_back(o.kind, o.version_advanced);
          }
          return out;
        });
    for (size_t k = 0; k < kinds.size(); ++k) {
      if (kinds[k].first == NameTree::UpsertOutcome::kIgnored) {
        continue;
      }
      ++applied;
      if (kinds[k].first != NameTree::UpsertOutcome::kRefreshed || kinds[k].second) {
        // The stored record equals the batch input (Upsert copies it
        // verbatim), so the journal snapshot comes from the input entry.
        // Version-advancing refreshes journal too: they are the announcer's
        // liveness heartbeat and must move the digest serial.
        JournalUpsert(vspace, per_shard[i][k].entry->first, per_shard[i][k].entry->second);
      }
    }
  }
  return applied;
}

bool ShardedNameTree::Remove(const std::string& vspace, const AnnouncerId& id) {
  auto it = spaces_.find(vspace);
  if (it == spaces_.end()) {
    return false;
  }
  auto& shards = it->second;
  std::vector<std::unique_lock<std::mutex>> locks;
  if (options_.concurrent) {
    locks.reserve(shards.size());
    for (auto& s : shards) {
      locks.emplace_back(s->write_mu);
    }
  }
  for (auto& s : shards) {
    if (ReadSide(*s).Find(id) != nullptr) {
      const bool removed = ApplyLocked(*s, [&id](NameTree& t) { return t.Remove(id); });
      if (removed) {
        JournalTombstone(vspace, JournalOp::kDelete, id);
      }
      return removed;
    }
  }
  return false;
}

bool ShardedNameTree::RefreshExpiry(const std::string& vspace, const AnnouncerId& id,
                                    TimePoint expires) {
  auto it = spaces_.find(vspace);
  if (it == spaces_.end()) {
    return false;
  }
  auto& shards = it->second;
  std::vector<std::unique_lock<std::mutex>> locks;
  if (options_.concurrent) {
    locks.reserve(shards.size());
    for (auto& s : shards) {
      locks.emplace_back(s->write_mu);
    }
  }
  for (auto& s : shards) {
    if (ReadSide(*s).Find(id) != nullptr) {
      return ApplyLocked(*s, [&](NameTree& t) { return t.RefreshExpiry(id, expires); });
    }
  }
  return false;
}

size_t ShardedNameTree::ExpireBefore(
    TimePoint now, std::vector<std::pair<std::string, AnnouncerId>>* expired) {
  size_t removed = 0;
  for (auto& [space, shards] : spaces_) {
    for (auto& s : shards) {
      std::unique_lock<std::mutex> lock(s->write_mu, std::defer_lock);
      if (options_.concurrent) {
        lock.lock();
      }
      // Peek is safe under the write lock: nobody can flip read_idx.
      if (!ReadSide(*s).HasExpiryDueBefore(now)) {
        continue;
      }
      // The sweep reports who it removed by return value: ApplyLocked runs
      // the lambda twice in concurrent mode, and only the first (published)
      // application's list feeds the journal.
      std::vector<AnnouncerId> swept = ApplyLocked(*s, [now](NameTree& t) {
        std::vector<AnnouncerId> ids;
        t.ExpireBefore(now, &ids);
        return ids;
      });
      removed += swept.size();
      for (const AnnouncerId& id : swept) {
        JournalTombstone(space, JournalOp::kExpire, id);
        if (expired != nullptr) {
          expired->emplace_back(space, id);
        }
      }
    }
  }
  return removed;
}

std::vector<NameRecord> ShardedNameTree::Lookup(const std::string& vspace,
                                                const NameSpecifier& query) const {
  const auto* shards = ShardsOf(vspace);
  std::vector<NameRecord> out;
  if (shards == nullptr) {
    return out;
  }
  // One compile serves every shard probe (ForQuery never mutates the table).
  const CompiledName compiled = CompiledName::ForQuery(query, *symbols_);
  for (const auto& s : *shards) {
    ReadShard(*s, [&](const NameTree& t) {
      for (const NameRecord* rec : t.Lookup(compiled)) {
        out.push_back(rec->Detached());
      }
      return 0;
    });
  }
  std::sort(out.begin(), out.end(), [](const NameRecord& a, const NameRecord& b) {
    if (!(a.announcer == b.announcer)) {
      return a.announcer < b.announcer;
    }
    return a.version > b.version;  // duplicate announcer: keep the newest
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const NameRecord& a, const NameRecord& b) {
                          return a.announcer == b.announcer;
                        }),
            out.end());
  return out;
}

std::vector<ShardedNameTree::NamedRecord> ShardedNameTree::LookupNamed(
    const std::string& vspace, const NameSpecifier& query) const {
  const auto* shards = ShardsOf(vspace);
  std::vector<NamedRecord> out;
  if (shards == nullptr) {
    return out;
  }
  const CompiledName compiled = CompiledName::ForQuery(query, *symbols_);
  for (const auto& s : *shards) {
    ReadShard(*s, [&](const NameTree& t) {
      for (const NameRecord* rec : t.Lookup(compiled)) {
        out.push_back(NamedRecord{t.ExtractName(rec), rec->Detached()});
      }
      return 0;
    });
  }
  std::sort(out.begin(), out.end(), [](const NamedRecord& a, const NamedRecord& b) {
    if (!(a.record.announcer == b.record.announcer)) {
      return a.record.announcer < b.record.announcer;
    }
    return a.record.version > b.record.version;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const NamedRecord& a, const NamedRecord& b) {
                          return a.record.announcer == b.record.announcer;
                        }),
            out.end());
  return out;
}

std::optional<NameSpecifier> ShardedNameTree::GetName(const std::string& vspace,
                                                      const AnnouncerId& id) const {
  const auto* shards = ShardsOf(vspace);
  if (shards == nullptr) {
    return std::nullopt;
  }
  for (const auto& s : *shards) {
    std::optional<NameSpecifier> name = ReadShard(*s, [&](const NameTree& t) {
      const NameRecord* rec = t.Find(id);
      return rec == nullptr ? std::optional<NameSpecifier>()
                            : std::optional<NameSpecifier>(t.ExtractName(rec));
    });
    if (name.has_value()) {
      return name;
    }
  }
  return std::nullopt;
}

std::optional<NameRecord> ShardedNameTree::Find(const std::string& vspace,
                                                const AnnouncerId& id) const {
  const auto* shards = ShardsOf(vspace);
  if (shards == nullptr) {
    return std::nullopt;
  }
  for (const auto& s : *shards) {
    std::optional<NameRecord> rec = ReadShard(*s, [&](const NameTree& t) {
      const NameRecord* r = t.Find(id);
      return r == nullptr ? std::optional<NameRecord>() : std::optional<NameRecord>(r->Detached());
    });
    if (rec.has_value()) {
      return rec;
    }
  }
  return std::nullopt;
}

size_t ShardedNameTree::RecordCount(const std::string& vspace) const {
  const auto* shards = ShardsOf(vspace);
  if (shards == nullptr) {
    return 0;
  }
  size_t n = 0;
  for (const auto& s : *shards) {
    n += ReadShard(*s, [](const NameTree& t) { return t.record_count(); });
  }
  return n;
}

size_t ShardedNameTree::TotalRecordCount() const {
  size_t n = 0;
  for (const auto& [space, shards] : spaces_) {
    for (const auto& s : shards) {
      n += ReadShard(*s, [](const NameTree& t) { return t.record_count(); });
    }
  }
  return n;
}

void ShardedNameTree::ForEachShardMatch(const std::string& vspace, const NameSpecifier& query,
                                        const ShardMatchFn& fn) const {
  const auto* shards = ShardsOf(vspace);
  if (shards == nullptr) {
    return;
  }
  const CompiledName compiled = CompiledName::ForQuery(query, *symbols_);
  auto scan = [&](size_t i) {
    // Each pool worker's thread-local LookupScratch serves its shard scans.
    ReadShard(*(*shards)[i], [&](const NameTree& t) {
      fn(i, t, t.Lookup(compiled));
      return 0;
    });
  };
  if (options_.pool != nullptr && options_.pool->thread_count() > 0 && shards->size() > 1) {
    options_.pool->RunAll(shards->size(), scan);
  } else {
    for (size_t i = 0; i < shards->size(); ++i) {
      scan(i);
    }
  }
}

void ShardedNameTree::ForEachShardTree(const std::string& vspace,
                                       const std::function<void(const NameTree&)>& fn) const {
  const auto* shards = ShardsOf(vspace);
  if (shards == nullptr) {
    return;
  }
  for (const auto& s : *shards) {
    ReadShard(*s, [&](const NameTree& t) {
      fn(t);
      return 0;
    });
  }
}

std::vector<ShardedNameTree::ShardStats> ShardedNameTree::PerShardStats() const {
  std::vector<ShardStats> out;
  for (const auto& [space, shards] : spaces_) {
    for (const auto& s : shards) {
      ShardStats st;
      st.vspace = space;
      st.sub = s->sub;
      NameTree::Stats ts = ReadShard(*s, [](const NameTree& t) { return t.ComputeStats(); });
      st.records = ts.records;
      st.bytes = ts.bytes;
      st.lookups = s->lookups.load(std::memory_order_relaxed);
      st.updates = s->updates.load(std::memory_order_relaxed);
      out.push_back(std::move(st));
    }
  }
  return out;
}

NameTree::Stats ShardedNameTree::ComputeStats() const {
  NameTree::Stats total;
  for (const auto& [space, shards] : spaces_) {
    for (const auto& s : shards) {
      NameTree::Stats ts = ReadShard(*s, [](const NameTree& t) { return t.ComputeStats(); });
      total.attribute_nodes += ts.attribute_nodes;
      total.value_nodes += ts.value_nodes;
      total.records += ts.records;
      total.expiry_heap_entries += ts.expiry_heap_entries;
      total.bytes += ts.bytes;
      total.index_bytes += ts.index_bytes;
    }
  }
  // The shared intern table is part of the store's footprint; count it
  // exactly once (per-tree stats skip it because it is shared).
  total.symbol_bytes = symbols_->MemoryBytes();
  total.bytes += total.symbol_bytes;
  return total;
}

PostingIndexStats ShardedNameTree::IndexStatsTotal() const {
  PostingIndexStats total;
  for (const auto& [space, shards] : spaces_) {
    for (const auto& s : shards) {
      // Counters accumulate on whichever side served each lookup, and flips
      // interleave the sides arbitrarily — sum both. Size fields describe
      // state, not events: count the read side's only. The shard write lock
      // quiesces the writer so the non-atomic size/structural fields are
      // safe to read on both sides (readers only touch atomic counters).
      if (!options_.concurrent) {
        total += s->sides[0]->index_stats();
        continue;
      }
      std::lock_guard<std::mutex> lock(s->write_mu);
      const int r = s->read_idx.load(std::memory_order_seq_cst);
      total += s->sides[r]->index_stats();
      PostingIndexStats retired = s->sides[1 - r]->index_stats();
      retired.posting_keys = 0;
      retired.bytes = 0;
      total += retired;
    }
  }
  return total;
}

Status ShardedNameTree::CheckInvariants() const {
  for (const auto& [space, shards] : spaces_) {
    // Single-announcer invariant across the shards of one space: the
    // cross-shard eviction in Upsert/UpsertBatch must never leave an
    // announcer grafted in two fallback shards.
    std::set<AnnouncerId> seen;
    for (const auto& s : shards) {
      std::unique_lock<std::mutex> lock(s->write_mu, std::defer_lock);
      if (options_.concurrent) {
        lock.lock();
      }
      Status st = s->sides[0]->CheckInvariants();
      if (!st.ok()) {
        return st;
      }
      for (const NameRecord* rec : s->sides[0]->AllRecords()) {
        if (!seen.insert(rec->announcer).second) {
          return InternalError("announcer " + rec->announcer.ToString() +
                               " present in two shards of space '" + space + "'");
        }
      }
      if (!options_.concurrent) {
        continue;
      }
      st = s->sides[1]->CheckInvariants();
      if (!st.ok()) {
        return st;
      }
      // The two left-right sides must be replicas: same records, same names.
      const NameTree& a = *s->sides[0];
      const NameTree& b = *s->sides[1];
      std::vector<const NameRecord*> ra = a.AllRecords();
      std::vector<const NameRecord*> rb = b.AllRecords();
      if (ra.size() != rb.size()) {
        return InternalError("left-right sides diverge in record count for shard " + space +
                             "/" + std::to_string(s->sub));
      }
      for (size_t i = 0; i < ra.size(); ++i) {
        const bool same = ra[i]->announcer == rb[i]->announcer &&
                          ra[i]->version == rb[i]->version &&
                          ra[i]->expires == rb[i]->expires &&
                          ra[i]->app_metric == rb[i]->app_metric &&
                          ra[i]->endpoint == rb[i]->endpoint && ra[i]->route == rb[i]->route &&
                          a.ExtractName(ra[i]) == b.ExtractName(rb[i]);
        if (!same) {
          return InternalError("left-right sides diverge at record " +
                               ra[i]->announcer.ToString() + " in shard " + space + "/" +
                               std::to_string(s->sub));
        }
      }
    }
  }
  return Status::Ok();
}

NameTree* ShardedNameTree::Tree(const std::string& vspace, size_t sub) {
  auto it = spaces_.find(vspace);
  if (it == spaces_.end() || sub >= it->second.size()) {
    return nullptr;
  }
  Shard& s = *it->second[sub];
  return s.sides[options_.concurrent ? s.read_idx.load(std::memory_order_seq_cst) : 0].get();
}

const NameTree* ShardedNameTree::Tree(const std::string& vspace, size_t sub) const {
  return const_cast<ShardedNameTree*>(this)->Tree(vspace, sub);
}

}  // namespace ins
