// The concurrent sharded lookup core.
//
// A ShardedNameTree partitions a resolver's record store into independent
// shards: one shard per routed virtual space, plus `fallback_shards` shards
// for the default space "" keyed by a hash of the name's first root attribute
// (the paper's vspace partitioning, §2.5, extended with hash sharding so a
// single hot space still scales across threads). With fallback_shards == 1
// the layout — and every lookup result — is byte-identical to the seed's
// one-tree-per-space map.
//
// Concurrency model (enabled with Options::concurrent):
//
//   * Each shard holds TWO NameTree instances in a left-right arrangement:
//     readers follow an atomic `read_idx` to the published side and never
//     take a lock; the hot lookup path costs one epoch announcement and one
//     atomic load.
//   * Each shard has a single writer at a time (a per-shard write mutex
//     serializes mutators). A write batch is applied to the stale side,
//     `read_idx` is flipped (the "epoch snapshot" publish), the global epoch
//     advances, and the writer waits for readers announced before the flip
//     to drain (common/epoch.h) before replaying the batch on the retired
//     side. Readers therefore always see a tree state that existed at some
//     epoch — never a torn intermediate.
//   * Mutating operations are deterministic, so replaying them on the second
//     side reproduces the published side exactly.
//
// LOOKUP-NAME over the store is the union of per-shard lookups. For the
// named-space shards this is exact. For fallback_shards > 1 the union
// coincides with a monolithic tree exactly when advertisements are
// schema-complete at each position (see the semantics note in name_tree.h);
// the differential tests pin this equivalence on schema-complete workloads.
//
// One deliberate relaxation vs a single tree: a cross-shard rename (service
// mobility whose new first attribute hashes to a different fallback shard)
// publishes the eviction and the re-insert as two per-shard snapshots, so a
// concurrent reader between the flips can transiently miss the moving
// announcer — it never observes it twice, and the next snapshot restores it.
// A single tree's rename is atomic; fusing two shards' flips would need a
// store-wide write lock on the reader path, which the design rejects.
//
// Shard topology changes (AddSpace/RemoveSpace/set-options) are NOT safe
// concurrently with readers; configure the layout before spinning up reader
// threads, as the resolver does at startup.

#ifndef INS_NAMETREE_SHARDED_NAME_TREE_H_
#define INS_NAMETREE_SHARDED_NAME_TREE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ins/common/clock.h"
#include "ins/common/epoch.h"
#include "ins/common/status.h"
#include "ins/common/worker_pool.h"
#include "ins/name/name_specifier.h"
#include "ins/nametree/journal.h"
#include "ins/nametree/name_tree.h"

namespace ins {

class ShardedNameTree {
 public:
  struct Options {
    // Shards the default space "" is split into (>= 1). Shard of a name =
    // hash(first root attribute) % fallback_shards; a query against ""
    // fans out to all of them and unions the results.
    size_t fallback_shards = 1;
    // Left-right + epoch-protected reads. Off (the default) keeps a single
    // tree per shard with zero synchronization — the protocol-thread mode.
    bool concurrent = false;
    NameTree::Options tree_options;
    // Used by ForEachShardMatch to fan shard scans out across threads.
    // Not owned; may be null (scans run inline).
    WorkerPool* pool = nullptr;
    // Ring capacity of the per-vspace change journal (journal.h). 0 — the
    // seed default — disables journaling entirely: write paths skip capture
    // and journal() returns nullptr. Enabled by the replication subsystem.
    size_t journal_capacity = 0;
  };

  ShardedNameTree() : ShardedNameTree(Options{}) {}
  explicit ShardedNameTree(Options options);

  // The intern table shared by every shard and both left-right sides. A
  // CompiledName built against it (ForUpdate/ForQuery) is valid on any
  // shard's tree; store operations compile their specifier once and fan the
  // compiled form out.
  const SymbolTable& symbols() const { return *symbols_; }
  SymbolTable* mutable_symbols() { return symbols_.get(); }

  ShardedNameTree(const ShardedNameTree&) = delete;
  ShardedNameTree& operator=(const ShardedNameTree&) = delete;

  // ---- Shard topology (not thread-safe vs concurrent readers) ----

  // Registers a space. "" (always implicitly routed here only if added, to
  // mirror VspaceManager) gets `fallback_shards` shards; named spaces one.
  void AddSpace(const std::string& vspace);
  bool RemoveSpace(const std::string& vspace);
  bool Routes(const std::string& vspace) const;
  std::vector<std::string> RoutedSpaces() const;
  size_t ShardCountOf(const std::string& vspace) const;
  size_t TotalShardCount() const;

  // ---- Writer API (serialized per shard; any thread in concurrent mode) ----

  struct UpsertResult {
    NameTree::UpsertOutcome::Kind kind = NameTree::UpsertOutcome::kIgnored;
    // Detached snapshot of the stored record and its canonical name
    // (GET-NAME), captured under the shard write lock so they stay valid
    // regardless of later writes from any thread. Populated for kNew /
    // kChanged / kRenamed — the outcomes callers propagate; left empty for
    // kRefreshed / kIgnored to keep the soft-state refresh path cheap.
    std::optional<NameSpecifier> name;
    std::optional<NameRecord> record;
    bool routed = true;  // false: the name's space is not routed here
  };

  // Inserts or refreshes under the shard of `vspace` chosen by the fallback
  // hash of `name`. If the announcer currently lives in a *different* shard
  // of the same space (its first attribute changed), the old record is
  // removed first and the outcome is kRenamed — the same outcome a single
  // tree would have reported. Concurrent-mode caveat: the remove and the
  // insert publish as two snapshots (one per shard), so a reader between the
  // flips can transiently miss the announcer entirely — unlike a single
  // tree, whose rename is atomic. The store never holds the announcer twice;
  // soft-state re-announcement bounds the anomaly to one rename window.
  UpsertResult Upsert(const std::string& vspace, const NameSpecifier& name,
                      const NameRecord& info);

  // Applies a batch of upserts to one space with one snapshot publish per
  // touched shard (the batch-apply path writers should prefer under load).
  // Entries staler than the announcer's record in ANY shard are dropped,
  // exactly as Upsert's kIgnored. Cross-shard movers see the same transient
  // miss window as Upsert (evictions publish before the batched inserts).
  // Returns how many entries were applied (not kIgnored).
  size_t UpsertBatch(const std::string& vspace,
                     const std::vector<std::pair<NameSpecifier, NameRecord>>& batch);

  // Removes `id` from whichever shard of `vspace` holds it.
  bool Remove(const std::string& vspace, const AnnouncerId& id);

  // Extends `id`'s expiry to max(current, expires).
  bool RefreshExpiry(const std::string& vspace, const AnnouncerId& id, TimePoint expires);

  // Sweeps every shard; one snapshot publish per shard that expired records.
  size_t ExpireBefore(TimePoint now,
                      std::vector<std::pair<std::string, AnnouncerId>>* expired = nullptr);

  // ---- Change journal (Options::journal_capacity > 0) ----

  // The change journal of a routed space: every kNew/kChanged/kRenamed
  // upsert, Remove, and expiry sweep appends one serial-stamped entry
  // (refreshes do not — see journal.h). nullptr when the space is unrouted
  // or journaling is off.
  NameJournal* journal(const std::string& vspace);
  const NameJournal* journal(const std::string& vspace) const;
  // Convenience: the journal's head serial, 0 when absent.
  uint64_t JournalHead(const std::string& vspace) const;

  // ---- Reader API (lock-free hot path in concurrent mode) ----

  // LOOKUP-NAME across the shards of `vspace`: detached record copies,
  // sorted by announcer. Empty when the space is unrouted.
  std::vector<NameRecord> Lookup(const std::string& vspace,
                                 const NameSpecifier& query) const;

  struct NamedRecord {
    NameSpecifier name;  // GET-NAME of the record at the snapshot
    NameRecord record;
  };
  // Lookup plus GET-NAME per match, all against one per-shard snapshot.
  std::vector<NamedRecord> LookupNamed(const std::string& vspace,
                                       const NameSpecifier& query) const;

  // GET-NAME for a single announcer; nullopt when absent.
  std::optional<NameSpecifier> GetName(const std::string& vspace,
                                       const AnnouncerId& id) const;

  // Detached copy of the record for `id`; nullopt when absent.
  std::optional<NameRecord> Find(const std::string& vspace, const AnnouncerId& id) const;

  size_t RecordCount(const std::string& vspace) const;
  size_t TotalRecordCount() const;

  // Runs `fn(shard_index, tree, matches)` for every shard of `vspace`, with
  // an epoch guard held around each call, fanning out on the worker pool when
  // one is configured (fn must then be safe to call from multiple threads;
  // use per-shard result slots and merge after). shard_index is dense in
  // [0, ShardCountOf(vspace)). Must not be called from a pool worker.
  using ShardMatchFn = std::function<void(
      size_t shard_index, const NameTree& tree,
      const std::vector<const NameRecord*>& matches)>;
  void ForEachShardMatch(const std::string& vspace, const NameSpecifier& query,
                         const ShardMatchFn& fn) const;

  // Visits each shard's read-side tree (inline, guard held per shard).
  void ForEachShardTree(const std::string& vspace,
                        const std::function<void(const NameTree&)>& fn) const;

  // ---- Accounting and invariants ----

  struct ShardStats {
    std::string vspace;
    size_t sub = 0;          // fallback sub-shard index; 0 for named spaces
    size_t records = 0;
    size_t bytes = 0;        // read-side tree bytes (the Fig-13 accounting)
    uint64_t lookups = 0;    // reader ops served by this shard
    uint64_t updates = 0;    // write batches applied to this shard
  };
  std::vector<ShardStats> PerShardStats() const;
  // Aggregate over read sides; bytes sum to the same Fig-13 total a single
  // tree would report (per-shard accounting, no double count of the retired
  // left-right sides).
  NameTree::Stats ComputeStats() const;
  // Posting-index counters summed across every shard — lookup-outcome
  // counters from BOTH left-right sides (lookups land on whichever side was
  // published, and flips interleave them), size fields (posting_keys, bytes)
  // from the read side only. Zeroed struct when the index is disabled.
  PostingIndexStats IndexStatsTotal() const;
  Status CheckInvariants() const;

  // ---- Compat accessors (inline mode / tests) ----

  // The read-side tree of shard `sub` of a routed space; nullptr when
  // unrouted. Mutating through this pointer is only legal in inline
  // (non-concurrent) mode — the seed's single-threaded protocol path.
  NameTree* Tree(const std::string& vspace, size_t sub = 0);
  const NameTree* Tree(const std::string& vspace, size_t sub = 0) const;

  const Options& options() const { return options_; }

 private:
  struct Shard {
    std::string space;
    size_t sub = 0;
    // sides[0] only in inline mode; both in concurrent mode.
    std::unique_ptr<NameTree> sides[2];
    std::atomic<int> read_idx{0};
    mutable std::mutex write_mu;
    mutable std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> updates{0};
  };

  Shard* ShardFor(const std::string& vspace, const NameSpecifier& name);
  const std::vector<std::unique_ptr<Shard>>* ShardsOf(const std::string& vspace) const;
  size_t FallbackIndex(const NameSpecifier& name) const;

  // Copies `rec` (and its extracted name) out of `shard`'s read side into
  // `r`; caller must hold the shard's write lock in concurrent mode.
  void FillResult(UpsertResult& r, const Shard& shard, const NameRecord* rec,
                  bool version_advanced = false) const;

  // Journal capture helpers: no-ops when the space has no journal. Called
  // once per logical write, OUTSIDE ApplyLocked's lambda — the left-right
  // protocol applies that lambda twice and would double-record.
  void JournalUpsert(const std::string& vspace, const NameSpecifier& name,
                     const NameRecord& record);
  void JournalTombstone(const std::string& vspace, JournalOp op, const AnnouncerId& id);

  // The side readers should use right now (callers in concurrent mode must
  // hold an epoch guard across the access AND every dereference of the
  // returned tree).
  const NameTree& ReadSide(const Shard& s) const {
    return *s.sides[options_.concurrent ? s.read_idx.load(std::memory_order_seq_cst) : 0];
  }

  // Left-right write protocol: applies `fn` to the stale side, publishes it,
  // drains pre-flip readers, replays on the retired side. Returns `fn`'s
  // result from the application that became the read side. `fn` must be
  // deterministic. Caller holds s.write_mu in concurrent mode.
  template <typename Fn>
  auto ApplyLocked(Shard& s, Fn&& fn) -> decltype(fn(*s.sides[0])) {
    s.updates.fetch_add(1, std::memory_order_relaxed);
    if (!options_.concurrent) {
      return fn(*s.sides[0]);
    }
    const int r = s.read_idx.load(std::memory_order_relaxed);
    auto result = fn(*s.sides[1 - r]);
    s.read_idx.store(1 - r, std::memory_order_seq_cst);
    const uint64_t flip_epoch = epochs_.Advance();
    epochs_.WaitForReadersBefore(flip_epoch);
    fn(*s.sides[r]);  // replay on the retired side
    return result;
  }

  template <typename Fn>
  auto ApplyToShard(Shard& s, Fn&& fn) -> decltype(fn(*s.sides[0])) {
    if (!options_.concurrent) {
      return ApplyLocked(s, std::forward<Fn>(fn));
    }
    std::lock_guard<std::mutex> lock(s.write_mu);
    return ApplyLocked(s, std::forward<Fn>(fn));
  }

  // Runs `fn` against the shard's current read-side snapshot under an epoch
  // guard (no-op guard in inline mode).
  template <typename Fn>
  auto ReadShard(const Shard& s, Fn&& fn) const -> decltype(fn(*s.sides[0])) {
    s.lookups.fetch_add(1, std::memory_order_relaxed);
    if (!options_.concurrent) {
      return fn(*s.sides[0]);
    }
    EpochDomain::Guard guard = epochs_.Enter();
    return fn(ReadSide(s));
  }

  std::unique_ptr<Shard> MakeShard(const std::string& space, size_t sub) const;

  Options options_;
  // Created at construction (or adopted from Options::tree_options.symbols)
  // and injected into every shard tree, so compiled names are portable
  // across shards and sides. Append-only: safe to share with lock-free
  // readers.
  std::shared_ptr<SymbolTable> symbols_;
  mutable EpochDomain epochs_;
  std::map<std::string, std::vector<std::unique_ptr<Shard>>> spaces_;
  // One journal per routed space (not per shard): the serial orders changes
  // across all fallback shards of the space. Empty when journaling is off.
  std::map<std::string, std::unique_ptr<NameJournal>> journals_;
};

}  // namespace ins

#endif  // INS_NAMETREE_SHARDED_NAME_TREE_H_
